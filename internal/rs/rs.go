// Package rs implements the response-surface baseline of §2.2.2 (the
// statistic-reasoning technique of [10]): a full second-order polynomial
// surface — intercept, linear, quadratic, and pairwise-interaction terms —
// fit by ridge-regularized least squares on standardized features.
package rs

import (
	"fmt"
	"math"

	"repro/internal/model"
)

// Options are the response-surface hyperparameters.
type Options struct {
	// Ridge is the L2 regularization strength (default 1e-3). The
	// second-order design has ~d²/2 columns, so some ridge is required.
	Ridge float64
	// NoInteractions drops the pairwise terms, leaving a pure quadratic.
	NoInteractions bool
	// NoLogTarget disables fitting log execution time.
	NoLogTarget bool
}

func (o Options) withDefaults() Options {
	if o.Ridge <= 0 {
		o.Ridge = 1e-3
	}
	return o
}

// Surface is a trained response surface implementing model.Model.
type Surface struct {
	std          *model.Standardizer
	beta         []float64
	interactions bool
	yMean, yStd  float64
	log          bool
	dim          int
}

// NumTerms returns the number of polynomial terms (including intercept).
func (s *Surface) NumTerms() int { return len(s.beta) }

// Predict evaluates the polynomial and returns seconds.
func (s *Surface) Predict(x []float64) float64 {
	z := s.std.Apply(x)
	phi := expand(z, s.interactions)
	v := 0.0
	for i, b := range s.beta {
		v += b * phi[i]
	}
	v = v*s.yStd + s.yMean
	if s.log {
		return math.Exp(v)
	}
	return v
}

// expand maps z to the second-order basis: 1, z_i, z_i², z_i z_j (i<j).
func expand(z []float64, interactions bool) []float64 {
	d := len(z)
	size := 1 + 2*d
	if interactions {
		size += d * (d - 1) / 2
	}
	phi := make([]float64, 0, size)
	phi = append(phi, 1)
	phi = append(phi, z...)
	for _, v := range z {
		phi = append(phi, v*v)
	}
	if interactions {
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				phi = append(phi, z[i]*z[j])
			}
		}
	}
	return phi
}

// Train fits the response surface to ds.
func Train(ds *model.Dataset, opt Options) (*Surface, error) {
	opt = opt.withDefaults()
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("rs: %w", err)
	}
	n := ds.Len()
	if n < 5 {
		return nil, fmt.Errorf("rs: %d samples is too few", n)
	}
	std := model.FitStandardizer(ds)
	X := std.ApplyAll(ds.Features)
	y := make([]float64, n)
	for i, t := range ds.Targets {
		if opt.NoLogTarget {
			y[i] = t
		} else {
			y[i] = math.Log(math.Max(1e-9, t))
		}
	}
	yMean, yStd := meanStd(y)
	for i := range y {
		y[i] = (y[i] - yMean) / yStd
	}

	// Build the design and the normal equations A β = b with ridge.
	p0 := expand(X[0], !opt.NoInteractions)
	p := len(p0)
	A := make([][]float64, p)
	for i := range A {
		A[i] = make([]float64, p)
	}
	b := make([]float64, p)
	phi := p0
	for i := 0; i < n; i++ {
		if i > 0 {
			phi = expand(X[i], !opt.NoInteractions)
		}
		for r, vr := range phi {
			row := A[r]
			for c := r; c < p; c++ {
				row[c] += vr * phi[c]
			}
			b[r] += vr * y[i]
		}
	}
	for r := 0; r < p; r++ {
		for c := 0; c < r; c++ {
			A[r][c] = A[c][r]
		}
		A[r][r] += opt.Ridge * float64(n)
	}
	beta, ok := cholSolve(A, b)
	if !ok {
		return nil, fmt.Errorf("rs: normal equations not positive definite (try larger Ridge)")
	}
	return &Surface{
		std: std, beta: beta, interactions: !opt.NoInteractions,
		yMean: yMean, yStd: yStd, log: !opt.NoLogTarget, dim: ds.Dim(),
	}, nil
}

// cholSolve solves the symmetric positive definite system Ax=b via
// Cholesky decomposition, in place on a copy.
func cholSolve(A [][]float64, b []float64) ([]float64, bool) {
	n := len(A)
	L := make([][]float64, n)
	for i := range L {
		L[i] = make([]float64, i+1)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := A[i][j]
			for k := 0; k < j; k++ {
				s -= L[i][k] * L[j][k]
			}
			if i == j {
				if s <= 0 {
					return nil, false
				}
				L[i][i] = math.Sqrt(s)
			} else {
				L[i][j] = s / L[j][j]
			}
		}
	}
	// Forward substitution L z = b.
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= L[i][k] * z[k]
		}
		z[i] = s / L[i][i]
	}
	// Back substitution Lᵀ x = z.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := z[i]
		for k := i + 1; k < n; k++ {
			s -= L[k][i] * x[k]
		}
		x[i] = s / L[i][i]
	}
	return x, true
}

func meanStd(xs []float64) (float64, float64) {
	m := 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	s := math.Sqrt(v / float64(len(xs)))
	if s < 1e-12 {
		s = 1
	}
	return m, s
}

// Trainer adapts Train to model.Trainer.
type Trainer struct{ Opt Options }

// Name implements model.Trainer.
func (Trainer) Name() string { return "RS" }

// Train implements model.Trainer.
func (t Trainer) Train(ds *model.Dataset) (model.Model, error) { return Train(ds, t.Opt) }
