package rs

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/model"
)

// snapshot is the serialized form of a Surface: the standardizer, the
// polynomial coefficients, and the target transform — everything Predict
// touches — gob-encoded behind a version field.
type snapshot struct {
	Version      int
	Mean, Std    []float64
	Beta         []float64
	Interactions bool
	YMean, YStd  float64
	Log          bool
	Dim          int
}

const snapshotVersion = 1

// Save writes the surface to w.
func (s *Surface) Save(w io.Writer) error {
	snap := snapshot{
		Version:      snapshotVersion,
		Mean:         s.std.Mean,
		Std:          s.std.Std,
		Beta:         s.beta,
		Interactions: s.interactions,
		YMean:        s.yMean,
		YStd:         s.yStd,
		Log:          s.log,
		Dim:          s.dim,
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("rs: saving surface: %w", err)
	}
	return nil
}

// Load reads a surface previously written by Save; predictions are
// bit-identical to the surface that was saved.
func Load(r io.Reader) (*Surface, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("rs: loading surface: %w", err)
	}
	if snap.Version < 1 || snap.Version > snapshotVersion {
		return nil, fmt.Errorf("rs: surface snapshot version %d, want 1..%d", snap.Version, snapshotVersion)
	}
	if len(snap.Beta) == 0 || len(snap.Mean) != len(snap.Std) {
		return nil, fmt.Errorf("rs: malformed snapshot: %d terms, %d/%d standardizer columns",
			len(snap.Beta), len(snap.Mean), len(snap.Std))
	}
	return &Surface{
		std:          &model.Standardizer{Mean: snap.Mean, Std: snap.Std},
		beta:         snap.Beta,
		interactions: snap.Interactions,
		yMean:        snap.YMean,
		yStd:         snap.YStd,
		log:          snap.Log,
		dim:          snap.Dim,
	}, nil
}

// Backend adapts the package to the model.Backend contract with a simple
// versioned codec as its persistence capability.
type Backend struct{ Opt Options }

// Name implements model.Backend.
func (Backend) Name() string { return "rs" }

// Train implements model.Backend. The surface has no seed, tree, or
// epoch knobs; every TrainOpts field falls through.
func (b Backend) Train(ds *model.Dataset, opt model.TrainOpts) (model.Model, error) {
	return Train(ds, b.Opt)
}

// Save implements model.Saver.
func (Backend) Save(m model.Model, w io.Writer) error {
	s, ok := m.(*Surface)
	if !ok {
		return fmt.Errorf("rs: cannot save %T through the rs backend", m)
	}
	return s.Save(w)
}

// Load implements model.Loader.
func (Backend) Load(r io.Reader) (model.Model, error) { return Load(r) }
