package rs

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
)

func synthDS(n int, seed int64) *model.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := model.NewDataset(nil)
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64() * 4, rng.Float64() * 4, rng.Float64() * 4}
		t := 10 + 4*x[0] + x[1]*x[1] + 2*x[0]*x[2]
		ds.Add(x, t*(1+0.01*rng.NormFloat64()))
	}
	return ds
}

func TestSurfaceFitsQuadratic(t *testing.T) {
	m, err := Train(synthDS(800, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := model.Evaluate(m, synthDS(200, 2))
	// The target is exactly second order, so RS should nail it.
	if e.Mean > 0.05 {
		t.Fatalf("RS mean error %.1f%% on an exactly-quadratic target", e.Mean*100)
	}
}

func TestInteractionsMatter(t *testing.T) {
	train := synthDS(800, 3)
	test := synthDS(200, 4)
	full, _ := Train(train, Options{})
	pure, _ := Train(train, Options{NoInteractions: true})
	eFull := model.Evaluate(full, test).Mean
	ePure := model.Evaluate(pure, test).Mean
	// The target has a strong x0·x2 term that only the full surface sees.
	if eFull >= ePure {
		t.Fatalf("full surface (%.3f) not better than pure quadratic (%.3f)", eFull, ePure)
	}
}

func TestNumTerms(t *testing.T) {
	m, err := Train(synthDS(100, 5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// d=3: 1 + 3 + 3 + 3 = 10 terms.
	if m.NumTerms() != 10 {
		t.Errorf("NumTerms = %d, want 10", m.NumTerms())
	}
}

func TestRejectsBadInput(t *testing.T) {
	if _, err := Train(model.NewDataset(nil), Options{}); err == nil {
		t.Error("empty dataset should fail")
	}
}

func TestPredictionsFinitePositive(t *testing.T) {
	m, err := Train(synthDS(300, 6), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for k := 0; k < 100; k++ {
		x := []float64{rng.Float64() * 5, rng.Float64() * 5, rng.Float64() * 5}
		p := m.Predict(x)
		if p <= 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatalf("prediction %v at %v", p, x)
		}
	}
}

func TestCholSolve(t *testing.T) {
	A := [][]float64{{4, 2}, {2, 3}}
	b := []float64{10, 8}
	x, ok := cholSolve(A, b)
	if !ok {
		t.Fatal("cholSolve failed on SPD system")
	}
	if math.Abs(4*x[0]+2*x[1]-10) > 1e-9 || math.Abs(2*x[0]+3*x[1]-8) > 1e-9 {
		t.Fatalf("wrong solution %v", x)
	}
	if _, ok := cholSolve([][]float64{{0, 0}, {0, 0}}, []float64{1, 1}); ok {
		t.Error("singular system should fail")
	}
}

func TestTrainerInterface(t *testing.T) {
	var tr model.Trainer = Trainer{}
	if tr.Name() != "RS" {
		t.Errorf("Name = %q", tr.Name())
	}
	if _, err := tr.Train(synthDS(100, 8)); err != nil {
		t.Fatal(err)
	}
}
