package rs

import (
	"math/rand"
	"testing"

	"repro/internal/model"
)

// wideDS builds a 42-feature dataset, the response surface's real load:
// the second-order basis has ~1000 terms at that width.
func wideDS(n int, seed int64) *model.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := model.NewDataset(nil)
	x := make([]float64, 42)
	for i := 0; i < n; i++ {
		t := 5.0
		for j := range x {
			x[j] = rng.Float64() * 10
			t += x[j] * float64(j%3)
		}
		ds.Add(x, t)
	}
	return ds
}

// BenchmarkTrainWide measures solving the ~1000-term normal equations for
// the paper-scale feature width.
func BenchmarkTrainWide(b *testing.B) {
	ds := wideDS(2000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Train(ds, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredict measures one polynomial evaluation.
func BenchmarkPredict(b *testing.B) {
	ds := wideDS(500, 2)
	m, err := Train(ds, Options{})
	if err != nil {
		b.Fatal(err)
	}
	x := ds.Features[3]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(x)
	}
}
