package tree

import "fmt"

// FlatNode is the exported, serializable form of a tree node, used by the
// model-persistence layer (internal/hm stores trained models with
// encoding/gob so a model trained once can serve many searches — the
// paper's periodic-job economics).
type FlatNode struct {
	Feature   int32
	Threshold float64
	Left      int32
	Right     int32
	Value     float64
	Leaf      bool
}

// Flatten returns the tree's nodes in storage order.
func (t *Tree) Flatten() []FlatNode {
	out := make([]FlatNode, len(t.feature))
	for i := range t.feature {
		if t.feature[i] < 0 {
			out[i] = FlatNode{Value: t.thresh[i], Leaf: true}
		} else {
			out[i] = FlatNode{
				Feature:   t.feature[i],
				Threshold: t.thresh[i],
				Left:      t.left[i],
				Right:     t.right[i],
			}
		}
	}
	return out
}

// FromFlat rebuilds a tree from its flattened form. Split-gain metadata
// (feature importance) is not persisted.
func FromFlat(nodes []FlatNode) (*Tree, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("tree: empty node list")
	}
	t := &Tree{
		feature: make([]int32, len(nodes)),
		thresh:  make([]float64, len(nodes)),
		left:    make([]int32, len(nodes)),
		right:   make([]int32, len(nodes)),
	}
	for i, n := range nodes {
		if n.Leaf {
			t.feature[i] = leafMarker
			t.thresh[i] = n.Value
			t.leaves++
			continue
		}
		if n.Left < 0 || int(n.Left) >= len(nodes) || n.Right < 0 || int(n.Right) >= len(nodes) {
			return nil, fmt.Errorf("tree: node %d has child out of range", i)
		}
		if n.Feature < 0 {
			return nil, fmt.Errorf("tree: node %d has negative feature", i)
		}
		t.feature[i] = n.Feature
		t.thresh[i] = n.Threshold
		t.left[i] = n.Left
		t.right[i] = n.Right
	}
	return t, nil
}
