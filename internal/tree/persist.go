package tree

import "fmt"

// FlatNode is the exported, serializable form of a tree node, used by the
// model-persistence layer (internal/hm stores trained models with
// encoding/gob so a model trained once can serve many searches — the
// paper's periodic-job economics).
type FlatNode struct {
	Feature   int32
	Threshold float64
	Left      int32
	Right     int32
	Value     float64
	Leaf      bool
	// Bin is the histogram bin whose upper edge equals Threshold, for
	// split nodes grown by a Builder. Snapshots older than the field
	// gob-decode it as zero — indistinguishable from a genuine bin 0 —
	// so validity is signaled at the snapshot level, not per node:
	// FromFlat ignores Bin and FromFlatWithCodes must only be used when
	// the enclosing snapshot recorded that codes are present.
	Bin uint8
}

// Flatten returns the tree's nodes in storage order, including the
// per-split bin codes when the tree carries them.
func (t *Tree) Flatten() []FlatNode {
	hasBins := len(t.bins) == len(t.feature)
	out := make([]FlatNode, len(t.feature))
	for i := range t.feature {
		if t.feature[i] < 0 {
			out[i] = FlatNode{Value: t.thresh[i], Leaf: true}
		} else {
			out[i] = FlatNode{
				Feature:   t.feature[i],
				Threshold: t.thresh[i],
				Left:      t.left[i],
				Right:     t.right[i],
			}
			if hasBins {
				out[i].Bin = t.bins[i]
			}
		}
	}
	return out
}

// FromFlat rebuilds a tree from its flattened form, discarding bin codes:
// the rebuilt tree predicts over float rows but cannot AccumulateBinned.
// Split-gain metadata (feature importance) is not persisted.
func FromFlat(nodes []FlatNode) (*Tree, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("tree: empty node list")
	}
	t := &Tree{
		feature: make([]int32, len(nodes)),
		thresh:  make([]float64, len(nodes)),
		left:    make([]int32, len(nodes)),
		right:   make([]int32, len(nodes)),
	}
	for i, n := range nodes {
		if n.Leaf {
			t.feature[i] = leafMarker
			t.thresh[i] = n.Value
			t.leaves++
			continue
		}
		if n.Left < 0 || int(n.Left) >= len(nodes) || n.Right < 0 || int(n.Right) >= len(nodes) {
			return nil, fmt.Errorf("tree: node %d has child out of range", i)
		}
		if n.Feature < 0 {
			return nil, fmt.Errorf("tree: node %d has negative feature", i)
		}
		t.feature[i] = n.Feature
		t.thresh[i] = n.Threshold
		t.left[i] = n.Left
		t.right[i] = n.Right
	}
	return t, nil
}

// FromFlatWithCodes rebuilds a tree including its per-split bin codes, so
// the reloaded tree still supports AccumulateBinned over rows encoded
// against the edges its builder used (persisted alongside the trees by
// internal/hm's snapshot, and applied to new rows via BinWithEdges). Use
// only when the enclosing snapshot recorded that codes are valid: older
// snapshots decode every Bin field as zero, which FromFlat safely drops.
func FromFlatWithCodes(nodes []FlatNode) (*Tree, error) {
	t, err := FromFlat(nodes)
	if err != nil {
		return nil, err
	}
	t.bins = make([]uint8, len(nodes))
	for i, n := range nodes {
		if !n.Leaf {
			t.bins[i] = n.Bin
		}
	}
	return t, nil
}
