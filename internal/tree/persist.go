package tree

import "fmt"

// FlatNode is the exported, serializable form of a tree node, used by the
// model-persistence layer (internal/hm stores trained models with
// encoding/gob so a model trained once can serve many searches — the
// paper's periodic-job economics).
type FlatNode struct {
	Feature   int32
	Threshold float64
	Left      int32
	Right     int32
	Value     float64
	Leaf      bool
}

// Flatten returns the tree's nodes in storage order.
func (t *Tree) Flatten() []FlatNode {
	out := make([]FlatNode, len(t.nodes))
	for i, n := range t.nodes {
		out[i] = FlatNode{
			Feature:   int32(n.feature),
			Threshold: n.threshold,
			Left:      n.left,
			Right:     n.right,
			Value:     n.value,
			Leaf:      n.leaf,
		}
	}
	return out
}

// FromFlat rebuilds a tree from its flattened form. Split-gain metadata
// (feature importance) is not persisted.
func FromFlat(nodes []FlatNode) (*Tree, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("tree: empty node list")
	}
	t := &Tree{nodes: make([]node, len(nodes))}
	for i, n := range nodes {
		if !n.Leaf {
			if n.Left < 0 || int(n.Left) >= len(nodes) || n.Right < 0 || int(n.Right) >= len(nodes) {
				return nil, fmt.Errorf("tree: node %d has child out of range", i)
			}
			if n.Feature < 0 {
				return nil, fmt.Errorf("tree: node %d has negative feature", i)
			}
		}
		t.nodes[i] = node{
			feature:   int(n.Feature),
			threshold: n.Threshold,
			left:      n.Left,
			right:     n.Right,
			value:     n.Value,
			leaf:      n.Leaf,
		}
	}
	return t, nil
}
