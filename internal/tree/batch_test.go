package tree

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"
)

// TestPredictBatchMatchesPredict pins the batch path's contract: for any
// grown tree, PredictBatch must agree bit-for-bit with per-row Predict.
func TestPredictBatchMatchesPredict(t *testing.T) {
	X, y := synth(600, 21)
	b := NewBuilder(X)
	rng := rand.New(rand.NewSource(22))
	for _, opt := range []Options{
		{MaxSplits: 1},
		{MaxSplits: 5},
		{MaxSplits: 40, MinLeaf: 3},
		{MaxSplits: 20, FeatureFrac: 0.5},
	} {
		tr := b.Grow(y, allIdx(600), opt, rng)
		out := make([]float64, len(X))
		tr.PredictBatch(X, out)
		for i, row := range X {
			if got := tr.Predict(row); got != out[i] {
				t.Fatalf("opt %+v row %d: Predict=%v PredictBatch=%v", opt, i, got, out[i])
			}
		}
	}
}

// TestAccumulateBatchMatchesLoop checks the fused scale-and-add against
// the per-row update it replaces in the boosting inner loop.
func TestAccumulateBatchMatchesLoop(t *testing.T) {
	X, y := synth(400, 23)
	b := NewBuilder(X)
	tr := b.Grow(y, allIdx(400), Options{MaxSplits: 7}, nil)
	const scale = 0.05
	want := make([]float64, len(X))
	got := make([]float64, len(X))
	for i := range want {
		want[i] = float64(i) * 0.25
		got[i] = want[i]
	}
	for i, row := range X {
		want[i] += scale * tr.Predict(row)
	}
	tr.AccumulateBatch(X, scale, got)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("row %d: loop=%v batch=%v", i, want[i], got[i])
		}
	}
}

// TestAccumulateBinnedMatchesBatch pins the binned fast path's contract:
// evaluating a grown tree over pre-binned rows — the builder's own matrix
// or external rows encoded with Builder.Bin — must agree bit-for-bit with
// the float-walk update.
func TestAccumulateBinnedMatchesBatch(t *testing.T) {
	X, y := synth(500, 61)
	probe, _ := synth(200, 62)
	b := NewBuilder(X)
	rng := rand.New(rand.NewSource(63))
	for _, opt := range []Options{
		{MaxSplits: 1},
		{MaxSplits: 5},
		{MaxSplits: 30, MinLeaf: 3, FeatureFrac: 0.5},
	} {
		tr := b.Grow(y, allIdx(500), opt, rng)
		const scale = 0.05
		for _, tc := range []struct {
			rows [][]float64
			bm   *BinMatrix
		}{
			{X, b.Binned()},
			{probe, b.Bin(probe)},
		} {
			want := make([]float64, len(tc.rows))
			got := make([]float64, len(tc.rows))
			for i := range want {
				want[i] = float64(i) * 0.5
				got[i] = want[i]
			}
			tr.AccumulateBatch(tc.rows, scale, want)
			tr.AccumulateBinned(tc.bm, scale, got)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("opt %+v row %d: batch=%v binned=%v", opt, i, want[i], got[i])
				}
			}
		}
	}
}

// TestParallelGrowIdentical pins split-scan determinism: the tree grown
// with a parallel feature scan must be structurally identical to the
// serial one, for full scans and feature-subsampled scans alike.
func TestParallelGrowIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n, d := 900, 12
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = make([]float64, d)
		for j := range X[i] {
			X[i][j] = rng.Float64() * 50
		}
		y[i] = X[i][0]*2 + X[i][3]*X[i][7] + rng.NormFloat64()
	}
	b := NewBuilder(X)
	for _, workers := range []int{2, 3, runtime.GOMAXPROCS(0), 16} {
		for _, frac := range []float64{0, 0.4} {
			serialRng := rand.New(rand.NewSource(77))
			parRng := rand.New(rand.NewSource(77))
			serial := b.Grow(y, allIdx(n), Options{MaxSplits: 15, FeatureFrac: frac, Workers: 1}, serialRng)
			par := b.Grow(y, allIdx(n), Options{MaxSplits: 15, FeatureFrac: frac, Workers: workers}, parRng)
			if !reflect.DeepEqual(serial.Flatten(), par.Flatten()) {
				t.Fatalf("workers=%d frac=%v: parallel grow produced a different tree", workers, frac)
			}
		}
	}
}

// TestNumLeavesCached checks the O(1) leaf count against a recount of the
// flattened nodes, across growth and persistence round-trips.
func TestNumLeavesCached(t *testing.T) {
	X, y := synth(500, 41)
	b := NewBuilder(X)
	for _, tc := range []int{1, 4, 25} {
		tr := b.Grow(y, allIdx(500), Options{MaxSplits: tc}, nil)
		count := 0
		for _, n := range tr.Flatten() {
			if n.Leaf {
				count++
			}
		}
		if tr.NumLeaves() != count {
			t.Fatalf("tc=%d: NumLeaves=%d, flattened count=%d", tc, tr.NumLeaves(), count)
		}
		rt, err := FromFlat(tr.Flatten())
		if err != nil {
			t.Fatal(err)
		}
		if rt.NumLeaves() != count {
			t.Fatalf("tc=%d: round-tripped NumLeaves=%d, want %d", tc, rt.NumLeaves(), count)
		}
	}
}
