package tree

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestFromFlatWithCodesKeepsBinnedPath pins the persistence contract that
// makes binned training continuation possible: a tree rebuilt from its
// flattened form with codes, evaluated over rows encoded against the
// original builder's edges, must agree bit-for-bit with the original
// tree's float walk.
func TestFromFlatWithCodesKeepsBinnedPath(t *testing.T) {
	X, y := synth(500, 71)
	probe, _ := synth(150, 72)
	b := NewBuilder(X)
	rng := rand.New(rand.NewSource(73))
	for _, opt := range []Options{
		{MaxSplits: 1},
		{MaxSplits: 25, MinLeaf: 3},
	} {
		tr := b.Grow(y, allIdx(500), opt, rng)
		if !tr.HasBinCodes() {
			t.Fatal("builder-grown tree should carry bin codes")
		}
		back, err := FromFlatWithCodes(tr.Flatten())
		if err != nil {
			t.Fatal(err)
		}
		if !back.HasBinCodes() {
			t.Fatal("FromFlatWithCodes dropped the codes")
		}
		bm := BinWithEdges(b.Edges(), probe)
		const scale = 0.05
		want := make([]float64, len(probe))
		got := make([]float64, len(probe))
		tr.AccumulateBatch(probe, scale, want)
		back.AccumulateBinned(bm, scale, got)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("opt %+v row %d: original float=%v reloaded binned=%v", opt, i, want[i], got[i])
			}
		}
	}
}

// TestFromFlatDropsCodes pins the legacy path: a codeless rebuild predicts
// identically over float rows but refuses the binned fast path.
func TestFromFlatDropsCodes(t *testing.T) {
	X, y := synth(400, 74)
	b := NewBuilder(X)
	tr := b.Grow(y, allIdx(400), Options{MaxSplits: 10}, nil)
	back, err := FromFlat(tr.Flatten())
	if err != nil {
		t.Fatal(err)
	}
	if back.HasBinCodes() {
		t.Fatal("FromFlat should discard bin codes")
	}
	for _, row := range X[:50] {
		if tr.Predict(row) != back.Predict(row) {
			t.Fatal("codeless rebuild changed predictions")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AccumulateBinned on a codeless tree should panic")
		}
	}()
	back.AccumulateBinned(b.Binned(), 0.1, make([]float64, len(X)))
}

// TestBinWithEdgesMatchesBuilderBin checks the standalone encoder against
// the builder's own: same edges, same rows, same codes.
func TestBinWithEdgesMatchesBuilderBin(t *testing.T) {
	X, _ := synth(300, 75)
	probe, _ := synth(120, 76)
	b := NewBuilder(X)
	if !reflect.DeepEqual(b.Bin(probe), BinWithEdges(b.Edges(), probe)) {
		t.Fatal("BinWithEdges(builder.Edges(), rows) differs from builder.Bin(rows)")
	}
}
