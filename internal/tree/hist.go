package tree

// This file is the fast histogram split search: flat structure-of-arrays
// bin statistics, sibling-histogram subtraction, and a feature-parallel
// build. It is the default Grow path; Options.ExactHistograms (and
// NoBatch) keep the reference per-node scan in tree.go alive for
// equivalence tests and benchmarks. The contract between the two modes —
// where they are bit-identical and where only a tolerance holds — is
// DESIGN.md §13.

import (
	"math"
	"math/bits"
	"math/rand"
	"sync"
)

// hist holds one node's split statistics in a flat SoA layout: the p'th
// candidate feature's bins occupy [p*maxBins, (p+1)*maxBins) of both
// planes. Counts subtract exactly, so a derived sibling's counts — and
// with them minLeaf feasibility — match a direct accumulation
// bit-for-bit, while derived sums can differ in the last bits.
// Per-bin sum-of-squares is not tracked: the split objective compares
// parent and children SSE, and the Σy² term is common to both sides of
// that difference, so it cancels out of every gain.
type hist struct {
	sum []float64
	cnt []int32
}

func newHist(nFeats int) *hist {
	n := nFeats * maxBins
	return &hist{sum: make([]float64, n), cnt: make([]int32, n)}
}

// clear zeroes both planes (whole-slice loops compile to memclr).
func (h *hist) clear() {
	for i := range h.sum {
		h.sum[i] = 0
	}
	for i := range h.cnt {
		h.cnt[i] = 0
	}
}

// sub derives the sibling histogram in place: h -= o, the
// parent-minus-child trick that replaces a scan over the larger child's
// rows with two flat subtraction loops.
func (h *hist) sub(o *hist) {
	hs := h.sum
	for i, v := range o.sum {
		hs[i] -= v
	}
	hc := h.cnt
	for i, v := range o.cnt {
		hc[i] -= v
	}
}

// getHist returns a zeroed full-width histogram from the builder's pool.
func (b *Builder) getHist() *hist {
	h := b.histPool.Get().(*hist)
	h.clear()
	return h
}

func (b *Builder) putHist(h *hist) { b.histPool.Put(h) }

// accumulate adds idx's rows into h for feats, whose first feature owns
// block pos of h. Features are processed four at a time so each row's
// index and target load feeds four independent accumulation chains; per
// (feature, bin) slot the additions still happen in idx order, exactly
// as in the reference scan, so directly-built histograms carry
// bit-identical sums.
func (b *Builder) accumulate(h *hist, y []float64, idx []int, feats []int, pos int) {
	// Bin codes are < maxBins by construction (at most maxBins-1 edges),
	// so masking with maxBins-1 is a no-op that, combined with the
	// fixed-size array views, lets the compiler drop every bounds check
	// in the inner loop.
	g := 0
	for ; g+8 <= len(feats); g += 8 {
		base := (pos + g) * maxBins
		s0 := (*[maxBins]float64)(h.sum[base:])
		s1 := (*[maxBins]float64)(h.sum[base+maxBins:])
		s2 := (*[maxBins]float64)(h.sum[base+2*maxBins:])
		s3 := (*[maxBins]float64)(h.sum[base+3*maxBins:])
		s4 := (*[maxBins]float64)(h.sum[base+4*maxBins:])
		s5 := (*[maxBins]float64)(h.sum[base+5*maxBins:])
		s6 := (*[maxBins]float64)(h.sum[base+6*maxBins:])
		s7 := (*[maxBins]float64)(h.sum[base+7*maxBins:])
		n0 := (*[maxBins]int32)(h.cnt[base:])
		n1 := (*[maxBins]int32)(h.cnt[base+maxBins:])
		n2 := (*[maxBins]int32)(h.cnt[base+2*maxBins:])
		n3 := (*[maxBins]int32)(h.cnt[base+3*maxBins:])
		n4 := (*[maxBins]int32)(h.cnt[base+4*maxBins:])
		n5 := (*[maxBins]int32)(h.cnt[base+5*maxBins:])
		n6 := (*[maxBins]int32)(h.cnt[base+6*maxBins:])
		n7 := (*[maxBins]int32)(h.cnt[base+7*maxBins:])
		c0 := b.binned[feats[g]]
		c1 := b.binned[feats[g+1]]
		c2 := b.binned[feats[g+2]]
		c3 := b.binned[feats[g+3]]
		c4 := b.binned[feats[g+4]]
		c5 := b.binned[feats[g+5]]
		c6 := b.binned[feats[g+6]]
		c7 := b.binned[feats[g+7]]
		for _, i := range idx {
			yi := y[i]
			k0 := c0[i] & (maxBins - 1)
			s0[k0] += yi
			n0[k0]++
			k1 := c1[i] & (maxBins - 1)
			s1[k1] += yi
			n1[k1]++
			k2 := c2[i] & (maxBins - 1)
			s2[k2] += yi
			n2[k2]++
			k3 := c3[i] & (maxBins - 1)
			s3[k3] += yi
			n3[k3]++
			k4 := c4[i] & (maxBins - 1)
			s4[k4] += yi
			n4[k4]++
			k5 := c5[i] & (maxBins - 1)
			s5[k5] += yi
			n5[k5]++
			k6 := c6[i] & (maxBins - 1)
			s6[k6] += yi
			n6[k6]++
			k7 := c7[i] & (maxBins - 1)
			s7[k7] += yi
			n7[k7]++
		}
	}
	for ; g+4 <= len(feats); g += 4 {
		base := (pos + g) * maxBins
		s0 := (*[maxBins]float64)(h.sum[base:])
		s1 := (*[maxBins]float64)(h.sum[base+maxBins:])
		s2 := (*[maxBins]float64)(h.sum[base+2*maxBins:])
		s3 := (*[maxBins]float64)(h.sum[base+3*maxBins:])
		n0 := (*[maxBins]int32)(h.cnt[base:])
		n1 := (*[maxBins]int32)(h.cnt[base+maxBins:])
		n2 := (*[maxBins]int32)(h.cnt[base+2*maxBins:])
		n3 := (*[maxBins]int32)(h.cnt[base+3*maxBins:])
		c0 := b.binned[feats[g]]
		c1 := b.binned[feats[g+1]]
		c2 := b.binned[feats[g+2]]
		c3 := b.binned[feats[g+3]]
		for _, i := range idx {
			yi := y[i]
			k0 := c0[i] & (maxBins - 1)
			s0[k0] += yi
			n0[k0]++
			k1 := c1[i] & (maxBins - 1)
			s1[k1] += yi
			n1[k1]++
			k2 := c2[i] & (maxBins - 1)
			s2[k2] += yi
			n2[k2]++
			k3 := c3[i] & (maxBins - 1)
			s3[k3] += yi
			n3[k3]++
		}
	}
	for ; g < len(feats); g++ {
		base := (pos + g) * maxBins
		s := (*[maxBins]float64)(h.sum[base:])
		n := (*[maxBins]int32)(h.cnt[base:])
		col := b.binned[feats[g]]
		for _, i := range idx {
			k := col[i] & (maxBins - 1)
			s[k] += y[i]
			n[k]++
		}
	}
}

// isIdentity reports whether idx is exactly 0..len(idx)-1 — the
// all-rows sample boosting passes for every root histogram.
func isIdentity(idx []int) bool {
	for i, v := range idx {
		if v != i {
			return false
		}
	}
	return true
}

// accumulateDenseSums is accumulate for the identity sample
// (idx = 0..n-1), sums plane only: the caller pre-fills the count plane
// from the builder's static rootCnt, so each row costs one float add
// per feature, and ranging over the rows directly lets the compiler
// drop the per-row bounds checks an arbitrary idx forces. Rows are
// visited in the same ascending order, so the sums are bit-identical
// to accumulate's over the identity idx.
func (b *Builder) accumulateDenseSums(h *hist, y []float64, feats []int, pos int) {
	n := b.n
	y = y[:n]
	g := 0
	for ; g+8 <= len(feats); g += 8 {
		base := (pos + g) * maxBins
		s0 := (*[maxBins]float64)(h.sum[base:])
		s1 := (*[maxBins]float64)(h.sum[base+maxBins:])
		s2 := (*[maxBins]float64)(h.sum[base+2*maxBins:])
		s3 := (*[maxBins]float64)(h.sum[base+3*maxBins:])
		s4 := (*[maxBins]float64)(h.sum[base+4*maxBins:])
		s5 := (*[maxBins]float64)(h.sum[base+5*maxBins:])
		s6 := (*[maxBins]float64)(h.sum[base+6*maxBins:])
		s7 := (*[maxBins]float64)(h.sum[base+7*maxBins:])
		c0 := b.binned[feats[g]][:n]
		c1 := b.binned[feats[g+1]][:n]
		c2 := b.binned[feats[g+2]][:n]
		c3 := b.binned[feats[g+3]][:n]
		c4 := b.binned[feats[g+4]][:n]
		c5 := b.binned[feats[g+5]][:n]
		c6 := b.binned[feats[g+6]][:n]
		c7 := b.binned[feats[g+7]][:n]
		for i, yi := range y {
			k0 := c0[i] & (maxBins - 1)
			s0[k0] += yi
			k1 := c1[i] & (maxBins - 1)
			s1[k1] += yi
			k2 := c2[i] & (maxBins - 1)
			s2[k2] += yi
			k3 := c3[i] & (maxBins - 1)
			s3[k3] += yi
			k4 := c4[i] & (maxBins - 1)
			s4[k4] += yi
			k5 := c5[i] & (maxBins - 1)
			s5[k5] += yi
			k6 := c6[i] & (maxBins - 1)
			s6[k6] += yi
			k7 := c7[i] & (maxBins - 1)
			s7[k7] += yi
		}
	}
	for ; g+4 <= len(feats); g += 4 {
		base := (pos + g) * maxBins
		s0 := (*[maxBins]float64)(h.sum[base:])
		s1 := (*[maxBins]float64)(h.sum[base+maxBins:])
		s2 := (*[maxBins]float64)(h.sum[base+2*maxBins:])
		s3 := (*[maxBins]float64)(h.sum[base+3*maxBins:])
		c0 := b.binned[feats[g]][:n]
		c1 := b.binned[feats[g+1]][:n]
		c2 := b.binned[feats[g+2]][:n]
		c3 := b.binned[feats[g+3]][:n]
		for i, yi := range y {
			k0 := c0[i] & (maxBins - 1)
			s0[k0] += yi
			k1 := c1[i] & (maxBins - 1)
			s1[k1] += yi
			k2 := c2[i] & (maxBins - 1)
			s2[k2] += yi
			k3 := c3[i] & (maxBins - 1)
			s3[k3] += yi
		}
	}
	for ; g < len(feats); g++ {
		base := (pos + g) * maxBins
		s := (*[maxBins]float64)(h.sum[base:])
		col := b.binned[feats[g]][:n]
		for i, yi := range y {
			k := col[i] & (maxBins - 1)
			s[k] += yi
		}
	}
}

// buildHist accumulates idx's statistics for feats into h (which must
// be zeroed), sharding contiguous feature chunks across up to workers
// goroutines on large nodes. Every worker writes a disjoint block of h,
// so the histogram is bit-identical for any worker count.
func (b *Builder) buildHist(h *hist, y []float64, idx []int, feats []int, workers int) {
	b.histBuilt.Inc()
	// The all-rows identity sample — what boosting passes for every root
	// histogram — skips count accumulation entirely (counts are static
	// per builder: the cached rootCnt plane) and runs the sums-only,
	// bounds-check-free dense pass; the O(n) detection is negligible
	// against the n×features build.
	dense := len(idx) == b.n && isIdentity(idx)
	if dense {
		for p, f := range feats {
			copy(h.cnt[p*maxBins:(p+1)*maxBins], b.rootCnt[f*maxBins:(f+1)*maxBins])
		}
	}
	if workers > len(feats) {
		workers = len(feats)
	}
	if workers <= 1 || len(idx)*len(feats) < parallelScanMinWork {
		if dense {
			b.accumulateDenseSums(h, y, feats, 0)
		} else {
			b.accumulate(h, y, idx, feats, 0)
		}
		return
	}
	var wg sync.WaitGroup
	for c := 0; c < workers; c++ {
		lo := c * len(feats) / workers
		hi := (c + 1) * len(feats) / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			if dense {
				b.accumulateDenseSums(h, y, feats[lo:hi], lo)
			} else {
				b.accumulate(h, y, idx, feats[lo:hi], lo)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// recipTable returns [0, 1/1, 1/2, ..., 1/n] — the fast scan's
// replacement for its two per-bin divisions, which otherwise bound the
// scan on divider throughput.
func recipTable(n int) []float64 {
	t := make([]float64, n+1)
	for k := 1; k <= n; k++ {
		t[k] = 1 / float64(k)
	}
	return t
}

// scanHist finds the best split over h, whose p'th block holds feats[p]'s
// bins, returning the winning position within feats (-1 if none) and the
// winning split's left-side row count (so the caller's partition can
// skip its counting pass). Features are visited in order and ties keep
// the first maximum — the reference scan's tie-breaking rule. The score
// uses table-lookup reciprocal multiplies (sL²·recip[nL] instead of
// sL²/nL), which differ from the reference's divisions in the last
// bits: gains agree with scanFeatures only within rounding tolerance,
// part of the fast path's documented contract (DESIGN.md §13).
func (b *Builder) scanHist(h *hist, feats []int, recip []float64, sumTot float64, nTot, minLeaf int) (gain float64, pos, bin, nLBest int) {
	baseScore := sumTot * sumTot / float64(nTot)
	pos, bin = -1, -1
	for p, f := range feats {
		edges := b.edges[f]
		if len(edges) == 0 {
			continue // constant feature
		}
		base := p * maxBins
		sum := (*[maxBins]float64)(h.sum[base:])
		cnt := (*[maxBins]int32)(h.cnt[base:])
		nL, sL := 0, 0.0
		for k := 0; k < len(edges); k++ { // split at edge k: bins <= k go left
			kk := k & (maxBins - 1)
			c := int(cnt[kk])
			if c == 0 {
				// Empty bin: (nL, sL) and therefore the score are unchanged
				// from the previous bin, so this split can never strictly
				// beat an already-seen one (and an all-empty prefix has
				// nL = 0 < minLeaf). Skipping preserves the first-maximum
				// winner exactly.
				continue
			}
			nL += c
			sL += sum[kk]
			nR := nTot - nL
			if nL < minLeaf || nR < minLeaf {
				continue
			}
			sR := sumTot - sL
			score := sL*sL*recip[nL] + sR*sR*recip[nR]
			if g := score - baseScore; g > gain {
				gain, pos, bin, nLBest = g, p, k, nL
			}
		}
	}
	return gain, pos, bin, nLBest
}

// sparseScanMaxRows is the node size below which the sampled-feature
// path scans only the bins the node actually touches: with fewer rows
// than bins, zeroing and scanning all maxBins slots per feature costs
// more than the accumulation itself.
const sparseScanMaxRows = 32

// scanFeaturesSparse is the small-node split scan for sampled features
// (len(idx) <= sparseScanMaxRows). Per feature it accumulates into
// stack histograms while marking touched bins in a uint64 bitmask
// (maxBins is exactly 64), then walks the set bits in ascending order —
// sorted iteration for free, no per-row branch — and re-zeroes only
// what it touched. The cumulative (nL, sL) state is constant across a
// run of untouched bins, so the dense scan's first maximum always lands
// on a touched bin (the all-untouched prefix has nL = 0 < minLeaf):
// results are identical to scanning every bin. Like scanHist it scores
// with reciprocal-table multiplies, so gains match the exact reference
// only within tolerance.
func (b *Builder) scanFeaturesSparse(y []float64, idx []int, feats []int, recip []float64, sumTot float64, nTot, minLeaf int) (gain float64, pos, bin, nLBest int) {
	baseScore := sumTot * sumTot / float64(nTot)
	var cnt [maxBins]int32
	var sum [maxBins]float64
	pos, bin = -1, -1
	for p, f := range feats {
		edges := b.edges[f]
		if len(edges) == 0 {
			continue // constant feature
		}
		col := b.binned[f]
		var mask uint64
		for _, i := range idx {
			k := col[i] & (maxBins - 1)
			mask |= 1 << k
			cnt[k]++
			sum[k] += y[i]
		}
		nL, sL := 0, 0.0
		for m := mask; m != 0; m &= m - 1 {
			k := bits.TrailingZeros64(m)
			nL += int(cnt[k])
			sL += sum[k]
			if k >= len(edges) {
				break // overflow bin: no edge to split at
			}
			nR := nTot - nL
			if nL < minLeaf || nR < minLeaf {
				continue
			}
			sR := sumTot - sL
			score := sL*sL*recip[nL] + sR*sR*recip[nR]
			if g := score - baseScore; g > gain {
				gain, pos, bin, nLBest = g, p, k, nL
			}
		}
		for m := mask; m != 0; m &= m - 1 {
			k := bits.TrailingZeros64(m)
			cnt[k], sum[k] = 0, 0
		}
	}
	return gain, pos, bin, nLBest
}

// permInto fills m with exactly rand.Perm(len(m))'s output — same
// values, same rng consumption — without allocating, so the sampled
// fast path draws the same feature subsets, in the same rng sequence
// position, as the exact reference.
func permInto(rng *rand.Rand, m []int) {
	for i := range m {
		j := rng.Intn(i + 1)
		m[i] = m[j]
		m[j] = i
	}
}

// grower is one Grow call's split-finding state. It dispatches each
// leaf's search to one of three paths:
//
//   - exact: the reference bestSplit (Options.ExactHistograms/NoBatch);
//   - subtract: no feature sampling — every expandable leaf retains its
//     histogram, and each split builds only the smaller child's
//     histogram directly, deriving the larger as parent − sibling;
//   - sampled: per-node feature subsets (random forests) — subtraction
//     is impossible because the parent's histogram covers different
//     features, so each node builds its own over a reused scratch
//     histogram, with the touched-bins scan for small nodes.
type grower struct {
	b   *Builder
	y   []float64
	opt Options
	rng *rand.Rand

	exact    bool
	subtract bool
	feats    []int     // candidate features in subtract mode (all of them)
	mtry     int       // sampled feature count in sampled mode
	perm     []int     // sampled mode: reusable feature permutation
	scratch  *hist     // sampled mode: reusable dense histogram
	recip    []float64 // reciprocal table covering every possible nL/nR
}

// init configures the grower for one Grow call over rootRows rows.
func (g *grower) init(rootRows int) {
	g.exact = g.opt.exact()
	if g.exact {
		return
	}
	g.recip = g.b.recip
	if rootRows >= len(g.recip) {
		// Bootstrap samples larger than the training matrix (possible via
		// a caller-supplied idx with repeats) need a wider table.
		g.recip = recipTable(rootRows)
	}
	if g.opt.FeatureFrac > 0 && g.opt.FeatureFrac < 1 && g.rng != nil {
		mtry := int(g.opt.FeatureFrac*float64(g.b.d) + 0.5)
		if mtry < 1 {
			mtry = 1
		}
		g.mtry = mtry
		g.perm = make([]int, g.b.d)
		return
	}
	g.subtract = true
	g.feats = g.b.allFeatures
}

func (g *grower) workers() int { return g.opt.Workers }

func (g *grower) findRoot(lr *leafRec) {
	switch {
	case g.exact:
		lr.gain, lr.feature, lr.bin = g.b.bestSplit(g.y, lr.idx, g.opt, g.rng)
	case !g.subtract:
		g.findSampled(lr)
	default:
		if len(lr.idx) >= 2*g.opt.minLeaf() {
			lr.h = g.b.getHist()
			g.b.buildHist(lr.h, g.y, lr.idx, g.feats, g.workers())
		}
		g.scanLeaf(lr)
	}
}

// findChildren computes both children's best splits after parent was
// expanded. In subtract mode this is where the tentpole saving lands:
// only the smaller child's rows are ever accumulated.
func (g *grower) findChildren(parent, left, right *leafRec) {
	if g.exact {
		left.gain, left.feature, left.bin = g.b.bestSplit(g.y, left.idx, g.opt, g.rng)
		right.gain, right.feature, right.bin = g.b.bestSplit(g.y, right.idx, g.opt, g.rng)
		return
	}
	if !g.subtract {
		g.findSampled(left)
		g.findSampled(right)
		return
	}
	min2 := 2 * g.opt.minLeaf()
	small, large := left, right
	if len(right.idx) < len(left.idx) {
		small, large = right, left
	}
	b := g.b
	switch {
	case len(small.idx) >= min2:
		small.h = b.getHist()
		b.buildHist(small.h, g.y, small.idx, g.feats, g.workers())
		if len(large.idx) >= min2 {
			parent.h.sub(small.h)
			large.h, parent.h = parent.h, nil
			b.histSubtracted.Inc()
		}
	case len(large.idx) >= min2:
		// The small side can't split, so nothing needs its histogram:
		// build the large child directly instead of via subtraction.
		large.h = b.getHist()
		b.buildHist(large.h, g.y, large.idx, g.feats, g.workers())
	}
	if parent.h != nil {
		b.putHist(parent.h)
		parent.h = nil
	}
	g.scanLeaf(small)
	g.scanLeaf(large)
}

// scanLeaf scores a leaf whose histogram (if splittable) is already in
// lr.h, and releases the histogram as soon as the leaf is known to
// never expand.
func (g *grower) scanLeaf(lr *leafRec) {
	nTot := len(lr.idx)
	if lr.h == nil || nTot < 2*g.opt.minLeaf() {
		lr.gain, lr.feature, lr.bin = 0, -1, -1
		g.releaseLeaf(lr)
		return
	}
	sumTot := 0.0
	for _, i := range lr.idx {
		sumTot += g.y[i]
	}
	gain, pos, bin, nl := g.b.scanHist(lr.h, g.feats, g.recip, sumTot, nTot, g.opt.minLeaf())
	if pos < 0 || math.IsNaN(gain) || gain <= 1e-12 {
		lr.gain, lr.feature, lr.bin = 0, -1, -1
		g.releaseLeaf(lr)
		return
	}
	lr.gain, lr.feature, lr.bin, lr.nl = gain, g.feats[pos], bin, nl
}

// findSampled is the per-node search with feature subsampling: same rng
// consumption order as the exact reference (no draw below 2·minLeaf,
// one permutation per scanned node), then a direct histogram build over
// the sampled features only.
func (g *grower) findSampled(lr *leafRec) {
	nTot := len(lr.idx)
	if nTot < 2*g.opt.minLeaf() {
		lr.gain, lr.feature, lr.bin = 0, -1, -1
		return
	}
	sumTot := 0.0
	for _, i := range lr.idx {
		sumTot += g.y[i]
	}
	permInto(g.rng, g.perm)
	feats := g.perm[:g.mtry]
	var gain float64
	var pos, bin, nl int
	if nTot <= sparseScanMaxRows {
		gain, pos, bin, nl = g.b.scanFeaturesSparse(g.y, lr.idx, feats, g.recip, sumTot, nTot, g.opt.minLeaf())
	} else {
		if g.scratch == nil {
			g.scratch = newHist(g.mtry)
		}
		g.b.buildHist(g.scratch, g.y, lr.idx, feats, g.workers())
		gain, pos, bin, nl = g.b.scanHist(g.scratch, feats, g.recip, sumTot, nTot, g.opt.minLeaf())
		g.scratch.clear()
	}
	if pos < 0 || math.IsNaN(gain) || gain <= 1e-12 {
		lr.gain, lr.feature, lr.bin = 0, -1, -1
		return
	}
	lr.gain, lr.feature, lr.bin, lr.nl = gain, feats[pos], bin, nl
}

func (g *grower) releaseLeaf(lr *leafRec) {
	if lr.h != nil {
		g.b.putHist(lr.h)
		lr.h = nil
	}
}

// release returns the frontier's retained histograms to the pool once
// growth stops (budget exhausted or no positive gain left).
func (g *grower) release(leaves []*leafRec) {
	for _, lr := range leaves {
		g.releaseLeaf(lr)
	}
}
