// Package tree implements CART-style regression trees ([22] in the paper)
// grown best-first to a node budget — the paper's tree complexity (tc)
// parameter. Trees are the sub-models of both Hierarchical Modeling
// (internal/hm) and the random-forest baseline (internal/rf).
//
// Split finding uses per-feature histogram binning so that growing the
// thousands of small trees a boosted model needs stays cheap: a Builder
// bins the design matrix once, and each Grow call only accumulates bin
// statistics for its sample. Grown trees store their nodes in a flat
// structure-of-arrays layout so batch prediction (PredictBatch,
// AccumulateBatch) streams rows over a tree whose node arrays stay hot
// in cache — the tree-at-a-time evaluation order the GA and boosting hot
// paths depend on.
package tree

import (
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/obs"
)

// Options controls tree growth.
type Options struct {
	// MaxSplits is the number of internal (split) nodes — the paper's
	// tree complexity tc. 1 yields a stump.
	MaxSplits int
	// MinLeaf is the minimum samples per leaf (default 5).
	MinLeaf int
	// FeatureFrac is the fraction of features considered per split
	// (default 1; random forests use less).
	FeatureFrac float64
	// Workers bounds the goroutines one split-finding scan may use on
	// large nodes (0 or 1 = serial). The grown tree is identical for any
	// value: feature chunks are scanned independently and merged with the
	// serial first-maximum tie-breaking rule.
	Workers int
	// NoBatch restores the reference one-feature-at-a-time split scan
	// instead of the grouped scan, and implies ExactHistograms. The flag
	// exists so benchmarks and equivalence tests can compare against the
	// pre-optimization baseline.
	NoBatch bool
	// ExactHistograms restores the reference split search in which every
	// node accumulates its own histogram directly from its rows. The
	// default (false) is the fast path: without feature sampling each
	// split builds only the smaller child's histogram and derives the
	// larger one as parent − sibling, halving accumulation work per
	// level. Derived sums can differ from directly-accumulated ones in
	// the last floating-point bits, so a fast-path tree may pick a
	// different split where two candidates' gains are within rounding
	// noise of each other — the tolerance contract is documented in
	// DESIGN.md §13. Both modes are deterministic for any
	// Workers/GOMAXPROCS value.
	ExactHistograms bool
}

// exact reports whether growth must use the reference per-node
// histogram accumulation (NoBatch is the stricter reference mode and
// implies it).
func (o Options) exact() bool { return o.ExactHistograms || o.NoBatch }

func (o Options) minLeaf() int {
	if o.MinLeaf <= 0 {
		return 5
	}
	return o.MinLeaf
}

func (o Options) maxSplits() int {
	if o.MaxSplits <= 0 {
		return 1
	}
	return o.MaxSplits
}

// leafMarker in the feature array distinguishes leaves from splits.
const leafMarker = int32(-1)

// Tree is a trained regression tree. Nodes live in parallel flat arrays
// (structure-of-arrays): feature[i] < 0 marks node i as a leaf whose value
// is thresh[i]; otherwise thresh[i] is the split threshold on feature[i]
// with children left[i]/right[i].
type Tree struct {
	feature []int32
	thresh  []float64
	left    []int32
	right   []int32
	// bins holds, for split nodes grown by a Builder, the histogram bin
	// whose edge is the node's threshold — the key to evaluating the tree
	// over pre-binned rows (AccumulateBinned). Nil for reloaded trees.
	bins []uint8
	// leaves caches the leaf count so NumLeaves is O(1).
	leaves int
	// gains accumulates the SSE reduction attributed to each feature's
	// committed splits — the raw material of feature importance.
	gains []float64
}

// Gains returns the per-feature SSE reduction of this tree's splits (nil
// for trees grown before any split committed). The slice is shared; do
// not mutate it.
func (t *Tree) Gains() []float64 { return t.gains }

// Predict returns the leaf value reached by x.
func (t *Tree) Predict(x []float64) float64 {
	i := int32(0)
	for {
		f := t.feature[i]
		if f < 0 {
			return t.thresh[i]
		}
		if x[f] <= t.thresh[i] {
			i = t.left[i]
		} else {
			i = t.right[i]
		}
	}
}

// PredictBatch writes the prediction for every row of X into out
// (len(out) must be at least len(X)). One tree's node arrays are streamed
// over all rows before the caller moves to the next tree, so an ensemble
// evaluates each small tree from cache instead of re-walking a cold tree
// per row. Results are bit-identical to calling Predict per row.
func (t *Tree) PredictBatch(X [][]float64, out []float64) {
	feature, thresh, left, right := t.feature, t.thresh, t.left, t.right
	for r, x := range X {
		i := int32(0)
		for {
			f := feature[i]
			if f < 0 {
				out[r] = thresh[i]
				break
			}
			if x[f] <= thresh[i] {
				i = left[i]
			} else {
				i = right[i]
			}
		}
	}
}

// AccumulateBatch adds scale × prediction to out[r] for every row of X —
// the fused update boosting and forest averaging perform per tree
// (out[r] += scale·Predict(X[r])), evaluated tree-at-a-time.
func (t *Tree) AccumulateBatch(X [][]float64, scale float64, out []float64) {
	feature, thresh, left, right := t.feature, t.thresh, t.left, t.right
	for r, x := range X {
		i := int32(0)
		for {
			f := feature[i]
			if f < 0 {
				out[r] += scale * thresh[i]
				break
			}
			if x[f] <= thresh[i] {
				i = left[i]
			} else {
				i = right[i]
			}
		}
	}
}

// AccumulateBinned adds scale × prediction to out[r] for every encoded
// row of bm — the boosting update evaluated over pre-binned data. Every
// split threshold is a bin edge, so comparing uint8 bin codes reaches
// exactly the leaf a float walk would: results are bit-identical to
// AccumulateBatch over the original rows, but each node touches a byte
// column that stays resident in cache instead of row-major float data.
// Valid only for trees carrying bin codes against the edges that encoded
// bm: trees grown in-process by that Builder, or trees reloaded via
// FromFlatWithCodes with bm encoded from the persisted edges
// (BinWithEdges). Trees reloaded via FromFlat carry no bin codes.
func (t *Tree) AccumulateBinned(bm *BinMatrix, scale float64, out []float64) {
	if len(t.bins) != len(t.feature) {
		panic("tree: AccumulateBinned on a tree without bin codes (grown by another builder or reloaded)")
	}
	feature, bins, left, right, thresh := t.feature, t.bins, t.left, t.right, t.thresh
	for r := 0; r < bm.n; r++ {
		i := int32(0)
		for {
			f := feature[i]
			if f < 0 {
				out[r] += scale * thresh[i]
				break
			}
			if bm.cols[f][r] <= bins[i] {
				i = left[i]
			} else {
				i = right[i]
			}
		}
	}
}

// HasBinCodes reports whether the tree carries the per-split bin codes
// AccumulateBinned needs: true for trees grown in-process by a Builder
// and for trees reloaded via FromFlatWithCodes, false after FromFlat.
func (t *Tree) HasBinCodes() bool {
	return len(t.feature) > 0 && len(t.bins) == len(t.feature)
}

// NumNodes returns the total node count (splits + leaves).
func (t *Tree) NumNodes() int { return len(t.feature) }

// NumLeaves returns the leaf count, maintained at build time (O(1)).
func (t *Tree) NumLeaves() int { return t.leaves }

// maxBins is the histogram resolution for split finding.
const maxBins = 64

// parallelScanMinWork is the rows×features product below which a split
// scan stays serial: spawning goroutines costs more than the scan.
const parallelScanMinWork = 1 << 14

// Builder pre-bins a design matrix so many trees can be grown over
// different targets and samples without re-sorting features. A Builder is
// safe for concurrent Grow calls once constructed: growth only reads the
// binned matrix, and the attached counters are atomic.
type Builder struct {
	n, d        int
	binned      [][]uint8   // [feature][row] -> bin index (one flat backing array)
	edges       [][]float64 // [feature][bin] -> upper threshold of bin
	x           [][]float64 // original rows (for thresholds only)
	allFeatures []int       // 0..d-1, reused when no feature sampling

	// histPool recycles full-width node histograms between Grow calls
	// (the sibling-subtraction path retains one per expandable leaf).
	histPool sync.Pool
	// recip[k] = 1/k for k <= n: the fast split scan turns its two
	// per-bin divisions into table-lookup multiplies (hist.go).
	recip []float64
	// rootCnt[f*maxBins+k] counts the rows in feature f's bin k over the
	// whole matrix. Counts don't depend on targets, so a root histogram
	// over the identity sample copies this plane and accumulates sums
	// only (hist.go buildHist).
	rootCnt []int32

	// Metrics are nil unless Instrument attached a registry; obs metrics
	// no-op on nil receivers, so Grow records unconditionally.
	grown          *obs.Counter
	splits         *obs.Counter
	histBuilt      *obs.Counter
	histSubtracted *obs.Counter
	reg            *obs.Registry // grow span timing
}

// Instrument makes every subsequent Grow count trees grown and splits
// committed in reg ("tree.grown", "tree.splits"), histogram work
// ("tree.hist.built" direct accumulations, "tree.hist.subtracted"
// sibling derivations), and time itself under a "tree.grow" span. A nil
// registry detaches. The counters are shared safely with any other
// registry user.
func (b *Builder) Instrument(reg *obs.Registry) {
	b.grown = reg.Counter("tree.grown")
	b.splits = reg.Counter("tree.splits")
	b.histBuilt = reg.Counter("tree.hist.built")
	b.histSubtracted = reg.Counter("tree.hist.subtracted")
	b.reg = reg
}

// NewBuilder bins X (n rows × d features).
func NewBuilder(X [][]float64) *Builder {
	n := len(X)
	d := 0
	if n > 0 {
		d = len(X[0])
	}
	b := &Builder{n: n, d: d, x: X,
		binned:      make([][]uint8, d),
		edges:       make([][]float64, d),
		allFeatures: make([]int, d),
	}
	for f := range b.allFeatures {
		b.allFeatures[f] = f
	}
	b.histPool.New = func() any { return newHist(d) }
	b.recip = recipTable(n)
	// One flat backing array for all feature columns keeps the binned
	// matrix contiguous, so a histogram build walking several columns
	// stays within one allocation.
	flat := make([]uint8, n*d)
	vals := make([]float64, n)
	for f := 0; f < d; f++ {
		for i := 0; i < n; i++ {
			vals[i] = X[i][f]
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		// Quantile bin edges; duplicates collapse for discrete features.
		edges := make([]float64, 0, maxBins-1)
		for k := 1; k < maxBins; k++ {
			v := sorted[k*(n-1)/maxBins]
			if len(edges) == 0 || v > edges[len(edges)-1] {
				edges = append(edges, v)
			}
		}
		b.edges[f] = edges
		col := flat[f*n : (f+1)*n : (f+1)*n]
		for i := 0; i < n; i++ {
			col[i] = uint8(sort.SearchFloat64s(edges, vals[i]))
			// bin k means value <= edges[k] (edge k is the bin's
			// inclusive upper threshold); the last bin is overflow.
		}
		b.binned[f] = col
	}
	b.rootCnt = make([]int32, d*maxBins)
	for f := 0; f < d; f++ {
		cnt := (*[maxBins]int32)(b.rootCnt[f*maxBins:])
		for _, k := range b.binned[f] {
			cnt[k&(maxBins-1)]++
		}
	}
	return b
}

// N returns the number of rows the builder was constructed with.
func (b *Builder) N() int { return b.n }

// BinMatrix is a set of rows pre-encoded into a Builder's histogram bins,
// one uint8 column per feature. Trees grown by that builder can be
// evaluated over a BinMatrix with byte compares (Tree.AccumulateBinned)
// instead of float compares over row-major data — the representation the
// boosting inner loop streams every round.
type BinMatrix struct {
	cols [][]uint8 // [feature][row] -> bin index
	n    int
}

// Len returns the number of encoded rows.
func (bm *BinMatrix) Len() int { return bm.n }

// Bin encodes rows of X (same feature width as the builder's matrix) into
// the builder's bins. A value lands in bin k when it is <= the bin's
// inclusive upper edge, exactly the builder's own binning rule, so
// x[f] <= thresh holds iff the encoded value is <= the threshold's bin.
func (b *Builder) Bin(X [][]float64) *BinMatrix {
	return BinWithEdges(b.edges, X)
}

// BinWithEdges encodes rows of X into the histogram bins described by
// edges (per feature, ascending upper thresholds, as returned by
// Builder.Edges), applying the builder's binning rule without needing the
// builder itself. Trees whose bin codes were produced against the same
// edges evaluate over the result exactly as over a Builder.Bin matrix —
// this is how a model reloaded from disk (edges persisted alongside its
// trees) re-enters the binned training path.
func BinWithEdges(edges [][]float64, X [][]float64) *BinMatrix {
	bm := &BinMatrix{n: len(X), cols: make([][]uint8, len(edges))}
	n := len(X)
	flat := make([]uint8, n*len(edges))
	for f := range edges {
		e := edges[f]
		col := flat[f*n : (f+1)*n : (f+1)*n]
		for i, row := range X {
			col[i] = uint8(sort.SearchFloat64s(e, row[f]))
		}
		bm.cols[f] = col
	}
	return bm
}

// Edges returns a copy of the per-feature histogram bin edges derived
// from the builder's design matrix. Every split threshold of a tree the
// builder grows is one of these edges; persisting them alongside the
// trees' bin codes is what lets a reloaded model keep using the binned
// evaluation path (see BinWithEdges).
func (b *Builder) Edges() [][]float64 {
	out := make([][]float64, len(b.edges))
	for f, e := range b.edges {
		out[f] = append([]float64(nil), e...)
	}
	return out
}

// Binned returns the builder's own pre-binned training matrix as a
// BinMatrix. The storage is shared with the builder, not copied.
func (b *Builder) Binned() *BinMatrix { return &BinMatrix{cols: b.binned, n: b.n} }

// leafRec is one expandable leaf in the best-first frontier, carrying
// its cached best split and, in the sibling-subtraction mode, the
// leaf's retained histogram (hist.go).
type leafRec struct {
	node int32
	idx  []int
	gain float64
	// cached best split; nl is the winning split's left-side row count
	// (0 = unknown: the exact path doesn't track it, and a winning split
	// always has nl >= minLeaf >= 1).
	feature int
	bin     int
	nl      int
	h       *hist
}

// Grow fits a regression tree to targets y (len = builder rows) over the
// sample idx (row indices, possibly with repeats for a bootstrap sample).
// rng drives feature subsampling and may be nil when FeatureFrac >= 1.
func (b *Builder) Grow(y []float64, idx []int, opt Options, rng *rand.Rand) *Tree {
	sp := b.reg.StartSpan("tree.grow")
	defer sp.End()
	b.grown.Inc()
	t := &Tree{}
	if len(idx) == 0 {
		t.addLeaf(0)
		return t
	}
	g := &grower{b: b, y: y, opt: opt, rng: rng}
	g.init(len(idx))
	root := t.addLeaf(meanAt(y, idx))
	first := &leafRec{node: root, idx: idx}
	g.findRoot(first)
	leaves := []*leafRec{first}

	for splits := 0; splits < opt.maxSplits(); splits++ {
		// Best-first: expand the leaf with the largest gain.
		best := -1
		for i, lr := range leaves {
			if lr.gain > 0 && (best < 0 || lr.gain > leaves[best].gain) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		lr := leaves[best]
		f, bin := lr.feature, lr.bin
		b.splits.Inc()
		if t.gains == nil {
			t.gains = make([]float64, b.d)
		}
		t.gains[f] += lr.gain
		thresh := b.edges[f][bin]
		// Stable partition into one exact-size allocation: append-grown
		// slices would reallocate ~log2(n) times per split, and this loop
		// runs once per tree node across thousands of boosted trees.
		col, ub := b.binned[f], uint8(bin)
		nL := lr.nl
		if nL == 0 { // exact path: count the left side first
			for _, i := range lr.idx {
				if col[i] <= ub {
					nL++
				}
			}
		}
		mem := make([]int, len(lr.idx))
		li, ri := mem[:nL:nL], mem[nL:]
		lp, rp := 0, 0
		for _, i := range lr.idx {
			if col[i] <= ub {
				li[lp] = i
				lp++
			} else {
				ri[rp] = i
				rp++
			}
		}
		ln := t.addLeaf(meanAt(y, li))
		rn := t.addLeaf(meanAt(y, ri))
		t.setSplit(lr.node, f, thresh, uint8(bin), ln, rn)

		leftRec := &leafRec{node: ln, idx: li}
		rightRec := &leafRec{node: rn, idx: ri}
		if splits+1 < opt.maxSplits() || g.exact {
			g.findChildren(lr, leftRec, rightRec)
		} else {
			// Final split of the budget: these children can never be
			// expanded, so the fast path skips their split search (and
			// histogram work) entirely. The exact reference keeps the
			// original always-search behavior.
			g.releaseLeaf(lr)
		}
		leaves[best] = leftRec
		leaves = append(leaves, rightRec)
	}
	g.release(leaves)
	return t
}

func (t *Tree) addLeaf(v float64) int32 {
	t.feature = append(t.feature, leafMarker)
	t.thresh = append(t.thresh, v)
	t.left = append(t.left, 0)
	t.right = append(t.right, 0)
	t.bins = append(t.bins, 0)
	t.leaves++
	return int32(len(t.feature) - 1)
}

// setSplit converts leaf n into an internal split node whose threshold is
// the upper edge of histogram bin.
func (t *Tree) setSplit(n int32, f int, thresh float64, bin uint8, ln, rn int32) {
	t.feature[n] = int32(f)
	t.thresh[n] = thresh
	t.bins[n] = bin
	t.left[n] = ln
	t.right[n] = rn
	t.leaves--
}

func meanAt(y []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	s := 0.0
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

// bestSplit scans histogram statistics for the SSE-reducing split of idx.
// It returns the gain (variance reduction × n, 0 if none), the feature and
// the bin index whose edge is the threshold.
func (b *Builder) bestSplit(y []float64, idx []int, opt Options, rng *rand.Rand) (gain float64, feature, bin int) {
	nTot := len(idx)
	if nTot < 2*opt.minLeaf() {
		return 0, -1, -1
	}
	sumTot := 0.0
	for _, i := range idx {
		sumTot += y[i]
	}

	// Feature subsampling draws a non-empty subset per split (random
	// forests); mtry = max(1, frac·d).
	feats := b.allFeatures
	if opt.FeatureFrac > 0 && opt.FeatureFrac < 1 && rng != nil {
		mtry := int(opt.FeatureFrac*float64(b.d) + 0.5)
		if mtry < 1 {
			mtry = 1
		}
		feats = rng.Perm(b.d)[:mtry]
	}

	workers := opt.Workers
	if workers > len(feats) {
		workers = len(feats)
	}
	var pos int
	if workers > 1 && nTot*len(feats) >= parallelScanMinWork {
		gain, pos, bin = b.scanFeaturesParallel(y, idx, feats, sumTot, nTot, opt.minLeaf(), workers, !opt.NoBatch)
	} else {
		gain, pos, bin = b.scanFeatures(y, idx, feats, sumTot, nTot, opt.minLeaf(), !opt.NoBatch)
	}
	if pos < 0 || math.IsNaN(gain) || gain <= 1e-12 {
		return 0, -1, -1
	}
	return gain, feats[pos], bin
}

// groupScanMinRows is the node size at which the split scan switches to
// the grouped accumulation (scanFeaturesGrouped); below it, the plain
// one-feature-at-a-time pass is at least as fast. Both paths return
// bit-identical results, so the threshold is purely a speed knob.
const groupScanMinRows = 256

// scanFeatures finds the best split over feats, returning the winning
// position within feats (-1 if none). Ties keep the earliest position —
// the first-maximum rule the parallel merge must reproduce. grouped
// selects the batched accumulation for large nodes (false = the reference
// scan; both are bit-identical).
func (b *Builder) scanFeatures(y []float64, idx []int, feats []int, sumTot float64, nTot, minLeaf int, grouped bool) (gain float64, pos, bin int) {
	if grouped && len(idx) >= groupScanMinRows && len(feats) >= 2 {
		return b.scanFeaturesGrouped(y, idx, feats, sumTot, nTot, minLeaf)
	}
	baseScore := sumTot * sumTot / float64(nTot)
	var cnt [maxBins]int
	var sum [maxBins]float64
	pos, bin = -1, -1
	for fi, f := range feats {
		if len(b.edges[f]) == 0 {
			continue // constant feature
		}
		col := b.binned[f]
		nb := len(b.edges[f]) + 1
		for k := 0; k < nb; k++ {
			cnt[k], sum[k] = 0, 0
		}
		for _, i := range idx {
			k := col[i]
			cnt[k]++
			sum[k] += y[i]
		}
		nL, sL := 0, 0.0
		for k := 0; k < nb-1; k++ { // split at edge k: bins <= k go left
			nL += cnt[k]
			sL += sum[k]
			nR := nTot - nL
			if nL < minLeaf || nR < minLeaf {
				continue
			}
			sR := sumTot - sL
			score := sL*sL/float64(nL) + sR*sR/float64(nR)
			if g := score - baseScore; g > gain {
				gain, pos, bin = g, fi, k
			}
		}
	}
	return gain, pos, bin
}

// scanFeaturesGrouped is the batched split scan: features are processed
// four at a time, so one pass over the node's sample feeds four
// independent histograms — the row index and target are loaded once per
// row instead of once per feature, and the four floating-point
// accumulation chains are independent. Per (feature, bin) the additions
// happen in idx order exactly as in the plain scan, and features are
// evaluated in the same ascending order, so results are bit-identical.
func (b *Builder) scanFeaturesGrouped(y []float64, idx []int, feats []int, sumTot float64, nTot, minLeaf int) (gain float64, pos, bin int) {
	baseScore := sumTot * sumTot / float64(nTot)
	var cnt [4][maxBins]int32
	var sum [4][maxBins]float64
	pos, bin = -1, -1
	for g := 0; g < len(feats); g += 4 {
		gw := len(feats) - g
		if gw > 4 {
			gw = 4
		}
		for w := 0; w < gw; w++ {
			nb := len(b.edges[feats[g+w]]) + 1
			for k := 0; k < nb; k++ {
				cnt[w][k], sum[w][k] = 0, 0
			}
		}
		if gw == 4 {
			c0, c1, c2, c3 := b.binned[feats[g]], b.binned[feats[g+1]], b.binned[feats[g+2]], b.binned[feats[g+3]]
			for _, i := range idx {
				yi := y[i]
				k0 := c0[i]
				cnt[0][k0]++
				sum[0][k0] += yi
				k1 := c1[i]
				cnt[1][k1]++
				sum[1][k1] += yi
				k2 := c2[i]
				cnt[2][k2]++
				sum[2][k2] += yi
				k3 := c3[i]
				cnt[3][k3]++
				sum[3][k3] += yi
			}
		} else {
			for w := 0; w < gw; w++ {
				col := b.binned[feats[g+w]]
				hc, hs := &cnt[w], &sum[w]
				for _, i := range idx {
					k := col[i]
					hc[k]++
					hs[k] += y[i]
				}
			}
		}
		for w := 0; w < gw; w++ {
			fi := g + w
			edges := b.edges[feats[fi]]
			if len(edges) == 0 {
				continue // constant feature
			}
			nb := len(edges) + 1
			nL, sL := 0, 0.0
			for k := 0; k < nb-1; k++ { // split at edge k: bins <= k go left
				nL += int(cnt[w][k])
				sL += sum[w][k]
				nR := nTot - nL
				if nL < minLeaf || nR < minLeaf {
					continue
				}
				sR := sumTot - sL
				score := sL*sL/float64(nL) + sR*sR/float64(nR)
				if gn := score - baseScore; gn > gain {
					gain, pos, bin = gn, fi, k
				}
			}
		}
	}
	return gain, pos, bin
}

// scanFeaturesParallel splits feats into contiguous chunks scanned
// concurrently and merges the chunk winners in order with a strict
// greater-than rule — together with the in-chunk first-maximum rule this
// reproduces the serial scan's result exactly.
func (b *Builder) scanFeaturesParallel(y []float64, idx []int, feats []int, sumTot float64, nTot, minLeaf, workers int, grouped bool) (gain float64, pos, bin int) {
	type chunkBest struct {
		gain float64
		pos  int
		bin  int
	}
	results := make([]chunkBest, workers)
	var wg sync.WaitGroup
	for c := 0; c < workers; c++ {
		lo := c * len(feats) / workers
		hi := (c + 1) * len(feats) / workers
		if lo == hi {
			results[c] = chunkBest{pos: -1, bin: -1}
			continue
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			g, p, bn := b.scanFeatures(y, idx, feats[lo:hi], sumTot, nTot, minLeaf, grouped)
			if p >= 0 {
				p += lo
			}
			results[c] = chunkBest{gain: g, pos: p, bin: bn}
		}(c, lo, hi)
	}
	wg.Wait()
	gain, pos, bin = 0, -1, -1
	for _, r := range results {
		if r.pos >= 0 && r.gain > gain {
			gain, pos, bin = r.gain, r.pos, r.bin
		}
	}
	return gain, pos, bin
}
