// Package tree implements CART-style regression trees ([22] in the paper)
// grown best-first to a node budget — the paper's tree complexity (tc)
// parameter. Trees are the sub-models of both Hierarchical Modeling
// (internal/hm) and the random-forest baseline (internal/rf).
//
// Split finding uses per-feature histogram binning so that growing the
// thousands of small trees a boosted model needs stays cheap: a Builder
// bins the design matrix once, and each Grow call only accumulates bin
// statistics for its sample.
package tree

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/obs"
)

// Options controls tree growth.
type Options struct {
	// MaxSplits is the number of internal (split) nodes — the paper's
	// tree complexity tc. 1 yields a stump.
	MaxSplits int
	// MinLeaf is the minimum samples per leaf (default 5).
	MinLeaf int
	// FeatureFrac is the fraction of features considered per split
	// (default 1; random forests use less).
	FeatureFrac float64
}

func (o Options) minLeaf() int {
	if o.MinLeaf <= 0 {
		return 5
	}
	return o.MinLeaf
}

func (o Options) maxSplits() int {
	if o.MaxSplits <= 0 {
		return 1
	}
	return o.MaxSplits
}

// node is one tree node; leaves carry a prediction value.
type node struct {
	feature     int
	threshold   float64
	left, right int32
	value       float64
	leaf        bool
}

// Tree is a trained regression tree.
type Tree struct {
	nodes []node
	// gains accumulates the SSE reduction attributed to each feature's
	// committed splits — the raw material of feature importance.
	gains []float64
}

// Gains returns the per-feature SSE reduction of this tree's splits (nil
// for trees grown before any split committed). The slice is shared; do
// not mutate it.
func (t *Tree) Gains() []float64 { return t.gains }

// Predict returns the leaf value reached by x.
func (t *Tree) Predict(x []float64) float64 {
	i := int32(0)
	for {
		n := &t.nodes[i]
		if n.leaf {
			return n.value
		}
		if x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// NumNodes returns the total node count (splits + leaves).
func (t *Tree) NumNodes() int { return len(t.nodes) }

// NumLeaves returns the leaf count.
func (t *Tree) NumLeaves() int {
	c := 0
	for i := range t.nodes {
		if t.nodes[i].leaf {
			c++
		}
	}
	return c
}

// maxBins is the histogram resolution for split finding.
const maxBins = 64

// Builder pre-bins a design matrix so many trees can be grown over
// different targets and samples without re-sorting features.
type Builder struct {
	n, d        int
	binned      [][]uint8   // [feature][row] -> bin index
	edges       [][]float64 // [feature][bin] -> upper threshold of bin
	x           [][]float64 // original rows (for thresholds only)
	allFeatures []int       // 0..d-1, reused when no feature sampling

	// grown and splits are nil unless Instrument attached a registry;
	// obs metrics no-op on nil receivers, so Grow records unconditionally.
	grown  *obs.Counter
	splits *obs.Counter
}

// Instrument makes every subsequent Grow count trees grown and splits
// committed in reg ("tree.grown", "tree.splits"). A nil registry
// detaches. Growing is single-threaded per Builder, but the counters are
// shared safely with any other registry user.
func (b *Builder) Instrument(reg *obs.Registry) {
	b.grown = reg.Counter("tree.grown")
	b.splits = reg.Counter("tree.splits")
}

// NewBuilder bins X (n rows × d features).
func NewBuilder(X [][]float64) *Builder {
	n := len(X)
	d := 0
	if n > 0 {
		d = len(X[0])
	}
	b := &Builder{n: n, d: d, x: X,
		binned:      make([][]uint8, d),
		edges:       make([][]float64, d),
		allFeatures: make([]int, d),
	}
	for f := range b.allFeatures {
		b.allFeatures[f] = f
	}
	vals := make([]float64, n)
	for f := 0; f < d; f++ {
		for i := 0; i < n; i++ {
			vals[i] = X[i][f]
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		// Quantile bin edges; duplicates collapse for discrete features.
		edges := make([]float64, 0, maxBins-1)
		for k := 1; k < maxBins; k++ {
			v := sorted[k*(n-1)/maxBins]
			if len(edges) == 0 || v > edges[len(edges)-1] {
				edges = append(edges, v)
			}
		}
		b.edges[f] = edges
		col := make([]uint8, n)
		for i := 0; i < n; i++ {
			col[i] = uint8(sort.SearchFloat64s(edges, vals[i]))
			// bin k means value <= edges[k] (edge k is the bin's
			// inclusive upper threshold); the last bin is overflow.
		}
		b.binned[f] = col
	}
	return b
}

// N returns the number of rows the builder was constructed with.
func (b *Builder) N() int { return b.n }

// Grow fits a regression tree to targets y (len = builder rows) over the
// sample idx (row indices, possibly with repeats for a bootstrap sample).
// rng drives feature subsampling and may be nil when FeatureFrac >= 1.
func (b *Builder) Grow(y []float64, idx []int, opt Options, rng *rand.Rand) *Tree {
	b.grown.Inc()
	t := &Tree{}
	if len(idx) == 0 {
		t.nodes = []node{{leaf: true}}
		return t
	}
	root := t.addLeaf(meanAt(y, idx))
	type leafRec struct {
		node int32
		idx  []int
		gain float64
		// cached best split
		feature int
		bin     int
	}
	find := func(lr *leafRec) {
		lr.gain, lr.feature, lr.bin = b.bestSplit(y, lr.idx, opt, rng)
	}
	first := &leafRec{node: root, idx: idx}
	find(first)
	leaves := []*leafRec{first}

	for splits := 0; splits < opt.maxSplits(); splits++ {
		// Best-first: expand the leaf with the largest gain.
		best := -1
		for i, lr := range leaves {
			if lr.gain > 0 && (best < 0 || lr.gain > leaves[best].gain) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		lr := leaves[best]
		f, bin := lr.feature, lr.bin
		b.splits.Inc()
		if t.gains == nil {
			t.gains = make([]float64, b.d)
		}
		t.gains[f] += lr.gain
		thresh := b.edges[f][bin]
		var li, ri []int
		for _, i := range lr.idx {
			if b.binned[f][i] <= uint8(bin) {
				li = append(li, i)
			} else {
				ri = append(ri, i)
			}
		}
		ln := t.addLeaf(meanAt(y, li))
		rn := t.addLeaf(meanAt(y, ri))
		t.nodes[lr.node] = node{feature: f, threshold: thresh, left: ln, right: rn}

		leftRec := &leafRec{node: ln, idx: li}
		rightRec := &leafRec{node: rn, idx: ri}
		find(leftRec)
		find(rightRec)
		leaves[best] = leftRec
		leaves = append(leaves, rightRec)
	}
	return t
}

func (t *Tree) addLeaf(v float64) int32 {
	t.nodes = append(t.nodes, node{leaf: true, value: v})
	return int32(len(t.nodes) - 1)
}

func meanAt(y []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	s := 0.0
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

// bestSplit scans histogram statistics for the SSE-reducing split of idx.
// It returns the gain (variance reduction × n, 0 if none), the feature and
// the bin index whose edge is the threshold.
func (b *Builder) bestSplit(y []float64, idx []int, opt Options, rng *rand.Rand) (gain float64, feature, bin int) {
	nTot := len(idx)
	if nTot < 2*opt.minLeaf() {
		return 0, -1, -1
	}
	sumTot := 0.0
	for _, i := range idx {
		sumTot += y[i]
	}
	baseScore := sumTot * sumTot / float64(nTot)

	var cnt [maxBins]int
	var sum [maxBins]float64
	feature, bin = -1, -1

	// Feature subsampling draws a non-empty subset per split (random
	// forests); mtry = max(1, frac·d).
	feats := b.allFeatures
	if opt.FeatureFrac > 0 && opt.FeatureFrac < 1 && rng != nil {
		mtry := int(opt.FeatureFrac*float64(b.d) + 0.5)
		if mtry < 1 {
			mtry = 1
		}
		feats = rng.Perm(b.d)[:mtry]
	}

	for _, f := range feats {
		if len(b.edges[f]) == 0 {
			continue // constant feature
		}
		col := b.binned[f]
		nb := len(b.edges[f]) + 1
		for k := 0; k < nb; k++ {
			cnt[k], sum[k] = 0, 0
		}
		for _, i := range idx {
			k := col[i]
			cnt[k]++
			sum[k] += y[i]
		}
		nL, sL := 0, 0.0
		for k := 0; k < nb-1; k++ { // split at edge k: bins <= k go left
			nL += cnt[k]
			sL += sum[k]
			nR := nTot - nL
			if nL < opt.minLeaf() || nR < opt.minLeaf() {
				continue
			}
			sR := sumTot - sL
			score := sL*sL/float64(nL) + sR*sR/float64(nR)
			if g := score - baseScore; g > gain {
				gain, feature, bin = g, f, k
			}
		}
	}
	if math.IsNaN(gain) || gain <= 1e-12 {
		return 0, -1, -1
	}
	return gain, feature, bin
}
