package tree

import (
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/obs"
)

// relDiff is |a-b| / max(1, |a|, |b|) — the fast-vs-exact tolerance
// metric documented in DESIGN.md §13.
func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	den := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return d / den
}

// histDataset builds an n×d matrix mixing continuous, discrete and
// skewed columns, with a target driven by a few features plus noise —
// shaped to exercise full, sparse and near-tied histogram bins.
func histDataset(n, d int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = make([]float64, d)
		for j := range X[i] {
			switch j % 3 {
			case 0:
				X[i][j] = rng.Float64() * 100
			case 1:
				X[i][j] = float64(rng.Intn(4)) // discrete: few bins
			default:
				X[i][j] = math.Exp(rng.NormFloat64() * 2) // skewed
			}
		}
		y[i] = X[i][0] + 3*X[i][1] + X[i][2%d]*0.1 + rng.NormFloat64()*0.5
	}
	return X, y
}

// TestFastMatchesExactWithinTolerance pins the DESIGN.md §13 contract:
// for every growth configuration, the fast path's predictions agree
// with the exact reference within 1e-6 relative tolerance. Structure
// may differ where two candidate splits' gains tie within rounding
// noise, so the assertion is on predictions, not node arrays.
func TestFastMatchesExactWithinTolerance(t *testing.T) {
	const tol = 1e-6
	type tc struct {
		name string
		n, d int
		opt  Options
		boot bool // bootstrap sample instead of identity
	}
	cases := []tc{
		{"stump", 400, 8, Options{MaxSplits: 1}, false},
		{"tc5", 1000, 20, Options{MaxSplits: 5}, false},
		{"tc5-bootstrap", 1000, 20, Options{MaxSplits: 5}, true},
		{"deep", 800, 12, Options{MaxSplits: 63, MinLeaf: 2}, false},
		{"sampled", 800, 12, Options{MaxSplits: 31, MinLeaf: 3, FeatureFrac: 1.0 / 3}, true},
		{"sampled-sparse", 30, 9, Options{MaxSplits: 3, MinLeaf: 2, FeatureFrac: 0.5}, false},
		{"minleaf-large", 500, 10, Options{MaxSplits: 7, MinLeaf: 40}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			X, y := histDataset(c.n, c.d, 11)
			b := NewBuilder(X)
			idx := allIdx(c.n)
			if c.boot {
				brng := rand.New(rand.NewSource(7))
				for i := range idx {
					idx[i] = brng.Intn(c.n)
				}
			}
			exOpt := c.opt
			exOpt.ExactHistograms = true
			fast := b.Grow(y, idx, c.opt, rand.New(rand.NewSource(21)))
			exact := b.Grow(y, idx, exOpt, rand.New(rand.NewSource(21)))
			probes, _ := histDataset(200, c.d, 12)
			for i, x := range probes {
				if a, e := fast.Predict(x), exact.Predict(x); relDiff(a, e) > tol {
					t.Fatalf("probe %d: fast %v vs exact %v (rel %g)", i, a, e, relDiff(a, e))
				}
			}
		})
	}
}

// TestFastDeterministicAcrossWorkersAndGOMAXPROCS pins the determinism
// half of the §13 contract: the fast path must produce bit-identical
// trees for any Workers value and any GOMAXPROCS, in both subtract
// (full features) and sampled (FeatureFrac < 1) modes.
func TestFastDeterministicAcrossWorkersAndGOMAXPROCS(t *testing.T) {
	X, y := histDataset(900, 16, 31)
	b := NewBuilder(X)
	idx := allIdx(900)
	for _, frac := range []float64{0, 0.4} {
		opt := Options{MaxSplits: 15, MinLeaf: 3, FeatureFrac: frac}
		grow := func(workers, procs int) []FlatNode {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			o := opt
			o.Workers = workers
			return b.Grow(y, idx, o, rand.New(rand.NewSource(5))).Flatten()
		}
		ref := grow(1, 1)
		for _, workers := range []int{1, 2, 8} {
			for _, procs := range []int{1, 4} {
				if got := grow(workers, procs); !reflect.DeepEqual(ref, got) {
					t.Fatalf("frac=%v workers=%d GOMAXPROCS=%d: tree differs from serial", frac, workers, procs)
				}
			}
		}
	}
}

// TestHistCounters checks the tree.hist.{built,subtracted} instrumentation:
// sibling subtraction fires only in full-feature fast mode, and the exact
// reference never touches the histogram pipeline.
func TestHistCounters(t *testing.T) {
	X, y := histDataset(600, 10, 41)
	read := func(opt Options, rng *rand.Rand) (built, subtracted int64) {
		b := NewBuilder(X)
		reg := obs.NewRegistry()
		b.Instrument(reg)
		b.Grow(y, allIdx(600), opt, rng)
		return reg.Counter("tree.hist.built").Value(), reg.Counter("tree.hist.subtracted").Value()
	}

	built, subtracted := read(Options{MaxSplits: 5}, nil)
	if built == 0 || subtracted == 0 {
		t.Fatalf("fast full-feature mode: built=%d subtracted=%d, want both > 0", built, subtracted)
	}
	// Every node histogram is either built directly or derived; with
	// MaxSplits=5 and the final level skipped, the frontier can never
	// need more than one build per split plus the root.
	if built > 6 {
		t.Fatalf("fast mode built %d histograms for 5 splits, want <= 6", built)
	}

	built, subtracted = read(Options{MaxSplits: 5, ExactHistograms: true}, nil)
	if built != 0 || subtracted != 0 {
		t.Fatalf("exact mode: built=%d subtracted=%d, want 0/0", built, subtracted)
	}

	built, subtracted = read(Options{MaxSplits: 5, FeatureFrac: 0.5}, rand.New(rand.NewSource(3)))
	if built == 0 {
		t.Fatal("sampled mode: no histograms built")
	}
	if subtracted != 0 {
		t.Fatalf("sampled mode: subtracted=%d, want 0 (parent covers different features)", subtracted)
	}
}

// TestFastGrownPersistRoundTrip is the S4 coverage: trees grown by the
// fast path — subtract and sampled modes — must survive
// Flatten/FromFlatWithCodes with bit-identical predictions and a working
// binned evaluation path against re-encoded edges.
func TestFastGrownPersistRoundTrip(t *testing.T) {
	X, y := histDataset(700, 14, 51)
	b := NewBuilder(X)
	probes, _ := histDataset(150, 14, 52)
	bm := BinWithEdges(b.Edges(), probes)
	for _, opt := range []Options{
		{MaxSplits: 9},
		{MaxSplits: 31, MinLeaf: 3, FeatureFrac: 1.0 / 3},
	} {
		orig := b.Grow(y, allIdx(700), opt, rand.New(rand.NewSource(9)))
		back, err := FromFlatWithCodes(orig.Flatten())
		if err != nil {
			t.Fatal(err)
		}
		if !back.HasBinCodes() {
			t.Fatal("round-tripped tree lost bin codes")
		}
		want := make([]float64, len(probes))
		got := make([]float64, len(probes))
		orig.PredictBatch(probes, want)
		back.PredictBatch(probes, got)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("opt %+v probe %d: %v != %v after round-trip", opt, i, want[i], got[i])
			}
		}
		binned := make([]float64, len(probes))
		back.AccumulateBinned(bm, 1, binned)
		for i := range want {
			if binned[i] != want[i] {
				t.Fatalf("opt %+v probe %d: binned %v != float %v", opt, i, binned[i], want[i])
			}
		}
	}
}

// TestDerivedSiblingCountsExact verifies the count-plane half of the
// subtraction contract directly: a derived sibling histogram's counts
// equal a direct accumulation bit-for-bit (int32 arithmetic), so
// minLeaf feasibility can never differ between the two.
func TestDerivedSiblingCountsExact(t *testing.T) {
	X, y := histDataset(500, 6, 61)
	b := NewBuilder(X)
	rng := rand.New(rand.NewSource(1))
	idx := allIdx(500)
	left := make([]int, 0, 250)
	right := make([]int, 0, 250)
	for _, i := range idx {
		if rng.Intn(2) == 0 {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	parent := b.getHist()
	small := b.getHist()
	direct := b.getHist()
	b.buildHist(parent, y, idx, b.allFeatures, 1)
	b.buildHist(small, y, left, b.allFeatures, 1)
	b.buildHist(direct, y, right, b.allFeatures, 1)
	parent.sub(small)
	for i := range direct.cnt {
		if parent.cnt[i] != direct.cnt[i] {
			t.Fatalf("cnt[%d]: derived %d != direct %d", i, parent.cnt[i], direct.cnt[i])
		}
	}
	for i := range direct.sum {
		if relDiff(parent.sum[i], direct.sum[i]) > 1e-9 {
			t.Fatalf("sum[%d]: derived %v vs direct %v", i, parent.sum[i], direct.sum[i])
		}
	}
}
