package tree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synth builds a dataset where y = step function of x0 plus linear x1.
func synth(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x0 := rng.Float64() * 10
		x1 := rng.Float64() * 10
		X[i] = []float64{x0, x1}
		y[i] = x1 * 0.5
		if x0 > 5 {
			y[i] += 20
		}
	}
	return X, y
}

func allIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func TestStumpFindsDominantSplit(t *testing.T) {
	X, y := synth(500, 1)
	b := NewBuilder(X)
	tr := b.Grow(y, allIdx(500), Options{MaxSplits: 1}, nil)
	if tr.NumLeaves() != 2 {
		t.Fatalf("stump has %d leaves, want 2", tr.NumLeaves())
	}
	// The step at x0=5 dominates: predictions on the two sides must
	// differ by roughly the 20-unit step.
	lo := tr.Predict([]float64{2, 5})
	hi := tr.Predict([]float64{8, 5})
	if hi-lo < 10 {
		t.Fatalf("stump split weak: lo=%v hi=%v", lo, hi)
	}
}

func TestDeeperTreesReduceTrainError(t *testing.T) {
	X, y := synth(800, 2)
	b := NewBuilder(X)
	sse := func(tr *Tree) float64 {
		s := 0.0
		for i, row := range X {
			d := tr.Predict(row) - y[i]
			s += d * d
		}
		return s
	}
	shallow := b.Grow(y, allIdx(800), Options{MaxSplits: 1}, nil)
	deep := b.Grow(y, allIdx(800), Options{MaxSplits: 20}, nil)
	if sse(deep) >= sse(shallow) {
		t.Fatalf("deep tree SSE %v >= stump SSE %v", sse(deep), sse(shallow))
	}
}

func TestTreeComplexityBudgetRespected(t *testing.T) {
	X, y := synth(500, 3)
	b := NewBuilder(X)
	for _, tc := range []int{1, 3, 5, 10} {
		tr := b.Grow(y, allIdx(500), Options{MaxSplits: tc}, nil)
		splits := tr.NumNodes() - tr.NumLeaves()
		if splits > tc {
			t.Errorf("tc=%d grew %d splits", tc, splits)
		}
	}
}

func TestConstantTargetYieldsLeaf(t *testing.T) {
	X, _ := synth(100, 4)
	y := make([]float64, 100)
	for i := range y {
		y[i] = 7
	}
	b := NewBuilder(X)
	tr := b.Grow(y, allIdx(100), Options{MaxSplits: 5}, nil)
	if tr.NumLeaves() != 1 {
		t.Fatalf("constant target grew %d leaves", tr.NumLeaves())
	}
	if got := tr.Predict([]float64{1, 1}); got != 7 {
		t.Fatalf("predict %v, want 7", got)
	}
}

func TestEmptySampleSafe(t *testing.T) {
	X, y := synth(10, 5)
	b := NewBuilder(X)
	tr := b.Grow(y, nil, Options{MaxSplits: 3}, nil)
	if got := tr.Predict([]float64{0, 0}); got != 0 {
		t.Fatalf("empty-sample tree predicts %v", got)
	}
}

func TestMinLeafRespected(t *testing.T) {
	X, y := synth(40, 6)
	b := NewBuilder(X)
	tr := b.Grow(y, allIdx(40), Options{MaxSplits: 30, MinLeaf: 15}, nil)
	// With MinLeaf 15 over 40 samples at most 2 splits are feasible
	// (each leaf must keep >= 15 samples).
	if splits := tr.NumNodes() - tr.NumLeaves(); splits > 2 {
		t.Fatalf("MinLeaf=15 allowed %d splits over 40 samples", splits)
	}
}

func TestBootstrapSampleGrowing(t *testing.T) {
	X, y := synth(300, 7)
	b := NewBuilder(X)
	rng := rand.New(rand.NewSource(8))
	idx := make([]int, 300)
	for i := range idx {
		idx[i] = rng.Intn(300)
	}
	tr := b.Grow(y, idx, Options{MaxSplits: 5}, rng)
	if tr.NumLeaves() < 2 {
		t.Fatal("bootstrap-grown tree did not split")
	}
}

func TestFeatureSubsampling(t *testing.T) {
	X, y := synth(300, 9)
	b := NewBuilder(X)
	rng := rand.New(rand.NewSource(10))
	// With FeatureFrac tiny, some trees should be forced to use x1.
	usedX1 := false
	for k := 0; k < 50 && !usedX1; k++ {
		tr := b.Grow(y, allIdx(300), Options{MaxSplits: 1, FeatureFrac: 0.5}, rng)
		lo := tr.Predict([]float64{2, 0})
		hi := tr.Predict([]float64{2, 10})
		if math.Abs(hi-lo) > 0.1 {
			usedX1 = true
		}
	}
	if !usedX1 {
		t.Error("feature subsampling never selected the secondary feature")
	}
}

// Property: predictions are bounded by the target range (means of subsets).
func TestPredictionBoundsProperty(t *testing.T) {
	X, y := synth(400, 11)
	b := NewBuilder(X)
	tr := b.Grow(y, allIdx(400), Options{MaxSplits: 10}, nil)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range y {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	rng := rand.New(rand.NewSource(12))
	f := func(int64) bool {
		x := []float64{rng.Float64() * 20, rng.Float64() * 20}
		p := tr.Predict(x)
		return p >= lo-1e-9 && p <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: growing is deterministic for a fixed sample and no feature
// sampling.
func TestGrowDeterministic(t *testing.T) {
	X, y := synth(200, 13)
	b := NewBuilder(X)
	t1 := b.Grow(y, allIdx(200), Options{MaxSplits: 5}, nil)
	t2 := b.Grow(y, allIdx(200), Options{MaxSplits: 5}, nil)
	rng := rand.New(rand.NewSource(14))
	for k := 0; k < 100; k++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10}
		if t1.Predict(x) != t2.Predict(x) {
			t.Fatal("identical growth produced different trees")
		}
	}
}

func TestDiscreteFeatureBinning(t *testing.T) {
	// A 0/1 feature must still be splittable.
	rng := rand.New(rand.NewSource(15))
	n := 200
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		b := float64(rng.Intn(2))
		X[i] = []float64{b}
		y[i] = b * 10
	}
	b := NewBuilder(X)
	tr := b.Grow(y, allIdx(n), Options{MaxSplits: 1, MinLeaf: 2}, nil)
	if math.Abs(tr.Predict([]float64{0})-0) > 1 || math.Abs(tr.Predict([]float64{1})-10) > 1 {
		t.Fatalf("binary feature split failed: f(0)=%v f(1)=%v",
			tr.Predict([]float64{0}), tr.Predict([]float64{1}))
	}
}
