package tree

import (
	"math/rand"
	"testing"
)

func benchData(n, d int) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(1))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = make([]float64, d)
		for j := range X[i] {
			X[i][j] = rng.Float64() * 100
		}
		y[i] = X[i][0] + X[i][1]*X[i][2%d]
	}
	return X, y
}

// BenchmarkNewBuilder measures the one-time binning cost for a
// paper-scale design matrix (2000 x 42).
func BenchmarkNewBuilder(b *testing.B) {
	X, _ := benchData(2000, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewBuilder(X)
	}
}

// BenchmarkGrowTC5 measures growing one boosting sub-model (tc=5), the
// inner loop of HM's FirstOrderProcedure executed nt=3600 times.
func BenchmarkGrowTC5(b *testing.B) {
	X, y := benchData(2000, 42)
	builder := NewBuilder(X)
	idx := allIdx(2000)
	opt := Options{MaxSplits: 5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder.Grow(y, idx, opt, nil)
	}
}

// BenchmarkGrowTC5Exact is BenchmarkGrowTC5 under the reference
// per-node histogram scan (Options.ExactHistograms) — the baseline the
// sibling-subtraction fast path is measured against (the `tree_grow`
// pair in BENCH_model.json, guarded in CI).
func BenchmarkGrowTC5Exact(b *testing.B) {
	X, y := benchData(2000, 42)
	builder := NewBuilder(X)
	idx := allIdx(2000)
	opt := Options{MaxSplits: 5, ExactHistograms: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder.Grow(y, idx, opt, nil)
	}
}

// BenchmarkGrowDeep measures growing one random-forest tree (127 splits,
// feature-sampled).
func BenchmarkGrowDeep(b *testing.B) {
	X, y := benchData(2000, 42)
	builder := NewBuilder(X)
	idx := allIdx(2000)
	rng := rand.New(rand.NewSource(2))
	opt := Options{MaxSplits: 127, FeatureFrac: 1.0 / 3, MinLeaf: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder.Grow(y, idx, opt, rng)
	}
}

// BenchmarkPredict measures a single-tree prediction.
func BenchmarkPredict(b *testing.B) {
	X, y := benchData(2000, 42)
	builder := NewBuilder(X)
	tr := builder.Grow(y, allIdx(2000), Options{MaxSplits: 5}, nil)
	x := X[7]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Predict(x)
	}
}

// BenchmarkPredictBatch compares per-row prediction against the
// tree-at-a-time batch path over a GA-population-sized block of rows.
func BenchmarkPredictBatch(b *testing.B) {
	X, y := benchData(2000, 42)
	builder := NewBuilder(X)
	tr := builder.Grow(y, allIdx(2000), Options{MaxSplits: 5}, nil)
	rows := X[:100]
	out := make([]float64, len(rows))
	b.Run("perrow", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for r, x := range rows {
				out[r] = tr.Predict(x)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr.PredictBatch(rows, out)
		}
	})
}

// BenchmarkGrowParallel measures the parallel split scan against the
// serial one at HM's paper-scale node size (2000 rows × 42 features).
func BenchmarkGrowParallel(b *testing.B) {
	X, y := benchData(2000, 42)
	builder := NewBuilder(X)
	idx := allIdx(2000)
	for _, workers := range []int{1, 4} {
		opt := Options{MaxSplits: 5, Workers: workers}
		b.Run(map[bool]string{true: "serial", false: "parallel"}[workers == 1], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				builder.Grow(y, idx, opt, nil)
			}
		})
	}
}
