package core

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/conf"
	"repro/internal/ga"
	"repro/internal/hm"
	"repro/internal/model"
	"repro/internal/sparksim"
	"repro/internal/workloads"
)

// testTuner wires a small-budget tuner over the TeraSort workload.
func testTuner(t *testing.T) (*Tuner, *workloads.Workload) {
	t.Helper()
	w, err := workloads.ByAbbr("TS")
	if err != nil {
		t.Fatal(err)
	}
	sim := sparksim.New(cluster.Standard(), 8)
	return &Tuner{
		Space: conf.StandardSpace(),
		Exec: ExecutorFunc(func(cfg conf.Config, dsizeMB float64) float64 {
			return sim.Run(&w.Program, dsizeMB, cfg).TotalSec
		}),
		Opt: Options{
			NTrain: 300,
			HM:     hm.Options{Trees: 200, LearningRate: 0.1, TreeComplexity: 5},
			GA:     ga.Options{PopSize: 30, Generations: 20},
			Seed:   1,
		},
	}, w
}

func TestTrainingSizesRespectEq4(t *testing.T) {
	tuner, _ := testTuner(t)
	sizes := tuner.TrainingSizesMB(8*1024, 56*1024)
	if len(sizes) != 10 {
		t.Fatalf("got %d sizes, want m=10", len(sizes))
	}
	for i := 1; i < len(sizes); i++ {
		gap := (sizes[i] - sizes[i-1]) / sizes[i-1]
		if gap < 0.10-1e-9 {
			t.Errorf("sizes %d and %d differ by %.1f%% (<10%%, violating Eq. 4)", i-1, i, gap*100)
		}
	}
	if sizes[0] != 8*1024 || math.Abs(sizes[9]-56*1024) > 1 {
		t.Errorf("size endpoints wrong: %v .. %v", sizes[0], sizes[9])
	}
}

func TestTrainingSizesDegenerate(t *testing.T) {
	tuner, _ := testTuner(t)
	sizes := tuner.TrainingSizesMB(1024, 1024)
	if len(sizes) != 1 || sizes[0] != 1024 {
		t.Fatalf("degenerate range gave %v", sizes)
	}
}

func TestCollectShapesAndDeterminism(t *testing.T) {
	tuner, _ := testTuner(t)
	sizes := tuner.TrainingSizesMB(10*1024, 50*1024)
	set, ov, err := tuner.Collect(sizes)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != tuner.Opt.NTrain {
		t.Fatalf("collected %d vectors, want %d", set.Len(), tuner.Opt.NTrain)
	}
	if ov.CollectClusterHours <= 0 {
		t.Error("collecting cluster hours not accounted")
	}
	set2, _, err := tuner.Collect(sizes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range set.Vectors {
		if set.Vectors[i].TimeSec != set2.Vectors[i].TimeSec {
			t.Fatal("Collect is not deterministic despite concurrency")
		}
	}
	if _, _, err := tuner.Collect(nil); err == nil {
		t.Error("empty size list should fail")
	}
}

func TestEndToEndTuneBeatsDefault(t *testing.T) {
	tuner, w := testTuner(t)
	target := w.InputMB(30)
	res, err := tuner.Tune(w.InputMB(10), w.InputMB(50), []float64{target})
	if err != nil {
		t.Fatal(err)
	}
	best, ok := res.Best[target]
	if !ok {
		t.Fatal("no configuration for the target size")
	}
	if res.PredictedSec[target] <= 0 {
		t.Error("non-positive prediction")
	}
	// Measure against the default on a fresh simulator.
	evalSim := sparksim.New(cluster.Standard(), 101)
	tDAC := evalSim.Run(&w.Program, target, best).TotalSec
	tDef := evalSim.Run(&w.Program, target, conf.StandardSpace().Default()).TotalSec
	if tDAC >= tDef {
		t.Fatalf("DAC (%.1fs) did not beat the default (%.1fs)", tDAC, tDef)
	}
	if res.Overhead.ModelTrainSec <= 0 || res.Overhead.SearchSec <= 0 {
		t.Error("overhead accounting missing")
	}
}

func TestSearchUsesDatasize(t *testing.T) {
	// A model that punishes high parallelism only for big inputs: the
	// search must return different configurations for the two sizes.
	tuner, _ := testTuner(t)
	parIdx, _ := tuner.Space.Index(conf.DefaultParallelism)
	m := predictorFunc(func(x []float64) float64 {
		par := x[parIdx]
		dsize := x[len(x)-1]
		if dsize > 5000 {
			return 100 + par // big input: low parallelism wins
		}
		return 200 - par // small input: high parallelism wins
	})
	cfgSmall, _, _, _, err := tuner.Search(m, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfgBig, _, _, _, err := tuner.Search(m, 50000, nil)
	if err != nil {
		t.Fatal(err)
	}
	small := cfgSmall.Get(conf.DefaultParallelism)
	big := cfgBig.Get(conf.DefaultParallelism)
	if small <= big {
		t.Fatalf("datasize-aware search failed: par(small)=%v <= par(big)=%v", small, big)
	}
}

type predictorFunc func(x []float64) float64

func (f predictorFunc) Predict(x []float64) float64 { return f(x) }

// uncertainPredictor pairs a mean with a dispersion that grows with one
// parameter, letting the test confirm the robust objective is in force.
type uncertainPredictor struct{ parIdx int }

func (u uncertainPredictor) Predict(x []float64) float64 { return 100 - x[u.parIdx] }
func (u uncertainPredictor) PredictWithUncertainty(x []float64) (float64, float64) {
	// High parallelism looks fastest but is maximally uncertain.
	return u.Predict(x), 10 * x[u.parIdx]
}

func TestRobustSearchPenalizesUncertainty(t *testing.T) {
	tuner, _ := testTuner(t)
	parIdx, _ := tuner.Space.Index(conf.DefaultParallelism)
	m := uncertainPredictor{parIdx: parIdx}

	plainCfg, _, _, _, err := tuner.Search(m, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	tuner.Opt.RobustSearch = true
	robustCfg, _, _, _, err := tuner.Search(m, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	plain := plainCfg.Get(conf.DefaultParallelism)
	robust := robustCfg.Get(conf.DefaultParallelism)
	if plain != 50 {
		t.Fatalf("plain search should chase the optimistic corner (par=50), got %v", plain)
	}
	if robust >= plain {
		t.Fatalf("robust search should back off the uncertain corner: par %v >= %v", robust, plain)
	}
}

func TestTuneWithRobustSearchEndToEnd(t *testing.T) {
	tuner, w := testTuner(t)
	tuner.Opt.RobustSearch = true
	target := w.InputMB(30)
	res, err := tuner.Tune(w.InputMB(10), w.InputMB(50), []float64{target})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Best[target]; !ok {
		t.Fatal("no configuration produced under robust search")
	}
}

func TestRFHOCTuneProducesLegalConfig(t *testing.T) {
	w, err := workloads.ByAbbr("TS")
	if err != nil {
		t.Fatal(err)
	}
	sim := sparksim.New(cluster.Standard(), 8)
	tuner := &RFHOCTuner{
		Space: conf.StandardSpace(),
		Exec: ExecutorFunc(func(cfg conf.Config, dsizeMB float64) float64 {
			return sim.Run(&w.Program, dsizeMB, cfg).TotalSec
		}),
		Opt: Options{
			NTrain: 200,
			GA:     ga.Options{PopSize: 20, Generations: 10},
			Seed:   2,
		},
	}
	cfg, err := tuner.Tune(w.InputMB(10), w.InputMB(50))
	if err != nil {
		t.Fatal(err)
	}
	space := conf.StandardSpace()
	for i := 0; i < space.Len(); i++ {
		p := space.Param(i)
		if v := cfg.At(i); v < p.Min || v > p.Max {
			t.Errorf("%s = %v outside range", p.Name, v)
		}
	}
}

func TestCollectRejectsBadExecutor(t *testing.T) {
	tuner, _ := testTuner(t)
	tuner.Opt.NTrain = 5
	tuner.Exec = ExecutorFunc(func(conf.Config, float64) float64 { return -1 })
	if _, _, err := tuner.Collect([]float64{1024}); err == nil {
		t.Fatal("negative execution times should be rejected")
	}
	tuner.Exec = ExecutorFunc(func(conf.Config, float64) float64 { return math.NaN() })
	if _, _, err := tuner.Collect([]float64{1024}); err == nil {
		t.Fatal("NaN execution times should be rejected")
	}
}

func TestModelAccuracyReasonable(t *testing.T) {
	tuner, w := testTuner(t)
	tuner.Opt.NTrain = 600
	sizes := tuner.TrainingSizesMB(w.InputMB(10), w.InputMB(50))
	set, _, err := tuner.Collect(sizes)
	if err != nil {
		t.Fatal(err)
	}
	m, ov, err := tuner.Model(set)
	if err != nil {
		t.Fatal(err)
	}
	if ov.ModelTrainSec <= 0 {
		t.Error("model training time not measured")
	}
	// Held-out data from a different collection seed.
	tuner.Opt.Seed = 77
	test, _, err := tuner.Collect(sizes)
	if err != nil {
		t.Fatal(err)
	}
	// 600 samples against a cliff-heavy 42-dimensional surface: this is a
	// sanity bound, not an accuracy claim (the accuracy experiments use
	// the paper-scale 2000 samples).
	e := model.Evaluate(m, test.ToDataset())
	if e.Mean > 0.60 {
		t.Errorf("mean error %.1f%% unreasonably high for a smoke model", e.Mean*100)
	}
}
