package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/conf"
	"repro/internal/dataset"
	"repro/internal/ga"
	"repro/internal/hm"
	"repro/internal/model"
	"repro/internal/sparksim"
)

// This file is the online tuning mode (LOCAT/Tuneful's production form of
// the paper's pipeline): instead of collecting NTrain runs up front, a
// small screening sample ranks the parameters by importance, the
// insignificant ones are frozen at their defaults, and the tuner then
// alternates a few measured runs with model refits and guarded searches
// over the significant subspace — reaching comparable tuned quality on a
// fraction of the cluster budget (see internal/experiments/online.go for
// the comparison against full DAC).

// OOMGuard vetoes a candidate configuration before the online tuner
// spends a cluster run on it: it returns true when cfg is predicted to
// OOM at dsizeMB. Implementations must be deterministic in their inputs —
// the online trajectory is replayed byte-identically on resume.
type OOMGuard func(cfg conf.Config, dsizeMB float64) bool

// SimOOMGuard builds an OOMGuard from sparksim's analytic memory
// accounting (sparksim.CheckMemory): a candidate is rejected when the
// accounting predicts an OOM abort or, when maxPressure > 0, when any
// stage's working-set / execution-memory ratio exceeds maxPressure (a
// stricter, spill-averse threshold).
func SimOOMGuard(cl cluster.Cluster, p *sparksim.Program, maxPressure float64) OOMGuard {
	return func(cfg conf.Config, dsizeMB float64) bool {
		v := sparksim.CheckMemory(cl, cfg, p, dsizeMB)
		if v.Abort {
			return true
		}
		return maxPressure > 0 && v.WorstPressure > maxPressure
	}
}

// guardPenalty is the fitness assigned to guard-rejected genomes: large
// enough that any completing configuration beats it, finite so the GA's
// arithmetic stays well-behaved.
const guardPenalty = 1e18

// OnlineOptions configure TuneOnline. The zero value selects defaults
// sized so a full online run costs roughly a quarter of the paper's
// NTrain=2000 collect (200 + 8×32 + 1 = 457 runs).
type OnlineOptions struct {
	// ScreenSamples is the size of the initial importance-screening
	// sample, spread across the training sizes like a collect sweep
	// (default 200, minimum 20).
	ScreenSamples int
	// TopK is how many parameters survive screening; the rest are frozen
	// at their defaults (default 10).
	TopK int
	// Iterations is the number of collect→refit→search rounds after
	// screening (default 8).
	Iterations int
	// IterBatch is how many candidate configurations each iteration
	// measures at the target size (default 32).
	IterBatch int
	// ExtraTrees bounds each warm-started refit's additional boosting
	// budget, hm.Resume's extra argument (default 200).
	ExtraTrees int
	// Guard, when non-nil, vetoes candidates predicted to OOM before
	// they are run or selected (SimOOMGuard for the simulator).
	Guard OOMGuard
}

func (o OnlineOptions) withDefaults() OnlineOptions {
	if o.ScreenSamples <= 0 {
		o.ScreenSamples = 200
	}
	if o.TopK <= 0 {
		o.TopK = 10
	}
	if o.Iterations <= 0 {
		o.Iterations = 8
	}
	if o.IterBatch <= 0 {
		o.IterBatch = 32
	}
	if o.ExtraTrees <= 0 {
		o.ExtraTrees = 200
	}
	return o
}

// OnlineHooks are TuneOnline's durability and progress seams, mirroring
// CollectHooks. Row indices are global across the whole online
// trajectory: screening rows first, then each iteration's candidate
// batch, then the final confirming run — a pure function of the tuner's
// options, which is what makes journaled (index, time) pairs sufficient
// to resume.
type OnlineHooks struct {
	// Known reports a row's already-measured time (journal replay on
	// resume); rows with a known time are not re-executed.
	Known func(index int) (timeSec float64, ok bool)
	// OnBatch observes freshly executed rows — the journal append hook.
	// Called from worker goroutines concurrently.
	OnBatch func(rows []RowTime)
	// Progress receives (phase, done, total) updates: "screen" counts
	// screening rows, "model" fires once after the initial fit,
	// "iterate" counts completed iterations, "final" the confirming run.
	Progress func(phase string, done, total int)
}

// OnlineIteration records one collect→refit→search round.
type OnlineIteration struct {
	// Runs is the cumulative measured-run count after this iteration.
	Runs int
	// WarmStarted reports whether the refit continued the previous model
	// (hm.Resume / backend Resumer) rather than retraining from scratch.
	WarmStarted bool
	// ValErr is the refit model's validation error (hm models; 0 for
	// backends that don't report one).
	ValErr float64
	// PredictedSec is the guarded subspace search's best predicted time.
	PredictedSec float64
	// BestMeasuredSec is the best measured target-size run so far.
	BestMeasuredSec float64
	// GuardRejected counts candidates the safety guard vetoed during
	// this iteration's search and candidate generation.
	GuardRejected int
}

// OnlineResult is TuneOnline's outcome.
type OnlineResult struct {
	// Best is the best configuration actually measured at the target
	// size (online tuning trusts measurements over model optima).
	Best conf.Config
	// MeasuredSec is Best's measured execution time.
	MeasuredSec float64
	// PredictedSec is the final model's prediction for Best.
	PredictedSec float64
	// Screened lists the parameters that survived importance screening,
	// most important first; Importance holds their normalized shares.
	Screened   []string
	Importance []float64
	// Iterations records each online round.
	Iterations []OnlineIteration
	// TotalRuns is every measured run: screening, candidates, and the
	// final confirming run.
	TotalRuns int
	// GuardRejections counts every candidate the safety guard vetoed.
	GuardRejections int
	// Model is the final refit model; Set holds every observation in row
	// order (byte-identical across resumes for the same options).
	Model model.Model
	Set   *dataset.Set
	// Overhead aggregates the run's costs like Tune does.
	Overhead Overhead
}

// onlineBatchRows is the checkpoint granularity for online row
// execution: small enough that a killed daemon loses little work, small
// batches anyway since IterBatch is typically a few dozen.
const onlineBatchRows = 32

// TuneOnline runs the online importance-screened tuning loop against the
// target size targetMB, with training sizes spread over [minMB, maxMB]
// for the screening sample. The whole trajectory — screening sample,
// surviving parameters, every iteration's candidates — is a pure
// function of (Opt.Seed, Exec, OnlineOptions), so re-running with hooks
// whose Known replays journaled times reproduces the identical
// observation set and final configuration without re-executing finished
// rows.
func (t *Tuner) TuneOnline(ctx context.Context, minMB, maxMB, targetMB float64, oo OnlineOptions, hooks OnlineHooks) (*OnlineResult, error) {
	root := t.Obs.StartSpan("tune_online")
	defer root.End()

	opt := t.Opt.withDefaults()
	oo = oo.withDefaults()
	if targetMB <= 0 {
		return nil, fmt.Errorf("core: online target size %v MB", targetMB)
	}
	if oo.ScreenSamples < 20 {
		return nil, fmt.Errorf("core: screening needs at least 20 samples, got %d", oo.ScreenSamples)
	}
	sizes := t.TrainingSizesMB(minMB, maxMB)
	if len(sizes) == 0 {
		return nil, fmt.Errorf("core: no dataset sizes")
	}

	// --- Screening: a small collect sweep ranks the parameters. -------
	// The screening rows reuse CollectJobs' derivation with NTrain set to
	// the screening budget, so their (config, size) list is a pure
	// function of (Space, Seed, Sampler, sizes).
	screens := *t
	screens.Opt = opt
	screens.Opt.NTrain = oo.ScreenSamples
	jobs := screens.CollectJobs(sizes)

	cs := root.Child("screen")
	screenTimes, err := t.runOnlineRows(ctx, 0, jobs, "screen", hooks, opt.Parallelism)
	cs.End()
	if err != nil {
		return nil, err
	}
	allJobs := append([]Job(nil), jobs...)
	allTimes := append([]float64(nil), screenTimes...)

	set := dataset.NewSet(t.Space)
	for i, j := range jobs {
		set.Add(j.Cfg, j.DsizeMB, screenTimes[i])
	}

	ms := root.Child("model")
	m, ovM, err := t.model(set)
	ms.End()
	if err != nil {
		return nil, err
	}
	if hooks.Progress != nil {
		hooks.Progress("model", 1, 1)
	}
	overhead := Overhead{ModelTrainSec: ovM.ModelTrainSec}

	screened, shares, err := t.screenParams(m, oo.TopK)
	if err != nil {
		return nil, err
	}
	ss, err := conf.NewSubSpace(t.Space, t.Space.Default(), screened)
	if err != nil {
		return nil, err
	}
	t.Obs.Counter("core.online.screened.params").Add(int64(len(screened)))

	// --- Iterate: search the subspace, measure candidates, refit. ------
	// Every random draw comes from dedicated streams seeded off Opt.Seed,
	// disjoint from the offline pipeline's Seed+1/Seed+2/... slots, so
	// the trajectory replays identically on resume.
	seedStream := rand.New(rand.NewSource(opt.Seed + 11))
	iterations := make([]OnlineIteration, 0, oo.Iterations)
	guardRejections := 0
	bestMeasured := math.Inf(1)
	var bestCfg conf.Config
	haveBest := false
	nextIndex := len(jobs)

	for it := 0; it < oo.Iterations; it++ {
		refitSeed := seedStream.Int63()
		gaSeed := seedStream.Int63()
		candSeed := seedStream.Int63()

		warm := false
		if it > 0 {
			var fitSec float64
			m, warm, fitSec, err = t.refitOnline(m, set, refitSeed, oo.ExtraTrees)
			if err != nil {
				return nil, err
			}
			overhead.ModelTrainSec += fitSec
		}

		srch, err := t.searchSubspace(m, ss, set, targetMB, gaSeed, oo.Guard)
		if err != nil {
			return nil, err
		}
		overhead.SearchSec += srch.sec
		rejected := srch.rejected

		cands := onlineCandidates(ss, srch.cfg, oo.IterBatch, rand.New(rand.NewSource(candSeed)), oo.Guard, targetMB, &rejected)
		cjobs := make([]Job, len(cands))
		for i, c := range cands {
			cjobs[i] = Job{Cfg: c, DsizeMB: targetMB}
		}
		is := root.Child("iterate")
		candTimes, err := t.runOnlineRows(ctx, nextIndex, cjobs, "iterate", hooks, opt.Parallelism)
		is.End()
		if err != nil {
			return nil, err
		}
		nextIndex += len(cjobs)
		for i, cj := range cjobs {
			set.Add(cj.Cfg, cj.DsizeMB, candTimes[i])
			if candTimes[i] < bestMeasured {
				bestMeasured = candTimes[i]
				bestCfg = cj.Cfg
				haveBest = true
			}
		}
		allJobs = append(allJobs, cjobs...)
		allTimes = append(allTimes, candTimes...)
		guardRejections += rejected

		valErr := 0.0
		if hmModel, ok := m.(*hm.Model); ok {
			valErr = hmModel.ValErr
		}
		iterations = append(iterations, OnlineIteration{
			Runs:            len(allJobs),
			WarmStarted:     warm,
			ValErr:          valErr,
			PredictedSec:    srch.pred,
			BestMeasuredSec: bestMeasured,
			GuardRejected:   rejected,
		})
		t.Obs.Counter("core.online.iterations").Inc()
		if hooks.Progress != nil {
			hooks.Progress("iterate", it+1, oo.Iterations)
		}
	}

	// --- Final: refit on everything, search once more, confirm. --------
	refitSeed := seedStream.Int63()
	gaSeed := seedStream.Int63()
	var fitSec float64
	m, _, fitSec, err = t.refitOnline(m, set, refitSeed, oo.ExtraTrees)
	if err != nil {
		return nil, err
	}
	overhead.ModelTrainSec += fitSec
	srch, err := t.searchSubspace(m, ss, set, targetMB, gaSeed, oo.Guard)
	if err != nil {
		return nil, err
	}
	overhead.SearchSec += srch.sec
	guardRejections += srch.rejected

	finalJob := []Job{{Cfg: srch.cfg, DsizeMB: targetMB}}
	fs := root.Child("final")
	finalTimes, err := t.runOnlineRows(ctx, nextIndex, finalJob, "final", hooks, opt.Parallelism)
	fs.End()
	if err != nil {
		return nil, err
	}
	set.Add(srch.cfg, targetMB, finalTimes[0])
	allJobs = append(allJobs, finalJob...)
	allTimes = append(allTimes, finalTimes...)
	if finalTimes[0] < bestMeasured || !haveBest {
		bestMeasured = finalTimes[0]
		bestCfg = srch.cfg
	}

	var clusterSec float64
	for _, sec := range allTimes {
		clusterSec += sec
	}
	overhead.CollectClusterHours = clusterSec / 3600
	t.Obs.Counter("core.online.guard.rejections").Add(int64(guardRejections))

	d := t.Space.Len()
	x := make([]float64, d+1)
	copy(x, bestCfg.Vector())
	x[d] = targetMB
	return &OnlineResult{
		Best:            bestCfg,
		MeasuredSec:     bestMeasured,
		PredictedSec:    m.Predict(x),
		Screened:        screened,
		Importance:      shares,
		Iterations:      iterations,
		TotalRuns:       len(allJobs),
		GuardRejections: guardRejections,
		Model:           m,
		Set:             set,
		Overhead:        overhead,
	}, nil
}

// runOnlineRows executes one index-contiguous block of rows starting at
// global index base: rows with journaled times replay through
// hooks.Known, the rest run in checkpoint-sized batches across the
// worker pool with hooks.OnBatch observing each batch — the same
// durability seams as CollectResumable, applied to the online
// trajectory's adaptive batches.
func (t *Tuner) runOnlineRows(ctx context.Context, base int, jobs []Job, phase string, hooks OnlineHooks, workers int) ([]float64, error) {
	times := make([]float64, len(jobs))
	fresh := make([]int, 0, len(jobs))
	for i := range jobs {
		if hooks.Known != nil {
			if sec, ok := hooks.Known(base + i); ok {
				times[i] = sec
				continue
			}
		}
		fresh = append(fresh, i)
	}
	known := len(jobs) - len(fresh)
	if known > 0 {
		t.Obs.Counter("core.online.resumed.rows").Add(int64(known))
	}
	var done atomic.Int64
	done.Store(int64(known))
	if hooks.Progress != nil {
		hooks.Progress(phase, known, len(jobs))
	}

	if len(fresh) > 0 {
		batches := make(chan []int, (len(fresh)+onlineBatchRows-1)/onlineBatchRows)
		for lo := 0; lo < len(fresh); lo += onlineBatchRows {
			hi := lo + onlineBatchRows
			if hi > len(fresh) {
				hi = len(fresh)
			}
			batches <- fresh[lo:hi]
		}
		close(batches)
		if workers > len(fresh) {
			workers = len(fresh)
		}
		if workers < 1 {
			workers = 1
		}
		be, batched := t.Exec.(BatchExecutor)
		var wg sync.WaitGroup
		for c := 0; c < workers; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var jbuf []Job
				for idx := range batches {
					if ctx.Err() != nil {
						return // abandon; completed batches are already journaled
					}
					jbuf = jbuf[:0]
					for _, i := range idx {
						jbuf = append(jbuf, jobs[i])
					}
					var sec []float64
					if batched {
						sec = be.ExecuteBatch(jbuf)
					} else {
						sec = make([]float64, len(jbuf))
						for k, j := range jbuf {
							sec[k] = t.Exec.Execute(j.Cfg, j.DsizeMB)
						}
					}
					rows := make([]RowTime, len(idx))
					for k, i := range idx {
						times[i] = sec[k]
						rows[k] = RowTime{Index: base + i, Job: jobs[i], TimeSec: sec[k]}
					}
					if hooks.OnBatch != nil {
						hooks.OnBatch(rows)
					}
					n := done.Add(int64(len(idx)))
					if hooks.Progress != nil {
						hooks.Progress(phase, int(n), len(jobs))
					}
				}
			}()
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: online tuning interrupted: %w", err)
		}
		t.Obs.Counter("core.online.runs").Add(int64(len(fresh)))
	}
	for i, sec := range times {
		if sec <= 0 || math.IsNaN(sec) || math.IsInf(sec, 0) {
			return nil, fmt.Errorf("core: execution %d returned time %v", base+i, sec)
		}
	}
	return times, nil
}

// screenParams ranks the model's configuration-parameter importances
// (the dsize column is excluded — it is not tunable) and returns the top
// k names with their normalized shares, most important first. Ties break
// toward the lower parameter index so the ranking is deterministic.
func (t *Tuner) screenParams(m model.Model, k int) ([]string, []float64, error) {
	fi, ok := m.(interface{ FeatureImportance() []float64 })
	if !ok {
		return nil, nil, fmt.Errorf("core: online tuning needs a model that reports feature importance (hm, rf)")
	}
	imp := fi.FeatureImportance()
	n := t.Space.Len()
	if len(imp) < n {
		return nil, nil, fmt.Errorf("core: model reports %d feature importances for %d parameters", len(imp), n)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return imp[order[a]] > imp[order[b]] })
	if k > n {
		k = n
	}
	names := make([]string, k)
	shares := make([]float64, k)
	for i := 0; i < k; i++ {
		names[i] = t.Space.Param(order[i]).Name
		shares[i] = imp[order[i]]
	}
	return names, shares, nil
}

// refitOnline refits the model on every accumulated observation:
// warm-started through hm.Resume (or the backend's Resumer) when the
// model supports it, from scratch otherwise. seed isolates each refit's
// randomness; deterministic in (model state, set, seed).
func (t *Tuner) refitOnline(m model.Model, set *dataset.Set, seed int64, extra int) (model.Model, bool, float64, error) {
	opt := t.Opt.withDefaults()
	ds := set.ToDataset()
	start := time.Now()
	if opt.Backend != nil {
		to := opt.BackendTrain
		to.Seed = seed
		if to.Obs == nil {
			to.Obs = t.Obs
		}
		if r, ok := opt.Backend.(model.Resumer); ok {
			if err := r.Resume(m, ds, to, extra); err != nil {
				return nil, false, 0, fmt.Errorf("core: online refit: %w", err)
			}
			t.Obs.Counter("core.online.warmstarts").Inc()
			return m, true, time.Since(start).Seconds(), nil
		}
		nm, err := opt.Backend.Train(ds, to)
		if err != nil {
			return nil, false, 0, fmt.Errorf("core: online refit: %w", err)
		}
		return nm, false, time.Since(start).Seconds(), nil
	}
	hmOpt := t.obsHM(opt.HM)
	hmOpt.Seed = seed
	if hmModel, ok := m.(*hm.Model); ok {
		if err := hm.Resume(hmModel, ds, hmOpt, extra); err != nil {
			return nil, false, 0, fmt.Errorf("core: online refit: %w", err)
		}
		t.Obs.Counter("core.online.warmstarts").Inc()
		return hmModel, true, time.Since(start).Seconds(), nil
	}
	nm, err := hm.Train(ds, hmOpt)
	if err != nil {
		return nil, false, 0, fmt.Errorf("core: online refit: %w", err)
	}
	return nm, false, time.Since(start).Seconds(), nil
}

// onlineSearch is one guarded subspace search's outcome.
type onlineSearch struct {
	cfg      conf.Config // full-space expansion of the best genome
	pred     float64
	rejected int
	sec      float64
}

// searchSubspace runs the GA over the screened subspace against m at
// dsizeMB, with guard-rejected genomes penalized out of contention. The
// population is seeded from the subspace projections of the best
// observed rows. Genome caches are never shared with full-space
// searches — the genome layouts differ.
func (t *Tuner) searchSubspace(m model.Model, ss *conf.SubSpace, set *dataset.Set, dsizeMB float64, gaSeed int64, guard OOMGuard) (onlineSearch, error) {
	opt := t.Opt.withDefaults()
	gaOpt := t.obsGA(opt.GA)
	gaOpt.Seed = gaSeed
	gaOpt.BatchObj = nil // the guard vets candidates one at a time
	gaOpt.Cache = nil
	d := t.Space.Len()
	var rejected atomic.Int64
	obj := func(vec []float64) float64 {
		full, err := ss.ExpandVector(vec)
		if err != nil {
			return guardPenalty
		}
		if guard != nil && guard(full, dsizeMB) {
			rejected.Add(1)
			return guardPenalty
		}
		x := make([]float64, d+1)
		copy(x, full.Vector())
		x[d] = dsizeMB
		return m.Predict(x)
	}
	start := time.Now()
	var res ga.Result
	if opt.Searcher != nil {
		res = runSearcher(opt.Searcher, ss.Tunable, obj, subspaceSeeds(ss, set), gaOpt)
	} else {
		res = ga.Minimize(ss.Tunable, obj, subspaceSeeds(ss, set), gaOpt)
	}
	elapsed := time.Since(start).Seconds()
	if res.BestFitness >= guardPenalty {
		return onlineSearch{}, fmt.Errorf("core: the safety guard rejected every candidate in the screened subspace")
	}
	cfg, err := ss.ExpandVector(res.Best)
	if err != nil {
		return onlineSearch{}, fmt.Errorf("core: online search result: %w", err)
	}
	return onlineSearch{cfg: cfg, pred: res.BestFitness, rejected: int(rejected.Load()), sec: elapsed}, nil
}

// subspaceSeeds projects the best observed rows into the subspace to
// seed the GA population — the online analogue of §3.3's training-set
// seeding, biased toward measurements instead of sampled at random.
func subspaceSeeds(ss *conf.SubSpace, set *dataset.Set) [][]float64 {
	n := set.Len()
	if n == 0 {
		return nil
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return set.Vectors[order[a]].TimeSec < set.Vectors[order[b]].TimeSec
	})
	k := 10
	if k > n {
		k = n
	}
	out := make([][]float64, 0, k)
	for _, i := range order[:k] {
		vec, err := ss.ProjectVector(set.Vectors[i].Conf)
		if err != nil {
			continue
		}
		out = append(out, vec)
	}
	return out
}

// onlineCandidates assembles one iteration's measurement batch: the
// search winner itself, mutations of it (exploit), and fresh random
// subspace samples (explore), every one vetted by the guard with bounded
// resampling. A slot whose every attempt is vetoed falls back to the
// frozen-default expansion — always a sane, runnable configuration.
func onlineCandidates(ss *conf.SubSpace, best conf.Config, n int, rng *rand.Rand, guard OOMGuard, dsizeMB float64, rejections *int) []conf.Config {
	out := make([]conf.Config, 0, n)
	out = append(out, best)
	bestVec, err := ss.ProjectVector(best.Vector())
	if err != nil {
		bestVec = ss.Tunable.Default().Vector()
	}
	d := ss.Tunable.Len()
	for len(out) < n {
		exploit := len(out) <= n/2
		var cand conf.Config
		ok := false
		for try := 0; try < 16 && !ok; try++ {
			var tv []float64
			if exploit {
				tv = append([]float64(nil), bestVec...)
				donor := ss.Tunable.Random(rng).Vector()
				for j, nmut := 0, 1+rng.Intn(2); j < nmut; j++ {
					p := rng.Intn(d)
					tv[p] = donor[p]
				}
			} else {
				tv = ss.Tunable.Random(rng).Vector()
			}
			full, err := ss.ExpandVector(tv)
			if err != nil {
				continue
			}
			if guard != nil && guard(full, dsizeMB) {
				*rejections++
				continue
			}
			cand, ok = full, true
		}
		if !ok {
			cand, _ = ss.Expand(ss.Tunable.Default())
		}
		out = append(out, cand)
	}
	return out
}
