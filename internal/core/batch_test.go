package core

import (
	"bytes"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/cluster"
	"repro/internal/conf"
	"repro/internal/obs"
	"repro/internal/sparksim"
	"repro/internal/workloads"
)

// collectCSV runs one small Collect with the given executor and returns the
// resulting training set serialized as CSV.
func collectCSV(t *testing.T, exec Executor, reg *obs.Registry) []byte {
	t.Helper()
	tuner := &Tuner{
		Space: conf.StandardSpace(),
		Exec:  exec,
		Opt:   Options{NTrain: 200, Seed: 1},
		Obs:   reg,
	}
	set, _, err := tuner.Collect(tuner.TrainingSizesMB(10*1024, 50*1024))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := set.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCollectBatchByteIdenticalCSV pins the acceptance contract of the
// batched collecting path: the CSV written from a batched collect must be
// byte-identical to the serial per-job executor's, at GOMAXPROCS 1 and 4
// alike, and the batch path must actually be exercised (counted under
// "core.collect.batches").
func TestCollectBatchByteIdenticalCSV(t *testing.T) {
	w, err := workloads.ByAbbr("TS")
	if err != nil {
		t.Fatal(err)
	}
	sim := sparksim.New(cluster.Standard(), 8)
	serial := ExecutorFunc(func(cfg conf.Config, dsizeMB float64) float64 {
		return sim.Run(&w.Program, dsizeMB, cfg).TotalSec
	})
	ref := collectCSV(t, serial, nil)
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		serialCSV := collectCSV(t, serial, nil)
		reg := obs.NewRegistry()
		batchCSV := collectCSV(t, NewSimExecutor(sim, &w.Program), reg)
		runtime.GOMAXPROCS(prev)
		if !bytes.Equal(serialCSV, ref) {
			t.Fatalf("GOMAXPROCS=%d: serial collect CSV is not reproducible", procs)
		}
		if !bytes.Equal(batchCSV, ref) {
			t.Fatalf("GOMAXPROCS=%d: batched collect CSV differs from the serial path", procs)
		}
		if reg.Counter("core.collect.batches").Value() == 0 {
			t.Errorf("GOMAXPROCS=%d: SimExecutor collect never took the batch path", procs)
		}
	}
}

// TestSimExecutorBatchMatchesExecute pins the BatchExecutor contract on the
// simulator binding: ExecuteBatch must return, per job in job order, the
// exact time Execute returns for that job.
func TestSimExecutorBatchMatchesExecute(t *testing.T) {
	w, err := workloads.ByAbbr("TS")
	if err != nil {
		t.Fatal(err)
	}
	sim := sparksim.New(cluster.Standard(), 8)
	exec := NewSimExecutor(sim, &w.Program)
	space := conf.StandardSpace()
	rng := rand.New(rand.NewSource(3))
	jobs := make([]Job, 50)
	for i := range jobs {
		jobs[i] = Job{Cfg: space.Random(rng), DsizeMB: 1024 * (1 + 49*rng.Float64())}
	}
	times := exec.ExecuteBatch(jobs)
	if len(times) != len(jobs) {
		t.Fatalf("ExecuteBatch returned %d times for %d jobs", len(times), len(jobs))
	}
	for i, j := range jobs {
		if got := exec.Execute(j.Cfg, j.DsizeMB); got != times[i] {
			t.Fatalf("job %d: Execute=%v ExecuteBatch=%v", i, got, times[i])
		}
	}
}
