// Package core is the paper's primary contribution assembled: the DAC
// auto-tuner of Fig. 4, with its three components — collecting (random
// configurations × dataset sizes run on the cluster), modeling
// (Hierarchical Modeling over the 41 parameters plus datasize), and
// searching (a genetic algorithm over the trained model) — plus the RFHOC
// baseline pipeline the paper reimplements for comparison.
package core

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/conf"
	"repro/internal/dataset"
	"repro/internal/ga"
	"repro/internal/hm"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rf"
	"repro/internal/search"
)

// UncertainModel is a performance model that can report how unsure it is
// about a prediction (hm.Model of order ≥ 2 implements it).
type UncertainModel interface {
	model.Model
	// PredictWithUncertainty returns the prediction in seconds and a
	// dispersion estimate in seconds.
	PredictWithUncertainty(x []float64) (pred, std float64)
}

// Executor runs one program-input pair under a configuration and reports
// its execution time in seconds. The simulator-backed implementation lives
// next to the Tuner (SimExecutor in this package); a binding to a real
// cluster would satisfy the same interface.
type Executor interface {
	Execute(cfg conf.Config, dsizeMB float64) float64
}

// ExecutorFunc adapts a function to the Executor interface.
type ExecutorFunc func(cfg conf.Config, dsizeMB float64) float64

// Execute implements Executor.
func (f ExecutorFunc) Execute(cfg conf.Config, dsizeMB float64) float64 {
	return f(cfg, dsizeMB)
}

// Job is one collecting work item: execute the program under Cfg with
// DsizeMB megabytes of input.
type Job struct {
	Cfg     conf.Config
	DsizeMB float64
}

// BatchExecutor is an Executor that can run a whole chunk of collecting
// jobs in one call, amortizing per-run setup (program validation,
// scratch buffers) across the chunk. ExecuteBatch must return one time
// per job, in job order, each identical to what Execute would return for
// that job — the collector relies on this to keep batched and per-job
// collection byte-identical. The collector prefers this interface when
// the executor implements it.
type BatchExecutor interface {
	Executor
	ExecuteBatch(jobs []Job) []float64
}

// Options configures the pipeline. The zero value selects the paper's
// settings: m=10 dataset sizes, ntrain=2000 training samples, HM modeling
// with tc=5/lr=0.05/nt=3600, GA with popSize 100.
type Options struct {
	// NumSizes is m, the number of distinct training dataset sizes
	// (§3.1 sets it to 10; consecutive sizes differ by ≥10%, Eq. 4).
	NumSizes int
	// NTrain is the number of performance vectors to collect (§5.1
	// determines 2000).
	NTrain int
	// HM configures the performance model.
	HM hm.Options
	// Backend, when non-nil, replaces the HM modeling stage: the tuner
	// trains through Backend.Train instead of hm.Train, with BackendTrain
	// as the knobs. Nil keeps the paper's HM path, including its exact
	// seed derivation — default-path output is byte-identical with or
	// without the backend layer present.
	Backend model.Backend
	// BackendTrain holds the cross-backend training knobs when Backend is
	// set. A zero Seed is filled with Seed+1, mirroring the HM path.
	BackendTrain model.TrainOpts
	// GA configures the searcher.
	GA ga.Options
	// Searcher, when non-nil, replaces the GA searching stage: the tuner
	// calls Searcher.Search with the candidate budget the GA options
	// imply (PopSize×(Generations+1), so every searcher considers as
	// many configurations as the paper's GA would), the same derived
	// seed, the same training-set population seeds, and the same batch
	// objective and genome cache. Nil keeps the paper's GA path,
	// including its exact seed trajectory — default-path output is
	// byte-identical with or without the searcher layer present
	// (mirroring what Backend does for the modeling stage).
	Searcher search.Searcher
	// Parallelism bounds concurrent executions while collecting
	// (0 = GOMAXPROCS). The simulated cluster cost is unaffected.
	Parallelism int
	// Sampler generates the collected configurations; nil selects the
	// paper's uniform configuration generator. conf.LatinHypercubeSampler
	// is the space-filling alternative (see the sampling ablation bench).
	Sampler conf.Sampler
	// RobustSearch makes the GA minimize prediction + RobustKappa ×
	// model dispersion instead of the point prediction, when the model
	// exposes an uncertainty estimate (hm models of order ≥ 2 do). This
	// extension counters the searcher exploiting regions where the model
	// is optimistically wrong; see the ablation benchmark.
	RobustSearch bool
	// RobustKappa is the dispersion penalty weight (default 1).
	RobustKappa float64
	// Seed drives configuration generation and sampling.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.NumSizes <= 0 {
		o.NumSizes = 10
	}
	if o.NTrain <= 0 {
		o.NTrain = 2000
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// Tuner is a DAC instance for one program on one cluster.
type Tuner struct {
	// Space is the configuration space (conf.StandardSpace for Spark).
	Space *conf.Space
	// Exec runs the program-input pairs.
	Exec Executor
	// Opt holds the pipeline settings.
	Opt Options
	// Obs, when non-nil, receives the pipeline's metrics: per-phase
	// wall-clock spans (tune → collect/model/search), collection job
	// counts and cluster time, model fit and predict timing, and the
	// GA's counters (the registry is propagated into hm and ga unless
	// their own Options carry one). Nil keeps every instrumented path on
	// its zero-cost branch.
	Obs *obs.Registry
}

// obsHM returns the HM options with the tuner's registry attached.
func (t *Tuner) obsHM(o hm.Options) hm.Options {
	if o.Obs == nil {
		o.Obs = t.Obs
	}
	return o
}

// obsGA returns the GA options with the tuner's registry attached.
func (t *Tuner) obsGA(o ga.Options) ga.Options {
	if o.Obs == nil {
		o.Obs = t.Obs
	}
	return o
}

// predictBounds buckets single model predictions, which cost
// microseconds against DefaultTimeBounds' millisecond floor.
var predictBounds = []float64{
	1e-7, 3e-7, 1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 0.01, 0.1,
}

// Overhead records the pipeline's cost, the quantities of Table 3.
type Overhead struct {
	// CollectClusterHours is the accumulated execution time of the
	// collected runs — cluster time, the paper's "collecting" hours.
	CollectClusterHours float64
	// ModelTrainSec is the wall-clock time spent training the model.
	ModelTrainSec float64
	// SearchSec is the wall-clock time spent searching per target size.
	SearchSec float64
}

// TrainingSizesMB generates the m training dataset sizes between minMB and
// maxMB, geometrically spaced so every consecutive pair differs by at
// least 10% when the range allows it (Eq. 4).
func (t *Tuner) TrainingSizesMB(minMB, maxMB float64) []float64 {
	opt := t.Opt.withDefaults()
	m := opt.NumSizes
	if m == 1 || minMB >= maxMB {
		return []float64{minMB}
	}
	ratio := math.Pow(maxMB/minMB, 1/float64(m-1))
	sizes := make([]float64, m)
	for i := range sizes {
		sizes[i] = minMB * math.Pow(ratio, float64(i))
	}
	return sizes
}

// Collect runs the collecting component: NTrain executions with random
// configurations spread across the given dataset sizes, gathered into a
// training set. Executions run concurrently; results are deterministic in
// (Seed, Exec) because each row's configuration and size are fixed up
// front.
func (t *Tuner) Collect(sizesMB []float64) (*dataset.Set, Overhead, error) {
	sp := t.Obs.StartSpan("collect")
	defer sp.End()
	return t.collect(sizesMB)
}

func (t *Tuner) collect(sizesMB []float64) (*dataset.Set, Overhead, error) {
	opt := t.Opt.withDefaults()
	if len(sizesMB) == 0 {
		return nil, Overhead{}, fmt.Errorf("core: no dataset sizes")
	}
	jobs := t.CollectJobs(sizesMB)
	times := make([]float64, len(jobs))
	t.runJobs(jobs, times, opt.Parallelism)

	set := dataset.NewSet(t.Space)
	var clusterSec float64
	for i, j := range jobs {
		if times[i] <= 0 || math.IsNaN(times[i]) || math.IsInf(times[i], 0) {
			return nil, Overhead{}, fmt.Errorf("core: execution %d returned time %v", i, times[i])
		}
		set.Add(j.Cfg, j.DsizeMB, times[i])
		clusterSec += times[i]
	}
	t.Obs.Counter("core.collect.jobs").Add(int64(len(jobs)))
	t.Obs.Float("core.collect.cluster.sec").Add(clusterSec)
	return set, Overhead{CollectClusterHours: clusterSec / 3600}, nil
}

// runJobs executes jobs concurrently, writing each job's time into times
// at the job's index. The jobs are split into one contiguous chunk per
// worker — not one goroutine per job, which for the paper's budget meant
// a 2000-goroutine spawn — and an executor that implements BatchExecutor
// receives its whole chunk as a single ExecuteBatch call, amortizing
// per-run setup across it ("core.collect.batches" counts those calls,
// and each is timed under the "core.collect.batch" span). Results land
// by position either way, so the collected set — and any CSV written
// from it — is byte-identical across executor kinds, worker counts, and
// GOMAXPROCS.
func (t *Tuner) runJobs(jobs []Job, times []float64, workers int) {
	if workers > len(jobs) {
		workers = len(jobs)
	}
	be, batched := t.Exec.(BatchExecutor)
	var wg sync.WaitGroup
	for c := 0; c < workers; c++ {
		lo, hi := c*len(jobs)/workers, (c+1)*len(jobs)/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			if batched {
				sp := t.Obs.StartSpan("core.collect.batch")
				copy(times[lo:hi], be.ExecuteBatch(jobs[lo:hi]))
				sp.End()
				t.Obs.Counter("core.collect.batches").Inc()
				return
			}
			for i := lo; i < hi; i++ {
				times[i] = t.Exec.Execute(jobs[i].Cfg, jobs[i].DsizeMB)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Model trains the HM performance model over the collected set.
func (t *Tuner) Model(set *dataset.Set) (model.Model, Overhead, error) {
	sp := t.Obs.StartSpan("model")
	defer sp.End()
	return t.model(set)
}

func (t *Tuner) model(set *dataset.Set) (model.Model, Overhead, error) {
	opt := t.Opt.withDefaults()
	if opt.Backend != nil {
		trainOpt := opt.BackendTrain
		if trainOpt.Seed == 0 {
			trainOpt.Seed = opt.Seed + 1
		}
		if trainOpt.Obs == nil {
			trainOpt.Obs = t.Obs
		}
		start := time.Now()
		m, err := opt.Backend.Train(set.ToDataset(), trainOpt)
		if err != nil {
			return nil, Overhead{}, fmt.Errorf("core: training %s: %w", opt.Backend.Name(), err)
		}
		return m, Overhead{ModelTrainSec: time.Since(start).Seconds()}, nil
	}
	hmOpt := t.obsHM(opt.HM)
	if hmOpt.Seed == 0 {
		hmOpt.Seed = opt.Seed + 1
	}
	if opt.RobustSearch {
		// Robust search needs sub-model dispersion, so force the
		// hierarchical recursion to build several first-order models.
		if hmOpt.MaxOrder < 3 {
			hmOpt.MaxOrder = 3
		}
		if hmOpt.TargetAccuracy == 0 {
			hmOpt.TargetAccuracy = 0.999 // unreachable: always recurse to MaxOrder
		}
	}
	start := time.Now()
	m, err := hm.Train(set.ToDataset(), hmOpt)
	if err != nil {
		return nil, Overhead{}, fmt.Errorf("core: training: %w", err)
	}
	return m, Overhead{ModelTrainSec: time.Since(start).Seconds()}, nil
}

// Search runs the GA over the trained model for one target dataset size
// and returns the best configuration, its predicted time, and the GA
// result (for convergence analysis, Fig. 11). seedConfs optionally seeds
// the population, as the paper does with vectors from the training set.
func (t *Tuner) Search(m model.Model, dsizeMB float64, seedConfs [][]float64) (conf.Config, float64, ga.Result, Overhead, error) {
	sp := t.Obs.StartSpan("search")
	defer sp.End()
	return t.search(m, dsizeMB, seedConfs)
}

func (t *Tuner) search(m model.Model, dsizeMB float64, seedConfs [][]float64) (conf.Config, float64, ga.Result, Overhead, error) {
	opt := t.Opt.withDefaults()
	gaOpt := t.obsGA(opt.GA)
	if gaOpt.Seed == 0 {
		gaOpt.Seed = opt.Seed + 2
	}
	// The objective allocates its feature row per call: the GA's worker
	// pool calls it from several goroutines, so a shared buffer would race.
	d := t.Space.Len()
	obj := func(cfgVec []float64) float64 {
		x := make([]float64, d+1)
		copy(x, cfgVec)
		x[d] = dsizeMB
		return m.Predict(x)
	}
	// Batch form of the same objective: append the dsize column to every
	// genome and score the block through the model's batch fast path.
	// Bit-identical to obj per row (the BatchPredictor contract).
	var batchObj ga.BatchObjective
	if bp, ok := m.(model.BatchPredictor); ok {
		batchObj = func(X [][]float64, out []float64) {
			rows := make([][]float64, len(X))
			buf := make([]float64, len(X)*(d+1))
			for i, cfgVec := range X {
				row := buf[i*(d+1) : (i+1)*(d+1) : (i+1)*(d+1)]
				copy(row, cfgVec)
				row[d] = dsizeMB
				rows[i] = row
			}
			bp.PredictBatch(rows, out)
		}
	}
	if opt.RobustSearch {
		if um, ok := m.(UncertainModel); ok {
			kappa := opt.RobustKappa
			if kappa <= 0 {
				kappa = 1
			}
			// Uncertainty has no batch form; fall back to per-row calls.
			batchObj = nil
			obj = func(cfgVec []float64) float64 {
				x := make([]float64, d+1)
				copy(x, cfgVec)
				x[d] = dsizeMB
				pred, std := um.PredictWithUncertainty(x)
				return pred + kappa*std
			}
		}
	}
	if t.Obs != nil {
		// Attribute model-predict latency separately from the GA's own
		// bookkeeping; the histogram add costs ~100ns against a predict
		// that walks thousands of trees.
		h := t.Obs.Histogram("model.predict.sec", predictBounds)
		inner := obj
		obj = func(cfgVec []float64) float64 {
			t0 := time.Now()
			v := inner(cfgVec)
			h.Observe(time.Since(t0).Seconds())
			return v
		}
		if batchObj != nil {
			// The batch path observes the per-row mean, once per row, so
			// the histogram's count and sum stay comparable to the
			// per-row path.
			innerB := batchObj
			batchObj = func(X [][]float64, out []float64) {
				t0 := time.Now()
				innerB(X, out)
				if len(X) > 0 {
					per := time.Since(t0).Seconds() / float64(len(X))
					for range X {
						h.Observe(per)
					}
				}
			}
		}
	}
	if gaOpt.BatchObj == nil {
		gaOpt.BatchObj = batchObj
	}
	start := time.Now()
	var res ga.Result
	if opt.Searcher != nil {
		res = runSearcher(opt.Searcher, t.Space, obj, seedConfs, gaOpt)
	} else {
		res = ga.Minimize(t.Space, obj, seedConfs, gaOpt)
	}
	elapsed := time.Since(start).Seconds()
	cfg, err := t.Space.FromVector(res.Best)
	if err != nil {
		return conf.Config{}, 0, res, Overhead{}, fmt.Errorf("core: search result: %w", err)
	}
	return cfg, res.BestFitness, res, Overhead{SearchSec: elapsed}, nil
}

// TuneResult is the outcome of an end-to-end Tune call.
type TuneResult struct {
	// Best maps each target dataset size (MB) to its tuned configuration.
	Best map[float64]conf.Config
	// PredictedSec maps each target size to the model's prediction for
	// the tuned configuration.
	PredictedSec map[float64]float64
	// Set is the collected training data.
	Set *dataset.Set
	// Model is the trained performance model.
	Model model.Model
	// GA holds the searcher result per target size.
	GA map[float64]ga.Result
	// Overhead aggregates Table 3's costs.
	Overhead Overhead
}

// Tune runs the full DAC pipeline: collect over [minMB, maxMB], train HM,
// then search a configuration for every target size.
func (t *Tuner) Tune(minMB, maxMB float64, targetsMB []float64) (*TuneResult, error) {
	root := t.Obs.StartSpan("tune")
	defer root.End()

	sizes := t.TrainingSizesMB(minMB, maxMB)
	cs := root.Child("collect")
	set, ovC, err := t.collect(sizes)
	cs.End()
	if err != nil {
		return nil, err
	}
	return t.tuneCollected(root, set, ovC, targetsMB, nil)
}

// TuneCollected runs the model and search phases of Tune over an
// already-collected training set. Given the set Collect (or a resumed
// CollectResumable) produces for the tuner's Options, the result — best
// configuration, prediction, GA trajectory — is identical to Tune's for
// the same seed: the modeling and searching randomness derives from
// Opt.Seed alone, never from how the set was gathered. This is the seam
// the tuning daemon uses to make the collect phase durable without
// perturbing the pipeline's output. progress, when non-nil, is called as
// phases finish ("model" once, "search" per completed target).
func (t *Tuner) TuneCollected(set *dataset.Set, collectOv Overhead, targetsMB []float64, progress func(phase string, done, total int)) (*TuneResult, error) {
	root := t.Obs.StartSpan("tune")
	defer root.End()
	return t.tuneCollected(root, set, collectOv, targetsMB, progress)
}

func (t *Tuner) tuneCollected(root *obs.Span, set *dataset.Set, ovC Overhead, targetsMB []float64, progress func(phase string, done, total int)) (*TuneResult, error) {
	ms := root.Child("model")
	m, ovM, err := t.model(set)
	ms.End()
	if err != nil {
		return nil, err
	}
	if progress != nil {
		progress("model", 1, 1)
	}
	out := &TuneResult{
		Best:         make(map[float64]conf.Config, len(targetsMB)),
		PredictedSec: make(map[float64]float64, len(targetsMB)),
		GA:           make(map[float64]ga.Result, len(targetsMB)),
		Set:          set,
		Model:        m,
		Overhead:     Overhead{CollectClusterHours: ovC.CollectClusterHours, ModelTrainSec: ovM.ModelTrainSec},
	}
	seedRng := rand.New(rand.NewSource(t.Opt.withDefaults().Seed + 5))
	seeds := seedConfsFrom(set, t.Opt.withDefaults().GA.PopSize, seedRng)
	for k, target := range targetsMB {
		ss := root.Child("search")
		cfg, pred, gaRes, ovS, err := t.search(m, target, seeds)
		ss.End()
		if err != nil {
			return nil, err
		}
		out.Best[target] = cfg
		out.PredictedSec[target] = pred
		out.GA[target] = gaRes
		out.Overhead.SearchSec += ovS.SearchSec
		if progress != nil {
			progress("search", k+1, len(targetsMB))
		}
	}
	return out, nil
}

// runSearcher routes a search through a pluggable Searcher with the
// candidate budget and wiring the GA options imply, and converts the
// outcome back to the GA result shape the pipeline reports (Converged
// recomputed with ga's 0.5%-of-final-best rule over the searcher's
// round history).
func runSearcher(s search.Searcher, space *conf.Space, obj ga.Objective, init [][]float64, gaOpt ga.Options) ga.Result {
	sres := s.Search(space, search.Objective(obj), search.Options{
		Budget:   search.GABudget(gaOpt),
		Seed:     gaOpt.Seed,
		Init:     init,
		BatchObj: gaOpt.BatchObj,
		Workers:  gaOpt.Workers,
		Cache:    gaOpt.Cache,
		Obs:      gaOpt.Obs,
	})
	res := ga.Result{
		Best:        sres.Best,
		BestFitness: sres.BestFitness,
		History:     sres.History,
		Evaluations: sres.Evaluations,
	}
	for g, v := range res.History {
		if v <= res.BestFitness*1.005+1e-12 {
			res.Converged = g + 1
			break
		}
	}
	return res
}

// seedConfsFrom extracts up to n configuration vectors from the training
// set to seed the GA population, exactly as §3.3 describes: popSize
// vectors randomly selected from S with the time element removed.
func seedConfsFrom(set *dataset.Set, n int, rng *rand.Rand) [][]float64 {
	if n <= 0 {
		n = 100
	}
	if n > set.Len() {
		n = set.Len()
	}
	perm := rng.Perm(set.Len())
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		out[i] = append([]float64(nil), set.Vectors[perm[i]].Conf...)
	}
	return out
}

// RFHOCTuner is the paper's reimplementation of RFHOC [4] on Spark: the
// same collect-model-search pipeline but with a random-forest model and no
// datasize awareness — the model sees only the 41 configuration columns,
// and one configuration is produced for the program regardless of input
// size (§5.6 explains this is why DAC beats it on large inputs).
type RFHOCTuner struct {
	Space *conf.Space
	Exec  Executor
	Opt   Options
	RF    rf.Options
	// Obs receives the baseline pipeline's metrics like Tuner.Obs does.
	Obs *obs.Registry
}

// Tune collects like DAC (same budget for fairness), trains a
// datasize-blind random forest, and searches one configuration.
func (t *RFHOCTuner) Tune(minMB, maxMB float64) (conf.Config, error) {
	root := t.Obs.StartSpan("rfhoc.tune")
	defer root.End()
	inner := &Tuner{Space: t.Space, Exec: t.Exec, Opt: t.Opt, Obs: t.Obs}
	sizes := inner.TrainingSizesMB(minMB, maxMB)
	cs := root.Child("collect")
	set, _, err := inner.collect(sizes)
	cs.End()
	if err != nil {
		return conf.Config{}, err
	}
	// Drop the dsize column: RFHOC's model is configuration-only.
	ds := model.NewDataset(t.Space.Names())
	for _, pv := range set.Vectors {
		ds.Add(pv.Conf, pv.TimeSec)
	}
	rfOpt := t.RF
	if rfOpt.Seed == 0 {
		rfOpt.Seed = t.Opt.Seed + 3
	}
	ms := root.Child("model")
	forest, err := rf.Train(ds, rfOpt)
	ms.End()
	if err != nil {
		return conf.Config{}, fmt.Errorf("core: rfhoc training: %w", err)
	}
	gaOpt := inner.obsGA(t.Opt.GA)
	if gaOpt.Seed == 0 {
		gaOpt.Seed = t.Opt.Seed + 4
	}
	if gaOpt.BatchObj == nil {
		// RFHOC's model is datasize-blind, so the genome is the whole
		// feature row — the forest's batch path applies directly.
		gaOpt.BatchObj = forest.PredictBatch
	}
	seedRng := rand.New(rand.NewSource(t.Opt.Seed + 6))
	ss := root.Child("search")
	res := ga.Minimize(t.Space, func(x []float64) float64 { return forest.Predict(x) },
		seedConfsFrom(set, gaOpt.PopSize, seedRng), gaOpt)
	ss.End()
	return t.Space.FromVector(res.Best)
}
