package core

import (
	"sync"

	"repro/internal/conf"
	"repro/internal/sparksim"
)

// SimExecutor runs program-input pairs on the cluster simulator — the
// Executor the facade and the commands wire into the pipeline. It
// implements BatchExecutor: a chunk of collecting jobs becomes one
// sparksim.RunBatchInto call over pooled Result storage, so program
// validation, the per-run scratch buffers, and the Result allocations are
// paid once per chunk (or recycled across chunks) instead of once per
// run. Both paths report identical times (RunBatch's bit-identity
// contract), so the collector may pick either without changing any
// result.
type SimExecutor struct {
	Sim  *sparksim.Simulator
	Prog *sparksim.Program

	// scratch recycles each batch's RunSpec and Result storage across
	// ExecuteBatch calls; the sweep's steady state allocates only the
	// returned times slice.
	scratch sync.Pool
}

// batchScratch is one ExecuteBatch call's reusable storage.
type batchScratch struct {
	pairs   []sparksim.RunSpec
	results []sparksim.Result
}

// NewSimExecutor adapts a simulator and a program to the collecting
// pipeline's executor interfaces.
func NewSimExecutor(sim *sparksim.Simulator, p *sparksim.Program) *SimExecutor {
	return &SimExecutor{Sim: sim, Prog: p}
}

// Execute implements Executor: one simulated run.
func (e *SimExecutor) Execute(cfg conf.Config, dsizeMB float64) float64 {
	return e.Sim.Run(e.Prog, dsizeMB, cfg).TotalSec
}

// ExecuteBatch implements BatchExecutor: one RunBatchInto over the chunk,
// against pooled Result storage.
func (e *SimExecutor) ExecuteBatch(jobs []Job) []float64 {
	sc, _ := e.scratch.Get().(*batchScratch)
	if sc == nil {
		sc = &batchScratch{}
	}
	pairs := sc.pairs[:0]
	for _, j := range jobs {
		pairs = append(pairs, sparksim.RunSpec{Cfg: j.Cfg, InputMB: j.DsizeMB})
	}
	sc.results = e.Sim.RunBatchInto(e.Prog, pairs, sc.results)
	out := make([]float64, len(jobs))
	for i := range sc.results {
		out[i] = sc.results[i].TotalSec
	}
	sc.pairs = pairs
	e.scratch.Put(sc)
	return out
}
