package core

import (
	"repro/internal/conf"
	"repro/internal/sparksim"
)

// SimExecutor runs program-input pairs on the cluster simulator — the
// Executor the facade and the commands wire into the pipeline. It
// implements BatchExecutor: a chunk of collecting jobs becomes one
// sparksim.RunBatch call, so program validation and the per-run scratch
// buffers are paid once per chunk instead of once per run. Both paths
// report identical times (RunBatch's bit-identity contract), so the
// collector may pick either without changing any result.
type SimExecutor struct {
	Sim  *sparksim.Simulator
	Prog *sparksim.Program
}

// NewSimExecutor adapts a simulator and a program to the collecting
// pipeline's executor interfaces.
func NewSimExecutor(sim *sparksim.Simulator, p *sparksim.Program) *SimExecutor {
	return &SimExecutor{Sim: sim, Prog: p}
}

// Execute implements Executor: one simulated run.
func (e *SimExecutor) Execute(cfg conf.Config, dsizeMB float64) float64 {
	return e.Sim.Run(e.Prog, dsizeMB, cfg).TotalSec
}

// ExecuteBatch implements BatchExecutor: one RunBatch over the chunk.
func (e *SimExecutor) ExecuteBatch(jobs []Job) []float64 {
	pairs := make([]sparksim.RunSpec, len(jobs))
	for i, j := range jobs {
		pairs[i] = sparksim.RunSpec{Cfg: j.Cfg, InputMB: j.DsizeMB}
	}
	res := e.Sim.RunBatch(e.Prog, pairs)
	out := make([]float64, len(res))
	for i, r := range res {
		out[i] = r.TotalSec
	}
	return out
}
