package core

import (
	"runtime"
	"testing"

	"repro/internal/cluster"
	"repro/internal/conf"
	"repro/internal/ga"
	"repro/internal/hm"
	"repro/internal/sparksim"
	"repro/internal/workloads"
)

// tuneOnce runs a small end-to-end Tune at the given parallelism and
// returns the best configuration vector and prediction for the target.
func tuneOnce(t *testing.T, parallelism int) ([]float64, float64) {
	t.Helper()
	w, err := workloads.ByAbbr("TS")
	if err != nil {
		t.Fatal(err)
	}
	sim := sparksim.New(cluster.Standard(), 8)
	tuner := &Tuner{
		Space: conf.StandardSpace(),
		Exec: ExecutorFunc(func(cfg conf.Config, dsizeMB float64) float64 {
			return sim.Run(&w.Program, dsizeMB, cfg).TotalSec
		}),
		Opt: Options{
			NTrain:      120,
			HM:          hm.Options{Trees: 60, LearningRate: 0.1, TreeComplexity: 5},
			GA:          ga.Options{PopSize: 20, Generations: 8},
			Seed:        1,
			Parallelism: parallelism,
		},
	}
	target := w.InputMB(30)
	res, err := tuner.Tune(w.InputMB(10), w.InputMB(50), []float64{target})
	if err != nil {
		t.Fatal(err)
	}
	return res.Best[target].Vector(), res.PredictedSec[target]
}

// TestTuneDeterministicAcrossParallelism pins the pipeline's determinism
// contract: the same seeds must give the same tuned configuration whether
// the collecting component runs on one goroutine or many. A violation
// means some stage's result depends on scheduling order — exactly the bug
// class the race suite exists to keep out.
func TestTuneDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end tune skipped in -short mode")
	}
	wide := runtime.GOMAXPROCS(0) * 2
	if wide < 8 {
		wide = 8
	}
	vec1, pred1 := tuneOnce(t, 1)
	vecN, predN := tuneOnce(t, wide)
	if pred1 != predN {
		t.Errorf("predicted time differs across parallelism: %v vs %v", pred1, predN)
	}
	if len(vec1) != len(vecN) {
		t.Fatalf("config vector lengths differ: %d vs %d", len(vec1), len(vecN))
	}
	for i := range vec1 {
		if vec1[i] != vecN[i] {
			t.Errorf("best config dimension %d differs: %v (serial) vs %v (parallel %d)",
				i, vec1[i], vecN[i], wide)
		}
	}
}
