package core

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/cluster"
	"repro/internal/conf"
	"repro/internal/ga"
	"repro/internal/hm"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sparksim"
	"repro/internal/workloads"
)

// tuneOnce runs a small end-to-end Tune at the given parallelism and
// returns the best configuration vector and prediction for the target.
func tuneOnce(t *testing.T, parallelism int) ([]float64, float64) {
	t.Helper()
	w, err := workloads.ByAbbr("TS")
	if err != nil {
		t.Fatal(err)
	}
	sim := sparksim.New(cluster.Standard(), 8)
	tuner := &Tuner{
		Space: conf.StandardSpace(),
		Exec: ExecutorFunc(func(cfg conf.Config, dsizeMB float64) float64 {
			return sim.Run(&w.Program, dsizeMB, cfg).TotalSec
		}),
		Opt: Options{
			NTrain:      120,
			HM:          hm.Options{Trees: 60, LearningRate: 0.1, TreeComplexity: 5},
			GA:          ga.Options{PopSize: 20, Generations: 8},
			Seed:        1,
			Parallelism: parallelism,
		},
	}
	target := w.InputMB(30)
	res, err := tuner.Tune(w.InputMB(10), w.InputMB(50), []float64{target})
	if err != nil {
		t.Fatal(err)
	}
	return res.Best[target].Vector(), res.PredictedSec[target]
}

// TestTuneDeterministicAcrossParallelism pins the pipeline's determinism
// contract: the same seeds must give the same tuned configuration whether
// the collecting component runs on one goroutine or many. A violation
// means some stage's result depends on scheduling order — exactly the bug
// class the race suite exists to keep out.
func TestTuneDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end tune skipped in -short mode")
	}
	wide := runtime.GOMAXPROCS(0) * 2
	if wide < 8 {
		wide = 8
	}
	vec1, pred1 := tuneOnce(t, 1)
	vecN, predN := tuneOnce(t, wide)
	if pred1 != predN {
		t.Errorf("predicted time differs across parallelism: %v vs %v", pred1, predN)
	}
	if len(vec1) != len(vecN) {
		t.Fatalf("config vector lengths differ: %d vs %d", len(vec1), len(vecN))
	}
	for i := range vec1 {
		if vec1[i] != vecN[i] {
			t.Errorf("best config dimension %d differs: %v (serial) vs %v (parallel %d)",
				i, vec1[i], vecN[i], wide)
		}
	}
}

// rowOnly hides a model's PredictBatch, forcing the tuner onto the
// pre-optimization per-row objective path.
type rowOnly struct{ model.Model }

// TestSearchBatchWiringMatchesSerialGA pins the tuner-level contract of
// the batched searcher: the dsize-appending batch objective, the genome
// cache, and the worker pool together must return the exact configuration
// and prediction the serial per-row search returns.
func TestSearchBatchWiringMatchesSerialGA(t *testing.T) {
	space := conf.StandardSpace()
	rng := rand.New(rand.NewSource(4))
	ds := model.NewDataset(append(space.Names(), "dsize"))
	for i := 0; i < 300; i++ {
		x := append(space.Random(rng).Vector(), 100+900*rng.Float64())
		ds.Add(x, 10+0.5*x[0]+0.01*x[len(x)-1]*(1+0.02*rng.NormFloat64()))
	}
	m, err := hm.Train(ds, hm.Options{Trees: 80, LearningRate: 0.1, TreeComplexity: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}

	run := func(mm model.Model, gaOpt ga.Options, reg *obs.Registry) ([]float64, float64) {
		tuner := &Tuner{Space: space, Opt: Options{GA: gaOpt, Seed: 9}, Obs: reg}
		cfg, pred, _, _, err := tuner.Search(mm, 500, nil)
		if err != nil {
			t.Fatal(err)
		}
		return cfg.Vector(), pred
	}
	base := ga.Options{PopSize: 20, Generations: 12}
	refOpt := base
	refOpt.Workers = 1
	refOpt.NoCache = true
	refVec, refPred := run(rowOnly{m}, refOpt, nil)
	for _, tc := range []struct {
		label string
		reg   *obs.Registry
	}{{"plain", nil}, {"observed", obs.NewRegistry()}} {
		vec, pred := run(m, base, tc.reg)
		if pred != refPred {
			t.Fatalf("%s: prediction %v differs from serial reference %v", tc.label, pred, refPred)
		}
		for i := range refVec {
			if vec[i] != refVec[i] {
				t.Fatalf("%s: config dimension %d differs: %v vs %v", tc.label, i, vec[i], refVec[i])
			}
		}
	}
}
