package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/conf"
	"repro/internal/dataset"
)

// RowTime is one completed collecting row: the job's index in the sweep
// order, the job itself, and its measured execution time. The index is
// the durable identity of the row — the sweep's job list is a pure
// function of (Space, Options, sizes), so a journaled (index, time) pair
// is enough to skip the row on resume.
type RowTime struct {
	Index   int
	Job     Job
	TimeSec float64
}

// CollectHooks customizes the resumable collecting path. The zero value
// runs a plain, non-durable collect at checkpoint-batch granularity.
type CollectHooks struct {
	// Known reports a row's already-measured execution time — fed from a
	// journal on resume. Rows with a known time are not re-executed; their
	// time lands in the collected set as-is.
	Known func(index int) (timeSec float64, ok bool)
	// OnBatch observes each scheduled batch's freshly executed rows,
	// index-ascending within the batch — the journal append + checkpoint
	// hook. It is called from worker goroutines concurrently;
	// implementations must synchronize.
	OnBatch func(rows []RowTime)
	// Progress receives the cumulative completed row count (known rows
	// included) after every batch, and once up front for the known rows.
	// Called from worker goroutines concurrently.
	Progress func(done, total int)
	// BatchRows bounds the rows per scheduled batch — the checkpoint and
	// cancellation granularity (default 64). Batched executors amortize
	// per-run setup across one ExecuteBatch call per batch; results are
	// byte-identical for any value.
	BatchRows int
}

// defaultBatchRows is the checkpoint granularity when hooks don't choose:
// small enough that a killed daemon loses at most one batch of sweep
// work, large enough to keep ExecuteBatch's amortization.
const defaultBatchRows = 64

// CollectJobs returns the sweep's job list for the given sizes — the
// (configuration, datasize) pairs Collect and CollectResumable execute,
// in row order. The list is a pure function of (Space, Opt.Seed,
// Opt.NTrain, Opt.Sampler, sizesMB); durable collect journals rely on
// this to identify rows across daemon restarts by index alone.
func (t *Tuner) CollectJobs(sizesMB []float64) []Job {
	opt := t.Opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	sampler := opt.Sampler
	if sampler == nil {
		sampler = conf.UniformSampler{}
	}
	cfgs := sampler.Sample(t.Space, opt.NTrain, rng)
	jobs := make([]Job, opt.NTrain)
	for i := range jobs {
		jobs[i] = Job{Cfg: cfgs[i], DsizeMB: sizesMB[i%len(sizesMB)]}
	}
	return jobs
}

// ExecuteRows executes the named sweep rows on the tuner's executor and
// returns them as RowTimes in the given index order. This is the
// one-chunk slice of a collect sweep — the fleet coordinator's local
// fallback and ad-hoc re-execution use it — and inherits the collector's
// determinism: each row's time depends only on its job spec, so the
// times match a full CollectResumable run bit-for-bit.
func (t *Tuner) ExecuteRows(jobs []Job, indices []int) ([]RowTime, error) {
	jbuf := make([]Job, len(indices))
	for k, i := range indices {
		if i < 0 || i >= len(jobs) {
			return nil, fmt.Errorf("core: row index %d outside sweep of %d rows", i, len(jobs))
		}
		jbuf[k] = jobs[i]
	}
	var sec []float64
	if be, ok := t.Exec.(BatchExecutor); ok {
		sec = be.ExecuteBatch(jbuf)
	} else {
		sec = make([]float64, len(jbuf))
		for k, j := range jbuf {
			sec[k] = t.Exec.Execute(j.Cfg, j.DsizeMB)
		}
	}
	rows := make([]RowTime, len(indices))
	for k, i := range indices {
		rows[k] = RowTime{Index: i, Job: jobs[i], TimeSec: sec[k]}
	}
	return rows, nil
}

// CollectResumable is Collect with durability seams: rows already known
// (journaled by a previous, interrupted run) are skipped, freshly
// executed rows are handed to OnBatch in checkpoint-sized batches as they
// complete, and ctx cancels the sweep between batches. The collected set
// is byte-identical to Collect's for the same Options — row times depend
// only on (Seed, Exec), never on batch boundaries, worker count, or which
// rows were resumed — so a CSV written from a resumed sweep matches an
// uninterrupted run exactly, at any GOMAXPROCS.
//
// On cancellation the error wraps ctx.Err(); rows that completed before
// the cancel were already delivered to OnBatch, so a journaling caller
// loses at most the batches in flight.
func (t *Tuner) CollectResumable(ctx context.Context, sizesMB []float64, hooks CollectHooks) (*dataset.Set, Overhead, error) {
	sp := t.Obs.StartSpan("collect")
	defer sp.End()

	opt := t.Opt.withDefaults()
	if len(sizesMB) == 0 {
		return nil, Overhead{}, fmt.Errorf("core: no dataset sizes")
	}
	jobs := t.CollectJobs(sizesMB)
	total := len(jobs)

	batchRows := hooks.BatchRows
	if batchRows <= 0 {
		batchRows = defaultBatchRows
	}

	// Partition the rows: known ones land immediately, the rest queue up
	// in index order as checkpoint-sized batches.
	times := make([]float64, total)
	pending := make([]int, 0, total)
	for i := range jobs {
		if hooks.Known != nil {
			if sec, ok := hooks.Known(i); ok {
				times[i] = sec
				continue
			}
		}
		pending = append(pending, i)
	}
	known := total - len(pending)
	var done atomic.Int64
	done.Store(int64(known))
	if hooks.Progress != nil {
		hooks.Progress(known, total)
	}

	batches := make(chan []int, (len(pending)+batchRows-1)/batchRows)
	for lo := 0; lo < len(pending); lo += batchRows {
		hi := lo + batchRows
		if hi > len(pending) {
			hi = len(pending)
		}
		batches <- pending[lo:hi]
	}
	close(batches)

	workers := opt.Parallelism
	if workers > len(pending) {
		workers = len(pending)
	}
	be, batched := t.Exec.(BatchExecutor)
	var wg sync.WaitGroup
	for c := 0; c < workers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var jbuf []Job
			for idx := range batches {
				if ctx.Err() != nil {
					return // abandon; completed batches are already journaled
				}
				jbuf = jbuf[:0]
				for _, i := range idx {
					jbuf = append(jbuf, jobs[i])
				}
				var sec []float64
				if batched {
					bs := t.Obs.StartSpan("core.collect.batch")
					sec = be.ExecuteBatch(jbuf)
					bs.End()
					t.Obs.Counter("core.collect.batches").Inc()
				} else {
					sec = make([]float64, len(jbuf))
					for k, j := range jbuf {
						sec[k] = t.Exec.Execute(j.Cfg, j.DsizeMB)
					}
				}
				rows := make([]RowTime, len(idx))
				for k, i := range idx {
					times[i] = sec[k]
					rows[k] = RowTime{Index: i, Job: jobs[i], TimeSec: sec[k]}
				}
				if hooks.OnBatch != nil {
					hooks.OnBatch(rows)
				}
				n := done.Add(int64(len(idx)))
				if hooks.Progress != nil {
					hooks.Progress(int(n), total)
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, Overhead{}, fmt.Errorf("core: collect interrupted: %w", err)
	}

	set := dataset.NewSet(t.Space)
	var clusterSec float64
	for i, j := range jobs {
		if times[i] <= 0 || math.IsNaN(times[i]) || math.IsInf(times[i], 0) {
			return nil, Overhead{}, fmt.Errorf("core: execution %d returned time %v", i, times[i])
		}
		set.Add(j.Cfg, j.DsizeMB, times[i])
		clusterSec += times[i]
	}
	t.Obs.Counter("core.collect.jobs").Add(int64(total - known))
	t.Obs.Counter("core.collect.resumed.rows").Add(int64(known))
	t.Obs.Float("core.collect.cluster.sec").Add(clusterSec)
	return set, Overhead{CollectClusterHours: clusterSec / 3600}, nil
}
