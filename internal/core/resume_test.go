package core

import (
	"bytes"
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/conf"
	"repro/internal/ga"
	"repro/internal/hm"
	"repro/internal/sparksim"
	"repro/internal/workloads"
)

// TestCollectResumableMatchesCollect pins the durable path's equivalence
// contract: with no known rows, CollectResumable must produce a CSV
// byte-identical to Collect's — for any checkpoint batch size, with and
// without a batched executor — and deliver every row exactly once
// through OnBatch.
func TestCollectResumableMatchesCollect(t *testing.T) {
	w, err := workloads.ByAbbr("TS")
	if err != nil {
		t.Fatal(err)
	}
	sim := sparksim.New(cluster.Standard(), 8)
	tuner := &Tuner{
		Space: conf.StandardSpace(),
		Exec:  NewSimExecutor(sim, &w.Program),
		Opt:   Options{NTrain: 150, Seed: 1},
	}
	sizes := tuner.TrainingSizesMB(10*1024, 50*1024)
	ref, refOv, err := tuner.Collect(sizes)
	if err != nil {
		t.Fatal(err)
	}
	var refCSV bytes.Buffer
	if err := ref.WriteCSV(&refCSV); err != nil {
		t.Fatal(err)
	}

	for _, batchRows := range []int{1, 7, 64, 1000} {
		var mu sync.Mutex
		seen := make(map[int]float64)
		set, ov, err := tuner.CollectResumable(context.Background(), sizes, CollectHooks{
			BatchRows: batchRows,
			OnBatch: func(rows []RowTime) {
				mu.Lock()
				defer mu.Unlock()
				for _, r := range rows {
					if _, dup := seen[r.Index]; dup {
						t.Errorf("batchRows=%d: row %d delivered twice", batchRows, r.Index)
					}
					seen[r.Index] = r.TimeSec
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		var csv bytes.Buffer
		if err := set.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(csv.Bytes(), refCSV.Bytes()) {
			t.Fatalf("batchRows=%d: resumable collect CSV differs from Collect", batchRows)
		}
		if ov.CollectClusterHours != refOv.CollectClusterHours {
			t.Fatalf("batchRows=%d: cluster-hours drifted: %v vs %v",
				batchRows, ov.CollectClusterHours, refOv.CollectClusterHours)
		}
		if len(seen) != tuner.Opt.NTrain {
			t.Fatalf("batchRows=%d: OnBatch saw %d rows, want %d", batchRows, len(seen), tuner.Opt.NTrain)
		}
	}

	// Known rows short-circuit: feed half the rows back, require the other
	// half to be the only fresh executions, and the set to stay identical.
	half := make(map[int]float64)
	for i, pv := range ref.Vectors {
		if i%2 == 0 {
			half[i] = pv.TimeSec
		}
	}
	fresh := 0
	var mu sync.Mutex
	set, _, err := tuner.CollectResumable(context.Background(), sizes, CollectHooks{
		Known: func(i int) (float64, bool) { v, ok := half[i]; return v, ok },
		OnBatch: func(rows []RowTime) {
			mu.Lock()
			defer mu.Unlock()
			for _, r := range rows {
				if _, known := half[r.Index]; known {
					t.Errorf("known row %d re-executed", r.Index)
				}
				fresh++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := set.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv.Bytes(), refCSV.Bytes()) {
		t.Fatal("half-resumed collect CSV differs from Collect")
	}
	if fresh != tuner.Opt.NTrain-len(half) {
		t.Fatalf("resumed sweep executed %d fresh rows, want %d", fresh, tuner.Opt.NTrain-len(half))
	}
}

// TestCollectResumableCancel pins cancellation: a cancelled sweep returns
// ctx's error, and the rows delivered before the cancel replay through
// Known to finish the sweep with a byte-identical CSV.
func TestCollectResumableCancel(t *testing.T) {
	w, err := workloads.ByAbbr("TS")
	if err != nil {
		t.Fatal(err)
	}
	sim := sparksim.New(cluster.Standard(), 8)
	tuner := &Tuner{
		Space: conf.StandardSpace(),
		Exec:  NewSimExecutor(sim, &w.Program),
		Opt:   Options{NTrain: 120, Seed: 1, Parallelism: 2},
	}
	sizes := tuner.TrainingSizesMB(10*1024, 50*1024)
	ref, _, err := tuner.Collect(sizes)
	if err != nil {
		t.Fatal(err)
	}
	var refCSV bytes.Buffer
	if err := ref.WriteCSV(&refCSV); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	journal := make(map[int]float64)
	var mu sync.Mutex
	_, _, err = tuner.CollectResumable(ctx, sizes, CollectHooks{
		BatchRows: 10,
		OnBatch: func(rows []RowTime) {
			mu.Lock()
			defer mu.Unlock()
			for _, r := range rows {
				journal[r.Index] = r.TimeSec
			}
			if len(journal) >= 30 {
				cancel()
			}
		},
	})
	if err == nil {
		t.Fatal("cancelled collect returned nil error")
	}
	if len(journal) >= tuner.Opt.NTrain {
		t.Fatalf("cancel had no effect: all %d rows ran", len(journal))
	}

	set, _, err := tuner.CollectResumable(context.Background(), sizes, CollectHooks{
		BatchRows: 10,
		Known: func(i int) (float64, bool) {
			mu.Lock()
			defer mu.Unlock()
			v, ok := journal[i]
			return v, ok
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := set.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv.Bytes(), refCSV.Bytes()) {
		t.Fatal("cancel-then-resume CSV differs from an uninterrupted Collect")
	}
}

// TestTuneCollectedMatchesTune pins the daemon's pipeline seam: Tune must
// equal collect-then-TuneCollected exactly — same best vector, same
// prediction, same GA trajectory — because all modeling/search randomness
// derives from Opt.Seed, not from how the set was gathered.
func TestTuneCollectedMatchesTune(t *testing.T) {
	w, err := workloads.ByAbbr("TS")
	if err != nil {
		t.Fatal(err)
	}
	newTuner := func() *Tuner {
		sim := sparksim.New(cluster.Standard(), 8)
		return &Tuner{
			Space: conf.StandardSpace(),
			Exec:  NewSimExecutor(sim, &w.Program),
			Opt: Options{
				NTrain: 200,
				HM:     hm.Options{Trees: 120, LearningRate: 0.1, TreeComplexity: 5},
				GA:     ga.Options{PopSize: 20, Generations: 10},
				Seed:   3,
			},
		}
	}
	target := w.InputMB(30)
	lo, hi := w.InputMB(10), w.InputMB(50)

	ref, err := newTuner().Tune(lo, hi, []float64{target})
	if err != nil {
		t.Fatal(err)
	}

	tuner := newTuner()
	set, ovC, err := tuner.CollectResumable(context.Background(), tuner.TrainingSizesMB(lo, hi), CollectHooks{})
	if err != nil {
		t.Fatal(err)
	}
	var phases []string
	got, err := tuner.TuneCollected(set, ovC, []float64{target}, func(phase string, done, total int) {
		phases = append(phases, phase)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Best[target].Vector(), ref.Best[target].Vector()) {
		t.Fatal("TuneCollected best configuration differs from Tune")
	}
	if got.PredictedSec[target] != ref.PredictedSec[target] {
		t.Fatalf("predictions differ: %v vs %v", got.PredictedSec[target], ref.PredictedSec[target])
	}
	if !reflect.DeepEqual(got.GA[target].History, ref.GA[target].History) {
		t.Fatal("GA trajectories differ")
	}
	if len(phases) != 2 || phases[0] != "model" || phases[1] != "search" {
		t.Fatalf("progress phases = %v, want [model search]", phases)
	}
}
