package core

import (
	"bytes"
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/conf"
	"repro/internal/ga"
	"repro/internal/hm"
	"repro/internal/sparksim"
	"repro/internal/workloads"
)

// onlineTuner wires a small-budget online tuner over a workload, with an
// executor that records every run it actually performs.
func onlineTuner(t *testing.T, abbr string) (*Tuner, *workloads.Workload, *runRecorder) {
	t.Helper()
	w, err := workloads.ByAbbr(abbr)
	if err != nil {
		t.Fatal(err)
	}
	sim := sparksim.New(cluster.Standard(), 8)
	rec := &runRecorder{}
	return &Tuner{
		Space: conf.StandardSpace(),
		Exec: ExecutorFunc(func(cfg conf.Config, dsizeMB float64) float64 {
			rec.record(cfg, dsizeMB)
			return sim.Run(&w.Program, dsizeMB, cfg).TotalSec
		}),
		Opt: Options{
			HM:   hm.Options{Trees: 120, LearningRate: 0.1, TreeComplexity: 5},
			GA:   ga.Options{PopSize: 24, Generations: 12},
			Seed: 1,
		},
	}, w, rec
}

type runRecorder struct {
	mu   sync.Mutex
	cfgs []conf.Config
	mbs  []float64
}

func (r *runRecorder) record(cfg conf.Config, mb float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cfgs = append(r.cfgs, cfg)
	r.mbs = append(r.mbs, mb)
}

func (r *runRecorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cfgs)
}

func quickOnline() OnlineOptions {
	return OnlineOptions{ScreenSamples: 60, TopK: 8, Iterations: 2, IterBatch: 8, ExtraTrees: 60}
}

func TestTuneOnlineShapes(t *testing.T) {
	tuner, w, rec := onlineTuner(t, "TS")
	oo := quickOnline()
	target := w.InputMB(30)
	res, err := tuner.TuneOnline(context.Background(), w.InputMB(10), w.InputMB(50), target, oo, OnlineHooks{})
	if err != nil {
		t.Fatal(err)
	}
	wantRuns := oo.ScreenSamples + oo.Iterations*oo.IterBatch + 1
	if res.TotalRuns != wantRuns {
		t.Errorf("TotalRuns = %d, want %d", res.TotalRuns, wantRuns)
	}
	if rec.count() != wantRuns {
		t.Errorf("executor performed %d runs, want %d", rec.count(), wantRuns)
	}
	if res.Set.Len() != wantRuns {
		t.Errorf("observation set has %d rows, want %d", res.Set.Len(), wantRuns)
	}
	if len(res.Screened) != oo.TopK || len(res.Importance) != oo.TopK {
		t.Errorf("screened %d params with %d shares, want %d", len(res.Screened), len(res.Importance), oo.TopK)
	}
	for i := 1; i < len(res.Importance); i++ {
		if res.Importance[i] > res.Importance[i-1] {
			t.Errorf("importance not sorted: %v", res.Importance)
		}
	}
	if len(res.Iterations) != oo.Iterations {
		t.Fatalf("recorded %d iterations, want %d", len(res.Iterations), oo.Iterations)
	}
	for i, it := range res.Iterations {
		if it.Runs != oo.ScreenSamples+(i+1)*oo.IterBatch {
			t.Errorf("iteration %d cumulative runs = %d", i, it.Runs)
		}
		if it.BestMeasuredSec <= 0 || it.PredictedSec <= 0 {
			t.Errorf("iteration %d has non-positive times: %+v", i, it)
		}
		if i > 0 && !it.WarmStarted {
			t.Errorf("iteration %d refit was not warm-started despite hm.Resume support", i)
		}
	}
	if res.MeasuredSec <= 0 || res.PredictedSec <= 0 {
		t.Error("non-positive result times")
	}
	if res.Overhead.CollectClusterHours <= 0 || res.Overhead.ModelTrainSec <= 0 || res.Overhead.SearchSec <= 0 {
		t.Errorf("overhead accounting missing: %+v", res.Overhead)
	}
	// The tuned configuration must beat the default on a fresh simulator.
	evalSim := sparksim.New(cluster.Standard(), 101)
	tuned := evalSim.Run(&w.Program, target, res.Best).TotalSec
	def := evalSim.Run(&w.Program, target, tuner.Space.Default()).TotalSec
	if tuned >= def {
		t.Errorf("online tuning (%.1fs) did not beat the default (%.1fs)", tuned, def)
	}
}

func TestTuneOnlineDeterministic(t *testing.T) {
	run := func() (*OnlineResult, []byte) {
		tuner, w, _ := onlineTuner(t, "WC")
		res, err := tuner.TuneOnline(context.Background(), w.InputMB(10), w.InputMB(50), w.InputMB(30), quickOnline(), OnlineHooks{})
		if err != nil {
			t.Fatal(err)
		}
		var csv bytes.Buffer
		if err := res.Set.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		return res, csv.Bytes()
	}
	a, csvA := run()
	b, csvB := run()
	if !reflect.DeepEqual(a.Best.Vector(), b.Best.Vector()) {
		t.Errorf("best configurations differ across identical runs:\n%v\n%v", a.Best.Vector(), b.Best.Vector())
	}
	if a.MeasuredSec != b.MeasuredSec || a.PredictedSec != b.PredictedSec {
		t.Errorf("result times differ: (%v,%v) vs (%v,%v)", a.MeasuredSec, a.PredictedSec, b.MeasuredSec, b.PredictedSec)
	}
	if !reflect.DeepEqual(a.Screened, b.Screened) {
		t.Errorf("screened parameters differ: %v vs %v", a.Screened, b.Screened)
	}
	if !reflect.DeepEqual(a.Iterations, b.Iterations) {
		t.Errorf("iteration records differ:\n%+v\n%+v", a.Iterations, b.Iterations)
	}
	if !bytes.Equal(csvA, csvB) {
		t.Error("observation sets differ across identical runs")
	}
}

// TestTuneOnlineResume is the journal contract: re-running with every
// observed (index, time) pair replayed through Known must perform zero
// fresh executions and reproduce the observation set and final
// configuration byte-for-byte. A partial replay (a kill mid-run) must
// execute only the missing rows and converge to the same result.
func TestTuneOnlineResume(t *testing.T) {
	tuner, w, rec := onlineTuner(t, "TS")
	oo := quickOnline()
	target := w.InputMB(30)
	var mu sync.Mutex
	journal := make(map[int]float64)
	res, err := tuner.TuneOnline(context.Background(), w.InputMB(10), w.InputMB(50), target, oo, OnlineHooks{
		OnBatch: func(rows []RowTime) {
			mu.Lock()
			defer mu.Unlock()
			for _, r := range rows {
				if _, dup := journal[r.Index]; dup {
					t.Errorf("row %d delivered twice", r.Index)
				}
				journal[r.Index] = r.TimeSec
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(journal) != res.TotalRuns {
		t.Fatalf("journal saw %d rows, result says %d runs", len(journal), res.TotalRuns)
	}
	var refCSV bytes.Buffer
	if err := res.Set.WriteCSV(&refCSV); err != nil {
		t.Fatal(err)
	}

	for _, keep := range []func(int) bool{
		func(int) bool { return true },                  // full replay: nothing re-executes
		func(i int) bool { return i < 70 },              // killed during iteration 1
		func(i int) bool { return i%3 != 0 },            // arbitrary holes
		func(i int) bool { return i >= len(journal)-5 }, // only the tail survived (impossible in practice, still correct)
	} {
		tuner2, _, rec2 := onlineTuner(t, "TS")
		want := 0
		for i := 0; i < len(journal); i++ {
			if !keep(i) {
				want++
			}
		}
		res2, err := tuner2.TuneOnline(context.Background(), w.InputMB(10), w.InputMB(50), target, oo, OnlineHooks{
			Known: func(i int) (float64, bool) {
				if !keep(i) {
					return 0, false
				}
				sec, ok := journal[i]
				return sec, ok
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if rec2.count() != want {
			t.Errorf("resume re-executed %d rows, want %d", rec2.count(), want)
		}
		var csv bytes.Buffer
		if err := res2.Set.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(csv.Bytes(), refCSV.Bytes()) {
			t.Error("resumed observation set is not byte-identical")
		}
		if !reflect.DeepEqual(res2.Best.Vector(), res.Best.Vector()) {
			t.Error("resumed run chose a different final configuration")
		}
	}
	_ = rec
}

// TestTuneOnlineGuard pins the safety contract: no configuration the
// guard rejects is ever executed after screening, and rejections are
// counted.
func TestTuneOnlineGuard(t *testing.T) {
	tuner, w, rec := onlineTuner(t, "TS")
	oo := quickOnline()
	// A deliberately broad guard so rejections actually happen at this
	// small budget: veto any executor heap under 4 GiB.
	memIdx, ok := tuner.Space.Index(conf.ExecutorMemory)
	if !ok {
		t.Fatal("no ExecutorMemory parameter")
	}
	guard := func(cfg conf.Config, dsizeMB float64) bool {
		return cfg.At(memIdx) < 4096
	}
	oo.Guard = guard
	target := w.InputMB(30)
	res, err := tuner.TuneOnline(context.Background(), w.InputMB(10), w.InputMB(50), target, oo, OnlineHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if res.GuardRejections == 0 {
		t.Error("guard never fired; test is vacuous")
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for i, cfg := range rec.cfgs {
		if i < oo.ScreenSamples {
			continue // screening samples the full space by design
		}
		if guard(cfg, rec.mbs[i]) {
			t.Errorf("run %d executed a guard-rejected configuration", i)
		}
	}
	if guard(res.Best, target) {
		t.Error("final configuration violates the guard")
	}
}

// TestSimOOMGuard smoke-checks the sparksim-backed guard against a
// configuration the memory accounting provably rejects.
func TestSimOOMGuard(t *testing.T) {
	w, err := workloads.ByAbbr("TS")
	if err != nil {
		t.Fatal(err)
	}
	space := conf.StandardSpace()
	guard := SimOOMGuard(cluster.Standard(), &w.Program, 0)
	mb := w.InputMB(w.Sizes[len(w.Sizes)-1])
	if guard(space.Default(), mb) {
		t.Error("guard rejects the default configuration")
	}
	starved := space.Default().
		Set(conf.ExecutorMemory, 1024).
		Set(conf.ExecutorCores, 12).
		Set(conf.MemoryFraction, 0.5).
		Set(conf.DefaultParallelism, 8).
		Set(conf.ReducerMaxSizeInFlight, 128).
		Set(conf.TaskMaxFailures, 1)
	if !guard(starved, mb) {
		t.Error("guard accepts a configuration the simulator aborts")
	}
	strict := SimOOMGuard(cluster.Standard(), &w.Program, 0.01)
	if !strict(space.Default(), mb) {
		t.Error("max-pressure threshold not applied")
	}
}

func TestTuneOnlineValidation(t *testing.T) {
	tuner, w, _ := onlineTuner(t, "TS")
	if _, err := tuner.TuneOnline(context.Background(), w.InputMB(10), w.InputMB(50), 0, quickOnline(), OnlineHooks{}); err == nil {
		t.Error("zero target size accepted")
	}
	bad := quickOnline()
	bad.ScreenSamples = 5
	if _, err := tuner.TuneOnline(context.Background(), w.InputMB(10), w.InputMB(50), w.InputMB(30), bad, OnlineHooks{}); err == nil {
		t.Error("tiny screening sample accepted")
	}
}
