// Package stats provides the small set of statistics helpers shared by the
// simulator, the learners, and the experiment harness: means, variances,
// geometric means, and percentiles over float64 samples.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// non-positive values are skipped. Returns 0 for an empty (or all skipped)
// input.
func GeoMean(xs []float64) float64 {
	sum := 0.0
	n := 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		sum += math.Log(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Min returns the smallest element of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It copies xs and does not modify the
// input. Returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// Clamp bounds x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
