package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{4}, 4},
		{"mixed", []float64{1, 2, 3, 4}, 2.5},
		{"negative", []float64{-2, 2}, 0},
	}
	for _, tc := range tests {
		if got := Mean(tc.in); !almost(got, tc.want) {
			t.Errorf("%s: Mean=%v want %v", tc.name, got, tc.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	if got := Variance([]float64{5}); got != 0 {
		t.Errorf("Variance of singleton = %v, want 0", got)
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almost(got, 4) {
		t.Errorf("Variance=%v want 4", got)
	}
	if got := StdDev(xs); !almost(got, 2) {
		t.Errorf("StdDev=%v want 2", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); !almost(got, 4) {
		t.Errorf("GeoMean=%v want 4", got)
	}
	if got := GeoMean([]float64{-1, 0}); got != 0 {
		t.Errorf("GeoMean of non-positives = %v, want 0", got)
	}
	// Non-positive entries are skipped, not zeroing the result.
	if got := GeoMean([]float64{0, 9}); !almost(got, 9) {
		t.Errorf("GeoMean with skip = %v, want 9", got)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Min(xs); got != -1 {
		t.Errorf("Min=%v", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max=%v", got)
	}
	if got := Sum(xs); got != 11 {
		t.Errorf("Sum=%v", got)
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be ±Inf")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0=%v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("p100=%v", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("p50=%v", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Errorf("p25=%v", got)
	}
	if got := Percentile([]float64{7, 1}, 50); !almost(got, 4) {
		t.Errorf("interpolated median=%v want 4", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile=%v", got)
	}
	// Percentile must not reorder its input.
	orig := []float64{9, 1, 5}
	Percentile(orig, 50)
	if orig[0] != 9 || orig[1] != 1 || orig[2] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{9, 1, 5}); got != 5 {
		t.Errorf("Median=%v", got)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 3); got != 3 {
		t.Errorf("Clamp high=%v", got)
	}
	if got := Clamp(-5, 0, 3); got != 0 {
		t.Errorf("Clamp low=%v", got)
	}
	if got := Clamp(2, 0, 3); got != 2 {
		t.Errorf("Clamp mid=%v", got)
	}
}

// Property: mean lies within [min, max] and variance is non-negative.
func TestMeanBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Mean(clean)
		return m >= Min(clean)-1e-6 && m <= Max(clean)+1e-6 && Variance(clean) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: percentiles are monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		n := 1 + int(seed%50+50)%50
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(xs, p)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: GeoMean(xs) <= Mean(xs) for positive inputs (AM-GM).
func TestAMGMProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(int64) bool {
		n := 1 + rng.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()*1000 + 0.001
		}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
