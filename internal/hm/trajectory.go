package hm

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/model"
	"repro/internal/tree"
)

// Trajectory trains a single first-order model with up to
// max(checkpoints) trees — no early stopping — and returns the mean Eq. 2
// validation error at each checkpoint. It regenerates Fig. 8's
// error-versus-nt curves for a given learning rate and tree complexity
// without retraining a model per point.
func Trajectory(ds *model.Dataset, opt Options, checkpoints []int) ([]float64, error) {
	if len(checkpoints) == 0 {
		return nil, fmt.Errorf("hm: no checkpoints")
	}
	opt = opt.withDefaults()
	sorted := append([]int(nil), checkpoints...)
	sort.Ints(sorted)
	if sorted[0] < 1 {
		return nil, fmt.Errorf("hm: checkpoint %d < 1", sorted[0])
	}
	opt.Trees = sorted[len(sorted)-1]

	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("hm: %w", err)
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	trainDS, valDS := ds.Split(1-opt.ValFrac, rng)
	t := newTrainer(trainDS, valDS, opt)

	n := trainDS.Len()
	sum := 0.0
	for _, v := range t.yFit {
		sum += v
	}
	base := sum / float64(n)
	pred := make([]float64, n)
	for i := range pred {
		pred[i] = base
	}
	valPred := make([]float64, valDS.Len())
	for i := range valPred {
		valPred[i] = base
	}
	resid := make([]float64, n)
	gOpt := tree.Options{MaxSplits: opt.TreeComplexity, MinLeaf: opt.MinLeaf, Workers: opt.workers(), NoBatch: opt.NoBatch, ExactHistograms: opt.ExactHistograms}

	errAt := make(map[int]float64, len(sorted))
	next := 0
	for k := 1; k <= opt.Trees && next < len(sorted); k++ {
		for i := range resid {
			resid[i] = t.yFit[i] - pred[i]
		}
		idx := model.Bootstrap(n, rng)
		tr := t.builder.Grow(resid, idx, gOpt, rng)
		if opt.NoBatch {
			for i, x := range trainDS.Features {
				pred[i] += opt.LearningRate * tr.Predict(x)
			}
			for i, x := range valDS.Features {
				valPred[i] += opt.LearningRate * tr.Predict(x)
			}
		} else {
			tr.AccumulateBinned(t.trainBM, opt.LearningRate, pred)
			tr.AccumulateBinned(t.valBM, opt.LearningRate, valPred)
		}
		for next < len(sorted) && sorted[next] == k {
			errAt[k] = t.relErr(valPred)
			next++
		}
	}
	out := make([]float64, len(checkpoints))
	for i, c := range checkpoints {
		e, ok := errAt[c]
		if !ok {
			return nil, fmt.Errorf("hm: internal: checkpoint %d not recorded", c)
		}
		out[i] = e
	}
	return out, nil
}
