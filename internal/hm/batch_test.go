package hm

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// TestPredictBatchMatchesPredict pins the batch contract: for single- and
// multi-order models, log and raw targets, PredictBatch must agree
// bit-for-bit with per-row Predict.
func TestPredictBatchMatchesPredict(t *testing.T) {
	ds := synthDS(500, 51)
	probe := synthDS(200, 52)
	opts := []Options{
		quickOpt(),
		{Trees: 30, LearningRate: 0.02, TreeComplexity: 1, TargetAccuracy: 0.999,
			MaxOrder: 3, Seed: 1, ConvergeWindow: 10}, // forces order >= 2
	}
	noLog := quickOpt()
	noLog.NoLogTarget = true
	opts = append(opts, noLog)
	for _, opt := range opts {
		m, err := Train(ds, opt)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, probe.Len())
		m.PredictBatch(probe.Features, out)
		for i, row := range probe.Features {
			if got := m.Predict(row); got != out[i] {
				t.Fatalf("opt %+v row %d: Predict=%v PredictBatch=%v (order %d)",
					opt, i, got, out[i], m.Order)
			}
		}
	}
}

// relDiff is |a-b| / max(1, |a|, |b|) — the tolerance metric DESIGN.md
// §13 uses for fast-vs-exact tree comparisons.
func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	den := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return d / den
}

// TestTrainWorkersEquivalence pins the parallel-training determinism
// contract: serial (Workers=1) and parallel training must produce models
// with bit-identical predictions, orders, and validation errors — the
// tuner's output cannot depend on the trainer's core count.
func TestTrainWorkersEquivalence(t *testing.T) {
	ds := synthDS(600, 53)
	probes := synthDS(100, 54).Features
	for _, baseOpt := range []Options{
		{Trees: 120, LearningRate: 0.1, TreeComplexity: 5, Seed: 3},
		{Trees: 30, LearningRate: 0.02, TreeComplexity: 1, TargetAccuracy: 0.999,
			MaxOrder: 3, Seed: 3, ConvergeWindow: 10},
	} {
		serialOpt := baseOpt
		serialOpt.Workers = 1
		serial, err := Train(ds, serialOpt)
		if err != nil {
			t.Fatal(err)
		}
		refOpt := baseOpt
		refOpt.Workers = 1
		refOpt.NoBatch = true
		ref, err := Train(ds, refOpt)
		if err != nil {
			t.Fatal(err)
		}
		// The NoBatch reference grows trees with the exact histogram scan;
		// the default fast path is only tolerance-equivalent to it
		// (DESIGN.md §13), so the comparison here is relative, not ==.
		// The serial-vs-parallel comparisons below stay bit-exact: both
		// sides use the same scan.
		if serial.Order != ref.Order {
			t.Fatalf("NoBatch reference order diverged: %d vs %d", serial.Order, ref.Order)
		}
		if relDiff(serial.ValErr, ref.ValErr) > 1e-6 {
			t.Fatalf("NoBatch reference valerr diverged: %v vs %v", serial.ValErr, ref.ValErr)
		}
		for i, x := range probes {
			if a, b := serial.Predict(x), ref.Predict(x); relDiff(a, b) > 1e-6 {
				t.Fatalf("NoBatch probe %d: %v vs %v", i, a, b)
			}
		}
		for _, workers := range []int{2, runtime.GOMAXPROCS(0), 9} {
			parOpt := baseOpt
			parOpt.Workers = workers
			par, err := Train(ds, parOpt)
			if err != nil {
				t.Fatal(err)
			}
			if serial.Order != par.Order || serial.ValErr != par.ValErr {
				t.Fatalf("workers=%d: order/valerr differ: (%d, %v) vs (%d, %v)",
					workers, serial.Order, serial.ValErr, par.Order, par.ValErr)
			}
			if serial.NumTrees() != par.NumTrees() {
				t.Fatalf("workers=%d: tree counts differ: %d vs %d",
					workers, serial.NumTrees(), par.NumTrees())
			}
			for i, x := range probes {
				if a, b := serial.Predict(x), par.Predict(x); a != b {
					t.Fatalf("workers=%d probe %d: %v vs %v", workers, i, a, b)
				}
			}
		}
	}
}

// TestTrainDeterministicAcrossGOMAXPROCS checks that the default
// (parallel) training path is scheduling-independent, not just
// worker-count independent.
func TestTrainDeterministicAcrossGOMAXPROCS(t *testing.T) {
	ds := synthDS(400, 55)
	opt := Options{Trees: 80, LearningRate: 0.1, TreeComplexity: 5, Seed: 5}

	prev := runtime.GOMAXPROCS(1)
	one, err := Train(ds, opt)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	many, err := Train(ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(56))
	for k := 0; k < 50; k++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
		if a, b := one.Predict(x), many.Predict(x); a != b {
			t.Fatalf("GOMAXPROCS=1 vs default differ at %v: %v vs %v", x, a, b)
		}
	}
}
