package hm

import (
	"math/rand"
	"testing"

	"repro/internal/model"
)

// benchDS builds a paper-scale synthetic dataset: d features (the paper
// tunes 41 configuration parameters + data size) with a nonlinear target
// over a handful of them.
func benchDS(n, d int, seed int64) *model.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := model.NewDataset(nil)
	for i := 0; i < n; i++ {
		x := make([]float64, d)
		for j := range x {
			x[j] = rng.Float64() * 10
		}
		t := 10 + 5*x[0] + x[1]*x[2] + 2*x[d/2]
		if x[0] > 7 {
			t *= 3
		}
		ds.Add(x, t*(1+0.02*rng.NormFloat64()))
	}
	return ds
}

// BenchmarkHMFit compares one paper-scale HM fit (2000 samples × 42
// features) on the pre-optimization reference path (serial: row-at-a-time
// float updates, Workers=1) against the batched/parallel pipeline
// (parallel: binned tree-at-a-time updates, concurrent first-order fits,
// parallel split scans). Both produce bit-identical models (see
// batch_test.go), so the early-stopping round is the same and the ratio
// is a pure throughput comparison.
func BenchmarkHMFit(b *testing.B) {
	ds := benchDS(2000, 42, 1)
	for _, bc := range []struct {
		name    string
		workers int
		noBatch bool
	}{{"serial", 1, true}, {"parallel", 0, false}} {
		opt := Options{Trees: 600, LearningRate: 0.05, TreeComplexity: 5, Seed: 1,
			TargetAccuracy: 0.999, Workers: bc.workers, NoBatch: bc.noBatch}
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Train(ds, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPredictBatch compares per-row model queries against the
// tree-at-a-time batch path over one GA population (100 individuals) —
// the searching component's unit of work.
func BenchmarkPredictBatch(b *testing.B) {
	ds := synthDS(1000, 2)
	m, err := Train(ds, Options{Trees: 600, LearningRate: 0.05, TreeComplexity: 5, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rows := ds.Features[:100]
	out := make([]float64, len(rows))
	b.Run("perrow", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for r, x := range rows {
				out[r] = m.Predict(x)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.PredictBatch(rows, out)
		}
	})
}

// BenchmarkTrainPaperScale measures fitting one HM model with the paper's
// tuned hyperparameters (tc=5, lr=0.05, nt up to 3600, early-stopped) on a
// 2000-sample set — Table 3's "modeling" column.
func BenchmarkTrainPaperScale(b *testing.B) {
	ds := synthDS(2000, 1)
	opt := Options{Trees: 3600, LearningRate: 0.05, TreeComplexity: 5, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	var m *Model
	for i := 0; i < b.N; i++ {
		var err error
		m, err = Train(ds, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.NumTrees()), "trees")
}

// BenchmarkPredict measures one model query — the GA performs ~10,000 of
// these per search.
func BenchmarkPredict(b *testing.B) {
	ds := synthDS(1000, 2)
	m, err := Train(ds, Options{Trees: 600, LearningRate: 0.05, TreeComplexity: 5, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	x := ds.Features[3]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(x)
	}
}

// BenchmarkTrajectory measures the Fig. 8 curve generation.
func BenchmarkTrajectory(b *testing.B) {
	ds := synthDS(1000, 3)
	opt := Options{LearningRate: 0.05, TreeComplexity: 5, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := Trajectory(ds, opt, []int{100, 400, 800}); err != nil {
			b.Fatal(err)
		}
	}
}
