package hm

import "testing"

// BenchmarkTrainPaperScale measures fitting one HM model with the paper's
// tuned hyperparameters (tc=5, lr=0.05, nt up to 3600, early-stopped) on a
// 2000-sample set — Table 3's "modeling" column.
func BenchmarkTrainPaperScale(b *testing.B) {
	ds := synthDS(2000, 1)
	opt := Options{Trees: 3600, LearningRate: 0.05, TreeComplexity: 5, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	var m *Model
	for i := 0; i < b.N; i++ {
		var err error
		m, err = Train(ds, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.NumTrees()), "trees")
}

// BenchmarkPredict measures one model query — the GA performs ~10,000 of
// these per search.
func BenchmarkPredict(b *testing.B) {
	ds := synthDS(1000, 2)
	m, err := Train(ds, Options{Trees: 600, LearningRate: 0.05, TreeComplexity: 5, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	x := ds.Features[3]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(x)
	}
}

// BenchmarkTrajectory measures the Fig. 8 curve generation.
func BenchmarkTrajectory(b *testing.B) {
	ds := synthDS(1000, 3)
	opt := Options{LearningRate: 0.05, TreeComplexity: 5, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := Trajectory(ds, opt, []int{100, 400, 800}); err != nil {
			b.Fatal(err)
		}
	}
}
