package hm

import (
	"math"
	"testing"
)

func TestPredictWithUncertaintyConsistent(t *testing.T) {
	ds := synthDS(600, 21)
	// Force a multi-sub-model blend.
	opt := Options{Trees: 150, LearningRate: 0.1, TreeComplexity: 5,
		MaxOrder: 3, TargetAccuracy: 0.999, Seed: 1}
	m, err := Train(ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSubModels() < 2 {
		t.Fatalf("expected >=2 sub-models, got %d", m.NumSubModels())
	}
	x := []float64{5, 5, 5}
	pred, std := m.PredictWithUncertainty(x)
	if pred <= 0 || math.IsNaN(pred) {
		t.Fatalf("pred=%v", pred)
	}
	if std < 0 || math.IsNaN(std) {
		t.Fatalf("std=%v", std)
	}
	// The uncertainty-aware mean must agree with Predict.
	if got := m.Predict(x); math.Abs(got-pred) > 1e-9*math.Max(1, got) {
		t.Fatalf("Predict=%v but PredictWithUncertainty mean=%v", got, pred)
	}
}

func TestSingleOrderReportsZeroStd(t *testing.T) {
	ds := synthDS(400, 22)
	m, err := Train(ds, Options{Trees: 100, LearningRate: 0.1, TreeComplexity: 5, MaxOrder: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSubModels() != 1 {
		t.Fatalf("expected 1 sub-model, got %d", m.NumSubModels())
	}
	if _, std := m.PredictWithUncertainty([]float64{1, 2, 3}); std != 0 {
		t.Fatalf("order-1 std = %v, want 0", std)
	}
}

func TestFeatureImportance(t *testing.T) {
	ds := synthDS(800, 30) // target depends on all three features + cliff on x0
	m, err := Train(ds, Options{Trees: 200, LearningRate: 0.1, TreeComplexity: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	imp := m.FeatureImportance()
	if len(imp) != 3 {
		t.Fatalf("importance length %d, want 3", len(imp))
	}
	sum := 0.0
	for i, v := range imp {
		if v < 0 {
			t.Errorf("importance[%d] = %v < 0", i, v)
		}
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("importance sums to %v, want 1", sum)
	}
	// x0 carries the 3x cliff plus a linear term: it must dominate.
	if imp[0] <= imp[1] || imp[0] <= imp[2] {
		t.Errorf("x0 should dominate importance: %v", imp)
	}
}

func TestUncertaintyGrowsOffDistribution(t *testing.T) {
	ds := synthDS(800, 23) // features live in [0,10]^3
	opt := Options{Trees: 150, LearningRate: 0.1, TreeComplexity: 5,
		MaxOrder: 3, TargetAccuracy: 0.999, Seed: 1}
	m, err := Train(ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Average dispersion at in-distribution vs far-out points.
	inStd, outStd := 0.0, 0.0
	n := 0
	for i := 0; i < 50; i++ {
		_, s := m.PredictWithUncertainty(ds.Features[i*7%ds.Len()])
		inStd += s
		n++
	}
	probes := [][]float64{{50, 50, 50}, {-40, 90, 0}, {100, -10, 55}}
	for _, p := range probes {
		_, s := m.PredictWithUncertainty(p)
		outStd += s
	}
	inStd /= float64(n)
	outStd /= float64(len(probes))
	// Trees clamp off-distribution inputs to edge leaves, so this is a
	// weak expectation: dispersion out there should at least not vanish.
	if outStd <= 0 {
		t.Fatalf("off-distribution dispersion = %v, want > 0", outStd)
	}
	t.Logf("in-dist std %.3f, out-dist std %.3f", inStd, outStd)
}
