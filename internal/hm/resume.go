package hm

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/model"
	"repro/internal/tree"
)

// Resume continues the boosting trajectory of m's last first-order
// sub-model: up to extra additional trees are grown over ds on the
// residuals the sub-model currently leaves, with the same bootstrap
// sampling and early stopping as Train, after which the blend
// coefficients and ValErr are refit on the fresh validation split. If the
// refit blend still misses opt.TargetAccuracy, Resume then continues
// Algorithm 1's hierarchical recursion where Train left off: additional
// converged first-order models are grown (full opt.Trees budget each,
// fresh randomness) and blended in until the target is met or the order
// reaches opt.MaxOrder, with m.Order tracking the result — so a registry
// warm-start keeps the hierarchy growing instead of only stretching the
// last sub-model. The train/validation split and all randomness derive
// from opt.Seed, so Resume is deterministic — and it is bit-identical
// whether m was just trained or went through Save/Load first. A model
// with its binned form
// intact (trained in-process, or reloaded from a version-2 snapshot that
// persisted the builder's bin edges and the trees' bin codes) replays its
// existing trees over freshly encoded rows with tree.AccumulateBinned;
// models from legacy (v1) snapshots, or whose edges no longer match the
// data, replay through the float walk — equivalent by AccumulateBinned's
// bit-identity contract, just slower.
//
// The fit space (log or raw target) is the model's own; opt.NoLogTarget
// is overridden to match so a resumed log-space model is never fed raw
// residuals.
func Resume(m *Model, ds *model.Dataset, opt Options, extra int) error {
	opt = opt.withDefaults()
	if len(m.subs) == 0 {
		return fmt.Errorf("hm: resume on a model with no sub-models")
	}
	if extra <= 0 {
		return fmt.Errorf("hm: resume budget %d trees", extra)
	}
	if err := ds.Validate(); err != nil {
		return fmt.Errorf("hm: %w", err)
	}
	if ds.Len() < 10 {
		return fmt.Errorf("hm: %d samples is too few", ds.Len())
	}
	opt.NoLogTarget = !m.log
	start := time.Now()
	rng := rand.New(rand.NewSource(opt.Seed))
	trainDS, valDS := ds.Split(1-opt.ValFrac, rng)
	tr := newTrainer(trainDS, valDS, opt)

	fo := m.subs[len(m.subs)-1]
	pred := make([]float64, trainDS.Len())
	for i := range pred {
		pred[i] = fo.base
	}
	valPred := make([]float64, valDS.Len())
	for i := range valPred {
		valPred[i] = fo.base
	}
	// Replay the sub-model's existing trees to recover the predictions
	// its last boosting round left off at, preferring the binned path
	// when the model still knows the edges its codes refer to.
	d := len(trainDS.Features[0])
	if !opt.NoBatch && len(m.edges) == d && m.hasBinCodes() {
		trainOld := tree.BinWithEdges(m.edges, trainDS.Features)
		valOld := tree.BinWithEdges(m.edges, valDS.Features)
		for _, t := range fo.trees {
			t.AccumulateBinned(trainOld, fo.lr, pred)
			t.AccumulateBinned(valOld, fo.lr, valPred)
		}
		opt.Obs.Counter("hm.resume.binned.trees").Add(int64(len(fo.trees)))
	} else {
		for _, t := range fo.trees {
			t.AccumulateBatch(trainDS.Features, fo.lr, pred)
			t.AccumulateBatch(valDS.Features, fo.lr, valPred)
		}
	}

	tr.boost(fo, pred, valPred, extra, rand.New(rand.NewSource(rng.Int63())), nil)
	m.coefs = tr.fitCoefs(m.subs)
	m.ValErr = tr.valError(m.subs, m.coefs)

	// Algorithm 1's outer loop, resumed: while the blend still misses the
	// target and the order budget allows, grow another converged
	// first-order model and refit the blend. Each appended sub-model draws
	// its randomness from the same rng stream, so the whole continuation
	// is a pure function of (m, ds, opt.Seed, extra).
	appended := 0
	for 1-m.ValErr < opt.TargetAccuracy && len(m.subs) < opt.MaxOrder {
		sub := tr.firstOrderProcedure(rand.New(rand.NewSource(rng.Int63())), nil)
		m.subs = append(m.subs, sub)
		m.coefs = tr.fitCoefs(m.subs)
		m.ValErr = tr.valError(m.subs, m.coefs)
		appended++
	}
	m.Order = len(m.subs)

	// The new trees' bin codes refer to the resume builder's edges. If
	// those differ from the edges the old trees were coded against, no
	// single edge set describes the whole model any more: drop the binned
	// form (a later Save then persists without codes, and a later Resume
	// replays through the float path). Resuming over the same dataset and
	// split — the common trajectory-continuation case — rebins
	// identically, so the binned form survives.
	if m.edges != nil {
		if newEdges := tr.builder.Edges(); edgesEqual(m.edges, newEdges) {
			m.edges = newEdges
		} else {
			m.edges = nil
		}
	}

	opt.Obs.Counter("hm.resumes").Inc()
	opt.Obs.Counter("hm.resume.appended").Add(int64(appended))
	opt.Obs.Counter("hm.trees").Add(int64(m.NumTrees()))
	opt.Obs.Histogram("hm.resume.sec", nil).Observe(time.Since(start).Seconds())
	return nil
}

// edgesEqual reports whether two per-feature edge sets are identical.
func edgesEqual(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for f := range a {
		if len(a[f]) != len(b[f]) {
			return false
		}
		for k, v := range a[f] {
			if b[f][k] != v {
				return false
			}
		}
	}
	return true
}
