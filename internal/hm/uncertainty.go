package hm

import "math"

// PredictWithUncertainty returns the model's prediction in seconds plus a
// dispersion estimate: the spread of the independently-trained first-order
// sub-models' predictions (in fit space, mapped back to seconds). A model
// of order 1 has a single sub-model and reports zero dispersion.
//
// The dispersion powers robust searching (core.Options.RobustSearch): a
// genetic algorithm minimizing a point prediction gravitates to regions
// where the model is optimistically wrong; penalizing disagreement between
// sub-models counters that exploitation. This is an extension beyond the
// paper, motivated by the reproduction's own Fig. 12b analysis.
func (m *Model) PredictWithUncertainty(x []float64) (pred, std float64) {
	if len(m.subs) == 0 {
		return 0, 0
	}
	// Mean in fit space, matching Predict.
	mean := 0.0
	for i, s := range m.subs {
		mean += m.coefs[i] * s.predict(x)
	}
	if len(m.subs) == 1 {
		if m.log {
			return math.Exp(mean), 0
		}
		return mean, 0
	}
	// Dispersion of the (unweighted) sub-model predictions around their
	// own mean: the coefficients absorb scale, so raw predictions are
	// compared directly.
	sum, sumSq := 0.0, 0.0
	for _, s := range m.subs {
		v := s.predict(x)
		sum += v
		sumSq += v * v
	}
	n := float64(len(m.subs))
	varr := sumSq/n - (sum/n)*(sum/n)
	if varr < 0 {
		varr = 0
	}
	sd := math.Sqrt(varr)
	if m.log {
		p := math.Exp(mean)
		// Delta method: std in seconds ≈ exp(mean)·std(log).
		return p, p * sd
	}
	return mean, sd
}

// NumSubModels returns how many first-order models the hierarchical blend
// holds (its order).
func (m *Model) NumSubModels() int { return len(m.subs) }
