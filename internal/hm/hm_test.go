package hm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

// synthDS builds a nonlinear regression problem with positive targets.
func synthDS(n int, seed int64) *model.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := model.NewDataset(nil)
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
		t := 10 + 5*x[0] + x[1]*x[2]
		if x[0] > 7 {
			t *= 3 // a cliff, like an OOM boundary
		}
		ds.Add(x, t*(1+0.02*rng.NormFloat64()))
	}
	return ds
}

func quickOpt() Options {
	return Options{Trees: 300, LearningRate: 0.1, TreeComplexity: 5, Seed: 1}
}

func TestTrainLearnsNonlinearSurface(t *testing.T) {
	train := synthDS(1500, 1)
	test := synthDS(400, 2)
	m, err := Train(train, quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	e := model.Evaluate(m, test)
	if e.Mean > 0.12 {
		t.Fatalf("HM mean error %.1f%% too high on synthetic surface", e.Mean*100)
	}
}

func TestHMBeatsSingleStump(t *testing.T) {
	train := synthDS(1000, 3)
	test := synthDS(300, 4)
	big, err := Train(train, quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := Train(train, Options{Trees: 1, LearningRate: 1, TreeComplexity: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if model.Evaluate(big, test).Mean >= model.Evaluate(tiny, test).Mean {
		t.Fatal("boosted model no better than a single stump")
	}
}

func TestTrainRejectsBadInput(t *testing.T) {
	if _, err := Train(model.NewDataset(nil), quickOpt()); err == nil {
		t.Error("empty dataset should fail")
	}
	ds := synthDS(20, 5)
	ds.Targets[3] = -1
	if _, err := Train(ds, quickOpt()); err == nil {
		t.Error("negative target should fail")
	}
}

func TestTrainDeterministicPerSeed(t *testing.T) {
	ds := synthDS(400, 6)
	m1, _ := Train(ds, quickOpt())
	m2, _ := Train(ds, quickOpt())
	x := []float64{5, 5, 5}
	if m1.Predict(x) != m2.Predict(x) {
		t.Fatal("same seed produced different models")
	}
	opt := quickOpt()
	opt.Seed = 99
	m3, _ := Train(ds, opt)
	if m1.Predict(x) == m3.Predict(x) {
		t.Error("different seeds produced identical models (suspicious)")
	}
}

func TestTargetAccuracyStopsEarly(t *testing.T) {
	ds := synthDS(800, 7)
	// A loose target should stop with far fewer trees than the budget.
	opt := quickOpt()
	opt.Trees = 5000
	opt.TargetAccuracy = 0.70
	m, err := Train(ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTrees() >= 5000 {
		t.Fatalf("loose accuracy target still used all %d trees", m.NumTrees())
	}
}

func TestHigherOrderTriggersOnHardTarget(t *testing.T) {
	ds := synthDS(300, 8)
	opt := Options{Trees: 30, LearningRate: 0.02, TreeComplexity: 1,
		TargetAccuracy: 0.999, MaxOrder: 3, Seed: 1, ConvergeWindow: 10}
	m, err := Train(ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	// 30 weak stumps cannot reach 99.9% accuracy, so the hierarchical
	// recursion must have gone past order 1.
	if m.Order < 2 {
		t.Fatalf("order = %d, expected >= 2 under an unreachable target", m.Order)
	}
}

func TestPredictionsPositive(t *testing.T) {
	ds := synthDS(500, 9)
	m, err := Train(ds, quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	f := func(int64) bool {
		x := []float64{rng.Float64() * 12, rng.Float64() * 12, rng.Float64() * 12}
		p := m.Predict(x)
		return p > 0 && !math.IsNaN(p) && !math.IsInf(p, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNoLogTargetMode(t *testing.T) {
	ds := synthDS(600, 11)
	opt := quickOpt()
	opt.NoLogTarget = true
	m, err := Train(ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	e := model.Evaluate(m, synthDS(200, 12))
	if e.Mean > 0.2 {
		t.Fatalf("raw-target HM error %.1f%% too high", e.Mean*100)
	}
}

func TestTrajectoryMonotoneCheckpoints(t *testing.T) {
	ds := synthDS(800, 13)
	opt := Options{LearningRate: 0.1, TreeComplexity: 5, Seed: 1}
	errs, err := Trajectory(ds, opt, []int{10, 50, 200, 600})
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 4 {
		t.Fatalf("got %d errors", len(errs))
	}
	// Errors should improve substantially from 10 to 600 trees.
	if errs[3] >= errs[0] {
		t.Fatalf("no improvement along trajectory: %v", errs)
	}
	// Checkpoints are returned in the caller's order.
	rev, err := Trajectory(ds, opt, []int{600, 10})
	if err != nil {
		t.Fatal(err)
	}
	if rev[0] != errs[3] || rev[1] != errs[0] {
		t.Error("trajectory did not preserve caller checkpoint order")
	}
}

func TestTrajectoryRejectsBadCheckpoints(t *testing.T) {
	ds := synthDS(100, 14)
	if _, err := Trajectory(ds, Options{}, nil); err == nil {
		t.Error("empty checkpoints should fail")
	}
	if _, err := Trajectory(ds, Options{}, []int{0}); err == nil {
		t.Error("checkpoint 0 should fail")
	}
}

func TestSolve(t *testing.T) {
	A := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, ok := solve(A, b)
	if !ok {
		t.Fatal("solve failed")
	}
	if math.Abs(2*x[0]+x[1]-5) > 1e-9 || math.Abs(x[0]+3*x[1]-10) > 1e-9 {
		t.Fatalf("solution wrong: %v", x)
	}
	if _, ok := solve([][]float64{{1, 1}, {1, 1}}, []float64{1, 2}); ok {
		t.Error("singular system should report !ok")
	}
}

func TestTrainerInterface(t *testing.T) {
	var tr model.Trainer = Trainer{Opt: quickOpt()}
	if tr.Name() != "HM" {
		t.Errorf("Name = %q", tr.Name())
	}
	m, err := tr.Train(synthDS(200, 15))
	if err != nil {
		t.Fatal(err)
	}
	if m.Predict([]float64{1, 2, 3}) <= 0 {
		t.Error("trainer-built model predicts non-positive time")
	}
}
