package hm

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repro/internal/obs"
	"repro/internal/tree"
)

// TestResumeAfterSaveLoadBitIdentical pins the persistence side of binned
// training continuation: Train → Save → Load → Resume must leave the exact
// model that Train → Resume leaves, with the reloaded model replaying its
// trees through the binned fast path (version-2 snapshots carry the edges
// and codes).
func TestResumeAfterSaveLoadBitIdentical(t *testing.T) {
	ds := synthDS(600, 91)
	opt := Options{Trees: 120, LearningRate: 0.1, TreeComplexity: 5, Seed: 7}
	fresh, err := Train(ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fresh.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	optR := opt
	optR.Obs = reg
	if err := Resume(fresh, ds, opt, 40); err != nil {
		t.Fatal(err)
	}
	if err := Resume(loaded, ds, optR, 40); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("hm.resume.binned.trees").Value() == 0 {
		t.Error("reloaded v2 model did not replay through the binned path")
	}
	if fresh.NumTrees() != loaded.NumTrees() {
		t.Fatalf("tree counts diverged: %d vs %d", fresh.NumTrees(), loaded.NumTrees())
	}
	if fresh.ValErr != loaded.ValErr {
		t.Fatalf("ValErr diverged: %v vs %v", fresh.ValErr, loaded.ValErr)
	}
	probe := synthDS(150, 92)
	for i, x := range probe.Features {
		if a, b := fresh.Predict(x), loaded.Predict(x); a != b {
			t.Fatalf("probe %d: never-persisted resume %v != save/load resume %v", i, a, b)
		}
	}
}

// TestResumeLegacyV1Snapshot pins backward compatibility: a version-1
// stream (no bin edges, no codes — gob omits the zero-valued new fields,
// so this encodes exactly what the old schema wrote) must load, and
// Resume must continue it through the float replay path to the same model
// the binned path produces.
func TestResumeLegacyV1Snapshot(t *testing.T) {
	ds := synthDS(600, 93)
	opt := Options{Trees: 100, LearningRate: 0.1, TreeComplexity: 5, Seed: 11}
	m, err := Train(ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	s := snapshot{Version: 1, Log: m.log, Order: m.Order, ValErr: m.ValErr, Coefs: m.coefs}
	for _, fo := range m.subs {
		sf := snapshotFO{Base: fo.base, LR: fo.lr, Trees: make([][]tree.FlatNode, len(fo.trees))}
		for i, tr := range fo.trees {
			sf.Trees[i] = tr.Flatten()
		}
		s.Subs = append(s.Subs, sf)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		t.Fatal(err)
	}
	legacy, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.edges != nil {
		t.Fatal("legacy snapshot should reload without edges")
	}
	if err := Resume(m, ds, opt, 30); err != nil {
		t.Fatal(err)
	}
	if err := Resume(legacy, ds, opt, 30); err != nil {
		t.Fatal(err)
	}
	probe := synthDS(120, 94)
	for i, x := range probe.Features {
		if a, b := m.Predict(x), legacy.Predict(x); a != b {
			t.Fatalf("probe %d: binned resume %v != legacy float resume %v", i, a, b)
		}
	}
}

// TestResumeBinnedMatchesFloatReplay pins the replay paths against each
// other on one model: NoBatch forces the float walk, which must leave a
// model bit-identical to the binned replay.
func TestResumeBinnedMatchesFloatReplay(t *testing.T) {
	ds := synthDS(500, 95)
	// ExactHistograms on both sides keeps tree growth identical (NoBatch
	// implies it), so the comparison isolates the replay paths alone.
	opt := Options{Trees: 80, LearningRate: 0.1, TreeComplexity: 5, Seed: 13, ExactHistograms: true}
	a, err := Train(ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	optF := opt
	optF.NoBatch = true
	if err := Resume(a, ds, opt, 25); err != nil {
		t.Fatal(err)
	}
	if err := Resume(b, ds, optF, 25); err != nil {
		t.Fatal(err)
	}
	probe := synthDS(100, 96)
	for i, x := range probe.Features {
		if pa, pb := a.Predict(x), b.Predict(x); pa != pb {
			t.Fatalf("probe %d: binned %v != float %v", i, pa, pb)
		}
	}
}

// TestResumeAppendsSubModels pins the hierarchical continuation: when the
// refit blend still misses the target accuracy, Resume must grow
// additional first-order sub-models — continuing Algorithm 1's recursion
// — up to MaxOrder, not merely stretch the last sub-model.
func TestResumeAppendsSubModels(t *testing.T) {
	ds := synthDS(500, 99)
	// Train a deliberately under-fit order-1 model (tiny tree budget, no
	// second order allowed).
	opt := Options{Trees: 20, LearningRate: 0.1, TreeComplexity: 5, Seed: 17, MaxOrder: 1}
	m, err := Train(ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	if m.Order != 1 {
		t.Fatalf("setup: order %d, want 1", m.Order)
	}

	// Resume with an unreachable target and room for two more orders: the
	// recursion must fill the order budget.
	reg := obs.NewRegistry()
	ropt := Options{Trees: 20, LearningRate: 0.1, TreeComplexity: 5, Seed: 17,
		MaxOrder: 3, TargetAccuracy: 0.9999, ConvergeWindow: 10, Obs: reg}
	if err := Resume(m, ds, ropt, 10); err != nil {
		t.Fatal(err)
	}
	if m.Order != 3 || len(m.subs) != 3 {
		t.Fatalf("resume reached order %d with %d sub-models, want 3/3", m.Order, len(m.subs))
	}
	if len(m.coefs) != 3 {
		t.Fatalf("blend has %d coefficients, want 3", len(m.coefs))
	}
	if got := reg.Counter("hm.resume.appended").Value(); got != 2 {
		t.Fatalf("hm.resume.appended = %d, want 2", got)
	}

	// Determinism: the same continuation from an identical starting model
	// must be bit-identical.
	m2, err := Train(ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := Resume(m2, ds, ropt, 10); err != nil {
		t.Fatal(err)
	}
	probe := synthDS(120, 100)
	for i, x := range probe.Features {
		if a, b := m.Predict(x), m2.Predict(x); a != b {
			t.Fatalf("probe %d: appended continuation not deterministic: %v != %v", i, a, b)
		}
	}

	// A model that already meets the target must not grow extra orders.
	sat, err := Train(ds, Options{Trees: 300, LearningRate: 0.1, TreeComplexity: 5, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if 1-sat.ValErr < 0.90 {
		t.Skipf("setup: saturated model only reached %.3f accuracy", 1-sat.ValErr)
	}
	before := len(sat.subs)
	if err := Resume(sat, ds, Options{Trees: 300, LearningRate: 0.1, TreeComplexity: 5, Seed: 17, MaxOrder: 4}, 10); err != nil {
		t.Fatal(err)
	}
	if len(sat.subs) != before {
		t.Fatalf("resume appended %d sub-models to a model already at target", len(sat.subs)-before)
	}
}

// TestResumeAppendAfterSaveLoad pins that the appended-sub-model path is
// bit-identical across persistence, like the plain extension path.
func TestResumeAppendAfterSaveLoad(t *testing.T) {
	ds := synthDS(450, 101)
	opt := Options{Trees: 15, LearningRate: 0.1, TreeComplexity: 5, Seed: 19, MaxOrder: 1}
	fresh, err := Train(ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fresh.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ropt := Options{Trees: 15, LearningRate: 0.1, TreeComplexity: 5, Seed: 19,
		MaxOrder: 2, TargetAccuracy: 0.9999, ConvergeWindow: 10}
	if err := Resume(fresh, ds, ropt, 8); err != nil {
		t.Fatal(err)
	}
	if err := Resume(loaded, ds, ropt, 8); err != nil {
		t.Fatal(err)
	}
	if fresh.Order != 2 || loaded.Order != 2 {
		t.Fatalf("orders %d/%d, want 2/2", fresh.Order, loaded.Order)
	}
	if fresh.ValErr != loaded.ValErr {
		t.Fatalf("ValErr diverged: %v vs %v", fresh.ValErr, loaded.ValErr)
	}
	probe := synthDS(120, 102)
	for i, x := range probe.Features {
		if a, b := fresh.Predict(x), loaded.Predict(x); a != b {
			t.Fatalf("probe %d: never-persisted %v != save/load %v", i, a, b)
		}
	}
}

// TestResumeRejectsBadInput covers the resume guard rails.
func TestResumeRejectsBadInput(t *testing.T) {
	ds := synthDS(400, 97)
	m, err := Train(ds, quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if err := Resume(&Model{}, ds, quickOpt(), 10); err == nil {
		t.Error("resume on an empty model should fail")
	}
	if err := Resume(m, ds, quickOpt(), 0); err == nil {
		t.Error("zero budget should fail")
	}
	if err := Resume(m, synthDS(5, 98), quickOpt(), 10); err == nil {
		t.Error("tiny dataset should fail")
	}
}

// TestLoadRejectsFutureVersion pins the schema gate.
func TestLoadRejectsFutureVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snapshot{Version: snapshotVersion + 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Fatal("snapshot from a future schema version should be rejected")
	}
}
