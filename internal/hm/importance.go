package hm

// FeatureImportance returns the model's per-feature importance: the total
// split gain each feature contributed across every tree of every
// sub-model, normalized to sum to 1. The final feature of a DAC model is
// the dataset size, so its importance quantifies the paper's core thesis —
// how much predictive power the dsize column carries.
func (m *Model) FeatureImportance() []float64 {
	var imp []float64
	for _, s := range m.subs {
		for _, t := range s.trees {
			g := t.Gains()
			if g == nil {
				continue
			}
			if imp == nil {
				imp = make([]float64, len(g))
			}
			for i, v := range g {
				imp[i] += v
			}
		}
	}
	total := 0.0
	for _, v := range imp {
		total += v
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}
