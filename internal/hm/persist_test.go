package hm

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	ds := synthDS(600, 40)
	m, err := Train(ds, Options{Trees: 200, LearningRate: 0.1, TreeComplexity: 5,
		MaxOrder: 2, TargetAccuracy: 0.999, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Order != m.Order || back.ValErr != m.ValErr {
		t.Errorf("metadata changed: order %d->%d valerr %v->%v", m.Order, back.Order, m.ValErr, back.ValErr)
	}
	rng := rand.New(rand.NewSource(41))
	for k := 0; k < 200; k++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
		a, b := m.Predict(x), back.Predict(x)
		if a != b {
			t.Fatalf("prediction changed after reload: %v != %v at %v", a, b, x)
		}
	}
}

// TestLegacySnapshotLoadsBitIdentically pins backward compatibility
// with snapshots written before the fast histogram path existed: a
// model trained under ExactHistograms grows byte-for-byte the same
// trees the reference implementation always did, so its snapshot
// stands in for a legacy v2 stream. It must load with bit-identical
// predictions, and the loaded model must resume training on the new
// fast path without error.
func TestLegacySnapshotLoadsBitIdentically(t *testing.T) {
	ds := synthDS(500, 43)
	m, err := Train(ds, Options{Trees: 120, LearningRate: 0.1, TreeComplexity: 5,
		Seed: 7, ExactHistograms: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(44))
	for k := 0; k < 200; k++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
		if a, b := m.Predict(x), back.Predict(x); a != b {
			t.Fatalf("legacy-shape snapshot predicts differently after reload: %v != %v", a, b)
		}
	}
	// Resuming a legacy-shape model uses the fast path by default.
	if err := Resume(back, ds, Options{Trees: 140, LearningRate: 0.1, TreeComplexity: 5, Seed: 7}, 20); err != nil {
		t.Fatal(err)
	}
	if back.NumTrees() <= m.NumTrees() {
		t.Fatalf("resume grew no trees: %d -> %d", m.NumTrees(), back.NumTrees())
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob stream")); err == nil {
		t.Error("garbage should fail to load")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream should fail to load")
	}
}
