package hm

import (
	"fmt"
	"io"

	"repro/internal/model"
)

// Backend adapts the package to the model.Backend contract, with
// persistence (snapshot v2: bin edges + codes) and warm-start via Resume
// as discovered capabilities. Opt seeds the defaults; model.TrainOpts
// fields overlay the knobs they map to, so the daemon's per-job budgets
// reproduce exactly the hm.Options a direct Train call would use.
type Backend struct{ Opt Options }

// Name implements model.Backend.
func (Backend) Name() string { return "hm" }

// options merges the cross-backend knobs into the backend's own.
func (b Backend) options(opt model.TrainOpts) Options {
	eff := b.Opt
	if opt.Quick && b.Opt == (Options{}) {
		// The daemon's smoke-test budget (JobSpec.Quick).
		eff = Options{Trees: 120, LearningRate: 0.1, TreeComplexity: 5}
	}
	if opt.Trees > 0 {
		eff.Trees = opt.Trees
	}
	if opt.LearningRate > 0 {
		eff.LearningRate = opt.LearningRate
	}
	if opt.TreeComplexity > 0 {
		eff.TreeComplexity = opt.TreeComplexity
	}
	if opt.Seed != 0 {
		eff.Seed = opt.Seed
	}
	if eff.Obs == nil {
		eff.Obs = opt.Obs
	}
	return eff
}

// Train implements model.Backend.
func (b Backend) Train(ds *model.Dataset, opt model.TrainOpts) (model.Model, error) {
	return Train(ds, b.options(opt))
}

// Save implements model.Saver.
func (b Backend) Save(m model.Model, w io.Writer) error {
	hmm, ok := m.(*Model)
	if !ok {
		return fmt.Errorf("hm: cannot save %T through the hm backend", m)
	}
	return hmm.Save(w)
}

// Load implements model.Loader.
func (Backend) Load(r io.Reader) (model.Model, error) { return Load(r) }

// Resume implements model.Resumer: it continues a persisted or in-memory
// HM model's boosting trajectory (and, if needed, its hierarchical
// recursion) with up to extra additional trees.
func (b Backend) Resume(m model.Model, ds *model.Dataset, opt model.TrainOpts, extra int) error {
	hmm, ok := m.(*Model)
	if !ok {
		return fmt.Errorf("hm: cannot resume %T through the hm backend", m)
	}
	return Resume(hmm, ds, b.options(opt), extra)
}
