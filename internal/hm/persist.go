package hm

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/tree"
)

// The paper's usage scenario amortizes one expensive collection over many
// cheap searches (§5.7): persisting the trained model makes the searches
// separable in time and process. Save/Load use encoding/gob over an
// exported snapshot of the model.

// snapshot is the serialized form of a Model.
//
// Version 2 added BinEdges and HasBins — the training Builder's histogram
// edges plus a flag that the trees' per-split bin codes are valid — so a
// reloaded model can continue binned training (Resume) instead of
// panicking in AccumulateBinned. The schema stays backward compatible:
// gob decodes a version-1 stream into the same struct with the new fields
// zero, and Load then simply rebuilds the model without codes.
type snapshot struct {
	Version int
	Log     bool
	Order   int
	ValErr  float64
	Coefs   []float64
	Subs    []snapshotFO

	// BinEdges are the per-feature histogram bin edges of the training
	// Builder (version ≥ 2; nil in legacy streams).
	BinEdges [][]float64
	// HasBins records that every persisted tree node carries a valid Bin
	// code. Validity must be signaled here rather than per node: a
	// version-1 stream decodes every FlatNode.Bin as zero, which is
	// indistinguishable from a genuine bin 0.
	HasBins bool
}

type snapshotFO struct {
	Base  float64
	LR    float64
	Trees [][]tree.FlatNode
}

const snapshotVersion = 2

// Save writes the model to w.
func (m *Model) Save(w io.Writer) error {
	s := snapshot{
		Version:  snapshotVersion,
		Log:      m.log,
		Order:    m.Order,
		ValErr:   m.ValErr,
		Coefs:    m.coefs,
		BinEdges: m.edges,
		HasBins:  m.edges != nil && m.hasBinCodes(),
	}
	for _, fo := range m.subs {
		sf := snapshotFO{Base: fo.base, LR: fo.lr, Trees: make([][]tree.FlatNode, len(fo.trees))}
		for i, t := range fo.trees {
			sf.Trees[i] = t.Flatten()
		}
		s.Subs = append(s.Subs, sf)
	}
	if err := gob.NewEncoder(w).Encode(s); err != nil {
		return fmt.Errorf("hm: saving model: %w", err)
	}
	return nil
}

// hasBinCodes reports whether every tree of the model carries bin codes.
func (m *Model) hasBinCodes() bool {
	for _, fo := range m.subs {
		for _, t := range fo.trees {
			if !t.HasBinCodes() {
				return false
			}
		}
	}
	return true
}

// Load reads a model previously written by Save, accepting any schema
// version up to the current one. Version-2 snapshots restore the bin
// edges and codes, so the loaded model supports binned training
// continuation (Resume) exactly like the never-persisted model; version-1
// snapshots reload without codes and Resume falls back to the
// (bit-identical) float evaluation path. Feature-importance metadata is
// not persisted; everything needed for prediction is.
func Load(r io.Reader) (*Model, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("hm: loading model: %w", err)
	}
	if s.Version < 1 || s.Version > snapshotVersion {
		return nil, fmt.Errorf("hm: model snapshot version %d, want 1..%d", s.Version, snapshotVersion)
	}
	if len(s.Subs) == 0 || len(s.Coefs) != len(s.Subs) {
		return nil, fmt.Errorf("hm: malformed snapshot: %d sub-models, %d coefficients", len(s.Subs), len(s.Coefs))
	}
	withCodes := s.HasBins && len(s.BinEdges) > 0
	m := &Model{log: s.Log, Order: s.Order, ValErr: s.ValErr, coefs: s.Coefs}
	if withCodes {
		m.edges = s.BinEdges
	}
	for _, sf := range s.Subs {
		fo := &firstOrder{base: sf.Base, lr: sf.LR}
		for _, nodes := range sf.Trees {
			var t *tree.Tree
			var err error
			if withCodes {
				t, err = tree.FromFlatWithCodes(nodes)
			} else {
				t, err = tree.FromFlat(nodes)
			}
			if err != nil {
				return nil, fmt.Errorf("hm: %w", err)
			}
			fo.trees = append(fo.trees, t)
		}
		m.subs = append(m.subs, fo)
	}
	return m, nil
}
