package hm

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/tree"
)

// The paper's usage scenario amortizes one expensive collection over many
// cheap searches (§5.7): persisting the trained model makes the searches
// separable in time and process. Save/Load use encoding/gob over an
// exported snapshot of the model.

// snapshot is the serialized form of a Model.
type snapshot struct {
	Version int
	Log     bool
	Order   int
	ValErr  float64
	Coefs   []float64
	Subs    []snapshotFO
}

type snapshotFO struct {
	Base  float64
	LR    float64
	Trees [][]tree.FlatNode
}

const snapshotVersion = 1

// Save writes the model to w.
func (m *Model) Save(w io.Writer) error {
	s := snapshot{
		Version: snapshotVersion,
		Log:     m.log,
		Order:   m.Order,
		ValErr:  m.ValErr,
		Coefs:   m.coefs,
	}
	for _, fo := range m.subs {
		sf := snapshotFO{Base: fo.base, LR: fo.lr, Trees: make([][]tree.FlatNode, len(fo.trees))}
		for i, t := range fo.trees {
			sf.Trees[i] = t.Flatten()
		}
		s.Subs = append(s.Subs, sf)
	}
	if err := gob.NewEncoder(w).Encode(s); err != nil {
		return fmt.Errorf("hm: saving model: %w", err)
	}
	return nil
}

// Load reads a model previously written by Save. Feature-importance
// metadata is not persisted; everything needed for prediction is.
func Load(r io.Reader) (*Model, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("hm: loading model: %w", err)
	}
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("hm: model snapshot version %d, want %d", s.Version, snapshotVersion)
	}
	if len(s.Subs) == 0 || len(s.Coefs) != len(s.Subs) {
		return nil, fmt.Errorf("hm: malformed snapshot: %d sub-models, %d coefficients", len(s.Subs), len(s.Coefs))
	}
	m := &Model{log: s.Log, Order: s.Order, ValErr: s.ValErr, coefs: s.Coefs}
	for _, sf := range s.Subs {
		fo := &firstOrder{base: sf.Base, lr: sf.LR}
		for _, nodes := range sf.Trees {
			t, err := tree.FromFlat(nodes)
			if err != nil {
				return nil, fmt.Errorf("hm: %w", err)
			}
			fo.trees = append(fo.trees, t)
		}
		m.subs = append(m.subs, fo)
	}
	return m, nil
}
