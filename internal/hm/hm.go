// Package hm implements the paper's Hierarchical Modeling (HM, §3.2,
// Algorithm 1): execution time is predicted by the cooperation of many
// simple sub-models rather than one sophisticated model.
//
// FirstOrderProcedure is stochastic gradient boosting: regression trees of
// complexity tc are grown on bootstrap samples of the residuals and added
// with shrinkage lr, up to nt trees or convergence. If the first-order
// model misses the target accuracy after converging, additional converged
// first-order models are built (with fresh randomness) and hierarchically
// blended; the paper weights sub-models by coefficients "corresponding to
// learning rate", which we instantiate as the least-squares coefficients
// on a held-out validation split — the choice that makes the blend an
// improvement by construction.
//
// Training is batched and parallel: each first-order model's randomness
// is derived from (Seed, order) alone, so candidate orders fit
// concurrently under Workers > 1 while producing exactly the model a
// serial run would; the boosting inner loop updates train/validation
// predictions tree-at-a-time (tree.AccumulateBatch) instead of row-at-a-
// time, and split finding fans out across features inside internal/tree.
package hm

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/tree"
)

// Options are HM's hyperparameters; the zero value selects the paper's
// tuned settings (§5.2): tc=5, lr=0.05, nt=3600.
type Options struct {
	// Trees is nt, the sub-model budget of one first-order model.
	Trees int
	// LearningRate is lr, the shrinkage per sub-model.
	LearningRate float64
	// TreeComplexity is tc, split nodes per tree.
	TreeComplexity int
	// MinLeaf is the minimum samples per leaf.
	MinLeaf int
	// TargetAccuracy stops model building once validation accuracy
	// (1 - mean Eq. 2 error) reaches it. Default 0.90.
	TargetAccuracy float64
	// MaxOrder bounds the hierarchical recursion depth; order k blends
	// up to k converged first-order models. Default 2.
	MaxOrder int
	// ValFrac is the fraction of the training set held out to measure
	// accuracy and convergence. Default 0.2.
	ValFrac float64
	// ConvergeWindow is the number of trees without validation
	// improvement after which a first-order model is converged.
	// Default 300.
	ConvergeWindow int
	// LogTarget fits log execution time (recommended: times span
	// orders of magnitude). Default true for the zero value.
	NoLogTarget bool
	// Workers bounds training parallelism: concurrent first-order fits
	// and the split-scan fan-out inside tree growth (0 = GOMAXPROCS,
	// 1 = fully serial). The trained model is identical for any value.
	Workers int
	// NoBatch restores the row-at-a-time reference update path: float
	// tree walks per training row instead of binned tree-at-a-time
	// accumulation, and (via tree.Options) the exact per-node histogram
	// scan instead of the sibling-subtraction fast path. Predictions of
	// the two modes agree within the tolerance documented in DESIGN.md
	// §13 (the fast tree scan uses reciprocal-table arithmetic, so a
	// split whose gain ties another within rounding noise may resolve
	// differently); each mode on its own is deterministic for any
	// Workers/GOMAXPROCS. The flag exists so benchmarks and equivalence
	// tests can compare against the pre-optimization baseline.
	NoBatch bool
	// ExactHistograms grows trees with the reference per-node histogram
	// scan while keeping the batched update path — unlike NoBatch it
	// changes only tree growth, letting tests isolate the two contracts
	// (DESIGN.md §13). NoBatch implies it.
	ExactHistograms bool
	// Seed drives bootstrapping and the train/validation split.
	Seed int64
	// Obs, when non-nil, receives training metrics: trees grown,
	// boosting rounds, orders built, and fit wall-clock ("hm.*" and
	// "tree.*" names). It is never serialized with the model.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Trees <= 0 {
		o.Trees = 3600
	}
	if o.LearningRate <= 0 {
		o.LearningRate = 0.05
	}
	if o.TreeComplexity <= 0 {
		o.TreeComplexity = 5
	}
	if o.TargetAccuracy <= 0 {
		o.TargetAccuracy = 0.90
	}
	if o.MaxOrder <= 0 {
		o.MaxOrder = 2
	}
	if o.ValFrac <= 0 || o.ValFrac >= 1 {
		o.ValFrac = 0.2
	}
	if o.ConvergeWindow <= 0 {
		o.ConvergeWindow = 300
	}
	return o
}

// workers resolves the effective training parallelism. The default is
// capped at NumCPU as well as GOMAXPROCS: CPU-bound fits and split
// scans gain nothing from more goroutines than physical CPUs (a common
// state in CPU-quota containers where GOMAXPROCS exceeds the quota).
// The trained model is identical for any worker count, so the cap is
// purely a speed matter.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	w := runtime.GOMAXPROCS(0)
	if n := runtime.NumCPU(); n < w {
		w = n
	}
	return w
}

// firstOrder is one boosted-tree model: base + lr·Σ trees.
type firstOrder struct {
	base  float64
	lr    float64
	trees []*tree.Tree
}

func (f *firstOrder) predict(x []float64) float64 {
	v := f.base
	for _, t := range f.trees {
		v += f.lr * t.Predict(x)
	}
	return v
}

// predictBatch writes the fit-space prediction for every row of X into
// out, accumulating tree-at-a-time. Bit-identical to predict per row.
func (f *firstOrder) predictBatch(X [][]float64, out []float64) {
	for i := range out {
		out[i] = f.base
	}
	for _, t := range f.trees {
		t.AccumulateBatch(X, f.lr, out)
	}
}

// Model is a trained HM model: a coefficient blend of first-order models
// (a single first-order model has one coefficient of 1). It implements
// model.Model, predicting execution time in seconds.
type Model struct {
	subs  []*firstOrder
	coefs []float64
	log   bool
	// edges, when non-nil, are the training Builder's per-feature
	// histogram bin edges. Together with the trees' bin codes they keep
	// the binned training path available after Save/Load: Resume encodes
	// new rows against them (tree.BinWithEdges) instead of requiring the
	// original Builder. Nil for models loaded from legacy (v1) snapshots
	// and for models whose binned form was invalidated (see Resume).
	edges [][]float64
	// Order is the hierarchical order reached (1 = first-order).
	Order int
	// ValErr is the mean Eq. 2 validation error at the end of training.
	ValErr float64
}

// Predict returns the predicted execution time in seconds.
func (m *Model) Predict(x []float64) float64 {
	v := 0.0
	for i, s := range m.subs {
		v += m.coefs[i] * s.predict(x)
	}
	if m.log {
		return math.Exp(v)
	}
	return v
}

// PredictBatch writes the predicted execution time for every row of X
// into out (len(out) must be at least len(X)). Each small boosted tree is
// evaluated over the whole batch before moving on, keeping its node
// arrays in cache — the layout the GA's population evaluation depends on.
// Results are bit-identical to calling Predict per row, and the method is
// safe for concurrent use (the model is read-only).
func (m *Model) PredictBatch(X [][]float64, out []float64) {
	tmp := make([]float64, len(X))
	for i := range X {
		out[i] = 0
	}
	for j, s := range m.subs {
		s.predictBatch(X, tmp)
		c := m.coefs[j]
		for i := range X {
			out[i] += c * tmp[i]
		}
	}
	if m.log {
		for i := range X {
			out[i] = math.Exp(out[i])
		}
	}
}

// NumTrees returns the total sub-model (tree) count across all orders.
func (m *Model) NumTrees() int {
	n := 0
	for _, s := range m.subs {
		n += len(s.trees)
	}
	return n
}

// Train fits an HM model to ds following Algorithm 1.
func Train(ds *model.Dataset, opt Options) (*Model, error) {
	opt = opt.withDefaults()
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("hm: %w", err)
	}
	if ds.Len() < 10 {
		return nil, fmt.Errorf("hm: %d samples is too few", ds.Len())
	}
	start := time.Now()
	rng := rand.New(rand.NewSource(opt.Seed))
	trainDS, valDS := ds.Split(1-opt.ValFrac, rng)
	// One independent seed per candidate order, drawn up front: each
	// first-order model's randomness depends only on (Seed, order), so
	// fits can run concurrently — and unneeded ones can be discarded —
	// without changing any model that is kept.
	orderSeeds := make([]int64, opt.MaxOrder)
	for i := range orderSeeds {
		orderSeeds[i] = rng.Int63()
	}
	tr := newTrainer(trainDS, valDS, opt)

	// Speculative concurrent fits: when the blend needs order k, the
	// fits for orders 2..k were already running while order 1 was
	// evaluated. The abort flag reclaims the rare over-speculated fit —
	// but with a single scheduler core there is no idle parallelism to
	// win: the speculated fits time-slice against the fit that is
	// actually needed, so in the common case where the first candidate
	// already meets TargetAccuracy a full fit's worth of work has been
	// burned on the same core and thrown away. So speculation
	// additionally requires real parallelism (GOMAXPROCS > 1); otherwise
	// candidates fit strictly one at a time, on demand.
	var abort atomic.Bool
	var pending []chan *firstOrder
	if opt.workers() > 1 && opt.MaxOrder > 1 && runtime.GOMAXPROCS(0) > 1 {
		pending = make([]chan *firstOrder, opt.MaxOrder)
		for k := range pending {
			k := k
			ch := make(chan *firstOrder, 1)
			pending[k] = ch
			go func() {
				ch <- tr.firstOrderProcedure(rand.New(rand.NewSource(orderSeeds[k])), &abort)
			}()
		}
	}

	// The builder's bin edges travel with the model (and its snapshot)
	// so training can resume — binned — after Save/Load.
	m := &Model{log: !opt.NoLogTarget, Order: 1, edges: tr.builder.Edges()}
	// Algorithm 1 main loop: build first-order models until the target
	// accuracy is met or the order budget is exhausted.
	for order := 1; ; order++ {
		var fo *firstOrder
		if pending != nil {
			fo = <-pending[order-1]
		} else {
			fo = tr.firstOrderProcedure(rand.New(rand.NewSource(orderSeeds[order-1])), nil)
		}
		m.subs = append(m.subs, fo)
		m.coefs = tr.fitCoefs(m.subs)
		m.Order = order
		m.ValErr = tr.valError(m.subs, m.coefs)
		if 1-m.ValErr >= opt.TargetAccuracy || order >= opt.MaxOrder {
			abort.Store(true)
			opt.Obs.Counter("hm.fits").Inc()
			opt.Obs.Counter("hm.orders.built").Add(int64(m.Order))
			opt.Obs.Counter("hm.trees").Add(int64(m.NumTrees()))
			opt.Obs.Histogram("hm.fit.sec", nil).Observe(time.Since(start).Seconds())
			return m, nil
		}
	}
}

// trainer carries the shared state of one Train call. All fields are
// read-only after construction, so concurrent firstOrderProcedure calls
// may share one trainer.
type trainer struct {
	opt     Options
	builder *tree.Builder
	train   *model.Dataset
	val     *model.Dataset
	yFit    []float64 // training targets in fit space (log or raw)
	// trainBM/valBM are the train and validation rows pre-encoded into
	// the builder's bins, so every boosting round updates predictions by
	// walking the fresh tree over cached byte columns (nil under NoBatch).
	trainBM *tree.BinMatrix
	valBM   *tree.BinMatrix
}

func newTrainer(trainDS, valDS *model.Dataset, opt Options) *trainer {
	t := &trainer{
		opt:     opt,
		builder: tree.NewBuilder(trainDS.Features),
		train:   trainDS, val: valDS,
		yFit: make([]float64, trainDS.Len()),
	}
	if !opt.NoBatch {
		t.trainBM = t.builder.Binned()
		t.valBM = t.builder.Bin(valDS.Features)
	}
	t.builder.Instrument(opt.Obs)
	for i, v := range trainDS.Targets {
		if opt.NoLogTarget {
			t.yFit[i] = v
		} else {
			t.yFit[i] = math.Log(math.Max(1e-9, v))
		}
	}
	return t
}

// firstOrderProcedure is Algorithm 1's FirstOrderProcedure: stochastic
// gradient boosting with bootstrap samples, early-stopped on target
// accuracy or convergence. rng must be private to this call; abort, when
// non-nil, lets Train cancel a speculative fit whose order turned out not
// to be needed (the partial result is discarded).
func (t *trainer) firstOrderProcedure(rng *rand.Rand, abort *atomic.Bool) *firstOrder {
	n := t.train.Len()
	fo := &firstOrder{lr: t.opt.LearningRate}
	sum := 0.0
	for _, v := range t.yFit {
		sum += v
	}
	fo.base = sum / float64(n)

	pred := make([]float64, n)
	for i := range pred {
		pred[i] = fo.base
	}
	valPred := make([]float64, t.val.Len())
	for i := range valPred {
		valPred[i] = fo.base
	}
	t.boost(fo, pred, valPred, t.opt.Trees, rng, abort)
	return fo
}

// boost runs up to budget stochastic-gradient-boosting rounds on fo,
// appending to fo.trees and advancing pred/valPred (fo's current fit-
// space predictions over the train and validation splits) in place. It
// stops early on target accuracy, convergence, or abort — the exact
// loop FirstOrderProcedure has always run, factored out so Resume can
// continue a persisted sub-model's trajectory from replayed predictions.
// Returns the number of trees grown.
func (t *trainer) boost(fo *firstOrder, pred, valPred []float64, budget int, rng *rand.Rand, abort *atomic.Bool) int {
	n := t.train.Len()
	resid := make([]float64, n)
	gOpt := tree.Options{
		MaxSplits:       t.opt.TreeComplexity,
		MinLeaf:         t.opt.MinLeaf,
		Workers:         t.opt.workers(),
		NoBatch:         t.opt.NoBatch,
		ExactHistograms: t.opt.ExactHistograms,
	}

	grown := 0
	bestErr := math.Inf(1)
	sinceBest := 0
	const checkEvery = 10
	for k := 0; k < budget; k++ {
		if abort != nil && abort.Load() {
			break
		}
		for i := range resid {
			resid[i] = t.yFit[i] - pred[i]
		}
		idx := model.Bootstrap(n, rng)
		tr := t.builder.Grow(resid, idx, gOpt, rng)
		fo.trees = append(fo.trees, tr)
		grown++
		if t.opt.NoBatch {
			for i, x := range t.train.Features {
				pred[i] += fo.lr * tr.Predict(x)
			}
			for i, x := range t.val.Features {
				valPred[i] += fo.lr * tr.Predict(x)
			}
		} else {
			tr.AccumulateBinned(t.trainBM, fo.lr, pred)
			tr.AccumulateBinned(t.valBM, fo.lr, valPred)
		}
		if (k+1)%checkEvery == 0 {
			e := t.relErr(valPred)
			if e < bestErr-1e-5 {
				bestErr = e
				sinceBest = 0
			} else {
				sinceBest += checkEvery
			}
			if 1-e >= t.opt.TargetAccuracy || sinceBest >= t.opt.ConvergeWindow {
				break
			}
		}
	}
	t.opt.Obs.Counter("hm.boost.rounds").Add(int64(grown))
	return grown
}

// subPredictions fills out with s's fit-space predictions over X, via the
// batch path unless the reference (NoBatch) mode is active.
func (t *trainer) subPredictions(s *firstOrder, X [][]float64, out []float64) {
	if t.opt.NoBatch {
		for i, x := range X {
			out[i] = s.predict(x)
		}
		return
	}
	s.predictBatch(X, out)
}

// relErr computes the mean Eq. 2 error of fit-space predictions against
// the validation targets.
func (t *trainer) relErr(valPred []float64) float64 {
	if len(valPred) == 0 {
		return 0
	}
	sum := 0.0
	for i, p := range valPred {
		if !t.opt.NoLogTarget {
			p = math.Exp(p)
		}
		sum += model.RelErr(p, t.val.Targets[i])
	}
	return sum / float64(len(valPred))
}

// fitCoefs solves the least-squares blend of the sub-models on the
// validation split (in fit space). With one sub-model it returns {1}.
func (t *trainer) fitCoefs(subs []*firstOrder) []float64 {
	k := len(subs)
	if k == 1 {
		return []float64{1}
	}
	// Normal equations A a = b over validation predictions.
	A := make([][]float64, k)
	b := make([]float64, k)
	preds := make([][]float64, k)
	for j, s := range subs {
		preds[j] = make([]float64, t.val.Len())
		t.subPredictions(s, t.val.Features, preds[j])
	}
	yv := make([]float64, t.val.Len())
	for i, v := range t.val.Targets {
		if t.opt.NoLogTarget {
			yv[i] = v
		} else {
			yv[i] = math.Log(math.Max(1e-9, v))
		}
	}
	for j := range A {
		A[j] = make([]float64, k)
		for l := range A[j] {
			for i := range yv {
				A[j][l] += preds[j][i] * preds[l][i]
			}
		}
		A[j][j] += 1e-6 // ridge for numerical safety
		for i := range yv {
			b[j] += preds[j][i] * yv[i]
		}
	}
	coefs, ok := solve(A, b)
	if !ok {
		// Degenerate system: fall back to a uniform blend.
		coefs = make([]float64, k)
		for j := range coefs {
			coefs[j] = 1 / float64(k)
		}
	}
	return coefs
}

// valError evaluates the blended model on the validation split.
func (t *trainer) valError(subs []*firstOrder, coefs []float64) float64 {
	if t.val.Len() == 0 {
		return 0
	}
	acc := make([]float64, t.val.Len())
	tmp := make([]float64, t.val.Len())
	for j, s := range subs {
		t.subPredictions(s, t.val.Features, tmp)
		for i := range acc {
			acc[i] += coefs[j] * tmp[i]
		}
	}
	sum := 0.0
	for i, p := range acc {
		if !t.opt.NoLogTarget {
			p = math.Exp(p)
		}
		sum += model.RelErr(p, t.val.Targets[i])
	}
	return sum / float64(len(t.val.Targets))
}

// solve performs Gaussian elimination with partial pivoting on the small
// dense system Ax=b, returning ok=false for singular systems.
func solve(A [][]float64, b []float64) ([]float64, bool) {
	n := len(A)
	M := make([][]float64, n)
	for i := range M {
		M[i] = append(append([]float64(nil), A[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(M[r][col]) > math.Abs(M[piv][col]) {
				piv = r
			}
		}
		if math.Abs(M[piv][col]) < 1e-12 {
			return nil, false
		}
		M[col], M[piv] = M[piv], M[col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := M[r][col] / M[col][col]
			for c := col; c <= n; c++ {
				M[r][c] -= f * M[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = M[i][n] / M[i][i]
	}
	return x, true
}

// Trainer adapts Train to the model.Trainer interface.
type Trainer struct{ Opt Options }

// Name implements model.Trainer.
func (Trainer) Name() string { return "HM" }

// Train implements model.Trainer.
func (t Trainer) Train(ds *model.Dataset) (model.Model, error) {
	return Train(ds, t.Opt)
}
