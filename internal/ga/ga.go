// Package ga implements the genetic algorithm of §3.3 (Fig. 6), the
// searcher DAC uses to find the configuration minimizing a performance
// model's predicted execution time. GA is chosen over recursive random
// search and pattern search because it is robust against the many local
// optima of the high dimensional configuration space.
//
// Individuals are encoded configuration vectors. Each generation applies
// tournament selection, uniform crossover, and per-gene mutation at the
// paper's rate of 0.01, with elitism preserving the best individuals.
package ga

import (
	"math"
	"math/rand"

	"repro/internal/conf"
	"repro/internal/obs"
)

// Objective maps an encoded configuration vector to the quantity being
// minimized — for DAC, the model-predicted execution time in seconds.
type Objective func(x []float64) float64

// Options are the GA hyperparameters. The zero value selects the paper's
// setup: population 100, 100 generations, mutation rate 0.01.
type Options struct {
	// PopSize is the population size (the paper's popSize).
	PopSize int
	// Generations is the iteration budget; Fig. 11 shows convergence by
	// 48–64 iterations across the six programs.
	Generations int
	// MutationRate is the per-gene mutation probability (Fig. 6: 0.01).
	MutationRate float64
	// CrossoverRate is the probability a pair is recombined rather than
	// copied.
	CrossoverRate float64
	// TournamentK is the tournament selection size.
	TournamentK int
	// Elite is the number of top individuals copied unchanged.
	Elite int
	// Patience stops the search after this many generations without
	// improvement; 0 disables early stopping.
	Patience int
	// Seed drives all randomness.
	Seed int64
	// Obs, when non-nil, receives search metrics: runs, generations,
	// objective evaluations ("ga.*"), plus each run's best-so-far
	// trajectory as a run of the "ga.best" series. Recording never
	// perturbs the search.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.PopSize <= 0 {
		o.PopSize = 100
	}
	if o.Generations <= 0 {
		o.Generations = 100
	}
	if o.MutationRate <= 0 {
		o.MutationRate = 0.01
	}
	if o.CrossoverRate <= 0 {
		o.CrossoverRate = 0.9
	}
	if o.TournamentK <= 0 {
		o.TournamentK = 3
	}
	if o.Elite <= 0 {
		o.Elite = 2
	}
	return o
}

// Result is the outcome of one GA run.
type Result struct {
	// Best is the best encoded configuration found.
	Best []float64
	// BestFitness is its objective value.
	BestFitness float64
	// History records the best fitness after each generation — the
	// convergence curves of Fig. 11.
	History []float64
	// Evaluations counts objective calls.
	Evaluations int
	// Converged is the first generation (1-based) whose best fitness is
	// within 0.5% of the final best — the convergence point plotted in
	// Fig. 11 — or 0 if the history is empty.
	Converged int
}

// Minimize searches space for the configuration minimizing obj. init
// optionally seeds the population with existing vectors (the paper seeds
// popSize vectors drawn from the training set); the remainder is random.
func Minimize(space *conf.Space, obj Objective, init [][]float64, opt Options) Result {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	d := space.Len()

	pop := make([][]float64, opt.PopSize)
	for i := range pop {
		if i < len(init) && len(init[i]) == d {
			pop[i] = clampVec(space, init[i])
		} else {
			pop[i] = space.Random(rng).Vector()
		}
	}

	opt.Obs.Counter("ga.runs").Inc()
	evals := opt.Obs.Counter("ga.evaluations")
	gens := opt.Obs.Counter("ga.generations")

	res := Result{BestFitness: math.Inf(1)}
	fit := make([]float64, opt.PopSize)
	evaluate := func() {
		for i, x := range pop {
			fit[i] = obj(x)
			res.Evaluations++
			if fit[i] < res.BestFitness {
				res.BestFitness = fit[i]
				res.Best = append([]float64(nil), x...)
			}
		}
		evals.Add(int64(len(pop)))
	}
	evaluate()

	sinceBest := 0
	for gen := 0; gen < opt.Generations; gen++ {
		gens.Inc()
		next := make([][]float64, 0, opt.PopSize)
		// Elitism.
		for _, i := range bestK(fit, opt.Elite) {
			next = append(next, append([]float64(nil), pop[i]...))
		}
		for len(next) < opt.PopSize {
			a := pop[tournament(fit, opt.TournamentK, rng)]
			b := pop[tournament(fit, opt.TournamentK, rng)]
			c1, c2 := crossover(a, b, opt.CrossoverRate, rng)
			mutate(space, c1, opt.MutationRate, rng)
			mutate(space, c2, opt.MutationRate, rng)
			next = append(next, c1)
			if len(next) < opt.PopSize {
				next = append(next, c2)
			}
		}
		pop = next
		prevBest := res.BestFitness
		evaluate()
		res.History = append(res.History, res.BestFitness)
		if res.BestFitness < prevBest-1e-12 {
			sinceBest = 0
		} else {
			sinceBest++
			if opt.Patience > 0 && sinceBest >= opt.Patience {
				break
			}
		}
	}
	for g, v := range res.History {
		if v <= res.BestFitness*1.005+1e-12 {
			res.Converged = g + 1
			break
		}
	}
	opt.Obs.Series("ga.best").AddRun(res.History)
	return res
}

// tournament returns the index of the best of k random individuals.
func tournament(fit []float64, k int, rng *rand.Rand) int {
	best := rng.Intn(len(fit))
	for i := 1; i < k; i++ {
		c := rng.Intn(len(fit))
		if fit[c] < fit[best] {
			best = c
		}
	}
	return best
}

// crossover performs uniform crossover with probability rate; otherwise
// the parents are copied unchanged.
func crossover(a, b []float64, rate float64, rng *rand.Rand) ([]float64, []float64) {
	c1 := append([]float64(nil), a...)
	c2 := append([]float64(nil), b...)
	if rng.Float64() < rate {
		for i := range c1 {
			if rng.Float64() < 0.5 {
				c1[i], c2[i] = c2[i], c1[i]
			}
		}
	}
	return c1, c2
}

// mutate resamples each gene with the configured probability.
func mutate(space *conf.Space, x []float64, rate float64, rng *rand.Rand) {
	for i := range x {
		if rng.Float64() < rate {
			x[i] = space.Param(i).Random(rng)
		}
	}
}

// bestK returns the indices of the k smallest fitness values.
func bestK(fit []float64, k int) []int {
	if k > len(fit) {
		k = len(fit)
	}
	idx := make([]int, 0, k)
	for c := 0; c < k; c++ {
		best := -1
		for i, f := range fit {
			if contains(idx, i) {
				continue
			}
			if best < 0 || f < fit[best] {
				best = i
			}
		}
		idx = append(idx, best)
	}
	return idx
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func clampVec(space *conf.Space, x []float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		out[i] = space.Param(i).Clamp(x[i])
	}
	return out
}
