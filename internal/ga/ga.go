// Package ga implements the genetic algorithm of §3.3 (Fig. 6), the
// searcher DAC uses to find the configuration minimizing a performance
// model's predicted execution time. GA is chosen over recursive random
// search and pattern search because it is robust against the many local
// optima of the high dimensional configuration space.
//
// Individuals are encoded configuration vectors. Each generation applies
// tournament selection, uniform crossover, and per-gene mutation at the
// paper's rate of 0.01, with elitism preserving the best individuals.
package ga

import (
	"encoding/binary"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/conf"
	"repro/internal/obs"
)

// Objective maps an encoded configuration vector to the quantity being
// minimized — for DAC, the model-predicted execution time in seconds.
// Objectives must be pure: the search memoizes and replays values for
// repeated individuals.
type Objective func(x []float64) float64

// BatchObjective scores a whole block of configurations in one call:
// out[i] receives the objective of X[i]. Model-backed objectives
// implement it with tree-at-a-time batch prediction, which is the GA hot
// path's fast lane. Implementations must be pure, agree with the per-row
// Objective they accompany, and be safe for concurrent calls on disjoint
// blocks.
type BatchObjective func(X [][]float64, out []float64)

// Options are the GA hyperparameters. The zero value selects the paper's
// setup: population 100, 100 generations, mutation rate 0.01.
type Options struct {
	// PopSize is the population size (the paper's popSize).
	PopSize int
	// Generations is the iteration budget; Fig. 11 shows convergence by
	// 48–64 iterations across the six programs.
	Generations int
	// MutationRate is the per-gene mutation probability (Fig. 6: 0.01).
	MutationRate float64
	// CrossoverRate is the probability a pair is recombined rather than
	// copied.
	CrossoverRate float64
	// TournamentK is the tournament selection size.
	TournamentK int
	// Elite is the number of top individuals copied unchanged.
	Elite int
	// Patience stops the search after this many generations without
	// improvement; 0 disables early stopping.
	Patience int
	// BatchObj, when non-nil, replaces per-row calls of the Objective
	// passed to Minimize for whole-population scoring (the Objective may
	// then be nil).
	BatchObj BatchObjective
	// Workers bounds concurrent objective evaluation (0 = GOMAXPROCS,
	// 1 = serial). The search result is identical for any value; with
	// Workers != 1 the objective must be safe for concurrent calls.
	Workers int
	// NoCache disables genome memoization. By default individuals that
	// reappear — elites, duplicate children of converged populations —
	// are never re-scored: their fitness replays from a cache keyed on
	// the exact gene bits, and Evaluations counts only real objective
	// calls. The search result is identical with or without the cache.
	NoCache bool
	// Cache, when non-nil, replaces the run-private genome memo cache
	// with a shared one, letting repeated searches of the same objective
	// (the daemon's idempotent search traffic) replay each other's
	// evaluations. The cache is sharded by genome hash, so concurrent
	// Minimize calls sharing it do not contend on one map. Callers must
	// only share a cache between searches whose objectives are identical
	// — the key is the genome alone. Ignored under NoCache. The search
	// result is identical with or without sharing; only Evaluations and
	// CacheHits shift (replays replace objective calls, counted exactly).
	Cache *GenomeCache
	// Seed drives all randomness.
	Seed int64
	// Obs, when non-nil, receives search metrics: runs, generations,
	// objective evaluations ("ga.*"), plus each run's best-so-far
	// trajectory as a run of the "ga.best" series. Recording never
	// perturbs the search.
	Obs *obs.Registry
}

// workers resolves the effective evaluation parallelism. The default is
// capped at NumCPU as well as GOMAXPROCS: splitting a CPU-bound batch
// across more goroutines than physical CPUs (a common state in
// CPU-quota containers where GOMAXPROCS exceeds the quota) only
// interleaves the chunks' cache footprints. The search result is
// identical for any worker count, so the cap is purely a speed matter.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	w := runtime.GOMAXPROCS(0)
	if n := runtime.NumCPU(); n < w {
		w = n
	}
	return w
}

func (o Options) withDefaults() Options {
	if o.PopSize <= 0 {
		o.PopSize = 100
	}
	if o.Generations <= 0 {
		o.Generations = 100
	}
	if o.MutationRate <= 0 {
		o.MutationRate = 0.01
	}
	if o.CrossoverRate <= 0 {
		o.CrossoverRate = 0.9
	}
	if o.TournamentK <= 0 {
		o.TournamentK = 3
	}
	if o.Elite <= 0 {
		o.Elite = 2
	}
	return o
}

// Result is the outcome of one GA run.
type Result struct {
	// Best is the best encoded configuration found.
	Best []float64
	// BestFitness is its objective value.
	BestFitness float64
	// History records the best fitness after each generation — the
	// convergence curves of Fig. 11.
	History []float64
	// Evaluations counts objective calls (memoized replays excluded).
	Evaluations int
	// CacheHits counts fitness lookups served by the genome cache instead
	// of an objective call.
	CacheHits int
	// Converged is the first generation (1-based) whose best fitness is
	// within 0.5% of the final best — the convergence point plotted in
	// Fig. 11 — or 0 if the history is empty.
	Converged int
}

// Minimize searches space for the configuration minimizing obj. init
// optionally seeds the population with existing vectors (the paper seeds
// popSize vectors drawn from the training set); the remainder is random.
func Minimize(space *conf.Space, obj Objective, init [][]float64, opt Options) Result {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	d := space.Len()

	pop := make([][]float64, opt.PopSize)
	for i := range pop {
		if i < len(init) && len(init[i]) == d {
			pop[i] = clampVec(space, init[i])
		} else {
			pop[i] = space.Random(rng).Vector()
		}
	}

	opt.Obs.Counter("ga.runs").Inc()
	evals := opt.Obs.Counter("ga.evaluations")
	gens := opt.Obs.Counter("ga.generations")

	res := Result{BestFitness: math.Inf(1)}
	fit := make([]float64, opt.PopSize)

	// Genome memoization: fitness keyed on the exact gene bits, so
	// repeated individuals (elites, duplicate children late in a
	// converged run) never reach the objective again. The cache is the
	// sharded kind either way; a run-private one simply never contends.
	var cache *GenomeCache
	if !opt.NoCache {
		if opt.Cache != nil {
			cache = opt.Cache
		} else {
			cache = NewGenomeCache()
		}
	}
	keyBuf := make([]byte, 0, 8*d)
	keyOf := func(x []float64) string {
		keyBuf = keyBuf[:0]
		for _, v := range x {
			keyBuf = binary.LittleEndian.AppendUint64(keyBuf, math.Float64bits(v))
		}
		return string(keyBuf)
	}

	// evaluate scores the population: cache lookups first, then one pass
	// over the unique unseen genomes — batched and fanned out across
	// workers — and finally a serial scan in population order, so the
	// best-individual tie-breaking matches the reference implementation
	// bit for bit regardless of worker count or cache state.
	evaluate := func() {
		X := pop
		var keys []string
		var rows [][]int
		if cache != nil {
			X = X[:0:0]
			batch := make(map[string]int, len(pop))
			for i, x := range pop {
				k := keyOf(x)
				if v, ok := cache.Lookup(k); ok {
					fit[i] = v
					res.CacheHits++
					continue
				}
				if j, ok := batch[k]; ok {
					rows[j] = append(rows[j], i)
					res.CacheHits++
					continue
				}
				batch[k] = len(X)
				X = append(X, x)
				keys = append(keys, k)
				rows = append(rows, []int{i})
			}
		}
		m := len(X)
		vals := make([]float64, m)
		if w := min(opt.workers(), m); w <= 1 {
			if opt.BatchObj != nil {
				opt.BatchObj(X, vals)
			} else {
				for j, x := range X {
					vals[j] = obj(x)
				}
			}
		} else {
			var wg sync.WaitGroup
			for c := 0; c < w; c++ {
				lo, hi := c*m/w, (c+1)*m/w
				if lo == hi {
					continue
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					if opt.BatchObj != nil {
						opt.BatchObj(X[lo:hi], vals[lo:hi])
					} else {
						for j := lo; j < hi; j++ {
							vals[j] = obj(X[j])
						}
					}
				}(lo, hi)
			}
			wg.Wait()
		}
		res.Evaluations += m
		evals.Add(int64(m))
		if cache != nil {
			for j, v := range vals {
				cache.Store(keys[j], v)
				for _, i := range rows[j] {
					fit[i] = v
				}
			}
		} else {
			copy(fit, vals)
		}
		for i, v := range fit {
			if v < res.BestFitness {
				res.BestFitness = v
				res.Best = append([]float64(nil), pop[i]...)
			}
		}
	}
	evaluate()

	sinceBest := 0
	for gen := 0; gen < opt.Generations; gen++ {
		gens.Inc()
		next := make([][]float64, 0, opt.PopSize)
		// Elitism.
		for _, i := range bestK(fit, opt.Elite) {
			next = append(next, append([]float64(nil), pop[i]...))
		}
		for len(next) < opt.PopSize {
			a := pop[tournament(fit, opt.TournamentK, rng)]
			b := pop[tournament(fit, opt.TournamentK, rng)]
			c1, c2 := crossover(a, b, opt.CrossoverRate, rng)
			mutate(space, c1, opt.MutationRate, rng)
			mutate(space, c2, opt.MutationRate, rng)
			next = append(next, c1)
			if len(next) < opt.PopSize {
				next = append(next, c2)
			}
		}
		pop = next
		prevBest := res.BestFitness
		evaluate()
		res.History = append(res.History, res.BestFitness)
		if res.BestFitness < prevBest-1e-12 {
			sinceBest = 0
		} else {
			sinceBest++
			if opt.Patience > 0 && sinceBest >= opt.Patience {
				break
			}
		}
	}
	for g, v := range res.History {
		if v <= res.BestFitness*1.005+1e-12 {
			res.Converged = g + 1
			break
		}
	}
	opt.Obs.Series("ga.best").AddRun(res.History)
	return res
}

// tournament returns the index of the best of k random individuals.
func tournament(fit []float64, k int, rng *rand.Rand) int {
	best := rng.Intn(len(fit))
	for i := 1; i < k; i++ {
		c := rng.Intn(len(fit))
		if fit[c] < fit[best] {
			best = c
		}
	}
	return best
}

// crossover performs uniform crossover with probability rate; otherwise
// the parents are copied unchanged.
func crossover(a, b []float64, rate float64, rng *rand.Rand) ([]float64, []float64) {
	c1 := append([]float64(nil), a...)
	c2 := append([]float64(nil), b...)
	if rng.Float64() < rate {
		for i := range c1 {
			if rng.Float64() < 0.5 {
				c1[i], c2[i] = c2[i], c1[i]
			}
		}
	}
	return c1, c2
}

// mutate resamples each gene with the configured probability.
func mutate(space *conf.Space, x []float64, rate float64, rng *rand.Rand) {
	for i := range x {
		if rng.Float64() < rate {
			x[i] = space.Param(i).Random(rng)
		}
	}
}

// bestK returns the indices of the k smallest fitness values.
func bestK(fit []float64, k int) []int {
	if k > len(fit) {
		k = len(fit)
	}
	idx := make([]int, 0, k)
	for c := 0; c < k; c++ {
		best := -1
		for i, f := range fit {
			if contains(idx, i) {
				continue
			}
			if best < 0 || f < fit[best] {
				best = i
			}
		}
		idx = append(idx, best)
	}
	return idx
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func clampVec(space *conf.Space, x []float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		out[i] = space.Param(i).Clamp(x[i])
	}
	return out
}
