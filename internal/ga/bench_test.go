package ga

import (
	"testing"

	"repro/internal/conf"
)

// BenchmarkMinimizePaperScale measures one full GA search with the paper's
// settings (popSize 100 × 100 generations) over a cheap objective —
// isolating the GA machinery from model prediction cost.
func BenchmarkMinimizePaperScale(b *testing.B) {
	space := conf.StandardSpace()
	obj := sphere(space)
	opt := Options{PopSize: 100, Generations: 100, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Minimize(space, obj, nil, opt)
	}
}

// BenchmarkGeneration measures a single small generation.
func BenchmarkGeneration(b *testing.B) {
	space := conf.StandardSpace()
	obj := sphere(space)
	opt := Options{PopSize: 50, Generations: 1, Seed: 1}
	for i := 0; i < b.N; i++ {
		Minimize(space, obj, nil, opt)
	}
}
