package ga

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/conf"
	"repro/internal/hm"
	"repro/internal/model"
)

// benchModel lazily trains one HM model over the standard configuration
// space — the objective a real DAC search minimizes.
var benchModel = sync.OnceValue(func() *hm.Model {
	space := conf.StandardSpace()
	rng := rand.New(rand.NewSource(1))
	ds := model.NewDataset(nil)
	for i := 0; i < 1200; i++ {
		x := space.Random(rng).Vector()
		t := 20 + 3*x[0] + x[1]*0.5
		for _, v := range x {
			t += 0.01 * v
		}
		ds.Add(x, t*(1+0.05*rng.NormFloat64()))
	}
	// The paper's model budget (nt=3600, hierarchical order up to 2) with
	// early stopping defeated: the searcher must pay the full ensemble on
	// every prediction, as it does for real Spark programs whose accuracy
	// never rounds to 100%.
	m, err := hm.Train(ds, hm.Options{Trees: 3600, LearningRate: 0.05, TreeComplexity: 5,
		TargetAccuracy: 0.999, ConvergeWindow: 4000, Seed: 1})
	if err != nil {
		panic(err)
	}
	return m
})

// BenchmarkGASearch measures one full paper-setup search (popSize 100 ×
// 100 generations) against a trained HM model — the searching column of
// Table 3. The serial leg is the pre-optimization reference (per-row
// objective calls, no cache, one worker); the parallel leg is the
// batched pipeline: genome-memoized fitness, tree-at-a-time batch
// prediction, worker-pool evaluation. Both return identical results
// (see batch_test.go).
func BenchmarkGASearch(b *testing.B) {
	space := conf.StandardSpace()
	m := benchModel()
	for _, bc := range []struct {
		name string
		mut  func(*Options)
	}{
		{"serial", func(o *Options) { o.Workers = 1; o.NoCache = true }},
		{"parallel", func(o *Options) { o.BatchObj = m.PredictBatch }},
	} {
		opt := Options{PopSize: 100, Generations: 100, Seed: 1}
		bc.mut(&opt)
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			var last Result
			for i := 0; i < b.N; i++ {
				last = Minimize(space, m.Predict, nil, opt)
			}
			b.ReportMetric(float64(last.Evaluations), "evals")
			b.ReportMetric(float64(last.CacheHits), "hits")
		})
	}
}

// BenchmarkMinimizePaperScale measures one full GA search with the paper's
// settings (popSize 100 × 100 generations) over a cheap objective —
// isolating the GA machinery from model prediction cost.
func BenchmarkMinimizePaperScale(b *testing.B) {
	space := conf.StandardSpace()
	obj := sphere(space)
	opt := Options{PopSize: 100, Generations: 100, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Minimize(space, obj, nil, opt)
	}
}

// BenchmarkGeneration measures a single small generation.
func BenchmarkGeneration(b *testing.B) {
	space := conf.StandardSpace()
	obj := sphere(space)
	opt := Options{PopSize: 50, Generations: 1, Seed: 1}
	for i := 0; i < b.N; i++ {
		Minimize(space, obj, nil, opt)
	}
}
