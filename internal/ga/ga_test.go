package ga

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/conf"
)

// sphere is a smooth objective whose optimum is each parameter's midpoint.
func sphere(space *conf.Space) Objective {
	return func(x []float64) float64 {
		s := 0.0
		for i, v := range x {
			p := space.Param(i)
			mid := (p.Min + p.Max) / 2
			span := p.Span()
			if span == 0 {
				continue
			}
			d := (v - mid) / span
			s += d * d
		}
		return s
	}
}

func quickOpt() Options {
	return Options{PopSize: 40, Generations: 40, Seed: 1}
}

func TestMinimizeImprovesOverRandom(t *testing.T) {
	space := conf.StandardSpace()
	obj := sphere(space)
	res := Minimize(space, obj, nil, quickOpt())
	// Compare against the best of an equal number of random samples.
	rng := rand.New(rand.NewSource(2))
	bestRandom := math.Inf(1)
	for i := 0; i < res.Evaluations; i++ {
		if f := obj(space.Random(rng).Vector()); f < bestRandom {
			bestRandom = f
		}
	}
	if res.BestFitness >= bestRandom {
		t.Fatalf("GA best %.4f not better than random best %.4f at equal budget",
			res.BestFitness, bestRandom)
	}
}

func TestHistoryMonotone(t *testing.T) {
	space := conf.StandardSpace()
	res := Minimize(space, sphere(space), nil, quickOpt())
	if len(res.History) == 0 {
		t.Fatal("no history")
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1]+1e-12 {
			t.Fatalf("best fitness worsened at generation %d: %v -> %v",
				i, res.History[i-1], res.History[i])
		}
	}
	if res.Converged < 1 || res.Converged > len(res.History) {
		t.Errorf("Converged = %d out of range", res.Converged)
	}
}

func TestBestIsLegal(t *testing.T) {
	space := conf.StandardSpace()
	res := Minimize(space, sphere(space), nil, quickOpt())
	if len(res.Best) != space.Len() {
		t.Fatalf("best vector has %d genes, want %d", len(res.Best), space.Len())
	}
	for i, v := range res.Best {
		p := space.Param(i)
		if v < p.Min || v > p.Max {
			t.Errorf("gene %d (%s) = %v outside [%v, %v]", i, p.Name, v, p.Min, p.Max)
		}
	}
}

func TestSeededPopulationUsed(t *testing.T) {
	space := conf.StandardSpace()
	// Seed the whole population with the known optimum; generation 0
	// must already find it.
	opt := quickOpt()
	optimum := make([]float64, space.Len())
	for i := 0; i < space.Len(); i++ {
		p := space.Param(i)
		optimum[i] = p.Clamp((p.Min + p.Max) / 2)
	}
	init := make([][]float64, opt.PopSize)
	for i := range init {
		init[i] = optimum
	}
	res := Minimize(space, sphere(space), init, opt)
	if res.BestFitness > sphere(space)(optimum)+1e-9 {
		t.Fatalf("seeded optimum lost: %v", res.BestFitness)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	space := conf.StandardSpace()
	a := Minimize(space, sphere(space), nil, quickOpt())
	b := Minimize(space, sphere(space), nil, quickOpt())
	if a.BestFitness != b.BestFitness {
		t.Fatal("same seed produced different results")
	}
	opt := quickOpt()
	opt.Seed = 99
	c := Minimize(space, sphere(space), nil, opt)
	if a.BestFitness == c.BestFitness && a.Evaluations == c.Evaluations {
		t.Log("different seeds landed on identical fitness (possible but unlikely)")
	}
}

func TestPatienceStopsEarly(t *testing.T) {
	space := conf.StandardSpace()
	opt := quickOpt()
	opt.Generations = 200
	opt.Patience = 3
	res := Minimize(space, func(x []float64) float64 { return 1 }, nil, opt)
	if len(res.History) >= 200 {
		t.Fatalf("constant objective ran %d generations despite patience", len(res.History))
	}
}

func TestTournamentPicksBetter(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fit := []float64{5, 1, 9, 3}
	counts := make([]int, len(fit))
	for i := 0; i < 2000; i++ {
		counts[tournament(fit, 3, rng)]++
	}
	if counts[1] <= counts[2] {
		t.Fatalf("best individual selected %d times, worst %d", counts[1], counts[2])
	}
}

func TestCrossoverPreservesGenePool(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := []float64{1, 2, 3, 4}
	b := []float64{5, 6, 7, 8}
	c1, c2 := crossover(a, b, 1.0, rng)
	for i := range a {
		ok1 := c1[i] == a[i] || c1[i] == b[i]
		ok2 := c2[i] == a[i] || c2[i] == b[i]
		sum := c1[i] + c2[i]
		if !ok1 || !ok2 || sum != a[i]+b[i] {
			t.Fatalf("gene %d not a swap: %v %v", i, c1[i], c2[i])
		}
	}
	// Parents untouched.
	if a[0] != 1 || b[0] != 5 {
		t.Fatal("crossover mutated parents")
	}
}

func TestMutationRateRoughlyRespected(t *testing.T) {
	space := conf.StandardSpace()
	rng := rand.New(rand.NewSource(5))
	changed := 0
	trials := 500
	for k := 0; k < trials; k++ {
		x := space.Default().Vector()
		orig := append([]float64(nil), x...)
		mutate(space, x, 0.01, rng)
		for i := range x {
			if x[i] != orig[i] {
				changed++
			}
		}
	}
	rate := float64(changed) / float64(trials*space.Len())
	// Re-drawing a discrete gene can land on the same value, so the
	// observed change rate is at most the mutation rate.
	if rate > 0.012 {
		t.Fatalf("observed mutation rate %.4f too high", rate)
	}
	if rate < 0.004 {
		t.Fatalf("observed mutation rate %.4f too low", rate)
	}
}

func TestBestK(t *testing.T) {
	fit := []float64{4, 1, 3, 2}
	idx := bestK(fit, 2)
	if len(idx) != 2 || idx[0] != 1 || idx[1] != 3 {
		t.Fatalf("bestK = %v", idx)
	}
	if got := bestK(fit, 10); len(got) != 4 {
		t.Fatalf("bestK over-length = %v", got)
	}
}

// Property: the best fitness never exceeds any evaluated seed's fitness.
func TestBestNoWorseThanSeedsProperty(t *testing.T) {
	space := conf.StandardSpace()
	obj := sphere(space)
	rng := rand.New(rand.NewSource(6))
	f := func(int64) bool {
		seed := space.Random(rng).Vector()
		opt := Options{PopSize: 10, Generations: 3, Seed: rng.Int63()}
		res := Minimize(space, obj, [][]float64{seed}, opt)
		return res.BestFitness <= obj(seed)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
