package ga

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/conf"
)

// TestSharedCacheSameResult pins the sharing contract: a Minimize run
// against a pre-warmed shared cache must return exactly the result of a
// run with a private cache — only the Evaluations/CacheHits split moves,
// and it moves exactly (every lookup is either a real objective call or a
// counted hit).
func TestSharedCacheSameResult(t *testing.T) {
	space := conf.StandardSpace()
	obj := sphere(space)
	opt := quickOpt()

	ref := Minimize(space, obj, nil, opt)

	shared := NewGenomeCache()
	optS := opt
	optS.Cache = shared
	first := Minimize(space, obj, nil, optS)
	if !reflect.DeepEqual(first.Best, ref.Best) || first.BestFitness != ref.BestFitness ||
		!reflect.DeepEqual(first.History, ref.History) {
		t.Fatal("shared-cache run diverged from the private-cache run")
	}
	if first.Evaluations != ref.Evaluations || first.CacheHits != ref.CacheHits {
		t.Fatalf("cold shared cache changed the eval split: evals %d/%d hits %d/%d",
			first.Evaluations, ref.Evaluations, first.CacheHits, ref.CacheHits)
	}

	// A second identical run replays everything: zero objective calls,
	// every lookup a hit, identical result.
	second := Minimize(space, obj, nil, optS)
	if !reflect.DeepEqual(second.Best, ref.Best) || second.BestFitness != ref.BestFitness {
		t.Fatal("warm shared-cache run diverged")
	}
	if second.Evaluations != 0 {
		t.Fatalf("warm cache still evaluated %d genomes", second.Evaluations)
	}
	if second.Evaluations+second.CacheHits != ref.Evaluations+ref.CacheHits {
		t.Fatalf("lookup count drifted: %d+%d != %d+%d",
			second.Evaluations, second.CacheHits, ref.Evaluations, ref.CacheHits)
	}
	if shared.Len() != ref.Evaluations {
		t.Fatalf("cache holds %d genomes, want the %d evaluated", shared.Len(), ref.Evaluations)
	}
}

// TestSharedCacheConcurrentSearches runs several searches of the same
// objective against one shared cache concurrently — the daemon's search
// worker pool — and requires every one to reproduce the private-cache
// reference bit for bit. Run under -race, this also proves the sharded
// cache is safe for concurrent use.
func TestSharedCacheConcurrentSearches(t *testing.T) {
	space := conf.StandardSpace()
	obj := sphere(space)
	opt := quickOpt()
	opt.PopSize, opt.Generations = 24, 12

	refs := make([]Result, 3)
	for s := range refs {
		o := opt
		o.Seed = int64(100 + s)
		refs[s] = Minimize(space, obj, nil, o)
	}

	shared := NewGenomeCache()
	const callers = 6
	got := make([]Result, callers)
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			o := opt
			o.Seed = int64(100 + c%len(refs))
			o.Cache = shared
			got[c] = Minimize(space, obj, nil, o)
		}(c)
	}
	wg.Wait()
	for c := 0; c < callers; c++ {
		ref := refs[c%len(refs)]
		if !reflect.DeepEqual(got[c].Best, ref.Best) || got[c].BestFitness != ref.BestFitness {
			t.Fatalf("caller %d: concurrent shared-cache search diverged from its reference", c)
		}
	}
}

// TestGenomeCacheShards exercises the cache primitive directly: values
// round-trip, misses miss, and Len aggregates across shards.
func TestGenomeCacheShards(t *testing.T) {
	c := NewGenomeCache()
	if len(c.shards)&(len(c.shards)-1) != 0 {
		t.Fatalf("shard count %d is not a power of two", len(c.shards))
	}
	keys := []string{"", "a", "ab", "genome-1", "genome-2", "\x00\x01\x02"}
	for i, k := range keys {
		c.Store(k, float64(i))
	}
	for i, k := range keys {
		v, ok := c.Lookup(k)
		if !ok || v != float64(i) {
			t.Fatalf("key %q: got (%v,%v), want (%v,true)", k, v, ok, float64(i))
		}
	}
	if _, ok := c.Lookup("missing"); ok {
		t.Fatal("phantom hit for a never-stored key")
	}
	if c.Len() != len(keys) {
		t.Fatalf("Len=%d, want %d", c.Len(), len(keys))
	}
}
