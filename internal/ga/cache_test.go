package ga

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/conf"
	"repro/internal/obs"
)

// TestSharedCacheSameResult pins the sharing contract: a Minimize run
// against a pre-warmed shared cache must return exactly the result of a
// run with a private cache — only the Evaluations/CacheHits split moves,
// and it moves exactly (every lookup is either a real objective call or a
// counted hit).
func TestSharedCacheSameResult(t *testing.T) {
	space := conf.StandardSpace()
	obj := sphere(space)
	opt := quickOpt()

	ref := Minimize(space, obj, nil, opt)

	shared := NewGenomeCache()
	optS := opt
	optS.Cache = shared
	first := Minimize(space, obj, nil, optS)
	if !reflect.DeepEqual(first.Best, ref.Best) || first.BestFitness != ref.BestFitness ||
		!reflect.DeepEqual(first.History, ref.History) {
		t.Fatal("shared-cache run diverged from the private-cache run")
	}
	if first.Evaluations != ref.Evaluations || first.CacheHits != ref.CacheHits {
		t.Fatalf("cold shared cache changed the eval split: evals %d/%d hits %d/%d",
			first.Evaluations, ref.Evaluations, first.CacheHits, ref.CacheHits)
	}

	// A second identical run replays everything: zero objective calls,
	// every lookup a hit, identical result.
	second := Minimize(space, obj, nil, optS)
	if !reflect.DeepEqual(second.Best, ref.Best) || second.BestFitness != ref.BestFitness {
		t.Fatal("warm shared-cache run diverged")
	}
	if second.Evaluations != 0 {
		t.Fatalf("warm cache still evaluated %d genomes", second.Evaluations)
	}
	if second.Evaluations+second.CacheHits != ref.Evaluations+ref.CacheHits {
		t.Fatalf("lookup count drifted: %d+%d != %d+%d",
			second.Evaluations, second.CacheHits, ref.Evaluations, ref.CacheHits)
	}
	if shared.Len() != ref.Evaluations {
		t.Fatalf("cache holds %d genomes, want the %d evaluated", shared.Len(), ref.Evaluations)
	}
}

// TestSharedCacheConcurrentSearches runs several searches of the same
// objective against one shared cache concurrently — the daemon's search
// worker pool — and requires every one to reproduce the private-cache
// reference bit for bit. Run under -race, this also proves the sharded
// cache is safe for concurrent use.
func TestSharedCacheConcurrentSearches(t *testing.T) {
	space := conf.StandardSpace()
	obj := sphere(space)
	opt := quickOpt()
	opt.PopSize, opt.Generations = 24, 12

	refs := make([]Result, 3)
	for s := range refs {
		o := opt
		o.Seed = int64(100 + s)
		refs[s] = Minimize(space, obj, nil, o)
	}

	shared := NewGenomeCache()
	const callers = 6
	got := make([]Result, callers)
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			o := opt
			o.Seed = int64(100 + c%len(refs))
			o.Cache = shared
			got[c] = Minimize(space, obj, nil, o)
		}(c)
	}
	wg.Wait()
	for c := 0; c < callers; c++ {
		ref := refs[c%len(refs)]
		if !reflect.DeepEqual(got[c].Best, ref.Best) || got[c].BestFitness != ref.BestFitness {
			t.Fatalf("caller %d: concurrent shared-cache search diverged from its reference", c)
		}
	}
}

// TestGenomeCacheShards exercises the cache primitive directly: values
// round-trip, misses miss, and Len aggregates across shards.
func TestGenomeCacheShards(t *testing.T) {
	c := NewGenomeCache()
	if len(c.shards)&(len(c.shards)-1) != 0 {
		t.Fatalf("shard count %d is not a power of two", len(c.shards))
	}
	keys := []string{"", "a", "ab", "genome-1", "genome-2", "\x00\x01\x02"}
	for i, k := range keys {
		c.Store(k, float64(i))
	}
	for i, k := range keys {
		v, ok := c.Lookup(k)
		if !ok || v != float64(i) {
			t.Fatalf("key %q: got (%v,%v), want (%v,true)", k, v, ok, float64(i))
		}
	}
	if _, ok := c.Lookup("missing"); ok {
		t.Fatal("phantom hit for a never-stored key")
	}
	if c.Len() != len(keys) {
		t.Fatalf("Len=%d, want %d", c.Len(), len(keys))
	}
}

// TestGenomeCacheCap checks the bounded cache: the entry count stays
// within the cap, updates of existing keys never evict, eviction makes
// room for new keys, and the evictions counter tracks dropped entries.
func TestGenomeCacheCap(t *testing.T) {
	evictions := obs.NewRegistry().Counter("evictions")
	const cap = 64
	c := NewGenomeCacheCap(cap, evictions)
	perShard := c.perShard
	if perShard < 1 {
		t.Fatalf("perShard=%d", perShard)
	}
	limit := perShard * len(c.shards)
	for i := 0; i < 10*cap; i++ {
		c.Store(fmt.Sprintf("genome-%d", i), float64(i))
		if c.Len() > limit {
			t.Fatalf("after %d stores: Len=%d exceeds limit %d", i+1, c.Len(), limit)
		}
	}
	if evictions.Value() == 0 {
		t.Fatal("no evictions counted after 10x-cap stores")
	}
	// Updating a resident key in a full shard must not evict.
	var resident string
	for i := 10*cap - 1; i >= 0; i-- {
		k := fmt.Sprintf("genome-%d", i)
		if _, ok := c.Lookup(k); ok {
			resident = k
			break
		}
	}
	before := evictions.Value()
	c.Store(resident, -1)
	if evictions.Value() != before {
		t.Fatal("updating a resident key evicted entries")
	}
	if v, ok := c.Lookup(resident); !ok || v != -1 {
		t.Fatalf("resident key lost its update: (%v,%v)", v, ok)
	}
	// Recently stored keys should still be useful: at least one of the
	// last perShard stores survives.
	if c.Len() == 0 {
		t.Fatal("cache emptied itself")
	}
	// Unbounded cache never evicts.
	u := NewGenomeCacheCap(0, nil)
	for i := 0; i < 4*cap; i++ {
		u.Store(fmt.Sprintf("genome-%d", i), float64(i))
	}
	if u.Len() != 4*cap {
		t.Fatalf("unbounded cache evicted: Len=%d, want %d", u.Len(), 4*cap)
	}
}
