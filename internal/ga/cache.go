package ga

import (
	"runtime"
	"sync"

	"repro/internal/obs"
)

// GenomeCache memoizes objective values keyed on the exact gene bits of a
// genome. It is sharded by genome hash — one mutex-guarded map per shard,
// with the shard count rounded up to a power of two at or above
// GOMAXPROCS — so concurrent searches sharing one cache (the daemon runs
// several search jobs at once) spread their lookups across shards instead
// of contending on a single map.
//
// A cache may only be shared between searches whose objectives are
// identical: the key is the genome alone, so two searches minimizing
// different functions (a different model, or the same model at a
// different target datasize) would poison each other's values. Minimize
// creates a private cache per run unless Options.Cache injects a shared
// one.
type GenomeCache struct {
	shards []cacheShard
	mask   uint64
	// perShard bounds each shard's entry count (0 = unbounded). On
	// overflow a shard evicts roughly half its entries — map iteration
	// order stands in for random replacement, which is cheap (no
	// recency bookkeeping on the hot Lookup path) and good enough for a
	// memo whose keys recur with no particular locality.
	perShard  int
	evictions *obs.Counter // nil-safe; counts evicted entries
}

type cacheShard struct {
	mu sync.Mutex
	m  map[string]float64
}

// NewGenomeCache returns an empty unbounded cache with
// GOMAXPROCS-proportional sharding.
func NewGenomeCache() *GenomeCache {
	return NewGenomeCacheCap(0, nil)
}

// NewGenomeCacheCap returns an empty cache holding at most maxEntries
// memoized genomes (0 or negative = unbounded), spread over
// GOMAXPROCS-proportional shards. evictions, when non-nil, is
// incremented once per entry dropped by the cap.
func NewGenomeCacheCap(maxEntries int, evictions *obs.Counter) *GenomeCache {
	n := 1
	for n < runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	c := &GenomeCache{shards: make([]cacheShard, n), mask: uint64(n - 1), evictions: evictions}
	if maxEntries > 0 {
		c.perShard = (maxEntries + n - 1) / n
		if c.perShard < 1 {
			c.perShard = 1
		}
	}
	for i := range c.shards {
		c.shards[i].m = make(map[string]float64)
	}
	return c
}

// FNV-1a constants, matching hash/fnv's 64a variant.
const (
	cacheFNVOffset uint64 = 14695981039346656037
	cacheFNVPrime  uint64 = 1099511628211
)

// shard picks the shard for a genome key by FNV-1a hash.
func (c *GenomeCache) shard(key string) *cacheShard {
	h := cacheFNVOffset
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * cacheFNVPrime
	}
	return &c.shards[h&c.mask]
}

// Lookup returns the memoized value for the genome key, if present.
func (c *GenomeCache) Lookup(key string) (float64, bool) {
	s := c.shard(key)
	s.mu.Lock()
	v, ok := s.m[key]
	s.mu.Unlock()
	return v, ok
}

// Store memoizes the value for the genome key, evicting ~half of the
// key's shard first when storing a new key into a full shard.
func (c *GenomeCache) Store(key string, v float64) {
	s := c.shard(key)
	s.mu.Lock()
	if c.perShard > 0 && len(s.m) >= c.perShard {
		if _, exists := s.m[key]; !exists {
			drop := len(s.m) - c.perShard/2
			evicted := int64(0)
			for k := range s.m {
				if evicted >= int64(drop) {
					break
				}
				delete(s.m, k)
				evicted++
			}
			c.evictions.Add(evicted)
		}
	}
	s.m[key] = v
	s.mu.Unlock()
}

// Len returns the number of memoized genomes across all shards.
func (c *GenomeCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}
