package ga

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/conf"
)

// batchSphere is the BatchObjective form of sphere.
func batchSphere(space *conf.Space) BatchObjective {
	obj := sphere(space)
	return func(X [][]float64, out []float64) {
		for i, x := range X {
			out[i] = obj(x)
		}
	}
}

// sameSearch asserts two results agree on everything the tuner consumes:
// best configuration, fitness, convergence history.
func sameSearch(t *testing.T, label string, ref, got Result) {
	t.Helper()
	if !reflect.DeepEqual(ref.Best, got.Best) {
		t.Fatalf("%s: best config differs", label)
	}
	if ref.BestFitness != got.BestFitness {
		t.Fatalf("%s: best fitness %v vs %v", label, ref.BestFitness, got.BestFitness)
	}
	if !reflect.DeepEqual(ref.History, got.History) {
		t.Fatalf("%s: history differs", label)
	}
	if ref.Converged != got.Converged {
		t.Fatalf("%s: converged %d vs %d", label, ref.Converged, got.Converged)
	}
}

// TestEvaluationModesEquivalent pins the tentpole contract: worker-pool
// evaluation, the genome cache, and the batch objective must each leave
// the search result bit-identical to the serial uncached reference, for
// several seeds.
func TestEvaluationModesEquivalent(t *testing.T) {
	space := conf.StandardSpace()
	for _, seed := range []int64{1, 7, 42} {
		base := Options{PopSize: 30, Generations: 30, Seed: seed}
		refOpt := base
		refOpt.Workers = 1
		refOpt.NoCache = true
		ref := Minimize(space, sphere(space), nil, refOpt)
		if ref.Evaluations != 30*31 {
			t.Fatalf("seed %d: reference made %d evaluations, want %d", seed, ref.Evaluations, 30*31)
		}

		for _, tc := range []struct {
			label string
			mut   func(*Options)
		}{
			{"workers=2", func(o *Options) { o.Workers = 2; o.NoCache = true }},
			{"workers=gomaxprocs", func(o *Options) { o.NoCache = true }},
			{"cache", func(o *Options) { o.Workers = 1 }},
			{"cache+workers", func(o *Options) {}},
			{"batchobj", func(o *Options) { o.Workers = 1; o.NoCache = true; o.BatchObj = batchSphere(space) }},
			{"batchobj+cache+workers", func(o *Options) { o.BatchObj = batchSphere(space) }},
		} {
			opt := base
			tc.mut(&opt)
			got := Minimize(space, sphere(space), nil, opt)
			sameSearch(t, tc.label, ref, got)
			if opt.NoCache {
				if got.Evaluations != ref.Evaluations || got.CacheHits != 0 {
					t.Fatalf("%s seed %d: evals %d hits %d, want %d/0",
						tc.label, seed, got.Evaluations, got.CacheHits, ref.Evaluations)
				}
			} else {
				if got.Evaluations+got.CacheHits != ref.Evaluations {
					t.Fatalf("%s seed %d: evals %d + hits %d != %d",
						tc.label, seed, got.Evaluations, got.CacheHits, ref.Evaluations)
				}
				if got.CacheHits == 0 {
					t.Fatalf("%s seed %d: cache never hit (elites alone guarantee hits)", tc.label, seed)
				}
			}
		}
	}
}

// TestSearchDeterministicAcrossGOMAXPROCS checks the default (parallel,
// cached) search is scheduling-independent, not just worker-count
// independent.
func TestSearchDeterministicAcrossGOMAXPROCS(t *testing.T) {
	space := conf.StandardSpace()
	opt := Options{PopSize: 25, Generations: 25, Seed: 3}

	prev := runtime.GOMAXPROCS(1)
	one := Minimize(space, sphere(space), nil, opt)
	runtime.GOMAXPROCS(prev)
	many := Minimize(space, sphere(space), nil, opt)
	sameSearch(t, "gomaxprocs", one, many)
	if one.Evaluations != many.Evaluations || one.CacheHits != many.CacheHits {
		t.Fatalf("eval accounting differs: %d/%d vs %d/%d",
			one.Evaluations, one.CacheHits, many.Evaluations, many.CacheHits)
	}
}

// TestCacheKeyExactBits checks the memo key distinguishes genomes that
// differ in any bit (no quantization, no collisions on close values).
func TestCacheKeyExactBits(t *testing.T) {
	space := conf.StandardSpace()
	calls := 0
	obj := func(x []float64) float64 {
		calls++
		s := 0.0
		for _, v := range x {
			s += v
		}
		return s
	}
	opt := Options{PopSize: 4, Generations: 1, Seed: 11, Workers: 1, MutationRate: 1e-12}
	res := Minimize(space, obj, nil, opt)
	if res.Evaluations != calls {
		t.Fatalf("Evaluations=%d but objective ran %d times", res.Evaluations, calls)
	}
	if math.IsInf(res.BestFitness, 0) {
		t.Fatal("no best recorded")
	}
}
