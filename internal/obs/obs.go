// Package obs is the tuning pipeline's observability layer: atomic
// counters, time-bucketed histograms, span-style wall-clock timers with
// parent/child nesting, and a Registry that renders everything as a
// human-readable report or JSON.
//
// The package is dependency-free and built around two properties the
// pipeline requires:
//
//   - Goroutine safety. The collecting component fans simulator runs out
//     across GOMAXPROCS goroutines, so every metric mutation is an atomic
//     operation (or, for the structured types, a short critical section).
//
//   - A near-zero-cost off switch. Every metric method is safe to call on
//     a nil receiver and does nothing, and a nil *Registry hands out nil
//     metrics. Instrumented code therefore holds plain metric pointers and
//     calls them unconditionally; when no registry is attached the whole
//     instrumentation path collapses to a handful of nil checks, cheap
//     enough to stay on in benchmarks (see the overhead guard test in
//     internal/sparksim).
//
// Hot paths should resolve their metrics once (Registry.Counter and
// friends take a lock to get-or-create by name) and hold the pointers, as
// internal/sparksim's Instrument does.
package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically adjustable integer metric. The zero value is
// ready to use; a nil *Counter ignores all writes.
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by d. No-op on a nil receiver.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.n.Add(d)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// FloatCounter accumulates a float64 total (megabytes spilled, simulated
// seconds, ...) with lock-free compare-and-swap adds. A nil *FloatCounter
// ignores all writes.
type FloatCounter struct {
	bits atomic.Uint64
}

// Add accumulates v. No-op on a nil receiver.
func (c *FloatCounter) Add(v float64) {
	if c == nil {
		return
	}
	for {
		old := c.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Value returns the accumulated total (0 on a nil receiver).
func (c *FloatCounter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Histogram distributes observations over a fixed set of bucket
// boundaries. Bucket i counts observations v <= Bounds[i]; one overflow
// bucket catches the rest. Observe is lock-free; a nil *Histogram ignores
// all writes.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is overflow
	count  atomic.Int64
	sum    FloatCounter
	min    atomic.Uint64 // float64 bits; valid only when count > 0
	max    atomic.Uint64
}

// newHistogram builds a histogram over sorted bucket bounds.
func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// DefaultTimeBounds are the bucket boundaries Registry.Histogram uses when
// none are given: exponential from 1ms to ~18h, suiting both wall-clock
// fits and simulated run times (seconds).
var DefaultTimeBounds = []float64{
	0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30,
	100, 300, 1000, 3000, 10000, 30000, 65536,
}

// DefaultLatencyBounds suit request-serving latencies in seconds: the
// daemon's hot predict path answers in microseconds while its cold
// Load-per-request fallback takes milliseconds, so the buckets run
// 1µs–10s on a 1-2.5-5 ladder. DefaultTimeBounds would fold the entire
// hot path into its first bucket and report a useless p99.
var DefaultLatencyBounds = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Observe records one sample. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	casFloorCeil(&h.min, v, true)
	casFloorCeil(&h.max, v, false)
}

// casFloorCeil lowers (floor) or raises (!floor) the stored float bits to v.
func casFloorCeil(a *atomic.Uint64, v float64, floor bool) {
	for {
		old := a.Load()
		cur := math.Float64frombits(old)
		if (floor && v >= cur) || (!floor && v <= cur) {
			return
		}
		if a.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the observation total (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Mean returns the observation mean (0 when empty or nil).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 <= q <= 1)
// from the bucket counts: the bound of the bucket holding the q-th sample
// (the exact max for the overflow bucket). Returns 0 when empty or nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return math.Float64frombits(h.max.Load())
		}
	}
	return math.Float64frombits(h.max.Load())
}

// Min and Max return the extreme observations (0 when empty or nil).
func (h *Histogram) Min() float64 {
	if h.Count() == 0 {
		return 0
	}
	return math.Float64frombits(h.min.Load())
}

// Max returns the largest observation (0 when empty or nil).
func (h *Histogram) Max() float64 {
	if h.Count() == 0 {
		return 0
	}
	return math.Float64frombits(h.max.Load())
}

// HistogramSnapshot is a histogram's JSON form.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	// Bounds and Counts describe the non-empty buckets: Counts[i] samples
	// fell at or below Bounds[i]. The overflow bucket reports the observed
	// Max as its bound so the snapshot stays finite (JSON has no +Inf).
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []int64   `json:"counts,omitempty"`
}

// snapshot captures the histogram's current state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.Count(), Sum: h.Sum(), Mean: h.Mean(),
		Min: h.Min(), Max: h.Max(),
		P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
	}
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		bound := s.Max
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		s.Bounds = append(s.Bounds, bound)
		s.Counts = append(s.Counts, n)
	}
	return s
}

// Series records append-only runs of float64 values — the GA's
// best-so-far trajectory per Minimize call, for example. A nil *Series
// ignores all writes.
type Series struct {
	mu   sync.Mutex
	runs [][]float64
}

// AddRun appends one complete run (the values are copied).
func (s *Series) AddRun(values []float64) {
	if s == nil {
		return
	}
	cp := append([]float64(nil), values...)
	s.mu.Lock()
	s.runs = append(s.runs, cp)
	s.mu.Unlock()
}

// Runs returns a deep copy of the recorded runs (nil on a nil receiver).
func (s *Series) Runs() [][]float64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([][]float64, len(s.runs))
	for i, r := range s.runs {
		out[i] = append([]float64(nil), r...)
	}
	return out
}
