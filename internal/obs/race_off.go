//go:build !race

package obs

// RaceEnabled reports whether the binary was built with the race
// detector. Timing-sensitive guard tests consult it: under -race, atomic
// operations cost an order of magnitude more, so overhead bounds that
// hold in production builds do not apply.
const RaceEnabled = false
