package obs

import (
	"math/rand"
	"testing"
)

// The overhead benchmarks quantify the two costs that decide whether
// instrumentation can stay on in benchmarks: the live atomic path and the
// nil fast path (no registry attached). The nil variants should be within
// a nanosecond or two of an empty loop; see also the end-to-end guard
// test in internal/sparksim.

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("n")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAddNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkFloatAdd(b *testing.B) {
	f := NewRegistry().Float("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Add(1.5)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h", nil)
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = rng.Float64() * 1000
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(vals[i%len(vals)])
	}
}

func BenchmarkHistogramObserveNil(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1)
	}
}

func BenchmarkSpanChildEnd(b *testing.B) {
	root := NewRegistry().StartSpan("root")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root.Child("work").End()
	}
}

func BenchmarkSpanChildEndNil(b *testing.B) {
	var root *Span
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root.Child("work").End()
	}
}

func BenchmarkCounterAddParallel(b *testing.B) {
	c := NewRegistry().Counter("n")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}
