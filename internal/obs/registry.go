package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Registry owns a namespace of metrics. All getters get-or-create by name
// under a lock — resolve metrics once and hold the pointers in hot paths.
// A nil *Registry is the off switch: it hands out nil metrics (whose
// methods no-op) and renders empty reports, so instrumented code never
// branches on whether observability is enabled.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	floats   map[string]*FloatCounter
	hists    map[string]*Histogram
	series   map[string]*Series
	roots    map[string]*spanNode
	order    []string // root span names in first-start order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the named counter, creating it on first use. Returns
// nil on a nil receiver.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Float returns the named float accumulator, creating it on first use.
// Returns nil on a nil receiver.
func (r *Registry) Float(name string) *FloatCounter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.floats == nil {
		r.floats = make(map[string]*FloatCounter)
	}
	c, ok := r.floats[name]
	if !ok {
		c = &FloatCounter{}
		r.floats[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (nil bounds select DefaultTimeBounds).
// Returns nil on a nil receiver.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hists == nil {
		r.hists = make(map[string]*Histogram)
	}
	h, ok := r.hists[name]
	if !ok {
		if bounds == nil {
			bounds = DefaultTimeBounds
		}
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Series returns the named series, creating it on first use. Returns nil
// on a nil receiver.
func (r *Registry) Series(name string) *Series {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.series == nil {
		r.series = make(map[string]*Series)
	}
	s, ok := r.series[name]
	if !ok {
		s = &Series{}
		r.series[name] = s
	}
	return s
}

// StartSpan opens an interval on the named root phase. Repeated calls
// with the same name aggregate into one root node. Returns nil on a nil
// receiver.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	if r.roots == nil {
		r.roots = make(map[string]*spanNode)
	}
	n, ok := r.roots[name]
	if !ok {
		n = &spanNode{name: name}
		r.roots[name] = n
		r.order = append(r.order, name)
	}
	r.mu.Unlock()
	return &Span{node: n, start: time.Now()}
}

// Snapshot is the registry's complete state — the JSON metrics schema
// documented in DESIGN.md. Maps are keyed by metric name.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Values     map[string]float64           `json:"values,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Series     map[string][][]float64       `json:"series,omitempty"`
	Spans      []SpanSnapshot               `json:"spans,omitempty"`
}

// Snapshot captures the registry's current state. Safe to call while
// writers are active; each metric is read atomically (the snapshot as a
// whole is not a single atomic cut). Returns a zero Snapshot on nil.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	floats := make(map[string]*FloatCounter, len(r.floats))
	for k, v := range r.floats {
		floats[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	series := make(map[string]*Series, len(r.series))
	for k, v := range r.series {
		series[k] = v
	}
	order := append([]string(nil), r.order...)
	roots := make([]*spanNode, 0, len(order))
	for _, name := range order {
		roots = append(roots, r.roots[name])
	}
	r.mu.Unlock()

	if len(counters) > 0 {
		snap.Counters = make(map[string]int64, len(counters))
		for k, v := range counters {
			snap.Counters[k] = v.Value()
		}
	}
	if len(floats) > 0 {
		snap.Values = make(map[string]float64, len(floats))
		for k, v := range floats {
			snap.Values[k] = v.Value()
		}
	}
	if len(hists) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(hists))
		for k, v := range hists {
			snap.Histograms[k] = v.snapshot()
		}
	}
	if len(series) > 0 {
		snap.Series = make(map[string][][]float64, len(series))
		for k, v := range series {
			snap.Series[k] = v.Runs()
		}
	}
	for _, n := range roots {
		snap.Spans = append(snap.Spans, n.snapshot())
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Report renders the snapshot as a human-readable metrics report: the
// span tree first (per-phase wall-clock), then counters, accumulated
// values, histograms, and series, each sorted by name.
func (r *Registry) Report() string {
	snap := r.Snapshot()
	var b strings.Builder

	if len(snap.Spans) > 0 {
		b.WriteString("phases (wall-clock):\n")
		for _, s := range snap.Spans {
			writeSpan(&b, s, 1)
		}
	}
	if len(snap.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, k := range sortedKeys(snap.Counters) {
			fmt.Fprintf(&b, "  %-42s %d\n", k, snap.Counters[k])
		}
	}
	if len(snap.Values) > 0 {
		b.WriteString("values:\n")
		for _, k := range sortedKeys(snap.Values) {
			fmt.Fprintf(&b, "  %-42s %.3f\n", k, snap.Values[k])
		}
	}
	if len(snap.Histograms) > 0 {
		b.WriteString("histograms:\n")
		for _, k := range sortedKeys(snap.Histograms) {
			h := snap.Histograms[k]
			fmt.Fprintf(&b, "  %-42s n=%d mean=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g\n",
				k, h.Count, h.Mean, h.P50, h.P95, h.P99, h.Max)
		}
	}
	if len(snap.Series) > 0 {
		b.WriteString("series:\n")
		for _, k := range sortedKeys(snap.Series) {
			runs := snap.Series[k]
			for i, run := range runs {
				if len(run) == 0 {
					continue
				}
				fmt.Fprintf(&b, "  %-42s run %d: %d points, first=%.4g last=%.4g\n",
					k, i+1, len(run), run[0], run[len(run)-1])
			}
		}
	}
	return b.String()
}

func writeSpan(b *strings.Builder, s SpanSnapshot, depth int) {
	indent := strings.Repeat("  ", depth)
	if s.Count > 1 {
		fmt.Fprintf(b, "%s%-*s %9.3fs  (%d calls)\n", indent, 40-2*depth, s.Name, s.Sec, s.Count)
	} else {
		fmt.Fprintf(b, "%s%-*s %9.3fs\n", indent, 40-2*depth, s.Name, s.Sec)
	}
	for _, c := range s.Children {
		writeSpan(b, c, depth+1)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
