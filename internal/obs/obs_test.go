package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	// Every path must be callable and silent on a nil registry.
	c := r.Counter("a")
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatalf("nil counter value = %d", c.Value())
	}
	f := r.Float("b")
	f.Add(2.5)
	if f.Value() != 0 {
		t.Fatalf("nil float value = %v", f.Value())
	}
	h := r.Histogram("c", nil)
	h.Observe(1)
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram recorded something")
	}
	s := r.Series("d")
	s.AddRun([]float64{1, 2})
	if s.Runs() != nil {
		t.Fatal("nil series recorded something")
	}
	sp := r.StartSpan("e")
	sp.Child("f").End()
	sp.End()
	if got := r.Report(); got != "" {
		t.Fatalf("nil registry report = %q", got)
	}
	snap := r.Snapshot()
	if snap.Counters != nil || snap.Spans != nil {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestCounterAndFloat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("runs")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Fatalf("counter = %d, want 4", c.Value())
	}
	if r.Counter("runs") != c {
		t.Fatal("Counter did not return the existing instance")
	}
	f := r.Float("mb")
	f.Add(1.5)
	f.Add(2.25)
	if f.Value() != 3.75 {
		t.Fatalf("float = %v, want 3.75", f.Value())
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sec", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 2, 3, 20, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 525.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	if h.Min() != 0.5 || h.Max() != 500 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	// Rank 3 of 5 lands in the (1,10] bucket.
	if got := h.Quantile(0.5); got != 10 {
		t.Fatalf("p50 = %v, want 10", got)
	}
	// Rank 5 is in the overflow bucket, reported as the exact max.
	if got := h.Quantile(0.99); got != 500 {
		t.Fatalf("p99 = %v, want 500", got)
	}
	snap := h.snapshot()
	var n int64
	for _, c := range snap.Counts {
		n += c
	}
	if n != 5 {
		t.Fatalf("snapshot bucket counts sum to %d", n)
	}
}

func TestSpanTreeAggregates(t *testing.T) {
	r := NewRegistry()
	root := r.StartSpan("tune")
	for i := 0; i < 3; i++ {
		c := root.Child("search")
		c.End()
	}
	root.Child("collect").End()
	root.End()

	snap := r.Snapshot()
	if len(snap.Spans) != 1 {
		t.Fatalf("roots = %d", len(snap.Spans))
	}
	tune := snap.Spans[0]
	if tune.Name != "tune" || tune.Count != 1 {
		t.Fatalf("root = %+v", tune)
	}
	if len(tune.Children) != 2 {
		t.Fatalf("children = %d", len(tune.Children))
	}
	// First-open order: search before collect.
	if tune.Children[0].Name != "search" || tune.Children[0].Count != 3 {
		t.Fatalf("child 0 = %+v", tune.Children[0])
	}
	if tune.Children[1].Name != "collect" || tune.Children[1].Count != 1 {
		t.Fatalf("child 1 = %+v", tune.Children[1])
	}
}

func TestSeriesRuns(t *testing.T) {
	r := NewRegistry()
	s := r.Series("ga.best")
	s.AddRun([]float64{3, 2, 1})
	s.AddRun([]float64{5})
	runs := s.Runs()
	if len(runs) != 2 || len(runs[0]) != 3 || runs[1][0] != 5 {
		t.Fatalf("runs = %v", runs)
	}
	// The stored run must be a copy.
	src := []float64{9}
	s.AddRun(src)
	src[0] = 0
	if got := s.Runs()[2][0]; got != 9 {
		t.Fatalf("AddRun aliased caller slice: %v", got)
	}
}

func TestReportAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim.runs").Add(7)
	r.Float("sim.spill.mb").Add(12.5)
	r.Histogram("sim.run.simsec", nil).Observe(42)
	r.Series("ga.best").AddRun([]float64{10, 8})
	sp := r.StartSpan("tune")
	sp.Child("model").End()
	sp.End()

	rep := r.Report()
	for _, want := range []string{"phases (wall-clock):", "tune", "model", "sim.runs", "7", "sim.spill.mb", "ga.best", "run 1: 2 points"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("round-tripping JSON: %v", err)
	}
	if snap.Counters["sim.runs"] != 7 {
		t.Fatalf("JSON counters = %v", snap.Counters)
	}
	if snap.Histograms["sim.run.simsec"].Count != 1 {
		t.Fatalf("JSON histogram = %+v", snap.Histograms["sim.run.simsec"])
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Children[0].Name != "model" {
		t.Fatalf("JSON spans = %+v", snap.Spans)
	}
}

// TestConcurrentWriters hammers every metric type from many goroutines;
// run under -race this is the package's own race test, and the totals
// check that no increment is lost.
func TestConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("n")
			f := r.Float("x")
			h := r.Histogram("h", []float64{0.5})
			s := r.Series("s")
			root := r.StartSpan("root")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				f.Add(0.5)
				h.Observe(float64(i % 2))
				child := root.Child("work")
				child.End()
			}
			s.AddRun([]float64{1})
			root.End()
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Float("x").Value(); math.Abs(got-workers*perWorker*0.5) > 1e-6 {
		t.Fatalf("float = %v", got)
	}
	if got := r.Histogram("h", nil).Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d", got)
	}
	if got := len(r.Series("s").Runs()); got != workers {
		t.Fatalf("series runs = %d", got)
	}
	snap := r.Snapshot()
	if snap.Spans[0].Children[0].Count != workers*perWorker {
		t.Fatalf("span count = %d", snap.Spans[0].Children[0].Count)
	}
}
