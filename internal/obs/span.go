package obs

import (
	"sync"
	"time"
)

// Span is one open wall-clock interval of a named pipeline phase,
// started by Registry.StartSpan or a parent's Child call and closed by
// End. Durations aggregate into a tree of named nodes: repeated intervals
// under the same name (the GA search phase runs once per target size, for
// example) merge into one node accumulating total seconds and a count,
// which the report renders as the per-phase breakdown.
//
// Spans are goroutine-safe — workers may open sibling children
// concurrently, and overlapping intervals of the same name each carry
// their own start time. All methods no-op on a nil receiver, so span code
// runs unconditionally whether or not a registry is attached.
type Span struct {
	node  *spanNode
	start time.Time
}

// Child opens an interval on the named child phase. Returns nil on a nil
// receiver.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{node: s.node.child(name), start: time.Now()}
}

// End closes the interval, folding its duration into the phase's
// aggregate. No-op on a nil receiver; ending twice double-counts, so
// don't.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.node.add(time.Since(s.start).Seconds())
}

// spanNode aggregates all intervals recorded under one phase name at one
// tree position.
type spanNode struct {
	name string

	mu       sync.Mutex
	sec      float64
	count    int64
	children map[string]*spanNode
	order    []string // child names in first-open order
}

func (n *spanNode) child(name string) *spanNode {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.children == nil {
		n.children = make(map[string]*spanNode)
	}
	c, ok := n.children[name]
	if !ok {
		c = &spanNode{name: name}
		n.children[name] = c
		n.order = append(n.order, name)
	}
	return c
}

func (n *spanNode) add(sec float64) {
	n.mu.Lock()
	n.sec += sec
	n.count++
	n.mu.Unlock()
}

// SpanSnapshot is a span tree's JSON form.
type SpanSnapshot struct {
	Name string  `json:"name"`
	Sec  float64 `json:"sec"`
	// Count is how many intervals ended under this name.
	Count    int64          `json:"count"`
	Children []SpanSnapshot `json:"children,omitempty"`
}

// snapshot captures the subtree. Open (un-ended) intervals contribute
// nothing — only ended intervals are counted.
func (n *spanNode) snapshot() SpanSnapshot {
	n.mu.Lock()
	snap := SpanSnapshot{Name: n.name, Sec: n.sec, Count: n.count}
	children := make([]*spanNode, 0, len(n.order))
	for _, name := range n.order {
		children = append(children, n.children[name])
	}
	n.mu.Unlock()
	for _, c := range children {
		snap.Children = append(snap.Children, c.snapshot())
	}
	return snap
}
