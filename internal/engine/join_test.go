package engine

import (
	"sort"
	"testing"
)

func TestGroupByKey(t *testing.T) {
	ctx := testCtx()
	data := []Pair[string, int]{{"a", 1}, {"b", 2}, {"a", 3}, {"c", 4}, {"a", 5}}
	grouped, err := GroupByKey(Parallelize(ctx, data))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := grouped.Collect()
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string][]int{}
	for _, kv := range rows {
		sort.Ints(kv.Value)
		byKey[kv.Key] = kv.Value
	}
	if len(byKey["a"]) != 3 || byKey["a"][0] != 1 || byKey["a"][2] != 5 {
		t.Fatalf("group a = %v", byKey["a"])
	}
	if len(byKey["b"]) != 1 || len(byKey["c"]) != 1 {
		t.Fatalf("groups = %v", byKey)
	}
}

func TestJoinInner(t *testing.T) {
	ctx := testCtx()
	links := []Pair[string, string]{{"p1", "p2"}, {"p1", "p3"}, {"p2", "p1"}}
	ranks := []Pair[string, float64]{{"p1", 0.5}, {"p2", 0.3}, {"p9", 9.9}}
	joined, err := Join(Parallelize(ctx, links), Parallelize(ctx, ranks))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := joined.Collect()
	if err != nil {
		t.Fatal(err)
	}
	// p1 matches twice (two outlinks), p2 once, p9 not at all (no left).
	if len(rows) != 3 {
		t.Fatalf("join produced %d rows, want 3: %v", len(rows), rows)
	}
	for _, kv := range rows {
		switch kv.Key {
		case "p1":
			if kv.Value.Right != 0.5 {
				t.Errorf("p1 joined rank %v", kv.Value.Right)
			}
		case "p2":
			if kv.Value.Right != 0.3 || kv.Value.Left != "p1" {
				t.Errorf("p2 join row %+v", kv.Value)
			}
		default:
			t.Errorf("unexpected key %q", kv.Key)
		}
	}
}

func TestCoGroupKeepsUnmatched(t *testing.T) {
	ctx := testCtx()
	a := Parallelize(ctx, []Pair[int, string]{{1, "x"}, {2, "y"}})
	b := Parallelize(ctx, []Pair[int, int]{{2, 20}, {3, 30}})
	cg, err := CoGroup(a, b)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := cg.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("cogroup has %d keys, want 3", len(rows))
	}
	for _, kv := range rows {
		switch kv.Key {
		case 1:
			if len(kv.Value.Left) != 1 || len(kv.Value.Right) != 0 {
				t.Errorf("key 1: %+v", kv.Value)
			}
		case 2:
			if len(kv.Value.Left) != 1 || len(kv.Value.Right) != 1 {
				t.Errorf("key 2: %+v", kv.Value)
			}
		case 3:
			if len(kv.Value.Left) != 0 || len(kv.Value.Right) != 1 {
				t.Errorf("key 3: %+v", kv.Value)
			}
		}
	}
}

func TestDistinct(t *testing.T) {
	ctx := testCtx()
	d, err := Distinct(Parallelize(ctx, []int{1, 2, 2, 3, 1, 1}))
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.Collect()
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(out)
	if len(out) != 3 || out[0] != 1 || out[2] != 3 {
		t.Fatalf("Distinct = %v", out)
	}
}

func TestUnion(t *testing.T) {
	ctx := testCtx()
	u := Union(Parallelize(ctx, []int{1, 2}), Parallelize(ctx, []int{3}))
	out, err := u.Collect()
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(out)
	if len(out) != 3 || out[0] != 1 || out[2] != 3 {
		t.Fatalf("Union = %v", out)
	}
}

func TestSample(t *testing.T) {
	ctx := testCtx()
	data := make([]int, 10_000)
	for i := range data {
		data[i] = i
	}
	s := Sample(Parallelize(ctx, data), 0.1, 1)
	n, err := s.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n < 700 || n > 1300 {
		t.Fatalf("10%% sample of 10k kept %d", n)
	}
	// Determinism.
	n2, _ := s.Count()
	if n2 != n {
		t.Fatalf("sample not deterministic: %d vs %d", n, n2)
	}
}
