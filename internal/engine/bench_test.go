package engine

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkWordCount runs the real-execution WordCount over 100k words.
func BenchmarkWordCount(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	words := make([]string, 100_000)
	for i := range words {
		words[i] = fmt.Sprintf("w%d", rng.Intn(5000))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := NewContext(Config{Parallelism: 8})
		pairs := MapToPairs(Parallelize(ctx, words), func(w string) (string, int) { return w, 1 })
		counts, err := ReduceByKey(pairs, func(a, b int) int { return a + b })
		if err != nil {
			b.Fatal(err)
		}
		if _, err := counts.Collect(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSortByKey runs the real-execution sort over 100k pairs.
func BenchmarkSortByKey(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	data := make([]Pair[int, int64], 100_000)
	for i := range data {
		data[i] = Pair[int, int64]{rng.Int(), rng.Int63()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := NewContext(Config{Parallelism: 8})
		sorted, err := SortByKey(Parallelize(ctx, data), func(a, b int) bool { return a < b })
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sorted.Collect(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShuffleCompression isolates the serialize+compress path.
func BenchmarkShuffleCompression(b *testing.B) {
	rows := make([]Pair[string, int], 10_000)
	for i := range rows {
		rows[i] = Pair[string, int]{fmt.Sprintf("key-%d", i%500), i}
	}
	for _, compress := range []bool{false, true} {
		name := "raw"
		if compress {
			name = "flate"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				blk, err := encodeBlock(rows, compress)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := decodeBlock[string, int](blk, compress); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
