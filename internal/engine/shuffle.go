package engine

import (
	"bytes"
	"compress/flate"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"hash/maphash"
	"io"
	"os"
	"sort"
	"sync"
)

// segment is one serialized block of pairs destined for a reduce
// partition: either resident bytes or a slice of a spill file.
type segment struct {
	data []byte // in-memory block (nil when spilled)
	path string // spill file (when data == nil)
	off  int64
	len  int64
}

// shuffleStore holds the map output of one shuffle: segments[r] lists the
// blocks reduce partition r must fetch.
type shuffleStore struct {
	mu       sync.Mutex
	segments [][]segment
	spills   []string // temp files to remove on Close
}

func newShuffleStore(reduceParts int) *shuffleStore {
	return &shuffleStore{segments: make([][]segment, reduceParts)}
}

func (s *shuffleStore) add(r int, seg segment) {
	s.mu.Lock()
	s.segments[r] = append(s.segments[r], seg)
	s.mu.Unlock()
}

func (s *shuffleStore) addSpill(path string) {
	s.mu.Lock()
	s.spills = append(s.spills, path)
	s.mu.Unlock()
}

// Close removes spill files.
func (s *shuffleStore) Close() {
	for _, p := range s.spills {
		os.Remove(p)
	}
	s.spills = nil
}

// encodeBlock serializes pairs with gob, optionally flate-compressed.
func encodeBlock[K comparable, V any](rows []Pair[K, V], compress bool) ([]byte, error) {
	var buf bytes.Buffer
	var w io.Writer = &buf
	var fw *flate.Writer
	if compress {
		var err error
		fw, err = flate.NewWriter(&buf, flate.BestSpeed)
		if err != nil {
			return nil, err
		}
		w = fw
	}
	if err := gob.NewEncoder(w).Encode(rows); err != nil {
		return nil, err
	}
	if fw != nil {
		if err := fw.Close(); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// decodeBlock reverses encodeBlock.
func decodeBlock[K comparable, V any](data []byte, compress bool) ([]Pair[K, V], error) {
	var r io.Reader = bytes.NewReader(data)
	if compress {
		fr := flate.NewReader(r)
		defer fr.Close()
		r = fr
	}
	var rows []Pair[K, V]
	if err := gob.NewDecoder(r).Decode(&rows); err != nil {
		return nil, err
	}
	return rows, nil
}

// shuffleWrite executes the map side: every parent partition's pairs are
// bucketed by partitioner, serialized, and either kept in memory or
// spilled when the per-task buffer exceeds the budget.
func shuffleWrite[K comparable, V any](d *Dataset[Pair[K, V]], reduceParts int, partitioner func(K) int) (*shuffleStore, error) {
	ctx := d.ctx
	store := newShuffleStore(reduceParts)
	budget := int64(0)
	if ctx.cfg.ShuffleMemoryMB > 0 {
		budget = int64(ctx.cfg.ShuffleMemoryMB) * 1024 * 1024 / int64(ctx.cfg.Workers)
	}
	err := ctx.runTasks(d.parts, func(p int) error {
		rows, err := d.materialize(p)
		if err != nil {
			return err
		}
		buckets := make([][]Pair[K, V], reduceParts)
		for _, kv := range rows {
			r := partitioner(kv.Key)
			if r < 0 || r >= reduceParts {
				return fmt.Errorf("partitioner sent key %v to %d of %d", kv.Key, r, reduceParts)
			}
			buckets[r] = append(buckets[r], kv)
		}
		// Serialize each bucket; spill the task's output when over
		// budget.
		var taskBytes int64
		encoded := make([][]byte, reduceParts)
		for r, b := range buckets {
			if len(b) == 0 {
				continue
			}
			blk, err := encodeBlock(b, ctx.cfg.CompressShuffle)
			if err != nil {
				return err
			}
			encoded[r] = blk
			taskBytes += int64(len(blk))
		}
		ctx.addShuffleWrite(taskBytes)
		if budget > 0 && taskBytes > budget {
			return spillTask(ctx, store, encoded)
		}
		for r, blk := range encoded {
			if blk != nil {
				store.add(r, segment{data: blk})
			}
		}
		return nil
	})
	if err != nil {
		store.Close()
		return nil, err
	}
	ctx.trackStore(store)
	return store, nil
}

// spillTask writes one map task's encoded buckets to a single temp file
// with per-bucket offsets.
func spillTask(ctx *Context, store *shuffleStore, encoded [][]byte) error {
	f, err := os.CreateTemp(ctx.cfg.TempDir, "engine-spill-*.shuffle")
	if err != nil {
		return err
	}
	defer f.Close()
	store.addSpill(f.Name())
	var off int64
	for r, blk := range encoded {
		if blk == nil {
			continue
		}
		n, err := f.Write(blk)
		if err != nil {
			return err
		}
		store.add(r, segment{path: f.Name(), off: off, len: int64(n)})
		off += int64(n)
	}
	ctx.addSpill(off)
	return nil
}

// shuffleRead fetches and decodes reduce partition r's segments.
func shuffleRead[K comparable, V any](ctx *Context, store *shuffleStore, r int) ([]Pair[K, V], error) {
	var out []Pair[K, V]
	for _, seg := range store.segments[r] {
		data := seg.data
		if data == nil {
			f, err := os.Open(seg.path)
			if err != nil {
				return nil, err
			}
			data = make([]byte, seg.len)
			if _, err := f.ReadAt(data, seg.off); err != nil {
				f.Close()
				return nil, err
			}
			f.Close()
		}
		ctx.addShuffleRead(int64(len(data)))
		rows, err := decodeBlock[K, V](data, ctx.cfg.CompressShuffle)
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
	}
	return out, nil
}

// hashSeed makes hash partitioning stable within a process.
var hashSeed = maphash.MakeSeed()

// hashKey hashes any comparable key via its gob encoding — slow but
// general; string and integer keys take fast paths.
func hashKey[K comparable](k K) uint64 {
	switch v := any(k).(type) {
	case string:
		return maphash.String(hashSeed, v)
	case int:
		return uint64(v) * 0x9E3779B97F4A7C15
	case int64:
		return uint64(v) * 0x9E3779B97F4A7C15
	case uint64:
		return v * 0x9E3779B97F4A7C15
	default:
		var buf bytes.Buffer
		gob.NewEncoder(&buf).Encode(k)
		h := fnv.New64a()
		h.Write(buf.Bytes())
		return h.Sum64()
	}
}

// ReduceByKey combines values per key with the associative function f:
// a map-side combine, a hash shuffle, and a reduce-side merge. The result
// has the context's default parallelism. Wide operations execute their
// shuffle eagerly; the reduce side stays lazy per partition.
func ReduceByKey[K comparable, V any](d *Dataset[Pair[K, V]], f func(V, V) V) (*Dataset[Pair[K, V]], error) {
	ctx := d.ctx
	reduceParts := ctx.cfg.Parallelism

	// Map-side combine shrinks shuffle volume, like Spark's combiners.
	combined := &Dataset[Pair[K, V]]{
		ctx:   ctx,
		parts: d.parts,
		compute: func(p int) ([]Pair[K, V], error) {
			rows, err := d.materialize(p)
			if err != nil {
				return nil, err
			}
			m := make(map[K]V, len(rows))
			for _, kv := range rows {
				if old, ok := m[kv.Key]; ok {
					m[kv.Key] = f(old, kv.Value)
				} else {
					m[kv.Key] = kv.Value
				}
			}
			out := make([]Pair[K, V], 0, len(m))
			for k, v := range m {
				out = append(out, Pair[K, V]{k, v})
			}
			return out, nil
		},
	}

	store, err := shuffleWrite(combined, reduceParts, func(k K) int {
		return int(hashKey(k) % uint64(reduceParts))
	})
	if err != nil {
		return nil, err
	}
	return &Dataset[Pair[K, V]]{
		ctx:   ctx,
		parts: reduceParts,
		compute: func(p int) ([]Pair[K, V], error) {
			rows, err := shuffleRead[K, V](ctx, store, p)
			if err != nil {
				return nil, err
			}
			m := make(map[K]V, len(rows))
			for _, kv := range rows {
				if old, ok := m[kv.Key]; ok {
					m[kv.Key] = f(old, kv.Value)
				} else {
					m[kv.Key] = kv.Value
				}
			}
			out := make([]Pair[K, V], 0, len(m))
			for k, v := range m {
				out = append(out, Pair[K, V]{k, v})
			}
			return out, nil
		},
	}, nil
}

// SortByKey globally sorts the pairs: sampled range partitioning (like
// TeraSort's Stage1), a shuffle, and a per-partition sort. Partition i's
// keys all order before partition i+1's.
func SortByKey[K comparable, V any](d *Dataset[Pair[K, V]], less func(a, b K) bool) (*Dataset[Pair[K, V]], error) {
	ctx := d.ctx
	reduceParts := ctx.cfg.Parallelism

	// Sample keys to choose splitters.
	splitters, err := sampleSplitters(d, reduceParts, less)
	if err != nil {
		return nil, err
	}
	part := func(k K) int {
		// First splitter not less than k.
		i := sort.Search(len(splitters), func(i int) bool { return !less(splitters[i], k) })
		return i
	}
	store, err := shuffleWrite(d, reduceParts, part)
	if err != nil {
		return nil, err
	}
	return &Dataset[Pair[K, V]]{
		ctx:   ctx,
		parts: reduceParts,
		compute: func(p int) ([]Pair[K, V], error) {
			rows, err := shuffleRead[K, V](ctx, store, p)
			if err != nil {
				return nil, err
			}
			sortPairs(rows, less)
			return rows, nil
		},
	}, nil
}

// sampleSplitters draws up to 64 keys per partition and returns
// reduceParts-1 splitters.
func sampleSplitters[K comparable, V any](d *Dataset[Pair[K, V]], reduceParts int, less func(a, b K) bool) ([]K, error) {
	var mu sync.Mutex
	var sample []K
	err := d.ctx.runTasks(d.parts, func(p int) error {
		rows, err := d.materialize(p)
		if err != nil {
			return err
		}
		step := len(rows)/64 + 1
		mu.Lock()
		for i := 0; i < len(rows); i += step {
			sample = append(sample, rows[i].Key)
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(sample, func(i, j int) bool { return less(sample[i], sample[j]) })
	splitters := make([]K, 0, reduceParts-1)
	for i := 1; i < reduceParts; i++ {
		idx := i * len(sample) / reduceParts
		if idx < len(sample) {
			splitters = append(splitters, sample[idx])
		}
	}
	return splitters, nil
}

// CountByKey returns the number of records per key.
func CountByKey[K comparable, V any](d *Dataset[Pair[K, V]]) (map[K]int, error) {
	counts, err := ReduceByKey(Map(d, func(kv Pair[K, V]) Pair[K, int] {
		return Pair[K, int]{kv.Key, 1}
	}), func(a, b int) int { return a + b })
	if err != nil {
		return nil, err
	}
	rows, err := counts.Collect()
	if err != nil {
		return nil, err
	}
	out := make(map[K]int, len(rows))
	for _, kv := range rows {
		out[kv.Key] = kv.Value
	}
	return out, nil
}
