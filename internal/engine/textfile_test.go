package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func writeLines(t *testing.T, lines []string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "input.txt")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTextFileReadsEveryLineOnce(t *testing.T) {
	lines := make([]string, 5000)
	for i := range lines {
		lines[i] = fmt.Sprintf("line-%06d with some padding to span splits", i)
	}
	path := writeLines(t, lines)
	ctx := testCtx()
	// A tiny split size forces many partitions with lines straddling
	// boundaries.
	ds, err := TextFile(ctx, path, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ds.Collect()
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(got)
	want := append([]string(nil), lines...)
	sort.Strings(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("split reading lost or duplicated lines: %d vs %d", len(got), len(want))
	}
}

func TestTextFileMissing(t *testing.T) {
	if _, err := TextFile(testCtx(), "/does/not/exist", 1); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestSaveAndReadBack(t *testing.T) {
	ctx := testCtx()
	lines := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	dir := filepath.Join(t.TempDir(), "out")
	if err := SaveAsTextFile(Parallelize(ctx, lines), dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 { // one part file per partition
		t.Fatalf("got %d part files, want 4", len(entries))
	}
	back, err := ReadTextDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, lines) {
		t.Fatalf("read back %v, want %v", back, lines)
	}
}

func TestEndToEndFilePipeline(t *testing.T) {
	// File in -> word count -> file out, the classic.
	text := strings.Repeat("to be or not to be\n", 100)
	path := filepath.Join(t.TempDir(), "in.txt")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx := testCtx()
	linesDS, err := TextFile(ctx, path, 1)
	if err != nil {
		t.Fatal(err)
	}
	words := FlatMap(linesDS, strings.Fields)
	counts, err := ReduceByKey(MapToPairs(words, func(w string) (string, int) { return w, 1 }),
		func(a, b int) int { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	rendered := Map(counts, func(kv Pair[string, int]) string {
		return fmt.Sprintf("%s\t%d", kv.Key, kv.Value)
	})
	outDir := filepath.Join(t.TempDir(), "wc-out")
	if err := SaveAsTextFile(rendered, outDir); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTextDir(outDir)
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, line := range back {
		found[line] = true
	}
	if !found["to\t200"] || !found["be\t200"] || !found["or\t100"] {
		t.Fatalf("unexpected counts: %v", back)
	}
}
