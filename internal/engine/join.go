package engine

import "math/rand"

// GroupByKey gathers all values per key. Prefer ReduceByKey when the
// downstream only needs an aggregate — grouping materializes every value.
func GroupByKey[K comparable, V any](d *Dataset[Pair[K, V]]) (*Dataset[Pair[K, []V]], error) {
	ctx := d.ctx
	reduceParts := ctx.cfg.Parallelism
	store, err := shuffleWrite(d, reduceParts, func(k K) int {
		return int(hashKey(k) % uint64(reduceParts))
	})
	if err != nil {
		return nil, err
	}
	return &Dataset[Pair[K, []V]]{
		ctx:   ctx,
		parts: reduceParts,
		compute: func(p int) ([]Pair[K, []V], error) {
			rows, err := shuffleRead[K, V](ctx, store, p)
			if err != nil {
				return nil, err
			}
			m := make(map[K][]V)
			for _, kv := range rows {
				m[kv.Key] = append(m[kv.Key], kv.Value)
			}
			out := make([]Pair[K, []V], 0, len(m))
			for k, vs := range m {
				out = append(out, Pair[K, []V]{k, vs})
			}
			return out, nil
		},
	}, nil
}

// CoGrouped is one key's values from both sides of a cogroup.
type CoGrouped[V, W any] struct {
	Left  []V
	Right []W
}

// CoGroup shuffles both datasets with the same partitioner and gathers
// each key's values from both sides — the primitive under joins.
func CoGroup[K comparable, V, W any](a *Dataset[Pair[K, V]], b *Dataset[Pair[K, W]]) (*Dataset[Pair[K, CoGrouped[V, W]]], error) {
	ctx := a.ctx
	reduceParts := ctx.cfg.Parallelism
	part := func(k K) int { return int(hashKey(k) % uint64(reduceParts)) }
	storeA, err := shuffleWrite(a, reduceParts, part)
	if err != nil {
		return nil, err
	}
	storeB, err := shuffleWrite(b, reduceParts, part)
	if err != nil {
		return nil, err
	}
	return &Dataset[Pair[K, CoGrouped[V, W]]]{
		ctx:   ctx,
		parts: reduceParts,
		compute: func(p int) ([]Pair[K, CoGrouped[V, W]], error) {
			left, err := shuffleRead[K, V](ctx, storeA, p)
			if err != nil {
				return nil, err
			}
			right, err := shuffleRead[K, W](ctx, storeB, p)
			if err != nil {
				return nil, err
			}
			m := make(map[K]*CoGrouped[V, W])
			for _, kv := range left {
				g := m[kv.Key]
				if g == nil {
					g = &CoGrouped[V, W]{}
					m[kv.Key] = g
				}
				g.Left = append(g.Left, kv.Value)
			}
			for _, kw := range right {
				g := m[kw.Key]
				if g == nil {
					g = &CoGrouped[V, W]{}
					m[kw.Key] = g
				}
				g.Right = append(g.Right, kw.Value)
			}
			out := make([]Pair[K, CoGrouped[V, W]], 0, len(m))
			for k, g := range m {
				out = append(out, Pair[K, CoGrouped[V, W]]{k, *g})
			}
			return out, nil
		},
	}, nil
}

// Joined is one matched pair of an inner join.
type Joined[V, W any] struct {
	Left  V
	Right W
}

// Join inner-joins two pair datasets on their keys: every (v, w)
// combination of a key's left and right values is emitted — the hash-join
// PageRank's contribution step needs.
func Join[K comparable, V, W any](a *Dataset[Pair[K, V]], b *Dataset[Pair[K, W]]) (*Dataset[Pair[K, Joined[V, W]]], error) {
	cg, err := CoGroup(a, b)
	if err != nil {
		return nil, err
	}
	return FlatMap(cg, func(kv Pair[K, CoGrouped[V, W]]) []Pair[K, Joined[V, W]] {
		var out []Pair[K, Joined[V, W]]
		for _, v := range kv.Value.Left {
			for _, w := range kv.Value.Right {
				out = append(out, Pair[K, Joined[V, W]]{kv.Key, Joined[V, W]{v, w}})
			}
		}
		return out
	}), nil
}

// Distinct removes duplicate records (via a shuffle on the record itself).
func Distinct[T comparable](d *Dataset[T]) (*Dataset[T], error) {
	pairs := MapToPairs(d, func(t T) (T, struct{}) { return t, struct{}{} })
	reduced, err := ReduceByKey(pairs, func(a, b struct{}) struct{} { return a })
	if err != nil {
		return nil, err
	}
	return Map(reduced, func(kv Pair[T, struct{}]) T { return kv.Key }), nil
}

// Union concatenates two datasets (no shuffle; partitions are appended).
func Union[T any](a, b *Dataset[T]) *Dataset[T] {
	return &Dataset[T]{
		ctx:   a.ctx,
		parts: a.parts + b.parts,
		compute: func(p int) ([]T, error) {
			if p < a.parts {
				return a.materialize(p)
			}
			return b.materialize(p - a.parts)
		},
	}
}

// Sample keeps each record with probability frac, deterministically per
// partition for a given seed.
func Sample[T any](d *Dataset[T], frac float64, seed int64) *Dataset[T] {
	return &Dataset[T]{
		ctx:   d.ctx,
		parts: d.parts,
		compute: func(p int) ([]T, error) {
			rows, err := d.materialize(p)
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(seed + int64(p)))
			var out []T
			for _, v := range rows {
				if rng.Float64() < frac {
					out = append(out, v)
				}
			}
			return out, nil
		},
	}
}
