package engine

import (
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func testCtx() *Context {
	return NewContext(Config{Parallelism: 4, Workers: 4})
}

func TestParallelizeCollectRoundTrip(t *testing.T) {
	ctx := testCtx()
	in := []int{1, 2, 3, 4, 5, 6, 7}
	out, err := Parallelize(ctx, in).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip changed data: %v -> %v", in, out)
	}
}

func TestMapFilterFlatMapPipeline(t *testing.T) {
	ctx := testCtx()
	d := Parallelize(ctx, []int{1, 2, 3, 4, 5})
	doubled := Map(d, func(x int) int { return 2 * x })
	evens := Filter(doubled, func(x int) bool { return x%4 == 0 })
	expanded := FlatMap(evens, func(x int) []int { return []int{x, x + 1} })
	out, err := expanded.Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 5, 8, 9} // 2*2=4, 2*4=8, each expanded
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("pipeline produced %v, want %v", out, want)
	}
	// A narrow-only pipeline must not shuffle.
	if m := ctx.Metrics(); m.ShuffleBytesWritten != 0 {
		t.Errorf("narrow pipeline wrote %d shuffle bytes", m.ShuffleBytesWritten)
	}
}

func TestCountAndReduce(t *testing.T) {
	ctx := testCtx()
	d := Parallelize(ctx, []int{5, 1, 9, 3})
	n, err := d.Count()
	if err != nil || n != 4 {
		t.Fatalf("Count = %d, %v", n, err)
	}
	sum, ok, err := Reduce(d, func(a, b int) int { return a + b })
	if err != nil || !ok || sum != 18 {
		t.Fatalf("Reduce = %d, %v, %v", sum, ok, err)
	}
	empty := Parallelize(ctx, []int{})
	if _, ok, _ := Reduce(empty, func(a, b int) int { return a + b }); ok {
		t.Error("empty Reduce should report !ok")
	}
}

func TestReduceByKeyMatchesReference(t *testing.T) {
	ctx := testCtx()
	rng := rand.New(rand.NewSource(1))
	n := 5000
	words := make([]string, n)
	ref := map[string]int{}
	for i := range words {
		words[i] = fmt.Sprintf("w%d", rng.Intn(100))
		ref[words[i]]++
	}
	pairs := MapToPairs(Parallelize(ctx, words), func(w string) (string, int) { return w, 1 })
	counts, err := ReduceByKey(pairs, func(a, b int) int { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	rows, err := counts.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ref) {
		t.Fatalf("got %d keys, want %d", len(rows), len(ref))
	}
	for _, kv := range rows {
		if ref[kv.Key] != kv.Value {
			t.Fatalf("%s: %d, want %d", kv.Key, kv.Value, ref[kv.Key])
		}
	}
	if m := ctx.Metrics(); m.ShuffleBytesWritten == 0 || m.ShuffleBytesRead == 0 {
		t.Error("ReduceByKey should move bytes through the shuffle")
	}
}

func TestSortByKeyGloballySorted(t *testing.T) {
	ctx := NewContext(Config{Parallelism: 5, Workers: 4})
	rng := rand.New(rand.NewSource(2))
	n := 3000
	data := make([]Pair[string, int], n)
	for i := range data {
		data[i] = Pair[string, int]{fmt.Sprintf("%08d", rng.Intn(1_000_000)), i}
	}
	d := Parallelize(ctx, data)
	sorted, err := SortByKey(d, func(a, b string) bool { return a < b })
	if err != nil {
		t.Fatal(err)
	}
	out, err := sorted.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("sort changed cardinality: %d != %d", len(out), n)
	}
	for i := 1; i < len(out); i++ {
		if out[i].Key < out[i-1].Key {
			t.Fatalf("not sorted at %d: %q < %q", i, out[i].Key, out[i-1].Key)
		}
	}
}

func TestShuffleCompressionShrinksBytes(t *testing.T) {
	run := func(compress bool) int64 {
		ctx := NewContext(Config{Parallelism: 4, Workers: 4, CompressShuffle: compress})
		text := strings.Repeat("the quick brown fox ", 2000)
		words := strings.Fields(text)
		pairs := MapToPairs(Parallelize(ctx, words), func(w string) (string, int) { return w, 1 })
		// Disable the map-side combine effect by shuffling raw pairs via
		// SortByKey, which keeps all records.
		sorted, err := SortByKey(pairs, func(a, b string) bool { return a < b })
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sorted.Collect(); err != nil {
			t.Fatal(err)
		}
		return ctx.Metrics().ShuffleBytesWritten
	}
	raw := run(false)
	comp := run(true)
	if comp >= raw {
		t.Fatalf("compressed shuffle (%d B) not smaller than raw (%d B)", comp, raw)
	}
}

func TestSpillingUnderMemoryPressure(t *testing.T) {
	ctx := NewContext(Config{Parallelism: 4, Workers: 2, ShuffleMemoryMB: 1, TempDir: t.TempDir()})
	rng := rand.New(rand.NewSource(3))
	n := 200_000 // ~ several MB of pairs
	data := make([]Pair[int, int64], n)
	for i := range data {
		data[i] = Pair[int, int64]{rng.Intn(n), rng.Int63()}
	}
	sorted, err := SortByKey(Parallelize(ctx, data), func(a, b int) bool { return a < b })
	if err != nil {
		t.Fatal(err)
	}
	out, err := sorted.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("spilled sort lost records: %d != %d", len(out), n)
	}
	m := ctx.Metrics()
	if m.SpillBytes == 0 || m.SpillFiles == 0 {
		t.Fatalf("1MB budget over ~MBs of shuffle should spill: %+v", m)
	}
}

func TestCloseRemovesSpillFiles(t *testing.T) {
	dir := t.TempDir()
	ctx := NewContext(Config{Parallelism: 4, Workers: 2, ShuffleMemoryMB: 1, TempDir: dir})
	rng := rand.New(rand.NewSource(9))
	data := make([]Pair[int, int64], 100_000)
	for i := range data {
		data[i] = Pair[int, int64]{rng.Intn(len(data)), rng.Int63()}
	}
	sorted, err := SortByKey(Parallelize(ctx, data), func(a, b int) bool { return a < b })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sorted.Collect(); err != nil {
		t.Fatal(err)
	}
	if ctx.Metrics().SpillFiles == 0 {
		t.Skip("no spills at this size; nothing to clean")
	}
	before, _ := os.ReadDir(dir)
	if len(before) == 0 {
		t.Fatal("expected spill files on disk before Close")
	}
	ctx.Close()
	after, _ := os.ReadDir(dir)
	if len(after) != 0 {
		t.Fatalf("%d spill files remain after Close", len(after))
	}
	ctx.Close() // idempotent
}

func TestCacheAvoidsRecompute(t *testing.T) {
	ctx := testCtx()
	computes := 0
	var mu sync.Mutex
	d := Generate(ctx, 4, func(p int) []int {
		mu.Lock()
		computes++
		mu.Unlock()
		return []int{p}
	})
	if _, err := d.Cache(); err != nil {
		t.Fatal(err)
	}
	after := computes
	if after != 4 {
		t.Fatalf("Cache computed %d partitions, want 4", after)
	}
	d.Collect()
	d.Collect()
	if computes != after {
		t.Fatalf("cached dataset recomputed: %d -> %d", after, computes)
	}
}

func TestCountByKey(t *testing.T) {
	ctx := testCtx()
	words := []string{"a", "b", "a", "c", "a", "b"}
	pairs := MapToPairs(Parallelize(ctx, words), func(w string) (string, struct{}) { return w, struct{}{} })
	counts, err := CountByKey(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if counts["a"] != 3 || counts["b"] != 2 || counts["c"] != 1 {
		t.Fatalf("CountByKey = %v", counts)
	}
}

func TestEncodeDecodeBlockRoundTrip(t *testing.T) {
	rows := []Pair[string, int]{{"x", 1}, {"y", 2}}
	for _, compress := range []bool{false, true} {
		blk, err := encodeBlock(rows, compress)
		if err != nil {
			t.Fatal(err)
		}
		back, err := decodeBlock[string, int](blk, compress)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rows, back) {
			t.Fatalf("compress=%v: %v != %v", compress, rows, back)
		}
	}
}

// Property: word counting on the engine matches a plain map for arbitrary
// word streams.
func TestWordCountProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(500)
		words := make([]string, n)
		ref := map[string]int{}
		for i := range words {
			words[i] = string(rune('a' + rng.Intn(6)))
			ref[words[i]]++
		}
		ctx := NewContext(Config{Parallelism: 1 + rng.Intn(6), Workers: 3})
		pairs := MapToPairs(Parallelize(ctx, words), func(w string) (string, int) { return w, 1 })
		counts, err := ReduceByKey(pairs, func(a, b int) int { return a + b })
		if err != nil {
			return false
		}
		rows, err := counts.Collect()
		if err != nil || len(rows) != len(ref) {
			return false
		}
		for _, kv := range rows {
			if ref[kv.Key] != kv.Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: sorting preserves the multiset of keys.
func TestSortPreservesKeysProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100 + rng.Intn(400)
		keys := make([]int, n)
		data := make([]Pair[int, int], n)
		for i := range data {
			keys[i] = rng.Intn(1000)
			data[i] = Pair[int, int]{keys[i], i}
		}
		ctx := NewContext(Config{Parallelism: 1 + rng.Intn(5), Workers: 3})
		sorted, err := SortByKey(Parallelize(ctx, data), func(a, b int) bool { return a < b })
		if err != nil {
			return false
		}
		out, err := sorted.Collect()
		if err != nil || len(out) != n {
			return false
		}
		got := make([]int, n)
		for i, kv := range out {
			got[i] = kv.Key
		}
		if !sort.IntsAreSorted(got) {
			return false
		}
		sort.Ints(keys)
		return reflect.DeepEqual(keys, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
