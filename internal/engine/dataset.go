package engine

import (
	"fmt"
	"sort"
	"sync"
)

// Dataset is a lazily computed, partitioned collection. Narrow
// transformations stack compute closures so a chain of Maps and Filters
// executes in one pass over each partition — the pipelining that makes
// in-memory frameworks fast.
type Dataset[T any] struct {
	ctx   *Context
	parts int
	// compute materializes one partition.
	compute func(p int) ([]T, error)
	// cached holds materialized partitions after Cache().
	cached [][]T
}

// Parallelize splits data into the context's default partition count.
func Parallelize[T any](ctx *Context, data []T) *Dataset[T] {
	return ParallelizeN(ctx, data, ctx.cfg.Parallelism)
}

// ParallelizeN splits data into exactly parts partitions.
func ParallelizeN[T any](ctx *Context, data []T, parts int) *Dataset[T] {
	if parts < 1 {
		parts = 1
	}
	return &Dataset[T]{
		ctx:   ctx,
		parts: parts,
		compute: func(p int) ([]T, error) {
			n := len(data)
			lo, hi := p*n/parts, (p+1)*n/parts
			return data[lo:hi], nil
		},
	}
}

// Generate builds a dataset whose partitions are synthesized on demand —
// the engine-side analogue of the paper's input data generators. gen
// receives the partition index and must be deterministic.
func Generate[T any](ctx *Context, parts int, gen func(p int) []T) *Dataset[T] {
	if parts < 1 {
		parts = 1
	}
	return &Dataset[T]{
		ctx:     ctx,
		parts:   parts,
		compute: func(p int) ([]T, error) { return gen(p), nil },
	}
}

// Partitions returns the partition count.
func (d *Dataset[T]) Partitions() int { return d.parts }

// Context returns the owning context.
func (d *Dataset[T]) Context() *Context { return d.ctx }

// materialize computes one partition, serving from cache when present.
func (d *Dataset[T]) materialize(p int) ([]T, error) {
	if d.cached != nil {
		return d.cached[p], nil
	}
	if p < 0 || p >= d.parts {
		return nil, fmt.Errorf("partition %d out of range [0,%d)", p, d.parts)
	}
	return d.compute(p)
}

// Map applies f to every record.
func Map[T, U any](d *Dataset[T], f func(T) U) *Dataset[U] {
	return &Dataset[U]{
		ctx:   d.ctx,
		parts: d.parts,
		compute: func(p int) ([]U, error) {
			in, err := d.materialize(p)
			if err != nil {
				return nil, err
			}
			out := make([]U, len(in))
			for i, v := range in {
				out[i] = f(v)
			}
			return out, nil
		},
	}
}

// FlatMap applies f and concatenates the results.
func FlatMap[T, U any](d *Dataset[T], f func(T) []U) *Dataset[U] {
	return &Dataset[U]{
		ctx:   d.ctx,
		parts: d.parts,
		compute: func(p int) ([]U, error) {
			in, err := d.materialize(p)
			if err != nil {
				return nil, err
			}
			var out []U
			for _, v := range in {
				out = append(out, f(v)...)
			}
			return out, nil
		},
	}
}

// Filter keeps records satisfying pred.
func Filter[T any](d *Dataset[T], pred func(T) bool) *Dataset[T] {
	return &Dataset[T]{
		ctx:   d.ctx,
		parts: d.parts,
		compute: func(p int) ([]T, error) {
			in, err := d.materialize(p)
			if err != nil {
				return nil, err
			}
			var out []T
			for _, v := range in {
				if pred(v) {
					out = append(out, v)
				}
			}
			return out, nil
		},
	}
}

// Cache materializes every partition now (in parallel) and serves
// downstream computations from memory — the RDD persistence that iterative
// workloads rely on. It returns the receiver.
func (d *Dataset[T]) Cache() (*Dataset[T], error) {
	if d.cached != nil {
		return d, nil
	}
	cached := make([][]T, d.parts)
	err := d.ctx.runTasks(d.parts, func(p int) error {
		rows, err := d.compute(p)
		if err != nil {
			return err
		}
		cached[p] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	d.cached = cached
	return d, nil
}

// Collect gathers every partition into one slice, in partition order.
func (d *Dataset[T]) Collect() ([]T, error) {
	parts := make([][]T, d.parts)
	err := d.ctx.runTasks(d.parts, func(p int) error {
		rows, err := d.materialize(p)
		if err != nil {
			return err
		}
		parts[p] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []T
	for _, rows := range parts {
		out = append(out, rows...)
	}
	return out, nil
}

// Count returns the total record count.
func (d *Dataset[T]) Count() (int, error) {
	var mu sync.Mutex
	total := 0
	err := d.ctx.runTasks(d.parts, func(p int) error {
		rows, err := d.materialize(p)
		if err != nil {
			return err
		}
		mu.Lock()
		total += len(rows)
		mu.Unlock()
		return nil
	})
	return total, err
}

// Reduce folds all records with the associative function f; ok is false
// for an empty dataset.
func Reduce[T any](d *Dataset[T], f func(T, T) T) (result T, ok bool, err error) {
	var mu sync.Mutex
	var acc T
	have := false
	err = d.ctx.runTasks(d.parts, func(p int) error {
		rows, e := d.materialize(p)
		if e != nil {
			return e
		}
		if len(rows) == 0 {
			return nil
		}
		local := rows[0]
		for _, v := range rows[1:] {
			local = f(local, v)
		}
		mu.Lock()
		if have {
			acc = f(acc, local)
		} else {
			acc, have = local, true
		}
		mu.Unlock()
		return nil
	})
	return acc, have, err
}

// Pair is a key-value record, the currency of wide operations.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// MapToPairs turns records into key-value pairs.
func MapToPairs[T any, K comparable, V any](d *Dataset[T], f func(T) (K, V)) *Dataset[Pair[K, V]] {
	return Map(d, func(t T) Pair[K, V] {
		k, v := f(t)
		return Pair[K, V]{Key: k, Value: v}
	})
}

// sortPairs orders a partition by key using less.
func sortPairs[K comparable, V any](rows []Pair[K, V], less func(a, b K) bool) {
	sort.Slice(rows, func(i, j int) bool { return less(rows[i].Key, rows[j].Key) })
}
