package engine

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// TextFile reads a file as a dataset of lines, split into byte-range
// partitions of roughly splitMB each (like HDFS blocks feeding one task
// per split). Each partition re-opens the file and scans only its range,
// extending past the boundary to finish its last line — the standard
// input-split contract.
func TextFile(ctx *Context, path string, splitMB int) (*Dataset[string], error) {
	if splitMB < 1 {
		splitMB = 32
	}
	info, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	splitBytes := int64(splitMB) << 20
	parts := int((info.Size() + splitBytes - 1) / splitBytes)
	if parts < 1 {
		parts = 1
	}
	return &Dataset[string]{
		ctx:   ctx,
		parts: parts,
		compute: func(p int) ([]string, error) {
			return readSplit(path, int64(p)*splitBytes, splitBytes, p == 0)
		},
	}, nil
}

// readSplit scans [off, off+length) of the file, yielding whole lines.
// Any partial line at the start belongs to the previous split (unless this
// is the first); the line straddling the end is completed past the bound.
func readSplit(path string, off, length int64, first bool) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if _, err := f.Seek(off, 0); err != nil {
		return nil, err
	}
	r := bufio.NewReaderSize(f, 256<<10)
	var consumed int64
	if !first {
		// Skip the partial line owned by the previous split.
		skipped, err := r.ReadString('\n')
		consumed += int64(len(skipped))
		if err != nil {
			return nil, nil // split begins past the last newline
		}
	}
	var lines []string
	for consumed < length {
		line, err := r.ReadString('\n')
		if len(line) > 0 {
			consumed += int64(len(line))
			lines = append(lines, strings.TrimRight(line, "\n"))
		}
		if err != nil {
			break // EOF
		}
	}
	return lines, nil
}

// SaveAsTextFile writes the dataset as one part-NNNNN file per partition
// under dir (created if needed), mirroring the output layout of the
// cluster frameworks.
func SaveAsTextFile(d *Dataset[string], dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	return d.ctx.runTasks(d.parts, func(p int) error {
		rows, err := d.materialize(p)
		if err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("part-%05d", p)))
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		for _, line := range rows {
			if _, err := w.WriteString(line); err != nil {
				f.Close()
				return err
			}
			if err := w.WriteByte('\n'); err != nil {
				f.Close()
				return err
			}
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	})
}

// ReadTextDir reads back a SaveAsTextFile directory in part order,
// returning all lines.
func ReadTextDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "part-") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var lines []string
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(data), "\n") {
			if line != "" {
				lines = append(lines, line)
			}
		}
	}
	return lines, nil
}
