// Package workloads defines the six HiBench Spark programs the paper
// evaluates (Table 1, §4.1) as stage DAGs for the simulator, together with
// their Table 1 dataset sizes and deterministic input-data generators.
//
// The per-stage cost profiles encode the paper's characterization: KMeans
// has good instruction locality but poor data locality and Bayes the
// opposite; PageRank's iteration selectivity is much higher than KMeans';
// NWeight stores the whole graph in memory and iterates; WordCount is
// CPU-intensive; TeraSort is both CPU- and memory-intensive; PR, KM, BA
// and NW are far more iterative than WC and TS.
package workloads

import (
	"fmt"

	"repro/internal/sparksim"
)

// Workload couples a simulator Program with the dataset-size scale it is
// evaluated at.
type Workload struct {
	// Name is the full program name; Abbr is the paper's two-letter code.
	Name string
	Abbr string
	// Program is the stage DAG executed by sparksim.
	Program sparksim.Program
	// Unit names the Table 1 datasize unit ("million pages", "GB", ...).
	Unit string
	// MBPerUnit converts a datasize in Units to on-disk MB.
	MBPerUnit float64
	// Sizes are the five Table 1 input dataset sizes, in Units.
	Sizes []float64
	// MotivationSizes are the two input sizes of the §2.2.1 study
	// (Fig. 2), in Units; nil when the workload is not part of it.
	MotivationSizes []float64
}

// InputMB converts a datasize in the workload's units to megabytes — the
// dsize feature of the paper's performance vectors is derived from this.
func (w *Workload) InputMB(units float64) float64 { return units * w.MBPerUnit }

// SizesMB returns the Table 1 sizes converted to MB.
func (w *Workload) SizesMB() []float64 {
	out := make([]float64, len(w.Sizes))
	for i, s := range w.Sizes {
		out[i] = w.InputMB(s)
	}
	return out
}

// PageRank returns the HiBench PageRank workload: an iterative
// graph-parallel job with selective shuffling and high iteration
// selectivity. Table 1 sizes: 1.2–2.0 million pages.
func PageRank() *Workload {
	return &Workload{
		Name: "PageRank",
		Abbr: "PR",
		Unit: "million pages",
		// HiBench pages run ~1.5 KB; Fig. 10's measured PR times
		// (40–250 s) pin Table 1's inputs to the few-GB range.
		MBPerUnit:       1536,
		Sizes:           []float64{1.2, 1.4, 1.6, 1.8, 2.0},
		MotivationSizes: []float64{0.5, 1.0},
		Program: sparksim.Program{
			Name: "pagerank",
			Stages: []sparksim.Stage{
				{
					Name: "load-links", InputFrac: 1, CPUSecPerMB: 0.02,
					ShuffleFrac: 0.55, MemExpansion: 2.0, MapSideCombine: true,
					CacheOutputFrac: 0.5, SkewFactor: 1.5,
				},
				{
					Name: "init-ranks", ReadsShuffle: true, ShuffleInFrac: 0.55,
					CPUSecPerMB: 0.01, ShuffleFrac: 0.08, MemExpansion: 2.5,
				},
				{
					Name: "iterate", Repeat: 5, CacheInput: true, InputFrac: 0.5,
					ReadsShuffle: true, ShuffleInFrac: 0.08,
					CPUSecPerMB: 0.05, ShuffleFrac: 0.30, MemExpansion: 3.0,
					MapSideCombine: true, SkewFactor: 2.0,
				},
				{
					Name: "save-ranks", ReadsShuffle: true, ShuffleInFrac: 0.30,
					CPUSecPerMB: 0.01, MemExpansion: 1.5, OutputFrac: 0.05,
				},
			},
		},
	}
}

// KMeans returns the HiBench KMeans workload: CPU-heavy distance
// computation over a cached point set, with tiny per-iteration shuffles
// and a driver round-trip per iteration (Fig. 13's stage structure).
// Table 1 sizes: 160–288 million points.
func KMeans() *Workload {
	return &Workload{
		Name:            "KMeans",
		Abbr:            "KM",
		Unit:            "million points",
		MBPerUnit:       0.225 * 1024, // 80M records ≈ 18 GB (§2.2.1)
		Sizes:           []float64{160, 192, 224, 256, 288},
		MotivationSizes: []float64{40, 80},
		Program: sparksim.Program{
			Name: "kmeans",
			Stages: []sparksim.Stage{
				{
					Name: "stageA-read", InputFrac: 1, CPUSecPerMB: 0.015,
					MemExpansion: 2.0, CacheOutputFrac: 1.0,
				},
				{
					Name: "stageB-sample", CacheInput: true, InputFrac: 0.05,
					CPUSecPerMB: 0.05, MemExpansion: 1.2, CollectMB: 1,
				},
				{
					Name: "stageC-iterate", Repeat: 10, CacheInput: true,
					InputFrac: 1, CPUSecPerMB: 0.11, MemExpansion: 1.2,
					ShuffleFrac: 0.0005, MapSideCombine: true,
					CollectMB: 0.5, BroadcastMB: 0.5,
				},
				{
					Name: "stageD-collect", CacheInput: true, InputFrac: 0.2,
					CPUSecPerMB: 0.02, MemExpansion: 1.2, CollectMB: 2,
				},
				{
					Name: "stageE-summary", InputFrac: 0.001, CPUSecPerMB: 0.1,
					MemExpansion: 1.2, CollectMB: 0.1,
				},
			},
		},
	}
}

// Bayes returns the HiBench Naive Bayes trainer: poor instruction
// locality, heavy tokenize/shuffle phases with large aggregation state,
// and a model collected to the driver. Table 1 sizes: 1.2–2.0 million
// pages.
func Bayes() *Workload {
	return &Workload{
		Name:      "Bayes",
		Abbr:      "BA",
		Unit:      "million pages",
		MBPerUnit: 1024, // ~1 KB bayes documents
		Sizes:     []float64{1.2, 1.4, 1.6, 1.8, 2.0},
		Program: sparksim.Program{
			Name: "bayes",
			Stages: []sparksim.Stage{
				{
					Name: "tokenize", InputFrac: 1, CPUSecPerMB: 0.08,
					ShuffleFrac: 1.3, MemExpansion: 3.0, MapSideCombine: true,
					SkewFactor: 1.8,
				},
				{
					Name: "aggregate", ReadsShuffle: true, ShuffleInFrac: 1.3,
					CPUSecPerMB: 0.05, ShuffleFrac: 0.1, MemExpansion: 4.0,
					MapSideCombine: true,
				},
				{
					Name: "train-model", ReadsShuffle: true, ShuffleInFrac: 0.1,
					CPUSecPerMB: 0.04, MemExpansion: 2.0, CollectFrac: 0.0008,
				},
			},
		},
	}
}

// NWeight returns the GraphX NWeight workload: an iterative graph-parallel
// algorithm computing associations between vertices n hops away; it keeps
// the whole graph in memory and shuffles heavily every iteration. Table 1
// sizes: 10.5–14.5 million edges.
func NWeight() *Workload {
	return &Workload{
		Name:      "NWeight",
		Abbr:      "NW",
		Unit:      "million edges",
		MBPerUnit: 150, // ~150 MB of edge list per million edges
		Sizes:     []float64{10.5, 11.5, 12.5, 13.5, 14.5},
		Program: sparksim.Program{
			Name: "nweight",
			Stages: []sparksim.Stage{
				{
					Name: "load-graph", InputFrac: 1, CPUSecPerMB: 0.05,
					ShuffleFrac: 0.8, MemExpansion: 7, CacheOutputFrac: 1.0,
					MapSideCombine: true,
				},
				{
					Name: "iterate", Repeat: 3, CacheInput: true, InputFrac: 1,
					ReadsShuffle: true, ShuffleInFrac: 0.8,
					CPUSecPerMB: 0.08, ShuffleFrac: 1.6, MemExpansion: 6,
					MapSideCombine: true, SkewFactor: 2.5,
				},
				{
					Name: "save", ReadsShuffle: true, ShuffleInFrac: 1.6,
					CPUSecPerMB: 0.02, MemExpansion: 3.0, OutputFrac: 0.5,
				},
			},
		},
	}
}

// WordCount returns the HiBench WordCount workload: CPU-intensive map-side
// tokenization with a small combined shuffle. Table 1 sizes: 80–160 GB.
func WordCount() *Workload {
	return &Workload{
		Name:      "WordCount",
		Abbr:      "WC",
		Unit:      "GB",
		MBPerUnit: 1024,
		Sizes:     []float64{80, 100, 120, 140, 160},
		Program: sparksim.Program{
			Name: "wordcount",
			Stages: []sparksim.Stage{
				{
					Name: "map", InputFrac: 1, CPUSecPerMB: 0.14,
					ShuffleFrac: 0.05, MemExpansion: 1.5, MapSideCombine: true,
				},
				{
					Name: "reduce", ReadsShuffle: true, ShuffleInFrac: 0.05,
					CPUSecPerMB: 0.03, MemExpansion: 2.0, OutputFrac: 0.02,
				},
			},
		},
	}
}

// TeraSort returns the HiBench TeraSort workload: both CPU- and
// memory-intensive, with a sampling stage (~10% of runtime) and a
// shuffle-everything sort stage (~90%, Fig. 14's Stage2). Table 1 sizes:
// 10–50 GB.
func TeraSort() *Workload {
	return &Workload{
		Name:      "TeraSort",
		Abbr:      "TS",
		Unit:      "GB",
		MBPerUnit: 1024,
		Sizes:     []float64{10, 20, 30, 40, 50},
		Program: sparksim.Program{
			Name: "terasort",
			Stages: []sparksim.Stage{
				{
					Name: "stage1", InputFrac: 1, CPUSecPerMB: 0.02,
					ShuffleFrac: 1.0, MemExpansion: 1.3, SkewFactor: 1.3,
				},
				{
					Name: "stage2", ReadsShuffle: true, ShuffleInFrac: 1.0,
					CPUSecPerMB: 0.05, MemExpansion: 1.3, OutputFrac: 1.0,
					SkewFactor: 1.3,
				},
			},
		},
	}
}

// All returns the six workloads in the paper's order: PR, KM, BA, NW, WC,
// TS.
func All() []*Workload {
	return []*Workload{PageRank(), KMeans(), Bayes(), NWeight(), WordCount(), TeraSort()}
}

// ByAbbr looks a workload up by its two-letter code (case-sensitive).
func ByAbbr(abbr string) (*Workload, error) {
	for _, w := range All() {
		if w.Abbr == abbr {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown abbreviation %q", abbr)
}
