package workloads

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/conf"
	"repro/internal/sparksim"
)

func TestAllReturnsSixValidWorkloads(t *testing.T) {
	all := All()
	if len(all) != 6 {
		t.Fatalf("got %d workloads, want 6", len(all))
	}
	wantOrder := []string{"PR", "KM", "BA", "NW", "WC", "TS"}
	for i, w := range all {
		if w.Abbr != wantOrder[i] {
			t.Errorf("workload %d is %s, want %s", i, w.Abbr, wantOrder[i])
		}
		if err := w.Program.Validate(); err != nil {
			t.Errorf("%s: invalid program: %v", w.Name, err)
		}
		if len(w.Sizes) != 5 {
			t.Errorf("%s: %d sizes, want 5 (Table 1)", w.Name, len(w.Sizes))
		}
		for j := 1; j < len(w.Sizes); j++ {
			if w.Sizes[j] <= w.Sizes[j-1] {
				t.Errorf("%s: sizes not increasing", w.Name)
			}
		}
		if w.MBPerUnit <= 0 {
			t.Errorf("%s: nonpositive MBPerUnit", w.Name)
		}
	}
}

func TestTable1Sizes(t *testing.T) {
	pr, _ := ByAbbr("PR")
	if pr.Sizes[0] != 1.2 || pr.Sizes[4] != 2.0 {
		t.Errorf("PR sizes %v, want 1.2..2.0 million pages", pr.Sizes)
	}
	km, _ := ByAbbr("KM")
	if km.Sizes[0] != 160 || km.Sizes[4] != 288 {
		t.Errorf("KM sizes %v, want 160..288 million points", km.Sizes)
	}
	ts, _ := ByAbbr("TS")
	if ts.Sizes[0] != 10 || ts.Sizes[4] != 50 {
		t.Errorf("TS sizes %v, want 10..50 GB", ts.Sizes)
	}
	if ts.InputMB(10) != 10*1024 {
		t.Errorf("TS InputMB(10) = %v, want 10240", ts.InputMB(10))
	}
}

func TestByAbbrUnknown(t *testing.T) {
	if _, err := ByAbbr("XX"); err == nil {
		t.Fatal("want error for unknown abbreviation")
	}
}

// Table 1's evaluation sizes step by roughly 10%-25% (NWeight's own steps
// in the paper are ~9.5%, so Eq. 4's strict ≥10% rule only binds the
// collecting component's training datasets, which internal/core enforces).
func TestSizesStepMeaningfully(t *testing.T) {
	for _, w := range All() {
		for i := 1; i < len(w.Sizes); i++ {
			lo, hi := w.Sizes[i-1], w.Sizes[i]
			if (hi-lo)/lo < 0.05 {
				t.Errorf("%s: sizes %v and %v differ by <5%%", w.Name, lo, hi)
			}
		}
	}
}

func TestSizesMB(t *testing.T) {
	wc, _ := ByAbbr("WC")
	mbs := wc.SizesMB()
	if mbs[0] != 80*1024 || mbs[4] != 160*1024 {
		t.Errorf("WC SizesMB = %v", mbs)
	}
}

// Every workload must run end to end on the simulator at its smallest and
// largest Table 1 sizes with the default configuration.
func TestWorkloadsRunOnSimulator(t *testing.T) {
	sim := sparksim.New(cluster.Standard(), 1)
	cfg := conf.StandardSpace().Default()
	for _, w := range All() {
		for _, units := range []float64{w.Sizes[0], w.Sizes[4]} {
			res := sim.Run(&w.Program, w.InputMB(units), cfg)
			if res.TotalSec <= 0 {
				t.Errorf("%s @ %v %s: time %v", w.Name, units, w.Unit, res.TotalSec)
			}
		}
	}
}

// TeraSort's characterization (§5.8): stage2 dominates, roughly 90/10.
func TestTeraSortStage2Dominates(t *testing.T) {
	sim := sparksim.New(cluster.Standard(), 1)
	ts, _ := ByAbbr("TS")
	cfg := conf.StandardSpace().Default().
		Set(conf.ExecutorMemory, 8192).
		Set(conf.DefaultParallelism, 50).
		Set(conf.Serializer, conf.SerializerKryo)
	res := sim.Run(&ts.Program, ts.InputMB(30), cfg)
	s1, s2 := res.Stage("stage1"), res.Stage("stage2")
	if s1 == nil || s2 == nil {
		t.Fatal("missing TS stages")
	}
	if s2.Sec <= s1.Sec {
		t.Errorf("stage2 (%v s) should dominate stage1 (%v s)", s2.Sec, s1.Sec)
	}
}

// KMeans' characterization (Fig. 13): the iterative stage dominates.
func TestKMeansIterateDominates(t *testing.T) {
	sim := sparksim.New(cluster.Standard(), 1)
	km, _ := ByAbbr("KM")
	cfg := conf.StandardSpace().Default().Set(conf.ExecutorMemory, 8192)
	res := sim.Run(&km.Program, km.InputMB(160), cfg)
	it := res.Stage("stageC-iterate")
	if it == nil {
		t.Fatal("missing iterate stage")
	}
	if it.Sec < 0.4*res.TotalSec {
		t.Errorf("iterate stage %v s is < 40%% of total %v s", it.Sec, res.TotalSec)
	}
}

func TestGenPoints(t *testing.T) {
	var buf bytes.Buffer
	n, err := GenPoints(&buf, 100, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("reported %d bytes, buffer has %d", n, buf.Len())
	}
	lines := bytes.Count(buf.Bytes(), []byte{'\n'})
	if lines != 100 {
		t.Errorf("%d lines, want 100", lines)
	}
	// Determinism.
	var buf2 bytes.Buffer
	GenPoints(&buf2, 100, 3, 1)
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("same seed produced different data")
	}
	var buf3 bytes.Buffer
	GenPoints(&buf3, 100, 3, 2)
	if bytes.Equal(buf.Bytes(), buf3.Bytes()) {
		t.Error("different seeds produced identical data")
	}
}

func TestGenPages(t *testing.T) {
	var buf bytes.Buffer
	n, err := GenPages(&buf, 50, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) || n == 0 {
		t.Errorf("byte accounting wrong: %d vs %d", n, buf.Len())
	}
	if lines := bytes.Count(buf.Bytes(), []byte{'\n'}); lines != 50 {
		t.Errorf("%d pages, want 50", lines)
	}
}

func TestGenEdges(t *testing.T) {
	var buf bytes.Buffer
	n, err := GenEdges(&buf, 200, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("byte accounting wrong")
	}
	if lines := bytes.Count(buf.Bytes(), []byte{'\n'}); lines != 200 {
		t.Errorf("%d edges, want 200", lines)
	}
}

func TestGenText(t *testing.T) {
	var buf bytes.Buffer
	n, err := GenText(&buf, 10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n < 10000 || n > 10100 {
		t.Errorf("generated %d bytes, want ~10000", n)
	}
	if int64(buf.Len()) != n {
		t.Errorf("byte accounting wrong")
	}
}

func TestGenTeraRecords(t *testing.T) {
	var buf bytes.Buffer
	n, err := GenTeraRecords(&buf, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10*99 {
		t.Errorf("generated %d bytes, want %d (99 per record)", n, 10*99)
	}
	first := buf.Bytes()[:99]
	for _, b := range first[:10] {
		if b < 'A' || b > 'Z' {
			t.Fatalf("key byte %q outside A-Z", b)
		}
	}
}

func TestZipfInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		v := zipf(rng, 100)
		if v < 0 || v >= 100 {
			t.Fatalf("zipf out of range: %d", v)
		}
	}
}
