package workloads

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
)

// The paper's collecting component uses each program's input dataset
// generator (DG) to produce datasets of controlled sizes (§3.1). The
// simulator itself consumes only dataset *sizes*, but the generators below
// synthesize actual records deterministically so examples and tests can
// demonstrate (and verify) the bytes-per-unit scales the workloads declare.

// GenPoints writes n KMeans points with dim features each, one point per
// line, and returns the number of bytes written. Records average the
// ~0.22 KB the motivation study implies.
func GenPoints(w io.Writer, n int, dim int, seed int64) (int64, error) {
	rng := rand.New(rand.NewSource(seed))
	bw := bufio.NewWriter(w)
	var written int64
	for i := 0; i < n; i++ {
		for d := 0; d < dim; d++ {
			if d > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return written, err
				}
				written++
			}
			s := fmt.Sprintf("%.6f", rng.NormFloat64()*10)
			k, err := bw.WriteString(s)
			written += int64(k)
			if err != nil {
				return written, err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return written, err
		}
		written++
	}
	return written, bw.Flush()
}

// GenPages writes n synthetic web pages (id, outlinks, word payload) for
// PageRank/Bayes-style inputs and returns the bytes written. meanWords
// controls page size.
func GenPages(w io.Writer, n int, meanWords int, seed int64) (int64, error) {
	rng := rand.New(rand.NewSource(seed))
	bw := bufio.NewWriter(w)
	var written int64
	emit := func(s string) error {
		k, err := bw.WriteString(s)
		written += int64(k)
		return err
	}
	for i := 0; i < n; i++ {
		if err := emit(fmt.Sprintf("page%d\t", i)); err != nil {
			return written, err
		}
		links := 1 + rng.Intn(10)
		for l := 0; l < links; l++ {
			if err := emit(fmt.Sprintf("page%d,", rng.Intn(n))); err != nil {
				return written, err
			}
		}
		words := meanWords/2 + rng.Intn(meanWords+1)
		for k := 0; k < words; k++ {
			if err := emit(fmt.Sprintf(" w%d", zipf(rng, 50000))); err != nil {
				return written, err
			}
		}
		if err := emit("\n"); err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// GenEdges writes n graph edges ("src dst weight") for NWeight and returns
// the bytes written. Degrees follow a heavy-tailed distribution so graph
// partitions skew the way GraphX workloads do.
func GenEdges(w io.Writer, n int, vertices int, seed int64) (int64, error) {
	rng := rand.New(rand.NewSource(seed))
	bw := bufio.NewWriter(w)
	var written int64
	for i := 0; i < n; i++ {
		src := zipf(rng, vertices)
		dst := rng.Intn(vertices)
		k, err := fmt.Fprintf(bw, "%d %d %.3f\n", src, dst, rng.Float64())
		written += int64(k)
		if err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// GenText writes approximately sizeBytes of whitespace-separated words with
// a Zipfian vocabulary (WordCount's input) and returns the bytes written.
func GenText(w io.Writer, sizeBytes int64, seed int64) (int64, error) {
	rng := rand.New(rand.NewSource(seed))
	bw := bufio.NewWriter(w)
	var written int64
	col := 0
	for written < sizeBytes {
		s := fmt.Sprintf("word%d", zipf(rng, 100000))
		k, err := bw.WriteString(s)
		written += int64(k)
		if err != nil {
			return written, err
		}
		col += k
		sep := byte(' ')
		if col > 80 {
			sep, col = '\n', 0
		}
		if err := bw.WriteByte(sep); err != nil {
			return written, err
		}
		written++
	}
	return written, bw.Flush()
}

// GenTeraRecords writes n TeraSort records (10-byte key, 88-byte payload,
// newline — the classic 100-byte year record rounded to 99 ASCII bytes)
// and returns the bytes written.
func GenTeraRecords(w io.Writer, n int, seed int64) (int64, error) {
	rng := rand.New(rand.NewSource(seed))
	bw := bufio.NewWriter(w)
	var written int64
	key := make([]byte, 10)
	payload := make([]byte, 88)
	for i := 0; i < n; i++ {
		for j := range key {
			key[j] = byte('A' + rng.Intn(26))
		}
		for j := range payload {
			payload[j] = byte('a' + (i+j)%26)
		}
		for _, chunk := range [][]byte{key, payload, {'\n'}} {
			k, err := bw.Write(chunk)
			written += int64(k)
			if err != nil {
				return written, err
			}
		}
	}
	return written, bw.Flush()
}

// zipf draws from a crude Zipf-like distribution over [0, n): rank r with
// probability proportional to 1/(r+1).
func zipf(rng *rand.Rand, n int) int {
	u := rng.Float64()
	// Inverse CDF of the continuous approximation: harmonic mass.
	return int(float64(n) * (u * u * u))
}
