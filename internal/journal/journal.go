// Package journal implements the append-only, CRC-guarded record of
// completed collect rows shared by the daemon's durable jobs
// (internal/serve) and the fleet coordinator's merged sweeps
// (internal/fleet). Each record is one (row index, time) pair; the
// sweep's job list is a pure function of its options, so the index alone
// identifies the row across daemon restarts and across workers. The
// header carries a hash of the sweep's parameters — opening a journal
// with different parameters fails instead of silently splicing rows from
// a different sweep into the training set.
package journal

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
)

// magic heads every journal file, followed by the meta hash that binds
// the journal to one exact sweep.
const magic = "dacj1"

// Journal is an append-only record of completed collect rows, the
// durable half of core.CollectResumable (and, for sharded sweeps, the
// coordinator's merge target).
//
// The on-disk format is line-oriented text:
//
//	dacj1 <metaHash>\n
//	r,<index>,<timeSec>,<crc32>\n
//	...
//
// with timeSec in strconv 'g'/-1 form (round-trips exactly) and the CRC
// over the line's first three fields. A torn tail — the partial last line
// a SIGKILL can leave — fails its CRC or parse and is truncated away on
// open; every fully synced record before it survives.
//
// Records normally land in completion order. Compact rewrites the file
// in global row-index order with duplicates dropped — the canonical
// merged form a sharded sweep converges to regardless of worker count.
type Journal struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	meta  string
	known map[int]float64
	// records counts record lines physically in the file, duplicates
	// included; records-len(known) is what Compact will drop.
	records int
}

// MetaHash canonicalizes a sweep's identity into the hash the journal
// header stores: FNV-64a over the workload, seed, row count, and exact
// training sizes.
func MetaHash(workload string, seed int64, ntrain int, sizesMB []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%d|%d", workload, seed, ntrain)
	for _, s := range sizesMB {
		b.WriteByte('|')
		b.WriteString(strconv.FormatFloat(s, 'g', -1, 64))
	}
	h := fnv.New64a()
	h.Write([]byte(b.String()))
	return fmt.Sprintf("%016x", h.Sum64())
}

// Open opens (or creates) the journal at path for the sweep identified
// by metaHash. Existing records are loaded into the known map; a corrupt
// or torn tail is truncated. A header naming a different sweep is an
// error.
func Open(path, metaHash string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{f: f, path: path, meta: metaHash, known: make(map[int]float64)}

	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if fi.Size() == 0 {
		if _, err := fmt.Fprintf(f, "%s %s\n", magic, metaHash); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
		return j, nil
	}

	// Replay: header, then records until EOF or the first bad line.
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		f.Close()
		return nil, fmt.Errorf("journal %s: missing header", path)
	}
	header := sc.Text()
	want := magic + " " + metaHash
	if header != want {
		f.Close()
		return nil, fmt.Errorf("journal %s: header %q does not match this sweep (%q) — refusing to mix rows from a different collect", path, header, want)
	}
	goodBytes := int64(len(header) + 1)
	for sc.Scan() {
		line := sc.Text()
		idx, sec, ok := parseRecord(line)
		if !ok {
			break // torn or corrupt tail: truncate from here
		}
		j.known[idx] = sec
		j.records++
		goodBytes += int64(len(line) + 1)
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal %s: %w", path, err)
	}
	if goodBytes != fi.Size() {
		if err := f.Truncate(goodBytes); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(goodBytes, 0); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// recordLine formats one record with its CRC, newline-terminated.
func recordLine(idx int, sec float64) string {
	body := "r," + strconv.Itoa(idx) + "," + strconv.FormatFloat(sec, 'g', -1, 64)
	return fmt.Sprintf("%s,%08x\n", body, crc32.ChecksumIEEE([]byte(body)))
}

// parseRecord decodes one "r,<idx>,<time>,<crc>" line, verifying the CRC.
func parseRecord(line string) (idx int, sec float64, ok bool) {
	body, crcHex, found := cutLast(line, ',')
	if !found || !strings.HasPrefix(body, "r,") {
		return 0, 0, false
	}
	crc, err := strconv.ParseUint(crcHex, 16, 32)
	if err != nil || crc32.ChecksumIEEE([]byte(body)) != uint32(crc) {
		return 0, 0, false
	}
	fields := strings.Split(body, ",")
	if len(fields) != 3 {
		return 0, 0, false
	}
	idx, err = strconv.Atoi(fields[1])
	if err != nil || idx < 0 {
		return 0, 0, false
	}
	sec, err = strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return 0, 0, false
	}
	return idx, sec, true
}

// cutLast splits s around the last occurrence of sep.
func cutLast(s string, sep byte) (before, after string, found bool) {
	if i := strings.LastIndexByte(s, sep); i >= 0 {
		return s[:i], s[i+1:], true
	}
	return s, "", false
}

// Known reports row idx's journaled time — core.CollectHooks.Known's
// shape.
func (j *Journal) Known(idx int) (float64, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	sec, ok := j.known[idx]
	return sec, ok
}

// Rows returns the number of distinct journaled rows.
func (j *Journal) Rows() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.known)
}

// Append journals a batch of completed rows and syncs the file — the
// checkpoint. Safe for concurrent use from collect workers and the
// coordinator's merge path; rows are durable once Append returns.
func (j *Journal) Append(rows []core.RowTime) error {
	var b strings.Builder
	for _, r := range rows {
		b.WriteString(recordLine(r.Index, r.TimeSec))
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.WriteString(b.String()); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	for _, r := range rows {
		j.known[r.Index] = r.TimeSec
	}
	j.records += len(rows)
	return nil
}

// Compact rewrites the journal as its canonical merged form: the header
// followed by exactly one record per known row in global row-index
// order. Duplicate records — a zombie worker's chunk that was also
// re-executed after its lease expired, or a row journaled twice across a
// resume boundary — are dropped (last write wins, matching replay
// semantics). The rewrite goes through a temp file, fsync, and an atomic
// rename, so a crash mid-compaction leaves either the old or the new
// file, both valid; the compacted file keeps the torn-tail truncation
// contract of any other journal. Returns the number of dropped records.
func (j *Journal) Compact() (dropped int, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()

	idxs := make([]int, 0, len(j.known))
	for idx := range j.known {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)

	tmp, err := os.CreateTemp(filepath.Dir(j.path), filepath.Base(j.path)+".compact*")
	if err != nil {
		return 0, err
	}
	w := bufio.NewWriter(tmp)
	fmt.Fprintf(w, "%s %s\n", magic, j.meta)
	for _, idx := range idxs {
		w.WriteString(recordLine(idx, j.known[idx]))
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	// The old descriptor points at the unlinked inode; reopen the
	// compacted file for any further appends.
	j.f.Close()
	f, err := os.OpenFile(j.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return 0, err
	}
	j.f = f
	dropped = j.records - len(idxs)
	j.records = len(idxs)
	return dropped, nil
}

// Close closes the underlying file. The journal is not usable afterwards.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
