package journal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

func rows(pairs ...float64) []core.RowTime {
	out := make([]core.RowTime, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, core.RowTime{Index: int(pairs[i]), TimeSec: pairs[i+1]})
	}
	return out
}

// Compact must rewrite the file in global row-index order, drop
// duplicate records, and leave a journal that reopens to the same known
// map and accepts further appends.
func TestCompactCanonicalOrderAndDedup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	meta := MetaHash("TS", 1, 100, []float64{10})
	j, err := Open(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-order arrival (two workers racing) plus a duplicate row 3:
	// the requeued chunk re-executed after a lease expiry.
	if err := j.Append(rows(3, 3.25, 7, 7.5)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rows(1, 1.125, 3, 3.25)); err != nil {
		t.Fatal(err)
	}
	dropped, err := j.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1 (the duplicate row 3)", dropped)
	}

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := "dacj1 " + meta + "\n" + recordLine(1, 1.125) + recordLine(3, 3.25) + recordLine(7, 7.5)
	if string(b) != want {
		t.Fatalf("compacted file:\n%q\nwant:\n%q", b, want)
	}

	// The compacted journal still appends.
	if err := j.Append(rows(9, 9.75)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Rows() != 4 {
		t.Fatalf("reopened rows = %d, want 4", re.Rows())
	}
	for _, c := range []struct {
		idx int
		sec float64
	}{{1, 1.125}, {3, 3.25}, {7, 7.5}, {9, 9.75}} {
		if sec, ok := re.Known(c.idx); !ok || sec != c.sec {
			t.Fatalf("row %d = (%v,%v), want (%v,true)", c.idx, sec, ok, c.sec)
		}
	}
}

// A second Compact with nothing to drop is a no-op rewrite.
func TestCompactIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	meta := MetaHash("WC", 2, 10, []float64{5, 6})
	j, err := Open(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(rows(0, 2.5, 1, 3.5)); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dropped, err := j.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("second compact dropped %d, want 0", dropped)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatalf("compact not idempotent:\n%q\nvs\n%q", first, second)
	}
}

// A torn tail on a *compacted* file — the partial last line a SIGKILL
// can leave — must truncate away on open, keeping every whole record
// before it. The compacted layout is index-sorted, so the surviving
// prefix is the lowest indices.
func TestCompactedTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	meta := MetaHash("TS", 1, 50, []float64{10})
	j, err := Open(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rows(4, 4.5, 2, 2.5, 0, 0.5)); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear mid-way through the last record's line.
	lines := strings.SplitAfter(string(b), "\n")
	last := lines[len(lines)-2] // final "" after trailing \n is -1
	torn := string(b[:len(b)-len(last)]) + last[:len(last)/2]
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Rows() != 2 {
		t.Fatalf("rows after torn tail = %d, want 2", re.Rows())
	}
	for _, idx := range []int{0, 2} {
		if _, ok := re.Known(idx); !ok {
			t.Fatalf("row %d lost", idx)
		}
	}
	if _, ok := re.Known(4); ok {
		t.Fatal("torn row 4 survived")
	}
	// The truncated file must be appendable again without corruption.
	if err := re.Append(rows(4, 4.5)); err != nil {
		t.Fatal(err)
	}
	re.Close()
	re2, err := Open(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if re2.Rows() != 3 {
		t.Fatalf("rows after re-append = %d, want 3", re2.Rows())
	}
}

// Opening with a different meta hash must refuse.
func TestCompactKeepsMetaBinding(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	meta := MetaHash("TS", 1, 100, []float64{10})
	j, err := Open(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rows(0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := Open(path, MetaHash("TS", 2, 100, []float64{10})); err == nil {
		t.Fatal("compacted journal opened under a different sweep's meta hash")
	}
}
