package sparksim_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/conf"
	"repro/internal/sparksim"
	"repro/internal/workloads"
)

// oomConfig returns a configuration the memory accounting must reject:
// minimal executor heap and memory fraction, maximal in-flight fetch
// buffers, and a single task attempt, so a reduce task's unspillable
// state can never fit what the executor can lend it.
func oomConfig(space *conf.Space) conf.Config {
	cfg := space.Default()
	cfg = cfg.Set(conf.ExecutorMemory, 1024)
	cfg = cfg.Set(conf.ExecutorCores, 12)
	cfg = cfg.Set(conf.MemoryFraction, 0.5)
	cfg = cfg.Set(conf.DefaultParallelism, 8)
	cfg = cfg.Set(conf.ReducerMaxSizeInFlight, 128)
	cfg = cfg.Set(conf.TaskMaxFailures, 1)
	return cfg
}

func TestCheckMemoryDefaultIsSafe(t *testing.T) {
	space := conf.StandardSpace()
	for _, w := range workloads.All() {
		mb := w.InputMB(w.Sizes[0])
		v := sparksim.CheckMemory(cluster.Standard(), space.Default(), &w.Program, mb)
		if v.Abort {
			t.Errorf("%s: default configuration predicted to OOM at %.0f MB (worst %q %.2f)",
				w.Abbr, mb, v.WorstStage, v.WorstPressure)
		}
		if v.WorstPressure <= 0 || math.IsInf(v.WorstPressure, 1) {
			t.Errorf("%s: implausible worst pressure %v", w.Abbr, v.WorstPressure)
		}
		if v.WorstStage == "" {
			t.Errorf("%s: no worst stage named", w.Abbr)
		}
	}
}

func TestCheckMemoryRejectsStarvedConfig(t *testing.T) {
	space := conf.StandardSpace()
	cfg := oomConfig(space)
	w, err := workloads.ByAbbr("TS")
	if err != nil {
		t.Fatal(err)
	}
	mb := w.InputMB(w.Sizes[len(w.Sizes)-1])
	v := sparksim.CheckMemory(cluster.Standard(), cfg, &w.Program, mb)
	if !v.Abort {
		t.Fatalf("starved configuration not predicted to OOM (worst %q %.2f)", v.WorstStage, v.WorstPressure)
	}
	if v.WorstPressure <= 1 {
		t.Errorf("aborting configuration reports pressure %.2f <= 1", v.WorstPressure)
	}
}

// TestCheckMemoryMatchesSimulatorAborts is the guard's calibration
// contract: whenever CheckMemory predicts an abort, actually running the
// simulator must produce an aborted result — otherwise the online tuner
// would veto configurations that execute fine. (The converse is not
// required: the simulator also aborts for reasons outside the memory
// accounting, e.g. driver-side collect overflow.)
func TestCheckMemoryMatchesSimulatorAborts(t *testing.T) {
	space := conf.StandardSpace()
	cl := cluster.Standard()
	sim := sparksim.New(cl, 7)
	rng := rand.New(rand.NewSource(11))
	for _, w := range workloads.All() {
		aborts := 0
		for i := 0; i < 40; i++ {
			cfg := space.Random(rng)
			mb := w.InputMB(w.Sizes[i%len(w.Sizes)])
			v := sparksim.CheckMemory(cl, cfg, &w.Program, mb)
			if !v.Abort {
				continue
			}
			aborts++
			res := sim.Run(&w.Program, mb, cfg)
			if !res.Aborted {
				t.Errorf("%s cfg %d: CheckMemory predicts abort but the simulator completed (worst %q %.2f)",
					w.Abbr, i, v.WorstStage, v.WorstPressure)
			}
		}
		// The crafted starved configuration must abort in both worlds so
		// the implication above is exercised on every workload.
		cfg := oomConfig(space)
		mb := w.InputMB(w.Sizes[len(w.Sizes)-1])
		v := sparksim.CheckMemory(cl, cfg, &w.Program, mb)
		res := sim.Run(&w.Program, mb, cfg)
		if v.Abort != res.Aborted {
			t.Errorf("%s starved cfg: CheckMemory abort=%v, simulator aborted=%v", w.Abbr, v.Abort, res.Aborted)
		}
		if v.Abort {
			aborts++
		}
		if aborts == 0 {
			t.Errorf("%s: no aborting configuration found; calibration test is vacuous", w.Abbr)
		}
	}
}

func TestCheckMemoryDeterministic(t *testing.T) {
	space := conf.StandardSpace()
	w, _ := workloads.ByAbbr("WC")
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		cfg := space.Random(rng)
		mb := w.InputMB(w.Sizes[i%len(w.Sizes)])
		a := sparksim.CheckMemory(cluster.Standard(), cfg, &w.Program, mb)
		b := sparksim.CheckMemory(cluster.Standard(), cfg, &w.Program, mb)
		if a != b {
			t.Fatalf("verdicts differ across calls: %+v vs %+v", a, b)
		}
	}
}
