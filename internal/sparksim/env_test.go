package sparksim

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/conf"
)

func envFor(t *testing.T, mutate func(conf.Config)) *env {
	t.Helper()
	cfg := conf.StandardSpace().Default()
	if mutate != nil {
		mutate(cfg)
	}
	return newEnv(cluster.Standard(), cfg, Options{})
}

func TestExecutorSizingCoreBound(t *testing.T) {
	// Default: 12 cores per executor, 1 GB heap: cores bind first.
	e := envFor(t, nil)
	if e.executorsPerNode != 6 { // 72 cores / 12
		t.Errorf("executorsPerNode = %d, want 6", e.executorsPerNode)
	}
	if e.slots != 6*12*5 {
		t.Errorf("slots = %d, want 360", e.slots)
	}
}

func TestExecutorSizingMemoryBound(t *testing.T) {
	// 12 GB heap + overhead ≈ 13.5 GB per executor: memory binds at 4
	// per node even with 1-core executors.
	e := envFor(t, func(c conf.Config) {
		c.Set(conf.ExecutorMemory, 12288)
		c.Set(conf.ExecutorCores, 1)
	})
	if e.executorsPerNode != 4 {
		t.Errorf("executorsPerNode = %d, want 4 (memory bound)", e.executorsPerNode)
	}
}

func TestUnifiedMemoryPools(t *testing.T) {
	e := envFor(t, func(c conf.Config) {
		c.Set(conf.ExecutorMemory, 4096)
		c.Set(conf.MemoryFraction, 0.75)
		c.Set(conf.MemoryStorageFraction, 0.5)
	})
	wantUsable := (4096.0 - 300) * 0.75
	if e.usableMB != wantUsable {
		t.Errorf("usableMB = %v, want %v", e.usableMB, wantUsable)
	}
	if e.userMB != (4096.0-300)*0.25 {
		t.Errorf("userMB = %v", e.userMB)
	}
}

func TestOffHeapAddsToUsable(t *testing.T) {
	base := envFor(t, nil)
	off := envFor(t, func(c conf.Config) {
		c.SetBool(conf.MemoryOffHeapEnabled, true)
		c.Set(conf.MemoryOffHeapSize, 1000)
	})
	if off.usableMB <= base.usableMB {
		t.Errorf("off-heap did not grow usable memory: %v vs %v", off.usableMB, base.usableMB)
	}
}

func TestSerializerProperties(t *testing.T) {
	java := envFor(t, nil)
	kryo := envFor(t, func(c conf.Config) { c.Set(conf.Serializer, conf.SerializerKryo) })
	if kryo.ser.secPerMB >= java.ser.secPerMB {
		t.Error("kryo should serialize cheaper than java")
	}
	if kryo.ser.sizeFactor >= java.ser.sizeFactor {
		t.Error("kryo should be more compact than java")
	}
	// Reference tracking costs CPU.
	noTrack := envFor(t, func(c conf.Config) {
		c.Set(conf.Serializer, conf.SerializerKryo)
		c.SetBool(conf.KryoReferenceTracking, false)
	})
	if noTrack.ser.secPerMB >= kryo.ser.secPerMB {
		t.Error("disabling reference tracking should cut serialization CPU")
	}
}

func TestCodecProperties(t *testing.T) {
	for _, tc := range []struct {
		codec int
		name  string
	}{{conf.CodecSnappy, "snappy"}, {conf.CodecLZF, "lzf"}, {conf.CodecLZ4, "lz4"}} {
		e := envFor(t, func(c conf.Config) { c.Set(conf.IOCompressionCodec, float64(tc.codec)) })
		if e.codec.ratio <= 0 || e.codec.ratio >= 1 {
			t.Errorf("%s ratio %v out of (0,1)", tc.name, e.codec.ratio)
		}
		if e.codec.compressMBps <= 0 {
			t.Errorf("%s speed %v", tc.name, e.codec.compressMBps)
		}
	}
}

func TestRDDCompressionChangesCacheRepresentation(t *testing.T) {
	plain := envFor(t, nil)
	comp := envFor(t, func(c conf.Config) { c.SetBool(conf.RDDCompress, true) })
	if comp.cachedExpansion >= plain.cachedExpansion {
		t.Error("compressed cache should be smaller per raw MB")
	}
	if comp.cachedReadSecPerMB <= plain.cachedReadSecPerMB {
		t.Error("compressed cache should cost CPU to read")
	}
}

func TestCacheHitRatio(t *testing.T) {
	e := envFor(t, func(c conf.Config) { c.Set(conf.ExecutorMemory, 8192) })
	e.cacheAdd(1000) // 1 GB raw, deserialized 2.5 GB, plenty of room
	if e.cacheHit != 1 {
		t.Errorf("small cache add should fully fit: hit=%v", e.cacheHit)
	}
	e.cacheAdd(1e6) // a TB: cannot fit
	if e.cacheHit >= 0.5 {
		t.Errorf("oversized cache should miss: hit=%v", e.cacheHit)
	}
}

func TestExecMemPerTaskShrinksWithResidentCache(t *testing.T) {
	e := envFor(t, func(c conf.Config) { c.Set(conf.ExecutorMemory, 8192) })
	before := e.execMemPerTaskMB()
	e.cacheAdd(1e5) // fill storage
	after := e.execMemPerTaskMB()
	if after >= before {
		t.Errorf("resident cache should squeeze execution memory: %v -> %v", before, after)
	}
	// But never below the evictable watermark.
	if after <= 0 {
		t.Errorf("execution memory cannot be starved to zero: %v", after)
	}
}

func TestBlockRatioAdjustBounds(t *testing.T) {
	for _, blk := range []float64{2, 32, 128} {
		v := blockRatioAdjust(blk)
		if v < 0.92 || v > 1.08 {
			t.Errorf("blockRatioAdjust(%v) = %v out of bounds", blk, v)
		}
	}
	if blockRatioAdjust(128) >= blockRatioAdjust(2) {
		t.Error("bigger blocks should compress better (smaller ratio)")
	}
}
