package sparksim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/conf"
)

// testProgram is a small two-stage shuffle job used across tests.
func testProgram() *Program {
	return &Program{
		Name: "test-job",
		Stages: []Stage{
			{Name: "map", InputFrac: 1, CPUSecPerMB: 0.05, ShuffleFrac: 0.5, MemExpansion: 2},
			{Name: "reduce", ReadsShuffle: true, ShuffleInFrac: 0.5, CPUSecPerMB: 0.03, MemExpansion: 2, OutputFrac: 0.1},
		},
	}
}

func newTestSim() *Simulator { return New(cluster.Standard(), 1) }

func TestRunProducesPositiveTime(t *testing.T) {
	sim := newTestSim()
	cfg := conf.StandardSpace().Default()
	res := sim.Run(testProgram(), 10*1024, cfg)
	if res.TotalSec <= 0 {
		t.Fatalf("TotalSec = %v, want > 0", res.TotalSec)
	}
	if len(res.Stages) != 2 {
		t.Fatalf("got %d stage results, want 2", len(res.Stages))
	}
	sum := 0.0
	for _, sr := range res.Stages {
		if sr.Sec < 0 || sr.GCSec < 0 || sr.SpillSec < 0 {
			t.Errorf("stage %s has negative component: %+v", sr.Name, sr)
		}
		sum += sr.Sec
	}
	if res.Aborted {
		if res.TotalSec < sum {
			t.Errorf("aborted total %v should include penalty over stage sum %v", res.TotalSec, sum)
		}
	} else if diff := res.TotalSec - sum; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("TotalSec %v != stage sum %v", res.TotalSec, sum)
	}
}

func TestRunIsDeterministic(t *testing.T) {
	cfg := conf.StandardSpace().Default()
	a := newTestSim().Run(testProgram(), 5000, cfg)
	b := newTestSim().Run(testProgram(), 5000, cfg)
	if a.TotalSec != b.TotalSec {
		t.Fatalf("same seed gave %v and %v", a.TotalSec, b.TotalSec)
	}
	c := New(cluster.Standard(), 2).Run(testProgram(), 5000, cfg)
	if a.TotalSec == c.TotalSec {
		t.Error("different seeds gave identical noisy results (suspicious)")
	}
}

func TestMoreDataTakesLonger(t *testing.T) {
	sim := newTestSim()
	cfg := conf.StandardSpace().Default()
	small := sim.Run(testProgram(), 1024, cfg)
	big := sim.Run(testProgram(), 64*1024, cfg)
	if big.TotalSec <= small.TotalSec {
		t.Fatalf("64GB (%v s) not slower than 1GB (%v s)", big.TotalSec, small.TotalSec)
	}
}

func TestMoreMemoryHelpsUnderPressure(t *testing.T) {
	sim := newTestSim()
	space := conf.StandardSpace()
	small := space.Default() // 1024 MB executors
	large := space.Default().Set(conf.ExecutorMemory, 12288)
	tSmall := sim.Run(testProgram(), 50*1024, small)
	tLarge := sim.Run(testProgram(), 50*1024, large)
	if tLarge.TotalSec >= tSmall.TotalSec {
		t.Fatalf("12GB executors (%v s) not faster than 1GB (%v s) on 50GB input",
			tLarge.TotalSec, tSmall.TotalSec)
	}
}

func TestKryoBeatsJavaOnShuffleHeavyJob(t *testing.T) {
	sim := newTestSim()
	space := conf.StandardSpace()
	base := space.Default().Set(conf.ExecutorMemory, 8192).Set(conf.DefaultParallelism, 50)
	java := base.Clone().Set(conf.Serializer, conf.SerializerJava)
	kryo := base.Clone().Set(conf.Serializer, conf.SerializerKryo)
	tj := sim.Run(testProgram(), 40*1024, java)
	tk := sim.Run(testProgram(), 40*1024, kryo)
	if tk.TotalSec >= tj.TotalSec {
		t.Fatalf("kryo (%v s) not faster than java (%v s)", tk.TotalSec, tj.TotalSec)
	}
}

func TestSpillDisabledCausesFailures(t *testing.T) {
	sim := newTestSim()
	cfg := conf.StandardSpace().Default().
		SetBool(conf.ShuffleSpill, false).
		Set(conf.DefaultParallelism, 8).
		Set(conf.TaskMaxFailures, 1)
	res := sim.Run(testProgram(), 100*1024, cfg)
	if res.TasksFailed == 0 && !res.Aborted {
		t.Fatal("100GB with no spilling, tiny executors and maxFailures=1 should fail tasks")
	}
}

func TestAbortPenaltyApplied(t *testing.T) {
	sim := newTestSim()
	cfg := conf.StandardSpace().Default().
		SetBool(conf.ShuffleSpill, false).
		Set(conf.DefaultParallelism, 8).
		Set(conf.TaskMaxFailures, 1)
	res := sim.Run(testProgram(), 200*1024, cfg)
	if !res.Aborted {
		t.Skip("configuration did not abort; threshold moved")
	}
	if res.TotalSec < 300 {
		t.Errorf("aborted run time %v should include the rerun penalty", res.TotalSec)
	}
}

func TestGCReportedAndDisableable(t *testing.T) {
	cfg := conf.StandardSpace().Default()
	on := newTestSim().Run(testProgram(), 20*1024, cfg)
	if on.GCSec <= 0 {
		t.Fatal("expected nonzero GC time on a default-config run")
	}
	off := &Simulator{Cluster: cluster.Standard(), Seed: 1, Opt: Options{DisableGC: true}}
	res := off.Run(testProgram(), 20*1024, cfg)
	if res.GCSec != 0 {
		t.Fatalf("DisableGC run reported GCSec=%v", res.GCSec)
	}
	if res.TotalSec >= on.TotalSec {
		t.Error("disabling GC should not slow the job down")
	}
}

func TestSpillAccounting(t *testing.T) {
	sim := newTestSim()
	cfg := conf.StandardSpace().Default().Set(conf.DefaultParallelism, 8)
	res := sim.Run(testProgram(), 100*1024, cfg)
	if res.SpillMB <= 0 {
		t.Fatal("big job on 1GB executors should spill")
	}
	rich := conf.StandardSpace().Default().
		Set(conf.ExecutorMemory, 12288).
		Set(conf.ExecutorCores, 2).
		Set(conf.DefaultParallelism, 50)
	res2 := sim.Run(testProgram(), 10*1024, rich)
	if res2.SpillMB >= res.SpillMB {
		t.Errorf("well-provisioned job spilled %v MB >= starved job %v MB", res2.SpillMB, res.SpillMB)
	}
}

func TestSpeculationTrimsStragglers(t *testing.T) {
	// With heavy skew, enabling speculation should reduce the makespan.
	p := &Program{
		Name: "skewed",
		Stages: []Stage{
			{Name: "map", InputFrac: 1, CPUSecPerMB: 0.2, MemExpansion: 1, SkewFactor: 6},
		},
	}
	space := conf.StandardSpace()
	off := space.Default().Set(conf.ExecutorMemory, 8192)
	on := off.Clone().SetBool(conf.Speculation, true)
	sim := newTestSim()
	tOff := sim.Run(p, 30*1024, off).TotalSec
	tOn := sim.Run(p, 30*1024, on).TotalSec
	if tOn >= tOff {
		t.Fatalf("speculation on (%v s) not faster than off (%v s) under skew", tOn, tOff)
	}
}

func TestCacheMissesSlowIterativeJobs(t *testing.T) {
	p := &Program{
		Name: "iterative",
		Stages: []Stage{
			{Name: "load", InputFrac: 1, CPUSecPerMB: 0.02, MemExpansion: 2, CacheOutputFrac: 1},
			{Name: "iterate", Repeat: 5, CacheInput: true, InputFrac: 1, CPUSecPerMB: 0.05, MemExpansion: 1.5},
		},
	}
	sim := newTestSim()
	cfg := conf.StandardSpace().Default().Set(conf.ExecutorMemory, 12288).Set(conf.ExecutorCores, 4)
	fits := sim.Run(p, 20*1024, cfg)    // 20GB cached across ~160GB of storage
	spills := sim.Run(p, 300*1024, cfg) // 300GB cannot be cached
	perMBFits := fits.TotalSec / (20 * 1024)
	perMBSpills := spills.TotalSec / (300 * 1024)
	if perMBSpills <= perMBFits {
		t.Fatalf("per-MB cost should rise when the working set stops fitting: %v vs %v",
			perMBSpills, perMBFits)
	}
}

func TestValidateCatchesBadPrograms(t *testing.T) {
	bad := []Program{
		{Name: "", Stages: []Stage{{Name: "s"}}},
		{Name: "x"},
		{Name: "x", Stages: []Stage{{Name: ""}}},
		{Name: "x", Stages: []Stage{{Name: "s", InputFrac: -1}}},
		{Name: "x", Stages: []Stage{{Name: "s", ReadsShuffle: true}}},
		{Name: "x", Stages: []Stage{{Name: "s", CPUSecPerMB: -0.1}}},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("program %d should fail validation", i)
		}
	}
	if err := testProgram().Validate(); err != nil {
		t.Errorf("good program failed validation: %v", err)
	}
}

func TestScheduleTasks(t *testing.T) {
	// 4 tasks of 1s on 2 slots: makespan 2s.
	span, n := scheduleTasks([]float64{1, 1, 1, 1}, 2)
	if span != 2 || n != 4 {
		t.Fatalf("span=%v n=%d, want 2, 4", span, n)
	}
	// One long task dominates.
	span, _ = scheduleTasks([]float64{5, 1, 1, 1}, 4)
	if span != 5 {
		t.Fatalf("span=%v, want 5", span)
	}
	// Zero slots clamps to one slot.
	span, _ = scheduleTasks([]float64{1, 1}, 0)
	if span != 2 {
		t.Fatalf("span=%v, want 2 on a single slot", span)
	}
}

// Property: execution time is always positive and finite for random legal
// configurations — the models must never see NaN targets.
func TestRunAlwaysFiniteProperty(t *testing.T) {
	sim := newTestSim()
	space := conf.StandardSpace()
	rng := rand.New(rand.NewSource(6))
	f := func(int64) bool {
		cfg := space.Random(rng)
		mb := 1024 * (1 + rng.Float64()*99)
		res := sim.Run(testProgram(), mb, cfg)
		return res.TotalSec > 0 && res.TotalSec < 1e9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: per-stage components never exceed the stage's total.
func TestStageComponentBoundsProperty(t *testing.T) {
	sim := newTestSim()
	space := conf.StandardSpace()
	rng := rand.New(rand.NewSource(7))
	f := func(int64) bool {
		cfg := space.Random(rng)
		res := sim.Run(testProgram(), 20*1024, cfg)
		for _, sr := range res.Stages {
			if sr.GCSec < 0 || sr.SpillSec < 0 || sr.ShuffleReadSec < 0 || sr.ShuffleWriteSec < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: with run-to-run noise disabled, doubling the input never makes
// a job faster, for any legal configuration.
func TestDatasizeMonotoneProperty(t *testing.T) {
	sim := &Simulator{Cluster: cluster.Standard(), Seed: 1, Opt: Options{NoiseSigma: -1}}
	space := conf.StandardSpace()
	rng := rand.New(rand.NewSource(11))
	p := testProgram()
	for k := 0; k < 60; k++ {
		cfg := space.Random(rng)
		mb := 1024 * (2 + rng.Float64()*30)
		small := sim.Run(p, mb, cfg).TotalSec
		big := sim.Run(p, 2*mb, cfg).TotalSec
		if big <= small {
			t.Fatalf("config %d: 2x input not slower (%.1fs -> %.1fs)\n%s", k, small, big, cfg)
		}
	}
}

// Noise can be disabled entirely for deterministic what-if analysis.
func TestNoiseDisabled(t *testing.T) {
	a := &Simulator{Cluster: cluster.Standard(), Seed: 1, Opt: Options{NoiseSigma: -1}}
	b := &Simulator{Cluster: cluster.Standard(), Seed: 2, Opt: Options{NoiseSigma: -1}}
	cfg := conf.StandardSpace().Default()
	ra := a.Run(testProgram(), 10*1024, cfg).TotalSec
	rb := b.Run(testProgram(), 10*1024, cfg).TotalSec
	// Different seeds, noise fully disabled: identical results.
	if ra != rb {
		t.Fatalf("noise-free runs differ: %v vs %v", ra, rb)
	}
}

func TestResultStageLookup(t *testing.T) {
	res := newTestSim().Run(testProgram(), 1024, conf.StandardSpace().Default())
	if res.Stage("map") == nil || res.Stage("reduce") == nil {
		t.Fatal("stage lookup failed")
	}
	if res.Stage("nope") != nil {
		t.Fatal("lookup of missing stage should return nil")
	}
}
