package sparksim

import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/conf"
)

// BenchmarkRunDefault measures one simulated execution under the default
// configuration — the unit of work the collecting component repeats
// thousands of times.
func BenchmarkRunDefault(b *testing.B) {
	sim := New(cluster.Standard(), 1)
	cfg := conf.StandardSpace().Default()
	p := testProgram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim.Run(p, 20*1024, cfg)
	}
}

// BenchmarkRunRandomConfigs measures execution across random
// configurations, the collecting component's actual mix.
func BenchmarkRunRandomConfigs(b *testing.B) {
	sim := New(cluster.Standard(), 1)
	space := conf.StandardSpace()
	rng := rand.New(rand.NewSource(2))
	cfgs := make([]conf.Config, 64)
	for i := range cfgs {
		cfgs[i] = space.Random(rng)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(testProgram(), 20*1024, cfgs[i%len(cfgs)])
	}
}

// BenchmarkCollectBatch compares the collecting hot loop's two shapes
// over one chunk of (configuration, size) pairs: per-run Run calls versus
// a single RunBatch reusing the scratch across the chunk.
func BenchmarkCollectBatch(b *testing.B) {
	sim := New(cluster.Standard(), 1)
	p := testProgram()
	pairs := randomPairs(64, 3)
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, s := range pairs {
				sim.Run(p, s.InputMB, s.Cfg)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sim.RunBatch(p, pairs)
		}
	})
}

// BenchmarkRunManyTasks stresses the event loop with a wide stage.
func BenchmarkRunManyTasks(b *testing.B) {
	sim := New(cluster.Standard(), 1)
	cfg := conf.StandardSpace().Default()
	p := &Program{
		Name: "wide",
		Stages: []Stage{
			{Name: "map", InputFrac: 1, CPUSecPerMB: 0.05, MemExpansion: 1.5},
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim.Run(p, 400*1024, cfg) // ~3200 tasks
	}
}
