package sparksim

// StageResult is the per-stage breakdown the paper reports in Figs. 13–14.
// All times are simulated seconds, summed over the stage's Repeat
// executions.
type StageResult struct {
	Name string
	// Sec is the stage's wall-clock contribution to the job.
	Sec float64
	// GCSec is the JVM garbage-collection time charged inside Sec.
	GCSec float64
	// ShuffleReadSec and ShuffleWriteSec are the shuffle I/O components.
	ShuffleReadSec  float64
	ShuffleWriteSec float64
	// SpillSec is time spent spilling execution memory to disk.
	SpillSec float64
	// Tasks is the number of task attempts launched (including retries
	// and speculative copies); Failed counts attempts that died (OOM,
	// fetch failure).
	Tasks  int
	Failed int
	// SpillMB is the volume spilled to disk.
	SpillMB float64
}

// Result is the outcome of one simulated job execution.
type Result struct {
	// TotalSec is the job's wall-clock execution time in simulated
	// seconds — the t_i of the paper's performance vectors (Eq. 5).
	TotalSec float64
	// Aborted is set when the job exceeded spark.task.maxFailures and
	// the framework gave it up; TotalSec then includes the wasted
	// attempts plus the rerun the operator would need (the paper's
	// default-configuration runs exhibit exactly these rerun storms).
	Aborted bool
	// Stages holds the per-stage breakdown in program order.
	Stages []StageResult
	// Executors is the total executor count the configuration yields;
	// Slots is the cluster-wide concurrent task capacity.
	Executors int
	Slots     int
	// GCSec is the job-total GC time.
	GCSec float64
	// SpillMB is the job-total spill volume.
	SpillMB float64
	// TasksLaunched and TasksFailed aggregate across stages.
	TasksLaunched int
	TasksFailed   int
}

// Stage returns the result for the named stage, or nil if absent.
func (r *Result) Stage(name string) *StageResult {
	for i := range r.Stages {
		if r.Stages[i].Name == name {
			return &r.Stages[i]
		}
	}
	return nil
}
