// Package sparksim is a discrete-event simulator of an in-memory cluster
// computing (IMC) framework in the style of Spark 1.6. It is the substrate
// the paper ran on a physical cluster: given a workload expressed as a DAG
// of stages, an input dataset size, and a 41-parameter configuration
// (internal/conf), it produces an execution time plus a per-stage breakdown
// (compute, shuffle, spill, GC) — the quantity DAC's models learn.
//
// The simulator is mechanistic, not curve-fit: every Table 2 parameter is
// wired to the mechanism Spark documents for it (executor sizing, unified
// memory management, sort/hash shuffle, serialization and compression
// codecs, speculation, locality wait, network timeouts, ...). Execution is
// deterministic for a given (seed, program, datasize, configuration), with
// run-to-run noise available via distinct run seeds.
package sparksim

import "fmt"

// Stage describes one Spark stage: a set of parallel tasks separated from
// neighbouring stages by shuffle (or job) boundaries. Data volumes are
// expressed as fractions of the job's input size so a single description
// scales across dataset sizes.
type Stage struct {
	// Name labels the stage in results (e.g. "iterate", "stage2").
	Name string

	// Repeat is how many times the stage executes back to back (an
	// iterative group, such as KMeans' aggregate/collect loop). Zero
	// means once.
	Repeat int

	// InputFrac is the stage's input volume as a fraction of the job
	// input (on-disk, uncompressed MB). For stages that read a cached
	// RDD or shuffle output this is still the logical volume processed.
	InputFrac float64

	// ShuffleFrac is the map-output volume this stage writes for the
	// next stage, as a fraction of job input (pre-serialization,
	// pre-compression MB).
	ShuffleFrac float64

	// ReadsShuffle marks the stage as consuming the previous stage's
	// shuffle output; ShuffleInFrac is that volume relative to job input.
	// A stage may read both a cached RDD (CacheInput + InputFrac) and a
	// shuffle (a join's two sides); a stage with neither reads InputFrac
	// fresh from the distributed filesystem.
	ReadsShuffle  bool
	ShuffleInFrac float64

	// OutputFrac is the volume written to the distributed filesystem at
	// stage end (3-way replicated), as a fraction of job input.
	OutputFrac float64

	// CPUSecPerMB is the pure compute cost per MB of stage input for one
	// 1.9 GHz core (the paper's testbed clock). Workloads set this from
	// their per-stage characterization (§4.1).
	CPUSecPerMB float64

	// MemExpansion is the per-task working set in MB per MB of task
	// input: deserialized objects plus aggregation state. Execution
	// memory pressure, spills, and OOMs derive from it.
	MemExpansion float64

	// CacheInput means the stage reads a previously cached RDD; cache
	// misses fall back to disk plus recompute.
	CacheInput bool

	// CacheOutputFrac is the fraction of job input this stage persists
	// to storage memory for later stages.
	CacheOutputFrac float64

	// MapSideCombine enables map-side aggregation, which disqualifies
	// the sort-shuffle bypass path (spark.shuffle.sort.bypassMergeThreshold).
	MapSideCombine bool

	// CollectMB and CollectFrac describe results returned to the driver
	// per stage execution: an absolute volume plus a job-input-relative
	// one (both MB).
	CollectMB   float64
	CollectFrac float64

	// BroadcastMB is broadcast from the driver to all executors at stage
	// start (e.g. KMeans centroids), per execution.
	BroadcastMB float64

	// MinTasks floors the stage's task count regardless of
	// spark.default.parallelism (e.g. one task per HDFS block on input
	// stages).
	MinTasks int

	// SkewFactor multiplies the largest task's share of data (1 =
	// uniform partitions). Skew creates stragglers that speculation can
	// mitigate.
	SkewFactor float64
}

// Times returns how many times the stage body executes.
func (s *Stage) Times() int {
	if s.Repeat <= 0 {
		return 1
	}
	return s.Repeat
}

// Program is a workload: an ordered list of stages executed with a shuffle
// barrier between consecutive stages (Spark's DAG scheduler semantics for a
// linear lineage; the six HiBench programs all reduce to this shape).
type Program struct {
	// Name identifies the program ("pagerank", "terasort", ...).
	Name string
	// Stages run in order.
	Stages []Stage
}

// Validate reports the first structural problem in the program, or nil.
func (p *Program) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("sparksim: program has no name")
	}
	if len(p.Stages) == 0 {
		return fmt.Errorf("sparksim: program %q has no stages", p.Name)
	}
	for i := range p.Stages {
		st := &p.Stages[i]
		if st.Name == "" {
			return fmt.Errorf("sparksim: %s stage %d has no name", p.Name, i)
		}
		if st.InputFrac < 0 || st.ShuffleFrac < 0 || st.ShuffleInFrac < 0 {
			return fmt.Errorf("sparksim: %s stage %q has negative data volume", p.Name, st.Name)
		}
		if st.ReadsShuffle && i == 0 {
			return fmt.Errorf("sparksim: %s stage %q reads shuffle but is first", p.Name, st.Name)
		}
		if st.CPUSecPerMB < 0 || st.MemExpansion < 0 {
			return fmt.Errorf("sparksim: %s stage %q has negative cost", p.Name, st.Name)
		}
	}
	return nil
}
