package sparksim

// Options selects simulator mechanisms. The zero value enables everything
// with the default noise level; the Disable* switches exist for the
// ablation benchmarks that show which mechanism produces the paper's
// configuration cliffs.
type Options struct {
	// DisableGC removes the JVM garbage-collection cost model.
	DisableGC bool
	// DisableSpill removes execution-memory spilling; memory pressure
	// then only manifests as OOM failures.
	DisableSpill bool
	// DisableOOM removes out-of-memory task failures; memory pressure
	// then only manifests as spills.
	DisableOOM bool
	// DisableSpeculation ignores the speculation parameters even when
	// the configuration enables them.
	DisableSpeculation bool
	// NoiseSigma is the lognormal sigma of per-task service-time noise.
	// Negative disables noise; zero selects the default (0.06).
	NoiseSigma float64
}

// noiseSigma resolves the configured noise level.
func (o Options) noiseSigma() float64 {
	switch {
	case o.NoiseSigma < 0:
		return 0
	case o.NoiseSigma == 0:
		return 0.06
	default:
		return o.NoiseSigma
	}
}
