package sparksim

import (
	"math"

	"repro/internal/cluster"
	"repro/internal/conf"
)

// serProps captures the cost/size behaviour of a serializer choice.
type serProps struct {
	// secPerMB is serialization CPU time per MB on one reference core;
	// deserialization costs roughly the same.
	secPerMB float64
	// sizeFactor is serialized size relative to the raw data volume
	// (Java serialization bloats, Kryo is compact).
	sizeFactor float64
	// churnFactor scales object allocation churn, which feeds the GC
	// model (Java serialization allocates far more).
	churnFactor float64
}

// codecProps captures a compression codec's speed and ratio.
type codecProps struct {
	// compressMBps is single-core compression throughput; decompression
	// runs at roughly twice that.
	compressMBps float64
	// ratio is compressed size / raw size for shuffle-like data.
	ratio float64
}

// env is everything the simulator derives once per run from the cluster
// and the configuration vector before walking the DAG.
type env struct {
	cl   cluster.Cluster
	conf conf.Config
	opt  Options

	// Executor sizing.
	executorsPerNode int
	executors        int
	coresPerExecutor int
	slots            int // cluster-wide concurrent tasks
	slotsPerNode     int

	// Unified memory manager, per executor (MB).
	heapMB       float64 // JVM heap (spark.executor.memory)
	usableMB     float64 // (heap - 300MB) * spark.memory.fraction + off-heap
	storageCapMB float64 // cache capacity
	execBaseMB   float64 // execution pool before borrowing
	offHeapMB    float64
	userMB       float64 // (heap-300)*(1-fraction): user data structures

	// Driver.
	driverHeapMB   float64
	driverUsableMB float64
	driverCores    int

	// Serialization / compression.
	ser                                            serProps
	codec                                          codecProps
	kryo                                           bool
	shuffleComp, spillComp, rddComp, broadcastComp bool

	// Cached-RDD bookkeeping (MB held in storage memory, cluster-wide).
	cachedMB   float64
	cacheHit   float64 // hit ratio for the most recent capacity check
	cacheRawMB float64 // logical (uncompressed) volume represented

	// cachedExpansion is cached-block size per MB of raw data.
	cachedExpansion float64
	// cachedReadSecPerMB is extra CPU per MB when reading the cache
	// (decompression + deserialization for serialized caches).
	cachedReadSecPerMB float64
}

// reservedHeapMB is Spark 1.6's fixed reserved memory.
const reservedHeapMB = 300

// deserExpansion is the in-memory size of deserialized Java objects per MB
// of raw data (pointer and header overhead).
const deserExpansion = 2.5

func newEnv(cl cluster.Cluster, cfg conf.Config, opt Options) *env {
	e := &env{}
	e.init(cl, cfg, opt)
	return e
}

// init derives the run environment in place. The receiver may have been
// used by a previous run (batch scratch reuse), so every field is reset —
// including the cache bookkeeping cacheAdd accumulates during a run.
func (e *env) init(cl cluster.Cluster, cfg conf.Config, opt Options) {
	*e = env{cl: cl, conf: cfg, opt: opt}

	// --- Executor sizing -------------------------------------------------
	cores := cfg.GetInt(conf.ExecutorCores)
	if cores < 1 {
		cores = 1
	}
	heap := float64(cfg.GetInt(conf.ExecutorMemory))
	// YARN-style overhead: max(384MB, 10% of heap) of extra physical
	// memory per executor process.
	overhead := math.Max(384, 0.10*heap)
	offHeap := 0.0
	if cfg.GetBool(conf.MemoryOffHeapEnabled) {
		offHeap = float64(cfg.GetInt(conf.MemoryOffHeapSize))
	}
	procMB := heap + overhead + offHeap

	byCores := cl.CoresPerNode / cores
	byMem := int(cl.MemoryPerNodeMB / procMB)
	perNode := byCores
	if byMem < perNode {
		perNode = byMem
	}
	if perNode < 1 {
		perNode = 1 // a 12288MB max heap always fits one executor per 64GB node
	}
	e.executorsPerNode = perNode
	e.executors = perNode * cl.Workers
	e.coresPerExecutor = cores
	e.slots = e.executors * cores
	e.slotsPerNode = perNode * cores

	// --- Unified memory manager (Spark 1.6, SPARK-10000) ----------------
	frac := cfg.Get(conf.MemoryFraction)
	storFrac := cfg.Get(conf.MemoryStorageFraction)
	usableHeap := math.Max(0, heap-reservedHeapMB) * frac
	e.heapMB = heap
	e.offHeapMB = offHeap
	e.usableMB = usableHeap + offHeap
	e.userMB = math.Max(0, heap-reservedHeapMB) * (1 - frac)
	// Storage is guaranteed storFrac of the pool; execution can evict
	// cached blocks above that watermark, so in practice the cache keeps
	// the immune region plus about half of the contested region.
	e.storageCapMB = e.usableMB * (storFrac + 0.5*(1-storFrac))
	e.execBaseMB = e.usableMB * (1 - storFrac)

	// --- Driver ----------------------------------------------------------
	e.driverHeapMB = float64(cfg.GetInt(conf.DriverMemory))
	e.driverUsableMB = math.Max(0, e.driverHeapMB-reservedHeapMB) * 0.9
	e.driverCores = cfg.GetInt(conf.DriverCores)
	if e.driverCores > cl.MasterCores {
		e.driverCores = cl.MasterCores
	}

	// --- Serializer ------------------------------------------------------
	e.kryo = cfg.GetInt(conf.Serializer) == conf.SerializerKryo
	if e.kryo {
		e.ser = serProps{secPerMB: 0.035, sizeFactor: 1.0, churnFactor: 1.0}
		if cfg.GetBool(conf.KryoReferenceTracking) {
			e.ser.secPerMB *= 1.30
		}
		// An undersized Kryo buffer forces copy-and-grow cycles on
		// large records; an oversized one wastes per-task memory (it
		// is charged to the task working set elsewhere).
		bufMaxMB := float64(cfg.GetInt(conf.KryoserializerBufferMax))
		if bufMaxMB < 32 {
			e.ser.secPerMB *= 1 + 0.05*math.Log2(32/bufMaxMB)
		}
	} else {
		e.ser = serProps{secPerMB: 0.12, sizeFactor: 1.6, churnFactor: 2.2}
	}

	// --- Compression codec ----------------------------------------------
	switch cfg.GetInt(conf.IOCompressionCodec) {
	case conf.CodecLZF:
		e.codec = codecProps{compressMBps: 150, ratio: 0.45}
	case conf.CodecLZ4:
		e.codec = codecProps{compressMBps: 300, ratio: 0.52}
		blk := float64(cfg.GetInt(conf.IOCompressionLZ4Block))
		e.codec.ratio *= blockRatioAdjust(blk)
	default: // snappy
		e.codec = codecProps{compressMBps: 250, ratio: 0.50}
		blk := float64(cfg.GetInt(conf.IOCompressionSnappyBlock))
		e.codec.ratio *= blockRatioAdjust(blk)
	}
	e.shuffleComp = cfg.GetBool(conf.ShuffleCompress)
	e.spillComp = cfg.GetBool(conf.ShuffleSpillCompress)
	e.rddComp = cfg.GetBool(conf.RDDCompress)
	e.broadcastComp = cfg.GetBool(conf.BroadcastCompress)

	// --- Cache representation -------------------------------------------
	if e.rddComp {
		// spark.rdd.compress caches serialized, compressed blocks:
		// small but costly to read back every iteration.
		e.cachedExpansion = e.ser.sizeFactor * e.codec.ratio
		e.cachedReadSecPerMB = e.ser.secPerMB + 1/(2*e.codec.compressMBps)
	} else {
		// Default MEMORY_ONLY caches deserialized objects: large but
		// free to read.
		e.cachedExpansion = deserExpansion
		e.cachedReadSecPerMB = 0
	}
}

// blockRatioAdjust nudges a codec's compression ratio for its block size:
// larger blocks compress slightly better. 32KB is the reference point.
func blockRatioAdjust(blockKB float64) float64 {
	adj := 1 - 0.02*math.Log2(blockKB/32)
	return math.Min(1.08, math.Max(0.92, adj))
}

// clusterStorageMB is the cluster-wide cache capacity.
func (e *env) clusterStorageMB() float64 {
	return e.storageCapMB * float64(e.executors)
}

// cacheAdd registers rawMB of logical data persisted to the cache and
// refreshes the hit ratio for subsequent cached reads.
func (e *env) cacheAdd(rawMB float64) {
	e.cacheRawMB += rawMB
	e.cachedMB = e.cacheRawMB * e.cachedExpansion
	cap := e.clusterStorageMB()
	if e.cachedMB <= 0 || cap <= 0 {
		e.cacheHit = 0
		return
	}
	e.cacheHit = math.Min(1, cap/e.cachedMB)
}

// execMemPerTaskMB is the execution memory available to one concurrently
// running task. Under the unified memory manager execution may evict
// cached blocks down to the storageFraction watermark, so the execution
// pool is the usable region minus whatever cache residency is immune.
func (e *env) execMemPerTaskMB() float64 {
	resident := math.Min(e.cachedMB/math.Max(1, float64(e.executors)), e.storageCapMB)
	immune := e.usableMB * e.conf.Get(conf.MemoryStorageFraction)
	pool := e.usableMB - math.Min(resident, immune)
	if pool < 0 {
		pool = 0
	}
	return pool / float64(e.coresPerExecutor)
}
