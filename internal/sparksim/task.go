package sparksim

import (
	"math"

	"repro/internal/conf"
)

// taskCosts computes the average per-task cost decomposition for one stage
// execution. The primary buckets (cpuSec, diskSec, netSec, fixedSec, gcSec)
// are additive; shuffleReadSec, shuffleWriteSec and spillSec are
// attribution subsets of the primary buckets kept for the per-stage
// breakdown the paper reports (Figs. 13–14).
func (sim *Simulator) taskCosts(e *env, st *Stage, inputMB, perTask float64, tasks, maxFail int) taskModel {
	cfg := e.conf
	cl := sim.Cluster
	cpuScale := 1.9 / cl.CPUGHz // costs are calibrated for the testbed's 1.9 GHz cores

	var tm taskModel
	shuffleOut := st.ShuffleFrac * inputMB / float64(tasks)
	shuffleIn := st.ShuffleInFrac * inputMB / float64(tasks)
	reduceParts := cfg.GetInt(conf.DefaultParallelism)

	// --- Input -------------------------------------------------------------
	// Cached-RDD and shuffle inputs are independent (a join reads both);
	// a stage with neither reads its input fresh from HDFS.
	if st.CacheInput {
		hit := e.cacheHit
		memMB := perTask * hit
		missMB := perTask * (1 - hit)
		tm.cpuSec += memMB * e.cachedReadSecPerMB * cpuScale
		// A cache miss re-reads the partition from HDFS and recomputes
		// the lineage that produced it.
		tm.diskSec += missMB / cl.DiskReadMBps
		tm.cpuSec += missMB * st.CPUSecPerMB * 0.8 * cpuScale
	}
	if st.ReadsShuffle {
		wireMB := shuffleIn * e.ser.sizeFactor
		if e.shuffleComp {
			wireMB *= e.codec.ratio
			tm.cpuSec += wireMB / (2 * e.codec.compressMBps) * cpuScale // decompress
		}
		net := wireMB / cl.NetMBps
		rounds := math.Ceil(wireMB / float64(cfg.GetInt(conf.ReducerMaxSizeInFlight)))
		lat := rounds * (2*cl.NetLatencyMs + cl.DiskSeekMs) / 1000
		deser := shuffleIn * e.ser.secPerMB * cpuScale
		merge := shuffleIn * 0.008 * math.Log2(2+float64(reduceParts)) * cpuScale
		tm.netSec += net
		tm.fixedSec += lat
		tm.cpuSec += deser + merge
		tm.shuffleReadSec += net + lat + deser + merge
	}
	if !st.CacheInput && !st.ReadsShuffle {
		read := perTask / cl.DiskReadMBps
		// Blocks above the memory-map threshold read zero-copy.
		if float64(cfg.GetInt(conf.StorageMemoryMapThreshold)) <= 128 {
			read *= 0.93
		}
		tm.diskSec += read
		tm.cpuSec += perTask * 0.01 * cpuScale // record parsing
	}

	// --- Compute -----------------------------------------------------------
	// The stage's computation runs over everything it ingests: fresh or
	// cached input plus shuffled-in data.
	totalPerTask := perTask + shuffleIn
	tm.cpuSec += totalPerTask * st.CPUSecPerMB * cpuScale

	// --- Shuffle write -------------------------------------------------------
	bufKB := float64(cfg.GetInt(conf.ShuffleFileBuffer))
	shuffleBufMB := 0.0
	if shuffleOut > 0 {
		serMB := shuffleOut * e.ser.sizeFactor
		w := shuffleOut * e.ser.secPerMB * cpuScale // serialize
		diskMB := serMB
		if e.shuffleComp {
			diskMB *= e.codec.ratio
			w += serMB / e.codec.compressMBps * cpuScale
		}
		wDisk := diskMB / cl.DiskWriteMBps
		wFixed := 0.0

		opens := 1.0
		if cfg.GetInt(conf.ShuffleManager) == conf.ShuffleHash {
			// Hash shuffle: one file per reduce partition per map
			// task, unless consolidation reuses per-core files.
			opens = float64(reduceParts)
			if cfg.GetBool(conf.ShuffleConsolidateFiles) {
				amort := float64(tasks) / float64(e.slotsOr1())
				if amort > 1 {
					opens /= amort
				}
			}
			totalFiles := float64(tasks) * opens
			if totalFiles > 20000 { // inode and page-cache pressure
				wFixed += (totalFiles - 20000) * 1e-5 / float64(tasks)
			}
		} else {
			// Sort shuffle, possibly via the bypass path.
			if !st.MapSideCombine && reduceParts < cfg.GetInt(conf.ShuffleBypassMergeThresh) {
				opens = float64(reduceParts)
				wFixed += float64(reduceParts) * cl.DiskSeekMs / 1000 * 0.15
			} else {
				w += shuffleOut * 0.0025 * math.Log2(2+shuffleOut/64) * cpuScale // in-memory sort
			}
		}
		wFixed += opens * cl.DiskSeekMs / 1000 * 0.2
		// Small stream buffers flush constantly.
		wFixed += diskMB / (bufKB / 1024) * 0.00004
		shuffleBufMB = opens * bufKB / 1024

		tm.cpuSec += w
		tm.diskSec += wDisk
		tm.fixedSec += wFixed
		tm.shuffleWriteSec += w + wDisk + wFixed
	}

	// --- HDFS output -----------------------------------------------------------
	if st.OutputFrac > 0 {
		outMB := st.OutputFrac * inputMB / float64(tasks)
		tm.cpuSec += outMB * 0.01 * cpuScale // encode records
		tm.diskSec += outMB / cl.DiskWriteMBps
		tm.netSec += 2 * outMB / cl.NetMBps // 3-way replication pipelines two remote copies
	}

	// --- Execution memory: spills and OOM -----------------------------------
	work := totalPerTask*st.MemExpansion + shuffleBufMB
	if st.ReadsShuffle {
		work += float64(cfg.GetInt(conf.ReducerMaxSizeInFlight))
	}
	if e.kryo {
		work += float64(cfg.GetInt(conf.KryoserializerBufferMax))
	}
	execMem := e.execMemPerTaskMB()

	if work > execMem && execMem > 0 {
		if cfg.GetBool(conf.ShuffleSpill) && !sim.Opt.DisableSpill {
			// Hash aggregation rebuilds its map across spill-merge
			// rounds, so its cost is convex in work/execMem — that is
			// what makes undersized executors catastrophic rather than
			// merely slow. A pure external sort streams each byte
			// roughly twice no matter how deep the shortfall.
			passes := 1.5
			if st.MapSideCombine {
				passes = 1 + 0.5*math.Min(4, work/execMem)
			}
			excess := (work - execMem) * passes
			serMB := excess * e.ser.sizeFactor
			sp := excess * e.ser.secPerMB * 1.5 * cpuScale // serialize + read back
			diskMB := serMB
			if e.spillComp {
				diskMB *= e.codec.ratio
				sp += serMB * 1.5 / e.codec.compressMBps * cpuScale
			}
			spDisk := diskMB * (1/cl.DiskWriteMBps + 1/cl.DiskReadMBps)
			tm.cpuSec += sp
			tm.diskSec += spDisk
			tm.spillSec += sp + spDisk
			tm.spillMB += diskMB
		} else if !sim.Opt.DisableOOM {
			// No spilling: the whole overflow is an OOM.
			tm.oomLoop(work, execMem, execMem*float64(e.coresPerExecutor), maxFail)
		}
	}

	// Even with spilling, unspillable state can exceed the task's share:
	// in-flight fetch buffers always, plus pinned aggregation state for
	// stages that build hash maps (map-side combine); pure sort/forward
	// stages can spill almost everything.
	if !sim.Opt.DisableOOM && execMem > 0 {
		pinnedFrac := 0.03
		if st.MapSideCombine {
			pinnedFrac = 0.15
		}
		unspill := pinnedFrac * totalPerTask * st.MemExpansion
		if st.ReadsShuffle {
			unspill += float64(cfg.GetInt(conf.ReducerMaxSizeInFlight))
		}
		if unspill > execMem*1.2 {
			pool := execMem * 1.2 * float64(e.coresPerExecutor)
			tm.oomLoop(unspill, execMem*1.2, pool, maxFail)
		}
	}

	// --- Garbage collection --------------------------------------------------
	if !sim.Opt.DisableGC {
		occ := gcOccupancy(e, st, totalPerTask)
		churn := e.ser.churnFactor
		if e.shuffleComp || e.rddComp {
			churn *= 1.1 // compression buffers add allocation churn
		}
		gcFrac := 0.04 * churn * occ * occ / (1 - occ)
		tm.gcSec = tm.cpuSec * gcFrac
	}

	// --- Node-level contention ------------------------------------------------
	// Concurrent tasks on a node share its disk and NIC; scale the I/O
	// components by the expected queueing factor.
	conc := math.Min(float64(e.slotsPerNode), math.Ceil(float64(tasks)/float64(cl.Workers)))
	tot := tm.cpuSec + tm.diskSec + tm.netSec + tm.fixedSec
	if tot > 0 && conc > 1 {
		diskDuty := tm.diskSec / tot
		netDuty := tm.netSec / tot
		dFac := math.Max(1, conc*diskDuty)
		nFac := math.Max(1, conc*netDuty)
		tm.diskSec *= dFac
		tm.netSec *= nFac
		// Keep the attribution subsets consistent.
		tm.shuffleReadSec *= (1 + (nFac-1)*netDuty)
		tm.shuffleWriteSec *= (1 + (dFac-1)*diskDuty)
		tm.spillSec *= (1 + (dFac-1)*diskDuty)
	}

	// --- Wasted time per failed attempt ---------------------------------------
	if tm.oomFrac > 0 {
		attemptCost := 0.6 * (tm.cpuSec + tm.diskSec + tm.netSec + tm.fixedSec)
		tm.wastedSec = tm.oomFrac * attemptCost
	}

	// --- Locality ---------------------------------------------------------------
	// A slice of tasks misses its preferred node: it first waits up to
	// spark.locality.wait, then runs remote, pulling its input over the
	// network. Longer waits convert more remote tasks into delayed local
	// ones.
	wait := cfg.Get(conf.LocalityWait)
	if st.CacheInput || !st.ReadsShuffle {
		fNonLocal := 0.15 * 3 / (wait + 2)
		remoteMB := perTask
		if st.CacheInput {
			remoteMB = perTask * e.cachedExpansion
		}
		tm.fixedSec += fNonLocal*(remoteMB/cl.NetMBps) + (0.15-fNonLocal)*wait*0.3
	}

	return tm
}

// oomLoop models repeated task attempts under memory pressure: a retried
// task lands on an executor whose sibling slots have drained, so each
// attempt sees roughly 1.8× more memory, up to the whole executor pool.
// The job aborts when the attempt budget runs out first. The wasted-time
// accounting uses the fractional attempt count so the cost is continuous
// in the memory deficit (only the abort itself is a cliff).
func (tm *taskModel) oomLoop(need, have, pool float64, maxFail int) {
	attempts := 0
	for need > have && attempts < maxFail {
		attempts++
		have = math.Min(pool, have*1.8)
		if have >= pool && need > pool {
			// The full executor cannot hold it; further retries
			// cannot succeed.
			attempts = maxFail
			break
		}
	}
	tm.oomAttempts += attempts
	if need > have {
		tm.abort = true
	}
	tm.oomFrac += math.Min(float64(maxFail), math.Max(0, math.Log(need/(have/ipow(1.8, attempts)))/math.Log(1.8)))
}

// ipow is x^n for small non-negative integer n.
func ipow(x float64, n int) float64 {
	v := 1.0
	for i := 0; i < n; i++ {
		v *= x
	}
	return v
}

// gcOccupancy estimates the executor heap occupancy during the stage;
// perTask is the task's total ingested volume (fresh + cached + shuffle).
func gcOccupancy(e *env, st *Stage, perTask float64) float64 {
	resident := math.Min(e.cachedMB/math.Max(1, float64(e.executors)), e.storageCapMB)
	work := perTask * st.MemExpansion
	execMem := e.execMemPerTaskMB()
	active := math.Min(work, execMem) * float64(e.coresPerExecutor)
	occ := (resident + active + 0.3*e.userMB + reservedHeapMB) / math.Max(1, e.heapMB)
	return math.Min(0.97, math.Max(0.05, occ))
}

// broadcastCost models torrent-broadcasting mb megabytes from the driver.
func (sim *Simulator) broadcastCost(e *env, mb float64) float64 {
	cfg := e.conf
	wire := mb * e.ser.sizeFactor
	cpu := mb * e.ser.secPerMB
	if e.broadcastComp {
		cpu += wire / e.codec.compressMBps
		wire *= e.codec.ratio
	}
	blockMB := float64(cfg.GetInt(conf.BroadcastBlockSize))
	pieces := math.Ceil(wire / blockMB)
	// Torrent distribution: executors re-share pieces, so the driver
	// uplink is traversed about twice regardless of cluster size.
	return 2*wire/sim.Cluster.NetMBps + pieces*0.003 + cpu/math.Max(1, float64(e.driverCores))
}

// collectCost models returning mb megabytes of results to the driver. It
// reports a job abort when the materialized results exceed the driver heap.
func (sim *Simulator) collectCost(e *env, mb float64) (sec float64, abort bool) {
	wire := mb * e.ser.sizeFactor
	sec = wire/sim.Cluster.NetMBps + mb*e.ser.secPerMB/math.Max(1, float64(e.driverCores))
	occ := mb * deserExpansion / math.Max(1, e.driverUsableMB)
	if occ >= 1 {
		return sec, true
	}
	if occ > 0.7 {
		sec *= 1 + 2*(occ-0.7)/0.3 // driver GC thrash near the limit
	}
	return sec, false
}
