package sparksim

import (
	"repro/internal/obs"
)

// simMetrics holds the simulator's pre-resolved metric handles so the hot
// Run path never touches the registry's name lookup. A nil *simMetrics
// (the default) is the uninstrumented fast path: Run pays a single nil
// check and nothing else.
type simMetrics struct {
	runs        *obs.Counter      // sparksim.runs: Run calls
	aborted     *obs.Counter      // sparksim.runs.aborted: jobs past task.maxFailures
	stageExecs  *obs.Counter      // sparksim.stage.execs: stage executions incl. repeats
	tasks       *obs.Counter      // sparksim.tasks.launched: attempts incl. retries
	retries     *obs.Counter      // sparksim.tasks.retried: failed attempts (OOM-driven)
	spillEvents *obs.Counter      // sparksim.spill.events: stage executions that spilled
	spillMB     *obs.FloatCounter // sparksim.spill.mb: volume spilled to disk
	simSec      *obs.FloatCounter // sparksim.sim.sec: accumulated simulated seconds
	runSimSec   *obs.Histogram    // sparksim.run.simsec: per-run simulated duration
	runWallSec  *obs.Histogram    // sparksim.run.wallsec: per-run host wall-clock
}

// wallBounds buckets the host-side cost of one Run call, which sits in
// the microsecond-to-millisecond range.
var wallBounds = []float64{
	1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 0.01, 0.03, 0.1, 1,
}

// Instrument attaches the simulator to a metrics registry; every
// subsequent Run records run, stage, task, retry, spill, and OOM-abort
// accounting plus duration histograms. A nil registry detaches. Call
// before sharing the simulator across goroutines — the attachment itself
// is not synchronized, but recording is (the registry's metrics are
// atomic), so concurrent Runs on an instrumented simulator are safe.
func (sim *Simulator) Instrument(reg *obs.Registry) {
	if reg == nil {
		sim.metrics = nil
		return
	}
	sim.metrics = &simMetrics{
		runs:        reg.Counter("sparksim.runs"),
		aborted:     reg.Counter("sparksim.runs.aborted"),
		stageExecs:  reg.Counter("sparksim.stage.execs"),
		tasks:       reg.Counter("sparksim.tasks.launched"),
		retries:     reg.Counter("sparksim.tasks.retried"),
		spillEvents: reg.Counter("sparksim.spill.events"),
		spillMB:     reg.Float("sparksim.spill.mb"),
		simSec:      reg.Float("sparksim.sim.sec"),
		runSimSec:   reg.Histogram("sparksim.run.simsec", nil),
		runWallSec:  reg.Histogram("sparksim.run.wallsec", wallBounds),
	}
}

// record folds one finished run into the registry. stageExecs and
// spillEvents are accumulated by Run's stage loop: the former counts
// stage executions including repeats, the latter those that spilled.
func (m *simMetrics) record(res *Result, stageExecs, spillEvents int, wallSec float64) {
	m.runs.Inc()
	if res.Aborted {
		m.aborted.Inc()
	}
	m.stageExecs.Add(int64(stageExecs))
	m.tasks.Add(int64(res.TasksLaunched))
	m.retries.Add(int64(res.TasksFailed))
	m.spillEvents.Add(int64(spillEvents))
	m.spillMB.Add(res.SpillMB)
	m.simSec.Add(res.TotalSec)
	m.runSimSec.Observe(res.TotalSec)
	m.runWallSec.Observe(wallSec)
}
