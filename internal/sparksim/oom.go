package sparksim

import (
	"math"

	"repro/internal/cluster"
	"repro/internal/conf"
)

// MemoryVerdict is the analytic outcome of replaying the simulator's
// memory accounting over one (configuration, datasize) pair without
// running the event loop: the worst per-task execution-memory pressure
// any stage reaches, and whether the accounting predicts a guaranteed
// OOM abort. The online tuner's safety guard uses it to veto candidate
// configurations before spending a cluster run on them.
type MemoryVerdict struct {
	// WorstPressure is the maximum over stages of working set /
	// available execution memory per task. Values above 1 spill (when
	// spilling is on); math.Inf(1) means a stage has work but no
	// execution memory at all.
	WorstPressure float64
	// WorstStage names the stage behind WorstPressure.
	WorstStage string
	// Abort reports that some stage's memory need cannot fit even the
	// whole executor pool within the task retry budget — the exact
	// condition under which taskCosts' oomLoop aborts the job.
	Abort bool
}

// CheckMemory replays the execution-memory section of taskCosts for every
// stage of p at inputMB under cfg, using the same env derivation
// (executor sizing, unified memory manager, cache bookkeeping in program
// order) the simulator uses, and returns the aggregate verdict. It never
// runs tasks, so it costs microseconds against a simulated run's
// milliseconds — cheap enough to call per GA candidate.
//
// The accounting mirrors taskCosts with all simulator mechanisms enabled
// (the zero Options): per-stage task counts from runStage, working set =
// ingested volume × MemExpansion plus shuffle-write buffers, in-flight
// fetch buffers, and the Kryo buffer; the spillable overflow aborts via
// oomLoop when spilling is off, and the unspillable slice (pinned
// aggregation state + fetch buffers) aborts when it exceeds what the
// whole executor can lend a task. One deliberate divergence: a stage with
// work but zero execution memory is reported as an abort here, while the
// simulator charges it nothing — a guard must reject a configuration that
// cannot hold any task state.
func CheckMemory(cl cluster.Cluster, cfg conf.Config, p *Program, inputMB float64) MemoryVerdict {
	e := newEnv(cl, cfg, Options{})
	maxFail := cfg.GetInt(conf.TaskMaxFailures)
	par := cfg.GetInt(conf.DefaultParallelism)
	reduceParts := par
	v := MemoryVerdict{}

	for i := range p.Stages {
		st := &p.Stages[i]
		stageIn := st.InputFrac * inputMB

		// Task count, exactly as runStage derives it.
		var tasks int
		if st.ReadsShuffle {
			tasks = par
		} else {
			tasks = int(math.Ceil(stageIn / 128))
		}
		if tasks < st.MinTasks {
			tasks = st.MinTasks
		}
		if tasks < 1 {
			tasks = 1
		}

		// Local execution skips the cluster entirely — no executor
		// memory pressure — but the stage's cache output still lands.
		totalIn := stageIn + st.ShuffleInFrac*inputMB
		local := cfg.GetBool(conf.LocalExecutionEnabled) && totalIn < 64 && st.ShuffleFrac == 0
		if !local {
			perTask := stageIn / float64(tasks)
			shuffleOut := st.ShuffleFrac * inputMB / float64(tasks)
			shuffleIn := st.ShuffleInFrac * inputMB / float64(tasks)
			totalPerTask := perTask + shuffleIn

			// Shuffle-write stream buffers held open per task.
			shuffleBufMB := 0.0
			if shuffleOut > 0 {
				bufKB := float64(cfg.GetInt(conf.ShuffleFileBuffer))
				opens := 1.0
				if cfg.GetInt(conf.ShuffleManager) == conf.ShuffleHash {
					opens = float64(reduceParts)
					if cfg.GetBool(conf.ShuffleConsolidateFiles) {
						amort := float64(tasks) / float64(e.slotsOr1())
						if amort > 1 {
							opens /= amort
						}
					}
				} else if !st.MapSideCombine && reduceParts < cfg.GetInt(conf.ShuffleBypassMergeThresh) {
					opens = float64(reduceParts)
				}
				shuffleBufMB = opens * bufKB / 1024
			}

			work := totalPerTask*st.MemExpansion + shuffleBufMB
			if st.ReadsShuffle {
				work += float64(cfg.GetInt(conf.ReducerMaxSizeInFlight))
			}
			if e.kryo {
				work += float64(cfg.GetInt(conf.KryoserializerBufferMax))
			}
			execMem := e.execMemPerTaskMB()

			pressure := 0.0
			switch {
			case execMem > 0:
				pressure = work / execMem
			case work > 0:
				pressure = math.Inf(1)
				v.Abort = true
			}
			if pressure > v.WorstPressure {
				v.WorstPressure = pressure
				v.WorstStage = st.Name
			}

			if work > execMem && execMem > 0 && !cfg.GetBool(conf.ShuffleSpill) {
				var tm taskModel
				tm.oomLoop(work, execMem, execMem*float64(e.coresPerExecutor), maxFail)
				if tm.abort {
					v.Abort = true
				}
			}
			if execMem > 0 {
				pinnedFrac := 0.03
				if st.MapSideCombine {
					pinnedFrac = 0.15
				}
				unspill := pinnedFrac * totalPerTask * st.MemExpansion
				if st.ReadsShuffle {
					unspill += float64(cfg.GetInt(conf.ReducerMaxSizeInFlight))
				}
				if unspill > execMem*1.2 {
					var tm taskModel
					tm.oomLoop(unspill, execMem*1.2, execMem*1.2*float64(e.coresPerExecutor), maxFail)
					if tm.abort {
						v.Abort = true
					}
				}
			}
		}

		if st.CacheOutputFrac > 0 {
			e.cacheAdd(st.CacheOutputFrac * inputMB)
		}
	}
	return v
}
