package sparksim

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/conf"
)

// Simulator executes Programs on a modelled cluster. It is safe for
// concurrent use: Run shares no mutable state between calls.
type Simulator struct {
	// Cluster is the modelled hardware; use cluster.Standard() for the
	// paper's testbed.
	Cluster cluster.Cluster
	// Opt selects simulator mechanisms (zero value = everything on).
	Opt Options
	// Seed makes runs reproducible. Two simulators with the same seed
	// produce identical results for identical inputs.
	Seed int64

	// metrics is set by Instrument; nil means uninstrumented, which must
	// cost Run nothing beyond a nil check.
	metrics *simMetrics
}

// New returns a Simulator over the given cluster with all mechanisms
// enabled.
func New(cl cluster.Cluster, seed int64) *Simulator {
	return &Simulator{Cluster: cl, Seed: seed}
}

// RunSpec is one (configuration, input size) pair of a RunBatch call.
type RunSpec struct {
	Cfg     conf.Config
	InputMB float64
}

// runScratch holds the working buffers one simulated run needs — the
// derived environment, the per-run RNG, the per-stage task durations, the
// median working copy, and the event-loop slot heap. A batch reuses one
// scratch across all of its runs, so the collecting hot loop allocates
// only the Results it returns; every buffer is fully reinitialized per
// use, which keeps scratch reuse invisible to the simulation.
type runScratch struct {
	env  env
	rng  *rand.Rand
	durs []float64
	med  []float64
	heap slotHeap
}

func newRunScratch() *runScratch {
	return &runScratch{rng: rand.New(rand.NewSource(0))}
}

// durations returns a length-n slice for per-task durations; every
// element is overwritten by the caller before use.
func (sc *runScratch) durations(n int) []float64 {
	if cap(sc.durs) < n {
		sc.durs = make([]float64, n)
	}
	return sc.durs[:n]
}

// median returns the median of xs without modifying it, sorting a reused
// working copy.
func (sc *runScratch) median(xs []float64) float64 {
	if cap(sc.med) < len(xs) {
		sc.med = make([]float64, len(xs))
	}
	s := sc.med[:len(xs)]
	copy(s, xs)
	sort.Float64s(s)
	return s[len(s)/2]
}

// slotClock returns a zeroed length-n slot heap.
func (sc *runScratch) slotClock(n int) slotHeap {
	if cap(sc.heap) < n {
		sc.heap = make(slotHeap, n)
	}
	h := sc.heap[:n]
	for i := range h {
		h[i] = 0
	}
	return h
}

// Run simulates one execution of program p over inputMB megabytes of input
// under configuration cfg and returns the timing breakdown. The result is
// deterministic in (Seed, p.Name, inputMB, cfg).
func (sim *Simulator) Run(p *Program, inputMB float64, cfg conf.Config) *Result {
	if err := p.Validate(); err != nil {
		panic(err) // programs are compile-time constants in this module
	}
	return sim.runOne(p, inputMB, cfg, newRunScratch(), fnvString(p.Name))
}

// RunBatch simulates one execution per (cfg, input) pair and returns the
// results in pair order. Every run is bit-identical to the corresponding
// Run call — the per-run RNG seed derivation is unchanged, and each run
// re-derives its environment from its own configuration — but the program
// is validated once and the scratch buffers (task durations, slot heap,
// median copy, environment struct, RNG state) are reused across the batch
// instead of reallocated per run. Like Run, RunBatch is safe to call from
// several goroutines at once; a single batch runs its pairs sequentially,
// so callers parallelize by splitting work into several batches.
func (sim *Simulator) RunBatch(p *Program, pairs []RunSpec) []*Result {
	if err := p.Validate(); err != nil {
		panic(err) // programs are compile-time constants in this module
	}
	sc := newRunScratch()
	nameHash := fnvString(p.Name)
	out := make([]*Result, len(pairs))
	for i, pr := range pairs {
		out[i] = sim.runOne(p, pr.InputMB, pr.Cfg, sc, nameHash)
	}
	return out
}

// RunBatchInto is RunBatch writing into caller-owned Result storage: out
// is grown to len(pairs) results and returned, and each element's Stages
// slice is reused when its capacity allows, so a caller that keeps the
// returned slice across batches (the collecting sweep) pays no per-run
// Result allocation after the first batch. Every field of every reused
// element is reinitialized before use, so results are bit-identical to
// RunBatch's for the same pairs. Distinct out slices may be used from
// several goroutines at once.
func (sim *Simulator) RunBatchInto(p *Program, pairs []RunSpec, out []Result) []Result {
	if err := p.Validate(); err != nil {
		panic(err) // programs are compile-time constants in this module
	}
	if cap(out) < len(pairs) {
		grown := make([]Result, len(pairs))
		copy(grown, out[:cap(out)]) // keep the recyclable Stages slices
		out = grown
	}
	out = out[:len(pairs)]
	sc := newRunScratch()
	nameHash := fnvString(p.Name)
	for i, pr := range pairs {
		sim.runOneInto(&out[i], p, pr.InputMB, pr.Cfg, sc, nameHash)
	}
	return out
}

// runOne executes one simulated run against a caller-owned scratch.
// nameHash is fnvString(p.Name), computed once per batch.
func (sim *Simulator) runOne(p *Program, inputMB float64, cfg conf.Config, sc *runScratch, nameHash uint64) *Result {
	res := new(Result)
	sim.runOneInto(res, p, inputMB, cfg, sc, nameHash)
	return res
}

// runOneInto executes one simulated run, overwriting every field of the
// caller-owned res (its Stages slice is reused when large enough).
func (sim *Simulator) runOneInto(res *Result, p *Program, inputMB float64, cfg conf.Config, sc *runScratch, nameHash uint64) {
	var t0 time.Time
	if sim.metrics != nil {
		t0 = time.Now()
	}
	e := &sc.env
	e.init(sim.Cluster, cfg, sim.Opt)
	rng := sc.rng
	rng.Seed(sim.runSeed(nameHash, inputMB, cfg))

	stages := res.Stages
	if cap(stages) >= len(p.Stages) {
		stages = stages[:len(p.Stages)]
		for i := range stages {
			stages[i] = StageResult{}
		}
	} else {
		stages = make([]StageResult, len(p.Stages))
	}
	*res = Result{
		Executors: e.executors,
		Slots:     e.slots,
		Stages:    stages,
	}
	maxFail := cfg.GetInt(conf.TaskMaxFailures)

	stageExecs, spillEvents := 0, 0
	for i := range p.Stages {
		st := &p.Stages[i]
		sr := &res.Stages[i]
		sr.Name = st.Name
		for rep := 0; rep < st.Times(); rep++ {
			out := sim.runStage(e, st, inputMB, rng, maxFail, sc)
			stageExecs++
			if out.spillMB > 0 {
				spillEvents++
			}
			if out.aborted {
				// The framework gave the job up after
				// spark.task.maxFailures failures of some task in this
				// stage. The operator's only recourse is rerunning the
				// job, which fails again under the same configuration:
				// the stage is charged three abandoned attempts, the
				// whole job keeps executing (so the cost stays
				// monotone in the remaining work), and the final time
				// carries a rerun penalty. This keeps failing
				// configurations strictly worse than completing ones —
				// a tuner must never prefer a crash.
				res.Aborted = true
				out.sec *= 3
			}
			sr.Sec += out.sec
			sr.GCSec += out.gcSec
			sr.ShuffleReadSec += out.shuffleReadSec
			sr.ShuffleWriteSec += out.shuffleWriteSec
			sr.SpillSec += out.spillSec
			sr.SpillMB += out.spillMB
			sr.Tasks += out.tasks
			sr.Failed += out.failedTasks
			res.TotalSec += out.sec
			res.GCSec += out.gcSec
			res.SpillMB += out.spillMB
			res.TasksLaunched += out.tasks
			res.TasksFailed += out.failedTasks
		}
		if st.CacheOutputFrac > 0 {
			e.cacheAdd(st.CacheOutputFrac * inputMB)
		}
	}
	if res.Aborted {
		res.TotalSec = res.TotalSec*1.5 + 300
	}
	if m := sim.metrics; m != nil {
		m.record(res, stageExecs, spillEvents, time.Since(t0).Seconds())
	}
}

// FNV-1a constants (hash/fnv's 64a variant). The seed derivation inlines
// the hash so the hot path hashes without allocating and a batch can hash
// the program-name prefix once; byte order and constants match hash/fnv
// exactly, so seeds are unchanged from the hasher-based derivation.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// fnvString is the FNV-1a hash of s.
func fnvString(s string) uint64 {
	h := fnvOffset64
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// fnvFloat folds v's little-endian IEEE-754 bytes into h.
func fnvFloat(h uint64, v float64) uint64 {
	bits := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		h = (h ^ uint64(byte(bits>>(8*i)))) * fnvPrime64
	}
	return h
}

// runSeed derives the deterministic per-run RNG seed. nameHash is the
// FNV-1a hash of the program name (fnvString), shared across a batch.
func (sim *Simulator) runSeed(nameHash uint64, inputMB float64, cfg conf.Config) int64 {
	h := fnvFloat(nameHash, inputMB)
	h = fnvFloat(h, float64(sim.Seed))
	for i, n := 0, cfg.Space().Len(); i < n; i++ {
		h = fnvFloat(h, cfg.At(i))
	}
	return int64(h)
}

// stageOutcome carries one stage execution's accounting.
type stageOutcome struct {
	sec             float64
	gcSec           float64
	shuffleReadSec  float64
	shuffleWriteSec float64
	spillSec        float64
	spillMB         float64
	tasks           int
	failedTasks     int
	aborted         bool
}

// taskModel is the average per-task cost decomposition computed once per
// stage; the event loop then perturbs it per task.
type taskModel struct {
	cpuSec   float64 // compute + ser/deser + compression
	diskSec  float64 // local disk reads/writes (input, shuffle write, spill)
	netSec   float64 // shuffle fetch, cache misses over the network
	fixedSec float64 // latency-like terms not subject to contention

	gcSec           float64
	shuffleReadSec  float64
	shuffleWriteSec float64
	spillSec        float64
	spillMB         float64
	oomAttempts     int     // failed attempts before success (0 = clean)
	oomFrac         float64 // fractional attempt count (continuous in the deficit)
	abort           bool
	wastedSec       float64 // time burned by failed attempts
}

func (sim *Simulator) runStage(e *env, st *Stage, inputMB float64, rng *rand.Rand, maxFail int, sc *runScratch) stageOutcome {
	cfg := e.conf
	cl := sim.Cluster
	stageIn := st.InputFrac * inputMB

	// --- Task count -------------------------------------------------------
	par := cfg.GetInt(conf.DefaultParallelism)
	var tasks int
	if st.ReadsShuffle {
		tasks = par
	} else {
		tasks = int(math.Ceil(stageIn / 128)) // one task per 128MB HDFS block
	}
	if tasks < st.MinTasks {
		tasks = st.MinTasks
	}
	if tasks < 1 {
		tasks = 1
	}

	// Local execution: trivially small driver-side jobs skip the cluster.
	// The stage's total volume — fresh input plus shuffle input — must be
	// tiny and it must not feed a shuffle.
	totalIn := stageIn + st.ShuffleInFrac*inputMB
	if cfg.GetBool(conf.LocalExecutionEnabled) && totalIn < 64 && st.ShuffleFrac == 0 {
		cpu := totalIn * st.CPUSecPerMB * (1.9 / cl.CPUGHz) / math.Max(1, float64(e.driverCores))
		return stageOutcome{sec: cpu + 0.05, tasks: 1}
	}

	perTask := stageIn / float64(tasks)
	tm := sim.taskCosts(e, st, inputMB, perTask, tasks, maxFail)

	// --- Per-task durations and the event loop ----------------------------
	// The primary buckets are additive; shuffle and spill attributions are
	// subsets of them and are reported separately, not re-added.
	base := tm.cpuSec + tm.diskSec + tm.netSec + tm.fixedSec + tm.gcSec
	durs := sc.durations(tasks)
	sigma := sim.Opt.noiseSigma()
	// Partition skew belongs to the dataset, not the run: the same 8% of
	// partitions are oversized on every execution, with multipliers
	// spread deterministically up to SkewFactor.
	nSkew := 0
	if st.SkewFactor > 1 {
		nSkew = (tasks + 11) / 12
	}
	for i := range durs {
		d := base
		if i < nSkew {
			frac := float64(i+1) / float64(nSkew)
			d *= 1 + (st.SkewFactor-1)*frac
		}
		if sigma > 0 {
			d *= math.Exp(sigma*rng.NormFloat64() - sigma*sigma/2)
			if rng.Float64() < 0.004 { // environmental straggler
				d *= 1.3 + 0.7*rng.Float64()
			}
		}
		durs[i] = d
	}

	// Speculative execution trims the straggler tail. Each replaced
	// straggler means a speculative copy actually launched, so it counts
	// toward the stage's task launches — the paper's accounting counts
	// every attempt, not just original tasks.
	specCopies := 0
	if cfg.GetBool(conf.Speculation) && !sim.Opt.DisableSpeculation && tasks >= 4 {
		med := sc.median(durs)
		mult := cfg.Get(conf.SpeculationMultiplier)
		quant := cfg.Get(conf.SpeculationQuantile)
		intervalSec := cfg.Get(conf.SpeculationInterval) / 1000
		thresh := mult * med
		// A copy launches once the quantile of tasks has finished and
		// the straggler exceeds the threshold; it completes in about a
		// median duration.
		copyDone := math.Max(thresh, quant*med) + intervalSec + med
		for i, d := range durs {
			if d > thresh && copyDone < d {
				durs[i] = copyDone
				specCopies++
			}
		}
	}

	span, launches := scheduleTasksIn(durs, e.slots, sc)
	launches += specCopies

	// --- Stage-level overheads --------------------------------------------
	over := 0.0
	// Task launch and control-plane messaging.
	akkaThreads := float64(cfg.GetInt(conf.AkkaThreads))
	over += float64(tasks) * (0.004 + 0.0008/akkaThreads)
	// Scheduler revive latency: one before the stage plus a sliver per wave.
	revive := cfg.Get(conf.SchedulerReviveInterval)
	waves := math.Ceil(float64(tasks) / float64(e.slots))
	over += 0.3*revive + 0.04*revive*waves
	// Heartbeat processing cost, inversely proportional to the interval.
	over += span * 0.00002 * (5000 / math.Max(200, cfg.Get(conf.AkkaHeartbeatInterval)))

	// Broadcast variables at stage start.
	if st.BroadcastMB > 0 {
		over += sim.broadcastCost(e, st.BroadcastMB)
	}

	// Per-task components convert to wall-clock contributions via the
	// average pipeline depth (tasks/slots waves).
	out := stageOutcome{
		tasks:           launches + tasks*tm.oomAttempts,
		failedTasks:     tasks * tm.oomAttempts,
		gcSec:           tm.gcSec * wallShare(tasks, e.slots),
		shuffleReadSec:  tm.shuffleReadSec * wallShare(tasks, e.slots),
		shuffleWriteSec: tm.shuffleWriteSec * wallShare(tasks, e.slots),
		spillSec:        tm.spillSec * wallShare(tasks, e.slots),
		spillMB:         tm.spillMB * float64(tasks),
		aborted:         tm.abort,
	}

	// Wasted time from failed attempts extends the critical path roughly
	// by the per-slot share of the rerun work.
	wasted := tm.wastedSec * float64(tasks) / float64(e.slotsOr1())
	sec := span + over + wasted

	// Collect results to the driver.
	if st.CollectMB > 0 || st.CollectFrac > 0 {
		cSec, abort := sim.collectCost(e, st.CollectMB+st.CollectFrac*inputMB)
		sec += cSec
		if abort {
			out.aborted = true
		}
	}

	// Spurious executor loss: a long GC pause beyond the Akka failure
	// detector threshold makes the master declare the executor dead and
	// rerun its tasks.
	if !sim.Opt.DisableGC {
		occPause := e.heapMB / 1024 * 0.25 * gcOccupancy(e, st, totalIn/float64(tasks))
		if occPause > cfg.Get(conf.AkkaFailureDetector)*0.01 {
			sec *= 1.30
		}
	}

	out.sec = sec
	return out
}

func (e *env) slotsOr1() int {
	if e.slots < 1 {
		return 1
	}
	return e.slots
}

// wallShare converts a per-task time component into its expected
// wall-clock contribution: components execute tasks/slots deep on average.
func wallShare(tasks, slots int) float64 {
	if slots < 1 {
		slots = 1
	}
	return math.Ceil(float64(tasks)/float64(slots)) * 1.0
}

// slotHeap is a min-heap of slot-available times. It is driven directly by
// replaceMin rather than container/heap: the event loop only ever pops the
// minimum and pushes one finish time back, and the interface-based heap
// boxes every float64 it moves — one allocation per task event, which
// dominated the collecting hot loop's allocation profile.
type slotHeap []float64

// replaceMin overwrites the minimum (the root) with v and restores heap
// order — the event loop's pop-then-push, fused. A zero-filled slice is a
// valid starting heap, so no separate Init is needed.
func (h slotHeap) replaceMin(v float64) {
	i, n := 0, len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h[r] < h[l] {
			m = r
		}
		if v <= h[m] {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = v
}

// scheduleTasks runs the list-scheduling event loop: each task goes to the
// earliest-free slot. It returns the stage makespan and the number of task
// launches (one per duration; speculative copies are accounted by the
// caller, which knows how many stragglers it replaced).
func scheduleTasks(durs []float64, slots int) (span float64, launches int) {
	return scheduleTasksIn(durs, slots, nil)
}

// scheduleTasksIn is scheduleTasks over a caller-provided scratch whose
// slot heap is reused; nil allocates a fresh heap.
func scheduleTasksIn(durs []float64, slots int, sc *runScratch) (span float64, launches int) {
	if slots < 1 {
		slots = 1
	}
	if slots > len(durs) {
		slots = len(durs)
	}
	var h slotHeap
	if sc != nil {
		h = sc.slotClock(slots)
	} else {
		h = make(slotHeap, slots)
	}
	maxFin := 0.0
	for _, d := range durs {
		fin := h[0] + d // the root is the earliest-free slot
		h.replaceMin(fin)
		if fin > maxFin {
			maxFin = fin
		}
	}
	return maxFin, len(durs)
}
