package sparksim

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/conf"
)

// shuffleProgram is a two-stage job with a substantial shuffle, used to
// exercise the shuffle-manager paths.
func shuffleProgram(mapCombine bool) *Program {
	return &Program{
		Name: "shuffle-test",
		Stages: []Stage{
			{Name: "map", InputFrac: 1, CPUSecPerMB: 0.02, ShuffleFrac: 1, MemExpansion: 1.5, MapSideCombine: mapCombine},
			{Name: "reduce", ReadsShuffle: true, ShuffleInFrac: 1, CPUSecPerMB: 0.02, MemExpansion: 1.5},
		},
	}
}

func runWith(t *testing.T, p *Program, mb float64, mutate func(conf.Config)) *Result {
	t.Helper()
	cfg := conf.StandardSpace().Default().Set(conf.ExecutorMemory, 8192)
	if mutate != nil {
		mutate(cfg)
	}
	return New(cluster.Standard(), 3).Run(p, mb, cfg)
}

func TestShuffleCompressionReducesTime(t *testing.T) {
	p := shuffleProgram(false)
	on := runWith(t, p, 30*1024, nil) // compress default true
	off := runWith(t, p, 30*1024, func(c conf.Config) { c.SetBool(conf.ShuffleCompress, false) })
	if on.TotalSec >= off.TotalSec {
		t.Fatalf("shuffle compression (%.1fs) should beat none (%.1fs) on a shuffle-heavy job",
			on.TotalSec, off.TotalSec)
	}
}

func TestTinyShuffleBuffersHurt(t *testing.T) {
	p := shuffleProgram(false)
	small := runWith(t, p, 30*1024, func(c conf.Config) { c.Set(conf.ShuffleFileBuffer, 2) })
	big := runWith(t, p, 30*1024, func(c conf.Config) { c.Set(conf.ShuffleFileBuffer, 128) })
	if big.TotalSec >= small.TotalSec {
		t.Fatalf("128KB buffers (%.1fs) should beat 2KB (%.1fs)", big.TotalSec, small.TotalSec)
	}
}

func TestTinyMaxSizeInFlightHurts(t *testing.T) {
	p := shuffleProgram(false)
	small := runWith(t, p, 30*1024, func(c conf.Config) { c.Set(conf.ReducerMaxSizeInFlight, 2) })
	big := runWith(t, p, 30*1024, func(c conf.Config) { c.Set(conf.ReducerMaxSizeInFlight, 48) })
	if big.TotalSec >= small.TotalSec {
		t.Fatalf("48MB in-flight (%.1fs) should beat 2MB (%.1fs)", big.TotalSec, small.TotalSec)
	}
}

func TestHashManagerConsolidationHelps(t *testing.T) {
	p := shuffleProgram(false)
	base := func(c conf.Config) {
		c.Set(conf.ShuffleManager, conf.ShuffleHash)
		c.Set(conf.DefaultParallelism, 50)
	}
	plain := runWith(t, p, 30*1024, base)
	consolidated := runWith(t, p, 30*1024, func(c conf.Config) {
		base(c)
		c.SetBool(conf.ShuffleConsolidateFiles, true)
	})
	if consolidated.TotalSec >= plain.TotalSec {
		t.Fatalf("consolidation (%.1fs) should beat per-task files (%.1fs) under hash shuffle",
			consolidated.TotalSec, plain.TotalSec)
	}
}

func TestBypassMergeAvoidsSortCost(t *testing.T) {
	// Without map-side aggregation and with fewer reduce partitions than
	// the threshold, the sort-shuffle bypass path skips the in-memory
	// sort; a map-side-combine job over the same volume must pay it.
	bypass := runWith(t, shuffleProgram(false), 30*1024, func(c conf.Config) {
		c.Set(conf.ShuffleBypassMergeThresh, 1000) // 50 partitions < 1000: bypass
		c.Set(conf.DefaultParallelism, 50)
	})
	sorting := runWith(t, shuffleProgram(true), 30*1024, func(c conf.Config) {
		c.Set(conf.ShuffleBypassMergeThresh, 1000) // combine disqualifies the bypass
		c.Set(conf.DefaultParallelism, 50)
	})
	if bypass.TotalSec >= sorting.TotalSec {
		t.Fatalf("bypass path (%.1fs) should beat the sorting path (%.1fs) for the same volume",
			bypass.TotalSec, sorting.TotalSec)
	}
}

func TestOffHeapRelievesMemoryPressure(t *testing.T) {
	p := shuffleProgram(true)
	cfgBase := func(c conf.Config) {
		c.Set(conf.ExecutorMemory, 1024) // tiny heap: pressure guaranteed
		c.Set(conf.DefaultParallelism, 50)
	}
	without := runWith(t, p, 20*1024, cfgBase)
	with := runWith(t, p, 20*1024, func(c conf.Config) {
		cfgBase(c)
		c.SetBool(conf.MemoryOffHeapEnabled, true)
		c.Set(conf.MemoryOffHeapSize, 1000)
	})
	if with.SpillMB >= without.SpillMB {
		t.Fatalf("off-heap memory should reduce spilling: %v MB vs %v MB", with.SpillMB, without.SpillMB)
	}
}

func TestAkkaFailureDetectorInteractsWithBigHeaps(t *testing.T) {
	// A large heap under high occupancy produces pauses; a twitchy
	// failure detector then declares executors lost.
	p := shuffleProgram(true)
	mk := func(threshold float64) *Result {
		return runWith(t, p, 60*1024, func(c conf.Config) {
			c.Set(conf.ExecutorMemory, 12288)
			c.Set(conf.ExecutorCores, 2)
			c.Set(conf.DefaultParallelism, 8) // huge per-task working set
			c.Set(conf.AkkaFailureDetector, threshold)
		})
	}
	twitchy := mk(100)
	patient := mk(500)
	if twitchy.TotalSec <= patient.TotalSec {
		t.Fatalf("threshold 100 (%.1fs) should be slower than 500 (%.1fs) under GC pauses",
			twitchy.TotalSec, patient.TotalSec)
	}
}

func TestMaxFailuresOneIsFragile(t *testing.T) {
	p := shuffleProgram(true)
	fragile := runWith(t, p, 100*1024, func(c conf.Config) {
		c.Set(conf.ExecutorMemory, 1024)
		c.Set(conf.DefaultParallelism, 8)
		c.Set(conf.TaskMaxFailures, 1)
	})
	tolerant := runWith(t, p, 100*1024, func(c conf.Config) {
		c.Set(conf.ExecutorMemory, 1024)
		c.Set(conf.DefaultParallelism, 8)
		c.Set(conf.TaskMaxFailures, 8)
	})
	if !fragile.Aborted {
		t.Skip("config no longer aborts at maxFailures=1; calibration moved")
	}
	if tolerant.Aborted && fragile.TotalSec <= tolerant.TotalSec {
		t.Fatal("more retry budget should not make things worse")
	}
}

func TestAbortedJobsCostMoreThanCompletion(t *testing.T) {
	// The tuner must never prefer a crash: an aborted run of the same
	// configuration class costs more than a completing one.
	p := shuffleProgram(true)
	abort := runWith(t, p, 100*1024, func(c conf.Config) {
		c.Set(conf.ExecutorMemory, 1024)
		c.Set(conf.DefaultParallelism, 8)
		c.Set(conf.TaskMaxFailures, 1)
	})
	complete := runWith(t, p, 100*1024, func(c conf.Config) {
		c.Set(conf.ExecutorMemory, 1024)
		c.Set(conf.DefaultParallelism, 8)
		c.Set(conf.TaskMaxFailures, 8)
	})
	if !abort.Aborted || complete.Aborted {
		t.Skip("calibration moved; abort/complete pair no longer reproducible here")
	}
	if abort.TotalSec <= complete.TotalSec {
		t.Fatalf("aborted run (%.1fs) must cost more than completing (%.1fs)",
			abort.TotalSec, complete.TotalSec)
	}
}

func TestLocalExecutionOnlyForTinyJobs(t *testing.T) {
	tiny := &Program{
		Name:   "tiny",
		Stages: []Stage{{Name: "probe", InputFrac: 1, CPUSecPerMB: 0.1, MemExpansion: 1, CollectMB: 0.1}},
	}
	on := New(cluster.Standard(), 3).Run(tiny, 10,
		conf.StandardSpace().Default().SetBool(conf.LocalExecutionEnabled, true))
	off := New(cluster.Standard(), 3).Run(tiny, 10, conf.StandardSpace().Default())
	if on.TotalSec >= off.TotalSec {
		t.Fatalf("local execution (%.2fs) should beat cluster scheduling (%.2fs) for a 10MB job",
			on.TotalSec, off.TotalSec)
	}
	// And it must NOT trigger for a shuffle-fed stage regardless of
	// InputFrac (the exploit the GA once found).
	big := New(cluster.Standard(), 3).Run(shuffleProgram(false), 50*1024,
		conf.StandardSpace().Default().SetBool(conf.LocalExecutionEnabled, true))
	if big.Stages[1].Sec < 1 {
		t.Fatalf("50GB shuffle stage ran in %.2fs: local-execution exploit is back", big.Stages[1].Sec)
	}
}

func TestDriverMemoryBoundsCollect(t *testing.T) {
	collectJob := &Program{
		Name:   "collector",
		Stages: []Stage{{Name: "gather", InputFrac: 1, CPUSecPerMB: 0.01, MemExpansion: 1, CollectFrac: 0.5}},
	}
	small := New(cluster.Standard(), 3).Run(collectJob, 4*1024,
		conf.StandardSpace().Default()) // 2GB to a 1GB driver
	big := New(cluster.Standard(), 3).Run(collectJob, 4*1024,
		conf.StandardSpace().Default().Set(conf.DriverMemory, 12288))
	if !small.Aborted && small.TotalSec <= big.TotalSec {
		t.Fatalf("collecting 2GB into a 1GB driver (%.1fs, aborted=%v) should be worse than a 12GB driver (%.1fs)",
			small.TotalSec, small.Aborted, big.TotalSec)
	}
}
