package sparksim

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/conf"
	"repro/internal/obs"
)

// TestConcurrentRunsMatchSerial shares one instrumented simulator across
// many goroutines and checks that every result is bit-identical to the
// serial run of the same job: Run must be a pure function of
// (seed, program, datasize, config), with no hidden state that call
// interleaving could perturb. The instrumented registry is exercised at
// the same time so `go test -race` covers the metrics path too.
func TestConcurrentRunsMatchSerial(t *testing.T) {
	space := conf.StandardSpace()
	rng := rand.New(rand.NewSource(21))
	p := testProgram()

	const n = 64
	type job struct {
		cfg conf.Config
		mb  float64
	}
	jobs := make([]job, n)
	for i := range jobs {
		jobs[i] = job{cfg: space.Random(rng), mb: 1024 * (1 + rng.Float64()*49)}
	}

	serial := New(cluster.Standard(), 5)
	want := make([]*Result, n)
	wantTasks, wantFailed := 0, 0
	for i, j := range jobs {
		want[i] = serial.Run(p, j.mb, j.cfg)
		wantTasks += want[i].TasksLaunched
		wantFailed += want[i].TasksFailed
	}

	reg := obs.NewRegistry()
	shared := New(cluster.Standard(), 5)
	shared.Instrument(reg)
	got := make([]*Result, n)
	var wg sync.WaitGroup
	workers := 2 * runtime.GOMAXPROCS(0)
	if workers < 8 {
		workers = 8
	}
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				got[i] = shared.Run(p, jobs[i].mb, jobs[i].cfg)
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	for i := range jobs {
		if got[i].TotalSec != want[i].TotalSec {
			t.Errorf("job %d: concurrent TotalSec %v != serial %v", i, got[i].TotalSec, want[i].TotalSec)
		}
		if got[i].TasksLaunched != want[i].TasksLaunched || got[i].TasksFailed != want[i].TasksFailed {
			t.Errorf("job %d: concurrent tasks %d/%d != serial %d/%d", i,
				got[i].TasksLaunched, got[i].TasksFailed, want[i].TasksLaunched, want[i].TasksFailed)
		}
	}

	snap := reg.Snapshot()
	if runs := snap.Counters["sparksim.runs"]; runs != n {
		t.Errorf("sparksim.runs = %d, want %d", runs, n)
	}
	if tasks := snap.Counters["sparksim.tasks.launched"]; tasks != int64(wantTasks) {
		t.Errorf("sparksim.tasks.launched = %d, want %d", tasks, wantTasks)
	}
	if retried := snap.Counters["sparksim.tasks.retried"]; retried != int64(wantFailed) {
		t.Errorf("sparksim.tasks.retried = %d, want %d", retried, wantFailed)
	}
	if h := snap.Histograms["sparksim.run.simsec"]; h.Count != n {
		t.Errorf("sparksim.run.simsec count = %d, want %d", h.Count, n)
	}
}

// TestInstrumentationOverhead guards the tentpole promise that metrics can
// stay on in benchmarks: an instrumented Run must cost about the same as
// the nil-registry fast path. Timing-ratio assertions are inherently
// jittery, so the test takes the best of several benchmark passes and
// allows a generous margin over the issue's ~5% goal before declaring a
// regression; it is skipped under -race (atomics are many times more
// expensive there) and under -short.
func TestInstrumentationOverhead(t *testing.T) {
	if obs.RaceEnabled {
		t.Skip("race detector inflates atomic costs; overhead is guarded in the non-race CI lane")
	}
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	p := testProgram()
	cfg := conf.StandardSpace().Default()

	run := func(sim *Simulator) float64 {
		best := 0.0
		for pass := 0; pass < 3; pass++ {
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sim.Run(p, 10*1024, cfg)
				}
			})
			ns := float64(r.NsPerOp())
			if best == 0 || ns < best {
				best = ns
			}
		}
		return best
	}

	bare := New(cluster.Standard(), 3)
	instrumented := New(cluster.Standard(), 3)
	instrumented.Instrument(obs.NewRegistry())

	nsBare := run(bare)
	nsInst := run(instrumented)
	ratio := nsInst / nsBare
	t.Logf("bare %.0f ns/op, instrumented %.0f ns/op, ratio %.3f", nsBare, nsInst, ratio)
	if ratio > 1.30 {
		t.Errorf("instrumented Run is %.2fx the bare path, want <= 1.30x", ratio)
	}
}
