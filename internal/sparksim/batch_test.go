package sparksim

import (
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/conf"
)

// randomPairs draws n (configuration, input size) pairs from the standard
// space.
func randomPairs(n int, seed int64) []RunSpec {
	space := conf.StandardSpace()
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]RunSpec, n)
	for i := range pairs {
		pairs[i] = RunSpec{Cfg: space.Random(rng), InputMB: 1024 * (1 + 99*rng.Float64())}
	}
	return pairs
}

// TestRunBatchMatchesRun pins the batching contract: every result of a
// RunBatch call — full breakdown, not just TotalSec — must be bit-identical
// to the corresponding Run call, for any way of slicing the pairs into
// batches and at any GOMAXPROCS. A violation means scratch reuse leaked
// state between runs.
func TestRunBatchMatchesRun(t *testing.T) {
	sim := newTestSim()
	p := testProgram()
	const n = 64
	pairs := randomPairs(n, 81)
	want := make([]*Result, n)
	for i, pr := range pairs {
		want[i] = sim.Run(p, pr.InputMB, pr.Cfg)
	}
	for _, procs := range []int{1, runtime.GOMAXPROCS(0)} {
		prev := runtime.GOMAXPROCS(procs)
		for _, bs := range []int{1, 3, 17, n} {
			for lo := 0; lo < n; lo += bs {
				hi := lo + bs
				if hi > n {
					hi = n
				}
				for i, r := range sim.RunBatch(p, pairs[lo:hi]) {
					if !reflect.DeepEqual(r, want[lo+i]) {
						runtime.GOMAXPROCS(prev)
						t.Fatalf("procs=%d batch=%d pair %d: RunBatch diverged from Run\nbatch:  %+v\nserial: %+v",
							procs, bs, lo+i, r, want[lo+i])
					}
				}
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}

// TestRunBatchConcurrentCallers checks that concurrent RunBatch calls on
// one simulator stay independent: each batch owns its scratch, so parallel
// callers must reproduce the serial reference exactly.
func TestRunBatchConcurrentCallers(t *testing.T) {
	sim := newTestSim()
	p := testProgram()
	const n = 40
	pairs := randomPairs(n, 82)
	want := make([]*Result, n)
	for i, pr := range pairs {
		want[i] = sim.Run(p, pr.InputMB, pr.Cfg)
	}
	const callers = 4
	got := make([][]*Result, callers)
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			got[c] = sim.RunBatch(p, pairs)
		}(c)
	}
	wg.Wait()
	for c := 0; c < callers; c++ {
		for i := range want {
			if !reflect.DeepEqual(got[c][i], want[i]) {
				t.Fatalf("caller %d pair %d: concurrent RunBatch diverged from Run", c, i)
			}
		}
	}
}

// TestRunBatchIntoMatchesRunBatch pins the storage-reuse contract: a
// RunBatchInto call must produce, per pair, exactly the Result RunBatch
// produces — including when the destination slice is recycled across
// batches of different programs and sizes, which exercises the
// stale-field and Stages-reuse reset paths.
func TestRunBatchIntoMatchesRunBatch(t *testing.T) {
	sim := newTestSim()
	p := testProgram()
	const n = 48
	pairs := randomPairs(n, 83)
	want := sim.RunBatch(p, pairs)

	// Fresh storage.
	got := sim.RunBatchInto(p, pairs, nil)
	if len(got) != n {
		t.Fatalf("RunBatchInto returned %d results for %d pairs", len(got), n)
	}
	for i := range want {
		if !reflect.DeepEqual(&got[i], want[i]) {
			t.Fatalf("pair %d: RunBatchInto diverged from RunBatch\ninto:  %+v\nbatch: %+v",
				i, &got[i], want[i])
		}
	}

	// Recycled storage: run a different workload into the same slice, then
	// the original pairs again — any stale field or unreset stage would
	// surface as a diff against the reference.
	skewed := &Program{
		Name: "skewed-into",
		Stages: []Stage{
			{Name: "map", InputFrac: 1, CPUSecPerMB: 0.2, MemExpansion: 1, SkewFactor: 6},
			{Name: "agg", InputFrac: 0, ShuffleInFrac: 0.4, CPUSecPerMB: 0.1, MemExpansion: 1, ReadsShuffle: true},
		},
	}
	got = sim.RunBatchInto(skewed, pairs[:n/2], got)
	for i, r := range sim.RunBatch(skewed, pairs[:n/2]) {
		if !reflect.DeepEqual(&got[i], r) {
			t.Fatalf("skewed pair %d: recycled RunBatchInto diverged", i)
		}
	}
	got = sim.RunBatchInto(p, pairs, got)
	for i := range want {
		if !reflect.DeepEqual(&got[i], want[i]) {
			t.Fatalf("pair %d: RunBatchInto over recycled storage diverged from RunBatch", i)
		}
	}
}

// TestSpeculativeCopiesCountAsLaunches pins the launch accounting: a
// speculative copy is a task attempt the cluster actually ran, so enabling
// speculation on a skewed stage must raise TasksLaunched above the
// speculation-off run — without any of the increase coming from failures.
func TestSpeculativeCopiesCountAsLaunches(t *testing.T) {
	p := &Program{
		Name: "skewed",
		Stages: []Stage{
			{Name: "map", InputFrac: 1, CPUSecPerMB: 0.2, MemExpansion: 1, SkewFactor: 6},
		},
	}
	space := conf.StandardSpace()
	off := space.Default().Set(conf.ExecutorMemory, 8192)
	on := off.Clone().SetBool(conf.Speculation, true)
	sim := newTestSim()
	rOff := sim.Run(p, 30*1024, off)
	rOn := sim.Run(p, 30*1024, on)
	if rOff.TasksFailed != 0 || rOn.TasksFailed != 0 {
		t.Fatalf("unexpected failures muddy the accounting: off=%d on=%d",
			rOff.TasksFailed, rOn.TasksFailed)
	}
	if rOn.TasksLaunched <= rOff.TasksLaunched {
		t.Fatalf("speculative copies not counted as launches: on=%d off=%d",
			rOn.TasksLaunched, rOff.TasksLaunched)
	}
	if rOn.TotalSec >= rOff.TotalSec {
		t.Fatalf("speculation should still trim the makespan: on=%v off=%v",
			rOn.TotalSec, rOff.TotalSec)
	}
}
