package hadoopsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/stats"
)

func TestSpaceShape(t *testing.T) {
	s := Space()
	if s.Len() != 10 {
		t.Fatalf("Hadoop space has %d params, want ~10 (paper: 'around 10')", s.Len())
	}
	if _, ok := s.Index(IOSortMB); !ok {
		t.Error("io.sort.mb missing")
	}
}

func TestRunPositiveAndDeterministic(t *testing.T) {
	sim := New(cluster.Standard(), 1)
	cfg := Space().Default()
	a := sim.Run(KMeansJob(), 18*1024, cfg)
	b := sim.Run(KMeansJob(), 18*1024, cfg)
	if a <= 0 {
		t.Fatalf("execution time %v, want > 0", a)
	}
	if a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestMoreDataTakesLonger(t *testing.T) {
	sim := New(cluster.Standard(), 1)
	cfg := Space().Default()
	for _, job := range []Job{KMeansJob(), PageRankJob()} {
		small := sim.Run(job, 9*1024, cfg)
		big := sim.Run(job, 18*1024, cfg)
		if big <= small {
			t.Errorf("%s: doubling input did not increase time (%v -> %v)", job.Name, small, big)
		}
	}
}

// The motivation claim (§2.2.1): configuration-induced execution-time
// variation is much smaller, relative to the mean, for the on-disk
// framework than for the in-memory one. Here we check the ODC side in
// isolation: the coefficient of variation over random configurations stays
// modest because disk I/O dominates.
func TestConfigurationVarianceIsDamped(t *testing.T) {
	sim := New(cluster.Standard(), 1)
	space := Space()
	rng := rand.New(rand.NewSource(2))
	times := make([]float64, 100)
	for i := range times {
		times[i] = sim.Run(PageRankJob(), 18*1024, space.Random(rng))
	}
	cv := stats.StdDev(times) / stats.Mean(times)
	if cv > 1.0 {
		t.Errorf("ODC coefficient of variation %v too high; disk should damp config effects", cv)
	}
}

// Property: random configurations always yield positive finite times.
func TestRunFiniteProperty(t *testing.T) {
	sim := New(cluster.Standard(), 3)
	space := Space()
	rng := rand.New(rand.NewSource(4))
	f := func(int64) bool {
		cfg := space.Random(rng)
		v := sim.Run(PageRankJob(), 1024*(1+rng.Float64()*49), cfg)
		return v > 0 && v < 1e8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
