package hadoopsim

import (
	"testing"

	"repro/internal/cluster"
)

// BenchmarkRun measures one simulated MapReduce execution, the motivation
// study's unit of work.
func BenchmarkRun(b *testing.B) {
	sim := New(cluster.Standard(), 1)
	cfg := Space().Default()
	job := PageRankJob()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim.Run(job, 18*1024, cfg)
	}
}
