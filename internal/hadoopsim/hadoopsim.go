// Package hadoopsim models a traditional on-disk cluster computing (ODC)
// framework in the style of Hadoop MapReduce. The paper's motivation study
// (§2.2.1, Fig. 2) contrasts it with Spark: because every MapReduce pass is
// bracketed by disk I/O — input from HDFS, map-side sort spills, shuffle to
// disk, replicated output — execution time is dominated by stable I/O terms
// and is therefore far less sensitive to configuration and dataset-size
// perturbations than the in-memory framework.
//
// The package reuses internal/conf's generic parameter-space machinery for
// the ~10 performance-critical Hadoop parameters the paper cites.
package hadoopsim

import (
	"hash/fnv"
	"math"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/conf"
)

// Hadoop parameter names.
const (
	IOSortMB          = "mapreduce.task.io.sort.mb"
	IOSortFactor      = "mapreduce.task.io.sort.factor"
	SortSpillPercent  = "mapreduce.map.sort.spill.percent"
	MapMemoryMB       = "mapreduce.map.memory.mb"
	ReduceMemoryMB    = "mapreduce.reduce.memory.mb"
	NumReduces        = "mapreduce.job.reduces"
	MapOutputCompress = "mapreduce.map.output.compress"
	ParallelCopies    = "mapreduce.reduce.shuffle.parallelcopies"
	ShuffleBufferPct  = "mapreduce.reduce.shuffle.input.buffer.percent"
	SlowstartPct      = "mapreduce.job.reduce.slowstart.completedmaps"
)

// Space returns the ~10-parameter Hadoop configuration space the paper
// contrasts with Spark's 41 (§1: "more than 40 vs. around 10").
func Space() *conf.Space {
	params := []conf.Param{
		{Name: IOSortMB, Desc: "Map-side sort buffer", Kind: conf.Int, Min: 100, Max: 2048, Default: 100, Unit: "MB"},
		{Name: IOSortFactor, Desc: "Streams merged at once during sorts", Kind: conf.Int, Min: 10, Max: 100, Default: 10},
		{Name: SortSpillPercent, Desc: "Sort buffer fill ratio that triggers a spill", Kind: conf.Float, Min: 0.5, Max: 0.9, Default: 0.8},
		{Name: MapMemoryMB, Desc: "Memory per map task", Kind: conf.Int, Min: 512, Max: 4096, Default: 1024, Unit: "MB"},
		{Name: ReduceMemoryMB, Desc: "Memory per reduce task", Kind: conf.Int, Min: 512, Max: 8192, Default: 1024, Unit: "MB"},
		{Name: NumReduces, Desc: "Reduce task count", Kind: conf.Int, Min: 8, Max: 200, Default: 16},
		{Name: MapOutputCompress, Desc: "Compress intermediate map output", Kind: conf.Bool, Min: 0, Max: 1, Default: 0},
		{Name: ParallelCopies, Desc: "Parallel fetches per reduce", Kind: conf.Int, Min: 5, Max: 50, Default: 5},
		{Name: ShuffleBufferPct, Desc: "Reduce heap fraction buffering shuffle input", Kind: conf.Float, Min: 0.5, Max: 0.9, Default: 0.7},
		{Name: SlowstartPct, Desc: "Map completion fraction before reduces start", Kind: conf.Float, Min: 0.05, Max: 1, Default: 0.8},
	}
	s, err := conf.NewSpace(params)
	if err != nil {
		panic("hadoopsim: invalid built-in space: " + err.Error())
	}
	return s
}

// Job describes a MapReduce application. Iterative algorithms (KMeans,
// PageRank) run as chains of MapReduce passes with HDFS materialization in
// between — the structural difference from the IMC framework.
type Job struct {
	Name string
	// Iterations is the number of chained MapReduce passes.
	Iterations int
	// MapCPUSecPerMB and ReduceCPUSecPerMB are compute costs per MB at
	// the reference 1.9 GHz clock.
	MapCPUSecPerMB    float64
	ReduceCPUSecPerMB float64
	// ShuffleFrac is the map-output volume relative to pass input.
	ShuffleFrac float64
	// OutputFrac is the HDFS output volume per pass relative to input.
	OutputFrac float64
}

// KMeansJob mirrors the Hadoop KMeans of the motivation study: every
// iteration rescans the input from disk and shuffles only centroids.
func KMeansJob() Job {
	return Job{Name: "hadoop-kmeans", Iterations: 10, MapCPUSecPerMB: 0.11,
		ReduceCPUSecPerMB: 0.02, ShuffleFrac: 0.001, OutputFrac: 0.001}
}

// PageRankJob mirrors Hadoop PageRank: each iteration shuffles rank
// contributions and rewrites the rank table to HDFS.
func PageRankJob() Job {
	return Job{Name: "hadoop-pagerank", Iterations: 5, MapCPUSecPerMB: 0.05,
		ReduceCPUSecPerMB: 0.04, ShuffleFrac: 0.4, OutputFrac: 0.3}
}

// Simulator executes Jobs on the modelled cluster.
type Simulator struct {
	Cluster cluster.Cluster
	Seed    int64
}

// New returns a Hadoop simulator over cl.
func New(cl cluster.Cluster, seed int64) *Simulator {
	return &Simulator{Cluster: cl, Seed: seed}
}

// Run simulates the job over inputMB of input under cfg (a Space()
// configuration) and returns the execution time in seconds. Deterministic
// in (Seed, job, inputMB, cfg).
func (s *Simulator) Run(job Job, inputMB float64, cfg conf.Config) float64 {
	cl := s.Cluster
	rng := rand.New(rand.NewSource(s.seed(job, inputMB, cfg)))
	cpuScale := 1.9 / cl.CPUGHz

	// Slot model: task memory determines how many fit per node.
	mapSlots := int(math.Min(float64(cl.CoresPerNode), cl.MemoryPerNodeMB/float64(cfg.GetInt(MapMemoryMB)))) * cl.Workers
	redSlots := int(math.Min(float64(cl.CoresPerNode), cl.MemoryPerNodeMB/float64(cfg.GetInt(ReduceMemoryMB)))) * cl.Workers
	if mapSlots < 1 {
		mapSlots = 1
	}
	if redSlots < 1 {
		redSlots = 1
	}

	total := 0.0
	for it := 0; it < job.Iterations; it++ {
		total += s.pass(job, inputMB, cfg, rng, mapSlots, redSlots, cpuScale)
	}
	return total
}

// pass simulates one MapReduce pass.
func (s *Simulator) pass(job Job, inputMB float64, cfg conf.Config, rng *rand.Rand, mapSlots, redSlots int, cpuScale float64) float64 {
	cl := s.Cluster
	maps := int(math.Ceil(inputMB / 128))
	if maps < 1 {
		maps = 1
	}
	reduces := cfg.GetInt(NumReduces)

	perMap := inputMB / float64(maps)
	spillMB := perMap * job.ShuffleFrac
	sortMB := float64(cfg.GetInt(IOSortMB)) * cfg.Get(SortSpillPercent)
	spills := math.Max(1, math.Ceil(spillMB/math.Max(1, sortMB)))
	mergeRounds := math.Ceil(math.Log(math.Max(2, spills)) / math.Log(float64(cfg.GetInt(IOSortFactor))))

	compress := cfg.GetBool(MapOutputCompress)
	wireFactor := 1.0
	compCPU := 0.0
	if compress {
		wireFactor = 0.5
		compCPU = spillMB / 200 * cpuScale
	}

	// Map task: JVM startup and sort-buffer allocation, read HDFS,
	// compute, sort-spill (possibly multiple merge passes), all
	// bracketed by disk.
	mapSec := 0.2 + float64(cfg.GetInt(IOSortMB))*0.001 +
		perMap/cl.DiskReadMBps +
		perMap*job.MapCPUSecPerMB*cpuScale +
		spillMB*mergeRounds*wireFactor*(1/cl.DiskWriteMBps+1/cl.DiskReadMBps) +
		spillMB*0.003*math.Log2(2+spillMB)*cpuScale + compCPU

	// Reduce task: fetch over the network with bounded parallelism,
	// merge from disk, compute, write replicated output.
	perRed := inputMB * job.ShuffleFrac / float64(reduces)
	copies := float64(cfg.GetInt(ParallelCopies))
	fetchSec := perRed * wireFactor / cl.NetMBps * math.Max(1, 10/copies)
	bufMB := float64(cfg.GetInt(ReduceMemoryMB)) * cfg.Get(ShuffleBufferPct)
	diskMergeMB := math.Max(0, perRed-bufMB) * 2
	outMB := inputMB * job.OutputFrac / float64(reduces)
	redSec := fetchSec +
		diskMergeMB/cl.DiskWriteMBps +
		perRed*job.ReduceCPUSecPerMB*cpuScale +
		outMB*(1/cl.DiskWriteMBps+2/cl.NetMBps)

	// Wave scheduling with modest noise; reduces overlap maps after the
	// slowstart threshold.
	mapWall := wave(maps, mapSlots, mapSec, rng)
	redWall := wave(reduces, redSlots, redSec, rng)
	overlap := (1 - cfg.Get(SlowstartPct)) * math.Min(mapWall, redWall) * 0.5
	// Per-pass fixed costs: job setup plus reduce-task scheduling and JVM
	// launches, which depend on the configuration but not the data size —
	// the reason ODC variation grows slowly with input size (Fig. 2).
	setup := 2 + float64(reduces)*0.3
	return mapWall + redWall - overlap + setup
}

// wave approximates list scheduling of n identical tasks with lognormal
// noise over k slots.
func wave(n, k int, sec float64, rng *rand.Rand) float64 {
	waves := math.Ceil(float64(n) / float64(k))
	const sigma = 0.08 // disk-bound tasks vary less than in-memory ones
	noisy := sec * math.Exp(sigma*rng.NormFloat64()-sigma*sigma/2)
	// The final wave's straggler sets the tail.
	tail := sec * (1 + sigma*2)
	return noisy*(waves-1) + tail
}

func (s *Simulator) seed(job Job, inputMB float64, cfg conf.Config) int64 {
	h := fnv.New64a()
	h.Write([]byte(job.Name))
	var buf [8]byte
	put := func(v float64) {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(inputMB)
	put(float64(s.Seed))
	for _, v := range cfg.Vector() {
		put(v)
	}
	return int64(h.Sum64())
}
