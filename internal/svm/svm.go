// Package svm implements the support-vector-machine baseline of §2.2.2
// (the technique of [19]): ε-insensitive support vector regression with an
// RBF kernel, trained by stochastic subgradient descent over the dual
// coefficients with a precomputed kernel matrix.
package svm

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/model"
)

// Options are the SVR hyperparameters. The zero value selects C=10,
// ε=0.05, an RBF bandwidth of 1/d, and 30 epochs.
type Options struct {
	// C is the regularization trade-off.
	C float64
	// Epsilon is the insensitive-tube half-width (in fit space).
	Epsilon float64
	// Gamma is the RBF bandwidth; 0 selects 1/d.
	Gamma float64
	// Epochs is the number of passes over the training set.
	Epochs int
	// NoLogTarget disables fitting log execution time.
	NoLogTarget bool
	// Seed drives sample ordering.
	Seed int64
}

func (o Options) withDefaults(d int) Options {
	if o.C <= 0 {
		o.C = 10
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 0.05
	}
	if o.Gamma <= 0 {
		o.Gamma = 1 / float64(d)
	}
	if o.Epochs <= 0 {
		o.Epochs = 30
	}
	return o
}

// SVR is a trained support vector regressor implementing model.Model.
type SVR struct {
	std   *model.Standardizer
	sv    [][]float64 // standardized support vectors
	alpha []float64   // dual coefficients (α - α*)
	bias  float64
	gamma float64
	yMean float64
	yStd  float64
	log   bool
}

// NumSupportVectors returns the count of samples with nonzero dual
// coefficients.
func (s *SVR) NumSupportVectors() int {
	c := 0
	for _, a := range s.alpha {
		if a != 0 {
			c++
		}
	}
	return c
}

// Predict evaluates the kernel expansion and returns seconds.
func (s *SVR) Predict(x []float64) float64 {
	z := s.std.Apply(x)
	f := s.bias
	for i, v := range s.sv {
		if s.alpha[i] == 0 {
			continue
		}
		f += s.alpha[i] * rbf(z, v, s.gamma)
	}
	v := f*s.yStd + s.yMean
	if s.log {
		return math.Exp(v)
	}
	return v
}

func rbf(a, b []float64, gamma float64) float64 {
	d := 0.0
	for i := range a {
		t := a[i] - b[i]
		d += t * t
	}
	return math.Exp(-gamma * d)
}

// Train fits an ε-SVR to ds.
func Train(ds *model.Dataset, opt Options) (*SVR, error) {
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("svm: %w", err)
	}
	n := ds.Len()
	if n < 5 {
		return nil, fmt.Errorf("svm: %d samples is too few", n)
	}
	opt = opt.withDefaults(ds.Dim())
	rng := rand.New(rand.NewSource(opt.Seed))

	std := model.FitStandardizer(ds)
	X := std.ApplyAll(ds.Features)
	y := make([]float64, n)
	for i, t := range ds.Targets {
		if opt.NoLogTarget {
			y[i] = t
		} else {
			y[i] = math.Log(math.Max(1e-9, t))
		}
	}
	yMean, yStd := meanStd(y)
	for i := range y {
		y[i] = (y[i] - yMean) / yStd
	}

	// Precompute the kernel matrix (n is a few thousand at most here).
	K := make([][]float64, n)
	for i := range K {
		K[i] = make([]float64, n)
		K[i][i] = 1
		for j := 0; j < i; j++ {
			v := rbf(X[i], X[j], opt.Gamma)
			K[i][j], K[j][i] = v, v
		}
	}

	// Kernelized stochastic subgradient on the ε-insensitive loss:
	// maintain f(x_i) incrementally as α updates.
	alpha := make([]float64, n)
	f := make([]float64, n)
	bias := 0.0
	order := rng.Perm(n)
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		lr := 0.5 / (1 + float64(epoch))
		shuffle(order, rng)
		for _, i := range order {
			err := y[i] - (f[i] + bias)
			var g float64
			switch {
			case err > opt.Epsilon:
				g = lr * math.Min(opt.C, err)
			case err < -opt.Epsilon:
				g = lr * math.Max(-opt.C, err)
			default:
				// Inside the tube: shrink toward sparsity.
				g = -lr * 0.01 * alpha[i]
			}
			if g == 0 {
				continue
			}
			alpha[i] += g
			// Box constraint on the dual coefficient.
			if alpha[i] > opt.C {
				g -= alpha[i] - opt.C
				alpha[i] = opt.C
			} else if alpha[i] < -opt.C {
				g -= alpha[i] + opt.C
				alpha[i] = -opt.C
			}
			ki := K[i]
			for j := range f {
				f[j] += g * ki[j]
			}
			bias += lr * 0.1 * (y[i] - (f[i] + bias))
		}
	}

	// Drop negligible coefficients to keep prediction cheap.
	s := &SVR{std: std, gamma: opt.Gamma, bias: bias, yMean: yMean, yStd: yStd, log: !opt.NoLogTarget}
	for i, a := range alpha {
		if math.Abs(a) > 1e-6 {
			s.sv = append(s.sv, X[i])
			s.alpha = append(s.alpha, a)
		}
	}
	return s, nil
}

func meanStd(xs []float64) (float64, float64) {
	m := 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	s := math.Sqrt(v / float64(len(xs)))
	if s < 1e-12 {
		s = 1
	}
	return m, s
}

func shuffle(idx []int, rng *rand.Rand) {
	for i := len(idx) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		idx[i], idx[j] = idx[j], idx[i]
	}
}

// Trainer adapts Train to model.Trainer.
type Trainer struct{ Opt Options }

// Name implements model.Trainer.
func (Trainer) Name() string { return "SVM" }

// Train implements model.Trainer.
func (t Trainer) Train(ds *model.Dataset) (model.Model, error) { return Train(ds, t.Opt) }
