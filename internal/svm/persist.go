package svm

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/model"
)

// snapshot is the serialized form of an SVR: the standardizer, the
// support vectors and their dual coefficients, and the kernel/target
// parameters — everything Predict touches — behind a version field.
type snapshot struct {
	Version     int
	Mean, Std   []float64
	SV          [][]float64
	Alpha       []float64
	Bias        float64
	Gamma       float64
	YMean, YStd float64
	Log         bool
}

const snapshotVersion = 1

// Save writes the regressor to w.
func (s *SVR) Save(w io.Writer) error {
	snap := snapshot{
		Version: snapshotVersion,
		Mean:    s.std.Mean,
		Std:     s.std.Std,
		SV:      s.sv,
		Alpha:   s.alpha,
		Bias:    s.bias,
		Gamma:   s.gamma,
		YMean:   s.yMean,
		YStd:    s.yStd,
		Log:     s.log,
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("svm: saving model: %w", err)
	}
	return nil
}

// Load reads a regressor previously written by Save; predictions are
// bit-identical to the regressor that was saved.
func Load(r io.Reader) (*SVR, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("svm: loading model: %w", err)
	}
	if snap.Version < 1 || snap.Version > snapshotVersion {
		return nil, fmt.Errorf("svm: model snapshot version %d, want 1..%d", snap.Version, snapshotVersion)
	}
	if len(snap.SV) != len(snap.Alpha) || len(snap.Mean) != len(snap.Std) {
		return nil, fmt.Errorf("svm: malformed snapshot: %d support vectors, %d coefficients",
			len(snap.SV), len(snap.Alpha))
	}
	return &SVR{
		std:   &model.Standardizer{Mean: snap.Mean, Std: snap.Std},
		sv:    snap.SV,
		alpha: snap.Alpha,
		bias:  snap.Bias,
		gamma: snap.Gamma,
		yMean: snap.YMean,
		yStd:  snap.YStd,
		log:   snap.Log,
	}, nil
}

// Backend adapts the package to the model.Backend contract with a simple
// versioned codec as its persistence capability.
type Backend struct{ Opt Options }

// Name implements model.Backend.
func (Backend) Name() string { return "svm" }

// options merges the cross-backend knobs into the backend's own.
func (b Backend) options(opt model.TrainOpts) Options {
	eff := b.Opt
	if opt.Quick && eff.Epochs == 0 {
		eff.Epochs = 10
	}
	if opt.Epochs > 0 {
		eff.Epochs = opt.Epochs
	}
	if opt.Seed != 0 {
		eff.Seed = opt.Seed
	}
	return eff
}

// Train implements model.Backend.
func (b Backend) Train(ds *model.Dataset, opt model.TrainOpts) (model.Model, error) {
	return Train(ds, b.options(opt))
}

// Save implements model.Saver.
func (Backend) Save(m model.Model, w io.Writer) error {
	s, ok := m.(*SVR)
	if !ok {
		return fmt.Errorf("svm: cannot save %T through the svm backend", m)
	}
	return s.Save(w)
}

// Load implements model.Loader.
func (Backend) Load(r io.Reader) (model.Model, error) { return Load(r) }
