package svm

import "testing"

// BenchmarkTrain measures fitting the ε-SVR baseline, dominated by the
// kernel-matrix precomputation (n²·d).
func BenchmarkTrain(b *testing.B) {
	ds := synthDS(1000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Train(ds, Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredict measures one kernel-expansion query.
func BenchmarkPredict(b *testing.B) {
	ds := synthDS(800, 2)
	m, err := Train(ds, Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	x := ds.Features[3]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(x)
	}
}
