package svm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
)

func synthDS(n int, seed int64) *model.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := model.NewDataset(nil)
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64() * 4, rng.Float64() * 4}
		t := 15 + 6*x[0] + 2*x[1]
		ds.Add(x, t*(1+0.02*rng.NormFloat64()))
	}
	return ds
}

func TestSVRLearns(t *testing.T) {
	m, err := Train(synthDS(600, 1), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := model.Evaluate(m, synthDS(200, 2))
	if e.Mean > 0.12 {
		t.Fatalf("SVR mean error %.1f%% too high", e.Mean*100)
	}
	if m.NumSupportVectors() == 0 {
		t.Error("no support vectors retained")
	}
}

func TestEpsilonTubeSparsity(t *testing.T) {
	ds := synthDS(400, 3)
	tight, _ := Train(ds, Options{Epsilon: 0.001, Seed: 1})
	loose, _ := Train(ds, Options{Epsilon: 0.5, Seed: 1})
	if loose.NumSupportVectors() > tight.NumSupportVectors() {
		t.Errorf("wider tube kept more SVs (%d) than narrow (%d)",
			loose.NumSupportVectors(), tight.NumSupportVectors())
	}
}

func TestRejectsBadInput(t *testing.T) {
	if _, err := Train(model.NewDataset(nil), Options{}); err == nil {
		t.Error("empty dataset should fail")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	ds := synthDS(200, 4)
	a, _ := Train(ds, Options{Seed: 9})
	b, _ := Train(ds, Options{Seed: 9})
	if a.Predict([]float64{2, 2}) != b.Predict([]float64{2, 2}) {
		t.Fatal("same seed differs")
	}
}

func TestPredictionsFinitePositive(t *testing.T) {
	m, err := Train(synthDS(300, 5), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for k := 0; k < 100; k++ {
		x := []float64{rng.Float64() * 8, rng.Float64() * 8}
		p := m.Predict(x)
		if p <= 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatalf("prediction %v at %v", p, x)
		}
	}
}

func TestRBFKernelProperties(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, -1}
	if got := rbf(a, a, 0.5); got != 1 {
		t.Errorf("k(x,x) = %v, want 1", got)
	}
	if got := rbf(a, b, 0.5); got <= 0 || got >= 1 {
		t.Errorf("k(a,b) = %v, want in (0,1)", got)
	}
	if rbf(a, b, 0.5) != rbf(b, a, 0.5) {
		t.Error("kernel not symmetric")
	}
}

func TestTrainerInterface(t *testing.T) {
	var tr model.Trainer = Trainer{}
	if tr.Name() != "SVM" {
		t.Errorf("Name = %q", tr.Name())
	}
	if _, err := tr.Train(synthDS(100, 7)); err != nil {
		t.Fatal(err)
	}
}
