package apps

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/workloads"
)

func ctx() *engine.Context {
	return engine.NewContext(engine.Config{Parallelism: 4, Workers: 4})
}

func TestWordCountOnGeneratedText(t *testing.T) {
	var buf strings.Builder
	if _, err := workloads.GenText(&buf, 1<<20, 1); err != nil {
		t.Fatal(err)
	}
	words := strings.Fields(buf.String())
	got, err := WordCount(ctx(), words)
	if err != nil {
		t.Fatal(err)
	}
	ref := map[string]int{}
	for _, w := range words {
		ref[w]++
	}
	if len(got) != len(ref) {
		t.Fatalf("%d distinct words, want %d", len(got), len(ref))
	}
	for w, n := range ref {
		if got[w] != n {
			t.Fatalf("%q: %d, want %d", w, got[w], n)
		}
	}
}

func TestTeraSortOnGeneratedRecords(t *testing.T) {
	var buf strings.Builder
	if _, err := workloads.GenTeraRecords(&buf, 5000, 2); err != nil {
		t.Fatal(err)
	}
	records := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	sorted, err := TeraSort(ctx(), records)
	if err != nil {
		t.Fatal(err)
	}
	if len(sorted) != len(records) {
		t.Fatalf("lost records: %d != %d", len(sorted), len(records))
	}
	for i := 1; i < len(sorted); i++ {
		if sorted[i][:10] < sorted[i-1][:10] {
			t.Fatalf("not sorted at %d", i)
		}
	}
	// Same multiset.
	ref := append([]string(nil), records...)
	sort.Strings(ref)
	got := append([]string(nil), sorted...)
	sort.Strings(got)
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatal("sort changed record contents")
		}
	}
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TeraSort(ctx(), []string{"short"}); err == nil {
		t.Error("short records should be rejected")
	}
}

func TestKMeansRecoversClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	truth := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	var points [][]float64
	for i := 0; i < 1500; i++ {
		c := truth[i%3]
		points = append(points, []float64{
			c[0] + rng.NormFloat64(),
			c[1] + rng.NormFloat64(),
		})
	}
	centroids, err := KMeans(ctx(), points, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Every true center must have a recovered centroid within 0.5.
	for _, tc := range truth {
		best := math.Inf(1)
		for _, c := range centroids {
			d := math.Hypot(c[0]-tc[0], c[1]-tc[1])
			best = math.Min(best, d)
		}
		if best > 0.5 {
			t.Fatalf("no centroid near %v (closest %.2f): %v", tc, best, centroids)
		}
	}
	if _, err := KMeans(ctx(), points[:2], 3, 1); err == nil {
		t.Error("k > n should be rejected")
	}
}

// refPageRank is a sequential power iteration for comparison.
func refPageRank(edges []Edge, iterations int) map[string]float64 {
	const damping = 0.85
	out := map[string][]string{}
	verts := map[string]bool{}
	for _, e := range edges {
		out[e.Src] = append(out[e.Src], e.Dst)
		verts[e.Src], verts[e.Dst] = true, true
	}
	ranks := map[string]float64{}
	for v := range verts {
		ranks[v] = 1
	}
	for it := 0; it < iterations; it++ {
		contrib := map[string]float64{}
		for src, dsts := range out {
			share := ranks[src] / float64(len(dsts))
			for _, d := range dsts {
				contrib[d] += share
			}
		}
		next := map[string]float64{}
		for v := range verts {
			next[v] = (1 - damping) + damping*contrib[v]
		}
		ranks = next
	}
	return ranks
}

func TestPageRankMatchesPowerIteration(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var edges []Edge
	for i := 0; i < 400; i++ {
		edges = append(edges, Edge{
			Src: fmt.Sprintf("p%d", rng.Intn(60)),
			Dst: fmt.Sprintf("p%d", rng.Intn(60)),
		})
	}
	got, err := PageRank(ctx(), edges, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := refPageRank(edges, 8)
	if len(got) != len(want) {
		t.Fatalf("%d vertices, want %d", len(got), len(want))
	}
	for v, r := range want {
		if math.Abs(got[v]-r) > 1e-9 {
			t.Fatalf("%s: %v, want %v", v, got[v], r)
		}
	}
	if _, err := PageRank(ctx(), nil, 1); err == nil {
		t.Error("empty graph should be rejected")
	}
}

func TestBayesClassifiesObviousDocs(t *testing.T) {
	var docs []Document
	rng := rand.New(rand.NewSource(5))
	sports := []string{"goal", "team", "score", "match", "win"}
	tech := []string{"cpu", "code", "build", "deploy", "bug"}
	for i := 0; i < 300; i++ {
		mk := func(vocab []string) []string {
			ws := make([]string, 8)
			for j := range ws {
				ws[j] = vocab[rng.Intn(len(vocab))]
			}
			return ws
		}
		docs = append(docs,
			Document{Label: "sports", Words: mk(sports)},
			Document{Label: "tech", Words: mk(tech)})
	}
	m, err := TrainBayes(ctx(), docs)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Classify([]string{"goal", "match", "win"}); got != "sports" {
		t.Errorf("classified as %q", got)
	}
	if got := m.Classify([]string{"cpu", "bug", "deploy"}); got != "tech" {
		t.Errorf("classified as %q", got)
	}
	// Unseen words should not crash and priors decide.
	if got := m.Classify([]string{"zzzz"}); got == "" {
		t.Error("empty classification")
	}
	if _, err := TrainBayes(ctx(), nil); err == nil {
		t.Error("empty training set should be rejected")
	}
}

// refNWeight brute-forces n-hop path weights.
func refNWeight(edges []WeightedEdge, hops int) map[VertexPair]float64 {
	adj := map[string][]WeightedEdge{}
	for _, e := range edges {
		adj[e.Src] = append(adj[e.Src], e)
	}
	// paths[v][origin] = total weight of hop-h paths origin->v
	cur := map[string]map[string]float64{}
	for _, e := range edges {
		if cur[e.Dst] == nil {
			cur[e.Dst] = map[string]float64{}
		}
		cur[e.Dst][e.Src] += e.Weight
	}
	for h := 1; h < hops; h++ {
		next := map[string]map[string]float64{}
		for v, origins := range cur {
			for _, e := range adj[v] {
				if next[e.Dst] == nil {
					next[e.Dst] = map[string]float64{}
				}
				for o, w := range origins {
					next[e.Dst][o] += w * e.Weight
				}
			}
		}
		cur = next
	}
	out := map[VertexPair]float64{}
	for v, origins := range cur {
		for o, w := range origins {
			out[VertexPair{o, v}] = w
		}
	}
	return out
}

func TestNWeightMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var edges []WeightedEdge
	for i := 0; i < 80; i++ {
		edges = append(edges, WeightedEdge{
			Src:    fmt.Sprintf("v%d", rng.Intn(15)),
			Dst:    fmt.Sprintf("v%d", rng.Intn(15)),
			Weight: 0.1 + rng.Float64(),
		})
	}
	for _, hops := range []int{1, 2, 3} {
		got, err := NWeight(ctx(), edges, hops)
		if err != nil {
			t.Fatal(err)
		}
		want := refNWeight(edges, hops)
		if len(got) != len(want) {
			t.Fatalf("hops=%d: %d pairs, want %d", hops, len(got), len(want))
		}
		for pair, w := range want {
			if math.Abs(got[pair]-w) > 1e-9*math.Max(1, math.Abs(w)) {
				t.Fatalf("hops=%d %v: %v, want %v", hops, pair, got[pair], w)
			}
		}
	}
	if _, err := NWeight(ctx(), nil, 2); err == nil {
		t.Error("empty graph should be rejected")
	}
	if _, err := NWeight(ctx(), []WeightedEdge{{"a", "b", 1}}, 0); err == nil {
		t.Error("zero hops should be rejected")
	}
}
