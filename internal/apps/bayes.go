package apps

import (
	"fmt"
	"math"

	"repro/internal/engine"
)

// Document is one labelled training document for Naive Bayes.
type Document struct {
	Label string
	Words []string
}

// BayesModel is a trained multinomial Naive Bayes classifier.
type BayesModel struct {
	// LogPrior maps label -> log P(label).
	LogPrior map[string]float64
	// LogLikelihood maps label -> word -> log P(word|label) with
	// Laplace smoothing.
	LogLikelihood map[string]map[string]float64
	// Vocabulary size used for smoothing.
	VocabSize int
	// totalWords per label, for scoring unseen words.
	labelWords map[string]int
}

// TrainBayes fits the classifier on the engine (the BA workload): the
// tokenize stage scatters (label, word) pairs through the shuffle, the
// aggregate stage counts them, and the model is collected to the driver —
// the paper's BA stage structure including its driver-side model collect.
func TrainBayes(ctx *engine.Context, docs []Document) (*BayesModel, error) {
	if len(docs) == 0 {
		return nil, fmt.Errorf("apps: no training documents")
	}
	ds := engine.Parallelize(ctx, docs)

	// Label priors.
	labelCounts, err := engine.CountByKey(engine.MapToPairs(ds,
		func(d Document) (string, struct{}) { return d.Label, struct{}{} }))
	if err != nil {
		return nil, err
	}

	// (label, word) counts — the tokenize + aggregate stages.
	type lw struct{ Label, Word string }
	pairs := engine.FlatMap(ds, func(d Document) []engine.Pair[lw, int] {
		out := make([]engine.Pair[lw, int], len(d.Words))
		for i, w := range d.Words {
			out[i] = engine.Pair[lw, int]{Key: lw{d.Label, w}, Value: 1}
		}
		return out
	})
	wordCounts, err := engine.ReduceByKey(pairs, func(a, b int) int { return a + b })
	if err != nil {
		return nil, err
	}
	rows, err := wordCounts.Collect() // the model comes back to the driver
	if err != nil {
		return nil, err
	}

	vocab := map[string]struct{}{}
	perLabelWord := map[string]map[string]int{}
	labelWords := map[string]int{}
	for _, kv := range rows {
		vocab[kv.Key.Word] = struct{}{}
		m := perLabelWord[kv.Key.Label]
		if m == nil {
			m = map[string]int{}
			perLabelWord[kv.Key.Label] = m
		}
		m[kv.Key.Word] = kv.Value
		labelWords[kv.Key.Label] += kv.Value
	}

	model := &BayesModel{
		LogPrior:      make(map[string]float64, len(labelCounts)),
		LogLikelihood: make(map[string]map[string]float64, len(labelCounts)),
		VocabSize:     len(vocab),
		labelWords:    labelWords,
	}
	total := float64(len(docs))
	for label, n := range labelCounts {
		model.LogPrior[label] = math.Log(float64(n) / total)
		ll := make(map[string]float64, len(perLabelWord[label]))
		denom := float64(labelWords[label] + model.VocabSize)
		for w, c := range perLabelWord[label] {
			ll[w] = math.Log(float64(c+1) / denom)
		}
		model.LogLikelihood[label] = ll
	}
	return model, nil
}

// Classify returns the most probable label for the words.
func (m *BayesModel) Classify(words []string) string {
	bestLabel, bestScore := "", math.Inf(-1)
	for label, prior := range m.LogPrior {
		score := prior
		ll := m.LogLikelihood[label]
		unseen := math.Log(1 / float64(m.labelWords[label]+m.VocabSize))
		for _, w := range words {
			if v, ok := ll[w]; ok {
				score += v
			} else {
				score += unseen
			}
		}
		if score > bestScore {
			bestLabel, bestScore = label, score
		}
	}
	return bestLabel
}
