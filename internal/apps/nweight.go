package apps

import (
	"fmt"

	"repro/internal/engine"
)

// WeightedEdge is a directed weighted edge for NWeight.
type WeightedEdge struct {
	Src, Dst string
	Weight   float64
}

// VertexPair identifies a (source, destination) association.
type VertexPair struct {
	Src, Dst string
}

// NWeight computes n-hop association weights (the NW workload): the
// weight between u and v at hop n is the sum over all n-step paths of the
// product of edge weights. The adjacency list stays cached in memory while
// every hop joins the frontier against it — the paper's characterization
// of NWeight as a memory-hungry iterative graph job.
func NWeight(ctx *engine.Context, edges []WeightedEdge, hops int) (map[VertexPair]float64, error) {
	if len(edges) == 0 {
		return nil, fmt.Errorf("apps: empty edge list")
	}
	if hops < 1 {
		return nil, fmt.Errorf("apps: hops must be >= 1, got %d", hops)
	}

	type hop struct {
		Dst    string
		Weight float64
	}
	adjPairs := engine.MapToPairs(engine.Parallelize(ctx, edges),
		func(e WeightedEdge) (string, hop) { return e.Src, hop{e.Dst, e.Weight} })
	adj, err := engine.GroupByKey(adjPairs)
	if err != nil {
		return nil, err
	}
	if adj, err = adj.Cache(); err != nil {
		return nil, err
	}

	// The frontier holds (currentVertex, (origin, pathWeight)).
	type walk struct {
		Origin string
		Weight float64
	}
	frontier := engine.MapToPairs(engine.Parallelize(ctx, edges),
		func(e WeightedEdge) (string, walk) { return e.Dst, walk{e.Src, e.Weight} })

	for h := 1; h < hops; h++ {
		joined, err := engine.Join(frontier, adj)
		if err != nil {
			return nil, err
		}
		extended := engine.FlatMap(joined,
			func(kv engine.Pair[string, engine.Joined[walk, []hop]]) []engine.Pair[string, walk] {
				out := make([]engine.Pair[string, walk], 0, len(kv.Value.Right))
				for _, nxt := range kv.Value.Right {
					out = append(out, engine.Pair[string, walk]{
						Key:   nxt.Dst,
						Value: walk{kv.Value.Left.Origin, kv.Value.Left.Weight * nxt.Weight},
					})
				}
				return out
			})
		// Combine parallel paths reaching the same vertex from the same
		// origin.
		byPair := engine.MapToPairs(extended,
			func(kv engine.Pair[string, walk]) (VertexPair, float64) {
				return VertexPair{kv.Value.Origin, kv.Key}, kv.Value.Weight
			})
		summed, err := engine.ReduceByKey(byPair, func(a, b float64) float64 { return a + b })
		if err != nil {
			return nil, err
		}
		frontier = engine.Map(summed,
			func(kv engine.Pair[VertexPair, float64]) engine.Pair[string, walk] {
				return engine.Pair[string, walk]{Key: kv.Key.Dst, Value: walk{kv.Key.Src, kv.Value}}
			})
	}

	final := engine.MapToPairs(frontier,
		func(kv engine.Pair[string, walk]) (VertexPair, float64) {
			return VertexPair{kv.Value.Origin, kv.Key}, kv.Value.Weight
		})
	summed, err := engine.ReduceByKey(final, func(a, b float64) float64 { return a + b })
	if err != nil {
		return nil, err
	}
	rows, err := summed.Collect()
	if err != nil {
		return nil, err
	}
	out := make(map[VertexPair]float64, len(rows))
	for _, kv := range rows {
		out[kv.Key] = kv.Value
	}
	return out, nil
}
