// Package apps implements the paper's six evaluated programs as real
// computations on the execution engine (internal/engine) — not cost
// models: WordCount, TeraSort, KMeans, PageRank, Naive Bayes, and NWeight
// all run on actual data with actual shuffles. They are the executable
// ground truth behind internal/workloads' stage profiles, and their tests
// verify real algorithmic correctness (clusters recovered, ranks matching
// power iteration, classifications right, associations matching brute
// force).
package apps

import (
	"fmt"
	"math"

	"repro/internal/engine"
)

// WordCount counts word occurrences (the WC workload).
func WordCount(ctx *engine.Context, words []string) (map[string]int, error) {
	pairs := engine.MapToPairs(engine.Parallelize(ctx, words),
		func(w string) (string, int) { return w, 1 })
	counts, err := engine.ReduceByKey(pairs, func(a, b int) int { return a + b })
	if err != nil {
		return nil, err
	}
	rows, err := counts.Collect()
	if err != nil {
		return nil, err
	}
	out := make(map[string]int, len(rows))
	for _, kv := range rows {
		out[kv.Key] = kv.Value
	}
	return out, nil
}

// TeraSort globally sorts fixed-format records by their 10-byte key (the
// TS workload) and returns the sorted records.
func TeraSort(ctx *engine.Context, records []string) ([]string, error) {
	for i, r := range records {
		if len(r) < 10 {
			return nil, fmt.Errorf("apps: record %d shorter than the 10-byte key", i)
		}
	}
	pairs := engine.MapToPairs(engine.Parallelize(ctx, records),
		func(r string) (string, string) { return r[:10], r[10:] })
	sorted, err := engine.SortByKey(pairs, func(a, b string) bool { return a < b })
	if err != nil {
		return nil, err
	}
	rows, err := sorted.Collect()
	if err != nil {
		return nil, err
	}
	out := make([]string, len(rows))
	for i, kv := range rows {
		out[i] = kv.Key + kv.Value
	}
	return out, nil
}

// KMeans runs Lloyd's algorithm (the KM workload): the point set is cached
// once (stageA), then every iteration assigns points to the nearest centroid
// and aggregates per-cluster sums through a tiny shuffle, with the new
// centroids collected to the driver — exactly the stage structure of the
// paper's Fig. 13.
func KMeans(ctx *engine.Context, points [][]float64, k, iterations int) ([][]float64, error) {
	if k < 1 || len(points) < k {
		return nil, fmt.Errorf("apps: need at least k=%d points, have %d", k, len(points))
	}
	dim := len(points[0])
	ds, err := engine.Parallelize(ctx, points).Cache()
	if err != nil {
		return nil, err
	}
	// Initialize centroids from the first k points.
	centroids := make([][]float64, k)
	for i := range centroids {
		centroids[i] = append([]float64(nil), points[i]...)
	}

	type acc struct {
		Sum   []float64
		Count int
	}
	for it := 0; it < iterations; it++ {
		current := centroids // captured: the per-iteration broadcast
		assigned := engine.MapToPairs(ds, func(p []float64) (int, acc) {
			best, bestD := 0, math.Inf(1)
			for c, cen := range current {
				d := 0.0
				for j := 0; j < dim; j++ {
					t := p[j] - cen[j]
					d += t * t
				}
				if d < bestD {
					best, bestD = c, d
				}
			}
			return best, acc{Sum: p, Count: 1}
		})
		sums, err := engine.ReduceByKey(assigned, func(a, b acc) acc {
			s := make([]float64, dim)
			for j := range s {
				s[j] = a.Sum[j] + b.Sum[j]
			}
			return acc{Sum: s, Count: a.Count + b.Count}
		})
		if err != nil {
			return nil, err
		}
		rows, err := sums.Collect() // the stageC driver collect
		if err != nil {
			return nil, err
		}
		next := make([][]float64, k)
		copy(next, centroids)
		for _, kv := range rows {
			cen := make([]float64, dim)
			for j := range cen {
				cen[j] = kv.Value.Sum[j] / float64(kv.Value.Count)
			}
			next[kv.Key] = cen
		}
		centroids = next
	}
	return centroids, nil
}

// Edge is a directed graph edge.
type Edge struct {
	Src, Dst string
}

// PageRank runs the classic damped power iteration (the PR workload): the
// adjacency lists are cached, and every iteration joins ranks against
// links, scatters contributions, and aggregates them — the iterate stage
// with its join-shuffle in the paper's PR profile.
func PageRank(ctx *engine.Context, edges []Edge, iterations int) (map[string]float64, error) {
	if len(edges) == 0 {
		return nil, fmt.Errorf("apps: empty edge list")
	}
	const damping = 0.85

	linkPairs := engine.MapToPairs(engine.Parallelize(ctx, edges),
		func(e Edge) (string, string) { return e.Src, e.Dst })
	links, err := engine.GroupByKey(linkPairs)
	if err != nil {
		return nil, err
	}
	if links, err = links.Cache(); err != nil {
		return nil, err
	}

	// All vertices (sources and destinations) start at rank 1.
	verts, err := engine.Distinct(engine.FlatMap(engine.Parallelize(ctx, edges),
		func(e Edge) []string { return []string{e.Src, e.Dst} }))
	if err != nil {
		return nil, err
	}
	ranks := engine.MapToPairs(verts, func(v string) (string, float64) { return v, 1.0 })

	for it := 0; it < iterations; it++ {
		joined, err := engine.Join(links, ranks)
		if err != nil {
			return nil, err
		}
		contribs := engine.FlatMap(joined,
			func(kv engine.Pair[string, engine.Joined[[]string, float64]]) []engine.Pair[string, float64] {
				outs := kv.Value.Left
				share := kv.Value.Right / float64(len(outs))
				out := make([]engine.Pair[string, float64], len(outs))
				for i, d := range outs {
					out[i] = engine.Pair[string, float64]{Key: d, Value: share}
				}
				return out
			})
		summed, err := engine.ReduceByKey(contribs, func(a, b float64) float64 { return a + b })
		if err != nil {
			return nil, err
		}
		// Re-anchor every vertex (dangling ones receive no contribution).
		base := engine.MapToPairs(verts, func(v string) (string, float64) { return v, 0 })
		cg, err := engine.CoGroup(base, summed)
		if err != nil {
			return nil, err
		}
		ranks = engine.Map(cg, func(kv engine.Pair[string, engine.CoGrouped[float64, float64]]) engine.Pair[string, float64] {
			sum := 0.0
			for _, v := range kv.Value.Right {
				sum += v
			}
			return engine.Pair[string, float64]{Key: kv.Key, Value: (1 - damping) + damping*sum}
		})
	}

	rows, err := ranks.Collect()
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(rows))
	for _, kv := range rows {
		out[kv.Key] = kv.Value
	}
	return out, nil
}
