package rf

import "testing"

// BenchmarkTrain measures fitting RFHOC's forest (200 deep trees) on a
// paper-scale training set.
func BenchmarkTrain(b *testing.B) {
	ds := synthDS(2000, 1)
	opt := Options{Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Train(ds, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainParallel compares serial forest growth against the
// worker-pool path (identical forests; see batch_test.go).
func BenchmarkTrainParallel(b *testing.B) {
	ds := synthDS(2000, 1)
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		opt := Options{Trees: 100, Seed: 1, Workers: bc.workers}
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Train(ds, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPredict measures one forest query.
func BenchmarkPredict(b *testing.B) {
	ds := synthDS(1000, 2)
	m, err := Train(ds, Options{Trees: 100, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	x := ds.Features[5]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(x)
	}
}
