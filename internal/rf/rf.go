// Package rf implements random-forest regression — the modeling technique
// of RFHOC [4], the state-of-the-art Hadoop auto-tuner the paper
// reimplements on Spark as its strongest baseline (§5.6): bagged deep
// regression trees with per-split feature subsampling, averaged.
package rf

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/tree"
)

// Options are the forest hyperparameters; the zero value selects 200 trees
// of up to 127 splits with sqrt-fraction feature sampling.
type Options struct {
	// Trees is the forest size.
	Trees int
	// MaxSplits bounds each tree's split count (deep by default).
	MaxSplits int
	// MinLeaf is the minimum samples per leaf.
	MinLeaf int
	// FeatureFrac is the per-split feature sampling fraction; 0 selects
	// 1/3, the standard regression-forest default.
	FeatureFrac float64
	// NoLogTarget disables fitting log execution time.
	NoLogTarget bool
	// Workers bounds how many trees grow concurrently (0 = GOMAXPROCS,
	// 1 = serial). Each tree's randomness derives from (Seed, tree index)
	// alone, so the trained forest is identical for any value.
	Workers int
	// Seed drives bagging and feature sampling.
	Seed int64
	// ExactHistograms grows trees with the reference per-node histogram
	// scan instead of the sibling-subtraction fast path (see
	// tree.Options.ExactHistograms and DESIGN.md §13). Benchmarks and
	// equivalence tests only.
	ExactHistograms bool
}

// workers resolves the effective training parallelism. The default is
// capped at NumCPU as well as GOMAXPROCS: tree growing is purely
// CPU-bound, so running more growers than physical CPUs (a common state
// in CPU-quota containers where GOMAXPROCS exceeds the quota) only adds
// scheduler churn. Results are identical for any worker count — seeds
// are pre-assigned per tree — so the cap is purely a speed matter.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	w := runtime.GOMAXPROCS(0)
	if n := runtime.NumCPU(); n < w {
		w = n
	}
	return w
}

func (o Options) withDefaults() Options {
	if o.Trees <= 0 {
		o.Trees = 200
	}
	if o.MaxSplits <= 0 {
		o.MaxSplits = 127
	}
	if o.MinLeaf <= 0 {
		o.MinLeaf = 3
	}
	if o.FeatureFrac <= 0 {
		o.FeatureFrac = 1.0 / 3
	}
	return o
}

// Forest is a trained random forest implementing model.Model.
type Forest struct {
	trees []*tree.Tree
	log   bool
}

// Predict averages the trees (in fit space) and returns seconds.
func (f *Forest) Predict(x []float64) float64 {
	if len(f.trees) == 0 {
		return 0
	}
	sum := 0.0
	for _, t := range f.trees {
		sum += t.Predict(x)
	}
	v := sum / float64(len(f.trees))
	if f.log {
		return math.Exp(v)
	}
	return v
}

// PredictBatch writes the predicted execution time for every row of X
// into out (len(out) must be at least len(X)), accumulating
// tree-at-a-time so each tree's node arrays stay hot in cache across the
// whole batch — the evaluation order the GA's population scoring uses.
// Results are bit-identical to calling Predict per row, and the method is
// safe for concurrent use (the forest is read-only).
func (f *Forest) PredictBatch(X [][]float64, out []float64) {
	for i := range X {
		out[i] = 0
	}
	if len(f.trees) == 0 {
		return
	}
	for _, t := range f.trees {
		t.AccumulateBatch(X, 1, out)
	}
	inv := float64(len(f.trees))
	for i := range X {
		out[i] = out[i] / inv
		if f.log {
			out[i] = math.Exp(out[i])
		}
	}
}

// NumTrees returns the forest size.
func (f *Forest) NumTrees() int { return len(f.trees) }

// FeatureImportance returns the per-feature split gains summed over the
// forest, normalized to sum to 1 (nil for an empty forest).
func (f *Forest) FeatureImportance() []float64 {
	var imp []float64
	for _, t := range f.trees {
		g := t.Gains()
		if g == nil {
			continue
		}
		if imp == nil {
			imp = make([]float64, len(g))
		}
		for i, v := range g {
			imp[i] += v
		}
	}
	total := 0.0
	for _, v := range imp {
		total += v
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}

// Train fits a random forest to ds.
func Train(ds *model.Dataset, opt Options) (*Forest, error) {
	opt = opt.withDefaults()
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("rf: %w", err)
	}
	n := ds.Len()
	if n < 5 {
		return nil, fmt.Errorf("rf: %d samples is too few", n)
	}
	y := make([]float64, n)
	for i, t := range ds.Targets {
		if opt.NoLogTarget {
			y[i] = t
		} else {
			y[i] = math.Log(math.Max(1e-9, t))
		}
	}
	// One independent seed per tree, drawn up front: a tree's bootstrap
	// sample and feature draws depend only on (Seed, tree index), so trees
	// can grow concurrently into their slots while matching the serial
	// forest exactly.
	rng := rand.New(rand.NewSource(opt.Seed))
	seeds := make([]int64, opt.Trees)
	for k := range seeds {
		seeds[k] = rng.Int63()
	}
	builder := tree.NewBuilder(ds.Features)
	gOpt := tree.Options{MaxSplits: opt.MaxSplits, MinLeaf: opt.MinLeaf, FeatureFrac: opt.FeatureFrac, ExactHistograms: opt.ExactHistograms}
	f := &Forest{log: !opt.NoLogTarget, trees: make([]*tree.Tree, opt.Trees)}
	grow := func(k int) {
		trng := rand.New(rand.NewSource(seeds[k]))
		idx := model.Bootstrap(n, trng)
		f.trees[k] = builder.Grow(y, idx, gOpt, trng)
	}
	workers := opt.workers()
	if workers > opt.Trees {
		workers = opt.Trees
	}
	if workers <= 1 {
		for k := range f.trees {
			grow(k)
		}
		return f, nil
	}
	// Deep forest trees dominate their own split scans, so parallelism
	// lives at the tree level: a worker pool drains the slot counter and
	// each tree lands in its fixed slot regardless of scheduling.
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= opt.Trees {
					return
				}
				grow(k)
			}
		}()
	}
	wg.Wait()
	return f, nil
}

// Trainer adapts Train to model.Trainer.
type Trainer struct{ Opt Options }

// Name implements model.Trainer.
func (Trainer) Name() string { return "RF" }

// Train implements model.Trainer.
func (t Trainer) Train(ds *model.Dataset) (model.Model, error) { return Train(ds, t.Opt) }
