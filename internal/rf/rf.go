// Package rf implements random-forest regression — the modeling technique
// of RFHOC [4], the state-of-the-art Hadoop auto-tuner the paper
// reimplements on Spark as its strongest baseline (§5.6): bagged deep
// regression trees with per-split feature subsampling, averaged.
package rf

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/model"
	"repro/internal/tree"
)

// Options are the forest hyperparameters; the zero value selects 200 trees
// of up to 127 splits with sqrt-fraction feature sampling.
type Options struct {
	// Trees is the forest size.
	Trees int
	// MaxSplits bounds each tree's split count (deep by default).
	MaxSplits int
	// MinLeaf is the minimum samples per leaf.
	MinLeaf int
	// FeatureFrac is the per-split feature sampling fraction; 0 selects
	// 1/3, the standard regression-forest default.
	FeatureFrac float64
	// NoLogTarget disables fitting log execution time.
	NoLogTarget bool
	// Seed drives bagging and feature sampling.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Trees <= 0 {
		o.Trees = 200
	}
	if o.MaxSplits <= 0 {
		o.MaxSplits = 127
	}
	if o.MinLeaf <= 0 {
		o.MinLeaf = 3
	}
	if o.FeatureFrac <= 0 {
		o.FeatureFrac = 1.0 / 3
	}
	return o
}

// Forest is a trained random forest implementing model.Model.
type Forest struct {
	trees []*tree.Tree
	log   bool
}

// Predict averages the trees (in fit space) and returns seconds.
func (f *Forest) Predict(x []float64) float64 {
	if len(f.trees) == 0 {
		return 0
	}
	sum := 0.0
	for _, t := range f.trees {
		sum += t.Predict(x)
	}
	v := sum / float64(len(f.trees))
	if f.log {
		return math.Exp(v)
	}
	return v
}

// NumTrees returns the forest size.
func (f *Forest) NumTrees() int { return len(f.trees) }

// FeatureImportance returns the per-feature split gains summed over the
// forest, normalized to sum to 1 (nil for an empty forest).
func (f *Forest) FeatureImportance() []float64 {
	var imp []float64
	for _, t := range f.trees {
		g := t.Gains()
		if g == nil {
			continue
		}
		if imp == nil {
			imp = make([]float64, len(g))
		}
		for i, v := range g {
			imp[i] += v
		}
	}
	total := 0.0
	for _, v := range imp {
		total += v
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}

// Train fits a random forest to ds.
func Train(ds *model.Dataset, opt Options) (*Forest, error) {
	opt = opt.withDefaults()
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("rf: %w", err)
	}
	n := ds.Len()
	if n < 5 {
		return nil, fmt.Errorf("rf: %d samples is too few", n)
	}
	y := make([]float64, n)
	for i, t := range ds.Targets {
		if opt.NoLogTarget {
			y[i] = t
		} else {
			y[i] = math.Log(math.Max(1e-9, t))
		}
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	builder := tree.NewBuilder(ds.Features)
	gOpt := tree.Options{MaxSplits: opt.MaxSplits, MinLeaf: opt.MinLeaf, FeatureFrac: opt.FeatureFrac}
	f := &Forest{log: !opt.NoLogTarget, trees: make([]*tree.Tree, 0, opt.Trees)}
	for k := 0; k < opt.Trees; k++ {
		idx := model.Bootstrap(n, rng)
		f.trees = append(f.trees, builder.Grow(y, idx, gOpt, rng))
	}
	return f, nil
}

// Trainer adapts Train to model.Trainer.
type Trainer struct{ Opt Options }

// Name implements model.Trainer.
func (Trainer) Name() string { return "RF" }

// Train implements model.Trainer.
func (t Trainer) Train(ds *model.Dataset) (model.Model, error) { return Train(ds, t.Opt) }
