package rf

import (
	"fmt"
	"io"

	"repro/internal/model"
)

// Backend adapts the package to the model.Backend contract with
// tree-based persistence as a discovered capability. The forest is not
// incrementally trainable, so there is no Resumer.
type Backend struct{ Opt Options }

// Name implements model.Backend.
func (Backend) Name() string { return "rf" }

// options merges the cross-backend knobs into the backend's own.
func (b Backend) options(opt model.TrainOpts) Options {
	eff := b.Opt
	if opt.Quick && eff.Trees == 0 {
		eff.Trees = 60
	}
	if opt.Trees > 0 {
		eff.Trees = opt.Trees
	}
	if opt.Seed != 0 {
		eff.Seed = opt.Seed
	}
	return eff
}

// Train implements model.Backend.
func (b Backend) Train(ds *model.Dataset, opt model.TrainOpts) (model.Model, error) {
	return Train(ds, b.options(opt))
}

// Save implements model.Saver.
func (Backend) Save(m model.Model, w io.Writer) error {
	f, ok := m.(*Forest)
	if !ok {
		return fmt.Errorf("rf: cannot save %T through the rf backend", m)
	}
	return f.Save(w)
}

// Load implements model.Loader.
func (Backend) Load(r io.Reader) (model.Model, error) { return Load(r) }
