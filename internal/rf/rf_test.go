package rf

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
)

func synthDS(n int, seed int64) *model.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := model.NewDataset(nil)
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
		t := 5 + 3*x[0] + 2*x[1] + 0.5*x[0]*x[2]
		ds.Add(x, t*(1+0.02*rng.NormFloat64()))
	}
	return ds
}

func TestForestLearns(t *testing.T) {
	m, err := Train(synthDS(1200, 1), Options{Trees: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := model.Evaluate(m, synthDS(300, 2))
	if e.Mean > 0.15 {
		t.Fatalf("forest mean error %.1f%% too high", e.Mean*100)
	}
	if m.NumTrees() != 100 {
		t.Errorf("NumTrees = %d", m.NumTrees())
	}
}

func TestMoreTreesNotWorse(t *testing.T) {
	train := synthDS(600, 3)
	test := synthDS(200, 4)
	small, _ := Train(train, Options{Trees: 3, Seed: 1})
	big, _ := Train(train, Options{Trees: 150, Seed: 1})
	eSmall := model.Evaluate(small, test).Mean
	eBig := model.Evaluate(big, test).Mean
	if eBig > eSmall*1.1 {
		t.Fatalf("150 trees (%.3f) much worse than 3 trees (%.3f)", eBig, eSmall)
	}
}

func TestTrainRejectsBadInput(t *testing.T) {
	if _, err := Train(model.NewDataset(nil), Options{}); err == nil {
		t.Error("empty dataset should fail")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	ds := synthDS(300, 5)
	a, _ := Train(ds, Options{Trees: 20, Seed: 7})
	b, _ := Train(ds, Options{Trees: 20, Seed: 7})
	x := []float64{5, 5, 5}
	if a.Predict(x) != b.Predict(x) {
		t.Fatal("same seed differs")
	}
}

func TestPredictFinite(t *testing.T) {
	m, err := Train(synthDS(300, 6), Options{Trees: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for k := 0; k < 200; k++ {
		x := []float64{rng.Float64() * 20, rng.Float64() * 20, rng.Float64() * 20}
		p := m.Predict(x)
		if p <= 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatalf("prediction %v at %v", p, x)
		}
	}
}

func TestEmptyForestPredictsZero(t *testing.T) {
	var f Forest
	if f.Predict([]float64{1}) != 0 {
		t.Error("empty forest should predict 0")
	}
}

func TestForestFeatureImportance(t *testing.T) {
	m, err := Train(synthDS(600, 9), Options{Trees: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	imp := m.FeatureImportance()
	if len(imp) != 3 {
		t.Fatalf("importance length %d", len(imp))
	}
	sum := 0.0
	for _, v := range imp {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("importance sums to %v", sum)
	}
	var empty Forest
	if empty.FeatureImportance() != nil {
		t.Error("empty forest importance should be nil")
	}
}

func TestTrainerInterface(t *testing.T) {
	var tr model.Trainer = Trainer{Opt: Options{Trees: 10, Seed: 1}}
	if tr.Name() != "RF" {
		t.Errorf("Name = %q", tr.Name())
	}
	if _, err := tr.Train(synthDS(100, 8)); err != nil {
		t.Fatal(err)
	}
}
