package rf

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/tree"
)

// Forest persistence mirrors internal/hm's snapshot approach: the trees
// flatten through the shared tree.FlatNode form (per-split bin codes
// included when every tree carries them), gob-encoded behind a version
// field so the schema can grow without breaking old streams.

// snapshot is the serialized form of a Forest.
type snapshot struct {
	Version int
	Log     bool
	Trees   [][]tree.FlatNode
	// HasBins records that every persisted node carries a valid Bin code
	// (see the hm snapshot for why validity is a snapshot-level flag: a
	// zero-decoded Bin is indistinguishable from a genuine bin 0).
	HasBins bool
}

const snapshotVersion = 1

// Save writes the forest to w.
func (f *Forest) Save(w io.Writer) error {
	s := snapshot{Version: snapshotVersion, Log: f.log, HasBins: true}
	for _, t := range f.trees {
		if !t.HasBinCodes() {
			s.HasBins = false
			break
		}
	}
	s.Trees = make([][]tree.FlatNode, len(f.trees))
	for i, t := range f.trees {
		s.Trees[i] = t.Flatten()
	}
	if err := gob.NewEncoder(w).Encode(s); err != nil {
		return fmt.Errorf("rf: saving forest: %w", err)
	}
	return nil
}

// Load reads a forest previously written by Save. Bin codes are restored
// through the same tree.FromFlatWithCodes machinery the hm snapshot uses;
// prediction is bit-identical to the forest that was saved either way.
func Load(r io.Reader) (*Forest, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("rf: loading forest: %w", err)
	}
	if s.Version < 1 || s.Version > snapshotVersion {
		return nil, fmt.Errorf("rf: forest snapshot version %d, want 1..%d", s.Version, snapshotVersion)
	}
	if len(s.Trees) == 0 {
		return nil, fmt.Errorf("rf: malformed snapshot: no trees")
	}
	f := &Forest{log: s.Log}
	for _, nodes := range s.Trees {
		var t *tree.Tree
		var err error
		if s.HasBins {
			t, err = tree.FromFlatWithCodes(nodes)
		} else {
			t, err = tree.FromFlat(nodes)
		}
		if err != nil {
			return nil, fmt.Errorf("rf: %w", err)
		}
		f.trees = append(f.trees, t)
	}
	return f, nil
}
