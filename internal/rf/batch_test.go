package rf

import (
	"math/rand"
	"runtime"
	"testing"
)

// TestPredictBatchMatchesPredict pins the batch contract: PredictBatch
// must agree bit-for-bit with per-row Predict, for log and raw targets.
func TestPredictBatchMatchesPredict(t *testing.T) {
	ds := synthDS(400, 71)
	probe := synthDS(150, 72)
	for _, noLog := range []bool{false, true} {
		f, err := Train(ds, Options{Trees: 40, Seed: 2, NoLogTarget: noLog})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, probe.Len())
		f.PredictBatch(probe.Features, out)
		for i, x := range probe.Features {
			if got := f.Predict(x); got != out[i] {
				t.Fatalf("noLog=%v row %d: Predict=%v PredictBatch=%v", noLog, i, got, out[i])
			}
		}
	}
}

// TestTrainWorkersEquivalence pins the parallel-training determinism
// contract: the forest must be identical for any worker count — each
// tree's randomness depends only on (Seed, tree index).
func TestTrainWorkersEquivalence(t *testing.T) {
	ds := synthDS(500, 73)
	probes := synthDS(80, 74).Features
	serial, err := Train(ds, Options{Trees: 30, Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, runtime.GOMAXPROCS(0), 7} {
		par, err := Train(ds, Options{Trees: 30, Seed: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i, x := range probes {
			if a, b := serial.Predict(x), par.Predict(x); a != b {
				t.Fatalf("workers=%d probe %d: %v vs %v", workers, i, a, b)
			}
		}
	}
}

// TestTrainDeterministicAcrossGOMAXPROCS checks the default (parallel)
// training path is scheduling-independent.
func TestTrainDeterministicAcrossGOMAXPROCS(t *testing.T) {
	ds := synthDS(300, 75)
	opt := Options{Trees: 20, Seed: 9}

	prev := runtime.GOMAXPROCS(1)
	one, err := Train(ds, opt)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	many, err := Train(ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(76))
	for k := 0; k < 40; k++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
		if a, b := one.Predict(x), many.Predict(x); a != b {
			t.Fatalf("GOMAXPROCS=1 vs default differ at %v: %v vs %v", x, a, b)
		}
	}
}
