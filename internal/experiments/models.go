package experiments

import (
	"fmt"
	"strings"

	"repro/internal/backends"
	"repro/internal/hm"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// ModelErrRow is one program's mean Eq. 2 prediction error per modeling
// technique, in percent.
type ModelErrRow struct {
	Program string
	Err     map[string]float64
}

// backendEntry names one registry backend plus the training knobs the
// experiment's scale implies for it.
type backendEntry struct {
	name string
	opt  model.TrainOpts
}

// baselineEntries returns RS/ANN/SVM/RF (Fig. 3's techniques) sized for
// the scale, as backend-registry lookups.
func baselineEntries(sc Scale) []backendEntry {
	return []backendEntry{
		{name: "rs"},
		{name: "ann", opt: model.TrainOpts{Epochs: annEpochs(sc)}},
		{name: "svm"},
		{name: "rf"},
	}
}

func annEpochs(sc Scale) int {
	if sc.NTrain <= 500 {
		return 120
	}
	return 400
}

// Fig3 reproduces §2.2.2: the prediction errors of the four existing
// modeling techniques on all six programs, demonstrating that none is
// accurate enough with 41 parameters + datasize.
func Fig3(sc Scale) []ModelErrRow {
	return modelErrors(sc, baselineEntries(sc))
}

// Fig9 reproduces §5.3: Fig. 3's comparison with HM added.
func Fig9(sc Scale) []ModelErrRow {
	entries := append(baselineEntries(sc), backendEntry{name: "hm", opt: model.TrainOpts{
		Trees:          sc.HM.Trees,
		LearningRate:   sc.HM.LearningRate,
		TreeComplexity: sc.HM.TreeComplexity,
	}})
	return modelErrors(sc, entries)
}

func modelErrors(sc Scale, entries []backendEntry) []ModelErrRow {
	reg := backends.Default()
	rows := make([]ModelErrRow, 0, 7)
	avg := ModelErrRow{Program: "AVG", Err: map[string]float64{}}
	for _, w := range workloads.All() {
		train := collectDataset(sc, w, sc.NTrain, 42, sc.Seed)
		test := collectDataset(sc, w, sc.NTest, 42, sc.Seed+1000)
		row := ModelErrRow{Program: w.Abbr, Err: map[string]float64{}}
		for _, ent := range entries {
			// Row keys stay the figures' uppercase technique names.
			key := strings.ToUpper(ent.name)
			b, err := reg.Lookup(ent.name)
			if err != nil {
				row.Err[key] = -1
				continue
			}
			m, err := b.Train(train, ent.opt)
			if err != nil {
				row.Err[key] = -1
				continue
			}
			e := model.Evaluate(m, test).Mean * 100
			row.Err[key] = e
			avg.Err[key] += e / float64(len(workloads.All()))
		}
		rows = append(rows, row)
	}
	return append(rows, avg)
}

// RenderModelErrs prints the per-program error table in the figures'
// order.
func RenderModelErrs(rows []ModelErrRow, names []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", "program")
	for _, n := range names {
		fmt.Fprintf(&b, " %8s", n)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s", r.Program)
		for _, n := range names {
			fmt.Fprintf(&b, " %7.1f%%", r.Err[n])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig7Point is one training-set-size step of the error curve.
type Fig7Point struct {
	NTrain         int
	Mean, Max, Min float64 // percent, across the experimented programs
}

// Fig7 reproduces §5.1: performance-model error as a function of the
// number of training examples, aggregated over the programs. steps are
// the ntrain values (the paper sweeps 200..3200 by 200).
func Fig7(sc Scale, steps []int) []Fig7Point {
	maxN := steps[len(steps)-1]
	out := make([]Fig7Point, 0, len(steps))
	type curve struct{ errs []float64 }
	curves := make([][]float64, 0, len(workloads.All()))
	for _, w := range workloads.All() {
		full := collectDataset(sc, w, maxN, 42, sc.Seed)
		test := collectDataset(sc, w, sc.NTest, 42, sc.Seed+1000)
		errs := make([]float64, len(steps))
		for i, n := range steps {
			sub := full.Subset(seqIdx(n))
			m, err := hm.Train(sub, sc.HM)
			if err != nil {
				errs[i] = 100
				continue
			}
			errs[i] = model.Evaluate(m, test).Mean * 100
		}
		curves = append(curves, errs)
	}
	for i, n := range steps {
		col := make([]float64, len(curves))
		for j, c := range curves {
			col[j] = c[i]
		}
		out = append(out, Fig7Point{
			NTrain: n,
			Mean:   stats.Mean(col),
			Max:    stats.Max(col),
			Min:    stats.Min(col),
		})
	}
	return out
}

func seqIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// RenderFig7 prints the ntrain sweep.
func RenderFig7(points []Fig7Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %8s %8s %8s\n", "ntrain", "mean%", "max%", "min%")
	for _, p := range points {
		fmt.Fprintf(&b, "%8d %8.1f %8.1f %8.1f\n", p.NTrain, p.Mean, p.Max, p.Min)
	}
	return b.String()
}

// Fig8Curve is the validation error of a first-order HM model along its
// boosting trajectory, for one (learning rate, tree complexity) setting.
type Fig8Curve struct {
	LR     float64
	TC     int
	NTrees []int
	Err    []float64 // percent
}

// Fig8 reproduces §5.2: the relationship between the number of trees,
// learning rate and tree complexity for PageRank. lrs and tcs default to
// the paper's grids when nil.
func Fig8(sc Scale, lrs []float64, tcs []int, checkpoints []int) []Fig8Curve {
	if lrs == nil {
		lrs = []float64{0.0005, 0.001, 0.005, 0.01, 0.05}
	}
	if tcs == nil {
		tcs = []int{1, 5}
	}
	if checkpoints == nil {
		checkpoints = []int{100, 800, 1500, 2200, 2900, 3600, 4300, 5000, 5700, 6400}
	}
	pr, _ := workloads.ByAbbr("PR")
	ds := collectDataset(sc, pr, sc.NTrain, 42, sc.Seed)

	var out []Fig8Curve
	for _, tc := range tcs {
		for _, lr := range lrs {
			opt := sc.HM
			opt.LearningRate = lr
			opt.TreeComplexity = tc
			opt.Seed = sc.Seed + 5
			errs, err := hm.Trajectory(ds, opt, checkpoints)
			if err != nil {
				continue
			}
			pct := make([]float64, len(errs))
			for i, e := range errs {
				pct[i] = e * 100
			}
			out = append(out, Fig8Curve{LR: lr, TC: tc, NTrees: checkpoints, Err: pct})
		}
	}
	return out
}

// RenderFig8 prints one row per curve.
func RenderFig8(curves []Fig8Curve) string {
	var b strings.Builder
	for _, c := range curves {
		fmt.Fprintf(&b, "tc=%d lr=%-7g:", c.TC, c.LR)
		for i := range c.NTrees {
			fmt.Fprintf(&b, " %d:%.1f%%", c.NTrees[i], c.Err[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig10Pair is one scatter point: real versus predicted execution time.
type Fig10Pair struct {
	RealSec float64
	PredSec float64
}

// Fig10 reproduces §5.4: the error distribution of the HM models for
// PageRank and TeraSort over n random configurations, as real-vs-predicted
// pairs.
func Fig10(sc Scale, n int) (pr, ts []Fig10Pair) {
	build := func(abbr string, seedOff int64) []Fig10Pair {
		w, _ := workloads.ByAbbr(abbr)
		train := collectDataset(sc, w, sc.NTrain, 42, sc.Seed)
		opt := sc.HM
		opt.Seed = sc.Seed + seedOff
		m, err := hm.Train(train, opt)
		if err != nil {
			return nil
		}
		test := collectDataset(sc, w, n, 42, sc.Seed+2000)
		pairs := make([]Fig10Pair, test.Len())
		for i, row := range test.Features {
			pairs[i] = Fig10Pair{RealSec: test.Targets[i], PredSec: m.Predict(row)}
		}
		return pairs
	}
	return build("PR", 11), build("TS", 12)
}

// RenderFig10 summarizes the scatter: per-decile mean relative error plus
// the fraction of points within 10% and 25% of the bisector.
func RenderFig10(name string, pairs []Fig10Pair) string {
	if len(pairs) == 0 {
		return name + ": no data\n"
	}
	within10, within25 := 0, 0
	errs := make([]float64, len(pairs))
	for i, p := range pairs {
		errs[i] = model.RelErr(p.PredSec, p.RealSec)
		if errs[i] <= 0.10 {
			within10++
		}
		if errs[i] <= 0.25 {
			within25++
		}
	}
	return fmt.Sprintf("%s: n=%d meanErr=%.1f%% medianErr=%.1f%% within10%%=%d%% within25%%=%d%%\n",
		name, len(pairs), stats.Mean(errs)*100, stats.Median(errs)*100,
		within10*100/len(pairs), within25*100/len(pairs))
}
