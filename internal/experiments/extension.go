package experiments

import (
	"fmt"
	"strings"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/kvsim"
)

// ExtRow is one dataset size of the §2.1 generality extension: the
// key-value store tuned by the identical pipeline.
type ExtRow struct {
	TableGB    float64
	DefaultSec float64
	TunedSec   float64
	Speedup    float64
}

// Extension tunes the HBase-style key-value store for a read-heavy
// workload at several table sizes and measures against the store's
// defaults — the paper's claim that DAC's principles transfer to other
// heavily-configurable systems.
func Extension(sc Scale) []ExtRow {
	w := kvsim.ReadHeavy()
	trainSim := kvsim.New(42)
	space := kvsim.Space()
	tuner := &core.Tuner{
		Space: space,
		Exec: core.ExecutorFunc(func(cfg conf.Config, dsizeMB float64) float64 {
			return trainSim.Run(w, dsizeMB, cfg)
		}),
		Opt: core.Options{NTrain: sc.NTrain, HM: sc.HM, GA: sc.GA, Seed: sc.Seed},
	}
	sizesGB := []float64{20, 60, 120, 200}
	targets := make([]float64, len(sizesGB))
	for i, gb := range sizesGB {
		targets[i] = gb * 1024
	}
	res, err := tuner.Tune(10*1024, 250*1024, targets)
	if err != nil {
		panic(fmt.Sprintf("experiments: extension tuning: %v", err))
	}
	evalSim := kvsim.New(77)
	def := space.Default()
	rows := make([]ExtRow, 0, len(sizesGB))
	for i, mb := range targets {
		d := evalSim.Run(w, mb, def)
		tu := evalSim.Run(w, mb, res.Best[mb])
		rows = append(rows, ExtRow{TableGB: sizesGB[i], DefaultSec: d, TunedSec: tu, Speedup: d / tu})
	}
	return rows
}

// RenderExtension prints the extension's comparison table.
func RenderExtension(rows []ExtRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %14s %14s %10s\n", "table", "default (s)", "DAC-tuned (s)", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%7.0f GB %14.1f %14.1f %9.2fx\n", r.TableGB, r.DefaultSec, r.TunedSec, r.Speedup)
	}
	return b.String()
}
