package experiments

import (
	"fmt"
	"strings"

	"repro/internal/conf"
	"repro/internal/workloads"
)

// Table1 renders the experimented applications and their five input
// dataset sizes (paper Table 1).
func Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-5s %s\n", "Application", "Abbr.", "input data size")
	for _, w := range workloads.All() {
		sizes := make([]string, len(w.Sizes))
		for i, s := range w.Sizes {
			sizes[i] = trimFloat(s)
		}
		fmt.Fprintf(&b, "%-10s %-5s %s (%s)\n", w.Name, w.Abbr, strings.Join(sizes, ", "), w.Unit)
	}
	return b.String()
}

// Table2 renders the 41 Spark configuration parameters with their ranges
// and defaults (paper Table 2).
func Table2() string {
	space := conf.StandardSpace()
	var b strings.Builder
	fmt.Fprintf(&b, "%-48s %-18s %s\n", "Configuration Parameter", "Range", "Default")
	for i := 0; i < space.Len(); i++ {
		p := space.Param(i)
		var rng string
		switch p.Kind {
		case conf.Bool:
			rng = "true,false"
		case conf.Enum:
			rng = strings.Join(p.Choices, ",")
		default:
			rng = fmt.Sprintf("%s-%s", trimFloat(p.Min), trimFloat(p.Max))
		}
		fmt.Fprintf(&b, "%-48s %-18s %s\n", p.Name, rng, p.FormatValue(p.Default))
	}
	fmt.Fprintf(&b, "total: %d parameters\n", space.Len())
	return b.String()
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}
