package experiments

import (
	"fmt"
	"strings"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/expert"
	"repro/internal/ga"
	"repro/internal/sparksim"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// TuneOutcome is the end-to-end tuning result for one workload: the
// configurations produced by each approach and their measured execution
// times at the five Table 1 dataset sizes (fresh simulator seed, so the
// evaluation runs are not the training runs).
type TuneOutcome struct {
	Workload *workloads.Workload
	// Per Table 1 size (D1..D5):
	DefaultSec []float64
	ExpertSec  []float64
	RFHOCSec   []float64
	DACSec     []float64
	// DACConfigs holds the per-size configurations DAC produced;
	// RFHOCConfig is the single size-blind configuration.
	DACConfigs  []conf.Config
	RFHOCConfig conf.Config
	// GA is the searcher result for the middle target size (Fig. 11).
	GA ga.Result
	// Overhead is DAC's pipeline cost (Table 3).
	Overhead core.Overhead
}

// TuneAll runs the complete §5.6 comparison for every workload: DAC,
// RFHOC, expert rules, and the default configuration, all evaluated on a
// fresh simulator seed.
func TuneAll(sc Scale) []TuneOutcome {
	space := conf.StandardSpace()
	evalSim := sparksim.New(sc.Cluster, 77) // evaluation runs, not training runs
	out := make([]TuneOutcome, 0, 6)

	for wi, w := range workloads.All() {
		seed := sc.Seed + int64(wi)*100
		opt := core.Options{
			NTrain: sc.NTrain,
			HM:     sc.HM,
			GA:     sc.GA,
			Seed:   seed,
		}
		trainSim := sparksim.New(sc.Cluster, 42)
		trainSim.Instrument(sc.Obs)
		exec := core.ExecutorFunc(func(cfg conf.Config, dsizeMB float64) float64 {
			return trainSim.Run(&w.Program, dsizeMB, cfg).TotalSec
		})

		tuner := &core.Tuner{Space: space, Exec: exec, Opt: opt, Obs: sc.Obs}
		targets := w.SizesMB()
		lo := targets[0] * 0.8
		hi := targets[len(targets)-1] * 1.1
		res, err := tuner.Tune(lo, hi, targets)
		if err != nil {
			panic(fmt.Sprintf("experiments: DAC tuning %s: %v", w.Name, err))
		}

		rfhoc := &core.RFHOCTuner{Space: space, Exec: exec, Opt: opt, Obs: sc.Obs}
		rfhocCfg, err := rfhoc.Tune(lo, hi)
		if err != nil {
			panic(fmt.Sprintf("experiments: RFHOC tuning %s: %v", w.Name, err))
		}

		o := TuneOutcome{
			Workload:    w,
			RFHOCConfig: rfhocCfg,
			GA:          res.GA[targets[len(targets)/2]],
			Overhead:    res.Overhead,
		}
		defCfg := space.Default()
		expCfg := expert.Config(space, sc.Cluster)
		for _, mb := range targets {
			dacCfg := res.Best[mb]
			o.DACConfigs = append(o.DACConfigs, dacCfg)
			o.DefaultSec = append(o.DefaultSec, evalSim.Run(&w.Program, mb, defCfg).TotalSec)
			o.ExpertSec = append(o.ExpertSec, evalSim.Run(&w.Program, mb, expCfg).TotalSec)
			o.RFHOCSec = append(o.RFHOCSec, evalSim.Run(&w.Program, mb, rfhocCfg).TotalSec)
			o.DACSec = append(o.DACSec, evalSim.Run(&w.Program, mb, dacCfg).TotalSec)
		}
		out = append(out, o)
	}
	return out
}

// RenderFig11 prints each program's GA convergence: iterations to reach
// the final best fitness (paper: 48–64) plus the best-fitness curve.
func RenderFig11(outcomes []TuneOutcome) string {
	var b strings.Builder
	for _, o := range outcomes {
		fmt.Fprintf(&b, "%-3s converged at iteration %d (of %d); best predicted %.1fs\n",
			o.Workload.Abbr, o.GA.Converged, len(o.GA.History), o.GA.BestFitness)
	}
	return b.String()
}

// RenderFig12a prints the speedup of DAC over the default configuration
// for the 30 program-input pairs, with the paper's average/max headline.
func RenderFig12a(outcomes []TuneOutcome) string {
	var b strings.Builder
	var all []float64
	fmt.Fprintf(&b, "%-4s %8s %8s %8s %8s %8s\n", "prog", "D1", "D2", "D3", "D4", "D5")
	for _, o := range outcomes {
		fmt.Fprintf(&b, "%-4s", o.Workload.Abbr)
		for i := range o.DACSec {
			sp := o.DefaultSec[i] / o.DACSec[i]
			all = append(all, sp)
			fmt.Fprintf(&b, " %7.1fx", sp)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "average %.1fx, max %.1fx, geomean %.1fx (paper: avg 30.4x, max 89x, geomean 15.4x)\n",
		stats.Mean(all), stats.Max(all), stats.GeoMean(all))
	return b.String()
}

// RenderFig12b prints the execution times under DAC, RFHOC and expert
// configurations, with the geometric-mean speedups of DAC over each.
func RenderFig12b(outcomes []TuneOutcome) string {
	var b strings.Builder
	var vsRFHOC, vsExpert []float64
	fmt.Fprintf(&b, "%-4s %-3s %10s %10s %10s\n", "prog", "D", "DAC(s)", "RFHOC(s)", "expert(s)")
	for _, o := range outcomes {
		for i := range o.DACSec {
			fmt.Fprintf(&b, "%-4s D%d %10.1f %10.1f %10.1f\n",
				o.Workload.Abbr, i+1, o.DACSec[i], o.RFHOCSec[i], o.ExpertSec[i])
			vsRFHOC = append(vsRFHOC, o.RFHOCSec[i]/o.DACSec[i])
			vsExpert = append(vsExpert, o.ExpertSec[i]/o.DACSec[i])
		}
	}
	fmt.Fprintf(&b, "geomean speedup of DAC: over RFHOC %.2fx (paper 1.5x), over expert %.2fx (paper 2.3x)\n",
		stats.GeoMean(vsRFHOC), stats.GeoMean(vsExpert))
	return b.String()
}

// Fig13Stage is one (configuration, stage) cell of the KMeans breakdown.
type Fig13Stage struct {
	Config string // "default", "RFHOC", "DAC"
	Stages []sparksim.StageResult
	GCSec  float64
}

// Fig13 reproduces §5.8's KMeans per-stage analysis for the given Table 1
// size indices (the paper shows D1, D3, D5) using the configurations from
// a prior TuneAll.
func Fig13(sc Scale, outcomes []TuneOutcome, sizeIdx []int) map[int][]Fig13Stage {
	var km *TuneOutcome
	for i := range outcomes {
		if outcomes[i].Workload.Abbr == "KM" {
			km = &outcomes[i]
		}
	}
	if km == nil {
		return nil
	}
	sim := sparksim.New(sc.Cluster, 78)
	space := conf.StandardSpace()
	out := make(map[int][]Fig13Stage, len(sizeIdx))
	for _, di := range sizeIdx {
		mb := km.Workload.SizesMB()[di]
		cells := []Fig13Stage{}
		for _, c := range []struct {
			name string
			cfg  conf.Config
		}{
			{"default", space.Default()},
			{"RFHOC", km.RFHOCConfig},
			{"DAC", km.DACConfigs[di]},
		} {
			res := sim.Run(&km.Workload.Program, mb, c.cfg)
			cells = append(cells, Fig13Stage{Config: c.name, Stages: res.Stages, GCSec: res.GCSec})
		}
		out[di] = cells
	}
	return out
}

// RenderFig13 prints the stage breakdown table.
func RenderFig13(data map[int][]Fig13Stage, sizeIdx []int) string {
	var b strings.Builder
	for _, di := range sizeIdx {
		cells := data[di]
		if cells == nil {
			continue
		}
		fmt.Fprintf(&b, "D%d:\n", di+1)
		fmt.Fprintf(&b, "  %-10s", "stage")
		for _, c := range cells {
			fmt.Fprintf(&b, " %10s", c.Config)
		}
		b.WriteByte('\n')
		for si := range cells[0].Stages {
			fmt.Fprintf(&b, "  %-10s", shortStage(cells[0].Stages[si].Name))
			for _, c := range cells {
				fmt.Fprintf(&b, " %9.1fs", c.Stages[si].Sec)
			}
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "  %-10s", "GC")
		for _, c := range cells {
			fmt.Fprintf(&b, " %9.1fs", c.GCSec)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func shortStage(name string) string {
	if i := strings.IndexByte(name, '-'); i > 0 {
		return name[:i]
	}
	return name
}

// Fig14Row is TeraSort's Stage2 time and GC time for one configuration
// and dataset size.
type Fig14Row struct {
	Config  string
	SizeIdx int
	Stage2  float64
	GCSec   float64
}

// Fig14 reproduces §5.8's TeraSort Stage2 analysis across D1..D5.
func Fig14(sc Scale, outcomes []TuneOutcome) []Fig14Row {
	var ts *TuneOutcome
	for i := range outcomes {
		if outcomes[i].Workload.Abbr == "TS" {
			ts = &outcomes[i]
		}
	}
	if ts == nil {
		return nil
	}
	sim := sparksim.New(sc.Cluster, 79)
	space := conf.StandardSpace()
	var rows []Fig14Row
	for di, mb := range ts.Workload.SizesMB() {
		for _, c := range []struct {
			name string
			cfg  conf.Config
		}{
			{"default", space.Default()},
			{"RFHOC", ts.RFHOCConfig},
			{"DAC", ts.DACConfigs[di]},
		} {
			res := sim.Run(&ts.Workload.Program, mb, c.cfg)
			row := Fig14Row{Config: c.name, SizeIdx: di, GCSec: res.GCSec}
			if s2 := res.Stage(ts.Workload.Program.Stages[1].Name); s2 != nil {
				row.Stage2 = s2.Sec
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// RenderFig14 prints Stage2 and GC times per configuration and size.
func RenderFig14(rows []Fig14Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-3s %12s %10s\n", "config", "D", "stage2(s)", "GC(s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s D%d %12.1f %10.1f\n", r.Config, r.SizeIdx+1, r.Stage2, r.GCSec)
	}
	return b.String()
}

// RenderTable3 prints DAC's per-workload overhead: collecting (simulated
// cluster hours), modeling (s), searching (s of wall clock for the five
// targets).
func RenderTable3(outcomes []TuneOutcome) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %14s %12s %12s\n", "Workload", "Collecting(h)", "Modeling(s)", "Searching(s)")
	for _, o := range outcomes {
		fmt.Fprintf(&b, "%-10s %14.1f %12.1f %12.1f\n", o.Workload.Name,
			o.Overhead.CollectClusterHours, o.Overhead.ModelTrainSec, o.Overhead.SearchSec)
	}
	return b.String()
}
