package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/sparksim"
	"repro/internal/workloads"
)

// OnlineOutcome compares the online importance-screened loop (DESIGN.md
// §14) against the full DAC pipeline for one workload at its middle
// Table 1 size: the quality each approach reaches and the number of
// cluster runs each pays for. This is the production-cost claim the
// tune_online mode makes — comparable quality at about half the runs.
type OnlineOutcome struct {
	Workload *workloads.Workload
	TargetMB float64
	// FullRuns and OnlineRuns count executed cluster runs (the dominant
	// cost — see Table 3's collecting column).
	FullRuns   int
	OnlineRuns int
	// Execution time at the target size on a fresh evaluation simulator
	// under each configuration, plus the untuned default for scale.
	DefaultSec float64
	FullSec    float64
	OnlineSec  float64
	// Screened is the parameter subset the online loop kept tunable.
	Screened        []string
	GuardRejections int
	Iterations      []core.OnlineIteration
}

// OnlineBudget derives the online loop's run budget from a scale so that
// it always pays at most half of what the full pipeline pays: ~30% of
// sc.NTrain goes to screening and the remainder of the half-price budget
// to four measure→refit→search iterations (plus the one confirmation
// run).
func OnlineBudget(sc Scale) core.OnlineOptions {
	screen := sc.NTrain * 3 / 10
	if screen < 20 {
		screen = 20
	}
	const iterations = 4
	batch := (sc.NTrain/2 - screen - 1) / iterations
	if batch < 1 {
		batch = 1
	}
	return core.OnlineOptions{
		ScreenSamples: screen,
		TopK:          10,
		Iterations:    iterations,
		IterBatch:     batch,
		ExtraTrees:    sc.HM.Trees / 4,
	}
}

// OnlineVsDAC runs both pipelines for each workload: full DAC collects
// sc.NTrain vectors then models and searches once; the online loop
// screens, freezes the insignificant parameters, and iterates under the
// OOM guard. Both are evaluated on a fresh simulator seed, so neither
// side is graded on its own training runs.
func OnlineVsDAC(sc Scale, abbrs []string) []OnlineOutcome {
	space := conf.StandardSpace()
	evalSim := sparksim.New(sc.Cluster, 77)
	out := make([]OnlineOutcome, 0, len(abbrs))
	for wi, abbr := range abbrs {
		w, err := workloads.ByAbbr(abbr)
		if err != nil {
			panic(fmt.Sprintf("experiments: online comparison: %v", err))
		}
		seed := sc.Seed + int64(wi)*100
		targets := w.SizesMB()
		target := targets[len(targets)/2]
		lo, hi := targets[0]*0.8, targets[len(targets)-1]*1.1

		newTuner := func() *core.Tuner {
			trainSim := sparksim.New(sc.Cluster, 42)
			trainSim.Instrument(sc.Obs)
			return &core.Tuner{
				Space: space,
				Exec:  core.NewSimExecutor(trainSim, &w.Program),
				Opt:   core.Options{NTrain: sc.NTrain, HM: sc.HM, GA: sc.GA, Seed: seed},
				Obs:   sc.Obs,
			}
		}

		full, err := newTuner().Tune(lo, hi, []float64{target})
		if err != nil {
			panic(fmt.Sprintf("experiments: full DAC tuning %s: %v", w.Name, err))
		}

		oo := OnlineBudget(sc)
		oo.Guard = core.SimOOMGuard(sc.Cluster, &w.Program, 0)
		online, err := newTuner().TuneOnline(context.Background(), lo, hi, target, oo, core.OnlineHooks{})
		if err != nil {
			panic(fmt.Sprintf("experiments: online tuning %s: %v", w.Name, err))
		}

		out = append(out, OnlineOutcome{
			Workload:        w,
			TargetMB:        target,
			FullRuns:        sc.NTrain,
			OnlineRuns:      online.TotalRuns,
			DefaultSec:      evalSim.Run(&w.Program, target, space.Default()).TotalSec,
			FullSec:         evalSim.Run(&w.Program, target, full.Best[target]).TotalSec,
			OnlineSec:       evalSim.Run(&w.Program, target, online.Best).TotalSec,
			Screened:        online.Screened,
			GuardRejections: online.GuardRejections,
			Iterations:      online.Iterations,
		})
	}
	return out
}

// RenderOnline prints the runs-vs-quality comparison. "quality" is the
// online configuration's measured time relative to full DAC's (100% =
// parity, below 100% = online found a faster configuration).
func RenderOnline(outcomes []OnlineOutcome) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %10s %10s %12s %10s %10s %10s %8s\n",
		"prog", "runs:full", "runs:onl", "default(s)", "full(s)", "online(s)", "quality", "guarded")
	met := 0
	for _, o := range outcomes {
		q := o.OnlineSec / o.FullSec
		if q <= 1.05 && o.OnlineRuns*2 <= o.FullRuns {
			met++
		}
		fmt.Fprintf(&b, "%-4s %10d %10d %12.1f %10.1f %10.1f %9.1f%% %8d\n",
			o.Workload.Abbr, o.FullRuns, o.OnlineRuns, o.DefaultSec,
			o.FullSec, o.OnlineSec, q*100, o.GuardRejections)
	}
	fmt.Fprintf(&b, "within 5%% of full-DAC quality at <= half the runs: %d of %d workloads\n",
		met, len(outcomes))
	return b.String()
}
