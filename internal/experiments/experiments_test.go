package experiments

import (
	"strings"
	"testing"
)

// tinyScale keeps experiment smoke tests fast while exercising every code
// path.
func tinyScale() Scale {
	sc := QuickScale()
	sc.NTrain = 150
	sc.NTest = 50
	sc.Fig2Runs = 15
	sc.HM.Trees = 100
	sc.GA.PopSize = 15
	sc.GA.Generations = 8
	return sc
}

func TestTable1ListsAllPrograms(t *testing.T) {
	out := Table1()
	for _, abbr := range []string{"PR", "KM", "BA", "NW", "WC", "TS"} {
		if !strings.Contains(out, abbr) {
			t.Errorf("Table 1 missing %s:\n%s", abbr, out)
		}
	}
}

func TestTable2Lists41Params(t *testing.T) {
	out := Table2()
	if !strings.Contains(out, "total: 41 parameters") {
		t.Errorf("Table 2 should list 41 parameters:\n%s", out)
	}
	if !strings.Contains(out, "spark.executor.memory") {
		t.Error("Table 2 missing executor memory")
	}
}

func TestFig2ShapeHolds(t *testing.T) {
	sc := tinyScale()
	// Tvar is a max-statistic: it needs a reasonable sample of random
	// configurations before the IMC-vs-ODC contrast is stable.
	sc.Fig2Runs = 200
	rows := Fig2(sc)
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	byName := map[string]Fig2Row{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.TvarInput1 < 0 || r.TvarInput2 < 0 {
			t.Errorf("%s: negative Tvar", r.Name)
		}
	}
	// The motivation claim: Spark's variation grows with datasize much
	// faster than Hadoop's for the same program.
	if byName["Spark-KM"].GrowthFactor <= byName["Hadoop-KM"].GrowthFactor {
		t.Errorf("Spark-KM growth %.2f not above Hadoop-KM %.2f",
			byName["Spark-KM"].GrowthFactor, byName["Hadoop-KM"].GrowthFactor)
	}
	if byName["Spark-PR"].GrowthFactor <= byName["Hadoop-PR"].GrowthFactor {
		t.Errorf("Spark-PR growth %.2f not above Hadoop-PR %.2f",
			byName["Spark-PR"].GrowthFactor, byName["Hadoop-PR"].GrowthFactor)
	}
	if s := RenderFig2(rows); !strings.Contains(s, "Spark-KM") {
		t.Error("render missing rows")
	}
}

func TestFig9HMBeatsBaselinesOnAverage(t *testing.T) {
	sc := tinyScale()
	rows := Fig9(sc)
	if len(rows) != 7 { // 6 programs + AVG
		t.Fatalf("got %d rows", len(rows))
	}
	avg := rows[len(rows)-1]
	if avg.Program != "AVG" {
		t.Fatalf("last row is %s", avg.Program)
	}
	for _, base := range []string{"RS", "ANN", "SVM", "RF"} {
		if avg.Err["HM"] >= avg.Err[base] {
			t.Errorf("HM avg error %.1f%% not below %s %.1f%%", avg.Err["HM"], base, avg.Err[base])
		}
	}
	out := RenderModelErrs(rows, []string{"RS", "ANN", "SVM", "RF", "HM"})
	if !strings.Contains(out, "AVG") {
		t.Error("render missing AVG row")
	}
}

func TestFig7ErrorDropsWithMoreData(t *testing.T) {
	sc := tinyScale()
	points := Fig7(sc, []int{40, 150})
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	if points[1].Mean >= points[0].Mean {
		t.Errorf("error did not drop with more data: %v", points)
	}
	for _, p := range points {
		if p.Min > p.Mean || p.Mean > p.Max {
			t.Errorf("min/mean/max ordering violated: %+v", p)
		}
	}
	if s := RenderFig7(points); !strings.Contains(s, "ntrain") {
		t.Error("render missing header")
	}
}

func TestFig8CurvesImproveWithTrees(t *testing.T) {
	sc := tinyScale()
	curves := Fig8(sc, []float64{0.05}, []int{5}, []int{10, 150})
	if len(curves) != 1 {
		t.Fatalf("got %d curves", len(curves))
	}
	c := curves[0]
	if c.Err[1] >= c.Err[0] {
		t.Errorf("150 trees (%.1f%%) not better than 10 (%.1f%%)", c.Err[1], c.Err[0])
	}
	if s := RenderFig8(curves); !strings.Contains(s, "tc=5") {
		t.Error("render missing curve label")
	}
}

func TestFig10PairsPopulated(t *testing.T) {
	sc := tinyScale()
	pr, ts := Fig10(sc, 30)
	if len(pr) != 30 || len(ts) != 30 {
		t.Fatalf("got %d PR and %d TS pairs", len(pr), len(ts))
	}
	for _, p := range append(pr, ts...) {
		if p.RealSec <= 0 || p.PredSec <= 0 {
			t.Fatalf("non-positive pair %+v", p)
		}
	}
	if s := RenderFig10("PR", pr); !strings.Contains(s, "within10%") {
		t.Errorf("render malformed: %s", s)
	}
}

func TestImportanceRanksExecutorKnobsHigh(t *testing.T) {
	sc := tinyScale()
	rows := Importance(sc, "KM", 0)
	if len(rows) != 42 { // 41 params + dsize
		t.Fatalf("got %d rows", len(rows))
	}
	sum := 0.0
	rank := map[string]int{}
	for i, r := range rows {
		sum += r.Share
		rank[r.Feature] = i
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("importance sums to %v", sum)
	}
	// Memory sizing and datasize must rank far above the Akka chatter
	// parameters.
	if rank["spark.executor.memory"] > rank["spark.akka.threads"] {
		t.Errorf("executor memory (#%d) ranked below akka threads (#%d)",
			rank["spark.executor.memory"], rank["spark.akka.threads"])
	}
	if rank["dsize"] > 15 {
		t.Errorf("dsize ranked #%d; the datasize feature should matter", rank["dsize"])
	}
	if s := RenderImportance("KM", rows[:5]); !strings.Contains(s, "1.") {
		t.Error("render malformed")
	}
}

func TestSubspaceTopBeatsBottom(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-pipeline analysis in -short mode")
	}
	sc := tinyScale()
	rows := Subspace(sc, "TS", 8)
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]float64{}
	for _, r := range rows {
		if r.MeasuredSec <= 0 {
			t.Fatalf("non-positive time: %+v", r)
		}
		byName[r.Space] = r.MeasuredSec
	}
	if byName["top-8 by importance"] >= byName["bottom-8 by importance"] {
		t.Errorf("tuning the top-8 knobs (%.1fs) should beat the bottom-8 (%.1fs)",
			byName["top-8 by importance"], byName["bottom-8 by importance"])
	}
	if byName["all parameters"] >= byName["default (no tuning)"] {
		t.Errorf("full tuning (%.1fs) should beat the default (%.1fs)",
			byName["all parameters"], byName["default (no tuning)"])
	}
	if s := RenderSubspace("TS", rows); !strings.Contains(s, "params") {
		t.Error("render malformed")
	}
}

func TestNaiveSweep(t *testing.T) {
	sc := tinyScale()
	rows := Naive(sc, "TS", []int{10, 40})
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[1].BestSec > rows[0].BestSec {
		t.Error("more budget should not find a worse best")
	}
	if rows[1].ClusterHours <= rows[0].ClusterHours {
		t.Error("more budget must cost more cluster time")
	}
	if s := RenderNaive("TS", rows); !strings.Contains(s, "cluster hours") {
		t.Error("render malformed")
	}
}

func TestValidateDirectionsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("engine timing in -short mode")
	}
	rows := Validate(tinyScale())
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	agree := 0
	for _, r := range rows {
		if r.EngineRatio <= 0 || r.SimRatio <= 0 {
			t.Fatalf("non-positive ratio: %+v", r)
		}
		if r.Agree {
			agree++
		}
	}
	// Engine timings are wall-clock and machine-dependent; demand a
	// majority rather than unanimity.
	if agree < 2 {
		t.Errorf("only %d of 3 knob directions agree: %+v", agree, rows)
	}
	if s := RenderValidate(rows); !strings.Contains(s, "agree") {
		t.Error("render malformed")
	}
}

func TestExtensionBeatsKVDefaults(t *testing.T) {
	rows := Extension(tinyScale())
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.DefaultSec <= 0 || r.TunedSec <= 0 {
			t.Fatalf("non-positive time: %+v", r)
		}
		if r.Speedup < 1 {
			t.Errorf("%v GB: tuned slower than default (%.2fx)", r.TableGB, r.Speedup)
		}
	}
	if s := RenderExtension(rows); !strings.Contains(s, "speedup") {
		t.Error("render malformed")
	}
}

// TestOnlineMatchesFullDACAtHalfCost is the tune_online acceptance
// criterion: on at least two workloads the online importance-screened
// loop must land within 5% of full DAC's quality while executing no
// more than half the cluster runs.
func TestOnlineMatchesFullDACAtHalfCost(t *testing.T) {
	if testing.Short() {
		t.Skip("two tuning pipelines per workload in -short mode")
	}
	sc := tinyScale()
	// The screening stage ranks importance from its initial sample; below
	// a few hundred rows that ranking is noise and the loop freezes the
	// wrong knobs. 400 is QuickScale's collecting budget and still runs
	// both pipelines for three workloads in well under a second.
	sc.NTrain = 400
	outcomes := OnlineVsDAC(sc, []string{"TS", "WC", "PR"})
	if len(outcomes) != 3 {
		t.Fatalf("got %d outcomes", len(outcomes))
	}
	within := 0
	for _, o := range outcomes {
		if o.OnlineRuns*2 > o.FullRuns {
			t.Errorf("%s: online executed %d runs, over half of full DAC's %d",
				o.Workload.Abbr, o.OnlineRuns, o.FullRuns)
		}
		if o.OnlineSec <= 1.05*o.FullSec {
			within++
		}
		if o.OnlineSec >= o.DefaultSec {
			t.Errorf("%s: online (%.1fs) did not beat the default (%.1fs)",
				o.Workload.Abbr, o.OnlineSec, o.DefaultSec)
		}
		if len(o.Screened) == 0 || len(o.Iterations) == 0 {
			t.Errorf("%s: empty online trajectory: %+v", o.Workload.Abbr, o)
		}
	}
	if within < 2 {
		t.Errorf("online within 5%% of full DAC on %d of %d workloads, want >= 2:\n%s",
			within, len(outcomes), RenderOnline(outcomes))
	}
	if s := RenderOnline(outcomes); !strings.Contains(s, "quality") {
		t.Error("render malformed")
	}
}

func TestTuneAllAndDownstreamFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning pipeline in -short mode")
	}
	sc := tinyScale()
	outcomes := TuneAll(sc)
	if len(outcomes) != 6 {
		t.Fatalf("got %d outcomes", len(outcomes))
	}
	for _, o := range outcomes {
		if len(o.DACSec) != 5 || len(o.DefaultSec) != 5 {
			t.Fatalf("%s: wrong size count", o.Workload.Abbr)
		}
		for i := range o.DACSec {
			if o.DACSec[i] <= 0 || o.DefaultSec[i] <= 0 {
				t.Fatalf("%s: non-positive time", o.Workload.Abbr)
			}
			// DAC must robustly beat the default (the headline claim);
			// even at tiny training scale a 2x margin holds.
			if o.DACSec[i]*2 > o.DefaultSec[i] {
				t.Errorf("%s D%d: DAC %.1fs vs default %.1fs — speedup < 2x",
					o.Workload.Abbr, i+1, o.DACSec[i], o.DefaultSec[i])
			}
		}
	}
	if s := RenderFig11(outcomes); !strings.Contains(s, "converged") {
		t.Error("Fig 11 render malformed")
	}
	if s := RenderFig12a(outcomes); !strings.Contains(s, "average") {
		t.Error("Fig 12a render malformed")
	}
	if s := RenderFig12b(outcomes); !strings.Contains(s, "geomean") {
		t.Error("Fig 12b render malformed")
	}
	idx := []int{0, 2, 4}
	f13 := Fig13(sc, outcomes, idx)
	if len(f13) != 3 {
		t.Fatalf("Fig 13 returned %d sizes", len(f13))
	}
	if s := RenderFig13(f13, idx); !strings.Contains(s, "stageC") {
		t.Errorf("Fig 13 render missing KMeans stages:\n%s", s)
	}
	f14 := Fig14(sc, outcomes)
	if len(f14) != 15 { // 5 sizes × 3 configs
		t.Fatalf("Fig 14 returned %d rows", len(f14))
	}
	if s := RenderFig14(f14); !strings.Contains(s, "stage2") {
		t.Error("Fig 14 render malformed")
	}
	if s := RenderTable3(outcomes); !strings.Contains(s, "Collecting") {
		t.Error("Table 3 render malformed")
	}
}
