package experiments

import (
	"math"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/conf"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/sparksim"
	"repro/internal/workloads"
)

// collect gathers n performance vectors for workload w: random
// configurations over ten dataset sizes spanning slightly beyond the
// Table 1 range (so the model interpolates rather than extrapolates at
// the evaluation sizes). Runs execute concurrently but the collected set
// is deterministic in (simSeed, seed).
func collect(sc Scale, w *workloads.Workload, n int, simSeed, seed int64) *dataset.Set {
	sp := sc.Obs.StartSpan("experiments.collect")
	defer sp.End()
	sim := sparksim.New(sc.Cluster, simSeed)
	sim.Instrument(sc.Obs)
	sc.Obs.Counter("experiments.collect.jobs").Add(int64(n))
	space := conf.StandardSpace()
	rng := rand.New(rand.NewSource(seed))

	sizes := trainingSizes(w)
	type job struct {
		cfg conf.Config
		mb  float64
	}
	jobs := make([]job, n)
	for i := range jobs {
		jobs[i] = job{cfg: space.Random(rng), mb: sizes[i%len(sizes)]}
	}
	times := make([]float64, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			times[i] = sim.Run(&w.Program, jobs[i].mb, jobs[i].cfg).TotalSec
		}(i)
	}
	wg.Wait()

	set := dataset.NewSet(space)
	for i, j := range jobs {
		set.Add(j.cfg, j.mb, times[i])
	}
	return set
}

// trainingSizes returns the m=10 training dataset sizes (MB) for w,
// geometrically spaced over [0.8·min, 1.1·max] so consecutive sizes
// differ by ≥10% (Eq. 4).
func trainingSizes(w *workloads.Workload) []float64 {
	lo := w.InputMB(w.Sizes[0]) * 0.8
	hi := w.InputMB(w.Sizes[len(w.Sizes)-1]) * 1.1
	const m = 10
	ratio := math.Pow(hi/lo, 1.0/(m-1))
	sizes := make([]float64, m)
	v := lo
	for i := range sizes {
		sizes[i] = v
		v *= ratio
	}
	return sizes
}

// collectDataset is collect followed by conversion to a model dataset.
func collectDataset(sc Scale, w *workloads.Workload, n int, simSeed, seed int64) *model.Dataset {
	return collect(sc, w, n, simSeed, seed).ToDataset()
}
