package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/sparksim"
	"repro/internal/workloads"
)

// collect gathers n performance vectors for workload w: random
// configurations over ten dataset sizes spanning slightly beyond the
// Table 1 range (so the model interpolates rather than extrapolates at
// the evaluation sizes). It delegates to the hook-capable core sweep —
// checkpoint-sized batches through a worker pool, each batch one
// sparksim.RunBatch call via the pooled batch executor — whose contract
// keeps the collected set deterministic in (simSeed, seed) and
// byte-identical at any GOMAXPROCS and any batch size.
func collect(sc Scale, w *workloads.Workload, n int, simSeed, seed int64) *dataset.Set {
	sp := sc.Obs.StartSpan("experiments.collect")
	defer sp.End()
	sim := sparksim.New(sc.Cluster, simSeed)
	sim.Instrument(sc.Obs)
	sc.Obs.Counter("experiments.collect.jobs").Add(int64(n))

	// UniformSampler draws space.Random(rng) per row — the exact sequence
	// the pre-core inline collector produced from the same seed.
	tuner := &core.Tuner{
		Space: conf.StandardSpace(),
		Exec:  core.NewSimExecutor(sim, &w.Program),
		Opt:   core.Options{NTrain: n, Seed: seed, Sampler: conf.UniformSampler{}},
	}
	set, _, err := tuner.CollectResumable(context.Background(), trainingSizes(w), core.CollectHooks{
		OnBatch: func([]core.RowTime) {
			sc.Obs.Counter("experiments.collect.batches").Inc()
		},
	})
	if err != nil {
		// The background context never cancels and the simulator returns
		// finite positive times, so this is unreachable short of a
		// programming error.
		panic(fmt.Sprintf("experiments: collect: %v", err))
	}
	return set
}

// trainingSizes returns the m=10 training dataset sizes (MB) for w,
// geometrically spaced over [0.8·min, 1.1·max] so consecutive sizes
// differ by ≥10% (Eq. 4).
func trainingSizes(w *workloads.Workload) []float64 {
	lo := w.InputMB(w.Sizes[0]) * 0.8
	hi := w.InputMB(w.Sizes[len(w.Sizes)-1]) * 1.1
	const m = 10
	ratio := math.Pow(hi/lo, 1.0/(m-1))
	sizes := make([]float64, m)
	v := lo
	for i := range sizes {
		sizes[i] = v
		v *= ratio
	}
	return sizes
}

// collectDataset is collect followed by conversion to a model dataset.
func collectDataset(sc Scale, w *workloads.Workload, n int, simSeed, seed int64) *model.Dataset {
	return collect(sc, w, n, simSeed, seed).ToDataset()
}
