package experiments

import (
	"math"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/conf"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/sparksim"
	"repro/internal/workloads"
)

// collect gathers n performance vectors for workload w: random
// configurations over ten dataset sizes spanning slightly beyond the
// Table 1 range (so the model interpolates rather than extrapolates at
// the evaluation sizes). Each worker runs one contiguous chunk of the
// jobs as a single sparksim.RunBatch call — per-run scratch amortized
// across the chunk, no goroutine-per-job spawn — and results land by
// position, so the collected set is deterministic in (simSeed, seed)
// and byte-identical at any GOMAXPROCS.
func collect(sc Scale, w *workloads.Workload, n int, simSeed, seed int64) *dataset.Set {
	sp := sc.Obs.StartSpan("experiments.collect")
	defer sp.End()
	sim := sparksim.New(sc.Cluster, simSeed)
	sim.Instrument(sc.Obs)
	sc.Obs.Counter("experiments.collect.jobs").Add(int64(n))
	space := conf.StandardSpace()
	rng := rand.New(rand.NewSource(seed))

	sizes := trainingSizes(w)
	pairs := make([]sparksim.RunSpec, n)
	for i := range pairs {
		pairs[i] = sparksim.RunSpec{Cfg: space.Random(rng), InputMB: sizes[i%len(sizes)]}
	}
	times := make([]float64, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	for c := 0; c < workers; c++ {
		lo, hi := c*n/workers, (c+1)*n/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i, r := range sim.RunBatch(&w.Program, pairs[lo:hi]) {
				times[lo+i] = r.TotalSec
			}
		}(lo, hi)
	}
	wg.Wait()
	sc.Obs.Counter("experiments.collect.batches").Add(int64(workers))

	set := dataset.NewSet(space)
	for i, p := range pairs {
		set.Add(p.Cfg, p.InputMB, times[i])
	}
	return set
}

// trainingSizes returns the m=10 training dataset sizes (MB) for w,
// geometrically spaced over [0.8·min, 1.1·max] so consecutive sizes
// differ by ≥10% (Eq. 4).
func trainingSizes(w *workloads.Workload) []float64 {
	lo := w.InputMB(w.Sizes[0]) * 0.8
	hi := w.InputMB(w.Sizes[len(w.Sizes)-1]) * 1.1
	const m = 10
	ratio := math.Pow(hi/lo, 1.0/(m-1))
	sizes := make([]float64, m)
	v := lo
	for i := range sizes {
		sizes[i] = v
		v *= ratio
	}
	return sizes
}

// collectDataset is collect followed by conversion to a model dataset.
func collectDataset(sc Scale, w *workloads.Workload, n int, simSeed, seed int64) *model.Dataset {
	return collect(sc, w, n, simSeed, seed).ToDataset()
}
