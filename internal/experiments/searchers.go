package experiments

import (
	"fmt"
	"strings"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/search"
	"repro/internal/sparksim"
	"repro/internal/workloads"
)

// SearcherOutcome is one workload's head-to-head across every registered
// searcher at equal candidate budget: the training set is collected and
// the HM model trained once, then each searcher minimizes the same model
// at the same target size with the same seed slot and budget
// (PopSize×(Generations+1) candidate considerations). The tuned
// configurations are graded on a fresh evaluation simulator, so no
// searcher is graded on the surrogate it searched.
type SearcherOutcome struct {
	Workload *workloads.Workload
	TargetMB float64
	// DefaultSec is the untuned default's measured time, for scale.
	DefaultSec float64
	// Names lists the searchers in render order (registry order).
	Names []string
	// Sec is each searcher's tuned-configuration measured time.
	Sec map[string]float64
	// PredictedSec is the model's prediction for each tuned config —
	// the value the searcher actually minimized.
	PredictedSec map[string]float64
	// Evals counts each searcher's real objective evaluations (cache
	// replays excluded).
	Evals map[string]int
}

// Searchers runs the searcher head-to-head for each workload: collect
// and model once per workload, then search with every registered
// searcher. All searchers receive the same derived seed (Opt.Seed+2),
// no population seeding (equal footing — training-set seeding is a GA
// notion), and the equal candidate budget the GA options imply.
func Searchers(sc Scale, abbrs []string) []SearcherOutcome {
	space := conf.StandardSpace()
	evalSim := sparksim.New(sc.Cluster, 77)
	reg := search.Default()
	names := reg.Names()
	out := make([]SearcherOutcome, 0, len(abbrs))
	for wi, abbr := range abbrs {
		w, err := workloads.ByAbbr(abbr)
		if err != nil {
			panic(fmt.Sprintf("experiments: searcher comparison: %v", err))
		}
		seed := sc.Seed + int64(wi)*100
		targets := w.SizesMB()
		target := targets[len(targets)/2]
		lo, hi := targets[0]*0.8, targets[len(targets)-1]*1.1

		trainSim := sparksim.New(sc.Cluster, 42)
		trainSim.Instrument(sc.Obs)
		t := &core.Tuner{
			Space: space,
			Exec:  core.NewSimExecutor(trainSim, &w.Program),
			Opt:   core.Options{NTrain: sc.NTrain, HM: sc.HM, GA: sc.GA, Seed: seed},
			Obs:   sc.Obs,
		}
		set, _, err := t.Collect(t.TrainingSizesMB(lo, hi))
		if err != nil {
			panic(fmt.Sprintf("experiments: collecting %s: %v", w.Name, err))
		}
		m, _, err := t.Model(set)
		if err != nil {
			panic(fmt.Sprintf("experiments: modeling %s: %v", w.Name, err))
		}

		o := SearcherOutcome{
			Workload:     w,
			TargetMB:     target,
			DefaultSec:   evalSim.Run(&w.Program, target, space.Default()).TotalSec,
			Names:        names,
			Sec:          make(map[string]float64, len(names)),
			PredictedSec: make(map[string]float64, len(names)),
			Evals:        make(map[string]int, len(names)),
		}
		for _, name := range names {
			t.Opt.Searcher = nil // "ga" takes the built-in default path
			if name != "ga" {
				s, err := reg.Lookup(name)
				if err != nil {
					panic(fmt.Sprintf("experiments: searcher %s: %v", name, err))
				}
				t.Opt.Searcher = s
			}
			cfg, pred, res, _, err := t.Search(m, target, nil)
			if err != nil {
				panic(fmt.Sprintf("experiments: searching %s with %s: %v", w.Name, name, err))
			}
			o.Sec[name] = evalSim.Run(&w.Program, target, cfg).TotalSec
			o.PredictedSec[name] = pred
			o.Evals[name] = res.Evaluations
		}
		t.Opt.Searcher = nil
		out = append(out, o)
	}
	return out
}

// RenderSearchers prints the per-workload quality-at-equal-budget table
// plus the two claims the head-to-head exists to check: TPE matches or
// beats Random everywhere (the BO searcher must clear the naive
// baseline), and TPE lands within 5% of the GA's tuned quality on most
// workloads (budget parity with the paper's searcher). "vs ga" is the
// measured time relative to the GA's (100% = parity, lower = faster).
func RenderSearchers(outcomes []SearcherOutcome) string {
	var b strings.Builder
	if len(outcomes) == 0 {
		return ""
	}
	names := outcomes[0].Names
	fmt.Fprintf(&b, "%-4s %11s", "prog", "default(s)")
	for _, n := range names {
		fmt.Fprintf(&b, " %10s", n+"(s)")
	}
	fmt.Fprintln(&b)
	for _, o := range outcomes {
		fmt.Fprintf(&b, "%-4s %11.1f", o.Workload.Abbr, o.DefaultSec)
		for _, n := range names {
			fmt.Fprintf(&b, " %10.1f", o.Sec[n])
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "%-4s %11s", "", "vs ga:")
	fmt.Fprintln(&b)
	for _, o := range outcomes {
		fmt.Fprintf(&b, "%-4s %11s", o.Workload.Abbr, "")
		for _, n := range names {
			fmt.Fprintf(&b, " %9.1f%%", o.Sec[n]/o.Sec["ga"]*100)
		}
		fmt.Fprintln(&b)
	}
	tpeBeatsRandom, tpeNearGA := 0, 0
	for _, o := range outcomes {
		// "Matches" allows 1% measurement slack; "beats" needs none.
		if o.Sec["tpe"] <= o.Sec["random"]*1.01 {
			tpeBeatsRandom++
		}
		if o.Sec["tpe"] <= o.Sec["ga"]*1.05 {
			tpeNearGA++
		}
	}
	fmt.Fprintf(&b, "tpe matches or beats random: %d of %d workloads\n", tpeBeatsRandom, len(outcomes))
	fmt.Fprintf(&b, "tpe within 5%% of ga: %d of %d workloads\n", tpeNearGA, len(outcomes))
	return b.String()
}
