package experiments

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/journal"
	"repro/internal/sparksim"
	"repro/internal/workloads"
)

// FleetOutcome is one row of the fleet scaling table: a full sharded
// collect sweep at one worker count.
type FleetOutcome struct {
	Workers    int
	Rows       int
	ElapsedSec float64
	RowsPerSec float64
}

// fleetChunkRows matches the daemon's default lease granularity.
const fleetChunkRows = 64

// FleetScale measures the distributed collect path (DESIGN.md §15) at
// each worker count: a real coordinator behind a loopback HTTP listener,
// in-process worker agents running the production SimRunner, one full
// TS sweep per count. Every sweep merges exactly sc.NTrain rows — the
// fleet changes wall-clock, never results — so the table isolates
// throughput scaling.
func FleetScale(sc Scale, workerCounts []int) ([]FleetOutcome, error) {
	w, err := workloads.ByAbbr("TS")
	if err != nil {
		return nil, err
	}
	sim := sparksim.New(sc.Cluster, sc.Seed+7)
	t := &core.Tuner{
		Space: conf.StandardSpace(),
		Exec:  core.NewSimExecutor(sim, &w.Program),
		Opt:   core.Options{NTrain: sc.NTrain, Seed: sc.Seed},
	}
	lo, hi := w.InputMB(w.Sizes[0])*0.8, w.InputMB(w.Sizes[len(w.Sizes)-1])*1.1
	sizes := t.TrainingSizesMB(lo, hi)
	spec := fleet.SweepSpec{
		Workload: w.Abbr,
		Seed:     sc.Seed,
		NTrain:   sc.NTrain,
		SizesMB:  sizes,
		MetaHash: journal.MetaHash(w.Abbr, sc.Seed, sc.NTrain, sizes),
	}

	out := make([]FleetOutcome, 0, len(workerCounts))
	for _, n := range workerCounts {
		elapsed, err := runFleetSweep(spec, n)
		if err != nil {
			return nil, fmt.Errorf("fleet sweep with %d workers: %w", n, err)
		}
		out = append(out, FleetOutcome{
			Workers:    n,
			Rows:       sc.NTrain,
			ElapsedSec: elapsed.Seconds(),
			RowsPerSec: float64(sc.NTrain) / elapsed.Seconds(),
		})
	}
	return out, nil
}

// runFleetSweep runs one sweep on a fresh coordinator + n workers and
// returns its wall-clock time.
func runFleetSweep(spec fleet.SweepSpec, n int) (time.Duration, error) {
	c := fleet.NewCoordinator(fleet.Options{LeaseTTL: 10 * time.Second, ChunkRows: fleetChunkRows})
	mux := http.NewServeMux()
	c.Routes(mux, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wrk := fleet.NewWorker(fleet.WorkerOptions{
			Coordinator: base,
			Name:        fmt.Sprintf("scale-w%d", i),
			Parallelism: 1, // scaling comes from worker count, not intra-worker threads
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			wrk.Run(ctx)
		}()
	}

	var mu sync.Mutex
	merged := 0
	start := time.Now()
	err = c.RunSweep(ctx, 1, spec, fleet.SweepHooks{
		OnRows: func(rows []core.RowTime) error {
			mu.Lock()
			merged += len(rows)
			mu.Unlock()
			return nil
		},
	})
	elapsed := time.Since(start)
	cancel()
	wg.Wait()
	if err != nil {
		return 0, err
	}
	if merged != spec.NTrain {
		return 0, fmt.Errorf("merged %d of %d rows", merged, spec.NTrain)
	}
	return elapsed, nil
}

// RenderFleetScale prints the scaling table.
func RenderFleetScale(outcomes []FleetOutcome) string {
	var b strings.Builder
	if len(outcomes) == 0 {
		return ""
	}
	fmt.Fprintf(&b, "Sharded collect throughput (TS, %d rows, chunk %d):\n\n", outcomes[0].Rows, fleetChunkRows)
	fmt.Fprintf(&b, "%8s %12s %10s %8s\n", "workers", "elapsed(s)", "rows/sec", "speedup")
	base := outcomes[0].RowsPerSec
	for _, o := range outcomes {
		fmt.Fprintf(&b, "%8d %12.2f %10.0f %7.2fx\n", o.Workers, o.ElapsedSec, o.RowsPerSec, o.RowsPerSec/base)
	}
	b.WriteString("\nThe merged training set is byte-identical at every worker count;\nthe fleet buys wall-clock, not different data.\n")
	return b.String()
}
