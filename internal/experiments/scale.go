// Package experiments regenerates every table and figure of the paper's
// evaluation (§2.2, §5) on the simulated substrate. Each experiment
// returns a structured result plus a printable rendering with the same
// rows/series the paper reports; cmd/experiments is the CLI front end and
// the repository's benchmarks run reduced-scale versions.
package experiments

import (
	"repro/internal/cluster"
	"repro/internal/ga"
	"repro/internal/hm"
	"repro/internal/obs"
)

// Scale sets the experiment fidelity. FullScale reproduces the paper's
// settings; QuickScale is sized for benchmarks and smoke tests.
type Scale struct {
	// NTrain and NTest size the collected training and testing sets
	// (paper: 2000 and 500).
	NTrain int
	NTest  int
	// Fig2Runs is the number of random configurations in the motivation
	// study (paper: 200).
	Fig2Runs int
	// HM configures the performance model.
	HM hm.Options
	// GA configures the searcher.
	GA ga.Options
	// Seed fixes all randomness.
	Seed int64
	// Cluster is the modelled hardware.
	Cluster cluster.Cluster
	// Obs, when non-nil, collects per-phase wall-clock and the layer
	// counters (simulator runs, trees grown, GA evaluations) for every
	// experiment run at this scale. Nil disables instrumentation.
	Obs *obs.Registry
}

// FullScale returns the paper's experimental settings (§4, §5.1, §5.2).
func FullScale() Scale {
	return Scale{
		NTrain:   2000,
		NTest:    500,
		Fig2Runs: 200,
		HM:       hm.Options{Trees: 3600, LearningRate: 0.05, TreeComplexity: 5},
		GA:       ga.Options{PopSize: 100, Generations: 100},
		Seed:     1,
		Cluster:  cluster.Standard(),
	}
}

// QuickScale returns a reduced-cost variant that preserves every
// experiment's structure: smaller training sets, shorter boosting runs,
// and a lighter GA.
func QuickScale() Scale {
	return Scale{
		NTrain:   400,
		NTest:    120,
		Fig2Runs: 40,
		HM:       hm.Options{Trees: 400, LearningRate: 0.1, TreeComplexity: 5},
		GA:       ga.Options{PopSize: 40, Generations: 30},
		Seed:     1,
		Cluster:  cluster.Standard(),
	}
}
