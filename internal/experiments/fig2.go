package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/conf"
	"repro/internal/hadoopsim"
	"repro/internal/sparksim"
	"repro/internal/workloads"
)

// Fig2Row is one bar pair of the motivation figure: a framework-program
// pair's execution time variation (Eq. 1) under its two input sizes.
type Fig2Row struct {
	Name         string  // e.g. "Spark-KM"
	TvarInput1   float64 // seconds
	TvarInput2   float64
	GrowthFactor float64 // TvarInput2 / TvarInput1 — the paper's headline ratios
}

// Fig2 reproduces the §2.2.1 motivation study: run KMeans and PageRank on
// both frameworks with the two motivation input sizes under n random
// configurations each, and report the execution-time variation Tvar
// (Eq. 1: mean gap to the maximum observed time).
func Fig2(sc Scale) []Fig2Row {
	n := sc.Fig2Runs
	sparkSim := sparksim.New(sc.Cluster, sc.Seed)
	hadoopSim := hadoopsim.New(sc.Cluster, sc.Seed)
	sparkSpace := conf.StandardSpace()
	hadoopSpace := hadoopsim.Space()

	km, _ := workloads.ByAbbr("KM")
	pr, _ := workloads.ByAbbr("PR")

	rows := []Fig2Row{
		{Name: "Spark-KM"}, {Name: "Hadoop-KM"},
		{Name: "Spark-PR"}, {Name: "Hadoop-PR"},
	}
	sparkTimes := func(w *workloads.Workload, units float64, seed int64) []float64 {
		rng := rand.New(rand.NewSource(seed))
		out := make([]float64, n)
		for i := range out {
			out[i] = sparkSim.Run(&w.Program, w.InputMB(units), sparkSpace.Random(rng)).TotalSec
		}
		return out
	}
	hadoopTimes := func(job hadoopsim.Job, mb float64, seed int64) []float64 {
		rng := rand.New(rand.NewSource(seed))
		out := make([]float64, n)
		for i := range out {
			out[i] = hadoopSim.Run(job, mb, hadoopSpace.Random(rng))
		}
		return out
	}

	// The paper runs the same 200 random configurations on both input
	// sizes, so each framework-program pair reuses one configuration
	// stream (same seed) across its two sizes.
	rows[0].TvarInput1 = tvar(sparkTimes(km, km.MotivationSizes[0], sc.Seed+1))
	rows[0].TvarInput2 = tvar(sparkTimes(km, km.MotivationSizes[1], sc.Seed+1))
	rows[1].TvarInput1 = tvar(hadoopTimes(hadoopsim.KMeansJob(), km.InputMB(km.MotivationSizes[0]), sc.Seed+2))
	rows[1].TvarInput2 = tvar(hadoopTimes(hadoopsim.KMeansJob(), km.InputMB(km.MotivationSizes[1]), sc.Seed+2))
	rows[2].TvarInput1 = tvar(sparkTimes(pr, pr.MotivationSizes[0], sc.Seed+3))
	rows[2].TvarInput2 = tvar(sparkTimes(pr, pr.MotivationSizes[1], sc.Seed+3))
	rows[3].TvarInput1 = tvar(hadoopTimes(hadoopsim.PageRankJob(), pr.InputMB(pr.MotivationSizes[0]), sc.Seed+4))
	rows[3].TvarInput2 = tvar(hadoopTimes(hadoopsim.PageRankJob(), pr.InputMB(pr.MotivationSizes[1]), sc.Seed+4))
	for i := range rows {
		if rows[i].TvarInput1 > 0 {
			rows[i].GrowthFactor = rows[i].TvarInput2 / rows[i].TvarInput1
		}
	}
	return rows
}

// tvar is Eq. 1: the mean gap between the maximum execution time and each
// observed execution time.
func tvar(times []float64) float64 {
	if len(times) == 0 {
		return 0
	}
	max := times[0]
	for _, t := range times {
		if t > max {
			max = t
		}
	}
	sum := 0.0
	for _, t := range times {
		sum += max - t
	}
	return sum / float64(len(times))
}

// RenderFig2 prints the rows the way the figure's bars read.
func RenderFig2(rows []Fig2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %12s %12s %8s\n", "pair", "Tvar(in1) s", "Tvar(in2) s", "in2/in1")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %12.1f %12.1f %8.2fx\n", r.Name, r.TvarInput1, r.TvarInput2, r.GrowthFactor)
	}
	return b.String()
}
