package experiments

import (
	"repro/internal/ga"
	"repro/internal/hm"
)

// Budget is one tuning-pipeline budget: how many vectors to collect and
// how hard to model and search. It lives next to Scale so the CLI and
// the daemon resolve the identical presets — the paper's settings and
// the smoke-test shrink are defined once, here, and cannot drift apart.
// (Scale sizes whole experiment sweeps; Budget sizes one tune.)
type Budget struct {
	// NTrain is the number of performance vectors to collect.
	NTrain int
	// HM configures the performance model.
	HM hm.Options
	// GA configures the searcher.
	GA ga.Options
}

// PaperBudget is the paper's tuning budget: ntrain 2000 (§5.1), 3600
// trees at lr 0.05 / tc 5 (§4.2), GA 100×100 (§3.3).
func PaperBudget() Budget {
	return Budget{
		NTrain: 2000,
		HM:     hm.Options{Trees: 3600, LearningRate: 0.05, TreeComplexity: 5},
		GA:     ga.Options{PopSize: 100, Generations: 100},
	}
}

// QuickBudget shrinks every knob for smoke tests: ntrain 200, 120 trees,
// GA 20×10.
func QuickBudget() Budget {
	return Budget{
		NTrain: 200,
		HM:     hm.Options{Trees: 120, LearningRate: 0.1, TreeComplexity: 5},
		GA:     ga.Options{PopSize: 20, Generations: 10},
	}
}
