package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"repro/internal/conf"
	"repro/internal/engine"
	"repro/internal/sparksim"
	"repro/internal/workloads"
)

// ValidateRow is one knob-flip cross-check between the real execution
// engine and the cost simulator: the same configuration change is applied
// to both, and the row records whether they agree on the *direction* of
// the effect.
type ValidateRow struct {
	Knob string
	// EngineRatio is time(after)/time(before) measured on the real
	// engine; SimRatio is the simulator's prediction for the analogous
	// cluster-scale change.
	EngineRatio float64
	SimRatio    float64
	Agree       bool
}

// Validate grounds the substitution argument of DESIGN.md §2: for knobs
// both systems implement — shuffle compression and shuffle parallelism —
// the laptop-scale engine and the cluster-scale simulator must move in the
// same direction when the knob flips. Absolute ratios differ (different
// scales, different hardware); the sign of the effect must not.
func Validate(sc Scale) []ValidateRow {
	// --- Real engine measurements (WordCount over ~8MB of text). -------
	var text bytes.Buffer
	if _, err := workloads.GenText(&text, 8<<20, 1); err != nil {
		panic(fmt.Sprintf("experiments: generating text: %v", err))
	}
	words := strings.Fields(text.String())
	engineTime := func(cfg engine.Config) float64 {
		// Median of three runs tames scheduler noise.
		best := make([]float64, 0, 3)
		for k := 0; k < 3; k++ {
			ctx := engine.NewContext(cfg)
			start := time.Now()
			pairs := engine.MapToPairs(engine.Parallelize(ctx, words),
				func(w string) (string, int) { return w, 1 })
			counts, err := engine.ReduceByKey(pairs, func(a, b int) int { return a + b })
			if err != nil {
				panic(err)
			}
			if _, err := counts.Collect(); err != nil {
				panic(err)
			}
			best = append(best, time.Since(start).Seconds())
		}
		if best[0] > best[1] {
			best[0], best[1] = best[1], best[0]
		}
		if best[1] > best[2] {
			best[1], best[2] = best[2], best[1]
		}
		return best[1]
	}

	// --- Simulator predictions (WordCount at cluster scale). ------------
	sim := sparksim.New(sc.Cluster, sc.Seed)
	wc, _ := workloads.ByAbbr("WC")
	mb := wc.InputMB(120)
	simTime := func(mutate func(conf.Config)) float64 {
		cfg := conf.StandardSpace().Default().Set(conf.ExecutorMemory, 4096)
		if mutate != nil {
			mutate(cfg)
		}
		return sim.Run(&wc.Program, mb, cfg).TotalSec
	}

	rows := []ValidateRow{}

	// Knob 1: shuffle compression on a CPU-bound word count. Both
	// systems must agree on the direction (at this ratio of compute to
	// I/O it costs more CPU than the bytes it saves).
	engOff := engineTime(engine.Config{Parallelism: 8})
	engOn := engineTime(engine.Config{Parallelism: 8, CompressShuffle: true})
	simOff := simTime(func(c conf.Config) { c.SetBool(conf.ShuffleCompress, false) })
	simOn := simTime(nil)
	rows = append(rows, mkRow("shuffle compression on", engOn/engOff, simOn/simOff))

	// Knob 2: more task slots (engine workers / executor cores) must
	// speed a CPU-bound job up in both systems.
	engFew := engineTime(engine.Config{Parallelism: 8, Workers: 2})
	engMany := engineTime(engine.Config{Parallelism: 8, Workers: 8})
	simFew := simTime(func(c conf.Config) {
		c.Set(conf.ExecutorMemory, 8192)
		c.Set(conf.ExecutorCores, 2)
	})
	simMany := simTime(func(c conf.Config) {
		c.Set(conf.ExecutorMemory, 8192)
		c.Set(conf.ExecutorCores, 12)
	})
	rows = append(rows, mkRow("more task slots", engMany/engFew, simMany/simFew))

	// Knob 3: starving the shuffle of memory (forcing spills) must slow
	// both systems down. Word count's combined shuffle is too small to
	// feel it, so this row sorts — the whole dataset crosses the shuffle.
	sortTime := func(cfg engine.Config) float64 {
		var tera bytes.Buffer
		if _, err := workloads.GenTeraRecords(&tera, 120_000, 2); err != nil {
			panic(err)
		}
		records := strings.Split(strings.TrimRight(tera.String(), "\n"), "\n")
		best := make([]float64, 0, 3)
		for k := 0; k < 3; k++ {
			ctx := engine.NewContext(cfg)
			start := time.Now()
			pairs := engine.MapToPairs(engine.Parallelize(ctx, records),
				func(r string) (string, string) { return r[:10], r[10:] })
			sorted, err := engine.SortByKey(pairs, func(a, b string) bool { return a < b })
			if err != nil {
				panic(err)
			}
			if _, err := sorted.Collect(); err != nil {
				panic(err)
			}
			best = append(best, time.Since(start).Seconds())
		}
		if best[0] > best[1] {
			best[0], best[1] = best[1], best[0]
		}
		if best[1] > best[2] {
			best[1], best[2] = best[2], best[1]
		}
		return best[1]
	}
	ts, _ := workloads.ByAbbr("TS")
	tsTime := func(memMB float64) float64 {
		cfg := conf.StandardSpace().Default().
			Set(conf.ExecutorMemory, memMB).
			Set(conf.DefaultParallelism, 50)
		return sim.Run(&ts.Program, ts.InputMB(30), cfg).TotalSec
	}
	engAmple := sortTime(engine.Config{Parallelism: 8})
	engTight := sortTime(engine.Config{Parallelism: 8, ShuffleMemoryMB: 1})
	simRatio := tsTime(1024) / tsTime(8192)
	rows = append(rows, mkRow("shuffle memory starved", engTight/engAmple, simRatio))

	return rows
}

func mkRow(knob string, engRatio, simRatio float64) ValidateRow {
	return ValidateRow{
		Knob:        knob,
		EngineRatio: engRatio,
		SimRatio:    simRatio,
		Agree:       (engRatio < 1) == (simRatio < 1),
	}
}

// RenderValidate prints the cross-check table.
func RenderValidate(rows []ValidateRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %14s %14s %8s\n", "knob flip", "engine ratio", "sim ratio", "agree")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s %14.2f %14.2f %8v\n", r.Knob, r.EngineRatio, r.SimRatio, r.Agree)
	}
	return b.String()
}
