package experiments

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/obs"
	"repro/internal/workloads"
)

// collectCSV runs the collecting component for TeraSort and renders the
// set as CSV bytes.
func collectCSV(t *testing.T, sc Scale) []byte {
	t.Helper()
	w, err := workloads.ByAbbr("TS")
	if err != nil {
		t.Fatal(err)
	}
	set := collect(sc, w, 200, 42, 1)
	var buf bytes.Buffer
	if err := set.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCollectCSVDeterministicAcrossGOMAXPROCS checks that the collected
// training set is byte-identical whether the simulator runs serially or
// across all cores: the CSV a user writes with `dac collect` must not
// depend on their machine's core count or the scheduler's interleaving.
func TestCollectCSVDeterministicAcrossGOMAXPROCS(t *testing.T) {
	sc := tinyScale()
	sc.Obs = obs.NewRegistry() // exercise instrumentation under both modes

	prev := runtime.GOMAXPROCS(1)
	serial := collectCSV(t, sc)
	runtime.GOMAXPROCS(prev)
	parallel := collectCSV(t, sc)

	if !bytes.Equal(serial, parallel) {
		t.Fatal("collected CSV differs between GOMAXPROCS=1 and the default")
	}
	if len(serial) == 0 {
		t.Fatal("empty CSV")
	}
	if n := sc.Obs.Snapshot().Counters["experiments.collect.jobs"]; n != 400 {
		t.Errorf("experiments.collect.jobs = %d, want 400 across both collects", n)
	}
}
