package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/conf"
	"repro/internal/sparksim"
	"repro/internal/workloads"
)

// NaiveRow is one budget point of the naive-search study: running real
// (simulated-cluster) executions with random configurations and keeping
// the best, versus DAC's model-guided approach.
type NaiveRow struct {
	Budget       int     // executions spent
	ClusterHours float64 // accumulated cluster time
	BestSec      float64 // best measured execution time found
}

// Naive quantifies §1's claim that exhaustively executing configurations
// is infeasible: each row doubles the execution budget of a best-of-N
// random search on the cluster and reports the cluster time it burns and
// the best configuration quality it reaches. DAC's numbers (same workload,
// Table 3 pipeline) are the yardstick the render prints alongside.
func Naive(sc Scale, abbr string, budgets []int) []NaiveRow {
	w, err := workloads.ByAbbr(abbr)
	if err != nil {
		return nil
	}
	sim := sparksim.New(sc.Cluster, 42)
	space := conf.StandardSpace()
	rng := rand.New(rand.NewSource(sc.Seed + 41))
	targetMB := w.SizesMB()[2]

	maxBudget := 0
	for _, b := range budgets {
		if b > maxBudget {
			maxBudget = b
		}
	}
	rows := make([]NaiveRow, 0, len(budgets))
	next := 0
	clusterSec, best := 0.0, 0.0
	for i := 1; i <= maxBudget; i++ {
		t := sim.Run(&w.Program, targetMB, space.Random(rng)).TotalSec
		clusterSec += t
		if best == 0 || t < best {
			best = t
		}
		for next < len(budgets) && budgets[next] == i {
			rows = append(rows, NaiveRow{Budget: i, ClusterHours: clusterSec / 3600, BestSec: best})
			next++
		}
	}
	return rows
}

// RenderNaive prints the budget sweep.
func RenderNaive(abbr string, rows []NaiveRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: naive best-of-N search on the cluster\n", abbr)
	fmt.Fprintf(&b, "  %8s %16s %14s\n", "runs", "cluster hours", "best (s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %8d %16.1f %14.1f\n", r.Budget, r.ClusterHours, r.BestSec)
	}
	return b.String()
}
