package experiments

import (
	"fmt"
	"strings"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/sparksim"
	"repro/internal/workloads"
)

// SubspaceRow compares tuning over differently-sized parameter spaces.
type SubspaceRow struct {
	Space       string
	Params      int
	MeasuredSec float64
}

// Subspace connects the importance analysis back to tuning action: it
// tunes one workload over (a) all 41 parameters, (b) the top-k parameters
// by HM split gain, and (c) the bottom-k, all with the same budget, and
// measures the resulting configurations. The paper's premise is that the
// high dimensional space matters; this quantifies how much of the win the
// heavy hitters carry.
func Subspace(sc Scale, abbr string, k int) []SubspaceRow {
	w, err := workloads.ByAbbr(abbr)
	if err != nil {
		return nil
	}
	full := conf.StandardSpace()
	trainSim := sparksim.New(sc.Cluster, 42)
	evalSim := sparksim.New(sc.Cluster, 77)
	targetMB := w.SizesMB()[2]
	lo := w.SizesMB()[0] * 0.8
	hi := w.SizesMB()[4] * 1.1

	// Rank parameters by importance (dsize excluded: it is a feature,
	// not a knob).
	ranked := Importance(sc, abbr, 0)
	var names []string
	for _, r := range ranked {
		if r.Feature != "dsize" {
			names = append(names, r.Feature)
		}
	}
	if len(names) < k {
		return nil
	}

	tuneOver := func(space *conf.Space, expand func(conf.Config) conf.Config) float64 {
		tuner := &core.Tuner{
			Space: space,
			Exec: core.ExecutorFunc(func(cfg conf.Config, dsizeMB float64) float64 {
				return trainSim.Run(&w.Program, dsizeMB, expand(cfg)).TotalSec
			}),
			Opt: core.Options{NTrain: sc.NTrain, HM: sc.HM, GA: sc.GA, Seed: sc.Seed + 31},
		}
		res, err := tuner.Tune(lo, hi, []float64{targetMB})
		if err != nil {
			panic(fmt.Sprintf("experiments: subspace tuning: %v", err))
		}
		return evalSim.Run(&w.Program, targetMB, expand(res.Best[targetMB])).TotalSec
	}

	rows := []SubspaceRow{}
	ident := func(c conf.Config) conf.Config { return c }
	rows = append(rows, SubspaceRow{
		Space: "all parameters", Params: full.Len(),
		MeasuredSec: tuneOver(full, ident),
	})
	mkExpand := func(sub []string) (*conf.Space, func(conf.Config) conf.Config) {
		ss, err := conf.NewSubSpace(full, full.Default(), sub)
		if err != nil {
			panic(err)
		}
		return ss.Tunable, func(c conf.Config) conf.Config {
			out, err := ss.Expand(c)
			if err != nil {
				panic(err)
			}
			return out
		}
	}
	topSpace, topExpand := mkExpand(names[:k])
	rows = append(rows, SubspaceRow{
		Space: fmt.Sprintf("top-%d by importance", k), Params: k,
		MeasuredSec: tuneOver(topSpace, topExpand),
	})
	botSpace, botExpand := mkExpand(names[len(names)-k:])
	rows = append(rows, SubspaceRow{
		Space: fmt.Sprintf("bottom-%d by importance", k), Params: k,
		MeasuredSec: tuneOver(botSpace, botExpand),
	})
	// The untouched default anchors the comparison.
	rows = append(rows, SubspaceRow{
		Space: "default (no tuning)", Params: 0,
		MeasuredSec: evalSim.Run(&w.Program, targetMB, full.Default()).TotalSec,
	})
	return rows
}

// RenderSubspace prints the comparison.
func RenderSubspace(abbr string, rows []SubspaceRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (middle Table 1 size):\n", abbr)
	fmt.Fprintf(&b, "  %-26s %8s %14s\n", "tuning space", "params", "measured (s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-26s %8d %14.1f\n", r.Space, r.Params, r.MeasuredSec)
	}
	return b.String()
}
