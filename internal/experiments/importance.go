package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/hm"
	"repro/internal/workloads"
)

// ImportanceRow is one feature's share of a workload's HM split gain.
type ImportanceRow struct {
	Feature string
	Share   float64
}

// Importance is an analysis beyond the paper's figures: it trains the HM
// model per workload and reports which of the 41 parameters (plus dsize)
// carry the predictive power. It quantifies two of the paper's claims —
// that the dsize column matters (§1) and that a handful of parameters such
// as executor memory and cores "significantly affect performance" (§2.1) —
// and echoes the related-work observation (Xu et al. [53]) that many knobs
// barely matter.
func Importance(sc Scale, abbr string, topN int) []ImportanceRow {
	w, err := workloads.ByAbbr(abbr)
	if err != nil {
		return nil
	}
	ds := collectDataset(sc, w, sc.NTrain, 42, sc.Seed)
	opt := sc.HM
	opt.Seed = sc.Seed + 21
	m, err := hm.Train(ds, opt)
	if err != nil {
		return nil
	}
	imp := m.FeatureImportance()
	rows := make([]ImportanceRow, len(imp))
	for i, v := range imp {
		rows[i] = ImportanceRow{Feature: ds.Names[i], Share: v}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Share > rows[j].Share })
	if topN > 0 && topN < len(rows) {
		rows = rows[:topN]
	}
	return rows
}

// RenderImportance prints the ranked importance table.
func RenderImportance(abbr string, rows []ImportanceRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: top parameters by HM split gain\n", abbr)
	for i, r := range rows {
		fmt.Fprintf(&b, "  %2d. %-45s %5.1f%%\n", i+1, r.Feature, r.Share*100)
	}
	return b.String()
}
