package model

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func makeDS(n, d int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := NewDataset(nil)
	x := make([]float64, d)
	for i := 0; i < n; i++ {
		for j := range x {
			x[j] = rng.Float64() * 10
		}
		ds.Add(x, 1+rng.Float64()*100)
	}
	return ds
}

func TestDatasetAddCopies(t *testing.T) {
	ds := NewDataset([]string{"a"})
	row := []float64{1}
	ds.Add(row, 2)
	row[0] = 99
	if ds.Features[0][0] != 1 {
		t.Fatal("Add did not copy the row")
	}
}

func TestDatasetValidate(t *testing.T) {
	good := makeDS(10, 3, 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
	ragged := makeDS(5, 3, 1)
	ragged.Features[2] = []float64{1}
	if err := ragged.Validate(); err == nil {
		t.Error("ragged rows should fail")
	}
	nan := makeDS(5, 3, 1)
	nan.Features[1][1] = math.NaN()
	if err := nan.Validate(); err == nil {
		t.Error("NaN feature should fail")
	}
	zero := makeDS(5, 3, 1)
	zero.Targets[0] = 0
	if err := zero.Validate(); err == nil {
		t.Error("non-positive target should fail")
	}
	mismatch := makeDS(5, 3, 1)
	mismatch.Targets = mismatch.Targets[:3]
	if err := mismatch.Validate(); err == nil {
		t.Error("row/target mismatch should fail")
	}
}

func TestSplitPartitions(t *testing.T) {
	ds := makeDS(100, 4, 2)
	rng := rand.New(rand.NewSource(3))
	train, test := ds.Split(0.75, rng)
	if train.Len() != 75 || test.Len() != 25 {
		t.Fatalf("split sizes %d/%d, want 75/25", train.Len(), test.Len())
	}
	if train.Dim() != 4 || test.Dim() != 4 {
		t.Error("split changed dimensionality")
	}
}

func TestBootstrapInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	idx := Bootstrap(50, rng)
	if len(idx) != 50 {
		t.Fatalf("len=%d", len(idx))
	}
	for _, i := range idx {
		if i < 0 || i >= 50 {
			t.Fatalf("index %d out of range", i)
		}
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(110, 100); !almostEq(got, 0.1) {
		t.Errorf("RelErr=%v want 0.1", got)
	}
	if got := RelErr(90, 100); !almostEq(got, 0.1) {
		t.Errorf("RelErr=%v want 0.1 (symmetric)", got)
	}
	if got := RelErr(5, 0); got != 5 {
		t.Errorf("RelErr with zero measurement = %v", got)
	}
}

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

type constModel float64

func (c constModel) Predict([]float64) float64 { return float64(c) }

func TestEvaluate(t *testing.T) {
	ds := NewDataset(nil)
	ds.Add([]float64{0}, 100)
	ds.Add([]float64{0}, 200)
	e := Evaluate(constModel(100), ds)
	if !almostEq(e.Mean, 0.25) || !almostEq(e.Max, 0.5) || !almostEq(e.Min, 0) {
		t.Fatalf("Evaluate = %+v", e)
	}
	if !almostEq(e.Accuracy(), 0.75) {
		t.Errorf("Accuracy = %v", e.Accuracy())
	}
	if got := Evaluate(constModel(1), NewDataset(nil)); got.N != 0 {
		t.Errorf("empty evaluate N = %d", got.N)
	}
}

func TestStandardizer(t *testing.T) {
	ds := makeDS(500, 3, 5)
	s := FitStandardizer(ds)
	Z := s.ApplyAll(ds.Features)
	for j := 0; j < 3; j++ {
		mean, varr := 0.0, 0.0
		for i := range Z {
			mean += Z[i][j]
		}
		mean /= float64(len(Z))
		for i := range Z {
			varr += (Z[i][j] - mean) * (Z[i][j] - mean)
		}
		varr /= float64(len(Z))
		if math.Abs(mean) > 1e-9 {
			t.Errorf("col %d standardized mean %v", j, mean)
		}
		if math.Abs(varr-1) > 1e-6 {
			t.Errorf("col %d standardized var %v", j, varr)
		}
	}
}

func TestStandardizerConstantColumn(t *testing.T) {
	ds := NewDataset(nil)
	ds.Add([]float64{7}, 1)
	ds.Add([]float64{7}, 2)
	s := FitStandardizer(ds)
	z := s.Apply([]float64{7})
	if math.IsNaN(z[0]) || math.IsInf(z[0], 0) {
		t.Fatalf("constant column standardized to %v", z[0])
	}
}

func TestLogTargetsAndUnLog(t *testing.T) {
	ds := NewDataset(nil)
	ds.Add([]float64{0}, math.E)
	lg := LogTargets(ds)
	if !almostEq(lg.Targets[0], 1) {
		t.Fatalf("log target = %v", lg.Targets[0])
	}
	m := UnLog(constModel(1))
	if !almostEq(m.Predict(nil), math.E) {
		t.Fatalf("UnLog predict = %v", m.Predict(nil))
	}
}

// meanTrainer predicts the training-set mean — enough to exercise KFold.
type meanTrainer struct{}

func (meanTrainer) Name() string { return "mean" }
func (meanTrainer) Train(ds *Dataset) (Model, error) {
	if ds.Len() == 0 {
		return nil, errEmpty
	}
	sum := 0.0
	for _, t := range ds.Targets {
		sum += t
	}
	return constModel(sum / float64(ds.Len())), nil
}

var errEmpty = fmt.Errorf("empty dataset")

func TestKFold(t *testing.T) {
	ds := makeDS(100, 3, 7)
	rng := rand.New(rand.NewSource(8))
	st, err := KFold(meanTrainer{}, ds, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.FoldErrs) != 5 {
		t.Fatalf("got %d folds", len(st.FoldErrs))
	}
	for _, e := range st.FoldErrs {
		if e <= 0 || math.IsNaN(e) {
			t.Fatalf("fold error %v", e)
		}
	}
	if st.Std < 0 || st.Mean <= 0 {
		t.Fatalf("stats %+v", st)
	}
	if _, err := KFold(meanTrainer{}, ds, 1, rng); err == nil {
		t.Error("k=1 should fail")
	}
	if _, err := KFold(meanTrainer{}, makeDS(3, 2, 1), 5, rng); err == nil {
		t.Error("n<k should fail")
	}
}

// Property: standardize-then-apply is invertible up to numerical error.
func TestStandardizerRoundTripProperty(t *testing.T) {
	ds := makeDS(100, 5, 6)
	s := FitStandardizer(ds)
	f := func(i uint) bool {
		row := ds.Features[int(i%uint(ds.Len()))]
		z := s.Apply(row)
		for j := range z {
			back := z[j]*s.Std[j] + s.Mean[j]
			if math.Abs(back-row[j]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
