package model

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/obs"
)

// This file is the pluggable model-backend contract: one named entry per
// modeling technique (hm, rf, rs, ann, svm) exposing training through a
// uniform surface, with persistence and warm-start as optional
// capabilities discovered by interface assertion. The paper compares the
// five techniques once (§4.2, Fig. 8–9); the backend layer is what lets
// every consumer — the experiments harness, the core pipeline, the dac
// CLI, and the dacd daemon's model registry — treat them uniformly, so a
// new surrogate (LOCAT-style model swapping, Tuneful-style per-workload
// selection) lands in one place instead of five.

// TrainOpts carries the cross-backend training knobs. Every field is
// optional: a zero field falls through to the backend's own default (or
// its reduced smoke-test budget under Quick). Fields a backend has no
// notion of — Epochs for tree ensembles, TreeComplexity for the response
// surface — are ignored by it.
type TrainOpts struct {
	// Seed drives the backend's randomness; 0 keeps the backend default.
	Seed int64
	// Obs, when non-nil, receives the backend's training metrics.
	Obs *obs.Registry
	// Quick selects the backend's reduced smoke-test budget for every
	// knob not explicitly overridden below.
	Quick bool
	// Trees overrides the tree budget of tree-based backends (hm's
	// boosting budget per first-order model, rf's forest size).
	Trees int
	// LearningRate overrides hm's shrinkage.
	LearningRate float64
	// TreeComplexity overrides hm's splits per tree.
	TreeComplexity int
	// Epochs overrides the pass budget of iterative backends (ann, svm).
	Epochs int
}

// Backend is one named modeling technique behind a uniform training
// surface. The returned Model serves single predictions via Predict and
// batches via PredictBatch (the package-level helper uses the model's
// batch fast path when it has one). Implementations live in
// internal/{hm,rf,rs,ann,svm}; the assembled registry in
// internal/backends.
type Backend interface {
	// Name is the registry key, lowercase ("hm", "rf", ...).
	Name() string
	// Train fits a model; it must not retain ds's slices.
	Train(ds *Dataset, opt TrainOpts) (Model, error)
}

// Saver is the optional persistence capability: a backend that can write
// one of its own models to a stream. Save must reject models of a
// different backend with an error rather than corrupting the stream.
type Saver interface {
	Backend
	Save(m Model, w io.Writer) error
}

// Loader is the inverse capability: decode a model this backend's Save
// wrote. A backend implementing Saver should implement Loader too —
// persistence without reload is useless to the registry.
type Loader interface {
	Backend
	Load(r io.Reader) (Model, error)
}

// Resumer is the warm-start capability: continue training an existing
// model of this backend on fresh data, spending up to extra additional
// budget (trees for hm) before the backend's own stopping rules apply.
// Only backends whose training is incremental implement it (hm).
type Resumer interface {
	Backend
	Resume(m Model, ds *Dataset, opt TrainOpts, extra int) error
}

// Capabilities summarizes what a backend can do beyond Train, as
// discovered by interface assertion.
type Capabilities struct {
	Save   bool `json:"save"`
	Load   bool `json:"load"`
	Resume bool `json:"resume"`
}

// CapabilitiesOf probes b for the optional interfaces.
func CapabilitiesOf(b Backend) Capabilities {
	_, save := b.(Saver)
	_, load := b.(Loader)
	_, resume := b.(Resumer)
	return Capabilities{Save: save, Load: load, Resume: resume}
}

// BackendRegistry maps backend names to Backend values. It is immutable
// after construction, so lookups need no locking.
type BackendRegistry struct {
	byName map[string]Backend
}

// NewBackendRegistry builds a registry over the given backends, keyed by
// their Name(). Duplicate or empty names are a programming error.
func NewBackendRegistry(bs ...Backend) (*BackendRegistry, error) {
	r := &BackendRegistry{byName: make(map[string]Backend, len(bs))}
	for _, b := range bs {
		name := b.Name()
		if name == "" {
			return nil, fmt.Errorf("model: backend with empty name")
		}
		if _, dup := r.byName[name]; dup {
			return nil, fmt.Errorf("model: duplicate backend %q", name)
		}
		r.byName[name] = b
	}
	return r, nil
}

// Lookup returns the backend registered under name.
func (r *BackendRegistry) Lookup(name string) (Backend, error) {
	b, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("model: unknown backend %q (have %v)", name, r.Names())
	}
	return b, nil
}

// Names returns the registered backend names, sorted.
func (r *BackendRegistry) Names() []string {
	out := make([]string, 0, len(r.byName))
	for name := range r.byName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
