package model

import (
	"math"
	"testing"
)

// rowModel is a Model without a batch path.
type rowModel struct{}

func (rowModel) Predict(x []float64) float64 {
	s := 1.0
	for _, v := range x {
		s += v * v
	}
	return s
}

// countingBatch records whether the batch path was taken.
type countingBatch struct {
	rowModel
	batches int
}

func (c *countingBatch) PredictBatch(X [][]float64, out []float64) {
	c.batches++
	for i, x := range X {
		out[i] = c.Predict(x)
	}
}

func probeRows(n int) [][]float64 {
	X := make([][]float64, n)
	for i := range X {
		X[i] = []float64{float64(i), float64(i) * 0.5, 3 - float64(i)}
	}
	return X
}

// TestPredictBatchFallback pins the helper's contract: per-row fallback
// for plain models, one batch call for BatchPredictors, identical values.
func TestPredictBatchFallback(t *testing.T) {
	X := probeRows(9)
	want := make([]float64, len(X))
	for i, x := range X {
		want[i] = rowModel{}.Predict(x)
	}

	plain := make([]float64, len(X))
	PredictBatch(rowModel{}, X, plain)
	cb := &countingBatch{}
	batched := make([]float64, len(X))
	PredictBatch(cb, X, batched)
	if cb.batches != 1 {
		t.Fatalf("batch model scored with %d batch calls, want 1", cb.batches)
	}
	for i := range X {
		if plain[i] != want[i] || batched[i] != want[i] {
			t.Fatalf("row %d: plain=%v batched=%v want %v", i, plain[i], batched[i], want[i])
		}
	}
}

// TestUnLogKeepsBatchPath checks the UnLog wrapper still exposes the
// wrapped model's batch path and that it matches per-row Predict
// bit-for-bit.
func TestUnLogKeepsBatchPath(t *testing.T) {
	m := UnLog(&countingBatch{})
	bp, ok := m.(BatchPredictor)
	if !ok {
		t.Fatal("UnLog dropped the BatchPredictor interface")
	}
	X := probeRows(7)
	out := make([]float64, len(X))
	bp.PredictBatch(X, out)
	for i, x := range X {
		if got := m.Predict(x); got != out[i] {
			t.Fatalf("row %d: Predict=%v PredictBatch=%v", i, got, out[i])
		}
		if out[i] != math.Exp(rowModel{}.Predict(x)) {
			t.Fatalf("row %d: %v is not exp of inner prediction", i, out[i])
		}
	}
}

// TestEvaluateUsesBatchPath checks Evaluate routes through PredictBatch
// and produces the same statistics as the per-row definition.
func TestEvaluateUsesBatchPath(t *testing.T) {
	ds := NewDataset(nil)
	for i, x := range probeRows(20) {
		ds.Add(x, 5+float64(i))
	}
	cb := &countingBatch{}
	got := Evaluate(cb, ds)
	if cb.batches != 1 {
		t.Fatalf("Evaluate made %d batch calls, want 1", cb.batches)
	}
	ref := Evaluate(rowModel{}, ds)
	if got != ref {
		t.Fatalf("batch Evaluate %+v != per-row %+v", got, ref)
	}
}
