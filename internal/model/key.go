package model

import (
	"encoding/binary"
	"math"
)

// VectorKey encodes a feature vector's exact float64 bits as a string,
// 8 bytes per element, little-endian. Two vectors share a key if and
// only if they are bit-identical element for element — the same
// equivalence the BatchPredictor contract guarantees over: a
// deterministic model returns the same prediction for two rows with
// equal keys, whether they are scored per-row, in one batch, or in
// different batches. Prediction memo caches (the daemon's serving memo,
// keyed like ga.GenomeCache) therefore use VectorKey as the per-model
// part of their key; note that +0 and -0 encode differently, as do the
// distinct NaN payloads, which is exactly the conservatism a bit-exact
// memo wants.
func VectorKey(x []float64) string {
	b := make([]byte, 8*len(x))
	for i, v := range x {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
	}
	return string(b)
}
