package model

import (
	"math"
	"testing"
)

func TestVectorKeyBitExact(t *testing.T) {
	a := []float64{1.5, -2.25, 0, 1e-300}
	b := []float64{1.5, -2.25, 0, 1e-300}
	if VectorKey(a) != VectorKey(b) {
		t.Fatal("bit-identical vectors produced different keys")
	}
	if len(VectorKey(a)) != 8*len(a) {
		t.Fatalf("key length %d, want %d", len(VectorKey(a)), 8*len(a))
	}

	// Any single-bit difference must change the key.
	c := append([]float64(nil), a...)
	c[3] = math.Nextafter(c[3], 1)
	if VectorKey(a) == VectorKey(c) {
		t.Fatal("adjacent floats collided")
	}

	// Signed zero and NaN payloads are distinct bit patterns: a bit-exact
	// memo must not conflate them.
	if VectorKey([]float64{0}) == VectorKey([]float64{math.Copysign(0, -1)}) {
		t.Fatal("+0 and -0 collided")
	}
	if VectorKey(nil) != "" {
		t.Fatal("nil vector should encode empty")
	}

	// Length is part of the key: a prefix must not collide with the
	// shorter vector.
	if VectorKey([]float64{1}) == VectorKey([]float64{1, 0})[:8] &&
		VectorKey([]float64{1}) == VectorKey([]float64{1, 0}) {
		t.Fatal("prefix collided with shorter vector")
	}
}
