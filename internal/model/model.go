// Package model defines the shared contract between DAC's performance
// models: datasets of performance vectors (Eq. 5), the Model/Trainer
// interfaces, the paper's prediction-error metric (Eq. 2), and the
// standardization and resampling helpers the learners share.
package model

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/stats"
)

// Model predicts a Spark program's execution time from a feature vector
// (the 41 encoded configuration values followed by the dataset size).
type Model interface {
	// Predict returns the predicted execution time in seconds.
	Predict(x []float64) float64
}

// BatchPredictor is implemented by models that can score a whole block of
// rows in one call (hm.Model, rf.Forest): walking the ensemble
// tree-at-a-time over all rows keeps each tree's nodes hot in cache
// instead of re-faulting the whole model per row. Implementations must
// return results bit-identical to calling Predict per row.
type BatchPredictor interface {
	Model
	// PredictBatch writes the prediction for X[i] into out[i];
	// len(out) must equal len(X).
	PredictBatch(X [][]float64, out []float64)
}

// PredictBatch writes m's predictions for every row of X into out, using
// the model's batch fast path when it has one and falling back to per-row
// Predict otherwise. Either way out is bit-identical.
func PredictBatch(m Model, X [][]float64, out []float64) {
	if bp, ok := m.(BatchPredictor); ok {
		bp.PredictBatch(X, out)
		return
	}
	for i, x := range X {
		out[i] = m.Predict(x)
	}
}

// Trainer fits a Model to a dataset. Implementations live in
// internal/{hm,rf,ann,svm,rs}.
type Trainer interface {
	// Name identifies the technique ("HM", "RF", "ANN", "SVM", "RS").
	Name() string
	// Train fits a model; it must not retain ds's slices.
	Train(ds *Dataset) (Model, error)
}

// Dataset is a design matrix of performance vectors: row i holds the
// features of execution i and Targets[i] its measured execution time t_i.
type Dataset struct {
	// Features is n rows by d columns.
	Features [][]float64
	// Targets holds the measured execution times, len n.
	Targets []float64
	// Names optionally labels the d feature columns.
	Names []string
}

// NewDataset allocates an empty dataset with named columns.
func NewDataset(names []string) *Dataset {
	return &Dataset{Names: names}
}

// Add appends one performance vector. It copies x.
func (ds *Dataset) Add(x []float64, t float64) {
	row := make([]float64, len(x))
	copy(row, x)
	ds.Features = append(ds.Features, row)
	ds.Targets = append(ds.Targets, t)
}

// Len returns the number of samples.
func (ds *Dataset) Len() int { return len(ds.Targets) }

// Dim returns the feature dimensionality (0 for an empty dataset).
func (ds *Dataset) Dim() int {
	if len(ds.Features) == 0 {
		return 0
	}
	return len(ds.Features[0])
}

// Validate reports structural problems: ragged rows, NaN features, or
// non-positive targets.
func (ds *Dataset) Validate() error {
	if len(ds.Features) != len(ds.Targets) {
		return fmt.Errorf("model: %d feature rows but %d targets", len(ds.Features), len(ds.Targets))
	}
	d := ds.Dim()
	for i, row := range ds.Features {
		if len(row) != d {
			return fmt.Errorf("model: row %d has %d features, want %d", i, len(row), d)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("model: row %d feature %d is %v", i, j, v)
			}
		}
		if t := ds.Targets[i]; t <= 0 || math.IsNaN(t) || math.IsInf(t, 0) {
			return fmt.Errorf("model: target %d is %v, want positive finite", i, ds.Targets[i])
		}
	}
	return nil
}

// Subset returns a view-by-copy of the rows in idx.
func (ds *Dataset) Subset(idx []int) *Dataset {
	out := NewDataset(ds.Names)
	for _, i := range idx {
		out.Add(ds.Features[i], ds.Targets[i])
	}
	return out
}

// Split partitions the dataset into a training set of trainFrac of the
// rows and a test set of the rest, shuffled by rng.
func (ds *Dataset) Split(trainFrac float64, rng *rand.Rand) (train, test *Dataset) {
	n := ds.Len()
	perm := rng.Perm(n)
	cut := int(float64(n) * trainFrac)
	if cut < 1 {
		cut = 1
	}
	if cut > n {
		cut = n
	}
	return ds.Subset(perm[:cut]), ds.Subset(perm[cut:])
}

// Bootstrap returns n row indices sampled with replacement.
func Bootstrap(n int, rng *rand.Rand) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = rng.Intn(n)
	}
	return idx
}

// RelErr is Eq. 2: |t_pre - t_mea| / t_mea.
func RelErr(pred, meas float64) float64 {
	if meas == 0 {
		return math.Abs(pred)
	}
	return math.Abs(pred-meas) / math.Abs(meas)
}

// ErrStats summarizes a model's prediction errors over a test set.
type ErrStats struct {
	// Mean, Max and Min are over the per-sample Eq. 2 errors.
	Mean, Max, Min float64
	// N is the number of test samples.
	N int
}

// Accuracy returns 1 - Mean error, the paper's accuracy notion ("target
// accuracy such as 90%").
func (e ErrStats) Accuracy() float64 { return 1 - e.Mean }

// Evaluate computes Eq. 2 error statistics of m over ds. It scores the
// test set through PredictBatch, so batch-capable models are evaluated on
// their fast path (same errors bit-for-bit).
func Evaluate(m Model, ds *Dataset) ErrStats {
	if ds.Len() == 0 {
		return ErrStats{}
	}
	preds := make([]float64, ds.Len())
	PredictBatch(m, ds.Features, preds)
	errs := make([]float64, ds.Len())
	for i, p := range preds {
		errs[i] = RelErr(p, ds.Targets[i])
	}
	return ErrStats{
		Mean: stats.Mean(errs),
		Max:  stats.Max(errs),
		Min:  stats.Min(errs),
		N:    len(errs),
	}
}

// Standardizer centers and scales feature columns to zero mean and unit
// variance — the preprocessing ANN, SVM and RS need to behave on the mixed
// ranges of Table 2 (0–1 fractions next to 1024–12288 MB memories).
type Standardizer struct {
	Mean, Std []float64
}

// FitStandardizer computes per-column statistics over ds.
func FitStandardizer(ds *Dataset) *Standardizer {
	d := ds.Dim()
	s := &Standardizer{Mean: make([]float64, d), Std: make([]float64, d)}
	n := float64(ds.Len())
	if n == 0 {
		return s
	}
	for _, row := range ds.Features {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range ds.Features {
		for j, v := range row {
			d := v - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] < 1e-12 {
			s.Std[j] = 1
		}
	}
	return s
}

// Apply returns the standardized copy of x.
func (s *Standardizer) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return out
}

// ApplyAll standardizes a whole design matrix.
func (s *Standardizer) ApplyAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = s.Apply(row)
	}
	return out
}

// LogTargets returns a copy of ds with log-transformed targets. Execution
// times span four orders of magnitude across the configuration space, so
// learners that minimize squared error fit log-time; UnLog inverts a model
// trained this way.
func LogTargets(ds *Dataset) *Dataset {
	out := &Dataset{Names: ds.Names, Features: ds.Features, Targets: make([]float64, len(ds.Targets))}
	for i, t := range ds.Targets {
		out.Targets[i] = math.Log(math.Max(1e-9, t))
	}
	return out
}

// UnLog wraps a model trained on log targets so Predict returns seconds.
func UnLog(m Model) Model { return expModel{m} }

type expModel struct{ inner Model }

func (e expModel) Predict(x []float64) float64 { return math.Exp(e.inner.Predict(x)) }

// PredictBatch keeps the wrapped model's batch fast path available through
// the UnLog wrapper.
func (e expModel) PredictBatch(X [][]float64, out []float64) {
	PredictBatch(e.inner, X, out)
	for i, v := range out {
		out[i] = math.Exp(v)
	}
}
