package model

import (
	"fmt"
	"math/rand"

	"repro/internal/stats"
)

// KFoldStats summarizes a cross-validation: the per-fold mean Eq. 2 errors
// and their spread.
type KFoldStats struct {
	// FoldErrs holds each fold's mean relative error.
	FoldErrs []float64
	// Mean and Std summarize FoldErrs.
	Mean, Std float64
}

// KFold runs k-fold cross-validation of a trainer over ds: the paper
// validates with a single held-out quarter (§3.2); k-fold adds error bars
// to the same measurement.
func KFold(tr Trainer, ds *Dataset, k int, rng *rand.Rand) (KFoldStats, error) {
	if k < 2 {
		return KFoldStats{}, fmt.Errorf("model: k must be >= 2, got %d", k)
	}
	n := ds.Len()
	if n < k {
		return KFoldStats{}, fmt.Errorf("model: %d samples for %d folds", n, k)
	}
	perm := rng.Perm(n)
	out := KFoldStats{FoldErrs: make([]float64, 0, k)}
	for fold := 0; fold < k; fold++ {
		lo, hi := fold*n/k, (fold+1)*n/k
		var trainIdx, testIdx []int
		for i, p := range perm {
			if i >= lo && i < hi {
				testIdx = append(testIdx, p)
			} else {
				trainIdx = append(trainIdx, p)
			}
		}
		m, err := tr.Train(ds.Subset(trainIdx))
		if err != nil {
			return KFoldStats{}, fmt.Errorf("model: fold %d: %w", fold, err)
		}
		out.FoldErrs = append(out.FoldErrs, Evaluate(m, ds.Subset(testIdx)).Mean)
	}
	out.Mean = stats.Mean(out.FoldErrs)
	out.Std = stats.StdDev(out.FoldErrs)
	return out, nil
}
