// Package fleet turns dacd's collect sweeps into distributed work: a
// coordinator shards a sweep's core.CollectJobs row list into leased
// chunks, and worker agents register, heartbeat, lease chunks, execute
// them on their own simulator, and stream the journaled rows back. The
// coordinator owns the canonical append-only journal (internal/journal):
// worker results merge into it as they arrive, leases that expire when a
// worker dies mid-chunk requeue their chunk, and a finishing sweep
// compacts the journal into global row-index order — so the final CSV is
// byte-identical to a single-process run at any worker count, and
// kill-and-resume semantics extend from one process to the whole fleet.
//
// Worker identity is fenced by registration epochs: re-registering a
// name bumps its epoch and revokes the old epoch's leases, so a zombie
// worker's late results are rejected instead of double-merging. The
// protocol is four JSON-over-HTTP endpoints in the daemon's existing
// style:
//
//	POST /workers/register        {name}                     → {id, epoch, ...}
//	POST /workers/{id}/heartbeat  {epoch}                    → {ok}
//	POST /workers/{id}/lease      {epoch}                    → {lease, sweep, chunk, indices, spec}
//	POST /workers/{id}/results    {epoch, sweep, chunk, rows} → {accepted}
package fleet

import (
	"fmt"

	"repro/internal/journal"
)

// SweepSpec is everything a worker needs to reproduce a sweep's job list
// and execute any chunk of it: core.CollectJobs is a pure function of
// (space, seed, ntrain, sampler), and the simulator derives per-run
// randomness from each run's spec, so a worker rebuilt from this spec
// produces times bit-identical to the coordinator running locally.
type SweepSpec struct {
	// Workload is the abbreviation (TS, WC, ...) naming the program.
	Workload string `json:"workload"`
	// Seed is the tuner seed; the simulator seed derives as Seed+7, the
	// same slot the CLI and daemon use.
	Seed int64 `json:"seed"`
	// NTrain is the sweep's total row count.
	NTrain int `json:"ntrain"`
	// SizesMB is the exact training-size cycle, row i using
	// SizesMB[i%len].
	SizesMB []float64 `json:"sizes_mb"`
	// MetaHash binds the spec to the coordinator's journal header;
	// workers recompute it and refuse a spec that does not hash to it.
	MetaHash string `json:"meta_hash"`
}

// Validate checks the spec's internal consistency, in particular that
// MetaHash really is the hash of the other fields.
func (s SweepSpec) Validate() error {
	if s.Workload == "" {
		return fmt.Errorf("fleet: sweep spec has no workload")
	}
	if s.NTrain <= 0 {
		return fmt.Errorf("fleet: sweep spec ntrain = %d", s.NTrain)
	}
	if len(s.SizesMB) == 0 {
		return fmt.Errorf("fleet: sweep spec has no sizes")
	}
	if got := journal.MetaHash(s.Workload, s.Seed, s.NTrain, s.SizesMB); got != s.MetaHash {
		return fmt.Errorf("fleet: sweep spec hashes to %s, not the announced %s", got, s.MetaHash)
	}
	return nil
}

// RegisterResponse is the coordinator's answer to a registration: the
// worker's identity plus the cadence hints the agent should follow.
type RegisterResponse struct {
	ID    string `json:"id"`
	Epoch int64  `json:"epoch"`
	// HeartbeatMS is how often the worker should heartbeat; leases are
	// extended on every beat and expire LeaseTTLMS after the last one.
	HeartbeatMS int64 `json:"heartbeat_ms"`
	LeaseTTLMS  int64 `json:"lease_ttl_ms"`
}

// LeaseResponse hands a worker one chunk (or tells it to retry later).
type LeaseResponse struct {
	Lease bool `json:"lease"`
	// RetryMS is the suggested wait before the next lease request when
	// no chunk was granted.
	RetryMS int64 `json:"retry_ms,omitempty"`
	Sweep   int64 `json:"sweep,omitempty"`
	Chunk   int   `json:"chunk,omitempty"`
	// Indices are the sweep row indices to execute, ascending.
	Indices []int     `json:"indices,omitempty"`
	Spec    SweepSpec `json:"spec,omitempty"`
}

// ResultRow is one executed row streamed back to the coordinator.
// float64 JSON encoding round-trips exactly, so the merged journal (and
// the CSV built from it) is bit-identical to local execution.
type ResultRow struct {
	Index   int     `json:"index"`
	TimeSec float64 `json:"time_sec"`
}

// resultsResponse reports whether a chunk's rows were merged. A rejected
// chunk (stale epoch, expired lease, already-completed chunk) is not an
// error for the sweep — the coordinator has already arranged for the
// chunk to be (re)executed elsewhere.
type resultsResponse struct {
	Accepted bool   `json:"accepted"`
	Reason   string `json:"reason,omitempty"`
}

type registerRequest struct {
	Name string `json:"name,omitempty"`
}

type epochRequest struct {
	Epoch int64 `json:"epoch"`
}

type resultsRequest struct {
	Epoch int64       `json:"epoch"`
	Sweep int64       `json:"sweep"`
	Chunk int         `json:"chunk"`
	Rows  []ResultRow `json:"rows"`
}
