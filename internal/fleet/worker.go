package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/sparksim"
	"repro/internal/workloads"
)

// ErrSuperseded reports that a newer registration under this worker's
// name fenced this process out; the correct response is to exit, not
// retry — the coordinator will never accept this epoch again.
var ErrSuperseded = errors.New("fleet: worker superseded by a newer registration")

// RunnerFunc executes one leased chunk: the sweep rows named by indices,
// returning one result per index in the same order.
type RunnerFunc func(ctx context.Context, indices []int) ([]ResultRow, error)

// WorkerOptions configure a worker agent.
type WorkerOptions struct {
	// Coordinator is the daemon's base URL, e.g. "http://127.0.0.1:7077".
	Coordinator string
	// Name registers the worker under a stable identity; empty lets the
	// coordinator assign one. Reusing a name after a crash bumps the
	// epoch and revokes the dead process's leases immediately instead of
	// waiting out the lease TTL.
	Name string
	// Token is the shared secret sent as a Bearer token when the daemon
	// runs with -auth-token; empty sends none.
	Token string
	// Parallelism bounds the goroutines executing one chunk (default
	// GOMAXPROCS via the executor's own batching; 1 keeps it serial).
	// Results are index-ordered either way — run times are a pure
	// function of each row's spec.
	Parallelism int
	// Client overrides the HTTP client (tests); nil uses a 30s-timeout
	// default.
	Client *http.Client
	// NewRunner builds the executor for a sweep spec. Nil uses
	// SimRunner, the production path. The worker caches one runner per
	// meta hash, so consecutive chunks of the same sweep reuse it.
	NewRunner func(spec SweepSpec, parallelism int) (RunnerFunc, error)
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

// Worker is the fleet's execution agent: it registers with the
// coordinator, heartbeats on the advertised cadence, leases chunks,
// executes them, and streams results back until its context cancels or
// a newer registration supersedes it.
type Worker struct {
	opt    WorkerOptions
	client *http.Client

	// mu guards the registration identity: Run's loop re-registers after
	// a coordinator restart while the heartbeat goroutine keeps reading.
	mu    sync.Mutex
	id    string
	epoch int64
	beat  time.Duration
	retry time.Duration

	runnerMeta string
	runner     RunnerFunc
}

// NewWorker returns an unregistered worker; Run drives it.
func NewWorker(opt WorkerOptions) *Worker {
	if opt.NewRunner == nil {
		opt.NewRunner = SimRunner
	}
	if opt.Logf == nil {
		opt.Logf = func(string, ...any) {}
	}
	c := opt.Client
	if c == nil {
		c = &http.Client{Timeout: 30 * time.Second}
	}
	return &Worker{opt: opt, client: c}
}

// ID reports the coordinator-assigned identity (after Run registers).
func (w *Worker) ID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// identity snapshots the current registration under the lock.
func (w *Worker) identity() (id string, epoch int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id, w.epoch
}

// changedSince reports whether a re-registration replaced the given
// identity — the signal that a stale-epoch rejection raced the worker's
// own recovery rather than a genuine supersession.
func (w *Worker) changedSince(id string, epoch int64) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id != id || w.epoch != epoch
}

// Run registers and then works until ctx cancels (returns nil), the
// worker is superseded (ErrSuperseded), or the coordinator becomes
// persistently unreachable.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}
	w.mu.Lock()
	w.opt.Logf("fleet worker %s: registered (epoch %d, heartbeat %v)", w.id, w.epoch, w.beat)
	w.mu.Unlock()

	hbErr := make(chan error, 1)
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	go w.heartbeatLoop(hbCtx, hbErr)

	for {
		select {
		case <-ctx.Done():
			return nil
		case err := <-hbErr:
			return err
		default:
		}
		w.mu.Lock()
		id, retry := w.id, w.retry
		w.mu.Unlock()
		lease, err := w.lease(ctx)
		switch {
		case ctx.Err() != nil:
			return nil
		case errors.Is(err, ErrSuperseded):
			return err
		case errors.Is(err, errUnknownWorker):
			// Coordinator restarted and lost the registry: start over.
			if err := w.register(ctx); err != nil {
				return err
			}
			continue
		case err != nil:
			// Transient (network, 5xx): back off on the retry cadence.
			w.opt.Logf("fleet worker %s: lease: %v", id, err)
			if !sleep(ctx, retry) {
				return nil
			}
			continue
		}
		if !lease.Lease {
			wait := time.Duration(lease.RetryMS) * time.Millisecond
			if wait <= 0 {
				wait = retry
			}
			if !sleep(ctx, wait) {
				return nil
			}
			continue
		}
		if err := w.runChunk(ctx, lease); err != nil {
			if errors.Is(err, ErrSuperseded) {
				return err
			}
			if ctx.Err() != nil {
				return nil
			}
			w.opt.Logf("fleet worker %s: chunk %d/%d: %v", id, lease.Sweep, lease.Chunk, err)
			if !sleep(ctx, retry) {
				return nil
			}
		}
	}
}

func (w *Worker) register(ctx context.Context) error {
	var resp RegisterResponse
	if err := w.post(ctx, "/workers/register", registerRequest{Name: w.opt.Name}, &resp); err != nil {
		return fmt.Errorf("fleet: registering with %s: %w", w.opt.Coordinator, err)
	}
	beat := time.Duration(resp.HeartbeatMS) * time.Millisecond
	if beat <= 0 {
		beat = 2 * time.Second
	}
	retry := beat / 2
	if retry < 10*time.Millisecond {
		retry = 10 * time.Millisecond
	}
	w.mu.Lock()
	w.id = resp.ID
	w.epoch = resp.Epoch
	w.beat = beat
	w.retry = retry
	w.mu.Unlock()
	return nil
}

// heartbeatLoop beats on the coordinator's advertised cadence, re-reading
// the registration each beat (Run may re-register after a coordinator
// restart). A stale epoch is fatal (the worker was superseded) — unless
// the rejected beat carried an identity the worker itself has since
// replaced, in which case the beat merely raced the re-registration and
// the loop carries on. Transient failures are retried — the lease TTL
// absorbs a few missed beats.
func (w *Worker) heartbeatLoop(ctx context.Context, fatal chan<- error) {
	for {
		w.mu.Lock()
		beat := w.beat
		w.mu.Unlock()
		if !sleep(ctx, beat) {
			return
		}
		id, epoch := w.identity()
		err := w.post(ctx, "/workers/"+id+"/heartbeat", epochRequest{Epoch: epoch}, nil)
		if errors.Is(err, ErrSuperseded) {
			if w.changedSince(id, epoch) {
				continue // our own re-registration superseded this beat
			}
			// A re-registration may still be in flight in Run's loop; give
			// it one beat to land before declaring the fence genuine.
			if !sleep(ctx, beat) {
				return
			}
			if w.changedSince(id, epoch) {
				continue
			}
			fatal <- err
			return
		}
		if err != nil && ctx.Err() == nil {
			w.opt.Logf("fleet worker %s: heartbeat: %v", id, err)
		}
	}
}

func (w *Worker) lease(ctx context.Context) (LeaseResponse, error) {
	id, epoch := w.identity()
	var resp LeaseResponse
	err := w.post(ctx, "/workers/"+id+"/lease", epochRequest{Epoch: epoch}, &resp)
	return resp, err
}

// runChunk validates the leased spec, executes its rows, and posts the
// results. A fence rejection (accepted=false) is not an error: the
// coordinator already rearranged the chunk, so the worker just moves on.
func (w *Worker) runChunk(ctx context.Context, lease LeaseResponse) error {
	if err := lease.Spec.Validate(); err != nil {
		return err
	}
	if w.runner == nil || w.runnerMeta != lease.Spec.MetaHash {
		r, err := w.opt.NewRunner(lease.Spec, w.opt.Parallelism)
		if err != nil {
			return err
		}
		w.runner, w.runnerMeta = r, lease.Spec.MetaHash
	}
	rows, err := w.runner(ctx, lease.Indices)
	if err != nil {
		return err
	}
	id, epoch := w.identity()
	var resp resultsResponse
	err = w.post(ctx, "/workers/"+id+"/results", resultsRequest{
		Epoch: epoch,
		Sweep: lease.Sweep,
		Chunk: lease.Chunk,
		Rows:  rows,
	}, &resp)
	if err != nil {
		return err
	}
	if !resp.Accepted {
		w.opt.Logf("fleet worker %s: chunk %d/%d rejected: %s", id, lease.Sweep, lease.Chunk, resp.Reason)
		return nil
	}
	w.opt.Logf("fleet worker %s: chunk %d/%d merged (%d rows)", id, lease.Sweep, lease.Chunk, len(rows))
	return nil
}

// post sends one JSON request and decodes the JSON answer. 409 maps to
// ErrSuperseded and 404 to errUnknownWorker — the two protocol statuses
// the worker reacts to structurally.
func (w *Worker) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	url := strings.TrimSuffix(w.opt.Coordinator, "/") + path
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if w.opt.Token != "" {
		req.Header.Set("Authorization", "Bearer "+w.opt.Token)
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return err
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict:
		return ErrSuperseded
	case http.StatusNotFound:
		return errUnknownWorker
	default:
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("fleet: %s: %s", path, e.Error)
		}
		return fmt.Errorf("fleet: %s: HTTP %d", path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// SimRunner builds the production executor for a sweep spec: the same
// simulator wiring as the daemon's local path (sparksim on the standard
// cluster at seed+7, the workload's program, core.CollectJobs for the
// row list), so a worker's times are bit-identical to local execution.
func SimRunner(spec SweepSpec, parallelism int) (RunnerFunc, error) {
	wl, err := workloads.ByAbbr(spec.Workload)
	if err != nil {
		return nil, err
	}
	sim := sparksim.New(cluster.Standard(), spec.Seed+7)
	exec := core.NewSimExecutor(sim, &wl.Program)
	t := &core.Tuner{
		Space: conf.StandardSpace(),
		Exec:  exec,
		Opt:   core.Options{NTrain: spec.NTrain, Seed: spec.Seed},
	}
	jobs := t.CollectJobs(spec.SizesMB)
	if parallelism < 1 {
		parallelism = 1
	}
	return func(ctx context.Context, indices []int) ([]ResultRow, error) {
		if !sort.IntsAreSorted(indices) {
			return nil, fmt.Errorf("fleet: chunk indices not ascending")
		}
		chunk := make([]core.Job, len(indices))
		for i, idx := range indices {
			if idx < 0 || idx >= len(jobs) {
				return nil, fmt.Errorf("fleet: chunk index %d outside sweep of %d rows", idx, len(jobs))
			}
			chunk[i] = jobs[idx]
		}
		rows := make([]ResultRow, len(indices))
		// Split the chunk across parallelism goroutines; each sub-batch
		// goes through ExecuteBatch (concurrency-safe, pooled scratch).
		per := (len(chunk) + parallelism - 1) / parallelism
		var wg sync.WaitGroup
		for lo := 0; lo < len(chunk); lo += per {
			hi := lo + per
			if hi > len(chunk) {
				hi = len(chunk)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				if ctx.Err() != nil {
					return
				}
				times := exec.ExecuteBatch(chunk[lo:hi])
				for i, sec := range times {
					rows[lo+i] = ResultRow{Index: indices[lo+i], TimeSec: sec}
				}
			}(lo, hi)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return rows, nil
	}, nil
}
