package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/obs"
)

// testSpec builds a valid sweep spec for n rows.
func testSpec(n int) SweepSpec {
	sizes := []float64{10, 20}
	return SweepSpec{
		Workload: "TS",
		Seed:     1,
		NTrain:   n,
		SizesMB:  sizes,
		MetaHash: journal.MetaHash("TS", 1, n, sizes),
	}
}

// rowTime is the fake execution function every fleet test shares: a
// pure function of the row index, like the real simulator.
func rowTime(idx int) float64 { return float64(idx) + 0.5 }

// mergeSink collects merged rows like the daemon's journal does.
type mergeSink struct {
	mu   sync.Mutex
	rows map[int]float64
}

func newMergeSink() *mergeSink { return &mergeSink{rows: make(map[int]float64)} }

func (s *mergeSink) OnRows(rows []core.RowTime) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range rows {
		s.rows[r.Index] = r.TimeSec
	}
	return nil
}

func (s *mergeSink) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.rows)
}

// startSweep runs RunSweep in a goroutine and returns the error channel.
func startSweep(ctx context.Context, c *Coordinator, spec SweepSpec, hooks SweepHooks) chan error {
	done := make(chan error, 1)
	go func() { done <- c.RunSweep(ctx, 1, spec, hooks) }()
	return done
}

// executeChunk answers one lease like a correct worker would. Errors
// report via t.Error so it is safe from worker goroutines.
func executeChunk(t *testing.T, c *Coordinator, id string, epoch int64, lease LeaseResponse) {
	t.Helper()
	rows := make([]ResultRow, len(lease.Indices))
	for i, idx := range lease.Indices {
		rows[i] = ResultRow{Index: idx, TimeSec: rowTime(idx)}
	}
	resp, err := c.results(id, resultsRequest{Epoch: epoch, Sweep: lease.Sweep, Chunk: lease.Chunk, Rows: rows})
	if err != nil {
		t.Errorf("results: %v", err)
		return
	}
	if !resp.Accepted {
		t.Errorf("results rejected: %s", resp.Reason)
	}
}

// leaseWait retries until a chunk is granted — RunSweep registers the
// sweep asynchronously, so the first lease request can race it.
func leaseWait(t *testing.T, c *Coordinator, id string, epoch int64) LeaseResponse {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		lease, err := c.lease(id, epoch)
		if err != nil {
			t.Fatalf("lease: %v", err)
		}
		if lease.Lease {
			return lease
		}
		if time.Now().After(deadline) {
			t.Fatal("no chunk granted within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// drain leases until the sweep has nothing pending, executing every
// granted chunk.
func drain(t *testing.T, c *Coordinator, id string, epoch int64) {
	t.Helper()
	for {
		lease, err := c.lease(id, epoch)
		if err != nil {
			t.Fatalf("lease: %v", err)
		}
		if !lease.Lease {
			return
		}
		executeChunk(t, c, id, epoch, lease)
	}
}

// A sweep sharded across two workers merges every row exactly once, and
// known (already-journaled) rows are never dispatched.
func TestSweepShardsAndSkipsKnownRows(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCoordinator(Options{LeaseTTL: time.Second, ChunkRows: 4, Obs: reg})
	spec := testSpec(19)
	sink := newMergeSink()
	// Rows 0 and 7 are already journaled.
	known := map[int]float64{0: rowTime(0), 7: rowTime(7)}
	done := startSweep(context.Background(), c, spec, SweepHooks{
		Known:  func(i int) (float64, bool) { s, ok := known[i]; return s, ok },
		OnRows: sink.OnRows,
	})

	a, err := c.register("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.register("b")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, w := range []RegisterResponse{a, b} {
		wg.Add(1)
		go func(w RegisterResponse) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				lease, err := c.lease(w.ID, w.Epoch)
				if err != nil {
					t.Errorf("lease: %v", err)
					return
				}
				if !lease.Lease {
					time.Sleep(time.Millisecond)
					continue
				}
				executeChunk(t, c, w.ID, w.Epoch, lease)
			}
		}(w)
	}
	if err := <-done; err != nil {
		t.Fatalf("sweep: %v", err)
	}
	close(stop)
	wg.Wait()
	if sink.len() != 17 {
		t.Fatalf("merged %d rows, want 17 (19 minus 2 known)", sink.len())
	}
	if _, ok := sink.rows[0]; ok {
		t.Fatal("known row 0 was re-dispatched")
	}
	for idx, sec := range sink.rows {
		if sec != rowTime(idx) {
			t.Fatalf("row %d merged %v, want %v", idx, sec, rowTime(idx))
		}
	}
	if got := reg.Counter("fleet.rows.merged").Value(); got != 17 {
		t.Fatalf("fleet.rows.merged = %d, want 17", got)
	}
	if got := reg.Counter("fleet.workers.registered").Value(); got != 2 {
		t.Fatalf("fleet.workers.registered = %d, want 2", got)
	}
}

// A worker that leases a chunk and then goes silent loses it: the lease
// expires after the TTL and the chunk requeues to a live worker. The
// dead worker's late results are rejected, not double-merged.
func TestLeaseExpiryRequeuesChunk(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCoordinator(Options{LeaseTTL: 80 * time.Millisecond, ChunkRows: 4, Obs: reg})
	spec := testSpec(8)
	sink := newMergeSink()
	done := startSweep(context.Background(), c, spec, SweepHooks{OnRows: sink.OnRows})

	dead, err := c.register("dead")
	if err != nil {
		t.Fatal(err)
	}
	lease := leaseWait(t, c, dead.ID, dead.Epoch)
	// The dead worker never heartbeats again. A live worker drains the
	// sweep; it can only finish once the dead worker's chunk requeues.
	live, err := c.register("live")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sinkDone := false; !sinkDone; {
		l, err := c.lease(live.ID, live.Epoch)
		if err != nil {
			t.Fatal(err)
		}
		if l.Lease {
			executeChunk(t, c, live.ID, live.Epoch, l)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("sweep: %v", err)
			}
			sinkDone = true
		default:
			if time.Now().After(deadline) {
				t.Fatal("sweep did not finish after lease expiry")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if reg.Counter("fleet.leases.expired").Value() < 1 {
		t.Fatal("no lease expired")
	}
	if reg.Counter("fleet.leases.requeued").Value() < 1 {
		t.Fatal("no lease requeued")
	}
	if reg.Counter("fleet.workers.lost").Value() < 1 {
		t.Fatal("dead worker not marked lost")
	}
	if sink.len() != 8 {
		t.Fatalf("merged %d rows, want 8", sink.len())
	}

	// The dead worker wakes up and posts its stale chunk: rejected —
	// the sweep is gone, and its rows must not merge twice.
	rows := make([]ResultRow, len(lease.Indices))
	for i, idx := range lease.Indices {
		rows[i] = ResultRow{Index: idx, TimeSec: rowTime(idx)}
	}
	resp, _ := c.results(dead.ID, resultsRequest{Epoch: dead.Epoch, Sweep: lease.Sweep, Chunk: lease.Chunk, Rows: rows})
	if resp.Accepted {
		t.Fatal("stale results accepted after lease expiry")
	}
	if reg.Counter("fleet.results.rejected").Value() < 1 {
		t.Fatal("rejection not counted")
	}
}

// Re-registering a worker name bumps its epoch and fences the old
// process out: its leases revoke, and both its lease requests and its
// results are rejected with the stale-epoch error.
func TestZombieEpochFencing(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCoordinator(Options{LeaseTTL: time.Second, ChunkRows: 4, Obs: reg})
	spec := testSpec(8)
	sink := newMergeSink()
	done := startSweep(context.Background(), c, spec, SweepHooks{OnRows: sink.OnRows})

	old, err := c.register("w")
	if err != nil {
		t.Fatal(err)
	}
	lease := leaseWait(t, c, old.ID, old.Epoch)

	// The process restarts under the same name before the old one dies:
	// epoch bumps, the old lease revokes instantly.
	cur, err := c.register("w")
	if err != nil {
		t.Fatal(err)
	}
	if cur.Epoch != old.Epoch+1 {
		t.Fatalf("epoch = %d, want %d", cur.Epoch, old.Epoch+1)
	}
	if reg.Counter("fleet.leases.requeued").Value() < 1 {
		t.Fatal("old epoch's lease not revoked on re-register")
	}

	// The zombie's requests all bounce off the fence.
	if _, err := c.lease(old.ID, old.Epoch); !errors.Is(err, errStaleEpoch) {
		t.Fatalf("zombie lease error = %v, want errStaleEpoch", err)
	}
	rows := make([]ResultRow, len(lease.Indices))
	for i, idx := range lease.Indices {
		rows[i] = ResultRow{Index: idx, TimeSec: rowTime(idx)}
	}
	if _, err := c.results(old.ID, resultsRequest{Epoch: old.Epoch, Sweep: lease.Sweep, Chunk: lease.Chunk, Rows: rows}); !errors.Is(err, errStaleEpoch) {
		t.Fatalf("zombie results error = %v, want errStaleEpoch", err)
	}

	drain(t, c, cur.ID, cur.Epoch)
	if err := <-done; err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if sink.len() != 8 {
		t.Fatalf("merged %d rows, want 8 (zombie must not double-merge)", sink.len())
	}
}

// A sweep whose fleet is empty (or died) finishes anyway through the
// local fallback.
func TestLocalFallbackWithNoWorkers(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCoordinator(Options{LeaseTTL: 40 * time.Millisecond, ChunkRows: 4, Obs: reg})
	spec := testSpec(10)
	sink := newMergeSink()
	err := c.RunSweep(context.Background(), 1, spec, SweepHooks{
		OnRows: sink.OnRows,
		RunLocal: func(ctx context.Context, indices []int) ([]core.RowTime, error) {
			rows := make([]core.RowTime, len(indices))
			for i, idx := range indices {
				rows[i] = core.RowTime{Index: idx, TimeSec: rowTime(idx)}
			}
			return rows, nil
		},
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if sink.len() != 10 {
		t.Fatalf("merged %d rows, want 10", sink.len())
	}
	if reg.Counter("fleet.chunks.local").Value() < 1 {
		t.Fatal("local fallback did not run")
	}
}

// Malformed results (wrong indices for the chunk) requeue the chunk
// instead of merging garbage or wedging the sweep.
func TestMalformedResultsRequeue(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCoordinator(Options{LeaseTTL: time.Second, ChunkRows: 4, Obs: reg})
	spec := testSpec(4)
	sink := newMergeSink()
	done := startSweep(context.Background(), c, spec, SweepHooks{OnRows: sink.OnRows})

	w, err := c.register("w")
	if err != nil {
		t.Fatal(err)
	}
	lease := leaseWait(t, c, w.ID, w.Epoch)
	resp, err := c.results(w.ID, resultsRequest{
		Epoch: w.Epoch, Sweep: lease.Sweep, Chunk: lease.Chunk,
		Rows: []ResultRow{{Index: 99, TimeSec: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted {
		t.Fatal("malformed results accepted")
	}
	drain(t, c, w.ID, w.Epoch)
	if err := <-done; err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if sink.len() != 4 {
		t.Fatalf("merged %d rows, want 4", sink.len())
	}
}

// A spec whose MetaHash doesn't match its fields is rejected before any
// chunk is built.
func TestSpecValidation(t *testing.T) {
	c := NewCoordinator(Options{})
	spec := testSpec(4)
	spec.MetaHash = "0000000000000000"
	if err := c.RunSweep(context.Background(), 1, spec, SweepHooks{}); err == nil {
		t.Fatal("mismatched meta hash accepted")
	}
}

// The full HTTP loop: a Worker agent against the coordinator's routes,
// with a fake runner — registration, heartbeats, leases, results, and
// the sweep completing through the agent's own loop.
func TestWorkerAgentOverHTTP(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCoordinator(Options{LeaseTTL: 500 * time.Millisecond, ChunkRows: 4, Obs: reg})
	mux := http.NewServeMux()
	c.Routes(mux, nil)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	spec := testSpec(19)
	sink := newMergeSink()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	done := startSweep(ctx, c, spec, SweepHooks{OnRows: sink.OnRows})

	wctx, stopWorker := context.WithCancel(ctx)
	defer stopWorker()
	w := NewWorker(WorkerOptions{
		Coordinator: ts.URL,
		Name:        "httpw",
		NewRunner: func(spec SweepSpec, parallelism int) (RunnerFunc, error) {
			if err := spec.Validate(); err != nil {
				return nil, err
			}
			return func(ctx context.Context, indices []int) ([]ResultRow, error) {
				rows := make([]ResultRow, len(indices))
				for i, idx := range indices {
					rows[i] = ResultRow{Index: idx, TimeSec: rowTime(idx)}
				}
				return rows, nil
			}, nil
		},
	})
	workerDone := make(chan error, 1)
	go func() { workerDone <- w.Run(wctx) }()

	if err := <-done; err != nil {
		t.Fatalf("sweep: %v", err)
	}
	stopWorker()
	if err := <-workerDone; err != nil {
		t.Fatalf("worker: %v", err)
	}
	if sink.len() != 19 {
		t.Fatalf("merged %d rows, want 19", sink.len())
	}
	// The registry reflects the agent.
	ws := c.Workers()
	if len(ws) != 1 || ws[0].ID != "httpw" {
		t.Fatalf("workers = %+v, want one 'httpw'", ws)
	}
}

// LiveWorkers tracks heartbeat recency: a worker counts while beating
// and stops counting once it has been silent past the TTL.
func TestLiveWorkers(t *testing.T) {
	c := NewCoordinator(Options{LeaseTTL: 60 * time.Millisecond})
	if got := c.LiveWorkers(); got != 0 {
		t.Fatalf("LiveWorkers = %d, want 0", got)
	}
	w, err := c.register("w")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.LiveWorkers(); got != 1 {
		t.Fatalf("LiveWorkers = %d, want 1", got)
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.LiveWorkers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("silent worker still counted live")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// A heartbeat resurrects it.
	if err := c.heartbeat(w.ID, w.Epoch); err != nil {
		t.Fatal(err)
	}
	if got := c.LiveWorkers(); got != 1 {
		t.Fatalf("LiveWorkers after resurrection = %d, want 1", got)
	}
}

// Worker names are validated like registry model names: path-safe only.
func TestWorkerNameValidation(t *testing.T) {
	c := NewCoordinator(Options{})
	if _, err := c.register("../evil"); err == nil {
		t.Fatal("path-traversal name accepted")
	}
	if _, err := c.register(fmt.Sprintf("%065d", 0)); err == nil {
		t.Fatal("overlong name accepted")
	}
	r, err := c.register("")
	if err != nil || r.ID == "" {
		t.Fatalf("anonymous registration = %+v, %v", r, err)
	}
}
