package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/obs"
)

// testSpec builds a valid sweep spec for n rows.
func testSpec(n int) SweepSpec {
	sizes := []float64{10, 20}
	return SweepSpec{
		Workload: "TS",
		Seed:     1,
		NTrain:   n,
		SizesMB:  sizes,
		MetaHash: journal.MetaHash("TS", 1, n, sizes),
	}
}

// rowTime is the fake execution function every fleet test shares: a
// pure function of the row index, like the real simulator.
func rowTime(idx int) float64 { return float64(idx) + 0.5 }

// mergeSink collects merged rows like the daemon's journal does.
type mergeSink struct {
	mu   sync.Mutex
	rows map[int]float64
}

func newMergeSink() *mergeSink { return &mergeSink{rows: make(map[int]float64)} }

func (s *mergeSink) OnRows(rows []core.RowTime) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range rows {
		s.rows[r.Index] = r.TimeSec
	}
	return nil
}

func (s *mergeSink) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.rows)
}

// startSweep runs RunSweep in a goroutine and returns the error channel.
func startSweep(ctx context.Context, c *Coordinator, spec SweepSpec, hooks SweepHooks) chan error {
	done := make(chan error, 1)
	go func() { done <- c.RunSweep(ctx, 1, spec, hooks) }()
	return done
}

// executeChunk answers one lease like a correct worker would. Errors
// report via t.Error so it is safe from worker goroutines.
func executeChunk(t *testing.T, c *Coordinator, id string, epoch int64, lease LeaseResponse) {
	t.Helper()
	rows := make([]ResultRow, len(lease.Indices))
	for i, idx := range lease.Indices {
		rows[i] = ResultRow{Index: idx, TimeSec: rowTime(idx)}
	}
	resp, err := c.results(id, resultsRequest{Epoch: epoch, Sweep: lease.Sweep, Chunk: lease.Chunk, Rows: rows})
	if err != nil {
		t.Errorf("results: %v", err)
		return
	}
	if !resp.Accepted {
		t.Errorf("results rejected: %s", resp.Reason)
	}
}

// leaseWait retries until a chunk is granted — RunSweep registers the
// sweep asynchronously, so the first lease request can race it.
func leaseWait(t *testing.T, c *Coordinator, id string, epoch int64) LeaseResponse {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		lease, err := c.lease(id, epoch)
		if err != nil {
			t.Fatalf("lease: %v", err)
		}
		if lease.Lease {
			return lease
		}
		if time.Now().After(deadline) {
			t.Fatal("no chunk granted within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// drain leases until the sweep has nothing pending, executing every
// granted chunk.
func drain(t *testing.T, c *Coordinator, id string, epoch int64) {
	t.Helper()
	for {
		lease, err := c.lease(id, epoch)
		if err != nil {
			t.Fatalf("lease: %v", err)
		}
		if !lease.Lease {
			return
		}
		executeChunk(t, c, id, epoch, lease)
	}
}

// A sweep sharded across two workers merges every row exactly once, and
// known (already-journaled) rows are never dispatched.
func TestSweepShardsAndSkipsKnownRows(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCoordinator(Options{LeaseTTL: time.Second, ChunkRows: 4, Obs: reg})
	spec := testSpec(19)
	sink := newMergeSink()
	// Rows 0 and 7 are already journaled.
	known := map[int]float64{0: rowTime(0), 7: rowTime(7)}
	done := startSweep(context.Background(), c, spec, SweepHooks{
		Known:  func(i int) (float64, bool) { s, ok := known[i]; return s, ok },
		OnRows: sink.OnRows,
	})

	a, err := c.register("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.register("b")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, w := range []RegisterResponse{a, b} {
		wg.Add(1)
		go func(w RegisterResponse) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				lease, err := c.lease(w.ID, w.Epoch)
				if err != nil {
					t.Errorf("lease: %v", err)
					return
				}
				if !lease.Lease {
					time.Sleep(time.Millisecond)
					continue
				}
				executeChunk(t, c, w.ID, w.Epoch, lease)
			}
		}(w)
	}
	if err := <-done; err != nil {
		t.Fatalf("sweep: %v", err)
	}
	close(stop)
	wg.Wait()
	if sink.len() != 17 {
		t.Fatalf("merged %d rows, want 17 (19 minus 2 known)", sink.len())
	}
	if _, ok := sink.rows[0]; ok {
		t.Fatal("known row 0 was re-dispatched")
	}
	for idx, sec := range sink.rows {
		if sec != rowTime(idx) {
			t.Fatalf("row %d merged %v, want %v", idx, sec, rowTime(idx))
		}
	}
	if got := reg.Counter("fleet.rows.merged").Value(); got != 17 {
		t.Fatalf("fleet.rows.merged = %d, want 17", got)
	}
	if got := reg.Counter("fleet.workers.registered").Value(); got != 2 {
		t.Fatalf("fleet.workers.registered = %d, want 2", got)
	}
}

// A worker that leases a chunk and then goes silent loses it: the lease
// expires after the TTL and the chunk requeues to a live worker. The
// dead worker's late results are rejected, not double-merged.
func TestLeaseExpiryRequeuesChunk(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCoordinator(Options{LeaseTTL: 80 * time.Millisecond, ChunkRows: 4, Obs: reg})
	spec := testSpec(8)
	sink := newMergeSink()
	done := startSweep(context.Background(), c, spec, SweepHooks{OnRows: sink.OnRows})

	dead, err := c.register("dead")
	if err != nil {
		t.Fatal(err)
	}
	lease := leaseWait(t, c, dead.ID, dead.Epoch)
	// The dead worker never heartbeats again. A live worker drains the
	// sweep; it can only finish once the dead worker's chunk requeues.
	live, err := c.register("live")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sinkDone := false; !sinkDone; {
		l, err := c.lease(live.ID, live.Epoch)
		if err != nil {
			t.Fatal(err)
		}
		if l.Lease {
			executeChunk(t, c, live.ID, live.Epoch, l)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("sweep: %v", err)
			}
			sinkDone = true
		default:
			if time.Now().After(deadline) {
				t.Fatal("sweep did not finish after lease expiry")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if reg.Counter("fleet.leases.expired").Value() < 1 {
		t.Fatal("no lease expired")
	}
	if reg.Counter("fleet.leases.requeued").Value() < 1 {
		t.Fatal("no lease requeued")
	}
	if reg.Counter("fleet.workers.lost").Value() < 1 {
		t.Fatal("dead worker not marked lost")
	}
	if sink.len() != 8 {
		t.Fatalf("merged %d rows, want 8", sink.len())
	}

	// The dead worker wakes up and posts its stale chunk: rejected —
	// the sweep is gone, and its rows must not merge twice.
	rows := make([]ResultRow, len(lease.Indices))
	for i, idx := range lease.Indices {
		rows[i] = ResultRow{Index: idx, TimeSec: rowTime(idx)}
	}
	resp, _ := c.results(dead.ID, resultsRequest{Epoch: dead.Epoch, Sweep: lease.Sweep, Chunk: lease.Chunk, Rows: rows})
	if resp.Accepted {
		t.Fatal("stale results accepted after lease expiry")
	}
	if reg.Counter("fleet.results.rejected").Value() < 1 {
		t.Fatal("rejection not counted")
	}
}

// Re-registering a worker name bumps its epoch and fences the old
// process out: its leases revoke, and both its lease requests and its
// results are rejected with the stale-epoch error.
func TestZombieEpochFencing(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCoordinator(Options{LeaseTTL: time.Second, ChunkRows: 4, Obs: reg})
	spec := testSpec(8)
	sink := newMergeSink()
	done := startSweep(context.Background(), c, spec, SweepHooks{OnRows: sink.OnRows})

	old, err := c.register("w")
	if err != nil {
		t.Fatal(err)
	}
	lease := leaseWait(t, c, old.ID, old.Epoch)

	// The process restarts under the same name before the old one dies:
	// epoch bumps, the old lease revokes instantly.
	cur, err := c.register("w")
	if err != nil {
		t.Fatal(err)
	}
	if cur.Epoch != old.Epoch+1 {
		t.Fatalf("epoch = %d, want %d", cur.Epoch, old.Epoch+1)
	}
	if reg.Counter("fleet.leases.requeued").Value() < 1 {
		t.Fatal("old epoch's lease not revoked on re-register")
	}

	// The zombie's requests all bounce off the fence.
	if _, err := c.lease(old.ID, old.Epoch); !errors.Is(err, errStaleEpoch) {
		t.Fatalf("zombie lease error = %v, want errStaleEpoch", err)
	}
	rows := make([]ResultRow, len(lease.Indices))
	for i, idx := range lease.Indices {
		rows[i] = ResultRow{Index: idx, TimeSec: rowTime(idx)}
	}
	if _, err := c.results(old.ID, resultsRequest{Epoch: old.Epoch, Sweep: lease.Sweep, Chunk: lease.Chunk, Rows: rows}); !errors.Is(err, errStaleEpoch) {
		t.Fatalf("zombie results error = %v, want errStaleEpoch", err)
	}

	drain(t, c, cur.ID, cur.Epoch)
	if err := <-done; err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if sink.len() != 8 {
		t.Fatalf("merged %d rows, want 8 (zombie must not double-merge)", sink.len())
	}
}

// A sweep whose fleet is empty (or died) finishes anyway through the
// local fallback.
func TestLocalFallbackWithNoWorkers(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCoordinator(Options{LeaseTTL: 40 * time.Millisecond, ChunkRows: 4, Obs: reg})
	spec := testSpec(10)
	sink := newMergeSink()
	err := c.RunSweep(context.Background(), 1, spec, SweepHooks{
		OnRows: sink.OnRows,
		RunLocal: func(ctx context.Context, indices []int) ([]core.RowTime, error) {
			rows := make([]core.RowTime, len(indices))
			for i, idx := range indices {
				rows[i] = core.RowTime{Index: idx, TimeSec: rowTime(idx)}
			}
			return rows, nil
		},
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if sink.len() != 10 {
		t.Fatalf("merged %d rows, want 10", sink.len())
	}
	if reg.Counter("fleet.chunks.local").Value() < 1 {
		t.Fatal("local fallback did not run")
	}
}

// Malformed results (wrong indices for the chunk) requeue the chunk
// instead of merging garbage or wedging the sweep.
func TestMalformedResultsRequeue(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCoordinator(Options{LeaseTTL: time.Second, ChunkRows: 4, Obs: reg})
	spec := testSpec(4)
	sink := newMergeSink()
	done := startSweep(context.Background(), c, spec, SweepHooks{OnRows: sink.OnRows})

	w, err := c.register("w")
	if err != nil {
		t.Fatal(err)
	}
	lease := leaseWait(t, c, w.ID, w.Epoch)
	resp, err := c.results(w.ID, resultsRequest{
		Epoch: w.Epoch, Sweep: lease.Sweep, Chunk: lease.Chunk,
		Rows: []ResultRow{{Index: 99, TimeSec: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted {
		t.Fatal("malformed results accepted")
	}
	drain(t, c, w.ID, w.Epoch)
	if err := <-done; err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if sink.len() != 4 {
		t.Fatalf("merged %d rows, want 4", sink.len())
	}
}

// A spec whose MetaHash doesn't match its fields is rejected before any
// chunk is built.
func TestSpecValidation(t *testing.T) {
	c := NewCoordinator(Options{})
	spec := testSpec(4)
	spec.MetaHash = "0000000000000000"
	if err := c.RunSweep(context.Background(), 1, spec, SweepHooks{}); err == nil {
		t.Fatal("mismatched meta hash accepted")
	}
}

// The full HTTP loop: a Worker agent against the coordinator's routes,
// with a fake runner — registration, heartbeats, leases, results, and
// the sweep completing through the agent's own loop.
func TestWorkerAgentOverHTTP(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCoordinator(Options{LeaseTTL: 500 * time.Millisecond, ChunkRows: 4, Obs: reg})
	mux := http.NewServeMux()
	c.Routes(mux, nil)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	spec := testSpec(19)
	sink := newMergeSink()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	done := startSweep(ctx, c, spec, SweepHooks{OnRows: sink.OnRows})

	wctx, stopWorker := context.WithCancel(ctx)
	defer stopWorker()
	w := NewWorker(WorkerOptions{
		Coordinator: ts.URL,
		Name:        "httpw",
		NewRunner: func(spec SweepSpec, parallelism int) (RunnerFunc, error) {
			if err := spec.Validate(); err != nil {
				return nil, err
			}
			return func(ctx context.Context, indices []int) ([]ResultRow, error) {
				rows := make([]ResultRow, len(indices))
				for i, idx := range indices {
					rows[i] = ResultRow{Index: idx, TimeSec: rowTime(idx)}
				}
				return rows, nil
			}, nil
		},
	})
	workerDone := make(chan error, 1)
	go func() { workerDone <- w.Run(wctx) }()

	if err := <-done; err != nil {
		t.Fatalf("sweep: %v", err)
	}
	stopWorker()
	if err := <-workerDone; err != nil {
		t.Fatalf("worker: %v", err)
	}
	if sink.len() != 19 {
		t.Fatalf("merged %d rows, want 19", sink.len())
	}
	// The registry reflects the agent.
	ws := c.Workers()
	if len(ws) != 1 || ws[0].ID != "httpw" {
		t.Fatalf("workers = %+v, want one 'httpw'", ws)
	}
}

// LiveWorkers tracks heartbeat recency: a worker counts while beating
// and stops counting once it has been silent past the TTL.
func TestLiveWorkers(t *testing.T) {
	c := NewCoordinator(Options{LeaseTTL: 60 * time.Millisecond})
	if got := c.LiveWorkers(); got != 0 {
		t.Fatalf("LiveWorkers = %d, want 0", got)
	}
	w, err := c.register("w")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.LiveWorkers(); got != 1 {
		t.Fatalf("LiveWorkers = %d, want 1", got)
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.LiveWorkers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("silent worker still counted live")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// A heartbeat resurrects it.
	if err := c.heartbeat(w.ID, w.Epoch); err != nil {
		t.Fatal(err)
	}
	if got := c.LiveWorkers(); got != 1 {
		t.Fatalf("LiveWorkers after resurrection = %d, want 1", got)
	}
}

// RunSweep must not return success while another chunk's OnRows append
// is still in flight: the last chunk to merge may not be the last chunk
// to post. The first chunk's append stalls while the second chunk lands;
// the sweep may only complete after the stalled append finishes.
func TestSweepWaitsForInFlightMerges(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCoordinator(Options{LeaseTTL: 5 * time.Second, ChunkRows: 4, Obs: reg})
	spec := testSpec(8) // two chunks
	sink := newMergeSink()
	entered := make(chan struct{})
	release := make(chan struct{})
	done := startSweep(context.Background(), c, spec, SweepHooks{
		OnRows: func(rows []core.RowTime) error {
			if rows[0].Index == 0 { // chunk 0's append stalls
				close(entered)
				<-release
			}
			return sink.OnRows(rows)
		},
	})

	w, err := c.register("w")
	if err != nil {
		t.Fatal(err)
	}
	l0 := leaseWait(t, c, w.ID, w.Epoch)
	l1 := leaseWait(t, c, w.ID, w.Epoch)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		executeChunk(t, c, w.ID, w.Epoch, l0) // blocks inside OnRows
	}()
	<-entered
	executeChunk(t, c, w.ID, w.Epoch, l1) // completes normally

	// Chunk 1 merged, but chunk 0's append is still in flight: the sweep
	// must not report success yet.
	select {
	case err := <-done:
		t.Fatalf("RunSweep returned (%v) while a journal append was in flight", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if sink.len() != 8 {
		t.Fatalf("merged %d rows at sweep completion, want 8", sink.len())
	}
	if got := reg.Counter("fleet.rows.merged").Value(); got != 8 {
		t.Fatalf("fleet.rows.merged = %d, want 8", got)
	}
}

// An abandoned sweep (context cancelled) must not invoke OnRows after
// RunSweep returns — the caller closes its journal then. RunSweep waits
// out an append already in flight, and results posted afterwards are
// rejected without running any hook.
func TestNoMergeAfterSweepAbandoned(t *testing.T) {
	c := NewCoordinator(Options{LeaseTTL: 5 * time.Second, ChunkRows: 4})
	spec := testSpec(8) // two chunks
	var returned atomic.Bool
	var merges atomic.Int32
	entered := make(chan struct{})
	release := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := startSweep(ctx, c, spec, SweepHooks{
		OnRows: func(rows []core.RowTime) error {
			if returned.Load() {
				t.Error("OnRows invoked after RunSweep returned")
			}
			merges.Add(1)
			close(entered)
			<-release
			return nil
		},
	})

	w, err := c.register("w")
	if err != nil {
		t.Fatal(err)
	}
	l0 := leaseWait(t, c, w.ID, w.Epoch)
	l1 := leaseWait(t, c, w.ID, w.Epoch)
	rows := func(l LeaseResponse) []ResultRow {
		out := make([]ResultRow, len(l.Indices))
		for i, idx := range l.Indices {
			out[i] = ResultRow{Index: idx, TimeSec: rowTime(idx)}
		}
		return out
	}
	go c.results(w.ID, resultsRequest{Epoch: w.Epoch, Sweep: l0.Sweep, Chunk: l0.Chunk, Rows: rows(l0)})
	<-entered

	// Abandon the sweep while chunk 0's append is still running: RunSweep
	// must wait for it rather than return with a hook in flight.
	cancel()
	select {
	case err := <-done:
		t.Fatalf("RunSweep returned (%v) with an append still in flight", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	err = <-done
	if err == nil {
		t.Fatal("abandoned sweep reported success")
	}
	returned.Store(true)

	// A result landing after the sweep ended is rejected, and its hook
	// never runs.
	resp, err := c.results(w.ID, resultsRequest{Epoch: w.Epoch, Sweep: l1.Sweep, Chunk: l1.Chunk, Rows: rows(l1)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted {
		t.Fatal("results accepted after the sweep was abandoned")
	}
	if got := merges.Load(); got != 1 {
		t.Fatalf("OnRows ran %d times, want 1 (no merge after abandonment)", got)
	}
}

// Anonymous registration must not collide with an explicitly-named
// worker: handing out a taken name would bump its epoch and fence the
// healthy owner out.
func TestAnonymousNameAvoidsCollision(t *testing.T) {
	c := NewCoordinator(Options{})
	w1, err := c.register("w1") // operator-chosen name shadowing the anon pattern
	if err != nil {
		t.Fatal(err)
	}
	anon, err := c.register("")
	if err != nil {
		t.Fatal(err)
	}
	if anon.ID == "w1" {
		t.Fatal("anonymous registration collided with explicit worker w1")
	}
	// The explicit worker's epoch is untouched — it was not re-registered.
	for _, wi := range c.Workers() {
		if wi.ID == "w1" && wi.Epoch != w1.Epoch {
			t.Fatalf("w1 epoch bumped to %d by anonymous registration", wi.Epoch)
		}
	}
	// A second anonymous worker still gets a fresh name.
	anon2, err := c.register("")
	if err != nil {
		t.Fatal(err)
	}
	if anon2.ID == anon.ID || anon2.ID == "w1" {
		t.Fatalf("second anonymous name %q collides", anon2.ID)
	}
}

// A coordinator restart loses the registry: the worker's next request
// 404s and it re-registers while its heartbeat goroutine keeps running —
// this must be race-free (run under -race) and the worker must then
// drain a sweep on the new coordinator instead of exiting.
func TestWorkerReregistersAfterCoordinatorRestart(t *testing.T) {
	opts := Options{LeaseTTL: 200 * time.Millisecond, ChunkRows: 4}
	c1 := NewCoordinator(opts)
	c2 := NewCoordinator(opts)
	mux1, mux2 := http.NewServeMux(), http.NewServeMux()
	c1.Routes(mux1, nil)
	c2.Routes(mux2, nil)
	var cur atomic.Pointer[http.ServeMux]
	cur.Store(mux1)
	ts := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		cur.Load().ServeHTTP(rw, r)
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	w := NewWorker(WorkerOptions{
		Coordinator: ts.URL,
		Name:        "resurrect",
		NewRunner: func(spec SweepSpec, parallelism int) (RunnerFunc, error) {
			return func(ctx context.Context, indices []int) ([]ResultRow, error) {
				rows := make([]ResultRow, len(indices))
				for i, idx := range indices {
					rows[i] = ResultRow{Index: idx, TimeSec: rowTime(idx)}
				}
				return rows, nil
			}, nil
		},
	})
	workerDone := make(chan error, 1)
	go func() { workerDone <- w.Run(ctx) }()

	deadline := time.Now().Add(5 * time.Second)
	for c1.LiveWorkers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered with the first coordinator")
		}
		time.Sleep(time.Millisecond)
	}
	// Let the heartbeat loop run a few beats against c1, then "restart"
	// the coordinator: same address, empty registry.
	time.Sleep(150 * time.Millisecond)
	cur.Store(mux2)

	sink := newMergeSink()
	done := startSweep(ctx, c2, testSpec(12), SweepHooks{OnRows: sink.OnRows})
	if err := <-done; err != nil {
		t.Fatalf("sweep on restarted coordinator: %v", err)
	}
	if sink.len() != 12 {
		t.Fatalf("merged %d rows, want 12", sink.len())
	}
	select {
	case err := <-workerDone:
		t.Fatalf("worker exited during coordinator restart: %v", err)
	default:
	}
	cancel()
	if err := <-workerDone; err != nil {
		t.Fatalf("worker: %v", err)
	}
}

// A stale-epoch heartbeat that raced the worker's own re-registration is
// not fatal: the loop notices the identity it sent has been replaced and
// carries on. A 409 on the *current* identity remains fatal.
func TestHeartbeatRacedSupersessionNotFatal(t *testing.T) {
	var beats atomic.Int32
	gate := make(chan struct{})
	var gateOnce sync.Once
	arrived := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		n := beats.Add(1)
		if n == 1 {
			// Hold the first beat mid-flight while the "re-registration"
			// lands, then reject it as stale.
			gateOnce.Do(func() { close(arrived) })
			<-gate
		}
		rw.WriteHeader(http.StatusConflict)
	}))
	defer ts.Close()

	w := NewWorker(WorkerOptions{Coordinator: ts.URL})
	w.mu.Lock()
	w.id, w.epoch, w.beat = "w", 1, 10*time.Millisecond
	w.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	fatal := make(chan error, 1)
	go w.heartbeatLoop(ctx, fatal)

	<-arrived
	// Run's loop re-registers (new epoch) while beat #1 is in flight.
	w.mu.Lock()
	w.epoch = 2
	w.mu.Unlock()
	close(gate)

	// Beat #1's 409 carried epoch 1, already replaced: tolerated. Beat #2
	// sends epoch 2, the current identity, and its 409 is a genuine fence.
	select {
	case err := <-fatal:
		if !errors.Is(err, ErrSuperseded) {
			t.Fatalf("fatal = %v, want ErrSuperseded", err)
		}
	case <-ctx.Done():
		t.Fatal("heartbeat loop never declared the genuine supersession fatal")
	}
	if beats.Load() < 2 {
		t.Fatalf("loop died on the raced first beat (%d beats sent)", beats.Load())
	}
}

// Worker names are validated like registry model names: path-safe only.
func TestWorkerNameValidation(t *testing.T) {
	c := NewCoordinator(Options{})
	if _, err := c.register("../evil"); err == nil {
		t.Fatal("path-traversal name accepted")
	}
	if _, err := c.register(fmt.Sprintf("%065d", 0)); err == nil {
		t.Fatal("overlong name accepted")
	}
	r, err := c.register("")
	if err != nil || r.ID == "" {
		t.Fatalf("anonymous registration = %+v, %v", r, err)
	}
}
