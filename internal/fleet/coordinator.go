package fleet

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Options configure the coordinator. The zero value takes the defaults
// noted on each field.
type Options struct {
	// LeaseTTL is how long a granted chunk stays owned past the owner's
	// last heartbeat before it expires and requeues; it doubles as the
	// worker-liveness horizon (default 10s).
	LeaseTTL time.Duration
	// ChunkRows bounds the rows per leased chunk — the fleet's unit of
	// loss when a worker dies (default 64, matching the local
	// checkpoint-batch granularity).
	ChunkRows int
	// RetryWait is the wait the coordinator suggests to an idle worker
	// whose lease request found no pending chunk (default 250ms).
	RetryWait time.Duration
	// Obs receives the fleet counters; nil runs without metrics.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 10 * time.Second
	}
	if o.ChunkRows <= 0 {
		o.ChunkRows = 64
	}
	if o.RetryWait <= 0 {
		o.RetryWait = 250 * time.Millisecond
	}
	return o
}

// SweepHooks customize one RunSweep call; the coordinator calls them
// outside its own lock.
type SweepHooks struct {
	// Known reports a row's already-journaled time — resumed rows are
	// never re-dispatched, exactly like the local collector.
	Known func(index int) (timeSec float64, ok bool)
	// OnRows observes each merged chunk's rows, index-ascending within
	// the chunk — the journal append. Rows carry only Index and TimeSec
	// (the configuration is reproducible from the spec). An error fails
	// the sweep. Called from handler goroutines concurrently;
	// implementations must synchronize (the journal does).
	OnRows func(rows []core.RowTime) error
	// Progress receives the cumulative completed row count (known rows
	// included) after every merged chunk, and once up front.
	Progress func(done, total int)
	// RunLocal executes a chunk on the coordinator's own executor — the
	// degraded path taken only while no live workers exist, so a sweep
	// whose whole fleet died still finishes. Nil disables the fallback.
	RunLocal func(ctx context.Context, indices []int) ([]core.RowTime, error)
}

// chunk lease states.
const (
	chunkPending = iota
	chunkLeased
	chunkDone
)

type chunkState struct {
	id      int
	indices []int
	state   int
	worker  string // lease owner ("" when pending; localWorker for the fallback)
	epoch   int64  // owner's registration epoch at grant time
	expiry  time.Time
}

// localWorker owns fallback leases; it never expires (the executing
// goroutine lives or dies with the sweep itself).
const localWorker = "(local)"

type sweepState struct {
	id        int64
	spec      SweepSpec
	hooks     SweepHooks
	chunks    []*chunkState
	pending   []int // chunk IDs awaiting a lease, FIFO
	remaining int   // chunks whose rows have not finished merging (OnRows included)
	knownRows int
	mergedRows int
	totalRows  int
	closed     bool // no further hook may start (completed, failed, or abandoned)
	err        error
	done       chan struct{}
	// hookWG counts in-flight finishRows hook windows; removeSweep waits
	// on it so no OnRows/Progress call survives past RunSweep's return.
	hookWG sync.WaitGroup
}

type workerState struct {
	id       string
	epoch    int64
	lastBeat time.Time
	lost     bool
}

// Coordinator is the fleet control plane: the worker registry, the lease
// state machine, and the per-sweep chunk queues. One coordinator serves
// any number of concurrent sweeps; workers lease from whichever sweep
// has pending chunks, oldest sweep first.
type Coordinator struct {
	opt Options

	mu         sync.Mutex
	workers    map[string]*workerState
	sweeps     map[int64]*sweepState
	sweepOrder []int64
	nextAnon   int64

	registered, lost                     *obs.Counter
	granted, expired, requeued           *obs.Counter
	merged, rejected, localChunks        *obs.Counter
}

// NewCoordinator returns a coordinator with no workers and no sweeps.
func NewCoordinator(opt Options) *Coordinator {
	opt = opt.withDefaults()
	reg := opt.Obs
	return &Coordinator{
		opt:         opt,
		workers:     make(map[string]*workerState),
		sweeps:      make(map[int64]*sweepState),
		registered:  reg.Counter("fleet.workers.registered"),
		lost:        reg.Counter("fleet.workers.lost"),
		granted:     reg.Counter("fleet.leases.granted"),
		expired:     reg.Counter("fleet.leases.expired"),
		requeued:    reg.Counter("fleet.leases.requeued"),
		merged:      reg.Counter("fleet.rows.merged"),
		rejected:    reg.Counter("fleet.results.rejected"),
		localChunks: reg.Counter("fleet.chunks.local"),
	}
}

// LiveWorkers reports how many registered workers heartbeated within the
// lease TTL — the daemon's dispatch predicate: sweeps shard to the fleet
// only when someone is there to execute them.
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.liveWorkersLocked(time.Now())
}

func (c *Coordinator) liveWorkersLocked(now time.Time) int {
	n := 0
	for _, w := range c.workers {
		if now.Sub(w.lastBeat) <= c.opt.LeaseTTL {
			n++
		}
	}
	return n
}

// reapLocked advances the state machine's clock: leases whose owner
// stopped heartbeating expire and requeue, and silent workers flip to
// lost. Called at the top of every mutating handler and from RunSweep's
// ticker, so expiry needs no background goroutine of its own.
func (c *Coordinator) reapLocked(now time.Time) {
	for _, w := range c.workers {
		if !w.lost && now.Sub(w.lastBeat) > c.opt.LeaseTTL {
			w.lost = true
			c.lost.Inc()
		}
	}
	for _, id := range c.sweepOrder {
		sw := c.sweeps[id]
		for _, ch := range sw.chunks {
			if ch.state == chunkLeased && ch.worker != localWorker && now.After(ch.expiry) {
				ch.state = chunkPending
				ch.worker = ""
				sw.pending = append(sw.pending, ch.id)
				c.expired.Inc()
				c.requeued.Inc()
			}
		}
	}
}

// register adds (or re-registers) a worker. Re-registering an existing
// name bumps its epoch — the fence that rejects the old process's late
// results — and requeues any chunks the old epoch still held.
func (c *Coordinator) register(name string) (RegisterResponse, error) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(now)
	if name == "" {
		// Skip generated names an operator already claimed explicitly —
		// colliding would bump that worker's epoch and fence it out.
		for {
			c.nextAnon++
			name = fmt.Sprintf("w%d", c.nextAnon)
			if _, taken := c.workers[name]; !taken {
				break
			}
		}
	}
	if err := validWorkerName(name); err != nil {
		return RegisterResponse{}, err
	}
	w, ok := c.workers[name]
	if !ok {
		w = &workerState{id: name}
		c.workers[name] = w
	}
	w.epoch++
	w.lastBeat = now
	w.lost = false
	c.requeueWorkerLocked(name)
	c.registered.Inc()
	return RegisterResponse{
		ID:          name,
		Epoch:       w.epoch,
		HeartbeatMS: (c.opt.LeaseTTL / 4).Milliseconds(),
		LeaseTTLMS:  c.opt.LeaseTTL.Milliseconds(),
	}, nil
}

// requeueWorkerLocked returns every chunk leased to name to its sweep's
// pending queue (register-time revocation of a previous epoch's leases).
func (c *Coordinator) requeueWorkerLocked(name string) {
	for _, id := range c.sweepOrder {
		sw := c.sweeps[id]
		for _, ch := range sw.chunks {
			if ch.state == chunkLeased && ch.worker == name {
				ch.state = chunkPending
				ch.worker = ""
				sw.pending = append(sw.pending, ch.id)
				c.requeued.Inc()
			}
		}
	}
}

func validWorkerName(name string) error {
	if len(name) > 64 {
		return fmt.Errorf("fleet: worker name longer than 64 bytes")
	}
	for _, r := range name {
		if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '-' || r == '_' || r == '.') {
			return fmt.Errorf("fleet: worker name %q: use letters, digits, '-', '_', '.'", name)
		}
	}
	return nil
}

// protocol errors mapped to HTTP statuses by the handlers.
var (
	errUnknownWorker = fmt.Errorf("fleet: unknown worker (register first)")
	errStaleEpoch    = fmt.Errorf("fleet: stale epoch (a newer registration superseded this worker)")
)

// checkWorkerLocked validates a worker's identity and epoch and counts
// the request as a liveness signal.
func (c *Coordinator) checkWorkerLocked(id string, epoch int64, now time.Time) (*workerState, error) {
	w, ok := c.workers[id]
	if !ok {
		return nil, errUnknownWorker
	}
	if epoch != w.epoch {
		return nil, errStaleEpoch
	}
	w.lastBeat = now
	w.lost = false
	return w, nil
}

// heartbeat renews a worker's liveness and extends every lease its
// current epoch holds.
func (c *Coordinator) heartbeat(id string, epoch int64) error {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(now)
	if _, err := c.checkWorkerLocked(id, epoch, now); err != nil {
		return err
	}
	for _, sid := range c.sweepOrder {
		for _, ch := range c.sweeps[sid].chunks {
			if ch.state == chunkLeased && ch.worker == id && ch.epoch == epoch {
				ch.expiry = now.Add(c.opt.LeaseTTL)
			}
		}
	}
	return nil
}

// lease grants the oldest sweep's next pending chunk to the worker, or
// tells it when to ask again.
func (c *Coordinator) lease(id string, epoch int64) (LeaseResponse, error) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(now)
	if _, err := c.checkWorkerLocked(id, epoch, now); err != nil {
		return LeaseResponse{}, err
	}
	for _, sid := range c.sweepOrder {
		sw := c.sweeps[sid]
		if sw.closed || len(sw.pending) == 0 {
			continue
		}
		ch := sw.chunks[sw.pending[0]]
		sw.pending = sw.pending[1:]
		ch.state = chunkLeased
		ch.worker = id
		ch.epoch = epoch
		ch.expiry = now.Add(c.opt.LeaseTTL)
		c.granted.Inc()
		return LeaseResponse{
			Lease:   true,
			Sweep:   sw.id,
			Chunk:   ch.id,
			Indices: ch.indices,
			Spec:    sw.spec,
		}, nil
	}
	return LeaseResponse{Lease: false, RetryMS: c.opt.RetryWait.Milliseconds()}, nil
}

// results merges a completed chunk's rows, after running the full fence:
// the worker must still be the epoch that leased the chunk, and the
// lease must not have expired and requeued (or completed) elsewhere. A
// rejection is terminal for these rows — whatever superseded the lease
// owns the chunk now.
func (c *Coordinator) results(id string, req resultsRequest) (resultsResponse, error) {
	now := time.Now()
	c.mu.Lock()
	c.reapLocked(now)
	if _, err := c.checkWorkerLocked(id, req.Epoch, now); err != nil {
		c.mu.Unlock()
		c.rejected.Inc()
		return resultsResponse{Accepted: false, Reason: err.Error()}, err
	}
	sw, ok := c.sweeps[req.Sweep]
	if !ok || sw.closed {
		c.mu.Unlock()
		c.rejected.Inc()
		return resultsResponse{Accepted: false, Reason: "unknown sweep (finished or abandoned)"}, nil
	}
	if req.Chunk < 0 || req.Chunk >= len(sw.chunks) {
		c.mu.Unlock()
		c.rejected.Inc()
		return resultsResponse{Accepted: false, Reason: "unknown chunk"}, nil
	}
	ch := sw.chunks[req.Chunk]
	if ch.state != chunkLeased || ch.worker != id || ch.epoch != req.Epoch {
		c.mu.Unlock()
		c.rejected.Inc()
		return resultsResponse{Accepted: false, Reason: "lease not held (expired, requeued, or completed elsewhere)"}, nil
	}
	rows, err := chunkRows(ch, req.Rows)
	if err != nil {
		// Malformed rows are the worker's bug, not a fence event: requeue
		// the chunk so a correct worker (or the local fallback) redoes it.
		ch.state = chunkPending
		ch.worker = ""
		sw.pending = append(sw.pending, ch.id)
		c.requeued.Inc()
		c.mu.Unlock()
		c.rejected.Inc()
		return resultsResponse{Accepted: false, Reason: err.Error()}, nil
	}
	c.completeChunkLocked(sw, ch)
	c.mu.Unlock()
	c.finishRows(sw, rows)
	return resultsResponse{Accepted: true}, nil
}

// chunkRows validates a results payload against its chunk: exactly the
// leased indices, in order, with finite positive times.
func chunkRows(ch *chunkState, in []ResultRow) ([]core.RowTime, error) {
	if len(in) != len(ch.indices) {
		return nil, fmt.Errorf("fleet: chunk %d wants %d rows, got %d", ch.id, len(ch.indices), len(in))
	}
	rows := make([]core.RowTime, len(in))
	for i, r := range in {
		if r.Index != ch.indices[i] {
			return nil, fmt.Errorf("fleet: chunk %d row %d: index %d, want %d", ch.id, i, r.Index, ch.indices[i])
		}
		if r.TimeSec <= 0 || math.IsNaN(r.TimeSec) || math.IsInf(r.TimeSec, 0) {
			return nil, fmt.Errorf("fleet: chunk %d row %d returned time %v", ch.id, r.Index, r.TimeSec)
		}
		rows[i] = core.RowTime{Index: r.Index, TimeSec: r.TimeSec}
	}
	return rows, nil
}

// completeChunkLocked transitions a leased chunk to done so the reaper
// can no longer requeue it; the sweep's row accounting waits for
// finishRows, after the rows actually merge. Caller holds c.mu.
func (c *Coordinator) completeChunkLocked(sw *sweepState, ch *chunkState) {
	ch.state = chunkDone
}

// finishRows runs the sweep hooks for a completed chunk outside the
// coordinator lock (the journal append fsyncs) and closes the sweep when
// its last chunk lands. The chunk only counts as done — and the sweep
// only completes — after its OnRows append succeeded, so RunSweep can
// never return success while a journal write is still in flight. The
// whole hook window registers with sw.hookWG so removeSweep can wait out
// stragglers before RunSweep returns.
func (c *Coordinator) finishRows(sw *sweepState, rows []core.RowTime) {
	c.mu.Lock()
	if sw.closed {
		// Failed or abandoned: the journal may already be closed, so no
		// hook may start. The rows re-run on resume.
		c.mu.Unlock()
		return
	}
	sw.hookWG.Add(1)
	c.mu.Unlock()
	defer sw.hookWG.Done()

	if sw.hooks.OnRows != nil {
		if err := sw.hooks.OnRows(rows); err != nil {
			c.failSweep(sw, fmt.Errorf("fleet: merging rows: %w", err))
			return
		}
	}
	c.mu.Lock()
	if sw.closed {
		// The sweep failed (or was abandoned) while this append ran;
		// nothing left to report.
		c.mu.Unlock()
		return
	}
	sw.remaining--
	sw.mergedRows += len(rows)
	done := sw.knownRows + sw.mergedRows
	last := sw.remaining == 0
	if last {
		sw.closed = true
	}
	c.mu.Unlock()
	c.merged.Add(int64(len(rows)))
	if sw.hooks.Progress != nil {
		sw.hooks.Progress(done, sw.totalRows)
	}
	if last {
		close(sw.done)
	}
}

func (c *Coordinator) failSweep(sw *sweepState, err error) {
	c.mu.Lock()
	if sw.closed {
		c.mu.Unlock()
		return
	}
	sw.closed = true
	sw.err = err
	c.mu.Unlock()
	close(sw.done)
}

// RunSweep shards the sweep's not-yet-known rows into chunks, serves
// them to whatever workers lease them, and returns once every row has
// merged (nil) or the sweep failed. Rows land through hooks.OnRows; the
// caller owns the journal and builds the dataset afterwards. Cancelling
// ctx abandons the sweep: merged rows are already journaled, so a
// restarted job resumes exactly like the local collector.
func (c *Coordinator) RunSweep(ctx context.Context, id int64, spec SweepSpec, hooks SweepHooks) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	known := 0
	var pending []int
	for i := 0; i < spec.NTrain; i++ {
		if hooks.Known != nil {
			if _, ok := hooks.Known(i); ok {
				known++
				continue
			}
		}
		pending = append(pending, i)
	}
	if hooks.Progress != nil {
		hooks.Progress(known, spec.NTrain)
	}
	if len(pending) == 0 {
		return nil
	}

	sw := &sweepState{
		id:        id,
		spec:      spec,
		hooks:     hooks,
		knownRows: known,
		totalRows: spec.NTrain,
		done:      make(chan struct{}),
	}
	for lo := 0; lo < len(pending); lo += c.opt.ChunkRows {
		hi := lo + c.opt.ChunkRows
		if hi > len(pending) {
			hi = len(pending)
		}
		ch := &chunkState{id: len(sw.chunks), indices: pending[lo:hi]}
		sw.chunks = append(sw.chunks, ch)
		sw.pending = append(sw.pending, ch.id)
	}
	sw.remaining = len(sw.chunks)

	c.mu.Lock()
	if _, dup := c.sweeps[id]; dup {
		c.mu.Unlock()
		return fmt.Errorf("fleet: sweep %d already running", id)
	}
	c.sweeps[id] = sw
	c.sweepOrder = append(c.sweepOrder, id)
	sort.Slice(c.sweepOrder, func(i, k int) bool { return c.sweepOrder[i] < c.sweepOrder[k] })
	c.mu.Unlock()
	defer c.removeSweep(id)

	// The ticker drives lease expiry when no HTTP traffic does, and the
	// no-live-workers local fallback.
	tick := c.opt.LeaseTTL / 4
	if tick > time.Second {
		tick = time.Second
	}
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return fmt.Errorf("fleet: sweep %d interrupted: %w", id, ctx.Err())
		case <-sw.done:
			c.mu.Lock()
			err := sw.err
			c.mu.Unlock()
			return err
		case <-ticker.C:
			c.mu.Lock()
			c.reapLocked(time.Now())
			c.mu.Unlock()
			c.runLocalFallback(ctx, sw)
		}
	}
}

// runLocalFallback executes pending chunks on the coordinator's own
// executor while no live workers exist — the whole fleet died mid-sweep
// and nobody is left to lease the requeued chunks. One chunk at a time;
// a worker registering mid-fallback takes the queue back at the next
// iteration.
func (c *Coordinator) runLocalFallback(ctx context.Context, sw *sweepState) {
	if sw.hooks.RunLocal == nil {
		return
	}
	for ctx.Err() == nil {
		now := time.Now()
		c.mu.Lock()
		c.reapLocked(now)
		if sw.closed || len(sw.pending) == 0 || c.liveWorkersLocked(now) > 0 {
			c.mu.Unlock()
			return
		}
		ch := sw.chunks[sw.pending[0]]
		sw.pending = sw.pending[1:]
		ch.state = chunkLeased
		ch.worker = localWorker
		c.mu.Unlock()

		rows, err := sw.hooks.RunLocal(ctx, ch.indices)
		if err != nil {
			if ctx.Err() != nil {
				// Interrupted, not failed: requeue so a resumed sweep (or a
				// late worker) picks the chunk up.
				c.mu.Lock()
				ch.state = chunkPending
				ch.worker = ""
				sw.pending = append(sw.pending, ch.id)
				c.mu.Unlock()
				return
			}
			c.failSweep(sw, err)
			return
		}
		c.mu.Lock()
		c.completeChunkLocked(sw, ch)
		c.mu.Unlock()
		c.localChunks.Inc()
		c.finishRows(sw, rows)
	}
}

// removeSweep retires a sweep as RunSweep returns: it closes the sweep
// so no new hook window can open (a results handler that already looked
// the sweep up before the delete must not append to a journal the caller
// is about to close), then waits out any hook still in flight.
func (c *Coordinator) removeSweep(id int64) {
	c.mu.Lock()
	sw := c.sweeps[id]
	delete(c.sweeps, id)
	for i, sid := range c.sweepOrder {
		if sid == id {
			c.sweepOrder = append(c.sweepOrder[:i], c.sweepOrder[i+1:]...)
			break
		}
	}
	if sw != nil {
		sw.closed = true
	}
	c.mu.Unlock()
	if sw != nil {
		sw.hookWG.Wait()
	}
}

// WorkerInfo is one registry entry as reported by GET /workers.
type WorkerInfo struct {
	ID       string `json:"id"`
	Epoch    int64  `json:"epoch"`
	Live     bool   `json:"live"`
	Leases   int    `json:"leases"`
	LastBeat int64  `json:"last_beat_unix"`
}

// Workers lists the registry, sorted by id.
func (c *Coordinator) Workers() []WorkerInfo {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(now)
	out := make([]WorkerInfo, 0, len(c.workers))
	for _, w := range c.workers {
		leases := 0
		for _, sid := range c.sweepOrder {
			for _, ch := range c.sweeps[sid].chunks {
				if ch.state == chunkLeased && ch.worker == w.id {
					leases++
				}
			}
		}
		out = append(out, WorkerInfo{
			ID:       w.id,
			Epoch:    w.epoch,
			Live:     !w.lost,
			Leases:   leases,
			LastBeat: w.lastBeat.Unix(),
		})
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}
