package fleet

import (
	"encoding/json"
	"errors"
	"net/http"
)

// Routes mounts the fleet protocol on mux. wrap decorates each handler —
// the daemon threads its auth middleware through here so the fleet's
// mutating endpoints honor the same shared secret as job submission;
// nil mounts the handlers bare.
func (c *Coordinator) Routes(mux *http.ServeMux, wrap func(http.Handler) http.Handler) {
	if wrap == nil {
		wrap = func(h http.Handler) http.Handler { return h }
	}
	mux.Handle("POST /workers/register", wrap(http.HandlerFunc(c.handleRegister)))
	mux.Handle("POST /workers/{id}/heartbeat", wrap(http.HandlerFunc(c.handleHeartbeat)))
	mux.Handle("POST /workers/{id}/lease", wrap(http.HandlerFunc(c.handleLease)))
	mux.Handle("POST /workers/{id}/results", wrap(http.HandlerFunc(c.handleResults)))
	mux.Handle("GET /workers", http.HandlerFunc(c.handleWorkers))
}

func fleetJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func fleetError(w http.ResponseWriter, status int, err error) {
	fleetJSON(w, status, map[string]string{"error": err.Error()})
}

// workerStatus maps the coordinator's fence errors to HTTP statuses: an
// unknown worker must re-register (404), a stale epoch is a conflict the
// zombie should treat as fatal (409).
func workerStatus(err error) int {
	switch {
	case errors.Is(err, errUnknownWorker):
		return http.StatusNotFound
	case errors.Is(err, errStaleEpoch):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		fleetError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if !decode(w, r, &req) {
		return
	}
	resp, err := c.register(req.Name)
	if err != nil {
		fleetError(w, http.StatusBadRequest, err)
		return
	}
	fleetJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req epochRequest
	if !decode(w, r, &req) {
		return
	}
	if err := c.heartbeat(r.PathValue("id"), req.Epoch); err != nil {
		fleetError(w, workerStatus(err), err)
		return
	}
	fleetJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req epochRequest
	if !decode(w, r, &req) {
		return
	}
	resp, err := c.lease(r.PathValue("id"), req.Epoch)
	if err != nil {
		fleetError(w, workerStatus(err), err)
		return
	}
	fleetJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleResults(w http.ResponseWriter, r *http.Request) {
	var req resultsRequest
	if !decode(w, r, &req) {
		return
	}
	resp, err := c.results(r.PathValue("id"), req)
	if err != nil {
		fleetError(w, workerStatus(err), err)
		return
	}
	// Fence rejections are well-formed protocol answers, not HTTP errors:
	// the worker drops the chunk and leases the next one.
	fleetJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	fleetJSON(w, http.StatusOK, map[string]any{"workers": c.Workers()})
}
