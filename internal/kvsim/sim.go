package kvsim

import (
	"hash/fnv"
	"math"
	"math/rand"

	"repro/internal/conf"
)

// Workload is a YCSB-style request mix against one region server.
type Workload struct {
	// Name labels the workload.
	Name string
	// Ops is the number of operations in the batch being timed.
	Ops int
	// ReadFrac is the fraction of reads (the rest are writes).
	ReadFrac float64
	// RecordKB is the value size.
	RecordKB float64
	// ZipfSkew in [0,1) controls how concentrated the key popularity is
	// (0 = uniform); higher skew means a smaller hot set.
	ZipfSkew float64
}

// ReadHeavy returns YCSB workload B (95% reads).
func ReadHeavy() Workload {
	return Workload{Name: "read-heavy", Ops: 10_000_000, ReadFrac: 0.95, RecordKB: 1, ZipfSkew: 0.8}
}

// WriteHeavy returns a 50/50 update-heavy mix (YCSB A).
func WriteHeavy() Workload {
	return Workload{Name: "write-heavy", Ops: 10_000_000, ReadFrac: 0.5, RecordKB: 1, ZipfSkew: 0.8}
}

// ScanHeavy returns a large-value sequential-leaning mix.
func ScanHeavy() Workload {
	return Workload{Name: "scan-heavy", Ops: 2_000_000, ReadFrac: 0.9, RecordKB: 16, ZipfSkew: 0.4}
}

// Simulator times workload batches on one region server.
type Simulator struct {
	// DiskMBps and DiskSeekMs describe the store's disks.
	DiskMBps   float64
	DiskSeekMs float64
	// Cores is the region server's CPU budget.
	Cores int
	// Seed drives run-to-run noise.
	Seed int64
}

// New returns a simulator with typical spinning-disk region-server
// hardware.
func New(seed int64) *Simulator {
	return &Simulator{DiskMBps: 140, DiskSeekMs: 7, Cores: 16, Seed: seed}
}

// Run times the workload batch against a dataset of datasetMB on-disk
// megabytes under cfg (a Space() configuration) and returns seconds.
// Like the Spark simulator, the result is deterministic in
// (Seed, workload, datasetMB, cfg) — and datasetMB matters, because the
// block-cache hit ratio and compaction depth both scale with it.
func (s *Simulator) Run(w Workload, datasetMB float64, cfg conf.Config) float64 {
	rng := rand.New(rand.NewSource(s.seed(w, datasetMB, cfg)))

	heap := float64(cfg.GetInt(HeapMB))
	cacheMB := heap * cfg.Get(BlockCacheFrac)
	memstoreCap := math.Min(float64(cfg.GetInt(MemstoreFlushSize)), heap*cfg.Get(GlobalMemstoreFrac))

	// Compression properties.
	var ratio, compMBps float64
	switch cfg.GetInt(Compression) {
	case CompressSnappy:
		ratio, compMBps = 0.5, 400
	case CompressGZ:
		ratio, compMBps = 0.35, 60
	default:
		ratio, compMBps = 1.0, math.Inf(1)
	}

	reads := float64(w.Ops) * w.ReadFrac
	writes := float64(w.Ops) - reads
	writtenMB := writes * w.RecordKB / 1024

	// --- Write path --------------------------------------------------------
	// WAL append per write; sync per op unless deferred (group commit).
	// A synchronous hflush to the filesystem pipeline costs ~0.5 ms;
	// deferred flushing group-commits dozens of edits per sync.
	walSyncMs := 0.5
	if cfg.GetBool(DeferredWALFlush) {
		walSyncMs = 0.015
	}
	// Client batching amortizes RPC overhead.
	rpcPerOpMs := 0.02 * 2048 / math.Max(512, cfg.Get(ClientWriteBuffer))
	writeCPUSec := writes * (0.004 + rpcPerOpMs) / 1000
	walSec := writes*walSyncMs/1000 + writtenMB/s.DiskMBps

	// Flushes and size-tiered compaction: write amplification grows with
	// how many tiers the data passes through before reaching max-size
	// files.
	flushes := math.Max(1, writtenMB/memstoreCap)
	tiers := math.Max(1, math.Log(math.Max(2, datasetMB/memstoreCap))/
		math.Log(float64(cfg.GetInt(CompactionThreshold))+1))
	amplification := math.Min(8, tiers)
	compactIOMB := writtenMB * amplification * ratio
	compactSec := compactIOMB*(1/s.DiskMBps+1/s.DiskMBps) + writtenMB*amplification/compMBps/float64(s.Cores)

	// Write stalls: if flushing outpaces compaction, store files pile up
	// to the blocking threshold and writers block.
	steadyFiles := flushes / math.Max(1, float64(cfg.GetInt(CompactionMaxFiles))) * float64(cfg.GetInt(CompactionThreshold))
	blocking := float64(cfg.GetInt(BlockingStoreFiles))
	stallSec := 0.0
	if steadyFiles > blocking {
		stallSec = (steadyFiles - blocking) / blocking * compactSec * 0.5
	}
	// Memstore block multiplier: a small multiplier blocks writes during
	// flush bursts.
	stallSec += flushes * 0.05 * 8 / float64(cfg.GetInt(MemstoreMultiplier))

	// --- Read path -----------------------------------------------------------
	// Hot-set size from the Zipf skew; cache effectiveness compares it to
	// the cache (compressed blocks cache more data when compression on).
	hotMB := datasetMB * math.Pow(0.05, w.ZipfSkew)
	effCache := cacheMB / ratio
	hit := math.Min(0.99, effCache/math.Max(1, hotMB))
	if cfg.GetBool(PrefetchOnOpen) {
		hit = math.Min(0.99, hit*1.05)
	}

	blockKB := float64(cfg.GetInt(BlockSizeKB))
	// Store files a read must consult: bloom filters skip most.
	files := math.Max(1, math.Min(steadyFiles, blocking))
	probes := files
	if cfg.GetInt(BloomFilter) == BloomRow {
		probes = 1 + 0.02*files
	}
	missSec := (s.DiskSeekMs/1000 + blockKB*ratio/1024/s.DiskMBps) * probes
	// Larger blocks waste read bandwidth for point gets but help scans.
	if w.RecordKB < 4 {
		missSec *= 1 + blockKB/512
	}
	decompSec := 0.0
	if ratio < 1 {
		decompSec = blockKB / 1024 / compMBps * probes * 4
	}
	readSec := reads * ((1-hit)*(missSec+decompSec) + 0.00002 + blockKB/1024/2000/1000)

	// --- Concurrency and GC ----------------------------------------------------
	handlers := float64(cfg.GetInt(HandlerCount))
	conc := math.Min(handlers, float64(s.Cores)*4)
	queueFactor := 1 + 4/math.Max(4, conc) // too few handlers serialize
	switchFactor := 1 + math.Max(0, handlers-conc)/600
	occ := math.Min(0.95, cfg.Get(BlockCacheFrac)+cfg.Get(GlobalMemstoreFrac)+0.1)
	gcFactor := 1 + 0.05*occ*occ/(1-occ)*heap/4096

	cpuSec := (writeCPUSec + readSec*0.2) / float64(s.Cores)
	ioSec := walSec + compactSec + stallSec + readSec*0.8
	total := (cpuSec + ioSec) * queueFactor * switchFactor * gcFactor

	// Region splits add brief unavailability for large datasets.
	regions := math.Max(1, datasetMB/float64(cfg.GetInt(RegionMaxFileSize)))
	total += regions * 1.5

	// Run-to-run noise.
	total *= math.Exp(0.04*rng.NormFloat64() - 0.0008)
	return total
}

func (s *Simulator) seed(w Workload, datasetMB float64, cfg conf.Config) int64 {
	h := fnv.New64a()
	h.Write([]byte(w.Name))
	var buf [8]byte
	put := func(v float64) {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(datasetMB)
	put(float64(w.Ops))
	put(float64(s.Seed))
	for _, v := range cfg.Vector() {
		put(v)
	}
	return int64(h.Sum64())
}
