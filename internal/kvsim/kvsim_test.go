package kvsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/conf"
)

func TestSpaceShape(t *testing.T) {
	s := Space()
	if s.Len() != 16 {
		t.Fatalf("space has %d params, want 16", s.Len())
	}
	c := s.Default()
	if c.GetInt(HeapMB) != 4096 {
		t.Errorf("heap default = %d", c.GetInt(HeapMB))
	}
	if c.GetEnum(Compression) != "none" {
		t.Errorf("compression default = %s", c.GetEnum(Compression))
	}
}

func TestRunPositiveDeterministic(t *testing.T) {
	sim := New(1)
	cfg := Space().Default()
	a := sim.Run(ReadHeavy(), 50*1024, cfg)
	b := sim.Run(ReadHeavy(), 50*1024, cfg)
	if a <= 0 {
		t.Fatalf("time %v", a)
	}
	if a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
	if c := New(2).Run(ReadHeavy(), 50*1024, cfg); c == a {
		t.Error("different seeds gave identical noisy results")
	}
}

func TestDatasizeMatters(t *testing.T) {
	// The extension's point: the same configuration performs differently
	// as the dataset outgrows the block cache.
	sim := New(1)
	cfg := Space().Default()
	small := sim.Run(ReadHeavy(), 2*1024, cfg)   // hot set fits in cache
	large := sim.Run(ReadHeavy(), 400*1024, cfg) // it does not
	if large <= small*1.5 {
		t.Fatalf("read-heavy time should jump when the hot set outgrows the cache: %v -> %v", small, large)
	}
}

func TestMoreCacheHelpsReads(t *testing.T) {
	sim := New(1)
	s := Space()
	smallCache := s.Default().Set(HeapMB, 16384).Set(BlockCacheFrac, 0.1)
	bigCache := s.Default().Set(HeapMB, 16384).Set(BlockCacheFrac, 0.6)
	tSmall := sim.Run(ReadHeavy(), 100*1024, smallCache)
	tBig := sim.Run(ReadHeavy(), 100*1024, bigCache)
	if tBig >= tSmall {
		t.Fatalf("bigger block cache (%v) not faster than small (%v) on read-heavy", tBig, tSmall)
	}
}

func TestDeferredWALHelpsWrites(t *testing.T) {
	sim := New(1)
	s := Space()
	ingest := Workload{Name: "ingest", Ops: 10_000_000, ReadFrac: 0.02, RecordKB: 1, ZipfSkew: 0.8}
	sync := s.Default()
	deferred := s.Default().SetBool(DeferredWALFlush, true)
	tSync := sim.Run(ingest, 50*1024, sync)
	tDef := sim.Run(ingest, 50*1024, deferred)
	if tDef >= tSync {
		t.Fatalf("deferred WAL (%v) not faster than per-op sync (%v) on write-heavy", tDef, tSync)
	}
}

func TestBloomFiltersHelpPointReads(t *testing.T) {
	sim := New(1)
	s := Space()
	// Force many store files via a lazy compaction config.
	base := s.Default().
		Set(CompactionThreshold, 10).
		Set(CompactionMaxFiles, 5).
		Set(MemstoreFlushSize, 32).
		Set(BlockingStoreFiles, 50)
	withBloom := base.Clone().Set(BloomFilter, BloomRow)
	noBloom := base.Clone().Set(BloomFilter, BloomNone)
	tB := sim.Run(ReadHeavy(), 200*1024, withBloom)
	tN := sim.Run(ReadHeavy(), 200*1024, noBloom)
	if tB >= tN {
		t.Fatalf("bloom filters (%v) not faster than none (%v) with many store files", tB, tN)
	}
}

func TestWorkloadPresetsDiffer(t *testing.T) {
	sim := New(1)
	cfg := Space().Default()
	rh := sim.Run(ReadHeavy(), 50*1024, cfg)
	wh := sim.Run(WriteHeavy(), 50*1024, cfg)
	sh := sim.Run(ScanHeavy(), 50*1024, cfg)
	if rh == wh || wh == sh {
		t.Error("workload presets should behave differently")
	}
}

// Property: random configurations always produce positive finite times.
func TestRunFiniteProperty(t *testing.T) {
	sim := New(3)
	s := Space()
	rng := rand.New(rand.NewSource(4))
	f := func(int64) bool {
		cfg := s.Random(rng)
		mb := 1024 * (1 + rng.Float64()*499)
		v := sim.Run(WriteHeavy(), mb, cfg)
		return v > 0 && v < 1e9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: config values stay within range after Random (guards the
// space definition).
func TestSpaceRandomLegalProperty(t *testing.T) {
	s := Space()
	rng := rand.New(rand.NewSource(5))
	f := func(int64) bool {
		c := s.Random(rng)
		for i := 0; i < s.Len(); i++ {
			p := s.Param(i)
			if c.At(i) < p.Min || c.At(i) > p.Max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

var _ = conf.NumParams // keep the conf import for the named constants above
