// Package kvsim models an HBase-style LSM-tree key-value store (a region
// server serving a YCSB-like workload). The paper notes (§2.1) that DAC's
// principles "can be easily applied to other computing systems such as
// HBase which also requires end users to set a large number of
// configuration parameters" — this package is that extension: a second
// substrate with its own configuration space, tuned through the exact same
// collect → model → search pipeline (internal/core is substrate-agnostic).
//
// The mechanisms modelled are the ones HBase's tuning guide attributes its
// knobs to: memstore flushing and write stalls, size-tiered compaction and
// its read/write amplification, the block cache against a Zipfian working
// set, bloom filters, WAL syncing, handler concurrency, and JVM GC.
package kvsim

import "repro/internal/conf"

// Parameter names (HBase property spellings).
const (
	HandlerCount        = "hbase.regionserver.handler.count"
	MemstoreFlushSize   = "hbase.hregion.memstore.flush.size"
	MemstoreMultiplier  = "hbase.hregion.memstore.block.multiplier"
	GlobalMemstoreFrac  = "hbase.regionserver.global.memstore.size"
	BlockCacheFrac      = "hfile.block.cache.size"
	RegionMaxFileSize   = "hbase.hregion.max.filesize"
	CompactionThreshold = "hbase.hstore.compactionThreshold"
	BlockingStoreFiles  = "hbase.hstore.blockingStoreFiles"
	CompactionMaxFiles  = "hbase.hstore.compaction.max"
	BlockSizeKB         = "hbase.mapreduce.hfileoutputformat.blocksize"
	HeapMB              = "hbase.regionserver.heapsize"
	Compression         = "hbase.hfile.compression"
	DeferredWALFlush    = "hbase.regionserver.optionallogflushinterval.deferred"
	ClientWriteBuffer   = "hbase.client.write.buffer"
	BloomFilter         = "hbase.hfile.bloom"
	PrefetchOnOpen      = "hbase.rs.prefetchblocksonopen"
)

// Compression choices, in encoding order.
const (
	CompressNone   = 0
	CompressSnappy = 1
	CompressGZ     = 2
)

// Bloom filter choices, in encoding order.
const (
	BloomNone = 0
	BloomRow  = 1
)

// Space returns the key-value store's 16-parameter configuration space.
func Space() *conf.Space {
	params := []conf.Param{
		{Name: HandlerCount, Desc: "RPC handler threads per region server", Kind: conf.Int, Min: 10, Max: 300, Default: 30},
		{Name: MemstoreFlushSize, Desc: "Memstore size that triggers a flush", Kind: conf.Int, Min: 32, Max: 512, Default: 128, Unit: "MB"},
		{Name: MemstoreMultiplier, Desc: "Flush-size multiple at which writes block", Kind: conf.Int, Min: 2, Max: 8, Default: 4},
		{Name: GlobalMemstoreFrac, Desc: "Heap fraction all memstores may occupy", Kind: conf.Float, Min: 0.2, Max: 0.6, Default: 0.4},
		{Name: BlockCacheFrac, Desc: "Heap fraction for the block cache", Kind: conf.Float, Min: 0.1, Max: 0.6, Default: 0.4},
		{Name: RegionMaxFileSize, Desc: "Region size that triggers a split", Kind: conf.Int, Min: 1024, Max: 20480, Default: 10240, Unit: "MB"},
		{Name: CompactionThreshold, Desc: "Store files that trigger a minor compaction", Kind: conf.Int, Min: 2, Max: 10, Default: 3},
		{Name: BlockingStoreFiles, Desc: "Store files at which writes block", Kind: conf.Int, Min: 7, Max: 50, Default: 10},
		{Name: CompactionMaxFiles, Desc: "Max files merged per compaction", Kind: conf.Int, Min: 5, Max: 20, Default: 10},
		{Name: BlockSizeKB, Desc: "HFile block size", Kind: conf.Int, Min: 16, Max: 256, Default: 64, Unit: "KB"},
		{Name: HeapMB, Desc: "Region server JVM heap", Kind: conf.Int, Min: 1024, Max: 16384, Default: 4096, Unit: "MB"},
		{Name: Compression, Desc: "HFile block compression codec", Kind: conf.Enum, Min: 0, Max: 2, Choices: []string{"none", "snappy", "gz"}, Default: CompressNone},
		{Name: DeferredWALFlush, Desc: "Defer WAL syncs (group commit)", Kind: conf.Bool, Min: 0, Max: 1, Default: 0},
		{Name: ClientWriteBuffer, Desc: "Client-side write buffer", Kind: conf.Int, Min: 512, Max: 8192, Default: 2048, Unit: "KB"},
		{Name: BloomFilter, Desc: "Bloom filter granularity", Kind: conf.Enum, Min: 0, Max: 1, Choices: []string{"none", "row"}, Default: BloomRow},
		{Name: PrefetchOnOpen, Desc: "Prefetch blocks when opening store files", Kind: conf.Bool, Min: 0, Max: 1, Default: 0},
	}
	s, err := conf.NewSpace(params)
	if err != nil {
		panic("kvsim: invalid built-in space: " + err.Error())
	}
	return s
}
