package conf

import (
	"math/rand"
	"testing"
)

// BenchmarkRandomConfig measures the configuration generator (CG), run
// once per collected sample.
func BenchmarkRandomConfig(b *testing.B) {
	s := StandardSpace()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Random(rng)
	}
}

// BenchmarkGet measures named parameter lookup, the simulator's hottest
// accessor.
func BenchmarkGet(b *testing.B) {
	c := StandardSpace().Default()
	for i := 0; i < b.N; i++ {
		c.Get(ExecutorMemory)
	}
}

// BenchmarkFromVector measures decoding a GA individual back to a Config.
func BenchmarkFromVector(b *testing.B) {
	s := StandardSpace()
	vec := s.Default().Vector()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.FromVector(vec); err != nil {
			b.Fatal(err)
		}
	}
}
