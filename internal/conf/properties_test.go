package conf

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestPropertiesRoundTrip(t *testing.T) {
	s := StandardSpace()
	rng := rand.New(rand.NewSource(1))
	for k := 0; k < 20; k++ {
		orig := s.Random(rng)
		var buf bytes.Buffer
		if err := orig.WriteProperties(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := s.ReadProperties(&buf)
		if err != nil {
			t.Fatalf("round %d: %v\n%s", k, err, buf.String())
		}
		for i := 0; i < s.Len(); i++ {
			p := s.Param(i)
			a, b := orig.At(i), back.At(i)
			if p.Kind == Float {
				// Float formatting uses %g; compare parsed.
				if diff := a - b; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("%s: %v != %v", p.Name, a, b)
				}
			} else if a != b {
				t.Fatalf("%s: %v != %v", p.Name, a, b)
			}
		}
	}
}

func TestReadPropertiesFormats(t *testing.T) {
	s := StandardSpace()
	in := `# a comment

spark.executor.memory=8192
spark.serializer kryo
spark.shuffle.compress	false
`
	cfg, err := s.ReadProperties(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.GetInt(ExecutorMemory) != 8192 {
		t.Errorf("memory = %v", cfg.Get(ExecutorMemory))
	}
	if cfg.GetEnum(Serializer) != "kryo" {
		t.Errorf("serializer = %v", cfg.GetEnum(Serializer))
	}
	if cfg.GetBool(ShuffleCompress) {
		t.Error("shuffle.compress should be false")
	}
	// Untouched keys keep defaults.
	if cfg.GetInt(DriverCores) != 1 {
		t.Errorf("driver cores = %v, want default 1", cfg.Get(DriverCores))
	}
}

func TestReadPropertiesRejectsGarbage(t *testing.T) {
	s := StandardSpace()
	cases := []string{
		"spark.not.a.param 5",
		"spark.executor.memory notanumber",
		"spark.serializer marshal",
		"spark.shuffle.compress maybe",
		"justonetoken",
	}
	for _, in := range cases {
		if _, err := s.ReadProperties(strings.NewReader(in)); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
}

func TestReadPropertiesClampsNumbers(t *testing.T) {
	s := StandardSpace()
	cfg, err := s.ReadProperties(strings.NewReader("spark.executor.memory 999999"))
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.GetInt(ExecutorMemory); got != 12288 {
		t.Errorf("out-of-range value should clamp to 12288, got %d", got)
	}
}

func TestParseValueBooleans(t *testing.T) {
	p := Param{Name: "b", Kind: Bool, Min: 0, Max: 1}
	for _, s := range []string{"true", "TRUE", "1", "yes"} {
		if v, err := p.ParseValue(s); err != nil || v != 1 {
			t.Errorf("ParseValue(%q) = %v, %v", s, v, err)
		}
	}
	for _, s := range []string{"false", "0", "no"} {
		if v, err := p.ParseValue(s); err != nil || v != 0 {
			t.Errorf("ParseValue(%q) = %v, %v", s, v, err)
		}
	}
}
