package conf

import (
	"math"
	"math/rand"
	"testing"
)

func TestUniformSamplerShape(t *testing.T) {
	s := StandardSpace()
	rng := rand.New(rand.NewSource(1))
	cfgs := UniformSampler{}.Sample(s, 20, rng)
	if len(cfgs) != 20 {
		t.Fatalf("got %d configs", len(cfgs))
	}
	for _, c := range cfgs {
		for i := 0; i < s.Len(); i++ {
			p := s.Param(i)
			if c.At(i) < p.Min || c.At(i) > p.Max {
				t.Fatalf("%s out of range", p.Name)
			}
		}
	}
}

func TestLatinHypercubeStratifies(t *testing.T) {
	s := StandardSpace()
	rng := rand.New(rand.NewSource(2))
	n := 50
	cfgs := LatinHypercubeSampler{}.Sample(s, n, rng)
	if len(cfgs) != n {
		t.Fatalf("got %d configs", len(cfgs))
	}
	// For a continuous parameter, every n-quantile stratum must be hit
	// exactly once.
	i, _ := s.Index(MemoryFraction)
	p := s.Param(i)
	seen := make([]bool, n)
	for _, c := range cfgs {
		u := (c.At(i) - p.Min) / p.Span()
		bin := int(u * float64(n))
		if bin == n {
			bin--
		}
		if seen[bin] {
			t.Fatalf("stratum %d hit twice for %s", bin, p.Name)
		}
		seen[bin] = true
	}
	for b, ok := range seen {
		if !ok {
			t.Fatalf("stratum %d never hit", b)
		}
	}
	if got := (LatinHypercubeSampler{}).Sample(s, 0, rng); got != nil {
		t.Error("n=0 should return nil")
	}
}

// LHS marginal coverage should beat uniform sampling: the maximum gap
// between sorted samples of a continuous parameter is smaller.
func TestLHSCoverageBeatsUniform(t *testing.T) {
	s := StandardSpace()
	i, _ := s.Index(MemoryFraction)
	p := s.Param(i)
	maxGap := func(cfgs []Config) float64 {
		vals := make([]float64, len(cfgs))
		for k, c := range cfgs {
			vals[k] = (c.At(i) - p.Min) / p.Span()
		}
		for a := 1; a < len(vals); a++ {
			for b := a; b > 0 && vals[b] < vals[b-1]; b-- {
				vals[b], vals[b-1] = vals[b-1], vals[b]
			}
		}
		gap := vals[0]
		for k := 1; k < len(vals); k++ {
			gap = math.Max(gap, vals[k]-vals[k-1])
		}
		return math.Max(gap, 1-vals[len(vals)-1])
	}
	rng := rand.New(rand.NewSource(3))
	lhs := maxGap(LatinHypercubeSampler{}.Sample(s, 40, rng))
	uni := maxGap(UniformSampler{}.Sample(s, 40, rng))
	if lhs >= uni {
		t.Fatalf("LHS max gap %v not smaller than uniform %v", lhs, uni)
	}
}

func TestSubSpaceExpand(t *testing.T) {
	full := StandardSpace()
	base := full.Default().Set(DriverMemory, 4096)
	ss, err := NewSubSpace(full, base, []string{ExecutorMemory, ExecutorCores})
	if err != nil {
		t.Fatal(err)
	}
	if ss.Tunable.Len() != 2 {
		t.Fatalf("tunable has %d params", ss.Tunable.Len())
	}
	cfg := ss.Tunable.Default().Set(ExecutorMemory, 8192).Set(ExecutorCores, 4)
	fullCfg, err := ss.Expand(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fullCfg.GetInt(ExecutorMemory) != 8192 || fullCfg.GetInt(ExecutorCores) != 4 {
		t.Error("tuned parameters not expanded")
	}
	if fullCfg.GetInt(DriverMemory) != 4096 {
		t.Error("frozen parameter lost its base value")
	}
	if fullCfg.GetInt(DefaultParallelism) != 16 {
		t.Error("frozen parameter lost its default")
	}
}

func TestSubSpaceExpandVector(t *testing.T) {
	full := StandardSpace()
	ss, err := NewSubSpace(full, full.Default(), []string{ExecutorMemory})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ss.ExpandVector([]float64{12288})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.GetInt(ExecutorMemory) != 12288 {
		t.Errorf("expanded memory = %d", cfg.GetInt(ExecutorMemory))
	}
	if _, err := ss.ExpandVector([]float64{1, 2, 3}); err == nil {
		t.Error("wrong-length vector should fail")
	}
}

func TestSubSpaceRejectsBadInput(t *testing.T) {
	full := StandardSpace()
	if _, err := NewSubSpace(full, full.Default(), nil); err == nil {
		t.Error("empty name list should fail")
	}
	if _, err := NewSubSpace(full, full.Default(), []string{"nope"}); err == nil {
		t.Error("unknown name should fail")
	}
	other := StandardSpace()
	if _, err := NewSubSpace(full, other.Default(), []string{ExecutorMemory}); err == nil {
		t.Error("base from a different space should fail")
	}
	ss, _ := NewSubSpace(full, full.Default(), []string{ExecutorMemory})
	if _, err := ss.Expand(full.Default()); err == nil {
		t.Error("expanding a full-space config should fail")
	}
}
