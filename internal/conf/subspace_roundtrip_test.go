package conf

import (
	"math/rand"
	"strings"
	"testing"
)

// TestSampleIntoMatchesRandomStream pins the allocation-free sampler to
// Random's exact draw stream: the same rng state must yield the same
// vector bit for bit, so hot paths can switch to SampleInto without
// perturbing any seeded trajectory.
func TestSampleIntoMatchesRandomStream(t *testing.T) {
	s := StandardSpace()
	r1 := rand.New(rand.NewSource(9))
	r2 := rand.New(rand.NewSource(9))
	dst := make([]float64, s.Len())
	for round := 0; round < 5; round++ {
		want := s.Random(r1).Vector()
		s.SampleInto(dst, r2)
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("round %d: gene %d = %v, Random drew %v", round, i, dst[i], want[i])
			}
		}
	}
}

func TestSampleIntoRejectsWrongLength(t *testing.T) {
	s := StandardSpace()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("SampleInto accepted a short buffer")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "SampleInto") {
			t.Fatalf("panic = %v, want a SampleInto length message", r)
		}
	}()
	s.SampleInto(make([]float64, s.Len()-1), rand.New(rand.NewSource(1)))
}

// TestSubSpaceProjectVectorRoundTrip pins the projection identity the
// subspace searchers rely on: projecting a legal full-space vector into
// the subspace and expanding it back must reproduce the tunable
// coordinates bit-identically and pin every frozen coordinate to the
// base configuration.
func TestSubSpaceProjectVectorRoundTrip(t *testing.T) {
	full := StandardSpace()
	base := full.Default()
	names := full.Names()[:7]
	ss, err := NewSubSpace(full, base, names)
	if err != nil {
		t.Fatal(err)
	}
	tunable := make(map[string]bool, len(names))
	for _, n := range names {
		tunable[n] = true
	}

	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 20; round++ {
		v := full.Random(rng).Vector()
		sub, err := ss.ProjectVector(v)
		if err != nil {
			t.Fatal(err)
		}
		if len(sub) != ss.Tunable.Len() {
			t.Fatalf("projected length %d, want %d", len(sub), ss.Tunable.Len())
		}
		back, err := ss.ExpandVector(sub)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < full.Len(); i++ {
			name := full.Param(i).Name
			if tunable[name] {
				if back.At(i) != v[i] {
					t.Errorf("round %d: tunable %s = %v after round-trip, want %v",
						round, name, back.At(i), v[i])
				}
			} else if back.At(i) != base.At(i) {
				t.Errorf("round %d: frozen %s = %v, want base %v",
					round, name, back.At(i), base.At(i))
			}
		}
	}

	if _, err := ss.ProjectVector(make([]float64, full.Len()-1)); err == nil {
		t.Error("ProjectVector accepted a short vector")
	}
}
