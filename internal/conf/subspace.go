package conf

import "fmt"

// SubSpace restricts tuning to a subset of a space's parameters: the
// returned space contains only the named parameters, and Expand maps its
// configurations back to the full space with every frozen parameter at the
// base configuration's value. It powers the "do the top-k knobs suffice?"
// analysis that connects feature importance back to tuning action.
type SubSpace struct {
	// Tunable is the reduced space (use it with samplers and searchers).
	Tunable *Space
	full    *Space
	base    Config
	idx     []int // Tunable position -> full-space position
}

// NewSubSpace builds a subspace of full over the named parameters, with
// frozen parameters pinned to base (which must belong to full).
func NewSubSpace(full *Space, base Config, names []string) (*SubSpace, error) {
	if base.Space() != full {
		return nil, fmt.Errorf("conf: base configuration belongs to a different space")
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("conf: subspace needs at least one parameter")
	}
	params := make([]Param, 0, len(names))
	idx := make([]int, 0, len(names))
	for _, name := range names {
		i, ok := full.Index(name)
		if !ok {
			return nil, fmt.Errorf("conf: unknown parameter %q", name)
		}
		params = append(params, *full.Param(i))
		idx = append(idx, i)
	}
	tunable, err := NewSpace(params)
	if err != nil {
		return nil, err
	}
	return &SubSpace{Tunable: tunable, full: full, base: base.Clone(), idx: idx}, nil
}

// Expand maps a Tunable-space configuration to the full space.
func (ss *SubSpace) Expand(cfg Config) (Config, error) {
	if cfg.Space() != ss.Tunable {
		return Config{}, fmt.Errorf("conf: configuration not from this subspace")
	}
	out := ss.base.Clone()
	for ti, fi := range ss.idx {
		out.SetAt(fi, cfg.At(ti))
	}
	return out, nil
}

// ExpandVector maps a Tunable-space encoded vector to the full space.
func (ss *SubSpace) ExpandVector(vec []float64) (Config, error) {
	cfg, err := ss.Tunable.FromVector(vec)
	if err != nil {
		return Config{}, err
	}
	return ss.Expand(cfg)
}

// ProjectVector extracts the tunable coordinates of a full-space encoded
// vector — the inverse of ExpandVector over the tunable positions (the
// frozen coordinates are dropped). Searchers over the subspace use it to
// seed their populations from full-space observations.
func (ss *SubSpace) ProjectVector(full []float64) ([]float64, error) {
	if len(full) != ss.full.Len() {
		return nil, fmt.Errorf("conf: vector has %d values, space has %d", len(full), ss.full.Len())
	}
	out := make([]float64, len(ss.idx))
	for ti, fi := range ss.idx {
		out[ti] = full[fi]
	}
	return out, nil
}
