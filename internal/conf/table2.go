package conf

// Canonical parameter names, exported so the simulator and the expert
// baseline can reference parameters without string typos.
const (
	ReducerMaxSizeInFlight    = "spark.reducer.maxSizeInFlight"
	ShuffleFileBuffer         = "spark.shuffle.file.buffer"
	ShuffleBypassMergeThresh  = "spark.shuffle.sort.bypassMergeThreshold"
	SpeculationInterval       = "spark.speculation.interval"
	SpeculationMultiplier     = "spark.speculation.multiplier"
	SpeculationQuantile       = "spark.speculation.quantile"
	BroadcastBlockSize        = "spark.broadcast.blockSize"
	IOCompressionCodec        = "spark.io.compression.codec"
	IOCompressionLZ4Block     = "spark.io.compression.lz4.blockSize"
	IOCompressionSnappyBlock  = "spark.io.compression.snappy.blockSize"
	KryoReferenceTracking     = "spark.kryo.referenceTracking"
	KryoserializerBufferMax   = "spark.kryoserializer.buffer.max"
	KryoserializerBuffer      = "spark.kryoserializer.buffer"
	DriverCores               = "spark.driver.cores"
	ExecutorCores             = "spark.executor.cores"
	DriverMemory              = "spark.driver.memory"
	ExecutorMemory            = "spark.executor.memory"
	StorageMemoryMapThreshold = "spark.storage.memoryMapThreshold"
	AkkaFailureDetector       = "spark.akka.failure.detector.threshold"
	AkkaHeartbeatPauses       = "spark.akka.heartbeat.pauses"
	AkkaHeartbeatInterval     = "spark.akka.heartbeat.interval"
	AkkaThreads               = "spark.akka.threads"
	NetworkTimeout            = "spark.network.timeout"
	LocalityWait              = "spark.locality.wait"
	SchedulerReviveInterval   = "spark.scheduler.revive.interval"
	TaskMaxFailures           = "spark.task.maxFailures"
	ShuffleCompress           = "spark.shuffle.compress"
	ShuffleConsolidateFiles   = "spark.shuffle.consolidateFiles"
	MemoryFraction            = "spark.memory.fraction"
	ShuffleSpill              = "spark.shuffle.spill"
	ShuffleSpillCompress      = "spark.shuffle.spill.compress"
	Speculation               = "spark.speculation"
	BroadcastCompress         = "spark.broadcast.compress"
	RDDCompress               = "spark.rdd.compress"
	Serializer                = "spark.serializer"
	MemoryStorageFraction     = "spark.memory.storageFraction"
	LocalExecutionEnabled     = "spark.localExecution.enabled"
	DefaultParallelism        = "spark.default.parallelism"
	MemoryOffHeapEnabled      = "spark.memory.offHeap.enabled"
	ShuffleManager            = "spark.shuffle.manager"
	MemoryOffHeapSize         = "spark.memory.offHeap.size"
)

// Codec choices for spark.io.compression.codec, in encoding order.
const (
	CodecSnappy = 0
	CodecLZF    = 1
	CodecLZ4    = 2
)

// Serializer choices for spark.serializer, in encoding order.
const (
	SerializerJava = 0
	SerializerKryo = 1
)

// Shuffle manager choices for spark.shuffle.manager, in encoding order.
const (
	ShuffleSort = 0
	ShuffleHash = 1
)

// table2 lists the 41 performance-critical Spark configuration parameters
// exactly as in Table 2 of the paper: name, description, range, default.
// Defaults written as "#" in the paper (core count, cluster-derived
// parallelism) are instantiated for the paper's 12-core-socket executors.
var table2 = []Param{
	{Name: ReducerMaxSizeInFlight, Desc: "Maximum size of map outputs to fetch simultaneously from each reduce task", Kind: Int, Min: 2, Max: 128, Default: 48, Unit: "MB"},
	{Name: ShuffleFileBuffer, Desc: "Size of the in-memory buffer for each shuffle file output stream", Kind: Int, Min: 2, Max: 128, Default: 32, Unit: "KB"},
	{Name: ShuffleBypassMergeThresh, Desc: "Avoid merge-sorting data if there is no map-side aggregation", Kind: Int, Min: 100, Max: 1000, Default: 200},
	{Name: SpeculationInterval, Desc: "How often Spark will check for tasks to speculate", Kind: Int, Min: 10, Max: 1000, Default: 100, Unit: "ms"},
	{Name: SpeculationMultiplier, Desc: "How many times slower a task is than the median to be considered for speculation", Kind: Float, Min: 1, Max: 5, Default: 1.5},
	{Name: SpeculationQuantile, Desc: "Percentage of tasks which must be complete before speculation is enabled", Kind: Float, Min: 0, Max: 1, Default: 0.75},
	{Name: BroadcastBlockSize, Desc: "Size of each piece of a block for TorrentBroadcastFactory", Kind: Int, Min: 2, Max: 128, Default: 4, Unit: "MB"},
	{Name: IOCompressionCodec, Desc: "The codec used to compress internal data such as RDD partitions", Kind: Enum, Min: 0, Max: 2, Choices: []string{"snappy", "lzf", "lz4"}, Default: CodecSnappy},
	{Name: IOCompressionLZ4Block, Desc: "Block size used in LZ4 compression", Kind: Int, Min: 2, Max: 128, Default: 32, Unit: "KB"},
	{Name: IOCompressionSnappyBlock, Desc: "Block size used in snappy compression", Kind: Int, Min: 2, Max: 128, Default: 32, Unit: "KB"},
	{Name: KryoReferenceTracking, Desc: "Whether to track references to the same object when serializing data with Kryo", Kind: Bool, Min: 0, Max: 1, Default: 1},
	{Name: KryoserializerBufferMax, Desc: "Maximum allowable size of Kryo serialization buffer", Kind: Int, Min: 8, Max: 128, Default: 64, Unit: "MB"},
	{Name: KryoserializerBuffer, Desc: "Initial size of Kryo's serialization buffer", Kind: Int, Min: 2, Max: 128, Default: 64, Unit: "KB"},
	{Name: DriverCores, Desc: "Number of cores to use for the driver process", Kind: Int, Min: 1, Max: 12, Default: 1},
	{Name: ExecutorCores, Desc: "The number of cores to use on each executor", Kind: Int, Min: 1, Max: 12, Default: 12},
	{Name: DriverMemory, Desc: "Amount of memory to use for the driver process", Kind: Int, Min: 1024, Max: 12288, Default: 1024, Unit: "MB"},
	{Name: ExecutorMemory, Desc: "Amount of memory to use per executor process", Kind: Int, Min: 1024, Max: 12288, Default: 1024, Unit: "MB"},
	{Name: StorageMemoryMapThreshold, Desc: "Size of a block above which Spark maps when reading a block from disk", Kind: Int, Min: 50, Max: 500, Default: 50, Unit: "MB"},
	{Name: AkkaFailureDetector, Desc: "Set to a larger value to disable failure detector in Akka", Kind: Int, Min: 100, Max: 500, Default: 300},
	{Name: AkkaHeartbeatPauses, Desc: "Heart beat pause for Akka", Kind: Int, Min: 1000, Max: 10000, Default: 6000, Unit: "s"},
	{Name: AkkaHeartbeatInterval, Desc: "Heart beat interval for Akka", Kind: Int, Min: 200, Max: 5000, Default: 1000, Unit: "s"},
	{Name: AkkaThreads, Desc: "Number of actor threads to use for communication", Kind: Int, Min: 1, Max: 8, Default: 4},
	{Name: NetworkTimeout, Desc: "Default timeout for all network interactions", Kind: Int, Min: 20, Max: 500, Default: 120, Unit: "s"},
	{Name: LocalityWait, Desc: "How long to launch a data-local task before giving up", Kind: Int, Min: 1, Max: 10, Default: 3, Unit: "s"},
	{Name: SchedulerReviveInterval, Desc: "The interval length for the scheduler to revive the worker resource", Kind: Int, Min: 2, Max: 50, Default: 2, Unit: "s"},
	{Name: TaskMaxFailures, Desc: "Number of task failures before giving up on the job", Kind: Int, Min: 1, Max: 8, Default: 4},
	{Name: ShuffleCompress, Desc: "Whether to compress map output files", Kind: Bool, Min: 0, Max: 1, Default: 1},
	{Name: ShuffleConsolidateFiles, Desc: "If true, consolidates intermediate files created during a shuffle", Kind: Bool, Min: 0, Max: 1, Default: 0},
	{Name: MemoryFraction, Desc: "Fraction of (heap space - 300 MB) used for execution and storage", Kind: Float, Min: 0.5, Max: 1, Default: 0.75},
	{Name: ShuffleSpill, Desc: "Responsible for enabling/disabling spilling", Kind: Bool, Min: 0, Max: 1, Default: 1},
	{Name: ShuffleSpillCompress, Desc: "Whether to compress data spilled during shuffles", Kind: Bool, Min: 0, Max: 1, Default: 1},
	{Name: Speculation, Desc: "If true, performs speculative execution of tasks", Kind: Bool, Min: 0, Max: 1, Default: 0},
	{Name: BroadcastCompress, Desc: "Whether to compress broadcast variables before sending them", Kind: Bool, Min: 0, Max: 1, Default: 1},
	{Name: RDDCompress, Desc: "Whether to compress serialized RDD partitions", Kind: Bool, Min: 0, Max: 1, Default: 0},
	{Name: Serializer, Desc: "Class to use for serializing objects sent over the network or cached in serialized form", Kind: Enum, Min: 0, Max: 1, Choices: []string{"java", "kryo"}, Default: SerializerJava},
	{Name: MemoryStorageFraction, Desc: "Amount of storage memory immune to eviction, as a fraction of spark.memory.fraction", Kind: Float, Min: 0.5, Max: 1, Default: 0.5},
	{Name: LocalExecutionEnabled, Desc: "Enables Spark to run certain jobs on the driver, without sending tasks to the cluster", Kind: Bool, Min: 0, Max: 1, Default: 0},
	{Name: DefaultParallelism, Desc: "The largest number of partitions in a parent RDD for distributed shuffle operations", Kind: Int, Min: 8, Max: 50, Default: 16},
	{Name: MemoryOffHeapEnabled, Desc: "If true, Spark will attempt to use off-heap memory for certain operations", Kind: Bool, Min: 0, Max: 1, Default: 0},
	{Name: ShuffleManager, Desc: "Implementation to use for shuffling data", Kind: Enum, Min: 0, Max: 1, Choices: []string{"sort", "hash"}, Default: ShuffleSort},
	{Name: MemoryOffHeapSize, Desc: "The absolute amount of memory which can be used for off-heap allocation", Kind: Int, Min: 10, Max: 1000, Default: 10, Unit: "MB"},
}

// NumParams is the dimensionality of the DAC configuration space (the "41"
// in the paper's title claim).
const NumParams = 41
