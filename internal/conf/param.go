// Package conf defines the Spark configuration space tuned by DAC: the 41
// performance-critical parameters of Table 2 in the paper, with their value
// ranges and defaults, plus the Config vector type the models and searchers
// operate on.
//
// Every parameter value is encoded as a float64 so that a whole
// configuration is a flat vector {c1, ..., c41} (Eq. 3 in the paper):
// integers round to the nearest integer, booleans encode as 0/1, and
// enumerations encode as the index into their choice list. The encoding is
// what the regression models consume and what the genetic algorithm mutates.
package conf

import (
	"fmt"
	"math"
	"math/rand"
)

// Kind classifies how a parameter's float64 encoding is interpreted.
type Kind int

const (
	// Int parameters take integer values in [Min, Max].
	Int Kind = iota
	// Float parameters take real values in [Min, Max].
	Float
	// Bool parameters encode false as 0 and true as 1.
	Bool
	// Enum parameters encode choice i of Choices as float64(i).
	Enum
)

func (k Kind) String() string {
	switch k {
	case Int:
		return "int"
	case Float:
		return "float"
	case Bool:
		return "bool"
	case Enum:
		return "enum"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Param describes one tunable configuration parameter.
type Param struct {
	// Name is the full Spark property name, e.g. "spark.executor.memory".
	Name string
	// Desc is the one-line description from Table 2.
	Desc string
	// Kind selects the encoding.
	Kind Kind
	// Min and Max bound Int and Float parameters (inclusive). For Bool
	// they are 0 and 1; for Enum, 0 and len(Choices)-1.
	Min, Max float64
	// Choices lists the values of an Enum parameter.
	Choices []string
	// Default is the encoded default value recommended by the Spark team.
	Default float64
	// Unit is the human-readable unit ("MB", "KB", "s", ...), if any.
	Unit string
}

// Span returns Max-Min, the width of the parameter's encoded range.
func (p *Param) Span() float64 { return p.Max - p.Min }

// Clamp bounds v to the parameter's legal encoded range and, for Int, Bool
// and Enum kinds, rounds it to the nearest legal discrete value.
func (p *Param) Clamp(v float64) float64 {
	if math.IsNaN(v) {
		return p.Default
	}
	if v < p.Min {
		v = p.Min
	}
	if v > p.Max {
		v = p.Max
	}
	if p.Kind != Float {
		v = math.Round(v)
	}
	return v
}

// Random returns a uniformly random legal encoded value.
func (p *Param) Random(rng *rand.Rand) float64 {
	switch p.Kind {
	case Float:
		return p.Min + rng.Float64()*(p.Max-p.Min)
	default:
		n := int(p.Max-p.Min) + 1
		return p.Min + float64(rng.Intn(n))
	}
}

// FormatValue renders an encoded value the way it would appear in a
// spark-dac.conf file.
func (p *Param) FormatValue(v float64) string {
	v = p.Clamp(v)
	switch p.Kind {
	case Bool:
		if v >= 0.5 {
			return "true"
		}
		return "false"
	case Enum:
		return p.Choices[int(v)]
	case Int:
		return fmt.Sprintf("%d", int(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}
