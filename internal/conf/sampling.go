package conf

import "math/rand"

// Sampler generates the configurations the collecting component runs. The
// paper's CG draws each parameter independently and uniformly (§3.1);
// LatinHypercube is the space-filling alternative auto-tuners commonly
// prefer, offered as an ablation (same budget, better marginal coverage).
type Sampler interface {
	// Sample returns n configurations from the space.
	Sample(s *Space, n int, rng *rand.Rand) []Config
}

// UniformSampler implements the paper's configuration generator: every
// parameter uniform over its range, independently per configuration.
type UniformSampler struct{}

// Sample implements Sampler.
func (UniformSampler) Sample(s *Space, n int, rng *rand.Rand) []Config {
	out := make([]Config, n)
	for i := range out {
		out[i] = s.Random(rng)
	}
	return out
}

// LatinHypercubeSampler stratifies every parameter into n bins and
// permutes bin assignments independently per dimension, guaranteeing each
// parameter's range is covered evenly across the batch.
type LatinHypercubeSampler struct{}

// Sample implements Sampler.
func (LatinHypercubeSampler) Sample(s *Space, n int, rng *rand.Rand) []Config {
	if n <= 0 {
		return nil
	}
	d := s.Len()
	// One permutation of bins per dimension.
	cols := make([][]int, d)
	for j := 0; j < d; j++ {
		cols[j] = rng.Perm(n)
	}
	out := make([]Config, n)
	for i := 0; i < n; i++ {
		vec := make([]float64, d)
		for j := 0; j < d; j++ {
			p := s.Param(j)
			// Uniform within the assigned stratum.
			u := (float64(cols[j][i]) + rng.Float64()) / float64(n)
			vec[j] = p.Clamp(p.Min + u*p.Span())
		}
		cfg, err := s.FromVector(vec)
		if err != nil {
			// FromVector only fails on length mismatch, which cannot
			// happen here.
			panic("conf: internal: " + err.Error())
		}
		out[i] = cfg
	}
	return out
}
