package conf

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Space is an ordered set of tunable parameters. The order defines the
// layout of every Config vector drawn from the space.
type Space struct {
	params []Param
	index  map[string]int
}

// NewSpace builds a space over the given parameters. Parameter names must
// be unique.
func NewSpace(params []Param) (*Space, error) {
	s := &Space{
		params: make([]Param, len(params)),
		index:  make(map[string]int, len(params)),
	}
	copy(s.params, params)
	for i, p := range s.params {
		if p.Name == "" {
			return nil, fmt.Errorf("conf: parameter %d has empty name", i)
		}
		if _, dup := s.index[p.Name]; dup {
			return nil, fmt.Errorf("conf: duplicate parameter %q", p.Name)
		}
		if p.Max < p.Min {
			return nil, fmt.Errorf("conf: parameter %q has Max < Min", p.Name)
		}
		if p.Kind == Enum && len(p.Choices) == 0 {
			return nil, fmt.Errorf("conf: enum parameter %q has no choices", p.Name)
		}
		s.index[p.Name] = i
	}
	return s, nil
}

// StandardSpace returns the 41-parameter Spark configuration space of
// Table 2. It panics only on an internal table inconsistency, which is
// covered by tests.
func StandardSpace() *Space {
	s, err := NewSpace(table2)
	if err != nil {
		panic("conf: invalid built-in table2: " + err.Error())
	}
	return s
}

// Len returns the number of parameters (the dimensionality n of Eq. 3).
func (s *Space) Len() int { return len(s.params) }

// Param returns the i-th parameter descriptor.
func (s *Space) Param(i int) *Param { return &s.params[i] }

// Index returns the position of the named parameter and whether it exists.
func (s *Space) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Names returns the parameter names in vector order.
func (s *Space) Names() []string {
	names := make([]string, len(s.params))
	for i, p := range s.params {
		names[i] = p.Name
	}
	return names
}

// Default returns the Spark-team-recommended default configuration.
func (s *Space) Default() Config {
	v := make([]float64, len(s.params))
	for i, p := range s.params {
		v[i] = p.Default
	}
	return Config{space: s, vals: v}
}

// Random draws a configuration uniformly at random from the space, the way
// the paper's configuration generator (CG) does.
func (s *Space) Random(rng *rand.Rand) Config {
	v := make([]float64, len(s.params))
	for i := range s.params {
		v[i] = s.params[i].Random(rng)
	}
	return Config{space: s, vals: v}
}

// SampleInto fills dst with a uniformly random legal value per
// parameter, in parameter order — the exact draw stream of Random,
// without the Config allocation. Hot samplers (TPE's startup phase, the
// batch candidate generators) call it in a loop with one reused buffer.
// It panics if len(dst) != Len.
func (s *Space) SampleInto(dst []float64, rng *rand.Rand) {
	if len(dst) != len(s.params) {
		panic(fmt.Sprintf("conf: SampleInto dst length %d, want %d", len(dst), len(s.params)))
	}
	for i := range s.params {
		dst[i] = s.params[i].Random(rng)
	}
}

// FromVector builds a Config from an encoded vector, clamping every
// component to its legal range. The vector length must equal Len.
func (s *Space) FromVector(vec []float64) (Config, error) {
	if len(vec) != len(s.params) {
		return Config{}, fmt.Errorf("conf: vector length %d, want %d", len(vec), len(s.params))
	}
	v := make([]float64, len(vec))
	for i := range vec {
		v[i] = s.params[i].Clamp(vec[i])
	}
	return Config{space: s, vals: v}, nil
}

// Config is one point in a Space: an encoded value per parameter
// ({c_i1, ..., c_in} in Eq. 3).
type Config struct {
	space *Space
	vals  []float64
}

// Space returns the space the configuration belongs to.
func (c Config) Space() *Space { return c.space }

// Vector returns a copy of the encoded parameter values in space order.
func (c Config) Vector() []float64 {
	out := make([]float64, len(c.vals))
	copy(out, c.vals)
	return out
}

// Clone returns a deep copy of the configuration.
func (c Config) Clone() Config {
	return Config{space: c.space, vals: c.Vector()}
}

// Get returns the encoded value of the named parameter. It panics on an
// unknown name: parameter names are compile-time constants in this module,
// so a miss is a programming error, not an input error.
func (c Config) Get(name string) float64 {
	i, ok := c.space.index[name]
	if !ok {
		panic("conf: unknown parameter " + name)
	}
	return c.vals[i]
}

// GetInt returns the named parameter as an int.
func (c Config) GetInt(name string) int { return int(c.Get(name)) }

// GetBool returns the named parameter as a bool.
func (c Config) GetBool(name string) bool { return c.Get(name) >= 0.5 }

// GetEnum returns the string choice selected by the named Enum parameter.
func (c Config) GetEnum(name string) string {
	i, ok := c.space.index[name]
	if !ok {
		panic("conf: unknown parameter " + name)
	}
	p := &c.space.params[i]
	return p.Choices[int(p.Clamp(c.vals[i]))]
}

// Set assigns an encoded value to the named parameter, clamping it to the
// legal range, and returns the receiver for chaining.
func (c Config) Set(name string, v float64) Config {
	i, ok := c.space.index[name]
	if !ok {
		panic("conf: unknown parameter " + name)
	}
	c.vals[i] = c.space.params[i].Clamp(v)
	return c
}

// SetBool assigns a boolean parameter.
func (c Config) SetBool(name string, v bool) Config {
	x := 0.0
	if v {
		x = 1
	}
	return c.Set(name, x)
}

// At returns the encoded value at vector position i.
func (c Config) At(i int) float64 { return c.vals[i] }

// SetAt assigns (with clamping) the encoded value at vector position i.
func (c Config) SetAt(i int, v float64) {
	c.vals[i] = c.space.params[i].Clamp(v)
}

// String renders the configuration in spark-dac.conf style, sorted by
// parameter name for stable output.
func (c Config) String() string {
	lines := make([]string, len(c.vals))
	for i := range c.vals {
		p := &c.space.params[i]
		lines[i] = p.Name + " " + p.FormatValue(c.vals[i])
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
