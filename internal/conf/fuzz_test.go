package conf

import (
	"math"
	"math/rand"
	"testing"
)

// TestRandomInRangeProperty checks Space.Random over many seeds: every
// generated value must be a legal encoding for its parameter — inside
// [Min, Max], integral for the discrete kinds, and a valid choice index
// for enums. The models and the GA both assume this invariant.
func TestRandomInRangeProperty(t *testing.T) {
	space := StandardSpace()
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := space.Random(rng)
		for i := 0; i < space.Len(); i++ {
			p := space.Param(i)
			v := cfg.At(i)
			if v < p.Min || v > p.Max {
				t.Fatalf("seed %d: %s = %v outside [%v, %v]", seed, p.Name, v, p.Min, p.Max)
			}
			if p.Kind != Float && v != math.Round(v) {
				t.Fatalf("seed %d: %s kind %v has non-integral encoding %v", seed, p.Name, p.Kind, v)
			}
			if p.Kind == Enum && (int(v) < 0 || int(v) >= len(p.Choices)) {
				t.Fatalf("seed %d: %s enum index %v out of range", seed, p.Name, v)
			}
		}
	}
}

// TestFormatParseRoundTrip checks, for every parameter kind, that a legal
// encoded value survives FormatValue → ParseValue → FormatValue exactly.
// Float parameters rely on %g printing the shortest uniquely-parsing
// representation, so even the re-parsed encoding is bit-identical.
func TestFormatParseRoundTrip(t *testing.T) {
	space := StandardSpace()
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < space.Len(); i++ {
		p := space.Param(i)
		for trial := 0; trial < 50; trial++ {
			v := p.Clamp(p.Random(rng))
			text := p.FormatValue(v)
			back, err := p.ParseValue(text)
			if err != nil {
				t.Fatalf("%s: ParseValue(FormatValue(%v)) = %q failed: %v", p.Name, v, text, err)
			}
			if back != v {
				t.Fatalf("%s: %v formatted as %q parsed back as %v", p.Name, v, text, back)
			}
			if again := p.FormatValue(back); again != text {
				t.Fatalf("%s: re-encode changed text %q -> %q", p.Name, text, again)
			}
		}
	}
}

// TestClampProperties checks the Clamp contract on adversarial inputs:
// idempotent, always in range, discrete kinds integral, NaN mapped to the
// default.
func TestClampProperties(t *testing.T) {
	space := StandardSpace()
	rng := rand.New(rand.NewSource(23))
	adversarial := []float64{
		math.Inf(1), math.Inf(-1), math.NaN(), 0, -0.0, 1e308, -1e308, 0.5, -0.5,
	}
	for i := 0; i < space.Len(); i++ {
		p := space.Param(i)
		inputs := append([]float64{}, adversarial...)
		for k := 0; k < 40; k++ {
			inputs = append(inputs, (rng.Float64()-0.5)*4*(p.Span()+1)+p.Min)
		}
		for _, v := range inputs {
			c := p.Clamp(v)
			if math.IsNaN(v) {
				if c != p.Default {
					t.Fatalf("%s: Clamp(NaN) = %v, want default %v", p.Name, c, p.Default)
				}
				continue
			}
			if c < p.Min || c > p.Max {
				t.Fatalf("%s: Clamp(%v) = %v outside [%v, %v]", p.Name, v, c, p.Min, p.Max)
			}
			if p.Kind != Float && c != math.Round(c) {
				t.Fatalf("%s: Clamp(%v) = %v not integral for kind %v", p.Name, v, c, p.Kind)
			}
			if cc := p.Clamp(c); cc != c {
				t.Fatalf("%s: Clamp not idempotent: %v -> %v -> %v", p.Name, v, c, cc)
			}
		}
	}
}

// FuzzParamClamp fuzzes Clamp across the whole space: any float64,
// including the bit patterns the fuzzer invents, must clamp to a legal,
// stable encoding.
func FuzzParamClamp(f *testing.F) {
	f.Add(0, 0.0)
	f.Add(3, math.Inf(1))
	f.Add(40, -1.5)
	space := StandardSpace()
	f.Fuzz(func(t *testing.T, idx int, v float64) {
		p := space.Param(((idx % space.Len()) + space.Len()) % space.Len())
		c := p.Clamp(v)
		if math.IsNaN(c) || c < p.Min || c > p.Max {
			t.Fatalf("%s: Clamp(%v) = %v is not a legal encoding", p.Name, v, c)
		}
		if p.Clamp(c) != c {
			t.Fatalf("%s: Clamp(%v) = %v not idempotent", p.Name, v, c)
		}
	})
}

// FuzzParseValue fuzzes the properties-file value parser: arbitrary text
// must either fail cleanly or produce a legal encoding whose rendering
// parses back to itself.
func FuzzParseValue(f *testing.F) {
	f.Add(0, "12288")
	f.Add(1, "true")
	f.Add(2, "kryo")
	f.Add(3, "not-a-number")
	f.Add(4, "1e999")
	space := StandardSpace()
	f.Fuzz(func(t *testing.T, idx int, s string) {
		p := space.Param(((idx % space.Len()) + space.Len()) % space.Len())
		v, err := p.ParseValue(s)
		if err != nil {
			return
		}
		if math.IsNaN(v) || v < p.Min || v > p.Max {
			t.Fatalf("%s: ParseValue(%q) = %v outside [%v, %v]", p.Name, s, v, p.Min, p.Max)
		}
		text := p.FormatValue(v)
		back, err := p.ParseValue(text)
		if err != nil {
			t.Fatalf("%s: rendering %q of parsed value failed to re-parse: %v", p.Name, text, err)
		}
		if back != p.Clamp(v) {
			t.Fatalf("%s: %q parsed as %v, re-parsed as %v", p.Name, s, v, back)
		}
	})
}
