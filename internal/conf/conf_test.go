package conf

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestStandardSpaceHas41Params(t *testing.T) {
	s := StandardSpace()
	if s.Len() != NumParams {
		t.Fatalf("StandardSpace has %d params, want %d", s.Len(), NumParams)
	}
}

func TestStandardSpaceDefaultsInRange(t *testing.T) {
	s := StandardSpace()
	for i := 0; i < s.Len(); i++ {
		p := s.Param(i)
		if p.Default < p.Min || p.Default > p.Max {
			t.Errorf("%s: default %v outside [%v, %v]", p.Name, p.Default, p.Min, p.Max)
		}
		if p.Kind == Enum && int(p.Max) != len(p.Choices)-1 {
			t.Errorf("%s: enum Max %v inconsistent with %d choices", p.Name, p.Max, len(p.Choices))
		}
	}
}

func TestTable2Defaults(t *testing.T) {
	// Spot-check paper Table 2 defaults.
	c := StandardSpace().Default()
	tests := []struct {
		name string
		want float64
	}{
		{ReducerMaxSizeInFlight, 48},
		{ShuffleFileBuffer, 32},
		{ExecutorMemory, 1024},
		{DriverCores, 1},
		{MemoryFraction, 0.75},
		{MemoryStorageFraction, 0.5},
		{TaskMaxFailures, 4},
		{Serializer, SerializerJava},
		{IOCompressionCodec, CodecSnappy},
		{ShuffleManager, ShuffleSort},
	}
	for _, tc := range tests {
		if got := c.Get(tc.name); got != tc.want {
			t.Errorf("%s default = %v, want %v", tc.name, got, tc.want)
		}
	}
	if c.GetBool(ShuffleCompress) != true {
		t.Error("shuffle.compress default should be true")
	}
	if c.GetBool(Speculation) != false {
		t.Error("speculation default should be false")
	}
}

func TestNewSpaceRejectsBadInput(t *testing.T) {
	cases := []struct {
		name   string
		params []Param
	}{
		{"empty name", []Param{{Name: "", Min: 0, Max: 1}}},
		{"duplicate", []Param{{Name: "a", Min: 0, Max: 1}, {Name: "a", Min: 0, Max: 1}}},
		{"inverted range", []Param{{Name: "a", Min: 5, Max: 1}}},
		{"enum without choices", []Param{{Name: "a", Kind: Enum, Min: 0, Max: 1}}},
	}
	for _, tc := range cases {
		if _, err := NewSpace(tc.params); err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}
}

func TestRandomConfigsInRange(t *testing.T) {
	s := StandardSpace()
	rng := rand.New(rand.NewSource(3))
	for k := 0; k < 100; k++ {
		c := s.Random(rng)
		for i := 0; i < s.Len(); i++ {
			p := s.Param(i)
			v := c.At(i)
			if v < p.Min || v > p.Max {
				t.Fatalf("%s: random value %v outside [%v,%v]", p.Name, v, p.Min, p.Max)
			}
			if p.Kind != Float && v != float64(int64(v)) {
				t.Fatalf("%s: discrete value %v not integral", p.Name, v)
			}
		}
	}
}

func TestConfigSetGetClamping(t *testing.T) {
	c := StandardSpace().Default()
	c.Set(ExecutorMemory, 99999)
	if got := c.Get(ExecutorMemory); got != 12288 {
		t.Errorf("Set should clamp high: got %v", got)
	}
	c.Set(ExecutorMemory, -5)
	if got := c.Get(ExecutorMemory); got != 1024 {
		t.Errorf("Set should clamp low: got %v", got)
	}
	c.SetBool(Speculation, true)
	if !c.GetBool(Speculation) {
		t.Error("SetBool(true) not read back")
	}
	if got := c.GetEnum(IOCompressionCodec); got != "snappy" {
		t.Errorf("GetEnum = %q, want snappy", got)
	}
	c.Set(IOCompressionCodec, CodecLZ4)
	if got := c.GetEnum(IOCompressionCodec); got != "lz4" {
		t.Errorf("GetEnum after set = %q, want lz4", got)
	}
}

func TestConfigCloneIsDeep(t *testing.T) {
	a := StandardSpace().Default()
	b := a.Clone()
	b.Set(ExecutorCores, 3)
	if a.Get(ExecutorCores) == 3 {
		t.Error("Clone shares storage with original")
	}
}

func TestVectorRoundTrip(t *testing.T) {
	s := StandardSpace()
	rng := rand.New(rand.NewSource(4))
	c := s.Random(rng)
	c2, err := s.FromVector(c.Vector())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Len(); i++ {
		if c.At(i) != c2.At(i) {
			t.Fatalf("round trip changed param %d: %v != %v", i, c.At(i), c2.At(i))
		}
	}
	if _, err := s.FromVector([]float64{1, 2}); err == nil {
		t.Error("FromVector should reject wrong length")
	}
}

func TestUnknownParamPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Get of unknown parameter should panic")
		}
	}()
	StandardSpace().Default().Get("spark.not.a.param")
}

func TestConfigString(t *testing.T) {
	s := StandardSpace().Default().String()
	if !strings.Contains(s, "spark.executor.memory 1024") {
		t.Errorf("String missing executor memory line:\n%s", s)
	}
	if !strings.Contains(s, "spark.serializer java") {
		t.Errorf("String missing serializer line:\n%s", s)
	}
	if !strings.Contains(s, "spark.shuffle.compress true") {
		t.Errorf("String missing bool formatting:\n%s", s)
	}
}

func TestParamFormatValue(t *testing.T) {
	p := Param{Name: "x", Kind: Bool, Min: 0, Max: 1}
	if p.FormatValue(0.9) != "true" || p.FormatValue(0.1) != "false" {
		t.Error("bool formatting wrong")
	}
	q := Param{Name: "y", Kind: Float, Min: 0, Max: 1, Default: 0.5}
	if q.FormatValue(0.25) != "0.25" {
		t.Errorf("float formatting: %q", q.FormatValue(0.25))
	}
}

// Property: Clamp is idempotent and always lands in range.
func TestClampProperty(t *testing.T) {
	s := StandardSpace()
	f := func(idx uint, v float64) bool {
		p := s.Param(int(idx % uint(s.Len())))
		c1 := p.Clamp(v)
		if c1 < p.Min || c1 > p.Max {
			return false
		}
		return p.Clamp(c1) == c1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: FromVector(Vector()) is the identity on legal configs.
func TestFromVectorIdempotentProperty(t *testing.T) {
	s := StandardSpace()
	rng := rand.New(rand.NewSource(5))
	f := func(int64) bool {
		c := s.Random(rng)
		c2, err := s.FromVector(c.Vector())
		if err != nil {
			return false
		}
		for i := 0; i < s.Len(); i++ {
			if c.At(i) != c2.At(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
