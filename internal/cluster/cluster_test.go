package cluster

import "testing"

func TestStandardMatchesPaperTestbed(t *testing.T) {
	c := Standard()
	if !c.Valid() {
		t.Fatal("standard cluster invalid")
	}
	// §4: 432 cores and 384 GB across the cluster; 5 slaves + 1 master.
	if got := c.TotalCores() + c.MasterCores; got != 432 {
		t.Errorf("total cores incl. master = %d, want 432", got)
	}
	if got := c.TotalMemoryMB() + c.MasterMemoryMB; got != 384*1024 {
		t.Errorf("total memory incl. master = %v MB, want %v", got, 384*1024)
	}
	if c.Workers != 5 {
		t.Errorf("workers = %d, want 5 slaves", c.Workers)
	}
	if c.CPUGHz != 1.9 {
		t.Errorf("clock = %v, want 1.9 GHz", c.CPUGHz)
	}
}

func TestValidRejectsZeroFields(t *testing.T) {
	c := Standard()
	c.Workers = 0
	if c.Valid() {
		t.Error("zero workers should be invalid")
	}
	c = Standard()
	c.NetMBps = 0
	if c.Valid() {
		t.Error("zero network bandwidth should be invalid")
	}
}
