// Package cluster models the hardware DAC tunes for: a small dedicated
// cluster of identical worker nodes plus one master running the driver.
// The defaults mirror the paper's testbed (§4): six DELL servers — one
// master, five slaves — each with 12 six-core Xeon E5-2609 processors
// (432 cores total) and 64 GB of memory.
package cluster

// Cluster describes the machines available to the in-memory computing
// framework. All sizes are in MB, bandwidths in MB/s, and clock rates in
// GHz; the simulator works in these units throughout.
type Cluster struct {
	// Workers is the number of slave nodes that run executors.
	Workers int
	// CoresPerNode is the number of CPU cores on each worker.
	CoresPerNode int
	// MemoryPerNodeMB is the physical memory of each worker, in MB.
	MemoryPerNodeMB float64
	// CPUGHz is the nominal core clock; task compute costs scale
	// inversely with it.
	CPUGHz float64
	// DiskReadMBps and DiskWriteMBps are sequential disk bandwidths per
	// node, shared by the tasks running on that node.
	DiskReadMBps  float64
	DiskWriteMBps float64
	// NetMBps is the network bandwidth per node (full-duplex assumed).
	NetMBps float64
	// DiskSeekMs is the latency charged per distinct file or fetch round.
	DiskSeekMs float64
	// NetLatencyMs is the one-way network latency between nodes.
	NetLatencyMs float64
	// MasterMemoryMB bounds spark.driver.memory; the driver runs on the
	// master node.
	MasterMemoryMB float64
	// MasterCores bounds spark.driver.cores.
	MasterCores int
}

// Standard returns the paper's experimental platform: 5 worker nodes of
// 72 cores / 64 GB each (plus a master), 1.9 GHz cores, 7200-rpm local
// disks and gigabit Ethernet.
func Standard() Cluster {
	return Cluster{
		Workers:         5,
		CoresPerNode:    72,
		MemoryPerNodeMB: 64 * 1024,
		CPUGHz:          1.9,
		DiskReadMBps:    150,
		DiskWriteMBps:   120,
		NetMBps:         110,
		DiskSeekMs:      6,
		NetLatencyMs:    0.3,
		MasterMemoryMB:  64 * 1024,
		MasterCores:     72,
	}
}

// TotalCores returns the number of worker cores in the cluster.
func (c Cluster) TotalCores() int { return c.Workers * c.CoresPerNode }

// TotalMemoryMB returns the aggregate worker memory.
func (c Cluster) TotalMemoryMB() float64 {
	return float64(c.Workers) * c.MemoryPerNodeMB
}

// Valid reports whether the cluster description is usable by a simulator.
func (c Cluster) Valid() bool {
	return c.Workers > 0 && c.CoresPerNode > 0 && c.MemoryPerNodeMB > 0 &&
		c.CPUGHz > 0 && c.DiskReadMBps > 0 && c.DiskWriteMBps > 0 && c.NetMBps > 0
}
