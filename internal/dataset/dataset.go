// Package dataset holds the collecting component's output: performance
// vectors Pv_i = {t_i, c_i1..c_in, dsize_i} (Eq. 5 in the paper), with CSV
// persistence matching the paper's implementation (§3.4 stores the
// training set S in a CSV file) and conversion to model.Dataset.
package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/conf"
	"repro/internal/model"
)

// PerfVector is one observed execution: its time, the configuration used,
// and the input dataset size in MB.
type PerfVector struct {
	// TimeSec is the measured (simulated) execution time t_i.
	TimeSec float64
	// Conf holds the n encoded configuration values.
	Conf []float64
	// DSizeMB is the input dataset size.
	DSizeMB float64
}

// Set is an ordered collection of performance vectors over one
// configuration space — the training set S (Eq. 6).
type Set struct {
	Space   *conf.Space
	Vectors []PerfVector
}

// NewSet returns an empty set over the given space.
func NewSet(space *conf.Space) *Set { return &Set{Space: space} }

// Add appends one observation, copying the configuration vector.
func (s *Set) Add(cfg conf.Config, dsizeMB, timeSec float64) {
	s.Vectors = append(s.Vectors, PerfVector{
		TimeSec: timeSec,
		Conf:    cfg.Vector(),
		DSizeMB: dsizeMB,
	})
}

// Len returns the number of vectors.
func (s *Set) Len() int { return len(s.Vectors) }

// FeatureNames returns the model feature column names: the configuration
// parameters in space order followed by "dsize".
func (s *Set) FeatureNames() []string {
	return append(s.Space.Names(), "dsize")
}

// ToDataset converts the set into a model design matrix with the dataset
// size as the final feature column (the paper's key modeling decision).
func (s *Set) ToDataset() *model.Dataset {
	ds := model.NewDataset(s.FeatureNames())
	row := make([]float64, s.Space.Len()+1)
	for _, pv := range s.Vectors {
		copy(row, pv.Conf)
		row[len(row)-1] = pv.DSizeMB
		ds.Add(row, pv.TimeSec)
	}
	return ds
}

// WriteCSV streams the set as CSV: header "t,<param names...>,dsize"
// followed by one row per vector.
func (s *Set) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"t"}, s.FeatureNames()...)
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for _, pv := range s.Vectors {
		if len(pv.Conf) != s.Space.Len() {
			return fmt.Errorf("dataset: vector has %d params, space has %d", len(pv.Conf), s.Space.Len())
		}
		rec[0] = strconv.FormatFloat(pv.TimeSec, 'g', -1, 64)
		for i, v := range pv.Conf {
			rec[i+1] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		rec[len(rec)-1] = strconv.FormatFloat(pv.DSizeMB, 'g', -1, 64)
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a stream written by WriteCSV into a set over space.
func ReadCSV(r io.Reader, space *conf.Space) (*Set, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading header: %w", err)
	}
	want := space.Len() + 2 // t + params + dsize
	if len(header) != want {
		return nil, fmt.Errorf("dataset: header has %d columns, want %d", len(header), want)
	}
	s := NewSet(space)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		pv := PerfVector{Conf: make([]float64, space.Len())}
		if pv.TimeSec, err = strconv.ParseFloat(rec[0], 64); err != nil {
			return nil, fmt.Errorf("dataset: line %d time: %w", line, err)
		}
		for i := range pv.Conf {
			if pv.Conf[i], err = strconv.ParseFloat(rec[i+1], 64); err != nil {
				return nil, fmt.Errorf("dataset: line %d param %d: %w", line, i, err)
			}
		}
		if pv.DSizeMB, err = strconv.ParseFloat(rec[len(rec)-1], 64); err != nil {
			return nil, fmt.Errorf("dataset: line %d dsize: %w", line, err)
		}
		s.Vectors = append(s.Vectors, pv)
	}
	return s, nil
}
