package dataset

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/conf"
)

func fill(s *Set, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		cfg := s.Space.Random(rng)
		s.Add(cfg, 1024+rng.Float64()*10240, 10+rng.Float64()*1000)
	}
}

func TestAddAndConvert(t *testing.T) {
	space := conf.StandardSpace()
	s := NewSet(space)
	fill(s, 25, 1)
	if s.Len() != 25 {
		t.Fatalf("Len = %d", s.Len())
	}
	ds := s.ToDataset()
	if ds.Len() != 25 {
		t.Fatalf("dataset Len = %d", ds.Len())
	}
	if ds.Dim() != space.Len()+1 {
		t.Fatalf("Dim = %d, want %d (41 params + dsize)", ds.Dim(), space.Len()+1)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// dsize must be the final feature column.
	last := ds.Features[0][ds.Dim()-1]
	if last != s.Vectors[0].DSizeMB {
		t.Errorf("dsize column = %v, want %v", last, s.Vectors[0].DSizeMB)
	}
	names := s.FeatureNames()
	if names[len(names)-1] != "dsize" {
		t.Errorf("last feature name = %q", names[len(names)-1])
	}
}

func TestAddCopiesConfig(t *testing.T) {
	space := conf.StandardSpace()
	s := NewSet(space)
	cfg := space.Default()
	s.Add(cfg, 100, 10)
	cfg.Set(conf.ExecutorCores, 3)
	if s.Vectors[0].Conf[0] != space.Default().At(0) {
		t.Error("Add shares storage with the config")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	space := conf.StandardSpace()
	s := NewSet(space)
	fill(s, 40, 2)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, space)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("round trip Len %d != %d", got.Len(), s.Len())
	}
	for i := range s.Vectors {
		a, b := s.Vectors[i], got.Vectors[i]
		if a.TimeSec != b.TimeSec || a.DSizeMB != b.DSizeMB {
			t.Fatalf("vector %d: %v != %v", i, a, b)
		}
		for j := range a.Conf {
			if a.Conf[j] != b.Conf[j] {
				t.Fatalf("vector %d param %d: %v != %v", i, j, a.Conf[j], b.Conf[j])
			}
		}
	}
}

func TestCSVHeader(t *testing.T) {
	space := conf.StandardSpace()
	s := NewSet(space)
	fill(s, 1, 3)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(buf.String(), "\n", 2)[0]
	if !strings.HasPrefix(header, "t,spark.reducer.maxSizeInFlight,") {
		t.Errorf("header = %q", header)
	}
	if !strings.HasSuffix(header, ",dsize") {
		t.Errorf("header should end with dsize: %q", header)
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	space := conf.StandardSpace()
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n"), space); err == nil {
		t.Error("wrong column count should fail")
	}
	s := NewSet(space)
	fill(s, 1, 4)
	var buf bytes.Buffer
	s.WriteCSV(&buf)
	corrupted := strings.Replace(buf.String(), "\n1", "\nnot-a-number", 1)
	if _, err := ReadCSV(strings.NewReader(corrupted), space); err == nil {
		// The replacement may not hit a data line on every dataset;
		// only fail when corruption actually applied.
		if corrupted != buf.String() {
			t.Error("corrupt number should fail")
		}
	}
	if _, err := ReadCSV(strings.NewReader(""), space); err == nil {
		t.Error("empty stream should fail")
	}
}
