package ann

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
)

func synthDS(n int, seed int64) *model.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := model.NewDataset(nil)
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64() * 4, rng.Float64() * 4}
		t := 20 + 8*x[0] + 3*x[1]*x[1]
		ds.Add(x, t*(1+0.02*rng.NormFloat64()))
	}
	return ds
}

func quickOpt() Options {
	return Options{Hidden: []int{16}, Epochs: 150, Seed: 1}
}

func TestNetworkLearns(t *testing.T) {
	m, err := Train(synthDS(800, 1), quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	e := model.Evaluate(m, synthDS(200, 2))
	if e.Mean > 0.15 {
		t.Fatalf("ANN mean error %.1f%% too high", e.Mean*100)
	}
}

func TestTrainingBeatsInitialization(t *testing.T) {
	train := synthDS(500, 3)
	test := synthDS(200, 4)
	untrained, _ := Train(train, Options{Hidden: []int{16}, Epochs: 1, Seed: 1})
	trained, _ := Train(train, Options{Hidden: []int{16}, Epochs: 200, Seed: 1})
	if model.Evaluate(trained, test).Mean >= model.Evaluate(untrained, test).Mean {
		t.Fatal("200 epochs no better than 1 epoch")
	}
}

func TestRejectsBadInput(t *testing.T) {
	if _, err := Train(model.NewDataset(nil), quickOpt()); err == nil {
		t.Error("empty dataset should fail")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	ds := synthDS(200, 5)
	a, _ := Train(ds, quickOpt())
	b, _ := Train(ds, quickOpt())
	if a.Predict([]float64{1, 1}) != b.Predict([]float64{1, 1}) {
		t.Fatal("same seed differs")
	}
}

func TestPredictionsFinitePositive(t *testing.T) {
	m, err := Train(synthDS(400, 6), quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for k := 0; k < 100; k++ {
		x := []float64{rng.Float64() * 8, rng.Float64() * 8}
		p := m.Predict(x)
		if p <= 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatalf("prediction %v at %v", p, x)
		}
	}
}

func TestTrainerInterface(t *testing.T) {
	var tr model.Trainer = Trainer{Opt: quickOpt()}
	if tr.Name() != "ANN" {
		t.Errorf("Name = %q", tr.Name())
	}
	if _, err := tr.Train(synthDS(100, 8)); err != nil {
		t.Fatal(err)
	}
}
