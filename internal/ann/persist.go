package ann

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/model"
)

// snapshot is the serialized form of a Network: weights, biases, and the
// feature/target transforms. Momentum buffers are training state and are
// not persisted — a loaded network predicts bit-identically but is not
// resumable (the backend accordingly implements Saver/Loader, not
// Resumer).
type snapshot struct {
	Version     int
	Layers      []snapshotLayer
	Mean, Std   []float64
	YMean, YStd float64
	Log         bool
}

type snapshotLayer struct {
	W      [][]float64
	B      []float64
	Linear bool
}

const snapshotVersion = 1

// Save writes the network to w.
func (n *Network) Save(w io.Writer) error {
	snap := snapshot{
		Version: snapshotVersion,
		Mean:    n.std.Mean,
		Std:     n.std.Std,
		YMean:   n.yMean,
		YStd:    n.yStd,
		Log:     n.log,
	}
	for _, l := range n.layers {
		snap.Layers = append(snap.Layers, snapshotLayer{W: l.w, B: l.b, Linear: l.linear})
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("ann: saving network: %w", err)
	}
	return nil
}

// Load reads a network previously written by Save; predictions are
// bit-identical to the network that was saved.
func Load(r io.Reader) (*Network, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("ann: loading network: %w", err)
	}
	if snap.Version < 1 || snap.Version > snapshotVersion {
		return nil, fmt.Errorf("ann: network snapshot version %d, want 1..%d", snap.Version, snapshotVersion)
	}
	if len(snap.Layers) == 0 || len(snap.Mean) != len(snap.Std) {
		return nil, fmt.Errorf("ann: malformed snapshot: %d layers, %d/%d standardizer columns",
			len(snap.Layers), len(snap.Mean), len(snap.Std))
	}
	n := &Network{
		std:   &model.Standardizer{Mean: snap.Mean, Std: snap.Std},
		yMean: snap.YMean,
		yStd:  snap.YStd,
		log:   snap.Log,
	}
	for _, sl := range snap.Layers {
		if len(sl.W) != len(sl.B) {
			return nil, fmt.Errorf("ann: malformed snapshot: %d weight rows, %d biases", len(sl.W), len(sl.B))
		}
		n.layers = append(n.layers, &layer{w: sl.W, b: sl.B, linear: sl.Linear})
	}
	return n, nil
}

// Backend adapts the package to the model.Backend contract with a simple
// versioned codec as its persistence capability.
type Backend struct{ Opt Options }

// Name implements model.Backend.
func (Backend) Name() string { return "ann" }

// options merges the cross-backend knobs into the backend's own.
func (b Backend) options(opt model.TrainOpts) Options {
	eff := b.Opt
	if opt.Quick && eff.Epochs == 0 {
		eff.Epochs = 120
	}
	if opt.Epochs > 0 {
		eff.Epochs = opt.Epochs
	}
	if opt.Seed != 0 {
		eff.Seed = opt.Seed
	}
	return eff
}

// Train implements model.Backend.
func (b Backend) Train(ds *model.Dataset, opt model.TrainOpts) (model.Model, error) {
	return Train(ds, b.options(opt))
}

// Save implements model.Saver.
func (Backend) Save(m model.Model, w io.Writer) error {
	n, ok := m.(*Network)
	if !ok {
		return fmt.Errorf("ann: cannot save %T through the ann backend", m)
	}
	return n.Save(w)
}

// Load implements model.Loader.
func (Backend) Load(r io.Reader) (model.Model, error) { return Load(r) }
