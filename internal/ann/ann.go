// Package ann implements the artificial-neural-network baseline of §2.2.2
// (the technique of [21]): a fully connected multilayer perceptron trained
// with mini-batch SGD and momentum on standardized features, predicting
// (log) execution time.
package ann

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/model"
)

// Options are the network hyperparameters. The zero value selects two
// hidden layers of 32 and 16 tanh units, 400 epochs, learning rate 0.01.
type Options struct {
	// Hidden lists hidden-layer widths.
	Hidden []int
	// Epochs is the number of passes over the training set.
	Epochs int
	// LearningRate is the SGD step size.
	LearningRate float64
	// Momentum is the SGD momentum coefficient.
	Momentum float64
	// Batch is the mini-batch size.
	Batch int
	// L2 is the weight-decay coefficient.
	L2 float64
	// NoLogTarget disables fitting log execution time.
	NoLogTarget bool
	// Seed drives initialization and shuffling.
	Seed int64
}

func (o Options) withDefaults() Options {
	if len(o.Hidden) == 0 {
		o.Hidden = []int{32, 16}
	}
	if o.Epochs <= 0 {
		o.Epochs = 400
	}
	if o.LearningRate <= 0 {
		o.LearningRate = 0.01
	}
	if o.Momentum <= 0 {
		o.Momentum = 0.9
	}
	if o.Batch <= 0 {
		o.Batch = 32
	}
	if o.L2 < 0 {
		o.L2 = 0
	}
	return o
}

// layer is one dense layer: out = act(W·in + b).
type layer struct {
	w      [][]float64 // [out][in]
	b      []float64
	vw     [][]float64 // momentum buffers
	vb     []float64
	linear bool // output layer has no activation
}

// Network is a trained MLP implementing model.Model.
type Network struct {
	layers []*layer
	std    *model.Standardizer
	yMean  float64
	yStd   float64
	log    bool
}

// Predict runs a forward pass and returns seconds.
func (n *Network) Predict(x []float64) float64 {
	a := n.std.Apply(x)
	for _, l := range n.layers {
		a = l.forward(a)
	}
	v := a[0]*n.yStd + n.yMean
	if n.log {
		return math.Exp(v)
	}
	return v
}

func (l *layer) forward(in []float64) []float64 {
	out := make([]float64, len(l.w))
	for o := range l.w {
		s := l.b[o]
		row := l.w[o]
		for i, v := range in {
			s += row[i] * v
		}
		if l.linear {
			out[o] = s
		} else {
			out[o] = math.Tanh(s)
		}
	}
	return out
}

// Train fits an MLP to ds.
func Train(ds *model.Dataset, opt Options) (*Network, error) {
	opt = opt.withDefaults()
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("ann: %w", err)
	}
	n := ds.Len()
	if n < 5 {
		return nil, fmt.Errorf("ann: %d samples is too few", n)
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	std := model.FitStandardizer(ds)
	X := std.ApplyAll(ds.Features)
	y := make([]float64, n)
	for i, t := range ds.Targets {
		if opt.NoLogTarget {
			y[i] = t
		} else {
			y[i] = math.Log(math.Max(1e-9, t))
		}
	}
	yMean, yStd := meanStd(y)
	for i := range y {
		y[i] = (y[i] - yMean) / yStd
	}

	net := &Network{std: std, yMean: yMean, yStd: yStd, log: !opt.NoLogTarget}
	sizes := append([]int{ds.Dim()}, opt.Hidden...)
	sizes = append(sizes, 1)
	for li := 1; li < len(sizes); li++ {
		net.layers = append(net.layers, newLayer(sizes[li-1], sizes[li], li == len(sizes)-1, rng))
	}

	// Mini-batch SGD with momentum.
	order := rng.Perm(n)
	acts := make([][]float64, len(net.layers)+1)
	deltas := make([][]float64, len(net.layers))
	for li, l := range net.layers {
		deltas[li] = make([]float64, len(l.w))
	}
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		shuffle(order, rng)
		lr := opt.LearningRate / (1 + 0.01*float64(epoch))
		for start := 0; start < n; start += opt.Batch {
			end := start + opt.Batch
			if end > n {
				end = n
			}
			batchLR := lr / float64(end-start)
			for _, idx := range order[start:end] {
				// Forward.
				acts[0] = X[idx]
				for li, l := range net.layers {
					acts[li+1] = l.forward(acts[li])
				}
				// Backward (squared loss).
				out := acts[len(acts)-1][0]
				deltas[len(deltas)-1][0] = out - y[idx]
				for li := len(net.layers) - 2; li >= 0; li-- {
					l := net.layers[li]
					next := net.layers[li+1]
					for o := range l.w {
						s := 0.0
						for no := range next.w {
							s += next.w[no][o] * deltas[li+1][no]
						}
						a := acts[li+1][o]
						deltas[li][o] = s * (1 - a*a) // tanh'
					}
				}
				// Update with momentum.
				for li, l := range net.layers {
					in := acts[li]
					for o := range l.w {
						g := deltas[li][o]
						for i := range l.w[o] {
							l.vw[o][i] = opt.Momentum*l.vw[o][i] - batchLR*(g*in[i]+opt.L2*l.w[o][i])
							l.w[o][i] += l.vw[o][i]
						}
						l.vb[o] = opt.Momentum*l.vb[o] - batchLR*g
						l.b[o] += l.vb[o]
					}
				}
			}
		}
	}
	return net, nil
}

func newLayer(in, out int, linear bool, rng *rand.Rand) *layer {
	l := &layer{
		w:      make([][]float64, out),
		b:      make([]float64, out),
		vw:     make([][]float64, out),
		vb:     make([]float64, out),
		linear: linear,
	}
	scale := math.Sqrt(2.0 / float64(in+out)) // Glorot
	for o := range l.w {
		l.w[o] = make([]float64, in)
		l.vw[o] = make([]float64, in)
		for i := range l.w[o] {
			l.w[o][i] = rng.NormFloat64() * scale
		}
	}
	return l
}

func meanStd(xs []float64) (float64, float64) {
	m := 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	s := math.Sqrt(v / float64(len(xs)))
	if s < 1e-12 {
		s = 1
	}
	return m, s
}

func shuffle(idx []int, rng *rand.Rand) {
	for i := len(idx) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		idx[i], idx[j] = idx[j], idx[i]
	}
}

// Trainer adapts Train to model.Trainer.
type Trainer struct{ Opt Options }

// Name implements model.Trainer.
func (Trainer) Name() string { return "ANN" }

// Train implements model.Trainer.
func (t Trainer) Train(ds *model.Dataset) (model.Model, error) { return Train(ds, t.Opt) }
