package ann

import "testing"

// BenchmarkTrain measures fitting the MLP baseline at a reduced epoch
// budget (full training is benchmarked via the figure harness).
func BenchmarkTrain(b *testing.B) {
	ds := synthDS(800, 1)
	opt := Options{Hidden: []int{16}, Epochs: 50, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Train(ds, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredict measures one forward pass.
func BenchmarkPredict(b *testing.B) {
	ds := synthDS(400, 2)
	m, err := Train(ds, Options{Hidden: []int{16}, Epochs: 20, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	x := ds.Features[3]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(x)
	}
}
