package serve

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/hm"
	"repro/internal/model"
	"repro/internal/obs"
)

// registryDS builds a small synthetic dataset for registry tests.
func registryDS(n int, seed int64) *model.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := model.NewDataset([]string{"a", "b", "dsize"})
	for i := 0; i < n; i++ {
		a, b, d := rng.Float64()*10, rng.Float64()*5, 10+rng.Float64()*90
		ds.Add([]float64{a, b, d}, 5+2*a+a*b+0.1*d+rng.NormFloat64()*0.2)
	}
	return ds
}

func trainSmall(t *testing.T, seed int64) *hm.Model {
	t.Helper()
	m, err := hm.Train(registryDS(400, seed), hm.Options{Trees: 40, LearningRate: 0.1, TreeComplexity: 5, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRegistryVersioning(t *testing.T) {
	reg, err := NewModelRegistry(filepath.Join(t.TempDir(), "models"))
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := trainSmall(t, 1), trainSmall(t, 2)
	v1, err := reg.Save("ts", m1, ModelMeta{Workload: "TS", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := reg.Save("ts", m2, ModelMeta{Workload: "TS", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if v1 != 1 || v2 != 2 {
		t.Fatalf("versions %d,%d, want 1,2", v1, v2)
	}

	// Latest (version 0) must be the second model, bit-identical.
	got, meta, err := reg.Load("ts", 0)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Version != 2 || meta.Seed != 2 {
		t.Fatalf("latest meta = v%d seed %d, want v2 seed 2", meta.Version, meta.Seed)
	}
	probe := registryDS(50, 9)
	for i, x := range probe.Features {
		if a, b := got.Predict(x), m2.Predict(x); a != b {
			t.Fatalf("probe %d: reloaded latest predicts %v, trained %v", i, a, b)
		}
	}
	old, meta1, err := reg.Load("ts", 1)
	if err != nil {
		t.Fatal(err)
	}
	if meta1.Seed != 1 {
		t.Fatalf("v1 meta seed %d, want 1", meta1.Seed)
	}
	for i, x := range probe.Features {
		if a, b := old.Predict(x), m1.Predict(x); a != b {
			t.Fatalf("probe %d: v1 drifted after v2 landed: %v vs %v", i, a, b)
		}
	}

	versions, err := reg.Versions("ts")
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 2 || versions[0].Version != 1 || versions[1].Version != 2 {
		t.Fatalf("versions = %+v", versions)
	}
	if versions[0].Trees != m1.NumTrees() || versions[0].ValErr != m1.ValErr {
		t.Fatal("meta did not capture the model's trees/valerr")
	}
}

func TestRegistryListAndMissing(t *testing.T) {
	reg, err := NewModelRegistry(filepath.Join(t.TempDir(), "models"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg.Load("nope", 0); err == nil {
		t.Fatal("loading a missing model should fail")
	}
	if _, _, err := reg.Load("nope", 3); err == nil {
		t.Fatal("loading a missing version should fail")
	}
	if _, err := reg.Save("Bad Name", trainSmall(t, 1), ModelMeta{}); err == nil {
		t.Fatal("uppercase/space model names should be rejected")
	}
	if _, err := reg.Save("../escape", trainSmall(t, 1), ModelMeta{}); err == nil {
		t.Fatal("path-traversal names should be rejected")
	}

	reg.Save("beta", trainSmall(t, 1), ModelMeta{})
	reg.Save("alpha", trainSmall(t, 2), ModelMeta{})
	reg.Save("alpha", trainSmall(t, 3), ModelMeta{})
	list, err := reg.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].Name != "alpha" || list[1].Name != "beta" {
		t.Fatalf("list = %+v", list)
	}
	if list[0].Version != 2 {
		t.Fatalf("alpha latest = v%d, want v2", list[0].Version)
	}
}

// TestRegistryWarmStart pins the registry's reason to exist beyond
// storage: a loaded model continues training through hm.Resume exactly
// as the never-persisted original would (the v2 snapshot keeps the
// binned form), and re-registering lands a new version.
func TestRegistryWarmStart(t *testing.T) {
	reg, err := NewModelRegistry(filepath.Join(t.TempDir(), "models"))
	if err != nil {
		t.Fatal(err)
	}
	ds := registryDS(500, 11)
	opt := hm.Options{Trees: 40, LearningRate: 0.1, TreeComplexity: 5, Seed: 11}
	orig, err := hm.Train(ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Save("warm", orig, ModelMeta{Seed: 11}); err != nil {
		t.Fatal(err)
	}
	loadedModel, _, err := reg.Load("warm", 0)
	if err != nil {
		t.Fatal(err)
	}
	loaded, ok := loadedModel.(*hm.Model)
	if !ok {
		t.Fatalf("registry returned %T for an hm entry", loadedModel)
	}
	if err := hm.Resume(orig, ds, opt, 25); err != nil {
		t.Fatal(err)
	}
	if err := hm.Resume(loaded, ds, opt, 25); err != nil {
		t.Fatal(err)
	}
	probe := registryDS(60, 12)
	for i, x := range probe.Features {
		if a, b := orig.Predict(x), loaded.Predict(x); a != b {
			t.Fatalf("probe %d: warm start from registry diverged: %v vs %v", i, a, b)
		}
	}
	v, err := reg.Save("warm", loaded, ModelMeta{Seed: 11, WarmFrom: "warm@v1"})
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("warm-started model registered as v%d, want v2", v)
	}
}

// TestRegistryAllBackendsRoundTrip saves a model from every registered
// backend and loads it back through the backend-tagged reader: the meta
// must carry the backend name and the reloaded model must predict
// bit-identically.
func TestRegistryAllBackendsRoundTrip(t *testing.T) {
	reg, err := NewModelRegistry(filepath.Join(t.TempDir(), "models"))
	if err != nil {
		t.Fatal(err)
	}
	train := registryDS(300, 21)
	probe := registryDS(64, 22)
	ref := make([]float64, len(probe.Features))
	out := make([]float64, len(probe.Features))
	for _, name := range reg.Backends().Names() {
		b, err := reg.Backends().Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := b.Train(train, model.TrainOpts{Seed: 7, Quick: true})
		if err != nil {
			t.Fatalf("%s: train: %v", name, err)
		}
		v, err := reg.Save("rt-"+name, m, ModelMeta{Backend: name, Seed: 7})
		if err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		got, meta, err := reg.Load("rt-"+name, v)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if meta.Backend != name {
			t.Fatalf("%s: reloaded meta tagged %q", name, meta.Backend)
		}
		model.PredictBatch(m, probe.Features, ref)
		model.PredictBatch(got, probe.Features, out)
		for i := range ref {
			if ref[i] != out[i] {
				t.Fatalf("%s: probe %d: registry round trip predicts %v, trained %v", name, i, out[i], ref[i])
			}
		}
	}
}

// TestRegistryLegacyUntaggedHM loads an entry written before the backend
// layer existed: an hm snapshot beside a meta JSON with no backend field.
// The tagged reader must default it to hm rather than refusing it.
func TestRegistryLegacyUntaggedHM(t *testing.T) {
	root := filepath.Join(t.TempDir(), "models")
	reg, err := NewModelRegistry(root)
	if err != nil {
		t.Fatal(err)
	}
	m := trainSmall(t, 31)
	dir := filepath.Join(root, "legacy")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, "v1.model"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// A pre-backend meta file: no "backend" key at all.
	legacyMeta := []byte(`{"name":"legacy","version":1,"seed":31,"trees":40,"order":2,"val_err":0.01,"created_unix":1700000000}`)
	if err := os.WriteFile(filepath.Join(dir, "v1.json"), legacyMeta, 0o644); err != nil {
		t.Fatal(err)
	}

	got, meta, err := reg.Load("legacy", 0)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Backend != "" || meta.backendName() != "hm" {
		t.Fatalf("legacy meta backend = %q (resolves %q), want untagged hm", meta.Backend, meta.backendName())
	}
	loaded, ok := got.(*hm.Model)
	if !ok {
		t.Fatalf("legacy entry loaded as %T, want *hm.Model", got)
	}
	probe := registryDS(50, 32)
	for i, x := range probe.Features {
		if a, b := loaded.Predict(x), m.Predict(x); a != b {
			t.Fatalf("probe %d: legacy stream drifted through the tagged reader: %v vs %v", i, a, b)
		}
	}
}

// GC keeps only the newest N versions: pruning runs after every save and
// GCAll sweeps a registry that grew before GC was enabled.
func TestRegistryGC(t *testing.T) {
	reg, err := NewModelRegistry(filepath.Join(t.TempDir(), "models"))
	if err != nil {
		t.Fatal(err)
	}
	// Grow to 4 versions with GC off, then enable: GCAll prunes to 2.
	for seed := int64(1); seed <= 4; seed++ {
		if _, err := reg.Save("ts", trainSmall(t, seed), ModelMeta{Workload: "TS", Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
	pruned := obs.NewRegistry().Counter("serve.registry.gc.pruned")
	reg.EnableGC(2, pruned)
	if err := reg.GCAll(); err != nil {
		t.Fatal(err)
	}
	vs, err := reg.Versions("ts")
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 || vs[0].Version != 3 || vs[1].Version != 4 {
		t.Fatalf("after GCAll versions = %+v, want v3,v4", vs)
	}
	if pruned.Value() != 2 {
		t.Fatalf("pruned counter = %d, want 2", pruned.Value())
	}
	// A pruned version is really gone; the survivors still load.
	if _, _, err := reg.Load("ts", 1); err == nil {
		t.Fatal("pruned v1 still loads")
	}
	if _, _, err := reg.Load("ts", 0); err != nil {
		t.Fatalf("latest failed to load after GC: %v", err)
	}

	// Saves keep pruning: v5 arrives, v3 goes.
	if _, err := reg.Save("ts", trainSmall(t, 5), ModelMeta{Workload: "TS", Seed: 5}); err != nil {
		t.Fatal(err)
	}
	vs, err = reg.Versions("ts")
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 || vs[0].Version != 4 || vs[1].Version != 5 {
		t.Fatalf("after save versions = %+v, want v4,v5", vs)
	}
	// Version numbering never reuses pruned numbers.
	if v, _ := reg.Save("ts", trainSmall(t, 6), ModelMeta{Workload: "TS", Seed: 6}); v != 6 {
		t.Fatalf("next version = %d, want 6", v)
	}
}
