package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// quickCollect is a spec small enough to finish in milliseconds — the
// unit the lifecycle races run on.
func quickCollect(seed int64, ntrain int) JobSpec {
	return JobSpec{Type: JobCollect, Workload: "TS", NTrain: ntrain, Seed: seed, Quick: true, Parallelism: 2}
}

// jobFileState reads a job's persisted state straight from disk.
func jobFileState(t *testing.T, dataDir string, id int64) Job {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dataDir, "jobs", fmt.Sprintf("%d.json", id)))
	if err != nil {
		t.Fatalf("job %d has no persisted file: %v", id, err)
	}
	var j Job
	if err := json.Unmarshal(b, &j); err != nil {
		t.Fatal(err)
	}
	return j
}

// TestCancelFinishRace hammers Cancel against job completion from both
// sides of the transition: whatever the interleaving, the job must land
// in exactly one terminal state (done or cancelled), stay there, and
// have its persisted file agree with memory — no late setState may
// overwrite a terminal state. Run under -race; exercised at GOMAXPROCS
// 1 and 4 because the interleavings differ.
func TestCancelFinishRace(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 4} {
		t.Run(fmt.Sprintf("gomaxprocs=%d", procs), func(t *testing.T) {
			runtime.GOMAXPROCS(procs)
			dataDir := t.TempDir()
			m, err := NewManager(dataDir, 2, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			for round := 0; round < 12; round++ {
				id, deduped, err := m.Submit(quickCollect(int64(round+1), 24))
				if err != nil {
					t.Fatal(err)
				}
				if deduped {
					t.Fatalf("round %d: fresh spec deduped", round)
				}
				// Cancel concurrently with the run. Odd rounds give the job
				// a head start so some cancels race the completion itself
				// rather than the dequeue.
				done := make(chan struct{})
				go func() {
					defer close(done)
					if round%2 == 1 {
						time.Sleep(time.Duration(round) * time.Millisecond)
					}
					for {
						err := m.Cancel(id)
						if err == nil {
							j, _ := m.Get(id)
							if j.State == StateQueued || j.State == StateRunning {
								// Cancel was accepted while live; the pipeline
								// will notice. Keep nudging until terminal.
								time.Sleep(100 * time.Microsecond)
								continue
							}
						}
						return // terminal (either we cancelled it or it finished)
					}
				}()
				waitFor(t, 10*time.Second, func() bool {
					j, ok := m.Get(id)
					return ok && (j.State == StateDone || j.State == StateFailed || j.State == StateCancelled)
				})
				<-done
				j, _ := m.Get(id)
				switch j.State {
				case StateDone:
					if len(j.Result) == 0 {
						t.Fatalf("round %d: done job has no result", round)
					}
				case StateCancelled:
					// fine — cancel won
				default:
					t.Fatalf("round %d: job ended %q: %+v", round, j.State, j)
				}
				// The state must be stable and the persisted file must agree:
				// a loser writing late would flip one or the other.
				time.Sleep(5 * time.Millisecond)
				j2, _ := m.Get(id)
				if j2.State != j.State {
					t.Fatalf("round %d: terminal state flipped %q → %q", round, j.State, j2.State)
				}
				onDisk := jobFileState(t, dataDir, id)
				if onDisk.State != j2.State {
					t.Fatalf("round %d: disk says %q, memory says %q", round, onDisk.State, j2.State)
				}
			}
		})
	}
}

// TestCancelQueuedNeverRuns pins the cancel-before-dequeue point: a job
// cancelled while queued behind a blocker must never execute.
func TestCancelQueuedNeverRuns(t *testing.T) {
	dataDir := t.TempDir()
	m, err := NewManager(dataDir, 1, nil) // one worker so the victim queues
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	release := make(chan struct{})
	var once sync.Once
	m.testBatchHook = func(int) {
		once.Do(func() {}) // first checkpoint: blocker is running
		select {
		case <-release:
		case <-m.rootCtx.Done():
		}
	}
	blocker, _, err := m.Submit(quickCollect(1, 64))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		j, _ := m.Get(blocker)
		return j.State == StateRunning
	})
	victim, _, err := m.Submit(quickCollect(2, 64))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(victim); err != nil {
		t.Fatal(err)
	}
	if j, _ := m.Get(victim); j.State != StateCancelled {
		t.Fatalf("queued victim is %q after cancel", j.State)
	}
	close(release)
	waitFor(t, 10*time.Second, func() bool {
		j, _ := m.Get(blocker)
		return j.State == StateDone
	})
	// The victim must not have been revived by its queue entry.
	if j, _ := m.Get(victim); j.State != StateCancelled {
		t.Fatalf("cancelled victim became %q", j.State)
	}
	if _, err := os.Stat(filepath.Join(dataDir, "journals", fmt.Sprintf("job-%d.journal", victim))); !os.IsNotExist(err) {
		t.Fatal("cancelled victim left a journal — it executed")
	}
}

// TestCancelThenResubmitRunsFresh is the dedup-after-cancel contract: the
// moment a running job's cancellation is requested, an identical spec
// submitted again must get a new job ID and really re-execute rather
// than dedup onto the doomed job.
func TestCancelThenResubmitRunsFresh(t *testing.T) {
	dataDir := t.TempDir()
	m, err := NewManager(dataDir, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	spec := quickCollect(9, 64)

	var held atomic.Bool
	held.Store(true)
	release := make(chan struct{})
	m.testBatchHook = func(int) {
		if held.Load() {
			select {
			case <-release:
			case <-m.rootCtx.Done():
			}
		}
	}
	first, _, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		j, _ := m.Get(first)
		return j.State == StateRunning
	})
	// Sanity: while running (and not cancelled), the same spec dedups.
	dup, deduped, err := m.Submit(spec)
	if err != nil || !deduped || dup != first {
		t.Fatalf("pre-cancel submit: id=%d deduped=%v err=%v, want dedup onto %d", dup, deduped, err, first)
	}

	if err := m.Cancel(first); err != nil {
		t.Fatal(err)
	}
	j, _ := m.Get(first)
	if !j.CancelRequested {
		t.Fatal("cancel request not recorded on the running job")
	}
	if disk := jobFileState(t, dataDir, first); !disk.CancelRequested {
		t.Fatal("cancel request not persisted")
	}

	// Resubmit while the old job is still winding down: must run fresh.
	second, deduped, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if deduped || second == first {
		t.Fatalf("post-cancel submit deduped onto the cancelled job (id=%d deduped=%v)", second, deduped)
	}

	held.Store(false)
	close(release)
	waitFor(t, 15*time.Second, func() bool {
		a, _ := m.Get(first)
		b, _ := m.Get(second)
		return a.State == StateCancelled && b.State == StateDone
	})
	// Real re-execution: the new job wrote its own journal and produced a
	// full result of its own.
	if _, err := os.Stat(filepath.Join(dataDir, "journals", fmt.Sprintf("job-%d.journal", second))); err != nil {
		t.Fatalf("resubmitted job has no journal of its own: %v", err)
	}
	b, _ := m.Get(second)
	var res struct {
		Rows int `json:"rows"`
	}
	if err := json.Unmarshal(b.Result, &res); err != nil || res.Rows != spec.NTrain {
		t.Fatalf("resubmitted job result %s (err %v), want %d fresh rows", b.Result, err, spec.NTrain)
	}
	// And a third submit now dedups onto the healthy finished job.
	third, deduped, err := m.Submit(spec)
	if err != nil || !deduped || third != second {
		t.Fatalf("post-completion submit: id=%d deduped=%v err=%v, want dedup onto %d", third, deduped, err, second)
	}
}

// TestAdoptionHonorsPendingCancel covers the daemon dying between a
// cancel request and the pipeline noticing: the restarted manager must
// mark the job cancelled, not resurrect it.
func TestAdoptionHonorsPendingCancel(t *testing.T) {
	dataDir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dataDir, "jobs"), 0o755); err != nil {
		t.Fatal(err)
	}
	spec := quickCollect(4, 40)
	j := Job{ID: 7, Spec: spec, State: StateRunning, SpecHash: specHash(spec), CancelRequested: true, CreatedUnix: 1, UpdatedUnix: 1}
	b, _ := json.Marshal(j)
	if err := os.WriteFile(filepath.Join(dataDir, "jobs", "7.json"), b, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(dataDir, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	got, ok := m.Get(7)
	if !ok || got.State != StateCancelled {
		t.Fatalf("adopted job is %q, want cancelled honored across restart", got.State)
	}
	if disk := jobFileState(t, dataDir, 7); disk.State != StateCancelled {
		t.Fatalf("disk still says %q", disk.State)
	}
	// The cancelled job must not hold the dedup slot: same spec runs anew.
	id, deduped, err := m.Submit(spec)
	if err != nil || deduped || id == 7 {
		t.Fatalf("submit after adopted cancel: id=%d deduped=%v err=%v", id, deduped, err)
	}
}

// TestSpecNumericValidation pins satellite 2's API half: negative
// budgets are rejected at Submit (and as HTTP 400), never silently
// misread downstream.
func TestSpecNumericValidation(t *testing.T) {
	m, err := NewManager(t.TempDir(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	base := JobSpec{Type: JobTune, Workload: "TS", Quick: true}
	bad := []JobSpec{}
	for _, mut := range []func(*JobSpec){
		func(s *JobSpec) { s.NTrain = -1 },
		func(s *JobSpec) { s.Size = -5 },
		func(s *JobSpec) { s.Seed = -2 },
		func(s *JobSpec) { s.Parallelism = -1 },
		func(s *JobSpec) { s.HMTrees = -10 },
		func(s *JobSpec) { s.GAPop = -1 },
		func(s *JobSpec) { s.GAGenerations = -1 },
		func(s *JobSpec) { s.ExtraTrees = -1 },
		func(s *JobSpec) { s.ModelVersion = -1 },
		func(s *JobSpec) { s.ScreenSamples = -1 },
		func(s *JobSpec) { s.TopK = -1 },
		func(s *JobSpec) { s.Iterations = -1 },
		func(s *JobSpec) { s.IterBatch = -1 },
	} {
		s := base
		mut(&s)
		bad = append(bad, s)
	}
	for i, s := range bad {
		if _, _, err := m.Submit(s); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
	// tune_online needs an importance-capable backend.
	if _, _, err := m.Submit(JobSpec{Type: JobTuneOnline, Workload: "TS", Backend: "svm", Quick: true}); err == nil {
		t.Error("tune_online with an importance-less backend accepted")
	}

	_, ts := newTestServer(t, obs.NewRegistry())
	for i, s := range bad {
		if code := postJSON(t, ts.URL+"/jobs", s, nil); code != http.StatusBadRequest {
			t.Errorf("bad spec %d returned HTTP %d, want 400", i, code)
		}
	}
}
