package serve

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/conf"
	"repro/internal/fleet"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/search"
	"repro/internal/workloads"
)

// Server is the dacd HTTP front end: a JSON API over a Manager and its
// model registry.
//
//	POST /jobs                      submit a JobSpec        → {"id": N, "deduped": bool}
//	GET  /jobs                      list jobs
//	GET  /jobs/{id}                 one job (state, progress, result)
//	POST /jobs/{id}/cancel          cancel a queued/running job
//	GET  /models                    latest version of every model
//	GET  /models/{name}             every version's metadata
//	POST /models/{name}/predict     predict a config's time  → {"predicted_sec": s}
//	GET  /backends                  model backends + capabilities
//	GET  /searchers                 registered searcher names
//	GET  /metrics                   obs registry as JSON
//	GET  /healthz                   liveness
type Server struct {
	manager *Manager
	obs     *obs.Registry
	mux     *http.ServeMux
	// cache is the hot serving path (hotcache.go); nil when
	// ServingOptions.Disabled routes predicts through registry.Load.
	cache *ModelCache
	space *conf.Space
	// fleet is the sweep coordinator (nil without FleetOptions.Enabled);
	// its /workers routes mount on mux and collect jobs dispatch through
	// it when workers are live.
	fleet *fleet.Coordinator
	// authToken, when non-empty, gates every mutating endpoint behind a
	// constant-time Bearer-token check.
	authToken string
	// limiter, when non-nil, throttles mutating requests per bearer
	// token (ratelimit.go); breaches answer 429.
	limiter *tokenLimiter

	predicts       *obs.Counter
	predictLatency *obs.Histogram
	authDenied     *obs.Counter
	authThrottled  *obs.Counter
}

// ServerOptions configure NewServerOpts beyond the data directory.
type ServerOptions struct {
	// Workers bounds concurrent jobs (min 1).
	Workers int
	// Obs receives the daemon's metrics; nil runs without metrics.
	Obs *obs.Registry
	// Serving tunes the hot predict path (hotcache.go).
	Serving ServingOptions
	// Fleet enables and tunes the sweep coordinator (DESIGN.md §15).
	Fleet FleetOptions
	// AuthToken, when non-empty, is the shared secret required (as
	// "Authorization: Bearer <token>") on every mutating endpoint: job
	// submission, cancellation, and the fleet worker protocol. Reads
	// (job status, models, metrics, health) stay open.
	AuthToken string
	// GCKeepVersions, when > 0, prunes each model to its newest N
	// versions — on startup and after every registration.
	GCKeepVersions int
	// RateLimit, when > 0, caps mutating requests per second per bearer
	// token (burst = max(RateLimit, 1)); requests past the cap answer
	// HTTP 429 and count on "serve.auth.throttled". Zero runs
	// unthrottled.
	RateLimit float64
}

// FleetOptions configure the daemon's sweep coordinator.
type FleetOptions struct {
	// Enabled mounts the /workers protocol and routes collect sweeps
	// through the coordinator whenever it has live workers.
	Enabled bool
	// LeaseTTL and ChunkRows tune the lease state machine; zero takes
	// the fleet defaults (10s, 64 rows).
	LeaseTTL  time.Duration
	ChunkRows int
}

// NewServer opens dataDir (creating the layout if needed), adopts
// persisted jobs, and starts the worker pool with default serving
// options. reg may be nil to run without metrics; /metrics then reports
// an empty registry.
func NewServer(dataDir string, workers int, reg *obs.Registry) (*Server, error) {
	return NewServerOpts(dataDir, ServerOptions{Workers: workers, Obs: reg})
}

// NewServerOpts is NewServer with explicit serving options.
func NewServerOpts(dataDir string, opt ServerOptions) (*Server, error) {
	mgr, err := NewManager(dataDir, opt.Workers, opt.Obs)
	if err != nil {
		return nil, err
	}
	reg := opt.Obs
	s := &Server{
		manager:        mgr,
		obs:            reg,
		mux:            http.NewServeMux(),
		space:          conf.StandardSpace(),
		authToken:      opt.AuthToken,
		predicts:       reg.Counter("serve.predicts"),
		predictLatency: reg.Histogram("serve.predict.latency", obs.DefaultLatencyBounds),
		authDenied:     reg.Counter("serve.auth.denied"),
		authThrottled:  reg.Counter("serve.auth.throttled"),
	}
	if opt.RateLimit > 0 {
		s.limiter = newTokenLimiter(opt.RateLimit)
	}
	if opt.GCKeepVersions > 0 {
		mgr.Models().EnableGC(opt.GCKeepVersions, reg.Counter("serve.registry.gc.pruned"))
		if err := mgr.Models().GCAll(); err != nil {
			return nil, fmt.Errorf("serve: registry gc: %w", err)
		}
	}
	if opt.Fleet.Enabled {
		s.fleet = fleet.NewCoordinator(fleet.Options{
			LeaseTTL:  opt.Fleet.LeaseTTL,
			ChunkRows: opt.Fleet.ChunkRows,
			Obs:       reg,
		})
		mgr.SetFleet(s.fleet)
		s.fleet.Routes(s.mux, s.requireAuth)
	}
	if !opt.Serving.Disabled {
		s.cache = NewModelCache(mgr.Models(), opt.Serving, reg)
		// New registrations (train/tune jobs) swap into the cache as
		// they land, so version-0 predicts follow retrains immediately.
		mgr.Models().SetOnSave(s.cache.Refresh)
		// Warm every registry latest now, instead of faulting decodes on
		// the first predicts after a restart.
		s.cache.WarmAll()
	}
	s.mux.Handle("POST /jobs", s.requireAuth(http.HandlerFunc(s.handleSubmit)))
	s.mux.HandleFunc("GET /jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleGetJob)
	s.mux.Handle("POST /jobs/{id}/cancel", s.requireAuth(http.HandlerFunc(s.handleCancel)))
	s.mux.HandleFunc("GET /models", s.handleListModels)
	s.mux.HandleFunc("GET /models/{name}", s.handleGetModel)
	s.mux.HandleFunc("POST /models/{name}/predict", s.handlePredict)
	s.mux.HandleFunc("GET /backends", s.handleBackends)
	s.mux.HandleFunc("GET /searchers", s.handleSearchers)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s, nil
}

// Manager exposes the job manager (tests and the CLI use it directly).
func (s *Server) Manager() *Manager { return s.manager }

// Fleet exposes the sweep coordinator (nil unless FleetOptions.Enabled).
func (s *Server) Fleet() *fleet.Coordinator { return s.fleet }

// requireAuth wraps a mutating handler with the per-token rate limit
// and the shared-secret check, in that order: the limiter keys on the
// raw Bearer token as sent, so it throttles bad-token floods before
// they reach the auth compare. A daemon started without -auth-token
// runs open (the historical behavior); with one, requests must carry it
// as a Bearer token. The comparison is constant-time so the token can't
// be guessed byte-by-byte through response timing.
func (s *Server) requireAuth(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tok, _ := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if s.limiter != nil && !s.limiter.allow(tok, time.Now()) {
			s.authThrottled.Inc()
			writeError(w, http.StatusTooManyRequests, fmt.Errorf("rate limit exceeded for this token"))
			return
		}
		if s.authToken != "" {
			if subtle.ConstantTimeCompare([]byte(tok), []byte(s.authToken)) != 1 {
				s.authDenied.Inc()
				writeError(w, http.StatusUnauthorized, fmt.Errorf("missing or invalid auth token"))
				return
			}
		}
		h.ServeHTTP(w, r)
	})
}

// Cache exposes the hot-model cache (nil when serving is disabled).
func (s *Server) Cache() *ModelCache { return s.cache }

// Close shuts the worker pool down; see Manager.Close for durability.
func (s *Server) Close() { s.manager.Close() }

// Handler returns the HTTP handler with request metrics wrapped around
// the route table.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sp := s.obs.StartSpan("serve.http")
		defer sp.End()
		s.obs.Counter("serve.http.requests").Inc()
		s.mux.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding job spec: %w", err))
		return
	}
	id, deduped, err := s.manager.Submit(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"id": id, "deduped": deduped})
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.manager.List()})
}

func jobID(r *http.Request) (int64, error) {
	return strconv.ParseInt(r.PathValue("id"), 10, 64)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	id, err := jobID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job id"))
		return
	}
	j, ok := s.manager.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("job %d not found", id))
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, err := jobID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job id"))
		return
	}
	if err := s.manager.Cancel(id); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "cancelling": true})
}

func (s *Server) handleListModels(w http.ResponseWriter, r *http.Request) {
	list, err := s.manager.Models().List()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"models": list})
}

func (s *Server) handleGetModel(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	versions, err := s.manager.Models().Versions(name)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(versions) == 0 {
		writeError(w, http.StatusNotFound, fmt.Errorf("model %q not found", name))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"name": name, "versions": versions})
}

// predictRequest asks a registered model for a prediction. The
// configuration starts from the space default; Config overrides
// individual parameters by name. Vector gives the full encoded
// configuration instead — a request carrying both is ambiguous and
// rejected. The datasize is given in MB, or in the workload's units when
// Workload is set.
type predictRequest struct {
	Version   int                `json:"version,omitempty"` // 0 = latest
	DsizeMB   float64            `json:"dsize_mb,omitempty"`
	Workload  string             `json:"workload,omitempty"`
	SizeUnits float64            `json:"size,omitempty"`
	Config    map[string]float64 `json:"config,omitempty"`
	Vector    []float64          `json:"vector,omitempty"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	name := r.PathValue("name")
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding predict request: %w", err))
		return
	}
	if req.Vector != nil && len(req.Config) > 0 {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("ambiguous request: give either vector or config, not both"))
		return
	}
	// Resolve the model first: an unknown model or version is 404
	// regardless of what else is wrong with the request. The hot path
	// resolves from the pinned cache — one atomic load on a hit; the
	// disabled path is the original Load-per-request decode.
	var (
		meta ModelMeta
		hot  *hotModel
		mdl  model.Model
		err  error
	)
	if s.cache != nil {
		hot, err = s.cache.Entry(name, req.Version)
		if err == nil {
			meta = hot.Meta()
		}
	} else {
		mdl, meta, err = s.manager.Models().Load(name, req.Version)
	}
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	var cfg conf.Config
	if req.Vector != nil {
		cfg, err = s.space.FromVector(req.Vector)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	} else {
		cfg = s.space.Default()
		for k, v := range req.Config {
			if _, ok := s.space.Index(k); !ok {
				writeError(w, http.StatusBadRequest, fmt.Errorf("unknown parameter %q", k))
				return
			}
			cfg = cfg.Set(k, v)
		}
	}
	dsize := req.DsizeMB
	if req.Workload != "" {
		wl, err := workloads.ByAbbr(strings.ToUpper(req.Workload))
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		units := req.SizeUnits
		if units == 0 {
			units = wl.Sizes[len(wl.Sizes)/2]
		}
		dsize = wl.InputMB(units)
	}
	if dsize <= 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("need dsize_mb or workload+size"))
		return
	}
	x := append(cfg.Vector(), dsize)
	var pred float64
	if hot != nil {
		pred = hot.Predict(x)
	} else {
		pred = mdl.Predict(x)
	}
	s.predicts.Inc()
	s.predictLatency.Observe(time.Since(start).Seconds())
	writeJSON(w, http.StatusOK, map[string]any{
		"model":         meta.Name,
		"version":       meta.Version,
		"dsize_mb":      dsize,
		"predicted_sec": pred,
	})
}

func (s *Server) handleBackends(w http.ResponseWriter, r *http.Request) {
	reg := s.manager.Models().Backends()
	out := make([]map[string]any, 0, len(reg.Names()))
	for _, name := range reg.Names() {
		b, err := reg.Lookup(name)
		if err != nil {
			continue
		}
		out = append(out, map[string]any{
			"name":         name,
			"capabilities": model.CapabilitiesOf(b),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"backends": out})
}

func (s *Server) handleSearchers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"searchers": search.Default().Names(),
		"default":   "ga",
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := s.obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	w.Header().Set("Content-Type", "application/json")
	reg.WriteJSON(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}
