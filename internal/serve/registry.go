package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/backends"
	"repro/internal/hm"
	"repro/internal/model"
	"repro/internal/obs"
)

// ModelMeta describes one registry entry: where the model came from and
// how good it is, stored as v<N>.json beside the v<N>.model snapshot.
type ModelMeta struct {
	Name    string `json:"name"`
	Version int    `json:"version"`
	// Backend tags which backend's codec wrote the v<N>.model stream.
	// Empty means hm: every registry written before the backend layer
	// existed holds hm snapshots, so legacy entries load unchanged.
	Backend     string  `json:"backend,omitempty"`
	Workload    string  `json:"workload,omitempty"`
	Seed        int64   `json:"seed"`
	NTrain      int     `json:"ntrain,omitempty"`
	Trees       int     `json:"trees"`
	Order       int     `json:"order"`
	ValErr      float64 `json:"val_err"`
	Job         int64   `json:"job,omitempty"`
	WarmFrom    string  `json:"warm_from,omitempty"`
	CreatedUnix int64   `json:"created_unix"`
}

// backendName resolves the meta's backend tag, defaulting legacy
// (pre-tag) entries to hm.
func (m ModelMeta) backendName() string {
	if m.Backend == "" {
		return "hm"
	}
	return m.Backend
}

// ModelRegistry is the daemon's versioned model store. Layout:
//
//	<dir>/<name>/v<N>.model   — the backend's snapshot (for hm, the v2
//	                            format: edges + bin codes, so a loaded
//	                            model warm-starts through hm.Resume's
//	                            binned replay)
//	<dir>/<name>/v<N>.json    — ModelMeta, whose Backend field names the
//	                            codec that wrote the .model stream
//
// Versions are monotonically increasing per name; Save never overwrites.
// Writes go through a temp file + rename, so a crash mid-save leaves at
// worst an orphaned .tmp, never a half-written version.
type ModelRegistry struct {
	dir      string
	backends *model.BackendRegistry
	mu       sync.Mutex
	// onSave, when set, runs after every successful Save, outside the
	// registry lock — the hot cache's Refresh hook (hotcache.go).
	onSave func(name string)
	// gcKeep, when > 0, bounds each model to its newest gcKeep versions:
	// older ones are deleted after every save and by GCAll on startup.
	gcKeep   int
	gcPruned *obs.Counter
}

// NewModelRegistry opens (creating if needed) the registry rooted at dir,
// wired to the default backend set.
func NewModelRegistry(dir string) (*ModelRegistry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &ModelRegistry{dir: dir, backends: backends.Default()}, nil
}

// Backends exposes the registry's backend set (shared with the job
// manager and the HTTP layer).
func (r *ModelRegistry) Backends() *model.BackendRegistry { return r.backends }

// saver resolves the backend that can persist models for name, erroring
// when the backend exists but lacks the capability.
func (r *ModelRegistry) saver(backend string) (model.Saver, error) {
	b, err := r.backends.Lookup(backend)
	if err != nil {
		return nil, err
	}
	s, ok := b.(model.Saver)
	if !ok {
		return nil, fmt.Errorf("serve: backend %q cannot persist models", backend)
	}
	return s, nil
}

// validName keeps registry names shell- and path-safe.
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("serve: empty model name")
	}
	for _, r := range name {
		if !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' || r == '_') {
			return fmt.Errorf("serve: model name %q: use lowercase letters, digits, '-', '_'", name)
		}
	}
	return nil
}

// EnableGC turns on version garbage collection: each model keeps only
// its newest keep versions, pruned on every save and by GCAll. pruned
// (may be nil) counts deleted versions. Call before the daemon starts
// serving; not synchronized against concurrent saves.
func (r *ModelRegistry) EnableGC(keep int, pruned *obs.Counter) {
	r.gcKeep = keep
	r.gcPruned = pruned
}

// GCAll prunes every model in the registry to the configured version
// budget — the startup sweep over registries grown before GC was
// enabled. No-op when EnableGC was not called.
func (r *ModelRegistry) GCAll() error {
	if r.gcKeep <= 0 {
		return nil
	}
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if err := r.gcLocked(e.Name()); err != nil {
			return err
		}
	}
	return nil
}

// gcLocked deletes name's versions beyond the newest gcKeep. The .model
// file goes first: versionsLocked scans .model files, so a crash between
// the two unlinks leaves an orphaned .json that no longer counts as a
// version (and is overwritten if the number is ever reused).
func (r *ModelRegistry) gcLocked(name string) error {
	if r.gcKeep <= 0 {
		return nil
	}
	versions, err := r.versionsLocked(name)
	if err != nil {
		return err
	}
	if len(versions) <= r.gcKeep {
		return nil
	}
	dir := filepath.Join(r.dir, name)
	for _, v := range versions[:len(versions)-r.gcKeep] {
		if err := os.Remove(filepath.Join(dir, fmt.Sprintf("v%d.model", v))); err != nil {
			return err
		}
		os.Remove(filepath.Join(dir, fmt.Sprintf("v%d.json", v)))
		r.gcPruned.Inc()
	}
	return nil
}

// SetOnSave registers a hook invoked (outside the registry lock) after
// every successful Save with the saved model's name. The daemon points
// it at its hot cache's Refresh so new versions swap in as they land.
func (r *ModelRegistry) SetOnSave(fn func(name string)) {
	r.mu.Lock()
	r.onSave = fn
	r.mu.Unlock()
}

// Save persists m as the next version of name through the backend named
// by meta.Backend (default hm) and returns that version, then fires the
// SetOnSave hook.
func (r *ModelRegistry) Save(name string, m model.Model, meta ModelMeta) (int, error) {
	version, err := r.save(name, m, meta)
	if err != nil {
		return 0, err
	}
	r.mu.Lock()
	hook := r.onSave
	r.mu.Unlock()
	if hook != nil {
		hook(name)
	}
	return version, nil
}

func (r *ModelRegistry) save(name string, m model.Model, meta ModelMeta) (int, error) {
	if err := validName(name); err != nil {
		return 0, err
	}
	meta.Backend = meta.backendName()
	saver, err := r.saver(meta.Backend)
	if err != nil {
		return 0, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	dir := filepath.Join(r.dir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	versions, err := r.versionsLocked(name)
	if err != nil {
		return 0, err
	}
	next := 1
	if len(versions) > 0 {
		next = versions[len(versions)-1] + 1
	}
	meta.Name = name
	meta.Version = next
	if tm, ok := m.(interface{ NumTrees() int }); ok {
		meta.Trees = tm.NumTrees()
	}
	if hmModel, ok := m.(*hm.Model); ok {
		meta.Order = hmModel.Order
		meta.ValErr = hmModel.ValErr
	}

	mp := filepath.Join(dir, fmt.Sprintf("v%d.model", next))
	if err := atomicWrite(mp, func(f *os.File) error { return saver.Save(m, f) }); err != nil {
		return 0, err
	}
	jp := filepath.Join(dir, fmt.Sprintf("v%d.json", next))
	if err := atomicWrite(jp, func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(meta)
	}); err != nil {
		os.Remove(mp)
		return 0, err
	}
	if err := r.gcLocked(name); err != nil {
		// The new version is registered; a failed prune degrades to an
		// over-budget registry, not a failed save.
		return next, nil
	}
	return next, nil
}

// Load reads one model version through the backend its metadata names
// (legacy entries without a tag load as hm); version 0 selects the
// latest.
func (r *ModelRegistry) Load(name string, version int) (model.Model, ModelMeta, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := validName(name); err != nil {
		return nil, ModelMeta{}, err
	}
	if version == 0 {
		versions, err := r.versionsLocked(name)
		if err != nil {
			return nil, ModelMeta{}, err
		}
		if len(versions) == 0 {
			return nil, ModelMeta{}, fmt.Errorf("serve: model %q not found", name)
		}
		version = versions[len(versions)-1]
	}
	dir := filepath.Join(r.dir, name)
	meta, err := readMeta(filepath.Join(dir, fmt.Sprintf("v%d.json", version)))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ModelMeta{}, fmt.Errorf("serve: model %s@v%d not found", name, version)
		}
		return nil, ModelMeta{}, err
	}
	b, err := r.backends.Lookup(meta.backendName())
	if err != nil {
		return nil, ModelMeta{}, fmt.Errorf("serve: model %s@v%d: %w", name, version, err)
	}
	loader, ok := b.(model.Loader)
	if !ok {
		return nil, ModelMeta{}, fmt.Errorf("serve: model %s@v%d: backend %q cannot load models", name, version, meta.backendName())
	}
	f, err := os.Open(filepath.Join(dir, fmt.Sprintf("v%d.model", version)))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ModelMeta{}, fmt.Errorf("serve: model %s@v%d not found", name, version)
		}
		return nil, ModelMeta{}, err
	}
	m, err := loader.Load(f)
	f.Close()
	if err != nil {
		return nil, ModelMeta{}, fmt.Errorf("serve: model %s@v%d: %w", name, version, err)
	}
	return m, meta, nil
}

// Versions returns the metadata of every version of name, ascending.
func (r *ModelRegistry) Versions(name string) ([]ModelMeta, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := validName(name); err != nil {
		return nil, err
	}
	nums, err := r.versionsLocked(name)
	if err != nil {
		return nil, err
	}
	out := make([]ModelMeta, 0, len(nums))
	for _, v := range nums {
		meta, err := readMeta(filepath.Join(r.dir, name, fmt.Sprintf("v%d.json", v)))
		if err != nil {
			return nil, err
		}
		out = append(out, meta)
	}
	return out, nil
}

// List returns the latest version of every model in the registry, sorted
// by name.
func (r *ModelRegistry) List() ([]ModelMeta, error) {
	r.mu.Lock()
	names, err := os.ReadDir(r.dir)
	r.mu.Unlock()
	if err != nil {
		return nil, err
	}
	var out []ModelMeta
	for _, e := range names {
		if !e.IsDir() {
			continue
		}
		vs, err := r.Versions(e.Name())
		if err != nil || len(vs) == 0 {
			continue
		}
		out = append(out, vs[len(vs)-1])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// versionsLocked scans name's directory for v<N>.model files.
func (r *ModelRegistry) versionsLocked(name string) ([]int, error) {
	entries, err := os.ReadDir(filepath.Join(r.dir, name))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var nums []int
	for _, e := range entries {
		n := e.Name()
		if !strings.HasPrefix(n, "v") || !strings.HasSuffix(n, ".model") {
			continue
		}
		v, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(n, "v"), ".model"))
		if err != nil || v <= 0 {
			continue
		}
		nums = append(nums, v)
	}
	sort.Ints(nums)
	return nums, nil
}

func readMeta(path string) (ModelMeta, error) {
	var meta ModelMeta
	b, err := os.ReadFile(path)
	if err != nil {
		return meta, err
	}
	return meta, json.Unmarshal(b, &meta)
}

// atomicWrite writes via fill to a temp file in path's directory, then
// renames it into place.
func atomicWrite(path string, fill func(*os.File) error) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := fill(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
