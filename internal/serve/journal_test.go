package serve

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	meta := MetaHash("TS", 1, 100, []float64{10, 20.5})
	j, err := OpenJournal(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	rows := []core.RowTime{
		{Index: 0, TimeSec: 12.25},
		{Index: 3, TimeSec: 0.0000123456789012345},
		{Index: 7, TimeSec: 99999.125},
	}
	if err := j.Append(rows); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]core.RowTime{{Index: 1, TimeSec: 7.5}}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	re, err := OpenJournal(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Rows() != 4 {
		t.Fatalf("reopened journal has %d rows, want 4", re.Rows())
	}
	for _, r := range rows {
		sec, ok := re.Known(r.Index)
		if !ok || sec != r.TimeSec {
			t.Fatalf("row %d: got (%v,%v), want (%v,true) — times must round-trip exactly", r.Index, sec, ok, r.TimeSec)
		}
	}
	if _, ok := re.Known(2); ok {
		t.Fatal("row 2 was never journaled")
	}
}

func TestJournalRejectsForeignSweep(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	j, err := OpenJournal(path, MetaHash("TS", 1, 100, []float64{10}))
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Same file, different sweep parameters: must refuse, not splice.
	for _, meta := range []string{
		MetaHash("TS", 2, 100, []float64{10}), // different seed
		MetaHash("TS", 1, 101, []float64{10}), // different ntrain
		MetaHash("TS", 1, 100, []float64{11}), // different sizes
		MetaHash("WC", 1, 100, []float64{10}), // different workload
	} {
		if _, err := OpenJournal(path, meta); err == nil {
			t.Fatalf("journal for %s opened against a foreign sweep", meta)
		}
	}
}

// TestJournalTornTail pins SIGKILL recovery: a partial trailing line —
// whatever a dying process managed to flush — is truncated on open, and
// every record before it survives. Appending afterwards produces a clean
// journal again.
func TestJournalTornTail(t *testing.T) {
	meta := MetaHash("TS", 1, 100, []float64{10})
	for _, tail := range []string{
		"r,9",                     // torn mid-index
		"r,9,3.25",                // torn before the CRC
		"r,9,3.25,00",             // torn mid-CRC
		"r,9,3.25,deadbeef",       // complete line, wrong CRC
		"r,9,3.2X5,0a0a0a0a",      // unparseable time
		"garbage line",            // not a record at all
		strings.Repeat("x", 4096), // long junk
	} {
		path := filepath.Join(t.TempDir(), "j.journal")
		j, err := OpenJournal(path, meta)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Append([]core.RowTime{{Index: 4, TimeSec: 2.5}, {Index: 5, TimeSec: 3.5}}); err != nil {
			t.Fatal(err)
		}
		j.Close()
		f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		f.WriteString(tail)
		f.Close()

		re, err := OpenJournal(path, meta)
		if err != nil {
			t.Fatalf("tail %q: reopen failed: %v", tail, err)
		}
		if re.Rows() != 2 {
			t.Fatalf("tail %q: %d rows survived, want 2", tail, re.Rows())
		}
		if sec, ok := re.Known(5); !ok || sec != 3.5 {
			t.Fatalf("tail %q: row 5 lost", tail)
		}
		if _, ok := re.Known(9); ok {
			t.Fatalf("tail %q: torn row 9 was accepted", tail)
		}
		// The journal must be usable (and clean) after truncation.
		if err := re.Append([]core.RowTime{{Index: 9, TimeSec: 4.5}}); err != nil {
			t.Fatal(err)
		}
		re.Close()
		re2, err := OpenJournal(path, meta)
		if err != nil {
			t.Fatalf("tail %q: reopen after repair failed: %v", tail, err)
		}
		if re2.Rows() != 3 {
			t.Fatalf("tail %q: %d rows after repair, want 3", tail, re2.Rows())
		}
		re2.Close()
	}
}

func TestJournalEmptyFileGetsHeader(t *testing.T) {
	// A crash between create and header write leaves an empty file; a
	// reopen must initialize it rather than fail.
	path := filepath.Join(t.TempDir(), "j.journal")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	meta := MetaHash("TS", 1, 10, []float64{10})
	j, err := OpenJournal(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]core.RowTime{{Index: 0, TimeSec: 1.5}}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	re, err := OpenJournal(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	if re.Rows() != 1 {
		t.Fatalf("rows = %d, want 1", re.Rows())
	}
	re.Close()
}

// TestJournalTornTailBoundaryCuts pins the two nastiest torn-tail
// shapes: a tail cut exactly on the CRC boundary (the record's three
// data fields and the trailing comma made it to disk, the checksum did
// not) and a final record that is record-prefix-only ("r," or a bare
// "r"). Both must truncate cleanly, and resuming must rebuild a journal
// byte-identical to one that was never torn.
func TestJournalTornTailBoundaryCuts(t *testing.T) {
	meta := MetaHash("TS", 1, 100, []float64{10})
	good := []core.RowTime{{Index: 0, TimeSec: 1.5}, {Index: 1, TimeSec: 2.25}}
	missing := core.RowTime{Index: 2, TimeSec: 3.125}

	// Reference: the journal a never-interrupted writer produces.
	refPath := filepath.Join(t.TempDir(), "ref.journal")
	refJ, err := OpenJournal(refPath, meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := refJ.Append(good); err != nil {
		t.Fatal(err)
	}
	if err := refJ.Append([]core.RowTime{missing}); err != nil {
		t.Fatal(err)
	}
	refJ.Close()
	ref, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}

	for _, tail := range []string{
		"r,2,3.125,", // cut exactly on the CRC boundary
		"r,",         // final record is prefix-only
		"r",          // not even the field separator made it
		"r,2,",       // index landed, time did not
	} {
		path := filepath.Join(t.TempDir(), "j.journal")
		j, err := OpenJournal(path, meta)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Append(good); err != nil {
			t.Fatal(err)
		}
		j.Close()
		pristine, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		f.WriteString(tail)
		f.Close()

		re, err := OpenJournal(path, meta)
		if err != nil {
			t.Fatalf("tail %q: reopen failed: %v", tail, err)
		}
		if re.Rows() != len(good) {
			t.Fatalf("tail %q: %d rows survived, want %d", tail, re.Rows(), len(good))
		}
		if _, ok := re.Known(missing.Index); ok {
			t.Fatalf("tail %q: the torn record was accepted", tail)
		}
		// The truncation must remove the torn bytes exactly: the file is
		// the pristine pre-crash journal again.
		afterOpen, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(afterOpen, pristine) {
			t.Fatalf("tail %q: truncation left %q, want the pristine journal %q", tail, afterOpen, pristine)
		}
		// Re-appending the lost row must reproduce the reference journal
		// byte for byte — resume is indistinguishable from never crashing.
		if err := re.Append([]core.RowTime{missing}); err != nil {
			t.Fatal(err)
		}
		re.Close()
		final, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(final, ref) {
			t.Fatalf("tail %q: resumed journal differs from the uninterrupted one:\n%q\n%q", tail, final, ref)
		}
	}
}
