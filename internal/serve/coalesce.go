package serve

import (
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
)

// coalescer gathers concurrent predict requests for one pinned model
// version into model.PredictBatch calls — the same dedup-batch shape as
// the GA's evaluator, applied to serving. The first request to arrive at
// an empty batch becomes the leader: it waits up to window for company
// (or until the batch fills to maxBatch), detaches the batch, scores it
// in one PredictBatch call, and wakes the followers. Batch-capable
// models (hm, rf) then walk their ensemble tree-at-a-time over all
// gathered rows instead of re-faulting the whole model per request.
//
// Semantics are deterministic even though batch composition is not:
// PredictBatch's contract is bit-identity with per-row Predict, so a
// request's answer does not depend on which batch it landed in or where
// in the batch it sat. That is what the equivalence suite asserts per
// backend at GOMAXPROCS 1 and 4.
type coalescer struct {
	window   time.Duration
	maxBatch int

	mu  sync.Mutex
	cur *predBatch

	batches *obs.Counter
	sizes   *obs.Histogram
}

// predBatch is one in-flight gather. rows is appended under the
// coalescer's mutex only while the batch is attached (cur == b); the
// leader detaches the batch before reading rows, so the slice is frozen
// by the time it is scored. done publishes out to the followers.
type predBatch struct {
	rows [][]float64
	out  []float64
	full chan struct{} // closed when maxBatch is reached
	done chan struct{} // closed once out is filled
}

// predict scores x through the current batch, blocking until the
// batch's leader has flushed it.
func (co *coalescer) predict(m model.Model, x []float64) float64 {
	co.mu.Lock()
	b := co.cur
	leader := b == nil
	if leader {
		b = &predBatch{full: make(chan struct{}), done: make(chan struct{})}
		co.cur = b
	}
	idx := len(b.rows)
	b.rows = append(b.rows, x)
	if len(b.rows) >= co.maxBatch {
		co.cur = nil // detach: nothing more may join
		close(b.full)
	}
	co.mu.Unlock()

	if !leader {
		<-b.done
		return b.out[idx]
	}

	if co.window > 0 {
		t := time.NewTimer(co.window)
		select {
		case <-b.full:
			t.Stop()
		case <-t.C:
		}
	}
	co.mu.Lock()
	if co.cur == b {
		co.cur = nil // window elapsed before the batch filled
	}
	co.mu.Unlock()

	b.out = make([]float64, len(b.rows))
	model.PredictBatch(m, b.rows, b.out)
	co.batches.Inc()
	co.sizes.Observe(float64(len(b.rows)))
	close(b.done)
	return b.out[idx]
}
