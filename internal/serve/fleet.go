package serve

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fleet"
	"repro/internal/journal"
	"repro/internal/workloads"
)

// SetFleet attaches a coordinator: collect jobs submitted after this
// shard across its registered workers whenever any are live, and fall
// back to the local pool when none are. Called once at daemon startup
// (before jobs run), so no locking.
func (m *Manager) SetFleet(c *fleet.Coordinator) { m.fleet = c }

// Fleet returns the attached coordinator (nil without -coordinator).
func (m *Manager) Fleet() *fleet.Coordinator { return m.fleet }

// collectFleet is collectDurable's sharded path: the sweep's pending
// rows run on the fleet via the coordinator, merged rows land in the
// same journal the local path uses, and the finished journal compacts to
// its canonical index-sorted form before the set is built. The resulting
// set is byte-identical to the local path's — rows times are a pure
// function of each row's spec, and the set is assembled in index order
// from the journal regardless of which worker produced each row.
func (m *Manager) collectFleet(ctx context.Context, id int64, t *core.Tuner, w *workloads.Workload, sizes []float64, jl *Journal) (*dataset.Set, core.Overhead, error) {
	spec := fleet.SweepSpec{
		Workload: w.Abbr,
		Seed:     t.Opt.Seed,
		NTrain:   t.Opt.NTrain,
		SizesMB:  sizes,
		MetaHash: journal.MetaHash(w.Abbr, t.Opt.Seed, t.Opt.NTrain, sizes),
	}
	jobs := t.CollectJobs(sizes)
	m.obs.Counter("serve.collect.fleet.sweeps").Inc()
	err := m.fleet.RunSweep(ctx, id, spec, fleet.SweepHooks{
		Known: jl.Known,
		OnRows: func(rows []core.RowTime) error {
			if err := jl.Append(rows); err != nil {
				return err
			}
			m.obs.Counter("serve.collect.checkpoints").Inc()
			if m.testBatchHook != nil {
				m.testBatchHook(jl.Rows())
			}
			return nil
		},
		Progress: func(done, total int) {
			m.setProgress(id, Progress{Phase: "collect", Done: done, Total: total})
		},
		RunLocal: func(ctx context.Context, indices []int) ([]core.RowTime, error) {
			return t.ExecuteRows(jobs, indices)
		},
	})
	if err != nil {
		return nil, core.Overhead{}, err
	}

	// Canonicalize the merged journal: index-sorted, duplicates (a
	// zombie's chunk that also re-ran after lease expiry) dropped.
	dropped, err := jl.Compact()
	if err != nil {
		return nil, core.Overhead{}, fmt.Errorf("serve: compacting journal: %w", err)
	}
	m.obs.Counter("serve.journal.compactions").Inc()
	m.obs.Counter("serve.journal.compact.dropped").Add(int64(dropped))

	// Build the set exactly as the local collector does: every row in
	// index order, times from the journal.
	set := dataset.NewSet(t.Space)
	var clusterSec float64
	for i, j := range jobs {
		sec, ok := jl.Known(i)
		if !ok {
			return nil, core.Overhead{}, fmt.Errorf("serve: fleet sweep finished but row %d missing from journal", i)
		}
		if sec <= 0 || math.IsNaN(sec) || math.IsInf(sec, 0) {
			return nil, core.Overhead{}, fmt.Errorf("serve: execution %d returned time %v", i, sec)
		}
		set.Add(j.Cfg, j.DsizeMB, sec)
		clusterSec += sec
	}
	m.obs.Float("core.collect.cluster.sec").Add(clusterSec)
	return set, core.Overhead{CollectClusterHours: clusterSec / 3600}, nil
}
