// Package serve implements dacd, the long-lived tuning service: an HTTP
// JSON API over the core pipeline with durable, resumable jobs and a
// versioned model registry. Collect sweeps stream their rows to an
// append-only on-disk journal as they complete, so a daemon killed
// mid-sweep and restarted against the same data directory resumes where
// it left off — completed rows are never re-executed, and the finished
// training set is byte-identical to an uninterrupted run (the core
// collector's determinism contract). Finished models land in the
// registry, where later jobs can warm-start them via hm.Resume. With the
// fleet coordinator enabled (DESIGN.md §15), collect sweeps shard across
// registered workers and merge into the same journal.
package serve

import "repro/internal/journal"

// Journal is the append-only collect journal. The implementation moved
// to internal/journal when the fleet coordinator started merging worker
// results into the same format; these names stay as the daemon-facing
// aliases so serve's callers and tests read naturally.
type Journal = journal.Journal

// MetaHash canonicalizes a sweep's identity into the hash the journal
// header stores; see journal.MetaHash.
func MetaHash(workload string, seed int64, ntrain int, sizesMB []float64) string {
	return journal.MetaHash(workload, seed, ntrain, sizesMB)
}

// OpenJournal opens (or creates) the journal at path for the sweep
// identified by metaHash; see journal.Open.
func OpenJournal(path, metaHash string) (*Journal, error) {
	return journal.Open(path, metaHash)
}
