package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ga"
	"repro/internal/model"
	"repro/internal/obs"
)

// This file is the daemon's hot serving path. The registry's Load
// re-reads and re-decodes a snapshot from disk on every call — fine for
// jobs that load a model once per search, hopeless for a predict
// endpoint meant to answer thousands of times per second. ModelCache
// pins decoded models in memory keyed by (name, version) behind a
// copy-on-write state pointer: readers resolve a model with one atomic
// load and a map lookup, never taking a lock, never blocking on a
// writer, and never observing a torn model (entries are immutable after
// construction; only the state pointer is swapped).
//
// Each pinned entry carries its own prediction memo (sharded like
// ga.GenomeCache, keyed on the request vector's exact feature bits via
// model.VectorKey) and its own coalescer (coalesce.go), so the memo and
// the batches can never mix rows from different model versions.

// ServingOptions tune the hot serving path. The zero value selects the
// defaults; Disabled falls back to the original Load-per-request path
// (the baseline `dac bench -serve` measures against).
type ServingOptions struct {
	// Disabled routes /predict through registry.Load on every request.
	Disabled bool
	// CoalesceWindow is how long the first request of a batch waits for
	// company before flushing (default 200µs; negative flushes
	// immediately, coalescing only what arrived in the meantime).
	CoalesceWindow time.Duration
	// MaxBatch flushes a batch early once it has this many rows
	// (default 64).
	MaxBatch int
	// KeepOldVersions bounds how many non-latest versions per model stay
	// pinned; the least recently used is evicted first. The latest
	// version is always pinned. Default 4; negative keeps none.
	KeepOldVersions int
	// MemoCap bounds each pinned version's prediction memo entry count
	// (default 1<<18 ≈ 260k vectors ≈ tens of MB per hot version;
	// negative = unbounded). Overflow evicts cheaply — see
	// ga.NewGenomeCacheCap — and is counted in
	// serve.predict.memo.evictions.
	MemoCap int
}

const (
	defaultCoalesceWindow  = 200 * time.Microsecond
	defaultMaxBatch        = 64
	defaultKeepOldVersions = 4
	defaultMemoCap         = 1 << 18
)

// withDefaults resolves the zero-value knobs.
func (o ServingOptions) withDefaults() ServingOptions {
	if o.CoalesceWindow == 0 {
		o.CoalesceWindow = defaultCoalesceWindow
	}
	if o.CoalesceWindow < 0 {
		o.CoalesceWindow = 0
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = defaultMaxBatch
	}
	if o.KeepOldVersions == 0 {
		o.KeepOldVersions = defaultKeepOldVersions
	}
	if o.KeepOldVersions < 0 {
		o.KeepOldVersions = 0
	}
	if o.MemoCap == 0 {
		o.MemoCap = defaultMemoCap
	}
	if o.MemoCap < 0 {
		o.MemoCap = 0 // unbounded
	}
	return o
}

// modelKey addresses one pinned decoded model.
type modelKey struct {
	name    string
	version int
}

// hotModel is one decoded model pinned in the cache. Everything except
// lastUsed is immutable after construction, which is what makes lockless
// reads safe: a reader that obtained a *hotModel can use it forever,
// even after eviction.
type hotModel struct {
	model model.Model
	meta  ModelMeta
	memo  *ga.GenomeCache
	co    *coalescer
	cache *ModelCache
	// lastUsed is a recency tick for LRU eviction among old versions.
	lastUsed atomic.Int64
}

// Meta returns the pinned version's registry metadata.
func (h *hotModel) Meta() ModelMeta { return h.meta }

// Predict answers one request vector through the memo and, on a miss,
// the coalescer. Results are bit-identical to h.model.Predict(x): the
// memo key is the vector's exact bits and the coalescer's batches go
// through model.PredictBatch, whose contract is bit-identity with
// per-row Predict.
func (h *hotModel) Predict(x []float64) float64 {
	key := model.VectorKey(x)
	if v, ok := h.memo.Lookup(key); ok {
		h.cache.memoHits.Inc()
		return v
	}
	h.cache.memoMisses.Inc()
	v := h.co.predict(h.model, x)
	h.memo.Store(key, v)
	return v
}

// cacheState is the cache's immutable snapshot: byKey holds every pinned
// version, latest the highest pinned version per name. Writers build a
// new state and swap the pointer; readers load it once per request.
type cacheState struct {
	byKey  map[modelKey]*hotModel
	latest map[string]*hotModel
}

// ModelCache is the hot-model cache over a ModelRegistry. Reads
// (Entry) are wait-free against writers; faults, registration refreshes
// and evictions serialize on mu and publish with one atomic swap.
type ModelCache struct {
	reg *ModelRegistry
	opt ServingOptions

	state atomic.Pointer[cacheState]
	tick  atomic.Int64
	mu    sync.Mutex // writers only: fault, refresh, eviction

	hits, misses, evictions *obs.Counter
	warmed                  *obs.Counter
	memoHits, memoMisses    *obs.Counter
	memoEvictions           *obs.Counter
	batches                 *obs.Counter
	batchSize               *obs.Histogram
}

// batchSizeBounds bucket coalesced-batch sizes up to the default cap.
var batchSizeBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// NewModelCache builds an empty cache over reg, recording its hit/miss,
// eviction, memo, and coalescing metrics into r (nil disables metrics).
// Wire reg.SetOnSave(c.Refresh) to have new registrations swapped in as
// they land; until the hook fires (or without it), version-0 reads serve
// the pinned latest and fault lazily.
func NewModelCache(reg *ModelRegistry, opt ServingOptions, r *obs.Registry) *ModelCache {
	c := &ModelCache{
		reg:           reg,
		opt:           opt.withDefaults(),
		hits:          r.Counter("serve.modelcache.hits"),
		misses:        r.Counter("serve.modelcache.misses"),
		evictions:     r.Counter("serve.modelcache.evictions"),
		warmed:        r.Counter("serve.modelcache.warmed"),
		memoHits:      r.Counter("serve.predict.memo.hits"),
		memoMisses:    r.Counter("serve.predict.memo.misses"),
		memoEvictions: r.Counter("serve.predict.memo.evictions"),
		batches:       r.Counter("serve.predict.batches"),
		batchSize:     r.Histogram("serve.predict.batch_size", batchSizeBounds),
	}
	c.state.Store(&cacheState{
		byKey:  map[modelKey]*hotModel{},
		latest: map[string]*hotModel{},
	})
	return c
}

// Entry resolves (name, version) to a pinned model, faulting it in from
// the registry on a miss. version 0 selects the highest version the
// cache has seen for name (kept current by the Refresh hook). The hot
// path — a hit — is one atomic load and one map read.
func (c *ModelCache) Entry(name string, version int) (*hotModel, error) {
	st := c.state.Load()
	var h *hotModel
	if version == 0 {
		h = st.latest[name]
	} else {
		h = st.byKey[modelKey{name, version}]
	}
	if h != nil {
		c.hits.Inc()
		h.lastUsed.Store(c.tick.Add(1))
		return h, nil
	}
	c.misses.Inc()
	return c.fault(name, version)
}

// fault loads a missing version from the registry and installs it.
func (c *ModelCache) fault(name string, version int) (*hotModel, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Another request may have faulted the same version in while we
	// waited for the writer lock.
	st := c.state.Load()
	var h *hotModel
	if version == 0 {
		h = st.latest[name]
	} else {
		h = st.byKey[modelKey{name, version}]
	}
	if h != nil {
		h.lastUsed.Store(c.tick.Add(1))
		return h, nil
	}
	mdl, meta, err := c.reg.Load(name, version)
	if err != nil {
		return nil, err
	}
	// The same decoded version may already be pinned when the request
	// asked for version 0 and the cached latest lags the registry.
	if h = st.byKey[modelKey{meta.Name, meta.Version}]; h == nil {
		h = c.newHotModel(mdl, meta)
	}
	c.installLocked(h)
	return h, nil
}

func (c *ModelCache) newHotModel(mdl model.Model, meta ModelMeta) *hotModel {
	h := &hotModel{
		model: mdl,
		meta:  meta,
		memo:  ga.NewGenomeCacheCap(c.opt.MemoCap, c.memoEvictions),
		co: &coalescer{
			window:   c.opt.CoalesceWindow,
			maxBatch: c.opt.MaxBatch,
			batches:  c.batches,
			sizes:    c.batchSize,
		},
		cache: c,
	}
	h.lastUsed.Store(c.tick.Add(1))
	return h
}

// installLocked publishes h in a new state snapshot: pin it by key,
// promote it to latest if it is the highest version seen (latest never
// moves backwards, so version-0 responses stay monotonic), and evict
// the least recently used old versions beyond the per-name bound.
// Caller holds c.mu.
func (c *ModelCache) installLocked(h *hotModel) {
	old := c.state.Load()
	st := &cacheState{
		byKey:  make(map[modelKey]*hotModel, len(old.byKey)+1),
		latest: make(map[string]*hotModel, len(old.latest)+1),
	}
	for k, v := range old.byKey {
		st.byKey[k] = v
	}
	for k, v := range old.latest {
		st.latest[k] = v
	}
	name := h.meta.Name
	st.byKey[modelKey{name, h.meta.Version}] = h
	if cur, ok := st.latest[name]; !ok || h.meta.Version > cur.meta.Version {
		st.latest[name] = h
	}
	// LRU bound on this name's non-latest versions.
	latestV := st.latest[name].meta.Version
	var olds []*hotModel
	for k, v := range st.byKey {
		if k.name == name && k.version != latestV {
			olds = append(olds, v)
		}
	}
	for len(olds) > c.opt.KeepOldVersions {
		lru := 0
		for i, v := range olds {
			if v.lastUsed.Load() < olds[lru].lastUsed.Load() {
				lru = i
			}
		}
		delete(st.byKey, modelKey{name, olds[lru].meta.Version})
		olds[lru] = olds[len(olds)-1]
		olds = olds[:len(olds)-1]
		c.evictions.Inc()
	}
	c.state.Store(st)
}

// Refresh pins name's current registry latest and swaps it in — the
// ModelRegistry.SetOnSave hook, called after every successful Save, so a
// retrain becomes visible to version-0 readers with one pointer swap and
// zero reader stalls. A load failure leaves the previous state serving;
// the next Entry fault retries.
func (c *ModelCache) Refresh(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	mdl, meta, err := c.reg.Load(name, 0)
	if err != nil {
		return
	}
	st := c.state.Load()
	if cur, ok := st.latest[name]; ok && cur.meta.Version >= meta.Version {
		return
	}
	if h, ok := st.byKey[modelKey{meta.Name, meta.Version}]; ok {
		c.installLocked(h) // already pinned: just promote to latest
		return
	}
	c.installLocked(c.newHotModel(mdl, meta))
}

// WarmAll pins every model's current registry latest — daemon-startup
// warmup, so the first predict after a restart is answered from memory
// instead of faulting a decode on the request path. Pinned versions are
// counted in serve.modelcache.warmed. A model that fails to load is
// skipped (the next Entry fault retries it). Returns how many versions
// were newly pinned.
func (c *ModelCache) WarmAll() int {
	metas, err := c.reg.List()
	if err != nil {
		return 0
	}
	warmed := 0
	for _, m := range metas {
		before := c.Pinned()
		c.Refresh(m.Name)
		if c.Pinned() > before {
			warmed++
			c.warmed.Inc()
		}
	}
	return warmed
}

// Pinned reports how many decoded versions the cache currently holds
// (tests and the bench report use it).
func (c *ModelCache) Pinned() int {
	return len(c.state.Load().byKey)
}
