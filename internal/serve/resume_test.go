package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/sparksim"
	"repro/internal/workloads"
)

// testTuner builds the collect tuner the resume tests drive — small
// enough to run many interrupted sweeps, wired like the daemon's.
func testTuner(t *testing.T, ntrain int, seed int64, parallelism int) (*core.Tuner, *workloads.Workload, []float64) {
	t.Helper()
	w, err := workloads.ByAbbr("TS")
	if err != nil {
		t.Fatal(err)
	}
	sim := sparksim.New(cluster.Standard(), seed+7)
	tuner := &core.Tuner{
		Space: conf.StandardSpace(),
		Exec:  core.NewSimExecutor(sim, &w.Program),
		Opt:   core.Options{NTrain: ntrain, Seed: seed, Parallelism: parallelism},
	}
	lo, hi := trainingRange(w)
	return tuner, w, tuner.TrainingSizesMB(lo, hi)
}

func collectCSV(t *testing.T, tuner *core.Tuner, sizes []float64) []byte {
	t.Helper()
	set, _, err := tuner.Collect(sizes)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := set.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// runJournaledCollect drives one journal-backed sweep, cancelling the
// context once the journal holds at least killAfter rows (0 = run to
// completion). Returns the finished set's CSV when the sweep completed.
func runJournaledCollect(t *testing.T, tuner *core.Tuner, sizes []float64, path, meta string, killAfter int) ([]byte, error) {
	t.Helper()
	jl, err := OpenJournal(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer jl.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	set, _, err := tuner.CollectResumable(ctx, sizes, core.CollectHooks{
		Known: jl.Known,
		OnBatch: func(rows []core.RowTime) {
			if err := jl.Append(rows); err != nil {
				t.Error(err)
			}
			if killAfter > 0 && jl.Rows() >= killAfter {
				cancel() // the "SIGKILL": no further batches run
			}
		},
		BatchRows: 8,
	})
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := set.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), nil
}

// TestKillAndResumeByteIdentical is the satellite-4 acceptance test: a
// collect killed mid-sweep at several row offsets and resumed against the
// same journal must finish with a CSV byte-identical to an uninterrupted
// run — at GOMAXPROCS 1 and 4 — without re-running completed rows.
func TestKillAndResumeByteIdentical(t *testing.T) {
	const ntrain = 120
	for _, procs := range []int{1, 4} {
		t.Run(fmt.Sprintf("gomaxprocs=%d", procs), func(t *testing.T) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)

			tuner, w, sizes := testTuner(t, ntrain, 1, 0)
			ref := collectCSV(t, tuner, sizes)
			meta := MetaHash(w.Abbr, 1, ntrain, sizes)

			for _, killAfter := range []int{1, 16, 57, 113} {
				path := filepath.Join(t.TempDir(), "sweep.journal")
				if _, err := runJournaledCollect(t, tuner, sizes, path, meta, killAfter); err == nil {
					t.Fatalf("killAfter=%d: interrupted sweep reported success", killAfter)
				}

				// "Restart": reopen the journal; completed rows must not run
				// again.
				jl, err := OpenJournal(path, meta)
				if err != nil {
					t.Fatal(err)
				}
				journaled := jl.Rows()
				jl.Close()
				if journaled < killAfter {
					t.Fatalf("killAfter=%d: only %d rows journaled", killAfter, journaled)
				}
				var reruns atomic.Int64
				jl2, err := OpenJournal(path, meta)
				if err != nil {
					t.Fatal(err)
				}
				set, _, err := tuner.CollectResumable(context.Background(), sizes, core.CollectHooks{
					Known: func(i int) (float64, bool) {
						sec, ok := jl2.Known(i)
						return sec, ok
					},
					OnBatch: func(rows []core.RowTime) {
						for _, r := range rows {
							if _, ok := jl2.Known(r.Index); ok {
								reruns.Add(1)
							}
						}
						if err := jl2.Append(rows); err != nil {
							t.Error(err)
						}
					},
					BatchRows: 8,
				})
				jl2.Close()
				if err != nil {
					t.Fatalf("killAfter=%d: resume failed: %v", killAfter, err)
				}
				if n := reruns.Load(); n != 0 {
					t.Fatalf("killAfter=%d: %d completed rows were re-executed", killAfter, n)
				}
				var buf bytes.Buffer
				if err := set.WriteCSV(&buf); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(buf.Bytes(), ref) {
					t.Fatalf("killAfter=%d: resumed CSV differs from uninterrupted run", killAfter)
				}
			}
		})
	}
}

// TestKillResumeWithTornTail chains both failure modes: the daemon dies
// mid-batch leaving a torn journal line, restarts, and still finishes
// with the exact training set.
func TestKillResumeWithTornTail(t *testing.T) {
	const ntrain = 80
	tuner, w, sizes := testTuner(t, ntrain, 3, 2)
	ref := collectCSV(t, tuner, sizes)
	meta := MetaHash(w.Abbr, 3, ntrain, sizes)

	path := filepath.Join(t.TempDir(), "sweep.journal")
	if _, err := runJournaledCollect(t, tuner, sizes, path, meta, 24); err == nil {
		t.Fatal("interrupted sweep reported success")
	}
	// The SIGKILL tore the last line mid-write.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("r,999,1.2")
	f.Close()

	csv, err := runJournaledCollect(t, tuner, sizes, path, meta, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv, ref) {
		t.Fatal("torn-tail resume CSV differs from uninterrupted run")
	}
}

// TestManagerRestartResumesCollect is the daemon-level restart story: a
// Manager closed mid-collect leaves the job running on disk; a new
// Manager over the same data directory adopts it, resumes from the
// journal, and the final CSV matches a direct, uninterrupted Collect.
// The test batch hook holds the collect workers once the journal has 40
// rows, so the shutdown always lands on a genuinely partial sweep.
func TestManagerRestartResumesCollect(t *testing.T) {
	const ntrain = 600
	dataDir := t.TempDir()
	tuner, _, sizes := testTuner(t, ntrain, 1, 0)
	ref := collectCSV(t, tuner, sizes)

	m1, err := NewManager(dataDir, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	reached := make(chan struct{})
	var once sync.Once
	m1.testBatchHook = func(rows int) {
		if rows >= 40 {
			once.Do(func() { close(reached) })
			// Hold this collect worker until the daemon shuts down —
			// the in-flight sweep can never finish.
			<-m1.rootCtx.Done()
		}
	}
	id, _, err := m1.Submit(JobSpec{Type: JobCollect, Workload: "TS", NTrain: ntrain, Seed: 1, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-reached:
	case <-time.After(10 * time.Second):
		t.Fatal("collect never reached 40 journaled rows")
	}
	m1.Close()

	j1, ok := mustLoadJobFile(t, dataDir, id)
	if !ok || j1.State != StateRunning {
		t.Fatalf("job after shutdown: %+v (want state %q on disk so the next daemon adopts it)", j1, StateRunning)
	}

	journalPath := filepath.Join(dataDir, "journals", fmt.Sprintf("job-%d.journal", id))
	jl, err := OpenJournal(journalPath, MetaHash("TS", 1, ntrain, sizes))
	if err != nil {
		t.Fatal(err)
	}
	progress := jl.Rows()
	jl.Close()
	if progress == 0 || progress >= ntrain {
		t.Fatalf("journal has %d rows at restart; want a genuine partial sweep", progress)
	}

	m2, err := NewManager(dataDir, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	waitFor(t, 30*time.Second, func() bool {
		j, ok := m2.Get(id)
		return ok && j.State == StateDone
	})
	j, _ := m2.Get(id)
	var res struct {
		Rows int    `json:"rows"`
		CSV  string `json:"csv"`
	}
	if err := json.Unmarshal(j.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Rows != ntrain {
		t.Fatalf("resumed collect produced %d rows, want %d", res.Rows, ntrain)
	}
	got, err := os.ReadFile(res.CSV)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("CSV from the restarted daemon differs from an uninterrupted Collect")
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not met before timeout")
}

func mustLoadJobFile(t *testing.T, dataDir string, id int64) (Job, bool) {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dataDir, "jobs", fmt.Sprintf("%d.json", id)))
	if err != nil {
		return Job{}, false
	}
	var j Job
	if err := json.Unmarshal(b, &j); err != nil {
		t.Fatal(err)
	}
	return j, true
}
