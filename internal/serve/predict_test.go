package serve

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/backends"
	"repro/internal/conf"
	"repro/internal/model"
	"repro/internal/obs"
)

// newTestServerOpts is newTestServer with explicit serving options.
func newTestServerOpts(t *testing.T, opt ServerOptions) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewServerOpts(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// spaceDataset builds a training set over the standard configuration
// space — rows are encoded configurations with a trailing datasize,
// exactly the vectors /predict assembles — so every backend trains at
// the dimensionality the serving path queries.
func spaceDataset(n int, seed int64) *model.Dataset {
	space := conf.StandardSpace()
	rng := rand.New(rand.NewSource(seed))
	ds := model.NewDataset(nil)
	for i := 0; i < n; i++ {
		x := append(space.Random(rng).Vector(), 100+900*rng.Float64())
		t := 20 + 3*x[0] + 0.5*x[1] + 0.02*x[len(x)-1]
		ds.Add(x, t*(1+0.05*rng.NormFloat64()))
	}
	return ds
}

// registerSpaceModel trains backend on a space-shaped dataset and
// registers it under name in the server's registry.
func registerSpaceModel(t *testing.T, s *Server, backend, name string, seed int64) {
	t.Helper()
	b, err := backends.Default().Lookup(backend)
	if err != nil {
		t.Fatal(err)
	}
	m, err := b.Train(spaceDataset(120, seed), model.TrainOpts{Seed: seed, Quick: true})
	if err != nil {
		t.Fatalf("%s: train: %v", backend, err)
	}
	if _, err := s.Manager().Models().Save(name, m, ModelMeta{Backend: backend}); err != nil {
		t.Fatal(err)
	}
}

type predictResponse struct {
	Model        string  `json:"model"`
	Version      int     `json:"version"`
	DsizeMB      float64 `json:"dsize_mb"`
	PredictedSec float64 `json:"predicted_sec"`
	Error        string  `json:"error"`
}

// TestPredictValidation is the error-path table for /predict: the
// ambiguous vector+config request (previously accepted with vector
// silently winning) and every other malformed shape map to 400 with a
// diagnostic, unknown models and versions to 404.
func TestPredictValidation(t *testing.T) {
	s, ts := newTestServer(t, obs.NewRegistry())
	registerSpaceModel(t, s, "hm", "m", 11)
	space := conf.StandardSpace()
	vec := space.Random(rand.New(rand.NewSource(1))).Vector()
	param := space.Names()[0]

	cases := []struct {
		name     string
		model    string
		body     any
		wantCode int
		wantErr  string
	}{
		{"ambiguous vector+config", "m",
			map[string]any{"vector": vec, "config": map[string]float64{param: vec[0]}, "dsize_mb": 100},
			http.StatusBadRequest, "ambiguous"},
		{"unknown parameter", "m",
			map[string]any{"config": map[string]float64{"spark.not.a.knob": 1}, "dsize_mb": 100},
			http.StatusBadRequest, "unknown parameter"},
		{"wrong vector length", "m",
			map[string]any{"vector": []float64{1, 2, 3}, "dsize_mb": 100},
			http.StatusBadRequest, ""},
		{"missing dsize", "m",
			map[string]any{"config": map[string]float64{param: vec[0]}},
			http.StatusBadRequest, "dsize_mb"},
		{"negative dsize", "m",
			map[string]any{"vector": vec, "dsize_mb": -5},
			http.StatusBadRequest, "dsize_mb"},
		{"unknown workload", "m",
			map[string]any{"workload": "ZZ"},
			http.StatusBadRequest, ""},
		{"unknown version", "m",
			map[string]any{"version": 99, "vector": vec, "dsize_mb": 100},
			http.StatusNotFound, "not found"},
		{"unknown model", "nope",
			map[string]any{"vector": vec, "dsize_mb": 100},
			http.StatusNotFound, "not found"},
		{"malformed body", "m", "{not json",
			http.StatusBadRequest, "decoding"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			url := fmt.Sprintf("%s/models/%s/predict", ts.URL, tc.model)
			var resp predictResponse
			var code int
			if raw, ok := tc.body.(string); ok {
				r, err := http.Post(url, "application/json", strings.NewReader(raw))
				if err != nil {
					t.Fatal(err)
				}
				json.NewDecoder(r.Body).Decode(&resp)
				r.Body.Close()
				code = r.StatusCode
			} else {
				code = postJSON(t, url, tc.body, &resp)
			}
			if code != tc.wantCode {
				t.Fatalf("code %d, want %d (error %q)", code, tc.wantCode, resp.Error)
			}
			if tc.wantErr != "" && !strings.Contains(resp.Error, tc.wantErr) {
				t.Fatalf("error %q does not mention %q", resp.Error, tc.wantErr)
			}
		})
	}

	// The unambiguous forms still work, and the equivalent config- and
	// vector-form requests answer identically.
	var viaVec, viaCfg predictResponse
	if code := postJSON(t, ts.URL+"/models/m/predict",
		map[string]any{"vector": vec, "dsize_mb": 100}, &viaVec); code != http.StatusOK {
		t.Fatalf("vector predict returned %d: %s", code, viaVec.Error)
	}
	cfg := space.Default()
	for i, name := range space.Names() {
		cfg = cfg.Set(name, vec[i])
	}
	if code := postJSON(t, ts.URL+"/models/m/predict",
		map[string]any{"config": configMap(cfg), "dsize_mb": 100}, &viaCfg); code != http.StatusOK {
		t.Fatalf("config predict returned %d: %s", code, viaCfg.Error)
	}
	if viaVec.PredictedSec != viaCfg.PredictedSec {
		t.Fatalf("vector form predicts %v, config form %v — same configuration",
			viaVec.PredictedSec, viaCfg.PredictedSec)
	}
	if viaVec.Version != 1 || viaVec.Model != "m" {
		t.Fatalf("response identifies %s@v%d, want m@v1", viaVec.Model, viaVec.Version)
	}
}

// TestServeEquivalenceAllBackends is the byte-identity suite: for every
// backend in the default registry, the hot path — pinned model, memo,
// coalesced batches — answers exactly what a fresh registry Load plus a
// single Predict answers, for the same request set, sequentially and
// concurrently, at GOMAXPROCS 1 and 4.
func TestServeEquivalenceAllBackends(t *testing.T) {
	s, ts := newTestServer(t, obs.NewRegistry())
	names := backends.Default().Names()
	for i, backend := range names {
		registerSpaceModel(t, s, backend, "eq-"+backend, int64(20+i))
	}
	space := conf.StandardSpace()

	// The request set mixes vector- and config-form requests and repeats
	// half of them, so the memo and the coalescer both see action.
	type request struct {
		body map[string]any
		x    []float64 // the exact vector the server assembles
	}
	rng := rand.New(rand.NewSource(9))
	var reqs []request
	for i := 0; i < 10; i++ {
		cfg := space.Random(rng)
		dsize := 100 + 900*rng.Float64()
		if i%2 == 0 {
			reqs = append(reqs, request{
				body: map[string]any{"vector": cfg.Vector(), "dsize_mb": dsize},
				x:    append(cfg.Vector(), dsize),
			})
		} else {
			reqs = append(reqs, request{
				body: map[string]any{"config": configMap(cfg), "dsize_mb": dsize},
				x:    append(cfg.Vector(), dsize),
			})
		}
	}
	reqs = append(reqs, reqs[:5]...) // repeats: memo hits

	for _, procs := range []int{1, 4} {
		t.Run(fmt.Sprintf("gomaxprocs=%d", procs), func(t *testing.T) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			for _, backend := range names {
				name := "eq-" + backend
				// The cold reference: fresh decode, per-row Predict.
				ref, _, err := s.Manager().Models().Load(name, 0)
				if err != nil {
					t.Fatal(err)
				}
				want := make([]float64, len(reqs))
				for i, rq := range reqs {
					want[i] = ref.Predict(rq.x)
				}

				url := fmt.Sprintf("%s/models/%s/predict", ts.URL, name)
				got := make([]float64, len(reqs))
				for i, rq := range reqs { // sequential pass
					var resp predictResponse
					if code := postJSON(t, url, rq.body, &resp); code != http.StatusOK {
						t.Fatalf("%s req %d: %d %s", backend, i, code, resp.Error)
					}
					got[i] = resp.PredictedSec
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s req %d sequential: hot %v, reference %v", backend, i, got[i], want[i])
					}
				}

				var wg sync.WaitGroup // concurrent pass: coalesced batches
				errs := make(chan error, len(reqs))
				for i, rq := range reqs {
					wg.Add(1)
					go func(i int, rq request) {
						defer wg.Done()
						var resp predictResponse
						if code := postJSON(t, url, rq.body, &resp); code != http.StatusOK {
							errs <- fmt.Errorf("%s req %d: %d %s", backend, i, code, resp.Error)
							return
						}
						if resp.PredictedSec != want[i] {
							errs <- fmt.Errorf("%s req %d concurrent: hot %v, reference %v",
								backend, i, resp.PredictedSec, want[i])
						}
					}(i, rq)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestPredictDisabledHotPath keeps the Load-per-request fallback alive:
// with serving disabled the endpoint still answers (it is the baseline
// `dac bench -serve` measures), and no cache metrics move.
func TestPredictDisabledHotPath(t *testing.T) {
	r := obs.NewRegistry()
	s, ts := newTestServerOpts(t, ServerOptions{Workers: 1, Obs: r, Serving: ServingOptions{Disabled: true}})
	registerSpaceModel(t, s, "hm", "m", 31)
	if s.Cache() != nil {
		t.Fatal("disabled serving still built a cache")
	}
	vec := conf.StandardSpace().Random(rand.New(rand.NewSource(2))).Vector()
	var resp predictResponse
	if code := postJSON(t, ts.URL+"/models/m/predict",
		map[string]any{"vector": vec, "dsize_mb": 200}, &resp); code != http.StatusOK {
		t.Fatalf("predict returned %d: %s", code, resp.Error)
	}
	ref, _, err := s.Manager().Models().Load("m", 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := ref.Predict(append(vec, 200.0)); resp.PredictedSec != want {
		t.Fatalf("fallback predicts %v, reference %v", resp.PredictedSec, want)
	}
	if r.Counter("serve.modelcache.hits").Value() != 0 || r.Counter("serve.modelcache.misses").Value() != 0 {
		t.Fatal("cache counters moved with serving disabled")
	}
}

// TestPredictConcurrentRegistryUpdates hammers /predict from 8
// goroutines while a collect job and a chain of train jobs register new
// versions of the same model underneath them. It asserts no request
// fails, every response's (version, prediction) pair matches a fresh
// decode of that exact version (no torn reads), version-0 responses are
// monotonic per client, and the final version-0 answer is the last
// registered version.
func TestPredictConcurrentRegistryUpdates(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, reg)
	registerSpaceModel(t, s, "hm", "m", 41)

	space := conf.StandardSpace()
	probe := space.Random(rand.New(rand.NewSource(3))).Vector()
	probeX := append(append([]float64(nil), probe...), 512.0)

	const hammerers = 8
	const trains = 3
	type observation struct {
		version int
		pred    float64
	}
	var (
		wg       sync.WaitGroup
		done     = make(chan struct{})
		failures = make(chan error, hammerers)
		obsMu    sync.Mutex
		seen     = map[observation]bool{}
	)
	url := ts.URL + "/models/m/predict"
	for i := 0; i < hammerers; i++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			// Half the clients follow the latest (version 0), half pin v1.
			reqVersion := 0
			if client%2 == 1 {
				reqVersion = 1
			}
			body, _ := json.Marshal(map[string]any{
				"vector": probe, "dsize_mb": 512, "version": reqVersion,
			})
			lastVersion := 0
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Post(url, "application/json", strings.NewReader(string(body)))
				if err != nil {
					failures <- fmt.Errorf("client %d: %v", client, err)
					return
				}
				var pr predictResponse
				err = json.NewDecoder(resp.Body).Decode(&pr)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					failures <- fmt.Errorf("client %d: code %d err %v body %+v", client, resp.StatusCode, err, pr)
					return
				}
				if reqVersion == 1 && pr.Version != 1 {
					failures <- fmt.Errorf("client %d: pinned v1, got v%d", client, pr.Version)
					return
				}
				if pr.Version < lastVersion {
					failures <- fmt.Errorf("client %d: version went backwards, v%d after v%d",
						client, pr.Version, lastVersion)
					return
				}
				lastVersion = pr.Version
				obsMu.Lock()
				seen[observation{pr.Version, pr.PredictedSec}] = true
				obsMu.Unlock()
			}
		}(i)
	}

	// Meanwhile: collect once, then train new versions of "m" from the
	// collected CSV, each registering through the Save→Refresh hook the
	// hammerers are racing against.
	cj := submitAndWait(t, ts.URL, JobSpec{Type: JobCollect, Workload: "TS", NTrain: 40, Seed: 13}, 2*time.Minute)
	if cj.State != StateDone {
		t.Fatalf("collect finished %s: %s", cj.State, cj.Error)
	}
	for i := 0; i < trains; i++ {
		tj := submitAndWait(t, ts.URL, JobSpec{
			Type: JobTrain, FromJob: cj.ID, Model: "m", Seed: int64(50 + i), HMTrees: 20,
		}, 2*time.Minute)
		if tj.State != StateDone {
			t.Fatalf("train %d finished %s: %s", i, tj.State, tj.Error)
		}
	}
	close(done)
	wg.Wait()
	close(failures)
	for err := range failures {
		t.Fatal(err)
	}

	// Every observed (version, prediction) pair must match a fresh
	// decode of that version — a torn or half-swapped model would have
	// produced a value no registered version produces.
	finalVersion := 1 + trains
	refs := map[int]float64{}
	for v := 1; v <= finalVersion; v++ {
		m, _, err := s.Manager().Models().Load("m", v)
		if err != nil {
			t.Fatalf("version %d should exist: %v", v, err)
		}
		refs[v] = m.Predict(probeX)
	}
	if len(seen) == 0 {
		t.Fatal("hammerers recorded no observations")
	}
	for ob := range seen {
		want, ok := refs[ob.version]
		if !ok {
			t.Fatalf("response carried version %d, which never existed", ob.version)
		}
		if ob.pred != want {
			t.Fatalf("torn read: v%d served %v, fresh decode predicts %v", ob.version, ob.pred, want)
		}
	}

	// The Save hook runs before the train job reports done, so by now
	// version 0 must resolve the last registered version.
	var final predictResponse
	if code := postJSON(t, url, map[string]any{"vector": probe, "dsize_mb": 512}, &final); code != http.StatusOK {
		t.Fatalf("final predict returned %d: %s", code, final.Error)
	}
	if final.Version != finalVersion {
		t.Fatalf("final version-0 predict resolved v%d, want v%d", final.Version, finalVersion)
	}
	if reg.Counter("serve.modelcache.hits").Value() == 0 {
		t.Fatal("hammer traffic never hit the hot cache")
	}
	if pc, lc := reg.Counter("serve.predicts").Value(),
		reg.Histogram("serve.predict.latency", nil).Count(); pc != lc {
		t.Fatalf("latency histogram recorded %d samples for %d predicts", lc, pc)
	}
}
