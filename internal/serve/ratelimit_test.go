package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestTokenLimiterBurstRefillAndIsolation(t *testing.T) {
	l := newTokenLimiter(1) // 1 req/sec, burst 1
	t0 := time.Unix(1000, 0)
	if !l.allow("alice", t0) {
		t.Fatal("first request rejected")
	}
	if l.allow("alice", t0) {
		t.Fatal("second immediate request allowed past burst 1")
	}
	if !l.allow("bob", t0) {
		t.Fatal("distinct token throttled by alice's bucket")
	}
	if l.allow("alice", t0.Add(200*time.Millisecond)) {
		t.Fatal("allowed before a full refill interval")
	}
	if !l.allow("alice", t0.Add(1100*time.Millisecond)) {
		t.Fatal("rejected after refill")
	}
}

func TestTokenLimiterSweepsIdleBuckets(t *testing.T) {
	l := newTokenLimiter(5)
	t0 := time.Unix(1000, 0)
	for i := 0; i < limiterMaxBuckets; i++ {
		l.allow(string(rune('a'+i%26))+string(rune('0'+i/26%10))+string(rune(i)), t0)
	}
	if len(l.buckets) < limiterMaxBuckets {
		t.Fatalf("expected %d buckets, have %d", limiterMaxBuckets, len(l.buckets))
	}
	// A new token two minutes later sweeps the idle map instead of
	// growing it without bound.
	l.allow("fresh", t0.Add(2*time.Minute))
	if len(l.buckets) != 1 {
		t.Fatalf("idle buckets not swept: %d remain", len(l.buckets))
	}
}

// TestServeRateLimit429 drives the HTTP path: with -rate-limit 1, the
// second immediate mutating request from the same bearer token must
// answer 429 and bump serve.auth.throttled, while a different token
// passes the limiter.
func TestServeRateLimit429(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := NewServerOpts(t.TempDir(), ServerOptions{Workers: 1, Obs: reg, RateLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	post := func(token string) int {
		req, err := http.NewRequest("POST", ts.URL+"/jobs", bytes.NewReader([]byte("{}")))
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// The empty spec is invalid (400) — what matters is whether the
	// limiter lets the request through to the handler at all.
	if code := post("alice"); code == http.StatusTooManyRequests {
		t.Fatalf("first request throttled: %d", code)
	}
	if code := post("alice"); code != http.StatusTooManyRequests {
		t.Fatalf("second immediate request = %d, want 429", code)
	}
	if code := post("bob"); code == http.StatusTooManyRequests {
		t.Fatal("distinct token throttled")
	}
	if got := reg.Counter("serve.auth.throttled").Value(); got != 1 {
		t.Fatalf("serve.auth.throttled = %d, want 1", got)
	}
}

// TestServeNoRateLimitByDefault pins the historical behavior: without
// -rate-limit, back-to-back requests are never throttled.
func TestServeNoRateLimitByDefault(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, reg)
	for i := 0; i < 5; i++ {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader([]byte("{}")))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			t.Fatalf("request %d throttled with no rate limit configured", i)
		}
	}
}

func TestSearchersEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, reg)
	var out struct {
		Searchers []string `json:"searchers"`
		Default   string   `json:"default"`
	}
	if code := getJSON(t, ts.URL+"/searchers", &out); code != http.StatusOK {
		t.Fatalf("GET /searchers = %d", code)
	}
	if out.Default != "ga" {
		t.Errorf("default = %q, want ga", out.Default)
	}
	want := map[string]bool{"ga": false, "tpe": false, "random": false,
		"rrs": false, "pattern": false, "anneal": false}
	for _, n := range out.Searchers {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("searcher %q missing from /searchers", n)
		}
	}
}

func TestSubmitRejectsUnknownSearcher(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, reg)
	spec := tuneBudget
	spec.Searcher = "simplex"
	if code := postJSON(t, ts.URL+"/jobs", spec, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown searcher accepted: %d", code)
	}
}

// TestTuneJobWithTPESearcher runs a reduced-budget tune with
// "searcher":"tpe" end to end over HTTP — the daemon must resolve the
// name, search with the TPE, and finish with a legal result.
func TestTuneJobWithTPESearcher(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, reg)
	spec := tuneBudget
	spec.Searcher = "tpe"
	job := submitAndWait(t, ts.URL, spec, 2*time.Minute)
	if job.State != StateDone {
		t.Fatalf("tpe tune ended %q: %s", job.State, job.Error)
	}
	var res struct {
		PredictedSec float64 `json:"predicted_sec"`
	}
	if err := json.Unmarshal(job.Result, &res); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	if res.PredictedSec <= 0 {
		t.Fatalf("tpe tune predicted %v sec", res.PredictedSec)
	}
}
