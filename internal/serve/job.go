package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/ga"
	"repro/internal/hm"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/search"
	"repro/internal/sparksim"
	"repro/internal/workloads"
)

// JobType selects which pipeline slice a job runs.
type JobType string

const (
	// JobCollect runs the collecting component and stores the training
	// CSV under the data directory. Durable: rows journal as they
	// complete, and a restarted daemon resumes the sweep.
	JobCollect JobType = "collect"
	// JobTrain fits (or warm-starts) an HM model on a finished collect
	// job's CSV and registers it.
	JobTrain JobType = "train"
	// JobSearch runs the GA against a registered model for one target
	// size.
	JobSearch JobType = "search"
	// JobTune runs the full pipeline — durable collect, model, search —
	// and registers the model.
	JobTune JobType = "tune"
	// JobTuneOnline runs the online importance-screened loop: a small
	// screening sample, then iterative measure→refit→search rounds over
	// the significant subspace with an OOM safety guard. Durable like
	// collect: every measured run journals, and a restarted daemon
	// replays the trajectory to the exact same final configuration.
	JobTuneOnline JobType = "tune_online"
)

// Job states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// JobSpec is the client-submitted description of one job. Budgets left
// zero take the paper's settings (ntrain 2000, 3600 trees, GA 100×100);
// Quick selects small smoke-test budgets; explicit values win over both.
// The same seed and budgets produce the same result as the equivalent
// `dac` CLI invocation — the service adds durability, not different math.
type JobSpec struct {
	Type     JobType `json:"type"`
	Workload string  `json:"workload"`
	// Size is the target datasize in the workload's units (search/tune);
	// 0 selects the middle Table 1 size, like the CLI.
	Size float64 `json:"size,omitempty"`
	// NTrain is the number of vectors to collect (collect/tune).
	NTrain int   `json:"ntrain,omitempty"`
	Seed   int64 `json:"seed,omitempty"` // default 1
	// Model names the registry entry to read (train warm-start source /
	// search) or write (train/tune); default: the workload abbreviation,
	// lowercased.
	Model        string `json:"model,omitempty"`
	ModelVersion int    `json:"model_version,omitempty"` // 0 = latest
	// Backend selects which model backend train/tune jobs fit
	// (hm|rf|rs|ann|svm); default hm, the paper's model. Warm-start is
	// only accepted when the backend implements model.Resumer.
	Backend string `json:"backend,omitempty"`
	// Searcher selects which registered searcher search/tune/tune_online
	// jobs minimize the model with (ga|tpe|random|rrs|pattern|anneal);
	// default ga, the paper's searcher — the default path is
	// byte-identical to the CLI's.
	Searcher string `json:"searcher,omitempty"`
	// FromJob is the finished collect (or tune) job whose CSV feeds a
	// train job.
	FromJob int64 `json:"from_job,omitempty"`
	// WarmFrom, for train jobs, names a registered model to continue via
	// hm.Resume instead of training from scratch; ExtraTrees bounds the
	// added boosting budget (default 400).
	WarmFrom    string `json:"warm_from,omitempty"`
	WarmVersion int    `json:"warm_version,omitempty"`
	ExtraTrees  int    `json:"extra_trees,omitempty"`
	// Quick shrinks every budget for smoke tests: ntrain 200, 120 trees,
	// GA 20×10.
	Quick bool `json:"quick,omitempty"`
	// Explicit budget overrides (testing and CI).
	HMTrees       int `json:"hm_trees,omitempty"`
	GAPop         int `json:"ga_pop,omitempty"`
	GAGenerations int `json:"ga_generations,omitempty"`
	// Parallelism bounds concurrent executions while collecting
	// (0 = GOMAXPROCS). Results are identical for any value.
	Parallelism int `json:"parallelism,omitempty"`
	// Online-loop budgets (tune_online only; 0 = core defaults, shrunk by
	// Quick): screening-sample size, surviving parameter count, iteration
	// count, and measured runs per iteration.
	ScreenSamples int `json:"screen_samples,omitempty"`
	TopK          int `json:"top_k,omitempty"`
	Iterations    int `json:"iterations,omitempty"`
	IterBatch     int `json:"iter_batch,omitempty"`
}

// Progress is a job's live phase/counter state.
type Progress struct {
	Phase string `json:"phase,omitempty"`
	Done  int    `json:"done,omitempty"`
	Total int    `json:"total,omitempty"`
}

// Job is one unit of daemon work, persisted as jobs/<id>.json on every
// state transition so a restarted daemon re-adopts its queue.
type Job struct {
	ID    int64   `json:"id"`
	Spec  JobSpec `json:"spec"`
	State string  `json:"state"`
	// SpecHash fingerprints the spec for submission dedup: submitting a
	// spec whose hash matches a queued, running, or done job returns that
	// job instead of enqueueing a duplicate.
	SpecHash string `json:"spec_hash,omitempty"`
	// Deduped counts submissions that were folded into this job.
	Deduped int `json:"deduped,omitempty"`
	// CancelRequested marks a running job whose cancellation was asked
	// for but not yet observed by the pipeline. Such a job no longer
	// absorbs resubmissions — an identical spec submitted after the
	// cancel runs fresh.
	CancelRequested bool            `json:"cancel_requested,omitempty"`
	Error           string          `json:"error,omitempty"`
	Result          json.RawMessage `json:"result,omitempty"`
	Progress        Progress        `json:"progress"`
	CreatedUnix     int64           `json:"created_unix"`
	UpdatedUnix     int64           `json:"updated_unix"`
}

// specHash fingerprints a spec by hashing its canonical JSON form.
func specHash(spec JobSpec) string {
	b, err := json.Marshal(spec)
	if err != nil {
		return "" // unreachable: JobSpec is plain data
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Manager owns the daemon's job queue: a bounded worker pool executing
// jobs over the core pipeline, with every state transition persisted.
// Restarting a Manager over the same data directory re-enqueues jobs
// that were queued or running; an interrupted collect resumes from its
// journal instead of re-running completed rows.
type Manager struct {
	dataDir string
	models  *ModelRegistry
	obs     *obs.Registry

	mu      sync.Mutex
	jobs    map[int64]*Job
	byHash  map[string]int64 // spec hash → most recent job with it
	cancels map[int64]context.CancelFunc
	nextID  int64
	caches  map[string]*ga.GenomeCache

	queue      chan int64
	wg         sync.WaitGroup
	rootCtx    context.Context
	rootCancel context.CancelFunc

	// fleet, when non-nil, is the coordinator collect sweeps shard
	// through whenever it has live workers (fleet.go); without workers
	// (or without a coordinator) sweeps run on the local pool.
	fleet *fleet.Coordinator

	// testBatchHook, when non-nil, observes every journaled collect
	// checkpoint (cumulative journaled row count). Tests use it to hold
	// collect workers mid-sweep and exercise the restart path
	// deterministically.
	testBatchHook func(journaledRows int)
}

// NewManager opens the data directory, adopts any persisted jobs
// (re-enqueueing unfinished ones in ID order), and starts workers
// worker goroutines (min 1).
func NewManager(dataDir string, workers int, reg *obs.Registry) (*Manager, error) {
	for _, d := range []string{"jobs", "journals", "collect", "models"} {
		if err := os.MkdirAll(filepath.Join(dataDir, d), 0o755); err != nil {
			return nil, err
		}
	}
	models, err := NewModelRegistry(filepath.Join(dataDir, "models"))
	if err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		dataDir:    dataDir,
		models:     models,
		obs:        reg,
		jobs:       make(map[int64]*Job),
		byHash:     make(map[string]int64),
		cancels:    make(map[int64]context.CancelFunc),
		caches:     make(map[string]*ga.GenomeCache),
		queue:      make(chan int64, 4096),
		rootCtx:    ctx,
		rootCancel: cancel,
	}
	resume, err := m.loadJobs()
	if err != nil {
		cancel()
		return nil, err
	}
	for _, id := range resume {
		m.queue <- id
	}
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// loadJobs reads jobs/*.json, rebuilds the in-memory table, and returns
// the IDs to re-enqueue (previously queued or running), ascending.
func (m *Manager) loadJobs() ([]int64, error) {
	entries, err := os.ReadDir(filepath.Join(m.dataDir, "jobs"))
	if err != nil {
		return nil, err
	}
	var resume []int64
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(m.dataDir, "jobs", e.Name()))
		if err != nil {
			return nil, err
		}
		var j Job
		if err := json.Unmarshal(b, &j); err != nil {
			return nil, fmt.Errorf("serve: job file %s: %w", e.Name(), err)
		}
		if j.State == StateQueued || j.State == StateRunning {
			if j.CancelRequested {
				// The previous daemon died between the cancel request and
				// the pipeline noticing; honor the cancel instead of
				// resurrecting the job.
				j.State = StateCancelled
				m.obs.Counter("serve.jobs.cancelled").Inc()
				if err := m.persistLocked(&j); err != nil {
					return nil, err
				}
			} else {
				// The previous daemon never finished this job; adopt it.
				j.State = StateQueued
				resume = append(resume, j.ID)
				m.obs.Counter("serve.jobs.adopted").Inc()
			}
		}
		if j.SpecHash == "" {
			// Jobs persisted before dedup existed; fingerprint them so
			// resubmissions of old specs dedup too.
			j.SpecHash = specHash(j.Spec)
		}
		m.jobs[j.ID] = &j
		// Later IDs win so byHash always points at the newest attempt —
		// but only states that absorb resubmissions occupy a slot; failed
		// and cancelled jobs retry fresh.
		if !j.CancelRequested {
			switch j.State {
			case StateQueued, StateRunning, StateDone:
				if prev, ok := m.byHash[j.SpecHash]; !ok || j.ID > prev {
					m.byHash[j.SpecHash] = j.ID
				}
			}
		}
		if j.ID >= m.nextID {
			m.nextID = j.ID + 1
		}
	}
	sort.Slice(resume, func(i, k int) bool { return resume[i] < resume[k] })
	if m.nextID == 0 {
		m.nextID = 1
	}
	return resume, nil
}

// Close stops accepting work, cancels running jobs, and waits for the
// workers to exit. In-flight collect rows already journaled survive; the
// jobs stay queued/running on disk and a new Manager re-adopts them.
func (m *Manager) Close() {
	m.rootCancel()
	m.wg.Wait()
}

// Submit validates, persists, and enqueues a job, returning its ID.
// Submitting a spec identical to a queued, running, or done job returns
// that job's ID with deduped=true instead of enqueueing a duplicate: the
// pipeline is deterministic in the spec, so the existing job's result is
// exactly what a rerun would produce. Failed and cancelled jobs don't
// absorb resubmissions — those are the retry path.
func (m *Manager) Submit(spec JobSpec) (int64, bool, error) {
	if err := m.validateSpec(spec); err != nil {
		return 0, false, err
	}
	hash := specHash(spec)
	m.mu.Lock()
	if prev, ok := m.byHash[hash]; ok {
		if j, live := m.jobs[prev]; live && !j.CancelRequested {
			switch j.State {
			case StateQueued, StateRunning, StateDone:
				j.Deduped++
				m.persistLocked(j)
				m.mu.Unlock()
				m.obs.Counter("serve.jobs.deduped").Inc()
				return prev, true, nil
			}
		}
	}
	id := m.nextID
	m.nextID++
	now := time.Now().Unix()
	j := &Job{ID: id, Spec: spec, State: StateQueued, SpecHash: hash, CreatedUnix: now, UpdatedUnix: now}
	m.jobs[id] = j
	m.byHash[hash] = id
	err := m.persistLocked(j)
	m.mu.Unlock()
	if err != nil {
		return 0, false, err
	}
	select {
	case m.queue <- id:
	default:
		m.transition(id, StateFailed, "job queue full", nil, StateQueued)
		return 0, false, fmt.Errorf("serve: job queue full")
	}
	m.obs.Counter("serve.jobs.submitted").Inc()
	return id, false, nil
}

func (m *Manager) validateSpec(spec JobSpec) error {
	switch spec.Type {
	case JobCollect, JobTrain, JobSearch, JobTune, JobTuneOnline:
	default:
		return fmt.Errorf("serve: unknown job type %q (collect|train|search|tune|tune_online)", spec.Type)
	}
	// Negative budgets and counts are always spec bugs: zero means
	// "default" everywhere, so reject negatives loudly instead of letting
	// them reach a pipeline stage that misreads them.
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"size", spec.Size},
		{"ntrain", float64(spec.NTrain)},
		{"seed", float64(spec.Seed)},
		{"model_version", float64(spec.ModelVersion)},
		{"from_job", float64(spec.FromJob)},
		{"warm_version", float64(spec.WarmVersion)},
		{"extra_trees", float64(spec.ExtraTrees)},
		{"hm_trees", float64(spec.HMTrees)},
		{"ga_pop", float64(spec.GAPop)},
		{"ga_generations", float64(spec.GAGenerations)},
		{"parallelism", float64(spec.Parallelism)},
		{"screen_samples", float64(spec.ScreenSamples)},
		{"top_k", float64(spec.TopK)},
		{"iterations", float64(spec.Iterations)},
		{"iter_batch", float64(spec.IterBatch)},
	} {
		if f.v < 0 {
			return fmt.Errorf("serve: %s must not be negative (0 selects the default)", f.name)
		}
	}
	if spec.Type != JobTrain || spec.Workload != "" {
		if _, err := workloads.ByAbbr(strings.ToUpper(spec.Workload)); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}
	if spec.Type == JobTuneOnline {
		switch spec.backend() {
		case "hm", "rf":
		default:
			return fmt.Errorf("serve: tune_online needs a backend that reports feature importance (hm|rf), not %q", spec.Backend)
		}
	}
	if spec.Type == JobTrain && spec.FromJob == 0 {
		return fmt.Errorf("serve: train jobs need from_job (a finished collect job)")
	}
	if spec.Type == JobSearch && spec.Model == "" && spec.Workload == "" {
		return fmt.Errorf("serve: search jobs need a model (or a workload to derive its name)")
	}
	if spec.Model != "" {
		if err := validName(spec.Model); err != nil {
			return err
		}
	}
	if spec.Backend != "" {
		b, err := m.models.Backends().Lookup(spec.Backend)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		if spec.WarmFrom != "" {
			if _, ok := b.(model.Resumer); !ok {
				return fmt.Errorf("serve: backend %q does not support warm-start", spec.Backend)
			}
		}
	}
	if spec.Searcher != "" {
		if _, err := search.Default().Lookup(spec.Searcher); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}
	return nil
}

// Get returns a copy of the job.
func (m *Manager) Get(id int64) (Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// List returns copies of all jobs, ascending by ID.
func (m *Manager) List() []Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, *j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Cancel stops a queued or running job. Queued jobs flip straight to
// cancelled; running jobs get their context cancelled and finish as
// cancelled once the pipeline notices (collect notices at the next
// checkpoint batch).
func (m *Manager) Cancel(id int64) error {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("serve: job %d not found", id)
	}
	switch j.State {
	case StateQueued:
		j.State = StateCancelled
		j.CancelRequested = true
		j.UpdatedUnix = time.Now().Unix()
		m.dropHashLocked(j)
		err := m.persistLocked(j)
		m.mu.Unlock()
		return err
	case StateRunning:
		// Mark the request and release the dedup slot immediately: from
		// this moment an identical spec submitted again must run fresh,
		// even though this job is still winding down.
		j.CancelRequested = true
		j.UpdatedUnix = time.Now().Unix()
		m.dropHashLocked(j)
		err := m.persistLocked(j)
		cancel := m.cancels[id]
		m.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return err
	default:
		m.mu.Unlock()
		return fmt.Errorf("serve: job %d already %s", id, j.State)
	}
}

// Models exposes the registry (shared with the HTTP layer).
func (m *Manager) Models() *ModelRegistry { return m.models }

// cacheFor returns the shared GA genome cache for one (model version,
// target size) — the only granularity at which genome fitness values are
// interchangeable, since the cache key is the genome alone.
func (m *Manager) cacheFor(model string, version int, dsizeMB float64) *ga.GenomeCache {
	key := fmt.Sprintf("%s@v%d@%x", model, version, dsizeMB)
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.caches[key]
	if !ok {
		c = ga.NewGenomeCache()
		m.caches[key] = c
	}
	return c
}

func (m *Manager) persistLocked(j *Job) error {
	path := filepath.Join(m.dataDir, "jobs", fmt.Sprintf("%d.json", j.ID))
	return atomicWrite(path, func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(j)
	})
}

// transition moves a job to state iff its current state is one of from —
// a compare-and-set under the manager lock, persisted exactly once.
// Returning false means another path won the race (e.g. Cancel marked the
// job cancelled while its completion was being recorded) and nothing was
// written; terminal states are never overwritten by a late writer.
func (m *Manager) transition(id int64, state, errMsg string, result any, from ...string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return false
	}
	legal := false
	for _, f := range from {
		if j.State == f {
			legal = true
			break
		}
	}
	if !legal {
		return false
	}
	j.State = state
	j.Error = errMsg
	if result != nil {
		if b, err := json.Marshal(result); err == nil {
			j.Result = b
		}
	}
	j.UpdatedUnix = time.Now().Unix()
	if state == StateFailed || state == StateCancelled {
		m.dropHashLocked(j)
	}
	m.persistLocked(j)
	return true
}

// dropHashLocked removes the job's dedup entry if it still points at this
// job, so resubmissions of the same spec run fresh (the failed/cancelled
// retry contract). Caller holds m.mu.
func (m *Manager) dropHashLocked(j *Job) {
	if id, ok := m.byHash[j.SpecHash]; ok && id == j.ID {
		delete(m.byHash, j.SpecHash)
	}
}

func (m *Manager) setProgress(id int64, p Progress) {
	m.mu.Lock()
	if j, ok := m.jobs[id]; ok {
		j.Progress = p
	}
	m.mu.Unlock()
}

// worker pulls job IDs off the queue until the manager closes.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.rootCtx.Done():
			return
		case id := <-m.queue:
			m.runJob(id)
		}
	}
}

// runJob executes one job end to end, with a per-job cancel layered on
// the manager's root context.
func (m *Manager) runJob(id int64) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok || j.State != StateQueued {
		m.mu.Unlock()
		return // cancelled while queued, or stale
	}
	ctx, cancel := context.WithCancel(m.rootCtx)
	m.cancels[id] = cancel
	j.State = StateRunning
	j.UpdatedUnix = time.Now().Unix()
	m.persistLocked(j)
	spec := j.Spec
	m.mu.Unlock()
	defer func() {
		cancel()
		m.mu.Lock()
		delete(m.cancels, id)
		m.mu.Unlock()
	}()

	sp := m.obs.StartSpan("serve.job." + string(spec.Type))
	result, err := m.execute(ctx, id, spec)
	sp.End()

	// Every terminal write is a guarded transition out of StateRunning:
	// whichever of completion and cancellation records its state first
	// wins, and the loser's write is dropped instead of overwriting a
	// terminal state.
	switch {
	case err == nil:
		if m.transition(id, StateDone, "", result, StateRunning) {
			m.obs.Counter("serve.jobs.done").Inc()
		}
	case ctx.Err() != nil && m.rootCtx.Err() != nil:
		// Daemon shutdown, not a user cancel: leave the job running on
		// disk so the next daemon adopts and resumes it.
		m.obs.Counter("serve.jobs.interrupted").Inc()
	case ctx.Err() != nil:
		if m.transition(id, StateCancelled, err.Error(), nil, StateRunning) {
			m.obs.Counter("serve.jobs.cancelled").Inc()
		}
	default:
		if m.transition(id, StateFailed, err.Error(), nil, StateRunning) {
			m.obs.Counter("serve.jobs.failed").Inc()
		}
	}
}

// budgets resolves a spec's pipeline budgets from the shared presets
// (the CLI resolves the same ones): paper defaults, shrunk by Quick,
// overridden by explicit values.
func (spec JobSpec) budgets() (ntrain int, hmOpt hm.Options, gaOpt ga.Options) {
	b := experiments.PaperBudget()
	if spec.Quick {
		b = experiments.QuickBudget()
	}
	ntrain, hmOpt, gaOpt = b.NTrain, b.HM, b.GA
	if spec.NTrain > 0 {
		ntrain = spec.NTrain
	}
	if spec.HMTrees > 0 {
		hmOpt.Trees = spec.HMTrees
	}
	if spec.GAPop > 0 {
		gaOpt.PopSize = spec.GAPop
	}
	if spec.GAGenerations > 0 {
		gaOpt.Generations = spec.GAGenerations
	}
	return ntrain, hmOpt, gaOpt
}

func (spec JobSpec) seed() int64 {
	if spec.Seed != 0 {
		return spec.Seed
	}
	return 1
}

// backend resolves the spec's backend name, defaulting to hm.
func (spec JobSpec) backend() string {
	if spec.Backend == "" {
		return "hm"
	}
	return spec.Backend
}

// searcher resolves the spec's searcher name, defaulting to ga.
func (spec JobSpec) searcher() string {
	if spec.Searcher == "" {
		return "ga"
	}
	return spec.Searcher
}

// trainOpts maps the spec's budget knobs onto the cross-backend form.
// HMTrees doubles as the generic tree-count override.
func (m *Manager) trainOpts(spec JobSpec) model.TrainOpts {
	return model.TrainOpts{
		Seed:  spec.seed(),
		Obs:   m.obs,
		Quick: spec.Quick,
		Trees: spec.HMTrees,
	}
}

// modelName is the registry entry a job writes or reads by default.
func (spec JobSpec) modelName(w *workloads.Workload) string {
	if spec.Model != "" {
		return spec.Model
	}
	return strings.ToLower(w.Abbr)
}

// tunerFor mirrors the CLI's wiring exactly — same simulator seed
// derivation, space, executor, and options — so a job's output matches
// the equivalent `dac` invocation bit for bit.
func (m *Manager) tunerFor(w *workloads.Workload, spec JobSpec) *core.Tuner {
	ntrain, hmOpt, gaOpt := spec.budgets()
	seed := spec.seed()
	sim := sparksim.New(cluster.Standard(), seed+7)
	sim.Instrument(m.obs)
	opt := core.Options{
		NTrain:      ntrain,
		HM:          hmOpt,
		GA:          gaOpt,
		Parallelism: spec.Parallelism,
		Seed:        seed,
	}
	if name := spec.backend(); name != "hm" {
		// Route the modeling stage through the selected backend; the hm
		// default keeps the tuner's built-in path (bit-identical to the
		// CLI). Seed stays zero so the tuner derives it as Seed+1, the
		// same slot the hm path uses.
		b, err := m.models.Backends().Lookup(name)
		if err == nil { // unknown names were rejected at Submit
			opt.Backend = b
			opt.BackendTrain = model.TrainOpts{Quick: spec.Quick, Trees: spec.HMTrees}
		}
	}
	if name := spec.searcher(); name != "ga" {
		// Route the searching stage through the selected searcher; the ga
		// default keeps the tuner's built-in GA path (bit-identical to
		// the CLI). The seed slot (Seed+2) and training-set population
		// seeds are shared by every searcher.
		s, err := search.Default().Lookup(name)
		if err == nil { // unknown names were rejected at Submit
			opt.Searcher = s
		}
	}
	return &core.Tuner{
		Space: conf.StandardSpace(),
		Exec:  core.NewSimExecutor(sim, &w.Program),
		Opt:   opt,
		Obs:   m.obs,
	}
}

// trainingRange is the CLI's collect range: slightly beyond Table 1.
func trainingRange(w *workloads.Workload) (lo, hi float64) {
	return w.InputMB(w.Sizes[0]) * 0.8, w.InputMB(w.Sizes[len(w.Sizes)-1]) * 1.1
}

func (spec JobSpec) targetMB(w *workloads.Workload) float64 {
	units := spec.Size
	if units == 0 {
		units = w.Sizes[len(w.Sizes)/2]
	}
	return w.InputMB(units)
}

// execute dispatches one job to its pipeline slice.
func (m *Manager) execute(ctx context.Context, id int64, spec JobSpec) (any, error) {
	switch spec.Type {
	case JobCollect:
		return m.runCollect(ctx, id, spec)
	case JobTrain:
		return m.runTrain(ctx, id, spec)
	case JobSearch:
		return m.runSearch(ctx, id, spec)
	case JobTune:
		return m.runTune(ctx, id, spec)
	case JobTuneOnline:
		return m.runTuneOnline(ctx, id, spec)
	}
	return nil, fmt.Errorf("serve: unknown job type %q", spec.Type)
}

// collectDurable runs the journal-backed collect sweep for a job: known
// rows replay from the journal, fresh batches append to it before they
// count as done. Returns the finished set.
func (m *Manager) collectDurable(ctx context.Context, id int64, spec JobSpec, t *core.Tuner, w *workloads.Workload) (*dataset.Set, core.Overhead, error) {
	lo, hi := trainingRange(w)
	sizes := t.TrainingSizesMB(lo, hi)
	jp := filepath.Join(m.dataDir, "journals", fmt.Sprintf("job-%d.journal", id))
	jl, err := OpenJournal(jp, MetaHash(w.Abbr, t.Opt.Seed, t.Opt.NTrain, sizes))
	if err != nil {
		return nil, core.Overhead{}, err
	}
	defer jl.Close()
	if n := jl.Rows(); n > 0 {
		m.obs.Counter("serve.collect.resumed.rows").Add(int64(n))
	}
	// Dispatch: a coordinator with live workers shards the sweep across
	// the fleet; otherwise the local worker pool runs it. Both paths
	// journal into jl and produce byte-identical sets (DESIGN.md §15).
	if m.fleet != nil && m.fleet.LiveWorkers() > 0 {
		return m.collectFleet(ctx, id, t, w, sizes, jl)
	}
	var appendErr error
	var appendMu sync.Mutex
	set, ov, err := t.CollectResumable(ctx, sizes, core.CollectHooks{
		Known: jl.Known,
		OnBatch: func(rows []core.RowTime) {
			if err := jl.Append(rows); err != nil {
				appendMu.Lock()
				if appendErr == nil {
					appendErr = err
				}
				appendMu.Unlock()
			}
			m.obs.Counter("serve.collect.checkpoints").Inc()
			if m.testBatchHook != nil {
				m.testBatchHook(jl.Rows())
			}
		},
		Progress: func(done, total int) {
			m.setProgress(id, Progress{Phase: "collect", Done: done, Total: total})
		},
	})
	if err != nil {
		return nil, core.Overhead{}, err
	}
	if appendErr != nil {
		return nil, core.Overhead{}, fmt.Errorf("serve: journal append: %w", appendErr)
	}
	return set, ov, nil
}

func (m *Manager) collectCSVPath(id int64) string {
	return filepath.Join(m.dataDir, "collect", fmt.Sprintf("job-%d.csv", id))
}

func (m *Manager) runCollect(ctx context.Context, id int64, spec JobSpec) (any, error) {
	w, err := workloads.ByAbbr(strings.ToUpper(spec.Workload))
	if err != nil {
		return nil, err
	}
	t := m.tunerFor(w, spec)
	set, ov, err := m.collectDurable(ctx, id, spec, t, w)
	if err != nil {
		return nil, err
	}
	csvPath := m.collectCSVPath(id)
	if err := atomicWrite(csvPath, func(f *os.File) error { return set.WriteCSV(f) }); err != nil {
		return nil, err
	}
	return map[string]any{
		"rows":          set.Len(),
		"cluster_hours": ov.CollectClusterHours,
		"csv":           csvPath,
	}, nil
}

func (m *Manager) runTrain(ctx context.Context, id int64, spec JobSpec) (any, error) {
	src, ok := m.Get(spec.FromJob)
	if !ok {
		return nil, fmt.Errorf("serve: from_job %d not found", spec.FromJob)
	}
	if src.State != StateDone || src.Spec.Type != JobCollect {
		return nil, fmt.Errorf("serve: from_job %d is not a finished collect job", spec.FromJob)
	}
	f, err := os.Open(m.collectCSVPath(spec.FromJob))
	if err != nil {
		return nil, err
	}
	set, err := dataset.ReadCSV(f, conf.StandardSpace())
	f.Close()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.setProgress(id, Progress{Phase: "train"})

	backendName := spec.backend()
	b, err := m.models.Backends().Lookup(backendName)
	if err != nil {
		return nil, err
	}
	trainOpt := m.trainOpts(spec)
	name := spec.Model
	if name == "" {
		name = strings.ToLower(src.Spec.Workload)
	}
	meta := ModelMeta{
		Backend:     backendName,
		Workload:    strings.ToUpper(src.Spec.Workload),
		Seed:        trainOpt.Seed,
		NTrain:      set.Len(),
		Job:         id,
		CreatedUnix: time.Now().Unix(),
	}

	var mdl model.Model
	if spec.WarmFrom != "" {
		// Warm start: continue a registered model's training trajectory
		// (for hm, its boosting and, if it still misses the accuracy
		// target, its hierarchical recursion) instead of refitting from
		// scratch. Only backends with the Resumer capability offer this.
		resumer, ok := b.(model.Resumer)
		if !ok {
			return nil, fmt.Errorf("serve: backend %q does not support warm-start", backendName)
		}
		base, baseMeta, err := m.models.Load(spec.WarmFrom, spec.WarmVersion)
		if err != nil {
			return nil, err
		}
		if got := baseMeta.backendName(); got != backendName {
			return nil, fmt.Errorf("serve: warm-start source %s@v%d is a %s model, not %s",
				baseMeta.Name, baseMeta.Version, got, backendName)
		}
		extra := spec.ExtraTrees
		if extra <= 0 {
			extra = 400
		}
		if err := resumer.Resume(base, set.ToDataset(), trainOpt, extra); err != nil {
			return nil, err
		}
		mdl = base
		meta.WarmFrom = fmt.Sprintf("%s@v%d", baseMeta.Name, baseMeta.Version)
		m.obs.Counter("serve.models.warmstarts").Inc()
	} else {
		mdl, err = b.Train(set.ToDataset(), trainOpt)
		if err != nil {
			return nil, err
		}
	}
	version, err := m.models.Save(name, mdl, meta)
	if err != nil {
		return nil, err
	}
	m.obs.Counter("serve.models.saved").Inc()
	out := map[string]any{
		"model":   name,
		"version": version,
		"backend": backendName,
	}
	if tm, ok := mdl.(interface{ NumTrees() int }); ok {
		out["trees"] = tm.NumTrees()
	}
	if hmModel, ok := mdl.(*hm.Model); ok {
		out["order"] = hmModel.Order
		out["val_err"] = hmModel.ValErr
	}
	return out, nil
}

func (m *Manager) runSearch(ctx context.Context, id int64, spec JobSpec) (any, error) {
	w, err := workloads.ByAbbr(strings.ToUpper(spec.Workload))
	if err != nil {
		return nil, err
	}
	mdl, meta, err := m.models.Load(spec.modelName(w), spec.ModelVersion)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	targetMB := spec.targetMB(w)
	m.setProgress(id, Progress{Phase: "search"})
	t := m.tunerFor(w, spec)
	// Identical (model version, dsize) searches share genome fitness
	// values: repeated idempotent search traffic replays instead of
	// re-evaluating.
	t.Opt.GA.Cache = m.cacheFor(meta.Name, meta.Version, targetMB)
	cfg, pred, gaRes, _, err := t.Search(mdl, targetMB, nil)
	if err != nil {
		return nil, err
	}
	return map[string]any{
		"model":          meta.Name,
		"model_version":  meta.Version,
		"target_mb":      targetMB,
		"best":           configMap(cfg),
		"vector":         cfg.Vector(),
		"predicted_sec":  pred,
		"ga_evaluations": gaRes.Evaluations,
		"ga_cache_hits":  gaRes.CacheHits,
		"ga_converged":   gaRes.Converged,
	}, nil
}

func (m *Manager) runTune(ctx context.Context, id int64, spec JobSpec) (any, error) {
	w, err := workloads.ByAbbr(strings.ToUpper(spec.Workload))
	if err != nil {
		return nil, err
	}
	t := m.tunerFor(w, spec)
	set, ovC, err := m.collectDurable(ctx, id, spec, t, w)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	targetMB := spec.targetMB(w)
	res, err := t.TuneCollected(set, ovC, []float64{targetMB}, func(phase string, done, total int) {
		m.setProgress(id, Progress{Phase: phase, Done: done, Total: total})
	})
	if err != nil {
		return nil, err
	}

	out := map[string]any{
		"workload":      w.Abbr,
		"target_mb":     targetMB,
		"best":          configMap(res.Best[targetMB]),
		"vector":        res.Best[targetMB].Vector(),
		"predicted_sec": res.PredictedSec[targetMB],
		"cluster_hours": res.Overhead.CollectClusterHours,
	}
	// Register the tuned model so later search jobs (and warm starts)
	// reuse it without paying the collect again. A backend without the
	// Saver capability skips registration; the tuned configuration above
	// is still the job's result.
	if b, lookupErr := m.models.Backends().Lookup(spec.backend()); lookupErr == nil {
		if _, ok := b.(model.Saver); ok {
			name := spec.modelName(w)
			version, err := m.models.Save(name, res.Model, ModelMeta{
				Backend:     spec.backend(),
				Workload:    w.Abbr,
				Seed:        spec.seed(),
				NTrain:      set.Len(),
				Job:         id,
				CreatedUnix: time.Now().Unix(),
			})
			if err != nil {
				return nil, err
			}
			m.obs.Counter("serve.models.saved").Inc()
			out["model"] = name
			out["model_version"] = version
			out["backend"] = spec.backend()
		}
	}
	return out, nil
}

// onlineOptions resolves the spec's online-loop budgets: core defaults,
// shrunk by Quick, overridden by explicit values — the same precedence
// the offline budgets use.
func (spec JobSpec) onlineOptions() core.OnlineOptions {
	var oo core.OnlineOptions
	if spec.Quick {
		oo = core.OnlineOptions{ScreenSamples: 60, TopK: 8, Iterations: 2, IterBatch: 8, ExtraTrees: 60}
	}
	if spec.ScreenSamples > 0 {
		oo.ScreenSamples = spec.ScreenSamples
	}
	if spec.TopK > 0 {
		oo.TopK = spec.TopK
	}
	if spec.Iterations > 0 {
		oo.Iterations = spec.Iterations
	}
	if spec.IterBatch > 0 {
		oo.IterBatch = spec.IterBatch
	}
	if spec.ExtraTrees > 0 {
		oo.ExtraTrees = spec.ExtraTrees
	}
	return oo
}

// runTuneOnline executes the online importance-screened loop with the
// sparksim-backed OOM guard, journaling every measured run: the
// trajectory is a pure function of the spec, so a restarted daemon
// replays journaled rows and lands on the identical final configuration.
func (m *Manager) runTuneOnline(ctx context.Context, id int64, spec JobSpec) (any, error) {
	w, err := workloads.ByAbbr(strings.ToUpper(spec.Workload))
	if err != nil {
		return nil, err
	}
	t := m.tunerFor(w, spec)
	oo := spec.onlineOptions()
	oo.Guard = core.SimOOMGuard(cluster.Standard(), &w.Program, 0)
	targetMB := spec.targetMB(w)
	lo, hi := trainingRange(w)
	sizes := t.TrainingSizesMB(lo, hi)

	// The journal header binds the file to the whole online trajectory:
	// any budget change makes a different trajectory, so encode the
	// online knobs (and target) into the meta string alongside the
	// collect-style identity.
	onlineID := fmt.Sprintf("online:%s:%d:%d:%d:%d:%s", w.Abbr,
		oo.ScreenSamples, oo.TopK, oo.Iterations, oo.IterBatch,
		strconv.FormatFloat(targetMB, 'g', -1, 64))
	jp := filepath.Join(m.dataDir, "journals", fmt.Sprintf("job-%d.journal", id))
	jl, err := OpenJournal(jp, MetaHash(onlineID, t.Opt.Seed, oo.ScreenSamples+oo.Iterations*oo.IterBatch+1, sizes))
	if err != nil {
		return nil, err
	}
	defer jl.Close()
	if n := jl.Rows(); n > 0 {
		m.obs.Counter("serve.online.resumed.rows").Add(int64(n))
	}
	var appendErr error
	var appendMu sync.Mutex
	res, err := t.TuneOnline(ctx, lo, hi, targetMB, oo, core.OnlineHooks{
		Known: jl.Known,
		OnBatch: func(rows []core.RowTime) {
			if err := jl.Append(rows); err != nil {
				appendMu.Lock()
				if appendErr == nil {
					appendErr = err
				}
				appendMu.Unlock()
			}
			m.obs.Counter("serve.online.checkpoints").Inc()
			if m.testBatchHook != nil {
				m.testBatchHook(jl.Rows())
			}
		},
		Progress: func(phase string, done, total int) {
			m.setProgress(id, Progress{Phase: phase, Done: done, Total: total})
		},
	})
	if err != nil {
		return nil, err
	}
	if appendErr != nil {
		return nil, fmt.Errorf("serve: journal append: %w", appendErr)
	}

	iters := make([]map[string]any, len(res.Iterations))
	for i, it := range res.Iterations {
		iters[i] = map[string]any{
			"runs":              it.Runs,
			"warm_started":      it.WarmStarted,
			"predicted_sec":     it.PredictedSec,
			"best_measured_sec": it.BestMeasuredSec,
			"guard_rejected":    it.GuardRejected,
		}
	}
	out := map[string]any{
		"workload":         w.Abbr,
		"target_mb":        targetMB,
		"best":             configMap(res.Best),
		"vector":           res.Best.Vector(),
		"measured_sec":     res.MeasuredSec,
		"predicted_sec":    res.PredictedSec,
		"screened":         res.Screened,
		"importance":       res.Importance,
		"total_runs":       res.TotalRuns,
		"guard_rejections": res.GuardRejections,
		"iterations":       iters,
		"cluster_hours":    res.Overhead.CollectClusterHours,
	}
	// Register the final refit model like tune does, so search jobs and
	// warm starts can pick up where the online loop left off.
	if b, lookupErr := m.models.Backends().Lookup(spec.backend()); lookupErr == nil {
		if _, ok := b.(model.Saver); ok {
			name := spec.modelName(w)
			version, err := m.models.Save(name, res.Model, ModelMeta{
				Backend:     spec.backend(),
				Workload:    w.Abbr,
				Seed:        spec.seed(),
				NTrain:      res.Set.Len(),
				Job:         id,
				CreatedUnix: time.Now().Unix(),
			})
			if err != nil {
				return nil, err
			}
			m.obs.Counter("serve.models.saved").Inc()
			out["model"] = name
			out["model_version"] = version
			out["backend"] = spec.backend()
		}
	}
	return out, nil
}

// configMap renders a configuration as {param: value} for JSON clients.
func configMap(cfg conf.Config) map[string]float64 {
	space := cfg.Space()
	out := make(map[string]float64, space.Len())
	for i, name := range space.Names() {
		out[name] = cfg.At(i)
	}
	return out
}
