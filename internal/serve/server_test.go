package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/hm"
	"repro/internal/obs"
	"repro/internal/sparksim"
	"repro/internal/workloads"
)

// newTestServer starts a daemon over a temp data dir and an httptest
// front end.
func newTestServer(t *testing.T, reg *obs.Registry) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewServer(t.TempDir(), 2, reg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decoding response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// submitAndWait submits a job over HTTP and polls until it reaches a
// terminal state.
func submitAndWait(t *testing.T, base string, spec JobSpec, timeout time.Duration) Job {
	t.Helper()
	var sub struct {
		ID int64 `json:"id"`
	}
	if code := postJSON(t, base+"/jobs", spec, &sub); code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var j Job
		if code := getJSON(t, fmt.Sprintf("%s/jobs/%d", base, sub.ID), &j); code != http.StatusOK {
			t.Fatalf("get job returned %d", code)
		}
		switch j.State {
		case StateDone, StateFailed, StateCancelled:
			return j
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %d did not finish in %v", sub.ID, timeout)
	return Job{}
}

// tuneBudget is the small-but-real budget the equality tests run at.
var tuneBudget = JobSpec{
	Type: JobTune, Workload: "TS", Size: 30, Seed: 5,
	NTrain: 150, HMTrees: 80, GAPop: 16, GAGenerations: 8,
}

// cliTuner reproduces cmd/dac's newTuner wiring for the test budget —
// the reference the HTTP path must match exactly.
func cliTuner(t *testing.T) (*core.Tuner, *workloads.Workload) {
	t.Helper()
	w, err := workloads.ByAbbr("TS")
	if err != nil {
		t.Fatal(err)
	}
	sim := sparksim.New(cluster.Standard(), tuneBudget.Seed+7)
	return &core.Tuner{
		Space: conf.StandardSpace(),
		Exec:  core.NewSimExecutor(sim, &w.Program),
		Opt: core.Options{
			NTrain: tuneBudget.NTrain,
			HM:     hm.Options{Trees: tuneBudget.HMTrees, LearningRate: 0.05, TreeComplexity: 5},
			GA:     ga.Options{PopSize: tuneBudget.GAPop, Generations: tuneBudget.GAGenerations},
			Seed:   tuneBudget.Seed,
		},
	}, w
}

type tuneResult struct {
	Workload     string             `json:"workload"`
	TargetMB     float64            `json:"target_mb"`
	Best         map[string]float64 `json:"best"`
	Vector       []float64          `json:"vector"`
	PredictedSec float64            `json:"predicted_sec"`
	Model        string             `json:"model"`
	ModelVersion int                `json:"model_version"`
}

// TestHTTPTuneMatchesCLI is the service's acceptance criterion: a full
// tune over HTTP returns the same best configuration and prediction as
// the equivalent CLI invocation with the same seed — the daemon adds
// durability and an API, not different math.
func TestHTTPTuneMatchesCLI(t *testing.T) {
	reg := obs.NewRegistry()
	srv, ts := newTestServer(t, reg)

	j := submitAndWait(t, ts.URL, tuneBudget, 2*time.Minute)
	if j.State != StateDone {
		t.Fatalf("tune job finished %s: %s", j.State, j.Error)
	}
	var got tuneResult
	if err := json.Unmarshal(j.Result, &got); err != nil {
		t.Fatal(err)
	}

	tuner, w := cliTuner(t)
	lo, hi := trainingRange(w)
	targetMB := w.InputMB(tuneBudget.Size)
	ref, err := tuner.Tune(lo, hi, []float64{targetMB})
	if err != nil {
		t.Fatal(err)
	}
	refVec := ref.Best[targetMB].Vector()
	if len(got.Vector) != len(refVec) {
		t.Fatalf("vector length %d, want %d", len(got.Vector), len(refVec))
	}
	for i := range refVec {
		if got.Vector[i] != refVec[i] {
			t.Fatalf("param %d: HTTP tune chose %v, CLI chose %v", i, got.Vector[i], refVec[i])
		}
	}
	if got.PredictedSec != ref.PredictedSec[targetMB] {
		t.Fatalf("predicted %v over HTTP, %v via CLI path", got.PredictedSec, ref.PredictedSec[targetMB])
	}
	if got.Model != "ts" || got.ModelVersion != 1 {
		t.Fatalf("tune registered %s@v%d, want ts@v1", got.Model, got.ModelVersion)
	}

	// The registered model must answer /predict with the model's own
	// value for the tuned vector.
	var pred struct {
		PredictedSec float64 `json:"predicted_sec"`
		Version      int     `json:"version"`
	}
	code := postJSON(t, ts.URL+"/models/ts/predict",
		map[string]any{"vector": got.Vector, "dsize_mb": got.TargetMB}, &pred)
	if code != http.StatusOK {
		t.Fatalf("predict returned %d", code)
	}
	if pred.PredictedSec != got.PredictedSec {
		t.Fatalf("/predict says %v, tune said %v — same model, same input", pred.PredictedSec, got.PredictedSec)
	}

	// A follow-up search job against the registered model matches the
	// equivalent `dac search` (same model, same seed, unseeded GA
	// population). A second identical submission doesn't even re-run: it
	// dedups onto the first job and hands back its result.
	searchSpec := JobSpec{Type: JobSearch, Workload: "TS", Size: 30, Seed: 5,
		GAPop: tuneBudget.GAPop, GAGenerations: tuneBudget.GAGenerations, Model: "ts"}
	var s1, s2 struct {
		Vector       []float64 `json:"vector"`
		PredictedSec float64   `json:"predicted_sec"`
		Evaluations  int       `json:"ga_evaluations"`
		CacheHits    int       `json:"ga_cache_hits"`
	}
	js1 := submitAndWait(t, ts.URL, searchSpec, time.Minute)
	if js1.State != StateDone {
		t.Fatalf("search 1 finished %s: %s", js1.State, js1.Error)
	}
	json.Unmarshal(js1.Result, &s1)
	js2 := submitAndWait(t, ts.URL, searchSpec, time.Minute)
	if js2.State != StateDone {
		t.Fatalf("search 2 finished %s: %s", js2.State, js2.Error)
	}
	json.Unmarshal(js2.Result, &s2)
	if js2.ID != js1.ID {
		t.Fatalf("identical search respawned as job %d; want dedup onto job %d", js2.ID, js1.ID)
	}
	if js2.Deduped == 0 {
		t.Fatal("deduped submission not counted on the surviving job")
	}
	if reg.Counter("serve.jobs.deduped").Value() == 0 {
		t.Fatal("serve.jobs.deduped counter not bumped")
	}

	// A search that extends the GA budget is a different spec (no dedup)
	// but replays the generations it shares with the first run from the
	// (model version, size) genome cache.
	extSpec := searchSpec
	extSpec.GAGenerations = tuneBudget.GAGenerations + 2
	js3 := submitAndWait(t, ts.URL, extSpec, time.Minute)
	if js3.State != StateDone {
		t.Fatalf("extended search finished %s: %s", js3.State, js3.Error)
	}
	if js3.ID == js1.ID {
		t.Fatal("a different spec must not dedup onto the original search")
	}
	var s3 struct {
		CacheHits int `json:"ga_cache_hits"`
	}
	json.Unmarshal(js3.Result, &s3)
	if s3.CacheHits == 0 {
		t.Fatal("extended search shared no genome fitness with the first run")
	}
	srvModel, _, err := srv.Manager().Models().Load("ts", 1)
	if err != nil {
		t.Fatal(err)
	}
	searchTuner, _ := cliTuner(t)
	refCfg, refPred, _, _, err := searchTuner.Search(srvModel, targetMB, nil)
	if err != nil {
		t.Fatal(err)
	}
	searchRef := refCfg.Vector()
	for i := range searchRef {
		if s1.Vector[i] != searchRef[i] || s2.Vector[i] != searchRef[i] {
			t.Fatalf("param %d: search jobs diverged from the equivalent CLI search", i)
		}
	}
	if s1.PredictedSec != refPred || s2.PredictedSec != refPred {
		t.Fatalf("search predictions %v/%v, CLI search %v", s1.PredictedSec, s2.PredictedSec, refPred)
	}
	// /metrics must expose the pipeline counters the run produced.
	var snap map[string]any
	if code := getJSON(t, ts.URL+"/metrics", &snap); code != http.StatusOK {
		t.Fatalf("metrics returned %d", code)
	}
	if reg.Counter("serve.jobs.done").Value() < 3 {
		t.Fatalf("serve.jobs.done = %d, want >= 3", reg.Counter("serve.jobs.done").Value())
	}
	if reg.Counter("serve.collect.checkpoints").Value() == 0 {
		t.Fatal("collect ran without journaling a single checkpoint")
	}
}

// TestHTTPCollectTrainWarmStart drives the decomposed pipeline over
// HTTP: collect → train (registers v1) → warm-start train (registers v2
// continuing v1 via hm.Resume).
func TestHTTPCollectTrainWarmStart(t *testing.T) {
	_, ts := newTestServer(t, nil)

	cj := submitAndWait(t, ts.URL, JobSpec{Type: JobCollect, Workload: "WC", NTrain: 150, Seed: 2}, time.Minute)
	if cj.State != StateDone {
		t.Fatalf("collect finished %s: %s", cj.State, cj.Error)
	}

	tj := submitAndWait(t, ts.URL, JobSpec{Type: JobTrain, FromJob: cj.ID, Seed: 2, HMTrees: 60, Model: "wc"}, time.Minute)
	if tj.State != StateDone {
		t.Fatalf("train finished %s: %s", tj.State, tj.Error)
	}
	var tr struct {
		Model   string  `json:"model"`
		Version int     `json:"version"`
		ValErr  float64 `json:"val_err"`
		Trees   int     `json:"trees"`
	}
	json.Unmarshal(tj.Result, &tr)
	if tr.Model != "wc" || tr.Version != 1 || tr.Trees == 0 {
		t.Fatalf("train result %+v", tr)
	}

	wj := submitAndWait(t, ts.URL, JobSpec{Type: JobTrain, FromJob: cj.ID, Seed: 2, HMTrees: 60,
		Model: "wc", WarmFrom: "wc", ExtraTrees: 20}, time.Minute)
	if wj.State != StateDone {
		t.Fatalf("warm train finished %s: %s", wj.State, wj.Error)
	}
	var wr struct {
		Version int `json:"version"`
		Trees   int `json:"trees"`
	}
	json.Unmarshal(wj.Result, &wr)
	if wr.Version != 2 {
		t.Fatalf("warm-started model registered as v%d, want v2", wr.Version)
	}
	if wr.Trees <= tr.Trees {
		t.Fatalf("warm start left %d trees, base had %d — Resume added nothing", wr.Trees, tr.Trees)
	}

	var model struct {
		Versions []ModelMeta `json:"versions"`
	}
	if code := getJSON(t, ts.URL+"/models/wc", &model); code != http.StatusOK {
		t.Fatalf("get model returned %d", code)
	}
	if len(model.Versions) != 2 || model.Versions[1].WarmFrom != "wc@v1" {
		t.Fatalf("model versions %+v", model.Versions)
	}
	var list struct {
		Models []ModelMeta `json:"models"`
	}
	getJSON(t, ts.URL+"/models", &list)
	if len(list.Models) != 1 || list.Models[0].Version != 2 {
		t.Fatalf("model list %+v", list.Models)
	}
}

// TestHTTPCancel pins the cancel path: a running collect flips to
// cancelled at its next checkpoint, keeping its journal for a later
// resubmission.
func TestHTTPCancel(t *testing.T) {
	s, ts := newTestServer(t, nil)
	hold := make(chan struct{})
	reached := make(chan struct{})
	var closed bool
	s.Manager().testBatchHook = func(rows int) {
		if rows >= 8 {
			if !closed {
				closed = true
				close(reached)
			}
			<-hold
		}
	}
	var sub struct {
		ID int64 `json:"id"`
	}
	spec := JobSpec{Type: JobCollect, Workload: "TS", NTrain: 400, Seed: 9, Parallelism: 1}
	if code := postJSON(t, ts.URL+"/jobs", spec, &sub); code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	select {
	case <-reached:
	case <-time.After(10 * time.Second):
		t.Fatal("collect never started journaling")
	}
	if code := postJSON(t, fmt.Sprintf("%s/jobs/%d/cancel", ts.URL, sub.ID), nil, nil); code != http.StatusOK {
		t.Fatalf("cancel returned %d", code)
	}
	close(hold)
	waitFor(t, 10*time.Second, func() bool {
		var j Job
		getJSON(t, fmt.Sprintf("%s/jobs/%d", ts.URL, sub.ID), &j)
		return j.State == StateCancelled
	})
	// Cancelling a finished job is a conflict, not a crash.
	if code := postJSON(t, fmt.Sprintf("%s/jobs/%d/cancel", ts.URL, sub.ID), nil, nil); code != http.StatusConflict {
		t.Fatalf("second cancel returned %d, want %d", code, http.StatusConflict)
	}
}

// TestHTTPValidation covers the API's error envelope.
func TestHTTPValidation(t *testing.T) {
	_, ts := newTestServer(t, nil)

	var health struct {
		OK bool `json:"ok"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || !health.OK {
		t.Fatalf("healthz: code %d ok %v", code, health.OK)
	}
	if code := getJSON(t, ts.URL+"/metrics", &map[string]any{}); code != http.StatusOK {
		t.Fatalf("metrics returned %d", code)
	}

	for _, spec := range []JobSpec{
		{Type: "resolve", Workload: "TS"},                  // unknown type
		{Type: JobTune, Workload: "XX"},                    // unknown workload
		{Type: JobTrain, Workload: "TS"},                   // train without from_job
		{Type: JobSearch},                                  // search without model/workload
		{Type: JobTune, Workload: "TS", Model: "Bad name"}, // invalid registry name
	} {
		if code := postJSON(t, ts.URL+"/jobs", spec, nil); code != http.StatusBadRequest {
			t.Fatalf("spec %+v accepted with code %d", spec, code)
		}
	}
	if code := getJSON(t, ts.URL+"/jobs/999", nil); code != http.StatusNotFound {
		t.Fatalf("missing job returned %d", code)
	}
	if code := getJSON(t, ts.URL+"/models/none", nil); code != http.StatusNotFound {
		t.Fatalf("missing model returned %d", code)
	}
	if code := postJSON(t, ts.URL+"/models/none/predict", map[string]any{"dsize_mb": 10}, nil); code != http.StatusNotFound {
		t.Fatalf("predict on missing model returned %d", code)
	}
	var jobs struct {
		Jobs []Job `json:"jobs"`
	}
	if code := getJSON(t, ts.URL+"/jobs", &jobs); code != http.StatusOK {
		t.Fatalf("list jobs returned %d", code)
	}
}
