package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
)

// fleetSpec is the sweep the fleet acceptance tests run: small enough to
// finish fast, large enough for several chunks at ChunkRows 8.
var fleetSpec = JobSpec{Type: JobCollect, Workload: "TS", NTrain: 40, Seed: 9}

// newFleetServer starts a coordinator-enabled daemon over a temp data
// dir with a short lease TTL, so chaos tests see expiry quickly.
func newFleetServer(t *testing.T, reg *obs.Registry, opts ServerOptions) (*Server, *httptest.Server) {
	t.Helper()
	opts.Obs = reg
	s, err := NewServerOpts(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// startFleetWorker runs a worker agent against base until its context
// cancels. newRunner nil takes the production SimRunner.
func startFleetWorker(t *testing.T, ctx context.Context, base, name string,
	newRunner func(fleet.SweepSpec, int) (fleet.RunnerFunc, error)) chan error {
	t.Helper()
	w := fleet.NewWorker(fleet.WorkerOptions{
		Coordinator: base,
		Name:        name,
		Parallelism: 2,
		NewRunner:   newRunner,
	})
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	return done
}

func waitLive(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.Fleet().LiveWorkers() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d workers registered in time", s.Fleet().LiveWorkers(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFleetCollectByteIdenticalAfterWorkerKill is the fleet's acceptance
// criterion (DESIGN.md §15): a collect sweep sharded across workers —
// one of which dies mid-chunk, forcing a lease expiry and requeue —
// produces a CSV byte-identical to the single-process reference, at
// GOMAXPROCS 1 and 4.
func TestFleetCollectByteIdenticalAfterWorkerKill(t *testing.T) {
	// Reference: the plain in-process collector at the same spec, the
	// same wiring the daemon's local path uses.
	tuner, _, sizes := testTuner(t, fleetSpec.NTrain, fleetSpec.Seed, 2)
	want := collectCSV(t, tuner, sizes)

	for _, procs := range []int{1, 4} {
		t.Run(fmt.Sprintf("gomaxprocs-%d", procs), func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			reg := obs.NewRegistry()
			s, ts := newFleetServer(t, reg, ServerOptions{
				Workers: 1,
				Fleet:   FleetOptions{Enabled: true, LeaseTTL: 300 * time.Millisecond, ChunkRows: 8},
			})

			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()

			// The victim worker "SIGKILLs" mid-chunk: its runner signals
			// that it holds a lease, then blocks until the process is torn
			// down — it never posts results and never heartbeats again,
			// which is exactly what the coordinator sees when a worker is
			// kill -9'd.
			victimCtx, killVictim := context.WithCancel(ctx)
			defer killVictim()
			leased := make(chan struct{}, 1)
			victimDone := startFleetWorker(t, victimCtx, ts.URL, "victim",
				func(spec fleet.SweepSpec, parallelism int) (fleet.RunnerFunc, error) {
					return func(rctx context.Context, indices []int) ([]fleet.ResultRow, error) {
						select {
						case leased <- struct{}{}:
						default:
						}
						<-rctx.Done()
						return nil, rctx.Err()
					}, nil
				})
			waitLive(t, s, 1)

			job := make(chan Job, 1)
			go func() { job <- submitAndWait(t, ts.URL, fleetSpec, 60*time.Second) }()

			// Wait until the victim holds a leased chunk, then kill it and
			// bring up the survivor that must inherit the requeued chunk.
			select {
			case <-leased:
			case <-ctx.Done():
				t.Fatal("victim never leased a chunk")
			}
			killVictim()
			<-victimDone
			survivorDone := startFleetWorker(t, ctx, ts.URL, "survivor", nil)

			j := <-job
			if j.State != StateDone {
				t.Fatalf("fleet collect job ended %s: %v", j.State, j.Error)
			}
			cancel()
			<-survivorDone

			if got := reg.Counter("fleet.leases.requeued").Value(); got < 1 {
				t.Fatalf("fleet.leases.requeued = %d, want >= 1 (victim's chunk must requeue)", got)
			}
			if got := reg.Counter("fleet.rows.merged").Value(); got != int64(fleetSpec.NTrain) {
				t.Fatalf("fleet.rows.merged = %d, want %d", got, fleetSpec.NTrain)
			}

			got, err := os.ReadFile(s.Manager().collectCSVPath(j.ID))
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Fatalf("fleet CSV differs from single-process reference (%d vs %d bytes)", len(got), len(want))
			}
		})
	}
}

// A collect submitted while no workers are live runs on the local pool —
// the coordinator never sees a sweep — and still matches the reference.
func TestFleetFallsBackToLocalPoolWithoutWorkers(t *testing.T) {
	tuner, _, sizes := testTuner(t, fleetSpec.NTrain, fleetSpec.Seed, 2)
	want := collectCSV(t, tuner, sizes)

	reg := obs.NewRegistry()
	s, ts := newFleetServer(t, reg, ServerOptions{
		Workers: 1,
		Fleet:   FleetOptions{Enabled: true, LeaseTTL: 300 * time.Millisecond, ChunkRows: 8},
	})
	j := submitAndWait(t, ts.URL, fleetSpec, 60*time.Second)
	if j.State != StateDone {
		t.Fatalf("job ended %s: %v", j.State, j.Error)
	}
	if got := reg.Counter("serve.collect.fleet.sweeps").Value(); got != 0 {
		t.Fatalf("sweep went through the fleet with no workers (counter=%d)", got)
	}
	got, err := os.ReadFile(s.Manager().collectCSVPath(j.ID))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("local-fallback CSV differs from reference")
	}
}

// The shared secret gates every mutating endpoint; reads stay open.
func TestAuthTokenGatesMutatingEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newFleetServer(t, reg, ServerOptions{
		Workers:   1,
		Fleet:     FleetOptions{Enabled: true},
		AuthToken: "s3cret",
	})

	// Mutating endpoints refuse without (or with the wrong) token.
	for _, path := range []string{"/jobs", "/workers/register", "/workers/x/heartbeat", "/workers/x/lease", "/workers/x/results", "/jobs/1/cancel"} {
		if code := postJSON(t, ts.URL+path, map[string]any{}, nil); code != http.StatusUnauthorized {
			t.Fatalf("POST %s without token = %d, want 401", path, code)
		}
	}
	req, _ := http.NewRequest("POST", ts.URL+"/workers/register", nil)
	req.Header.Set("Authorization", "Bearer wrong")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong token = %d, want 401", resp.StatusCode)
	}
	if got := reg.Counter("serve.auth.denied").Value(); got < 7 {
		t.Fatalf("serve.auth.denied = %d, want >= 7", got)
	}

	// Reads stay open.
	if code := getJSON(t, ts.URL+"/jobs", nil); code != http.StatusOK {
		t.Fatalf("GET /jobs = %d, want 200 (reads are not gated)", code)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("GET /healthz = %d, want 200", code)
	}

	// The right token works end to end — including a worker agent
	// carrying it through the whole protocol.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	w := fleet.NewWorker(fleet.WorkerOptions{Coordinator: ts.URL, Name: "authed", Token: "s3cret", Parallelism: 1})
	workerDone := make(chan error, 1)
	go func() { workerDone <- w.Run(ctx) }()

	var sub struct {
		ID int64 `json:"id"`
	}
	body, err := json.Marshal(JobSpec{Type: JobCollect, Workload: "TS", NTrain: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	req2, _ := http.NewRequest("POST", ts.URL+"/jobs", bytes.NewReader(body))
	req2.Header.Set("Content-Type", "application/json")
	req2.Header.Set("Authorization", "Bearer s3cret")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp2.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("authed submit = %d, want 202", resp2.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var j Job
		getJSON(t, fmt.Sprintf("%s/jobs/%d", ts.URL, sub.ID), &j)
		if j.State == StateDone {
			break
		}
		if j.State == StateFailed || j.State == StateCancelled || time.Now().After(deadline) {
			t.Fatalf("authed job state %s: %v", j.State, j.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	if err := <-workerDone; err != nil {
		t.Fatalf("authed worker: %v", err)
	}
}
