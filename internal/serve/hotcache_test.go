package serve

import (
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/hm"
	"repro/internal/model"
	"repro/internal/obs"
)

// hotDim is the feature dimensionality the cache unit tests train at
// (arbitrary: the cache is agnostic to it).
const hotDim = 3

// saveTinyModel trains a small hm model whose predictions scale with
// scale — so different registered versions are distinguishable — and
// registers it as the next version of name.
func saveTinyModel(t *testing.T, reg *ModelRegistry, name string, scale float64, seed int64) int {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ds := model.NewDataset(nil)
	for i := 0; i < 60; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 5, rng.Float64() * 100}
		ds.Add(x, scale*(1+x[0]+0.5*x[1])*(1+0.01*rng.NormFloat64()))
	}
	m, err := hm.Train(ds, hm.Options{Trees: 8, LearningRate: 0.3, TreeComplexity: 3, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	v, err := reg.Save(name, m, ModelMeta{Backend: "hm"})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// loadPredict is the cold reference: a fresh registry decode plus one
// Predict — what every hot-path answer must match bit for bit.
func loadPredict(t *testing.T, reg *ModelRegistry, name string, version int, x []float64) float64 {
	t.Helper()
	m, _, err := reg.Load(name, version)
	if err != nil {
		t.Fatal(err)
	}
	return m.Predict(x)
}

// TestHotCacheEvictionLRU pins the LRU bound: the latest version is
// always pinned, old versions beyond KeepOldVersions evict least
// recently used first, and an evicted version re-faults correctly —
// with the serve.modelcache.{hits,misses,evictions} counters asserted
// at every step.
func TestHotCacheEvictionLRU(t *testing.T) {
	reg, err := NewModelRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= 5; v++ {
		saveTinyModel(t, reg, "m", float64(v), int64(100+v))
	}
	r := obs.NewRegistry()
	c := NewModelCache(reg, ServingOptions{KeepOldVersions: 2, CoalesceWindow: -1}, r)
	hits := r.Counter("serve.modelcache.hits")
	misses := r.Counter("serve.modelcache.misses")
	evictions := r.Counter("serve.modelcache.evictions")
	x := []float64{3, 2, 50}

	get := func(version int) *hotModel {
		t.Helper()
		h, err := c.Entry("m", version)
		if err != nil {
			t.Fatalf("Entry(m, %d): %v", version, err)
		}
		return h
	}
	check := func(step string, wantHits, wantMisses, wantEvictions int64) {
		t.Helper()
		if hits.Value() != wantHits || misses.Value() != wantMisses || evictions.Value() != wantEvictions {
			t.Fatalf("%s: hits/misses/evictions = %d/%d/%d, want %d/%d/%d", step,
				hits.Value(), misses.Value(), evictions.Value(), wantHits, wantMisses, wantEvictions)
		}
	}

	if h := get(0); h.Meta().Version != 5 {
		t.Fatalf("version 0 resolved v%d, want v5", h.Meta().Version)
	}
	check("fault latest", 0, 1, 0)
	get(5) // the latest is pinned under its own version too
	check("latest by version", 1, 1, 0)
	get(1)
	get(2)
	check("two old versions fit", 1, 3, 0)
	get(3) // third old version: v1 is the LRU
	check("evict v1", 1, 4, 1)
	get(2) // refresh v2's recency
	check("v2 still pinned", 2, 4, 1)
	get(4) // v3 is now LRU
	check("evict v3", 2, 5, 2)
	if h := get(3); h.Meta().Version != 3 { // re-fault evicted v3; v2 is LRU
		t.Fatalf("re-fault resolved v%d, want v3", h.Meta().Version)
	}
	check("re-fault v3, evict v2", 2, 6, 3)
	get(0)
	check("latest never evicted", 3, 6, 3)
	if got := c.Pinned(); got != 3 { // v5 (latest) + v4, v3
		t.Fatalf("Pinned() = %d, want 3", got)
	}

	// Every pinned or re-faulted version predicts exactly what a fresh
	// disk decode predicts.
	for _, v := range []int{1, 3, 5} {
		if got, want := get(v).Predict(x), loadPredict(t, reg, "m", v, x); got != want {
			t.Fatalf("v%d: hot path predicts %v, fresh load predicts %v", v, got, want)
		}
	}
}

// TestHotCacheRefreshSwap pins the registration hook: after Save fires
// SetOnSave→Refresh, version-0 reads resolve the new version with zero
// misses (the swap pre-pins it), the previous version stays reachable
// explicitly, and the two versions really are different models.
func TestHotCacheRefreshSwap(t *testing.T) {
	reg, err := NewModelRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := obs.NewRegistry()
	c := NewModelCache(reg, ServingOptions{CoalesceWindow: -1}, r)
	reg.SetOnSave(c.Refresh)
	x := []float64{3, 2, 50}

	saveTinyModel(t, reg, "m", 1, 201)
	h1, err := c.Entry("m", 0)
	if err != nil {
		t.Fatal(err)
	}
	if h1.Meta().Version != 1 {
		t.Fatalf("resolved v%d, want v1", h1.Meta().Version)
	}
	if r.Counter("serve.modelcache.misses").Value() != 0 {
		t.Fatal("refresh hook should have pre-pinned v1: first read must not fault")
	}

	saveTinyModel(t, reg, "m", 3, 202)
	h2, err := c.Entry("m", 0)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Meta().Version != 2 {
		t.Fatalf("after retrain, version 0 resolved v%d, want v2", h2.Meta().Version)
	}
	if r.Counter("serve.modelcache.misses").Value() != 0 {
		t.Fatal("swapped-in version must not fault")
	}
	old, err := c.Entry("m", 1)
	if err != nil {
		t.Fatalf("previous version no longer reachable: %v", err)
	}
	p1, p2 := old.Predict(x), h2.Predict(x)
	if p1 == p2 {
		t.Fatalf("v1 and v2 predict identically (%v): swap did not change the model", p1)
	}
	if want := loadPredict(t, reg, "m", 2, x); p2 != want {
		t.Fatalf("swapped model predicts %v, fresh load %v", p2, want)
	}
}

// TestCoalescerBatchesConcurrentPredicts drives one pinned model from
// many goroutines through a wide coalescing window and asserts (a) the
// requests really were gathered into shared PredictBatch calls, and
// (b) every answer is bit-identical to the per-row reference — batch
// composition is scheduling-dependent, results are not.
func TestCoalescerBatchesConcurrentPredicts(t *testing.T) {
	reg, err := NewModelRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	saveTinyModel(t, reg, "m", 2, 301)
	r := obs.NewRegistry()
	c := NewModelCache(reg, ServingOptions{CoalesceWindow: 2 * time.Millisecond, MaxBatch: 64}, r)
	h, err := c.Entry("m", 0)
	if err != nil {
		t.Fatal(err)
	}

	const n = 48
	rng := rand.New(rand.NewSource(7))
	rows := make([][]float64, n)
	want := make([]float64, n)
	for i := range rows {
		rows[i] = []float64{rng.Float64() * 10, rng.Float64() * 5, rng.Float64() * 100}
		want[i] = loadPredict(t, reg, "m", 1, rows[i])
	}

	got := make([]float64, n)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			got[i] = h.Predict(rows[i])
		}(i)
	}
	close(start)
	wg.Wait()

	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d: coalesced predict %v, reference %v", i, got[i], want[i])
		}
	}
	batches := r.Counter("serve.predict.batches").Value()
	if batches == 0 || batches >= n {
		t.Fatalf("%d predicts flushed as %d batches: no coalescing happened", n, batches)
	}
	if max := r.Histogram("serve.predict.batch_size", nil).Max(); max < 2 {
		t.Fatalf("largest coalesced batch held %.0f rows, want >= 2", max)
	}

	// The memo short-circuits repeats: same exact bits, same answer,
	// no second model walk.
	miss := r.Counter("serve.predict.memo.misses").Value()
	if again := h.Predict(rows[0]); again != want[0] {
		t.Fatalf("memoized repeat predicts %v, want %v", again, want[0])
	}
	if r.Counter("serve.predict.memo.misses").Value() != miss {
		t.Fatal("repeat of an identical vector missed the memo")
	}
	if r.Counter("serve.predict.memo.hits").Value() == 0 {
		t.Fatal("memo hit counter never moved")
	}
}

// TestWarmupPinsRegistryLatests is the S2 startup contract: opening a
// server over a data directory that already holds registered models
// pre-pins every model's latest version into the cache, so the first
// predict after a daemon restart never pays a cold registry decode.
// Asserted through the serve.modelcache.warmed counter and Pinned(),
// the same signals the serve-smoke CI job checks.
func TestWarmupPinsRegistryLatests(t *testing.T) {
	dataDir := t.TempDir()
	reg, err := NewModelRegistry(filepath.Join(dataDir, "models"))
	if err != nil {
		t.Fatal(err)
	}
	saveTinyModel(t, reg, "alpha", 1.0, 3)
	saveTinyModel(t, reg, "alpha", 2.0, 4) // latest of alpha is v2
	saveTinyModel(t, reg, "beta", 5.0, 5)

	r := obs.NewRegistry()
	s, err := NewServerOpts(dataDir, ServerOptions{Workers: 1, Obs: r})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if got := s.Cache().Pinned(); got != 2 {
		t.Fatalf("Pinned()=%d after startup over 2 models, want 2", got)
	}
	if got := r.Counter("serve.modelcache.warmed").Value(); got != 2 {
		t.Fatalf("serve.modelcache.warmed=%d, want 2", got)
	}
	// The warm entries are the registry latests, answering bit-identically
	// to a cold decode without faulting.
	misses := r.Counter("serve.modelcache.misses").Value()
	x := []float64{1.5, 2.5, 30}
	for name, version := range map[string]int{"alpha": 2, "beta": 1} {
		h, err := s.Cache().Entry(name, 0)
		if err != nil {
			t.Fatal(err)
		}
		if h.Meta().Version != version {
			t.Fatalf("%s: warmed version %d, want latest %d", name, h.Meta().Version, version)
		}
		if got, want := h.Predict(x), loadPredict(t, s.Cache().reg, name, version, x); got != want {
			t.Fatalf("%s: warmed predict %v, cold reference %v", name, got, want)
		}
	}
	if now := r.Counter("serve.modelcache.misses").Value(); now != misses {
		t.Fatalf("warm reads faulted: misses %d -> %d", misses, now)
	}
}
