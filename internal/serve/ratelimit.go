package serve

import (
	"sync"
	"time"
)

// tokenLimiter rate-limits mutating requests per bearer token with one
// token bucket per distinct Authorization value (the raw token as sent,
// before authentication — a flood of bad-token requests is throttled
// the same as a flood of good ones, so the limiter also shields the
// constant-time auth compare). Each bucket holds burst = max(rps, 1)
// request slots and refills at rps per second; a request finding an
// empty bucket is rejected (HTTP 429 at the caller).
type tokenLimiter struct {
	mu      sync.Mutex
	rps     float64
	burst   float64
	buckets map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// limiterMaxBuckets bounds the per-token map: past it, buckets idle for
// over a minute are swept on insert, so unauthenticated callers cycling
// random tokens can't grow the map without bound.
const limiterMaxBuckets = 4096

func newTokenLimiter(rps float64) *tokenLimiter {
	burst := rps
	if burst < 1 {
		burst = 1
	}
	return &tokenLimiter{rps: rps, burst: burst, buckets: make(map[string]*tokenBucket)}
}

// allow consumes one request slot from key's bucket at time now,
// reporting whether the request is within the rate.
func (l *tokenLimiter) allow(key string, now time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[key]
	if !ok {
		if len(l.buckets) >= limiterMaxBuckets {
			for k, old := range l.buckets {
				if now.Sub(old.last) > time.Minute {
					delete(l.buckets, k)
				}
			}
		}
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * l.rps
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}
