package serve

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/workloads"
)

// onlineSpec is the small-but-real budget the tune_online tests run at:
// 40 screening rows + 2×6 candidates + 1 confirmation = 53 runs.
func onlineSpec() JobSpec {
	return JobSpec{
		Type: JobTuneOnline, Workload: "TS", Size: 30, Seed: 3, Quick: true,
		ScreenSamples: 40, TopK: 6, Iterations: 2, IterBatch: 6, Parallelism: 2,
	}
}

type onlineJobResult struct {
	Workload        string             `json:"workload"`
	TargetMB        float64            `json:"target_mb"`
	Best            map[string]float64 `json:"best"`
	Vector          []float64          `json:"vector"`
	MeasuredSec     float64            `json:"measured_sec"`
	PredictedSec    float64            `json:"predicted_sec"`
	Screened        []string           `json:"screened"`
	TotalRuns       int                `json:"total_runs"`
	GuardRejections int                `json:"guard_rejections"`
	Iterations      []struct {
		Runs            int     `json:"runs"`
		WarmStarted     bool    `json:"warm_started"`
		PredictedSec    float64 `json:"predicted_sec"`
		BestMeasuredSec float64 `json:"best_measured_sec"`
	} `json:"iterations"`
	Model        string `json:"model"`
	ModelVersion int    `json:"model_version"`
}

func decodeOnlineResult(t *testing.T, j Job) onlineJobResult {
	t.Helper()
	var res onlineJobResult
	if err := json.Unmarshal(j.Result, &res); err != nil {
		t.Fatalf("decoding tune_online result: %v (%s)", err, j.Result)
	}
	return res
}

// TestTuneOnlineJob runs the online loop as a daemon job end to end:
// per-phase progress is visible while it runs, the result carries the
// screened parameters and per-iteration records, and the final model is
// registered for later search/warm-start jobs.
func TestTuneOnlineJob(t *testing.T) {
	dataDir := t.TempDir()
	m, err := NewManager(dataDir, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	var phaseMu sync.Mutex
	phases := map[string]bool{}
	var pending int64
	m.testBatchHook = func(int) {
		phaseMu.Lock()
		defer phaseMu.Unlock()
		if j, ok := m.Get(pending); ok {
			phases[j.Progress.Phase] = true
		}
	}
	spec := onlineSpec()
	id, _, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	phaseMu.Lock()
	pending = id
	phaseMu.Unlock()
	waitFor(t, 60*time.Second, func() bool {
		j, _ := m.Get(id)
		return j.State == StateDone || j.State == StateFailed || j.State == StateCancelled
	})
	j, _ := m.Get(id)
	if j.State != StateDone {
		t.Fatalf("tune_online job ended %q: %s", j.State, j.Error)
	}
	res := decodeOnlineResult(t, j)
	wantRuns := spec.ScreenSamples + spec.Iterations*spec.IterBatch + 1
	if res.TotalRuns != wantRuns {
		t.Errorf("total_runs = %d, want %d", res.TotalRuns, wantRuns)
	}
	if len(res.Screened) != spec.TopK {
		t.Errorf("screened %d parameters, want %d", len(res.Screened), spec.TopK)
	}
	if len(res.Iterations) != spec.Iterations {
		t.Fatalf("%d iteration records, want %d", len(res.Iterations), spec.Iterations)
	}
	for i, it := range res.Iterations {
		if it.Runs != spec.ScreenSamples+(i+1)*spec.IterBatch {
			t.Errorf("iteration %d cumulative runs = %d", i, it.Runs)
		}
		if i > 0 && !it.WarmStarted {
			t.Errorf("iteration %d was not warm-started", i)
		}
	}
	if res.MeasuredSec <= 0 || res.PredictedSec <= 0 || len(res.Vector) == 0 {
		t.Errorf("implausible result: %+v", res)
	}
	if !phases["iterate"] {
		t.Errorf("iteration progress never surfaced; phases seen: %v", phases)
	}
	if res.Model == "" || res.ModelVersion == 0 {
		t.Error("final online model was not registered")
	}
	if _, _, err := m.models.Load(res.Model, res.ModelVersion); err != nil {
		t.Errorf("registered model unloadable: %v", err)
	}
	// The journal holds the full trajectory.
	jl, err := OpenJournal(filepath.Join(dataDir, "journals", fmt.Sprintf("job-%d.journal", id)), onlineJournalMeta(t, m, spec, id))
	if err != nil {
		t.Fatal(err)
	}
	defer jl.Close()
	if jl.Rows() != wantRuns {
		t.Errorf("journal has %d rows, want %d", jl.Rows(), wantRuns)
	}
}

// onlineJournalMeta reproduces runTuneOnline's journal identity for a
// spec so tests can open the job's journal directly.
func onlineJournalMeta(t *testing.T, m *Manager, spec JobSpec, id int64) string {
	t.Helper()
	w := mustWorkload(t, spec.Workload)
	tuner := m.tunerFor(w, spec)
	oo := spec.onlineOptions()
	lo, hi := trainingRange(w)
	sizes := tuner.TrainingSizesMB(lo, hi)
	onlineID := fmt.Sprintf("online:%s:%d:%d:%d:%d:%s", w.Abbr,
		oo.ScreenSamples, oo.TopK, oo.Iterations, oo.IterBatch,
		strconv.FormatFloat(spec.targetMB(w), 'g', -1, 64))
	return MetaHash(onlineID, tuner.Opt.Seed, oo.ScreenSamples+oo.Iterations*oo.IterBatch+1, sizes)
}

// TestTuneOnlineJobRestartResume is the tentpole's durability criterion:
// a daemon killed mid-loop leaves the job running on disk with a partial
// journal; the restarted daemon adopts it, replays the journaled rows
// instead of re-running them, and lands on the identical final
// configuration an uninterrupted daemon produces.
func TestTuneOnlineJobRestartResume(t *testing.T) {
	spec := onlineSpec()
	totalRuns := spec.ScreenSamples + spec.Iterations*spec.IterBatch + 1

	// Reference: the same spec, uninterrupted, in its own daemon.
	refDir := t.TempDir()
	mRef, err := NewManager(refDir, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	refID, _, err := mRef.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 60*time.Second, func() bool {
		j, _ := mRef.Get(refID)
		return j.State == StateDone
	})
	refJob, _ := mRef.Get(refID)
	ref := decodeOnlineResult(t, refJob)
	mRef.Close()

	// Interrupted daemon: hold the loop once the first candidate batch
	// has journaled (40 screening rows + 6 candidates), then shut down.
	dataDir := t.TempDir()
	m1, err := NewManager(dataDir, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	reached := make(chan struct{})
	var once sync.Once
	m1.testBatchHook = func(rows int) {
		if rows >= spec.ScreenSamples+spec.IterBatch {
			once.Do(func() { close(reached) })
			<-m1.rootCtx.Done()
		}
	}
	id, _, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-reached:
	case <-time.After(60 * time.Second):
		t.Fatal("online loop never reached the hold point")
	}
	m1.Close()

	onDisk := jobFileState(t, dataDir, id)
	if onDisk.State != StateRunning {
		t.Fatalf("job after shutdown is %q on disk, want %q for adoption", onDisk.State, StateRunning)
	}
	jl, err := OpenJournal(filepath.Join(dataDir, "journals", fmt.Sprintf("job-%d.journal", id)), onlineJournalMeta(t, m1, spec, id))
	if err != nil {
		t.Fatal(err)
	}
	progress := jl.Rows()
	jl.Close()
	if progress < spec.ScreenSamples+spec.IterBatch || progress >= totalRuns {
		t.Fatalf("journal has %d rows at restart; want a genuine partial trajectory", progress)
	}

	reg := obs.NewRegistry()
	m2, err := NewManager(dataDir, 2, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	waitFor(t, 60*time.Second, func() bool {
		j, ok := m2.Get(id)
		return ok && (j.State == StateDone || j.State == StateFailed)
	})
	j, _ := m2.Get(id)
	if j.State != StateDone {
		t.Fatalf("resumed tune_online ended %q: %s", j.State, j.Error)
	}
	got := decodeOnlineResult(t, j)
	if !reflect.DeepEqual(got.Vector, ref.Vector) {
		t.Errorf("resumed run chose a different configuration:\n%v\n%v", got.Vector, ref.Vector)
	}
	if got.MeasuredSec != ref.MeasuredSec || got.TotalRuns != ref.TotalRuns {
		t.Errorf("resumed result drifted: measured %v vs %v, runs %d vs %d",
			got.MeasuredSec, ref.MeasuredSec, got.TotalRuns, ref.TotalRuns)
	}
	if !reflect.DeepEqual(got.Screened, ref.Screened) {
		t.Errorf("resumed screening differs: %v vs %v", got.Screened, ref.Screened)
	}
	if n := reg.Counter("serve.online.resumed.rows").Value(); n != int64(progress) {
		t.Errorf("resumed-rows counter = %d, want %d journaled rows replayed", n, progress)
	}
}

func mustWorkload(t *testing.T, abbr string) *workloads.Workload {
	t.Helper()
	w, err := workloads.ByAbbr(strings.ToUpper(abbr))
	if err != nil {
		t.Fatal(err)
	}
	return w
}
