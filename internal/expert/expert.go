// Package expert encodes the manual tuning recommendations of the Spark
// and Cloudera tuning guides ([16, 43] in the paper) as a static
// configuration — the "expert approach" baseline of §5.6. The rules are
// reasonable but, as the paper observes, cannot adapt to individual
// programs or dataset sizes, which is why DAC beats them by 2.3×
// (geometric mean).
package expert

import (
	"repro/internal/cluster"
	"repro/internal/conf"
)

// Config derives the expert-tuned configuration for the given cluster,
// applying the published rules of thumb:
//
//   - ~5 cores per executor for full HDFS write throughput;
//   - divide node memory among the executors it hosts, leaving ~7% for
//     the OS and the YARN overhead;
//   - Kryo serialization with a generous buffer;
//   - 2–3 tasks per CPU core of parallelism;
//   - larger shuffle buffers than the defaults;
//   - compression left on, consolidation on for many-file shuffles.
func Config(space *conf.Space, cl cluster.Cluster) conf.Config {
	c := space.Default()

	// Executor sizing: 5 cores/executor; node memory split across the
	// executors per node, capped by the parameter range.
	const coresPerExec = 5
	execPerNode := cl.CoresPerNode / coresPerExec
	if execPerNode < 1 {
		execPerNode = 1
	}
	memPerExec := cl.MemoryPerNodeMB * 0.93 / float64(execPerNode)
	// Leave room for the off-heap overhead the guides warn about.
	heap := memPerExec / 1.10
	c.Set(conf.ExecutorCores, coresPerExec)
	c.Set(conf.ExecutorMemory, heap) // Set clamps to the legal range
	c.Set(conf.DriverCores, 4)
	c.Set(conf.DriverMemory, 4096)

	// Serialization: the guides' first recommendation.
	c.Set(conf.Serializer, conf.SerializerKryo)
	c.Set(conf.KryoserializerBufferMax, 64)
	c.SetBool(conf.KryoReferenceTracking, false)

	// Parallelism: 2-3 tasks per core (clamped to Table 2's range).
	c.Set(conf.DefaultParallelism, float64(2*cl.TotalCores()))

	// Shuffle: bigger buffers, consolidated files.
	c.Set(conf.ShuffleFileBuffer, 64)
	c.Set(conf.ReducerMaxSizeInFlight, 96)
	c.SetBool(conf.ShuffleConsolidateFiles, true)

	// Memory management: keep the unified-memory defaults, as the guide
	// suggests lowering spark.memory.fraction only qualitatively.
	c.Set(conf.MemoryFraction, 0.75)
	c.Set(conf.MemoryStorageFraction, 0.5)

	// Locality: the guide suggests tolerating a little wait.
	c.Set(conf.LocalityWait, 3)
	return c
}
