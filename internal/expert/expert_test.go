package expert

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/conf"
	"repro/internal/sparksim"
	"repro/internal/workloads"
)

func TestConfigIsLegal(t *testing.T) {
	space := conf.StandardSpace()
	c := Config(space, cluster.Standard())
	for i := 0; i < space.Len(); i++ {
		p := space.Param(i)
		v := c.At(i)
		if v < p.Min || v > p.Max {
			t.Errorf("%s = %v outside [%v, %v]", p.Name, v, p.Min, p.Max)
		}
	}
}

func TestRulesApplied(t *testing.T) {
	space := conf.StandardSpace()
	c := Config(space, cluster.Standard())
	if got := c.GetInt(conf.ExecutorCores); got != 5 {
		t.Errorf("executor cores = %d, want the guides' 5", got)
	}
	if c.GetInt(conf.Serializer) != conf.SerializerKryo {
		t.Error("expert config should select kryo")
	}
	if got := c.GetInt(conf.ExecutorMemory); got <= 1024 {
		t.Errorf("executor memory = %d, should exceed the default", got)
	}
	// 2 tasks/core exceeds Table 2's parallelism cap, so it must clamp.
	if got := c.GetInt(conf.DefaultParallelism); got != 50 {
		t.Errorf("parallelism = %d, want the range cap 50", got)
	}
}

func TestExpertBeatsDefaultOnEveryWorkload(t *testing.T) {
	// §5.6: "the manual tuning indeed improves the default
	// configuration" — across all six programs at their middle size.
	space := conf.StandardSpace()
	cl := cluster.Standard()
	sim := sparksim.New(cl, 5)
	def := space.Default()
	exp := Config(space, cl)
	for _, w := range workloads.All() {
		mb := w.InputMB(w.Sizes[2])
		tDef := sim.Run(&w.Program, mb, def).TotalSec
		tExp := sim.Run(&w.Program, mb, exp).TotalSec
		if tExp >= tDef {
			t.Errorf("%s: expert (%.1fs) not faster than default (%.1fs)", w.Abbr, tExp, tDef)
		}
	}
}

func TestTinyClusterStillLegal(t *testing.T) {
	space := conf.StandardSpace()
	tiny := cluster.Cluster{
		Workers: 1, CoresPerNode: 4, MemoryPerNodeMB: 4096,
		CPUGHz: 2, DiskReadMBps: 100, DiskWriteMBps: 100, NetMBps: 100,
		MasterCores: 4, MasterMemoryMB: 4096,
	}
	c := Config(space, tiny)
	for i := 0; i < space.Len(); i++ {
		p := space.Param(i)
		if v := c.At(i); v < p.Min || v > p.Max {
			t.Errorf("%s = %v outside range on a tiny cluster", p.Name, v)
		}
	}
}
