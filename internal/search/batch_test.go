package search

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/conf"
	"repro/internal/obs"
)

// TestRandomDeterministicAcrossGOMAXPROCS pins the parallel-evaluation
// contract: Random's result must be bit-identical whether its worker pool
// has one goroutine or many, and evaluation accounting must be exact.
func TestRandomDeterministicAcrossGOMAXPROCS(t *testing.T) {
	space := conf.StandardSpace()
	obj := sphere(space)

	prev := runtime.GOMAXPROCS(1)
	one := Random(space, obj, 300, 11)
	runtime.GOMAXPROCS(prev)
	many := Random(space, obj, 300, 11)

	if one.BestFitness != many.BestFitness {
		t.Fatalf("best fitness differs: %v vs %v", one.BestFitness, many.BestFitness)
	}
	if !reflect.DeepEqual(one.Best, many.Best) {
		t.Fatal("best vector differs across GOMAXPROCS")
	}
	if one.Evaluations != 300 || many.Evaluations != 300 {
		t.Fatalf("evaluations %d / %d, want 300", one.Evaluations, many.Evaluations)
	}
}

// TestRandomCountsEvalsUnderParallelism checks the obs counter survives
// concurrent objective calls without losing increments.
func TestRandomCountsEvalsUnderParallelism(t *testing.T) {
	space := conf.StandardSpace()
	reg := obs.NewRegistry()
	Random(space, sphere(space), 250, 3, reg)
	if got := reg.Counter("search.random.evaluations").Value(); got != 250 {
		t.Fatalf("counted %d evaluations, want 250", got)
	}
}

// TestRandomZeroBudget checks the degenerate call stays well-formed.
func TestRandomZeroBudget(t *testing.T) {
	space := conf.StandardSpace()
	res := Random(space, sphere(space), 0, 1)
	if res.Evaluations != 0 || res.Best != nil {
		t.Fatalf("zero budget returned %d evals, best %v", res.Evaluations, res.Best)
	}
}
